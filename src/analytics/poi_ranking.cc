#include "src/analytics/poi_ranking.h"

#include <algorithm>

namespace pspc {

std::vector<RankedPoi> TopKPoi(const SpcIndex& index, VertexId query,
                               const std::vector<VertexId>& candidates,
                               size_t k) {
  std::vector<RankedPoi> ranked;
  ranked.reserve(candidates.size());
  for (VertexId poi : candidates) {
    const SpcResult r = index.Query(query, poi);
    if (r.distance == kInfSpcDistance) continue;
    ranked.push_back({poi, r.distance, r.count});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedPoi& a, const RankedPoi& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              if (a.route_count != b.route_count) {
                return a.route_count > b.route_count;
              }
              return a.poi < b.poi;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace pspc
