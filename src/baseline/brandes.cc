#include "src/baseline/brandes.h"

#include <vector>

#include "src/common/types.h"

namespace pspc {

std::vector<double> BrandesBetweenness(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<double> centrality(n, 0.0);

  std::vector<VertexId> stack_order;
  std::vector<std::vector<VertexId>> parents(n);
  std::vector<double> sigma(n);
  std::vector<Distance> dist(n);
  std::vector<double> delta(n);

  for (VertexId s = 0; s < n; ++s) {
    stack_order.clear();
    for (VertexId v = 0; v < n; ++v) {
      parents[v].clear();
      sigma[v] = 0.0;
      dist[v] = kInfDistance;
      delta[v] = 0.0;
    }
    sigma[s] = 1.0;
    dist[s] = 0;
    std::vector<VertexId> frontier{s};
    Distance d = 0;
    std::vector<VertexId> next;
    while (!frontier.empty()) {
      for (VertexId u : frontier) stack_order.push_back(u);
      ++d;
      next.clear();
      for (VertexId u : frontier) {
        for (VertexId v : graph.Neighbors(u)) {
          if (dist[v] == kInfDistance) {
            dist[v] = d;
            next.push_back(v);
          }
          if (dist[v] == d) {
            sigma[v] += sigma[u];
            parents[v].push_back(u);
          }
        }
      }
      frontier.swap(next);
    }
    // Dependency accumulation in reverse BFS order.
    for (auto it = stack_order.rbegin(); it != stack_order.rend(); ++it) {
      const VertexId w = *it;
      for (VertexId p : parents[w]) {
        delta[p] += sigma[p] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != s) centrality[w] += delta[w];
    }
  }
  // Each unordered pair was counted from both endpoints.
  for (double& c : centrality) c /= 2.0;
  return centrality;
}

}  // namespace pspc
