#include "src/label/packed_label.h"

#include <algorithm>
#include <cassert>

namespace pspc {
namespace {

// Lane width codes. Widths are chosen per group to fit the widest
// value, so decode never truncates.
inline uint32_t RankLaneCode(uint32_t max_delta) {
  if (max_delta <= 0xFF) return 0;
  if (max_delta <= 0xFFFF) return 1;
  return 2;
}
inline uint32_t RankLaneBytes(uint32_t code) { return code == 2 ? 4 : (code + 1); }

inline uint32_t DistLaneCode(uint32_t max_dist) { return max_dist <= 0xFF ? 0 : 1; }
inline uint32_t DistLaneBytes(uint32_t code) { return code + 1; }

inline uint32_t CountLaneCode(Count max_count) {
  if (max_count <= 0xFF) return 0;
  if (max_count <= 0xFFFF) return 1;
  if (max_count <= 0xFFFF'FFFFULL) return 2;
  // The 8-byte escape lane: path counts near or at `kSaturatedCount`
  // stay exact.
  return 3;
}
inline uint32_t CountLaneBytes(uint32_t code) { return 1u << code; }

inline void PutBytes(uint64_t v, uint32_t width, std::vector<uint8_t>* out) {
  for (uint32_t b = 0; b < width; ++b) {
    out->push_back(static_cast<uint8_t>(v >> (8 * b)));
  }
}

inline uint64_t GetBytes(const uint8_t* p, uint32_t width) {
  uint64_t v = 0;
  for (uint32_t b = 0; b < width; ++b) {
    v |= static_cast<uint64_t>(p[b]) << (8 * b);
  }
  return v;
}

inline void StoreU32At(std::vector<uint8_t>* out, size_t at, uint32_t v) {
  std::memcpy(out->data() + at, &v, sizeof(v));
}

}  // namespace

size_t AppendPackedBlock(std::span<const LabelEntry> entries,
                         std::vector<uint8_t>* out) {
  const size_t start = out->size();
  const uint32_t n = static_cast<uint32_t>(entries.size());
  const uint32_t num_groups = (n + kPackedGroupSize - 1) / kPackedGroupSize;

  PutBytes(n, 4, out);
  PutBytes(0, 4, out);  // block_bytes, patched below
  const size_t skip_at = out->size();
  out->resize(out->size() + 8ull * num_groups);  // skip table, patched below

  const size_t payload_at = out->size();
  for (uint32_t g = 0; g < num_groups; ++g) {
    const uint32_t lo = g * kPackedGroupSize;
    const uint32_t k = std::min<uint32_t>(kPackedGroupSize, n - lo);

    uint32_t max_delta = 0;
    uint32_t max_dist = entries[lo].dist;
    Count max_count = entries[lo].count;
    for (uint32_t i = 1; i < k; ++i) {
      const LabelEntry& e = entries[lo + i];
      assert(e.hub_rank > entries[lo + i - 1].hub_rank);
      max_delta = std::max(max_delta, e.hub_rank - entries[lo + i - 1].hub_rank);
      max_dist = std::max<uint32_t>(max_dist, e.dist);
      max_count = std::max(max_count, e.count);
    }

    const uint32_t rank_code = RankLaneCode(max_delta);
    const uint32_t dist_code = DistLaneCode(max_dist);
    const uint32_t count_code = CountLaneCode(max_count);

    StoreU32At(out, skip_at + 8ull * g, entries[lo].hub_rank);
    StoreU32At(out, skip_at + 8ull * g + 4,
               static_cast<uint32_t>(out->size() - payload_at));

    out->push_back(
        static_cast<uint8_t>(rank_code | (dist_code << 2) | (count_code << 3)));
    const uint32_t rank_bytes = RankLaneBytes(rank_code);
    const uint32_t dist_bytes = DistLaneBytes(dist_code);
    const uint32_t count_bytes = CountLaneBytes(count_code);
    for (uint32_t i = 1; i < k; ++i) {
      PutBytes(entries[lo + i].hub_rank - entries[lo + i - 1].hub_rank,
               rank_bytes, out);
    }
    for (uint32_t i = 0; i < k; ++i) PutBytes(entries[lo + i].dist, dist_bytes, out);
    for (uint32_t i = 0; i < k; ++i) PutBytes(entries[lo + i].count, count_bytes, out);
  }

  StoreU32At(out, start + 4, static_cast<uint32_t>(out->size() - start));
  return out->size() - start;
}

void PackedBlockView::DecodeGroup(uint32_t g, PackedGroup* out) const {
  const uint32_t n = NumEntries();
  const uint32_t lo = g * kPackedGroupSize;
  const uint32_t k = std::min<uint32_t>(kPackedGroupSize, n - lo);
  out->n = k;

  const size_t payload_at = 8 + 8ull * NumGroups();
  const uint8_t* p = data_ + payload_at + LoadU32(8 + 8 * g + 4);

  const uint8_t desc = *p++;
  const uint32_t rank_bytes = RankLaneBytes(desc & 0x3);
  const uint32_t dist_bytes = DistLaneBytes((desc >> 2) & 0x1);
  const uint32_t count_bytes = CountLaneBytes((desc >> 3) & 0x3);

  uint32_t rank = GroupFirstRank(g);
  out->ranks[0] = rank;
  for (uint32_t i = 1; i < k; ++i) {
    rank += static_cast<uint32_t>(GetBytes(p, rank_bytes));
    out->ranks[i] = rank;
    p += rank_bytes;
  }
  for (uint32_t i = 0; i < k; ++i) {
    out->dists[i] = static_cast<uint16_t>(GetBytes(p, dist_bytes));
    p += dist_bytes;
  }
  for (uint32_t i = 0; i < k; ++i) {
    out->counts[i] = GetBytes(p, count_bytes);
    p += count_bytes;
  }
}

bool PackedBlockView::FindHub(Rank hub_rank, Distance* dist, Count* count) const {
  const uint32_t num_groups = NumGroups();
  if (num_groups == 0) return false;
  // Last group whose first rank is <= hub_rank; earlier groups cannot
  // contain it, later groups start past it.
  uint32_t lo = 0, hi = num_groups;
  while (hi - lo > 1) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (GroupFirstRank(mid) <= hub_rank) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  if (GroupFirstRank(lo) > hub_rank) return false;
  PackedGroup grp;
  DecodeGroup(lo, &grp);
  for (uint32_t i = 0; i < grp.n; ++i) {
    if (grp.ranks[i] == hub_rank) {
      *dist = grp.dists[i];
      *count = grp.counts[i];
      return true;
    }
  }
  return false;
}

void PackedBlockView::DecodeAll(std::vector<LabelEntry>* out) const {
  const uint32_t num_groups = NumGroups();
  PackedGroup grp;
  for (uint32_t g = 0; g < num_groups; ++g) {
    DecodeGroup(g, &grp);
    for (uint32_t i = 0; i < grp.n; ++i) {
      out->push_back(LabelEntry{grp.ranks[i], grp.dists[i], grp.counts[i]});
    }
  }
}

PackedLabelMap::Builder::Builder(VertexId num_vertices) {
  map_.offsets_.reserve(static_cast<size_t>(num_vertices) + 1);
  map_.offsets_.push_back(0);
}

void PackedLabelMap::Builder::Add(std::span<const LabelEntry> entries) {
  AppendPackedBlock(entries, &map_.bytes_);
  map_.offsets_.push_back(map_.bytes_.size());
  map_.total_entries_ += entries.size();
}

PackedLabelMap PackedLabelMap::Builder::Finish() { return std::move(map_); }

PackedLabelMap PackedLabelMap::Encode(const BaseLabelMap& base) {
  Builder builder(base.num_vertices);
  for (VertexId v = 0; v < base.num_vertices; ++v) {
    builder.Add(base.Labels(v));
  }
  return builder.Finish();
}

}  // namespace pspc
