#include "src/reduce/one_shell.h"

#include <vector>

#include "src/common/logging.h"
#include "src/graph/graph_builder.h"

namespace pspc {

OneShellReduction OneShellReduction::Build(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  OneShellReduction r;
  r.anchor_.resize(n);
  r.parent_.assign(n, kInvalidVertex);
  r.depth_.assign(n, 0);
  r.orig_to_core_.assign(n, kInvalidVertex);

  // Peel vertices of current degree exactly 1. A vertex's unique
  // remaining neighbor at peel time is its tree parent.
  std::vector<VertexId> degree(n);
  std::vector<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    if (degree[v] == 1) queue.push_back(v);
  }
  std::vector<bool> peeled(n, false);
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    const VertexId v = queue[qi];
    if (degree[v] != 1) continue;  // the last neighbor got peeled first
    peeled[v] = true;
    degree[v] = 0;
    for (VertexId u : graph.Neighbors(v)) {
      if (peeled[u]) continue;
      r.parent_[v] = u;
      if (--degree[u] == 1) queue.push_back(u);
      break;  // exactly one unpeeled neighbor exists
    }
  }

  // Dense ids for core survivors.
  for (VertexId v = 0; v < n; ++v) {
    if (!peeled[v]) {
      r.orig_to_core_[v] = static_cast<VertexId>(r.core_to_orig_.size());
      r.core_to_orig_.push_back(v);
      r.anchor_[v] = v;
    }
  }

  // Anchor and depth of fringe vertices. A vertex's parent is peeled
  // strictly later than the vertex itself (its degree only drops to 1
  // afterwards) or not at all, so one sweep over the peel sequence in
  // reverse resolves every parent before its children.
  for (auto it = queue.rbegin(); it != queue.rend(); ++it) {
    const VertexId v = *it;
    if (!peeled[v]) continue;  // stale queue entry, never peeled
    const VertexId p = r.parent_[v];
    if (peeled[p]) {
      r.anchor_[v] = r.anchor_[p];
      r.depth_[v] = static_cast<Distance>(r.depth_[p] + 1);
    } else {
      r.anchor_[v] = p;  // parent survived into the core
      r.depth_[v] = 1;
    }
  }

  // Build the core graph.
  GraphBuilder builder(static_cast<VertexId>(r.core_to_orig_.size()));
  for (VertexId c = 0; c < r.core_to_orig_.size(); ++c) {
    const VertexId v = r.core_to_orig_[c];
    for (VertexId u : graph.Neighbors(v)) {
      if (!peeled[u] && v < u) {
        builder.AddEdge(c, r.orig_to_core_[u]);
      }
    }
  }
  r.core_ = builder.Build();
  return r;
}

SpcResult OneShellReduction::TreeQuery(VertexId s, VertexId t) const {
  PSPC_CHECK(anchor_[s] == anchor_[t]);
  if (s == t) return {0, 1};
  // Climb to equal depth, then in lockstep to the LCA.
  VertexId a = s, b = t;
  uint32_t dist = 0;
  while (depth_[a] > depth_[b]) {
    a = parent_[a];
    ++dist;
  }
  while (depth_[b] > depth_[a]) {
    b = parent_[b];
    ++dist;
  }
  while (a != b) {
    a = parent_[a];
    b = parent_[b];
    dist += 2;
  }
  return {dist, 1};
}

}  // namespace pspc
