#include "src/dynamic/edge_update.h"

#include <fstream>
#include <sstream>

namespace pspc {

Status EdgeUpdateBatch::Validate(VertexId num_vertices) const {
  for (size_t i = 0; i < updates_.size(); ++i) {
    const EdgeUpdate& up = updates_[i];
    if (up.u >= num_vertices || up.v >= num_vertices) {
      return Status::OutOfRange("update " + std::to_string(i) + " touches (" +
                                std::to_string(up.u) + ", " +
                                std::to_string(up.v) + ") outside [0, " +
                                std::to_string(num_vertices) + ")");
    }
    if (up.u == up.v) {
      return Status::InvalidArgument("update " + std::to_string(i) +
                                     " is a self-loop on vertex " +
                                     std::to_string(up.u));
    }
  }
  return Status::OK();
}

namespace {

Result<EdgeUpdateBatch> ParseUpdateLines(std::istream& in) {
  EdgeUpdateBatch batch;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::string op, extra;
    uint64_t u = 0, v = 0;
    // `ls >> extra` must fail: trailing garbage (`i 1 2 junk`) means the
    // line is not what the writer intended, not a valid update.
    if (!(ls >> op >> u >> v) || (op != "i" && op != "d") || (ls >> extra)) {
      return Status::Corruption("bad update at line " +
                                std::to_string(line_no) + ": '" + line + "'");
    }
    if (u >= kInvalidVertex || v >= kInvalidVertex) {
      return Status::OutOfRange("vertex id at line " +
                                std::to_string(line_no) +
                                " exceeds the 32-bit id space");
    }
    if (op == "i") {
      batch.Insert(static_cast<VertexId>(u), static_cast<VertexId>(v));
    } else {
      batch.Delete(static_cast<VertexId>(u), static_cast<VertexId>(v));
    }
  }
  return batch;
}

}  // namespace

Result<EdgeUpdateBatch> ParseUpdateStream(const std::string& text) {
  std::istringstream in(text);
  return ParseUpdateLines(in);
}

Result<EdgeUpdateBatch> LoadUpdateStream(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ParseUpdateLines(in);
}

Status SaveUpdateStream(const EdgeUpdateBatch& batch,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (const EdgeUpdate& up : batch) {
    out << (up.kind == EdgeUpdateKind::kInsert ? 'i' : 'd') << ' ' << up.u
        << ' ' << up.v << '\n';
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace pspc
