// Concurrent-correctness stress for the serving subsystem, written to
// run clean under ThreadSanitizer (see the CI tsan job): reader
// threads hammer the engine with query batches while the writer
// applies a randomized insert/delete stream, and at quiesce points
// every served answer is checked against a BFS oracle on the live
// graph. All OpenMP knobs are pinned to one thread — libgomp is not
// TSan-instrumented, and a team of one never spawns — so every thread
// TSan watches is one of ours.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "src/baseline/bfs_spc.h"
#include "src/common/mutex.h"
#include "src/common/random.h"
#include "src/core/builder_facade.h"
#include "src/dynamic/dynamic_spc_index.h"
#include "src/dynamic/edge_update.h"
#include "src/graph/generators.h"
#include "src/label/query_engine.h"
#include "src/serve/serving_engine.h"

namespace pspc {
namespace {

constexpr int kReaders = 3;
constexpr int kRounds = 8;
constexpr size_t kUpdatesPerRound = 6;
constexpr size_t kReaderBatch = 8;
constexpr size_t kOracleChecks = 24;
constexpr VertexId kN = 48;

/// Parks reader threads at quiesce points: readers CheckIn between
/// batches; the writer pauses them all, verifies, and resumes.
class QuiesceGate {
 public:
  void Pause(int readers) {
    spc::MutexLock lock(mu_);
    pause_ = true;
    while (parked_ != readers) parked_cv_.Wait(mu_);
  }

  void Resume() {
    {
      spc::MutexLock lock(mu_);
      pause_ = false;
    }
    resume_cv_.NotifyAll();
  }

  void CheckIn() {
    spc::MutexLock lock(mu_);
    if (!pause_) return;
    ++parked_;
    parked_cv_.NotifyAll();
    while (pause_) resume_cv_.Wait(mu_);
    --parked_;
  }

 private:
  spc::Mutex mu_;
  spc::CondVar parked_cv_;
  spc::CondVar resume_cv_;
  int parked_ GUARDED_BY(mu_) = 0;
  bool pause_ GUARDED_BY(mu_) = false;
};

void RunStress(double rebuild_threshold) {
  BuildOptions build;
  build.num_landmarks = 4;
  build.num_threads = 1;
  DynamicOptions dynamic;
  dynamic.rebuild_threshold = rebuild_threshold;
  dynamic.rebuild_options = build;
  dynamic.num_threads = 1;

  const Graph graph = GenerateErdosRenyi(kN, 100, 7);
  DynamicSpcIndex index(graph, build, dynamic);

  ServingOptions serving;
  serving.num_workers = 2;
  serving.max_batch = 16;
  ServingEngine engine(&index, serving);

  // Evolving edge set mirrored writer-side, for drawing valid updates.
  std::set<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < kN; ++u) {
    for (const VertexId v : graph.Neighbors(u)) {
      if (u < v) edges.insert({u, v});
    }
  }

  QuiesceGate gate;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(1000 + static_cast<uint64_t>(r));
      // relaxed: stop/progress flag only; thread join is the sync point.
      while (!stop.load(std::memory_order_relaxed)) {
        gate.CheckIn();
        const QueryBatch batch =
            MakeRandomQueries(kN, kReaderBatch, rng.Next());
        const std::vector<SpcResult> results =
            engine.SubmitBatch(batch).get();
        // Mid-churn answers are exact for *some* recent generation;
        // structural invariants must hold for every one of them.
        for (size_t i = 0; i < batch.size(); ++i) {
          const auto [s, t] = batch[i];
          if (s == t) {
            EXPECT_EQ(results[i], (SpcResult{0, 1}));
          } else if (results[i].distance == kInfSpcDistance) {
            EXPECT_EQ(results[i].count, 0u);
          } else {
            EXPECT_GT(results[i].count, 0u);
          }
        }
      }
    });
  }

  Rng rng(4242);
  for (int round = 0; round < kRounds; ++round) {
    // A randomized mixed batch, valid against the mirrored edge set.
    EdgeUpdateBatch batch;
    for (size_t i = 0; i < kUpdatesPerRound; ++i) {
      const bool remove = !edges.empty() && rng.NextBool(0.5);
      if (remove) {
        auto it = edges.begin();
        std::advance(it, static_cast<long>(rng.NextBounded(edges.size())));
        batch.Delete(it->first, it->second);
        edges.erase(it);
      } else {
        VertexId u, v;
        do {
          u = static_cast<VertexId>(rng.NextBounded(kN));
          v = static_cast<VertexId>(rng.NextBounded(kN));
        } while (u == v ||
                 edges.contains(std::minmax(u, v)));
        batch.Insert(u, v);
        edges.insert(std::minmax(u, v));
      }
    }
    ASSERT_TRUE(engine.ApplyUpdates(batch).ok());

    // Quiesce: park the readers, drain in-flight queries, and demand
    // oracle-exact answers for the now-current graph.
    gate.Pause(kReaders);
    engine.Drain();
    ASSERT_EQ(index.NumEdges(), edges.size());
    const Graph current = index.MaterializeGraph();
    const QueryBatch checks =
        MakeRandomQueries(kN, kOracleChecks, rng.Next());
    const std::vector<SpcResult> served = engine.SubmitBatch(checks).get();
    for (size_t i = 0; i < checks.size(); ++i) {
      const auto [s, t] = checks[i];
      EXPECT_EQ(served[i], BfsSpcPair(current, s, t))
          << "round " << round << " query (" << s << "," << t << ")";
    }
    gate.Resume();
  }

  // relaxed: stop/progress flag only; thread join is the sync point.
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();
  engine.Stop();

  const ServingCounters counters = engine.Counters();
  // Batches apply their *net* effect: an insert later cancelled by a
  // delete in the same batch coalesces away instead of applying twice.
  EXPECT_EQ(counters.updates_applied + index.Stats().updates_coalesced,
            kRounds * kUpdatesPerRound);
  EXPECT_LE(counters.updates_applied, kRounds * kUpdatesPerRound);
  EXPECT_GE(counters.generations_published, static_cast<uint64_t>(kRounds));
  // Every retired generation must eventually be reclaimed or pending;
  // none may leak outside the manager's books.
  EXPECT_EQ(counters.snapshots_reclaimed + counters.snapshots_retired_pending,
            counters.generations_published);
}

TEST(ServingStressTest, ReadersExactUnderRepairChurn) {
  RunStress(/*rebuild_threshold=*/1e18);  // repair-only, overlay grows
}

TEST(ServingStressTest, ReadersExactUnderRebuildChurn) {
  // A tiny threshold forces staleness rebuilds mid-serve: publishes
  // swap whole base indexes, not just overlay deltas.
  RunStress(/*rebuild_threshold=*/0.02);
}

}  // namespace
}  // namespace pspc
