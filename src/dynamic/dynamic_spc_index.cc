#include "src/dynamic/dynamic_spc_index.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/common/logging.h"
#include "src/common/parallel.h"
#include "src/common/saturating.h"
#include "src/common/timer.h"
#include "src/core/builder_facade.h"
#include "src/core/scheduler.h"
#include "src/label/label_merge.h"

namespace pspc {
namespace {

Distance ToLabelDistance(uint32_t d) {
  PSPC_CHECK_MSG(d < kInfDistance, "distance " << d << " overflows Distance");
  return static_cast<Distance>(d);
}

}  // namespace

std::string DynamicStats::ToString() const {
  std::ostringstream oss;
  oss << "updates: " << insertions_applied << " insert / "
      << deletions_applied << " delete (" << batches_applied << " batches, "
      << updates_coalesced << " coalesced)\n"
      << "repair:  " << resumed_bfs_runs << " resumed BFS, "
      << affected_hubs << " hubs fully re-run, " << subtract_repairs
      << " hubs count-subtracted\n"
      << "waves:   " << parallel_waves << " parallel, " << parallel_hub_runs
      << " hub runs committed, " << deferred_hub_runs << " deferred\n"
      << "labels:  " << entries_inserted << " inserted, " << entries_renewed
      << " renewed, " << entries_erased << " erased\n"
      << "rebuilds: " << rebuilds << "\n"
      << "time: repair " << repair_seconds << "s, rebuild "
      << rebuild_seconds << "s";
  return oss.str();
}

DynamicSpcIndex::DynamicSpcIndex(Graph graph, SpcIndex index,
                                 DynamicOptions options)
    : base_graph_(std::move(graph)),
      base_(std::make_shared<const SpcIndex>(std::move(index))),
      order_(base_->Order()),
      graph_(&base_graph_),
      overlay_(base_.get()),
      options_(options) {
  PSPC_CHECK_MSG(base_->NumVertices() == base_graph_.NumVertices(),
                 "index (" << base_->NumVertices() << " vertices) does not "
                 "match graph (" << base_graph_.NumVertices() << ")");
  InitScratch();
}

DynamicSpcIndex::DynamicSpcIndex(Graph graph,
                                 const BuildOptions& build_options,
                                 DynamicOptions options)
    : DynamicSpcIndex(graph, BuildIndex(graph, build_options).index,
                      options) {}

void DynamicSpcIndex::RepairScratch::Init(VertexId n) {
  hub_dist.assign(n, kInfSpcDistance);
  bfs_dist.assign(n, kInfSpcDistance);
  bfs_count.assign(n, 0);
  updated.assign(n, 0);
  region_flags.assign(n, 0);
  bfs_touched.clear();
  bfs_queue.clear();
  frontier.clear();
  next_frontier.clear();
  region_touched.clear();
}

void DynamicSpcIndex::InitScratch() {
  const VertexId n = base_graph_.NumVertices();
  scratch_.Init(n);
  scratch_pool_.clear();
  subtract_side_.assign(n, 0);
  bucket_max_.assign(n, 0);
}

int DynamicSpcIndex::ResolvedThreads() const {
  return options_.num_threads > 0 ? options_.num_threads : MaxThreads();
}

SpcResult DynamicSpcIndex::Query(VertexId s, VertexId t) const {
  PSPC_CHECK_MSG(s < NumVertices() && t < NumVertices(),
                 "query (" << s << "," << t << ") out of range");
  if (s == t) return {0, 1};
  return MergeLabelCounts(Labels(s), Labels(t));
}

double DynamicSpcIndex::StalenessRatio() const {
  return static_cast<double>(overlay_.OverlaidEntries()) /
         static_cast<double>(std::max<size_t>(1, base_->TotalEntries()));
}

void DynamicSpcIndex::MaybeRebuild() {
  if (options_.auto_rebuild && StalenessRatio() > options_.rebuild_threshold) {
    Rebuild();
  }
}

void DynamicSpcIndex::Rebuild() {
  WallTimer timer;
  Graph current = graph_.Materialize();
  BuildResult result = BuildIndex(current, options_.rebuild_options);
  base_graph_ = std::move(current);
  // A fresh shared base: snapshots captured from the old generation
  // keep the retired CSR alive through their shared_ptr.
  base_ = std::make_shared<const SpcIndex>(std::move(result.index));
  order_ = base_->Order();
  graph_.Rebase(&base_graph_);
  overlay_.Rebase(base_.get());
  ++generation_;
  ++stats_.rebuilds;
  stats_.rebuild_seconds += timer.ElapsedSeconds();
}

Status DynamicSpcIndex::InsertEdge(VertexId u, VertexId v) {
  PSPC_RETURN_IF_ERROR(graph_.AddEdge(u, v));
  {
    ScopedTimer timer(&stats_.repair_seconds);
    const std::pair<VertexId, VertexId> edge{u, v};
    RepairInsertions({&edge, 1});
  }
  ++stats_.insertions_applied;
  ++generation_;
  MaybeRebuild();
  return Status::OK();
}

Status DynamicSpcIndex::DeleteEdge(VertexId u, VertexId v) {
  PSPC_RETURN_IF_ERROR(graph_.ValidateEndpoints(u, v));
  if (!graph_.HasEdge(u, v)) {
    return Status::NotFound("edge (" + std::to_string(u) + ", " +
                            std::to_string(v) + ") does not exist");
  }
  {
    ScopedTimer timer(&stats_.repair_seconds);
    RepairDeletion(u, v);
  }
  ++stats_.deletions_applied;
  ++generation_;
  MaybeRebuild();
  return Status::OK();
}

Status DynamicSpcIndex::Apply(const EdgeUpdate& update) {
  return update.kind == EdgeUpdateKind::kInsert
             ? InsertEdge(update.u, update.v)
             : DeleteEdge(update.u, update.v);
}

void DynamicSpcIndex::LoadHubDist(VertexId hub, RepairScratch& s) const {
  for (const LabelEntry& e : Labels(hub)) s.hub_dist[e.hub_rank] = e.dist;
}

void DynamicSpcIndex::ResetHubDist(VertexId hub, RepairScratch& s) const {
  for (const LabelEntry& e : Labels(hub)) {
    s.hub_dist[e.hub_rank] = kInfSpcDistance;
  }
}

// ------------------------------------------------------------- insertion

void DynamicSpcIndex::RepairInsertions(
    std::span<const std::pair<VertexId, VertexId>> edges) {
  // Seeds snapshot the *pre-repair* endpoint labels across every new
  // edge: each hub of an endpoint label may start new trough paths
  // crossing that edge, seeded at the opposite endpoint with the
  // recorded distance + 1 and trough count. Gathering all seeds before
  // any repair runs keeps the snapshot semantics of the single-edge
  // scheme (repairs only ever rewrite a hub's own entries, so a later
  // hub's seeds are never invalidated by an earlier hub's run).
  std::vector<std::pair<Rank, InsertSeed>> seeds;
  for (const auto& [a, b] : edges) {
    const Rank ra = order_.RankOf(a);
    const Rank rb = order_.RankOf(b);
    for (const LabelEntry& e : Labels(a)) {
      // New trough paths h ... a -> b ...: only possible if b may
      // appear below h in the order.
      if (e.hub_rank < rb) {
        seeds.push_back({e.hub_rank,
                         {b, static_cast<uint32_t>(e.dist) + 1, e.count}});
      }
    }
    for (const LabelEntry& e : Labels(b)) {
      if (e.hub_rank < ra) {
        seeds.push_back({e.hub_rank,
                         {a, static_cast<uint32_t>(e.dist) + 1, e.count}});
      }
    }
  }

  // One multi-source resumed BFS per distinct hub, in ascending rank
  // order so each run prunes against already-repaired higher-ranked
  // labels (the HP-SPC order dependency, Lemma 1). Seeds of the same
  // hub sort by depth for level-synchronous injection.
  std::sort(seeds.begin(), seeds.end(),
            [](const auto& x, const auto& y) {
              return x.first != y.first ? x.first < y.first
                                        : x.second.dist < y.second.dist;
            });
  std::vector<InsertSeed> hub_seeds;
  for (size_t i = 0; i < seeds.size();) {
    const Rank rank = seeds[i].first;
    hub_seeds.clear();
    for (; i < seeds.size() && seeds[i].first == rank; ++i) {
      hub_seeds.push_back(seeds[i].second);
    }
    ResumedInsertBfs(rank, hub_seeds, scratch_);
  }
}

void DynamicSpcIndex::ResumedInsertBfs(Rank hub_rank,
                                       std::span<const InsertSeed> seeds,
                                       RepairScratch& s) {
  if (seeds.empty()) return;
  const VertexId hub = order_.VertexAt(hub_rank);
  LoadHubDist(hub, s);

  // Level-synchronous multi-source BFS: seeds are injected when the
  // wavefront reaches their depth, so a seed made obsolete by a
  // shorter route through another inserted edge (discovered earlier)
  // is dropped, and seeds tying the wavefront merge counts. Each new
  // shortest trough path crosses a unique *first* inserted edge whose
  // seed accounts for it, so no path is double counted.
  s.bfs_touched.clear();
  s.frontier.clear();
  size_t si = 0;  // seeds consumed so far (sorted by dist)
  auto inject = [&](uint32_t level) {
    for (; si < seeds.size() && seeds[si].dist == level; ++si) {
      const InsertSeed& seed = seeds[si];
      if (s.bfs_dist[seed.start] == kInfSpcDistance) {
        s.bfs_dist[seed.start] = level;
        s.bfs_count[seed.start] = seed.count;
        s.bfs_touched.push_back(seed.start);
        s.frontier.push_back(seed.start);
      } else if (s.bfs_dist[seed.start] == level) {
        s.bfs_count[seed.start] = SatAdd(s.bfs_count[seed.start], seed.count);
      }
      // else: discovered strictly shorter through another inserted
      // edge; the seed's paths are not shortest.
    }
  };
  uint32_t d = seeds.front().dist;
  inject(d);

  while (!s.frontier.empty() || si < seeds.size()) {
    if (s.frontier.empty()) {
      // Gap between seed depths with an exhausted wavefront.
      d = seeds[si].dist;
      inject(d);
      continue;
    }

    // Label phase: one walk over L(v) up to the hub's rank gives the
    // 2-hop distance certificate over hubs ranked >= hub_rank (the
    // hub's own old entry participates via hub_dist[hub_rank] == 0),
    // plus the position of the hub's entry if present. Pruned vertices
    // leave the frontier and do not expand.
    size_t keep = 0;
    for (const VertexId v : s.frontier) {
      const uint32_t dv = d;
      const auto lv = Labels(v);
      uint32_t certified = kInfSpcDistance;
      size_t pos = 0;
      bool has_hub = false;
      LabelEntry old_entry{};
      for (; pos < lv.size() && lv[pos].hub_rank <= hub_rank; ++pos) {
        const uint32_t hd = s.hub_dist[lv[pos].hub_rank];
        if (hd != kInfSpcDistance) {
          certified = std::min(certified, hd + lv[pos].dist);
        }
        if (lv[pos].hub_rank == hub_rank) {
          has_hub = true;
          old_entry = lv[pos];
          break;
        }
      }
      if (dv > certified) continue;  // covered strictly shorter: prune

      Count total = s.bfs_count[v];
      if (has_hub && old_entry.dist == dv) {
        total = SatAdd(total, old_entry.count);  // pre-existing troughs
      }
      if (has_hub) {
        if (old_entry.dist != dv || old_entry.count != total) {
          overlay_.Mutable(v)[pos] = {hub_rank, ToLabelDistance(dv), total};
          ++stats_.entries_renewed;
        }
      } else {
        std::vector<LabelEntry>& mv = overlay_.Mutable(v);
        mv.insert(mv.begin() + static_cast<ptrdiff_t>(pos),
                  {hub_rank, ToLabelDistance(dv), total});
        ++stats_.entries_inserted;
      }
      s.frontier[keep++] = v;
    }
    s.frontier.resize(keep);

    // Expansion phase into level d + 1.
    s.next_frontier.clear();
    for (const VertexId v : s.frontier) {
      graph_.ForEachNeighbor(v, [&](VertexId w) {
        if (order_.RankOf(w) <= hub_rank) return;
        if (s.bfs_dist[w] == kInfSpcDistance) {
          s.bfs_dist[w] = d + 1;
          s.bfs_count[w] = s.bfs_count[v];
          s.next_frontier.push_back(w);
          s.bfs_touched.push_back(w);
        } else if (s.bfs_dist[w] == d + 1) {
          s.bfs_count[w] = SatAdd(s.bfs_count[w], s.bfs_count[v]);
        }
      });
    }
    s.frontier.swap(s.next_frontier);
    ++d;
    inject(d);
  }

  ++stats_.resumed_bfs_runs;
  ResetHubDist(hub, s);
  for (const VertexId v : s.bfs_touched) {
    s.bfs_dist[v] = kInfSpcDistance;
    s.bfs_count[v] = 0;
  }
}

// -------------------------------------------------------------- deletion

std::vector<uint32_t> DynamicSpcIndex::BfsDistances(VertexId source) const {
  std::vector<uint32_t> dist(NumVertices(), kInfSpcDistance);
  std::vector<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    graph_.ForEachNeighbor(u, [&](VertexId w) {
      if (dist[w] == kInfSpcDistance) {
        dist[w] = dist[u] + 1;
        queue.push_back(w);
      }
    });
  }
  return dist;
}

void DynamicSpcIndex::DetectAffectedSide(
    VertexId from, VertexId to, const std::vector<uint8_t>& hub_of_a,
    const std::vector<uint8_t>& hub_of_b, AffectedSide* side) const {
  const VertexId n = base_graph_.NumVertices();
  side->flags.assign(n, 0);
  side->full_ranks.clear();
  side->subtract_ranks.clear();
  side->touched.clear();

  // Pruned partial BFS over the *pre-deletion* graph. A vertex u is in
  // the affected region iff the doomed edge lies on one of its
  // shortest paths to the far endpoint: d(u, from) + 1 == d(u, to),
  // answered by the (still exact) 2-hop index. Only region vertices
  // expand, so the traversal stays proportional to the blast radius.
  std::vector<uint32_t> dist(n, kInfSpcDistance);
  std::vector<Count> count(n, 0);
  std::vector<VertexId> queue;
  dist[from] = 0;
  count[from] = 1;
  queue.push_back(from);
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    const SpcResult to_far = Query(u, to);
    if (dist[u] + 1 != to_far.distance) continue;

    // `count[u]` = shortest `from`-u paths, which is exactly the number
    // of shortest u-`to` paths crossing the edge. If *all* of them
    // cross (count matches), distances from u can grow, so u needs a
    // full hub re-run. A common hub of both endpoint labels that keeps
    // alternative routes can only lose trough counts — repairable by
    // subtraction. Everything else is a mere receiver. Saturated
    // counts cannot be compared (or subtracted), so they
    // conservatively promote to a full re-run.
    const Rank ru = order_.RankOf(u);
    const bool saturated =
        count[u] == kSaturatedCount || to_far.count == kSaturatedCount;
    if (saturated || count[u] >= to_far.count) {
      side->flags[u] = 1;
      side->full_ranks.push_back(ru);
    } else if (hub_of_a[ru] != 0 && hub_of_b[ru] != 0) {
      side->flags[u] = 2;
      side->subtract_ranks.push_back(ru);
    } else {
      side->flags[u] = -1;
    }
    side->touched.push_back(u);

    graph_.ForEachNeighbor(u, [&](VertexId w) {
      if (dist[w] == kInfSpcDistance) {
        dist[w] = dist[u] + 1;
        count[w] = count[u];
        queue.push_back(w);
      } else if (dist[w] == dist[u] + 1) {
        count[w] = SatAdd(count[w], count[u]);
      }
    });
  }
}

void DynamicSpcIndex::ValidateDeletionSeeds(
    const std::vector<Rank>& full_ranks,
    const std::vector<Rank>& subtract_ranks,
    std::span<const LabelEntry> near_labels, VertexId near, VertexId far,
    const std::vector<uint8_t>& hub_of_a,
    const std::vector<uint8_t>& hub_of_b, std::vector<uint8_t>* seed_ok,
    std::vector<uint32_t>* seed_dist, std::vector<Count>* seed_count,
    std::vector<VertexId>* seed_far) const {
  // Seed validation must query the still-exact pre-deletion index: a
  // stale entry of the hub at its own endpoint means no trough path
  // crosses the edge at all.
  auto validate = [&](Rank r) {
    if (hub_of_a[r] == 0 || hub_of_b[r] == 0) return;
    const size_t pos = FindHubEntry(near_labels, r);
    if (pos == near_labels.size()) return;
    const LabelEntry& seed = near_labels[pos];
    if (Query(near, order_.VertexAt(r)).distance != seed.dist) return;
    (*seed_ok)[r] = 1;
    (*seed_dist)[r] = static_cast<uint32_t>(seed.dist) + 1;
    (*seed_count)[r] = seed.count;
    if (seed_far != nullptr) (*seed_far)[r] = far;
  };
  for (const Rank r : full_ranks) validate(r);
  for (const Rank r : subtract_ranks) validate(r);
}

void DynamicSpcIndex::MarkDistanceChanges(
    const std::vector<Rank>& sender_ranks,
    std::span<const uint32_t> sender_pre,
    const std::vector<Rank>& opposite_full_ranks,
    std::span<const uint32_t> opposite_pre,
    std::vector<uint8_t>* needs_full) const {
  // Exact distance-change detection (post-deletion): hub u's distance
  // to opposite full sender x grew iff every old shortest route used
  // the edge, i.e. the through-edge length beat today's BFS distance.
  // Each BFS also runs a bottleneck-rank DP over its shortest-path
  // DAG: C(u) = the best (numerically largest) over shortest x-u paths
  // of the smallest rank on the path excluding u. A new trough entry
  // for the pair exists iff C(u) > rank(u) — some shortest path stays
  // entirely below u — which decides *exactly* whether a hub whose
  // distance grew without any pre-existing entry must re-run.
  // A hub must fully re-run iff some pair distance to an opposite full
  // sender x grew AND that pair matters: x still has a trough shortest
  // path below the hub (a new or renewed entry is due), or x holds an
  // entry for the hub — possibly a stale leftover of an earlier
  // insertion whose recorded distance the growth just reached, which
  // must be erased or renewed. Pairs that grew with neither leave
  // nothing to store, and a hub with only such pairs can still repair
  // its count-only pairs by subtraction.
  if (sender_ranks.empty()) return;
  const VertexId n = base_graph_.NumVertices();
  const Rank min_sender =
      *std::min_element(sender_ranks.begin(), sender_ranks.end());
  std::vector<uint32_t> now(n), bottleneck(n);
  std::vector<VertexId> queue;
  const std::vector<Rank>& rank_of = order_.VertexToRank();
  for (size_t xi = 0; xi < opposite_full_ranks.size(); ++xi) {
    const Rank rx = opposite_full_ranks[xi];
    if (rx <= min_sender) continue;  // no sender can hold an entry at x
    const VertexId x = order_.VertexAt(rx);
    const uint32_t x_pre = opposite_pre[xi];
    if (x_pre == kInfSpcDistance) continue;
    now.assign(n, kInfSpcDistance);
    bottleneck.assign(n, 0);
    queue.clear();
    now[x] = 0;
    bottleneck[x] = kInfSpcDistance;  // empty prefix: no bottleneck yet
    queue.push_back(x);
    for (size_t head = 0; head < queue.size(); ++head) {
      const VertexId p = queue[head];
      const uint32_t via = std::min(bottleneck[p], uint32_t{rank_of[p]});
      graph_.ForEachNeighbor(p, [&](VertexId w) {
        if (now[w] == kInfSpcDistance) {
          now[w] = now[p] + 1;
          bottleneck[w] = via;
          queue.push_back(w);
        } else if (now[w] == now[p] + 1) {
          bottleneck[w] = std::max(bottleneck[w], via);
        }
      });
    }
    const auto lx = Labels(x);
    for (size_t ui = 0; ui < sender_ranks.size(); ++ui) {
      const Rank r = sender_ranks[ui];
      if (r >= rx || (*needs_full)[r] != 0) continue;
      const VertexId u = order_.VertexAt(r);
      if (sender_pre[ui] == kInfSpcDistance) continue;
      const uint64_t through = uint64_t{x_pre} + 1 + uint64_t{sender_pre[ui]};
      if (through < now[u]) {
        if ((now[u] != kInfSpcDistance && bottleneck[u] > r) ||
            FindHubEntry(lx, r) < lx.size()) {
          (*needs_full)[r] = 1;
        }
      }
    }
  }
}

void DynamicSpcIndex::RepairDeletion(VertexId a, VertexId b) {
  const VertexId n = base_graph_.NumVertices();

  std::vector<uint8_t> hub_of_a(n, 0), hub_of_b(n, 0);
  for (const LabelEntry& e : Labels(a)) hub_of_a[e.hub_rank] = 1;
  for (const LabelEntry& e : Labels(b)) hub_of_b[e.hub_rank] = 1;

  // Pre-deletion snapshots of the endpoint labels: subtraction seeds
  // must be the through-edge trough counts as they were before any
  // repair of this update touches them.
  const auto la_span = Labels(a);
  const auto lb_span = Labels(b);
  const std::vector<LabelEntry> la(la_span.begin(), la_span.end());
  const std::vector<LabelEntry> lb(lb_span.begin(), lb_span.end());

  // Detection runs against the pre-deletion graph and index; the two
  // sides are disjoint (u cannot satisfy both distance conditions).
  AffectedSide side_a, side_b;
  DetectAffectedSide(a, b, hub_of_a, hub_of_b, &side_a);
  DetectAffectedSide(b, a, hub_of_a, hub_of_b, &side_b);

  // Every changed pair of a sender hub falls in one of two classes,
  // each with a provable certificate that picks the cheapest repair:
  //
  //  * Count-only changes (trough counts drop, distances hold). The
  //    lost trough path routes `x ... far -> near ... h`, and both of
  //    its edge-endpoint suffixes are restricted shortest — so h must
  //    hold a *valid* entry in both endpoint labels. Repairable by the
  //    subtractive pass, seeded from h's entry at its own side's
  //    endpoint (a stale seed means no trough path crosses at all).
  //
  //  * Distance changes (some pair distance grows; the only source of
  //    brand-new entries). Both pair endpoints must then be full
  //    senders, so a plain post-deletion BFS from each opposite-side
  //    full sender detects every such hub exactly — those few re-run
  //    the full pruned restricted BFS. When the opposite full-sender
  //    set is too large to scan, the side falls back to re-running all
  //    of its full senders.
  struct HubTask {
    Rank rank;
    bool subtract;
    VertexId start;       // subtract: far endpoint the BFS seeds from
    uint32_t seed_dist;   // subtract: entry dist + 1 across the edge
    Count seed_count;     // subtract: through-edge trough count
    const AffectedSide* opposite;
  };
  std::vector<HubTask> tasks;
  tasks.reserve(side_a.full_ranks.size() + side_a.subtract_ranks.size() +
                side_b.full_ranks.size() + side_b.subtract_ranks.size());

  std::vector<uint8_t> seed_ok(n, 0);
  std::vector<uint32_t> seed_dist(n, 0);
  std::vector<Count> seed_count(n, 0);
  // The single-edge path knows each side's far endpoint directly, so
  // it skips the seed_far bookkeeping the batched path needs.
  ValidateDeletionSeeds(side_a.full_ranks, side_a.subtract_ranks,
                        {la.data(), la.size()}, a, b, hub_of_a, hub_of_b,
                        &seed_ok, &seed_dist, &seed_count, nullptr);
  ValidateDeletionSeeds(side_b.full_ranks, side_b.subtract_ranks,
                        {lb.data(), lb.size()}, b, a, hub_of_a, hub_of_b,
                        &seed_ok, &seed_dist, &seed_count, nullptr);

  // The exact distance-change filter costs one plain BFS per opposite
  // full sender; past a few hundred the blanket re-run is cheaper.
  // Pre-deletion endpoint distances feed its through-edge formula and
  // must be captured while the edge still exists — but only when some
  // filtered side actually has full senders to test.
  constexpr size_t kDistanceFilterCap = 256;
  const bool filter_a = side_b.full_ranks.size() <= kDistanceFilterCap;
  const bool filter_b = side_a.full_ranks.size() <= kDistanceFilterCap;
  const bool need_pre_dists = (filter_a && !side_a.full_ranks.empty()) ||
                              (filter_b && !side_b.full_ranks.empty());
  const std::vector<uint32_t> pre_dist_a =
      need_pre_dists ? BfsDistances(a) : std::vector<uint32_t>();
  const std::vector<uint32_t> pre_dist_b =
      need_pre_dists ? BfsDistances(b) : std::vector<uint32_t>();

  PSPC_CHECK(graph_.RemoveEdge(a, b).ok());

  // The filter reads pre-deletion distances only at full senders;
  // extract them parallel to the rank lists (empty dense arrays mean
  // the corresponding call never fires, but guard anyway).
  auto extract_pre = [&](const std::vector<Rank>& ranks,
                         const std::vector<uint32_t>& dense) {
    std::vector<uint32_t> pre;
    pre.reserve(ranks.size());
    for (const Rank r : ranks) {
      pre.push_back(dense.empty() ? kInfSpcDistance
                                  : dense[order_.VertexAt(r)]);
    }
    return pre;
  };
  const std::vector<uint32_t> full_pre_a =
      extract_pre(side_a.full_ranks, pre_dist_a);
  const std::vector<uint32_t> full_pre_b =
      extract_pre(side_b.full_ranks, pre_dist_b);

  std::vector<uint8_t> needs_full(n, 0);
  if (filter_a) {
    MarkDistanceChanges(side_a.full_ranks, full_pre_a, side_b.full_ranks,
                        full_pre_b, &needs_full);
  }
  if (filter_b) {
    MarkDistanceChanges(side_b.full_ranks, full_pre_b, side_a.full_ranks,
                        full_pre_a, &needs_full);
  }

  auto assemble = [&](const AffectedSide& side, bool filtered, VertexId far,
                      const AffectedSide* opposite) {
    for (const Rank r : side.full_ranks) {
      if (!filtered || needs_full[r] != 0) {
        tasks.push_back({r, false, 0, 0, 0, opposite});
      } else if (seed_ok[r] != 0) {
        tasks.push_back({r, true, far, seed_dist[r], seed_count[r], opposite});
      }
      // else: provably no pair of this hub changed in a way that needs
      // a re-run — no grown pair carries an entry or surviving trough,
      // and count-only pairs need a valid common seed.
    }
    for (const Rank r : side.subtract_ranks) {
      if (seed_ok[r] != 0) {
        tasks.push_back({r, true, far, seed_dist[r], seed_count[r], opposite});
      }
    }
  };
  assemble(side_a, filter_a, b, &side_b);
  assemble(side_b, filter_b, a, &side_a);

  // One pass over the region's labels buckets, per subtractive hub,
  // the farthest entry it may have to fix; the subtraction BFS stops
  // at that depth, and hubs nobody stores an entry for are skipped
  // outright (they provably cannot gain entries).
  for (const HubTask& task : tasks) {
    if (task.subtract) {
      subtract_side_[task.rank] = task.opposite == &side_b ? 1 : 2;
    }
  }
  for (const VertexId v : side_b.touched) {
    for (const LabelEntry& e : Labels(v)) {
      if (subtract_side_[e.hub_rank] == 1) {
        bucket_max_[e.hub_rank] =
            std::max<uint32_t>(bucket_max_[e.hub_rank], e.dist);
      }
    }
  }
  for (const VertexId v : side_a.touched) {
    for (const LabelEntry& e : Labels(v)) {
      if (subtract_side_[e.hub_rank] == 2) {
        bucket_max_[e.hub_rank] =
            std::max<uint32_t>(bucket_max_[e.hub_rank], e.dist);
      }
    }
  }

  // Changed label pairs always straddle the cut, so a hub on the
  // a-side only rewrites entries at b-side vertices and vice versa.
  // Ascending global rank keeps pruning sound (a full re-run consults
  // higher-ranked labels, which are already repaired).
  std::sort(tasks.begin(), tasks.end(),
            [](const HubTask& x, const HubTask& y) { return x.rank < y.rank; });
  LabelWriteSink sink(&overlay_);
  for (const HubTask& task : tasks) {
    const RegionView region{task.opposite->flags.data(),
                            &task.opposite->touched};
    if (!task.subtract) {
      RepairHubAfterDeletion(task.rank, region, scratch_, sink, &stats_);
    } else if (bucket_max_[task.rank] >= task.seed_dist) {
      if (!SubtractiveDeleteRepair(task.rank, task.start, task.seed_dist,
                                   task.seed_count, bucket_max_[task.rank],
                                   region, scratch_, sink, &stats_)) {
        RepairHubAfterDeletion(task.rank, region, scratch_, sink, &stats_);
      }
    }
  }

  for (const HubTask& task : tasks) {
    subtract_side_[task.rank] = 0;
    bucket_max_[task.rank] = 0;
  }
}

bool DynamicSpcIndex::SubtractiveDeleteRepair(
    Rank hub_rank, VertexId start, uint32_t seed_dist, Count seed_count,
    uint32_t depth_cap, RegionView region, RepairScratch& s,
    LabelWriteSink& sink, DynamicStats* stats) {
  // Every trough path this hub loses crosses the deleted edge once and
  // continues into the opposite region, so propagating the through-edge
  // count from the far endpoint (restricted below the hub, over the
  // post-deletion graph — the remainder of each lost path avoids the
  // edge) visits only the blast radius instead of the hub's whole
  // coverage. No pruning certificates are needed: a restricted path
  // through a covered vertex is provably longer than the entry distance
  // it would have to match. Saturated counts cannot be subtracted; the
  // caller escalates to the full re-run, which recomputes everything
  // this pass may already have touched (live mode) or discards the
  // staged ops (wave mode).
  bool escalate = seed_count == kSaturatedCount;
  if (!escalate) {
    s.bfs_queue.clear();
    s.bfs_touched.clear();
    s.bfs_dist[start] = seed_dist;
    s.bfs_count[start] = seed_count;
    s.bfs_queue.push_back(start);
    s.bfs_touched.push_back(start);

    for (size_t head = 0; head < s.bfs_queue.size(); ++head) {
      const VertexId v = s.bfs_queue[head];
      const uint32_t dv = s.bfs_dist[v];

      if (region.flags[v] != 0) {
        const auto lv = Labels(v);
        const size_t pos = FindHubEntry(lv, hub_rank);
        if (pos < lv.size() && lv[pos].dist == dv) {
          const LabelEntry old_entry = lv[pos];
          if (old_entry.count == kSaturatedCount ||
              s.bfs_count[v] >= old_entry.count) {
            // Saturation, or subtracting the last trough paths: the
            // entry must go, but `== 0` with surviving alternatives is
            // the only provable case — anything else escalates.
            if (old_entry.count != kSaturatedCount &&
                s.bfs_count[v] == old_entry.count) {
              sink.Erase(v, pos, hub_rank);
              ++stats->entries_erased;
            } else {
              escalate = true;
              break;
            }
          } else {
            sink.Renew(v, pos,
                       {hub_rank, old_entry.dist,
                        old_entry.count - s.bfs_count[v]});
            ++stats->entries_renewed;
          }
        }
      }

      if (dv < depth_cap) {
        graph_.ForEachNeighbor(v, [&](VertexId w) {
          if (order_.RankOf(w) <= hub_rank) return;
          if (s.bfs_dist[w] == kInfSpcDistance) {
            s.bfs_dist[w] = dv + 1;
            s.bfs_count[w] = s.bfs_count[v];
            s.bfs_queue.push_back(w);
            s.bfs_touched.push_back(w);
          } else if (s.bfs_dist[w] == dv + 1) {
            s.bfs_count[w] = SatAdd(s.bfs_count[w], s.bfs_count[v]);
          }
        });
      }
    }

    for (const VertexId v : s.bfs_touched) {
      s.bfs_dist[v] = kInfSpcDistance;
      s.bfs_count[v] = 0;
    }
    if (!escalate) ++stats->subtract_repairs;
  }

  return !escalate;
}

bool DynamicSpcIndex::RepairHubAfterDeletion(
    Rank hub_rank, RegionView region, RepairScratch& s, LabelWriteSink& sink,
    DynamicStats* stats, const int32_t* claim_owner, int32_t claim_self) {
  const VertexId hub = order_.VertexAt(hub_rank);
  LoadHubDist(hub, s);

  // Full pruned restricted BFS from the hub over the post-deletion
  // graph — the same discipline as HP-SPC's per-hub iteration, except
  // that entries are only written at affected region vertices
  // (everything else is provably unchanged and is used for pruning and
  // count propagation only).
  s.bfs_queue.clear();
  s.bfs_touched.clear();
  s.bfs_dist[hub] = 0;
  s.bfs_count[hub] = 1;
  s.bfs_queue.push_back(hub);
  s.bfs_touched.push_back(hub);
  bool aborted = false;

  for (size_t head = 0; head < s.bfs_queue.size(); ++head) {
    const VertexId v = s.bfs_queue[head];
    const uint32_t dv = s.bfs_dist[v];

    // Wave-mode dependency check: visiting a vertex claimed by a
    // lower-rank in-flight task means this run could read that task's
    // not-yet-committed entries — bail out, the caller re-runs this
    // hub sequentially after the wave commits.
    if (claim_owner != nullptr) {
      const int32_t owner = claim_owner[v];
      if (owner >= 0 && owner < claim_self) {
        aborted = true;
        break;
      }
    }

    if (v != hub) {
      const auto lv = Labels(v);
      uint32_t over = kInfSpcDistance;  // certificate via strictly higher
      size_t pos = 0;
      bool has_hub = false;
      LabelEntry old_entry{};
      for (; pos < lv.size() && lv[pos].hub_rank <= hub_rank; ++pos) {
        if (lv[pos].hub_rank == hub_rank) {
          has_hub = true;
          old_entry = lv[pos];
          break;
        }
        const uint32_t hd = s.hub_dist[lv[pos].hub_rank];
        if (hd != kInfSpcDistance) {
          over = std::min(over, hd + lv[pos].dist);
        }
      }

      if (region.flags[v] == 0) {
        // Unaffected pair: the existing entry (if any) is still exact,
        // so the full certificate may include it.
        uint32_t certified = over;
        if (has_hub) {
          certified = std::min(certified,
                               static_cast<uint32_t>(old_entry.dist));
        }
        if (certified < dv) continue;
      } else {
        // Affected pair: the old entry cannot be trusted; prune only
        // via strictly higher hubs, then renew/insert.
        if (dv > over) continue;
        if (!has_hub) {
          sink.Insert(v, pos, {hub_rank, ToLabelDistance(dv), s.bfs_count[v]});
          ++stats->entries_inserted;
        } else if (old_entry.dist != dv || old_entry.count != s.bfs_count[v]) {
          sink.Renew(v, pos, {hub_rank, ToLabelDistance(dv), s.bfs_count[v]});
          ++stats->entries_renewed;
        }
        s.updated[v] = 1;
      }
    }

    graph_.ForEachNeighbor(v, [&](VertexId w) {
      if (order_.RankOf(w) <= hub_rank) return;
      if (s.bfs_dist[w] == kInfSpcDistance) {
        s.bfs_dist[w] = dv + 1;
        s.bfs_count[w] = s.bfs_count[v];
        s.bfs_queue.push_back(w);
        s.bfs_touched.push_back(w);
      } else if (s.bfs_dist[w] == dv + 1) {
        s.bfs_count[w] = SatAdd(s.bfs_count[w], s.bfs_count[v]);
      }
    });
  }

  // Erasure sweep: a region vertex the re-run did not confirm has lost
  // its trough paths to this hub — its entry (when present) is stale
  // and must go.
  if (!aborted) {
    if (sink.staged()) {
      for (const VertexId v : *region.touched) {
        if (order_.RankOf(v) <= hub_rank || s.updated[v] != 0) continue;
        const auto lv = Labels(v);
        const size_t pos = FindHubEntry(lv, hub_rank);
        if (pos < lv.size()) {
          sink.Erase(v, pos, hub_rank);
          ++stats->entries_erased;
        }
      }
    } else {
      // Per-vertex erases are independent, so the sweep is planned
      // cost-aware (label sizes vary wildly) and runs through the
      // shared parallel-for.
      std::vector<VertexId> to_erase;
      for (const VertexId v : *region.touched) {
        if (order_.RankOf(v) <= hub_rank || s.updated[v] != 0) continue;
        const auto lv = Labels(v);
        if (FindHubEntry(lv, hub_rank) < lv.size()) to_erase.push_back(v);
      }
      if (!to_erase.empty()) {
        std::vector<uint64_t> costs;
        costs.reserve(to_erase.size());
        for (const VertexId v : to_erase) costs.push_back(Labels(v).size());
        const SchedulePlan plan = PlanIteration(
            ScheduleKind::kCostAware, to_erase, costs, order_.VertexToRank());
        // Copy-on-write materialization touches the overlay's shared
        // spine (root/page/chunk unsharing) and stays sequential; the
        // erases themselves hit disjoint private chunks.
        std::vector<std::vector<LabelEntry>*> lists;
        lists.reserve(plan.sequence.size());
        for (const VertexId v : plan.sequence) {
          lists.push_back(&overlay_.Mutable(v));
        }
        // Capped by the OpenMP environment (OMP_NUM_THREADS): the TSan
        // job pins teams to one thread because libgomp is not
        // instrumented, and an explicit num_threads must not undo that.
        const int sweep_threads = std::min(ResolvedThreads(), MaxThreads());
        ParallelForDynamic(lists.size(), sweep_threads, plan.chunk,
                           [&](size_t i) {
                             std::vector<LabelEntry>& mv = *lists[i];
                             const size_t pos = FindHubEntry(
                                 {mv.data(), mv.size()}, hub_rank);
                             if (pos < mv.size()) {
                               mv.erase(mv.begin() +
                                        static_cast<ptrdiff_t>(pos));
                             }
                           });
        stats->entries_erased += lists.size();
      }
    }
    ++stats->affected_hubs;
  }

  ResetHubDist(hub, s);
  for (const VertexId v : s.bfs_touched) {
    s.bfs_dist[v] = kInfSpcDistance;
    s.bfs_count[v] = 0;
    s.updated[v] = 0;
  }
  return !aborted;
}

}  // namespace pspc
