#include "src/digraph/digraph.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/random.h"

namespace pspc {

DiGraph::DiGraph(std::vector<EdgeId> out_offsets,
                 std::vector<VertexId> out_nbrs,
                 std::vector<EdgeId> in_offsets,
                 std::vector<VertexId> in_nbrs)
    : out_offsets_(std::move(out_offsets)),
      out_neighbors_(std::move(out_nbrs)),
      in_offsets_(std::move(in_offsets)),
      in_neighbors_(std::move(in_nbrs)) {
  PSPC_CHECK(!out_offsets_.empty());
  PSPC_CHECK(out_offsets_.size() == in_offsets_.size());
  PSPC_CHECK(out_offsets_.back() == out_neighbors_.size());
  PSPC_CHECK(in_offsets_.back() == in_neighbors_.size());
  PSPC_CHECK(out_neighbors_.size() == in_neighbors_.size());
}

bool DiGraph::HasEdge(VertexId u, VertexId v) const {
  const auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

void DiGraphBuilder::AddEdge(VertexId u, VertexId v) {
  PSPC_CHECK_MSG(u < n_ && v < n_,
                 "edge (" << u << "," << v << ") outside [0," << n_ << ")");
  if (u == v) return;
  edges_.emplace_back(u, v);
}

DiGraph DiGraphBuilder::Build() const {
  std::vector<std::pair<VertexId, VertexId>> sorted = edges_;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::vector<EdgeId> out_offsets(static_cast<size_t>(n_) + 1, 0);
  std::vector<EdgeId> in_offsets(static_cast<size_t>(n_) + 1, 0);
  for (const auto& [u, v] : sorted) {
    ++out_offsets[u + 1];
    ++in_offsets[v + 1];
  }
  for (size_t i = 1; i <= n_; ++i) {
    out_offsets[i] += out_offsets[i - 1];
    in_offsets[i] += in_offsets[i - 1];
  }
  std::vector<VertexId> out_nbrs(sorted.size());
  std::vector<VertexId> in_nbrs(sorted.size());
  std::vector<EdgeId> out_cursor(out_offsets.begin(), out_offsets.end() - 1);
  std::vector<EdgeId> in_cursor(in_offsets.begin(), in_offsets.end() - 1);
  for (const auto& [u, v] : sorted) {
    out_nbrs[out_cursor[u]++] = v;
    in_nbrs[in_cursor[v]++] = u;
  }
  for (VertexId v = 0; v < n_; ++v) {
    std::sort(in_nbrs.begin() + static_cast<ptrdiff_t>(in_offsets[v]),
              in_nbrs.begin() + static_cast<ptrdiff_t>(in_offsets[v + 1]));
  }
  // Out-lists are already sorted: edges were sorted by (source, target).
  return DiGraph(std::move(out_offsets), std::move(out_nbrs),
                 std::move(in_offsets), std::move(in_nbrs));
}

DiGraph MakeDiGraph(VertexId num_vertices,
                    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  DiGraphBuilder builder(num_vertices);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return builder.Build();
}

DiGraph FromUndirected(const Graph& graph) {
  DiGraphBuilder builder(graph.NumVertices());
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (VertexId v : graph.Neighbors(u)) builder.AddEdge(u, v);
  }
  return builder.Build();
}

DiGraph GenerateRandomDiGraph(VertexId num_vertices, EdgeId num_edges,
                              uint64_t seed) {
  PSPC_CHECK(num_vertices >= 2 || num_edges == 0);
  Rng rng(seed);
  DiGraphBuilder builder(num_vertices);
  const EdgeId max_possible =
      static_cast<EdgeId>(num_vertices) * (num_vertices - 1);
  const EdgeId target = std::min(num_edges, max_possible);
  std::vector<std::vector<VertexId>> out(num_vertices);
  EdgeId added = 0;
  while (added < target) {
    const auto u = static_cast<VertexId>(rng.NextBounded(num_vertices));
    const auto v = static_cast<VertexId>(rng.NextBounded(num_vertices));
    if (u == v) continue;
    auto& lst = out[u];
    if (std::find(lst.begin(), lst.end(), v) != lst.end()) continue;
    lst.push_back(v);
    builder.AddEdge(u, v);
    ++added;
  }
  return builder.Build();
}

DiGraph GenerateDiCycle(VertexId num_vertices) {
  PSPC_CHECK(num_vertices >= 2);
  DiGraphBuilder builder(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    builder.AddEdge(v, (v + 1) % num_vertices);
  }
  return builder.Build();
}

}  // namespace pspc
