#include "src/label/label_set.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pspc {

void LevelLabelStore::CommitLevel(VertexId v,
                                  std::span<const LabelEntry> batch) {
  PSPC_CHECK(std::is_sorted(batch.begin(), batch.end(), ByHubRank));
  auto& vec = entries_[v];
  vec.insert(vec.end(), batch.begin(), batch.end());
  level_begin_[v].push_back(static_cast<uint32_t>(vec.size()));
}

size_t LevelLabelStore::TotalEntries() const {
  size_t total = 0;
  for (const auto& vec : entries_) total += vec.size();
  return total;
}

}  // namespace pspc
