#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/baseline/bfs_spc.h"
#include "src/common/random.h"
#include "src/core/builder_facade.h"
#include "src/dynamic/dynamic_graph.h"
#include "src/dynamic/dynamic_spc_index.h"
#include "src/dynamic/edge_update.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "tests/test_util.h"

namespace pspc {
namespace {

BuildOptions SmallBuildOptions() {
  BuildOptions options;
  options.num_landmarks = 4;
  return options;
}

DynamicOptions NoRebuildOptions() {
  // Repair-only: an absurd threshold so every answer comes from the
  // incremental path, never from a rescue rebuild.
  DynamicOptions options;
  options.rebuild_threshold = 1e18;
  options.rebuild_options = SmallBuildOptions();
  return options;
}

/// Mirror of the evolving edge set, for oracles and update sampling.
class EdgeMirror {
 public:
  explicit EdgeMirror(const Graph& g) : n_(g.NumVertices()) {
    for (VertexId u = 0; u < n_; ++u) {
      for (const VertexId v : g.Neighbors(u)) {
        if (u < v) edges_.insert({u, v});
      }
    }
  }

  void Apply(const EdgeUpdate& up) {
    const auto key = std::minmax(up.u, up.v);
    if (up.kind == EdgeUpdateKind::kInsert) {
      edges_.insert(key);
    } else {
      edges_.erase(key);
    }
  }

  Graph Materialize() const {
    GraphBuilder builder(n_);
    for (const auto& [u, v] : edges_) builder.AddEdge(u, v);
    return builder.Build();
  }

  /// Random valid update: ~half deletions of existing edges, ~half
  /// insertions of currently absent pairs.
  EdgeUpdate Sample(Rng& rng) {
    const bool remove = !edges_.empty() && rng.NextBool(0.5);
    if (remove) {
      auto it = edges_.begin();
      std::advance(it, static_cast<long>(rng.NextBounded(edges_.size())));
      return {it->first, it->second, EdgeUpdateKind::kDelete};
    }
    while (true) {
      const auto u = static_cast<VertexId>(rng.NextBounded(n_));
      const auto v = static_cast<VertexId>(rng.NextBounded(n_));
      if (u == v) continue;
      if (!edges_.contains(std::minmax(u, v))) {
        return {std::min(u, v), std::max(u, v), EdgeUpdateKind::kInsert};
      }
    }
  }

  size_t NumEdges() const { return edges_.size(); }

 private:
  VertexId n_;
  std::set<std::pair<VertexId, VertexId>> edges_;
};

void ExpectAllPairsMatchOracle(const DynamicSpcIndex& index, const Graph& g,
                               const std::string& context) {
  for (const auto& [s, t] : testing::AllPairs(g.NumVertices())) {
    ASSERT_EQ(index.Query(s, t), BfsSpcPair(g, s, t))
        << context << " pair (" << s << "," << t << ")";
  }
}

// ------------------------------------------------- randomized streams

struct StreamCase {
  std::string name;
  Graph (*make)();
  uint64_t seed;
};

Graph MakeEr() { return GenerateErdosRenyi(40, 90, 11); }
Graph MakeBa() { return GenerateBarabasiAlbert(40, 3, 12); }
Graph MakeWs() { return GenerateWattsStrogatz(40, 3, 0.2, 13); }
Graph MakeGrid() { return GenerateRoadGrid(6, 6, 0.9, 0.1, 14); }
Graph MakeLadder() { return GenerateDiamondLadder(5, 3); }
Graph MakeSparse() { return GenerateErdosRenyi(40, 30, 15); }  // fragmented

const StreamCase kStreamCases[] = {
    {"erdos_renyi", &MakeEr, 501},
    {"barabasi_albert", &MakeBa, 502},
    {"watts_strogatz", &MakeWs, 503},
    {"road_grid", &MakeGrid, 504},
    {"diamond_ladder", &MakeLadder, 505},
    {"sparse_fragmented", &MakeSparse, 506},
};

class DynamicStreamTest : public ::testing::TestWithParam<int> {
 protected:
  const StreamCase& Case() const { return kStreamCases[GetParam()]; }
};

// The central acceptance property: along a random insert/delete
// stream, every query answer matches a BFS on the current graph (and
// hence a freshly rebuilt index, which the static suite pins to the
// oracle).
TEST_P(DynamicStreamTest, QueriesMatchOracleAfterEveryUpdate) {
  const Graph start = Case().make();
  DynamicSpcIndex index(start, SmallBuildOptions(), NoRebuildOptions());
  EdgeMirror mirror(start);
  Rng rng(Case().seed);

  for (int step = 0; step < 50; ++step) {
    const EdgeUpdate up = mirror.Sample(rng);
    ASSERT_TRUE(index.Apply(up).ok()) << Case().name << " step " << step;
    mirror.Apply(up);
    const Graph current = mirror.Materialize();
    ExpectAllPairsMatchOracle(index, current,
                              Case().name + " step " + std::to_string(step));
  }
  EXPECT_EQ(index.Stats().rebuilds, 0u);
  EXPECT_EQ(index.NumEdges(), mirror.NumEdges());
}

// Same stream, but compared against a from-scratch rebuild: the
// maintained index must answer exactly like one built on the final
// graph (entries may differ — stale labels are allowed — but every
// query must agree).
TEST_P(DynamicStreamTest, FinalStateMatchesFreshRebuild) {
  const Graph start = Case().make();
  DynamicSpcIndex index(start, SmallBuildOptions(), NoRebuildOptions());
  EdgeMirror mirror(start);
  Rng rng(Case().seed + 1000);

  for (int step = 0; step < 40; ++step) {
    const EdgeUpdate up = mirror.Sample(rng);
    ASSERT_TRUE(index.Apply(up).ok());
    mirror.Apply(up);
  }
  const Graph final_graph = mirror.Materialize();
  const SpcIndex fresh = BuildIndex(final_graph, SmallBuildOptions()).index;
  for (const auto& [s, t] : testing::AllPairs(final_graph.NumVertices())) {
    ASSERT_EQ(index.Query(s, t), fresh.Query(s, t))
        << Case().name << " pair (" << s << "," << t << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, DynamicStreamTest,
    ::testing::Range(0, static_cast<int>(std::size(kStreamCases))),
    [](const ::testing::TestParamInfo<int>& info) {
      return kStreamCases[info.param].name;
    });

// Regression: a stale label entry left behind by an insertion (stored
// distance longer than the true one, harmless at first) must not leak
// into answers when a later *deletion* grows the true distance to meet
// it. Needs a larger graph and a long mixed stream to manifest, which
// is why this runs beyond the 40-vertex family sweep above.
TEST(DynamicStreamRegressionTest, StaleEntryMeetsGrownDistance) {
  const Graph start = GenerateErdosRenyi(96, 220, 8);
  DynamicSpcIndex index(start, SmallBuildOptions(), NoRebuildOptions());
  EdgeMirror mirror(start);
  std::set<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 96; ++u) {
    for (const VertexId v : start.Neighbors(u)) {
      if (u < v) edges.insert({u, v});
    }
  }
  // The exact draw sequence that produced the original failure at step
  // 88 (a rejected insertion consumes one draw and moves on).
  Rng rng(902);
  int applied = 0;
  while (applied < 95) {
    EdgeUpdate up;
    if (!edges.empty() && rng.NextBool(0.5)) {
      auto it = edges.begin();
      std::advance(it, static_cast<long>(rng.NextBounded(edges.size())));
      up = {it->first, it->second, EdgeUpdateKind::kDelete};
      edges.erase(it);
    } else {
      const auto u = static_cast<VertexId>(rng.NextBounded(96));
      const auto v = static_cast<VertexId>(rng.NextBounded(96));
      if (u == v || edges.contains(std::minmax(u, v))) continue;
      up = {std::min(u, v), std::max(u, v), EdgeUpdateKind::kInsert};
      edges.insert(std::minmax(u, v));
    }
    ASSERT_TRUE(index.Apply(up).ok());
    mirror.Apply(up);
    ++applied;
    ExpectAllPairsMatchOracle(index, mirror.Materialize(),
                              "er96 step " + std::to_string(applied));
  }
}

// ------------------------------------------------- targeted scenarios

TEST(DynamicSpcIndexTest, InsertBridgesTwoComponents) {
  // Two disjoint paths; the inserted edge is the only crossing.
  GraphBuilder b(8);
  for (VertexId v = 0; v + 1 < 4; ++v) {
    b.AddEdge(v, v + 1);
    b.AddEdge(v + 4, v + 5);
  }
  const Graph g = b.Build();
  DynamicSpcIndex index(g, SmallBuildOptions(), NoRebuildOptions());
  EXPECT_EQ(index.Query(0, 7).distance, kInfSpcDistance);

  ASSERT_TRUE(index.InsertEdge(3, 4).ok());
  EXPECT_EQ(index.Query(0, 7), (SpcResult{7, 1}));
  EXPECT_EQ(index.Query(3, 4), (SpcResult{1, 1}));

  EdgeMirror mirror(g);
  mirror.Apply({3, 4, EdgeUpdateKind::kInsert});
  ExpectAllPairsMatchOracle(index, mirror.Materialize(), "bridge insert");
}

TEST(DynamicSpcIndexTest, DeleteBridgeDisconnects) {
  const Graph g = GeneratePath(9);
  DynamicSpcIndex index(g, SmallBuildOptions(), NoRebuildOptions());
  ASSERT_TRUE(index.DeleteEdge(4, 5).ok());
  EXPECT_EQ(index.Query(0, 8).distance, kInfSpcDistance);
  EXPECT_EQ(index.Query(0, 4), (SpcResult{4, 1}));
  EXPECT_EQ(index.Query(5, 8), (SpcResult{3, 1}));
}

TEST(DynamicSpcIndexTest, ParallelShortestPathCountsUpdate) {
  // A 4-cycle has two shortest paths between opposite corners; adding
  // a chord changes distance, deleting restores.
  const Graph g = GenerateCycle(4);
  DynamicSpcIndex index(g, SmallBuildOptions(), NoRebuildOptions());
  EXPECT_EQ(index.Query(0, 2), (SpcResult{2, 2}));

  ASSERT_TRUE(index.InsertEdge(0, 2).ok());
  EXPECT_EQ(index.Query(0, 2), (SpcResult{1, 1}));

  ASSERT_TRUE(index.DeleteEdge(0, 2).ok());
  EXPECT_EQ(index.Query(0, 2), (SpcResult{2, 2}));
}

TEST(DynamicSpcIndexTest, UpdateErrorsLeaveIndexUntouched) {
  const Graph g = GenerateCycle(6);
  DynamicSpcIndex index(g, SmallBuildOptions(), NoRebuildOptions());

  EXPECT_EQ(index.InsertEdge(0, 0).code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(index.InsertEdge(0, 1).code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(index.InsertEdge(0, 99).code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(index.DeleteEdge(0, 3).code(), Status::Code::kNotFound);
  EXPECT_EQ(index.DeleteEdge(0, 99).code(), Status::Code::kInvalidArgument);

  EXPECT_EQ(index.NumEdges(), 6u);
  ExpectAllPairsMatchOracle(index, g, "after rejected updates");
}

TEST(DynamicSpcIndexTest, StalenessPolicyTriggersRebuild) {
  DynamicOptions options;
  options.rebuild_threshold = 0.0;  // any overlay growth forces a rebuild
  options.rebuild_options = SmallBuildOptions();
  const Graph g = GenerateErdosRenyi(32, 70, 21);
  DynamicSpcIndex index(g, SmallBuildOptions(), options);
  EdgeMirror mirror(g);
  Rng rng(99);

  for (int step = 0; step < 8; ++step) {
    const EdgeUpdate up = mirror.Sample(rng);
    ASSERT_TRUE(index.Apply(up).ok());
    mirror.Apply(up);
  }
  EXPECT_GT(index.Stats().rebuilds, 0u);
  EXPECT_NEAR(index.StalenessRatio(), 0.0, 1e-12);  // overlay folded away
  ExpectAllPairsMatchOracle(index, mirror.Materialize(), "post rebuild");
}

TEST(DynamicSpcIndexTest, ApplyBatchValidatesUpFront) {
  const Graph g = GenerateCycle(5);
  DynamicSpcIndex index(g, SmallBuildOptions(), NoRebuildOptions());

  EdgeUpdateBatch bad;
  bad.Insert(0, 2);
  bad.Insert(3, 3);  // self-loop: rejected before anything applies
  EXPECT_EQ(index.ApplyBatch(bad).code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(index.NumEdges(), 5u);

  EdgeUpdateBatch good;
  good.Insert(0, 2);
  good.Delete(0, 1);
  ASSERT_TRUE(index.ApplyBatch(good).ok());
  EXPECT_EQ(index.NumEdges(), 5u);
  EXPECT_EQ(index.Stats().insertions_applied, 1u);
  EXPECT_EQ(index.Stats().deletions_applied, 1u);
}

TEST(DynamicSpcIndexTest, WrapsPrebuiltIndex) {
  const Graph g = GenerateBarabasiAlbert(48, 3, 31);
  SpcIndex built = BuildIndex(g, SmallBuildOptions()).index;
  DynamicSpcIndex index(g, std::move(built), NoRebuildOptions());
  ASSERT_TRUE(index.InsertEdge(0, 47).ok() ||
              index.DeleteEdge(0, 47).ok());  // one of the two must apply
  EdgeMirror mirror(g);
  mirror.Apply({0, 47,
                g.HasEdge(0, 47) ? EdgeUpdateKind::kDelete
                                 : EdgeUpdateKind::kInsert});
  ExpectAllPairsMatchOracle(index, mirror.Materialize(), "prebuilt wrap");
}

// ------------------------------------------------------ dynamic graph

TEST(DynamicGraphTest, OverlayMatchesMaterialized) {
  const Graph g = GenerateErdosRenyi(24, 50, 41);
  DynamicGraph view(&g);
  EXPECT_EQ(view.NumEdges(), g.NumEdges());

  ASSERT_TRUE(view.AddEdge(0, 23).ok() || view.RemoveEdge(0, 23).ok());
  const Graph snapshot = view.Materialize();
  EXPECT_EQ(snapshot.NumEdges(), view.NumEdges());
  for (VertexId u = 0; u < 24; ++u) {
    std::vector<VertexId> seen;
    view.ForEachNeighbor(u, [&](VertexId w) { seen.push_back(w); });
    std::sort(seen.begin(), seen.end());
    const auto expected = snapshot.Neighbors(u);
    ASSERT_EQ(seen.size(), expected.size()) << "vertex " << u;
    EXPECT_TRUE(std::equal(seen.begin(), seen.end(), expected.begin()));
    EXPECT_EQ(view.Degree(u), snapshot.Degree(u));
  }
}

TEST(DynamicGraphTest, AddRemoveRoundTrip) {
  const Graph g = GeneratePath(5);
  DynamicGraph view(&g);
  ASSERT_TRUE(view.AddEdge(0, 4).ok());
  EXPECT_TRUE(view.HasEdge(0, 4));
  EXPECT_EQ(view.AddEdge(4, 0).code(), Status::Code::kInvalidArgument);
  ASSERT_TRUE(view.RemoveEdge(4, 0).ok());
  EXPECT_FALSE(view.HasEdge(0, 4));
  ASSERT_TRUE(view.RemoveEdge(1, 2).ok());
  ASSERT_TRUE(view.AddEdge(2, 1).ok());  // un-remove a base edge
  EXPECT_EQ(view.NumEdges(), g.NumEdges());
  EXPECT_EQ(view.Materialize(), g);
}

// ------------------------------------------------------ update stream IO

TEST(EdgeUpdateTest, ParseAndRoundTrip) {
  const auto parsed = ParseUpdateStream(
      "# churn\n"
      "i 3 17\n"
      "d 17 3\n"
      "\n"
      "i 0 1\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const EdgeUpdateBatch& batch = parsed.value();
  ASSERT_EQ(batch.Size(), 3u);
  EXPECT_EQ(batch.Updates()[0], (EdgeUpdate{3, 17, EdgeUpdateKind::kInsert}));
  EXPECT_EQ(batch.Updates()[1], (EdgeUpdate{17, 3, EdgeUpdateKind::kDelete}));

  const std::string path = ::testing::TempDir() + "/updates.txt";
  ASSERT_TRUE(SaveUpdateStream(batch, path).ok());
  const auto reloaded = LoadUpdateStream(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().Updates(), batch.Updates());
}

TEST(EdgeUpdateTest, ParseRejectsGarbage) {
  EXPECT_EQ(ParseUpdateStream("x 1 2\n").status().code(),
            Status::Code::kCorruption);
  EXPECT_EQ(ParseUpdateStream("i 1\n").status().code(),
            Status::Code::kCorruption);
  // Trailing garbage is corruption, not a silently accepted update.
  EXPECT_EQ(ParseUpdateStream("i 1 2 junk\n").status().code(),
            Status::Code::kCorruption);
  EXPECT_EQ(ParseUpdateStream("d 3 4 5\n").status().code(),
            Status::Code::kCorruption);
  EXPECT_EQ(LoadUpdateStream("/nonexistent/updates.txt").status().code(),
            Status::Code::kIOError);
}

TEST(EdgeUpdateTest, ValidateChecksUniverse) {
  EdgeUpdateBatch batch;
  batch.Insert(0, 9);
  EXPECT_EQ(batch.Validate(10).code(), Status::Code::kOk);
  EXPECT_EQ(batch.Validate(9).code(), Status::Code::kOutOfRange);
  batch.Delete(2, 2);
  EXPECT_EQ(batch.Validate(10).code(), Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace pspc
