#ifndef PSPC_SRC_DYNAMIC_STATS_EXPORT_H_
#define PSPC_SRC_DYNAMIC_STATS_EXPORT_H_

#include <cstddef>
#include <cstdint>

#include "src/dynamic/repair_core.h"
#include "src/obs/metrics.h"

/// Bridges the dynamic layer's `DynamicStats` into the metrics
/// registry so the two reporting paths can never disagree: the repair
/// kernels keep accumulating into the single-writer `DynamicStats`
/// struct they always have (exact, no atomics in the BFS inner loops),
/// and after every public mutation the owning index calls
/// `ExportDelta`, which pushes the since-last-export difference of
/// each field into the corresponding registry counter. Both views are
/// fed by the identical deltas in the same code path, so
/// `Stats().resumed_bfs_runs == dynamic.resumed_bfs_runs_total` holds
/// at every quiesce point by construction.
///
/// The exporter also owns the dynamic layer's stage-timing histograms
/// (plan/repair/rebuild) and point-in-time gauges (generation, overlay
/// size) so each index wires exactly one object.
namespace pspc {
namespace obs {

class DynamicStatsExporter {
 public:
  /// `registry == nullptr` selects the process-global registry.
  explicit DynamicStatsExporter(MetricsRegistry* registry = nullptr);

  DynamicStatsExporter(const DynamicStatsExporter&) = delete;
  DynamicStatsExporter& operator=(const DynamicStatsExporter&) = delete;

  /// Adds `now - <last exported>` of every monotonic field to the
  /// registry counters. Single-writer (the index's thread of control);
  /// calling with an unchanged snapshot is a no-op, so redundant calls
  /// on nested mutation paths are safe.
  void ExportDelta(const DynamicStats& now);

  /// Point-in-time state published after each mutation.
  void SetGauges(uint64_t generation, size_t overlay_entries,
                 size_t overlay_vertices, size_t base_entries);

  /// 1 while a staleness rebuild is running, 0 otherwise — the health
  /// watchdog reports a long-running rebuild as DEGRADED rather than
  /// misreading its publish gap as a stall.
  Gauge* rebuild_in_progress() const { return rebuild_in_progress_; }

  /// Stage-timing histograms (microseconds) the index records into
  /// directly: batch-plan validation/coalescing, label repair, and
  /// staleness rebuild.
  Histogram* plan_us() const { return plan_us_; }
  Histogram* repair_us() const { return repair_us_; }
  Histogram* rebuild_us() const { return rebuild_us_; }

  MetricsRegistry* registry() const { return registry_; }

 private:
  MetricsRegistry* registry_;
  DynamicStats last_{};

  Counter* insertions_applied_;
  Counter* deletions_applied_;
  Counter* batches_applied_;
  Counter* updates_coalesced_;
  Counter* resumed_bfs_runs_;
  Counter* full_hub_repairs_;
  Counter* subtract_repairs_;
  Counter* entries_inserted_;
  Counter* entries_renewed_;
  Counter* entries_erased_;
  Counter* parallel_waves_;
  Counter* parallel_hub_runs_;
  Counter* deferred_hub_runs_;
  Counter* rebuilds_;

  Gauge* generation_;
  Gauge* overlay_entries_;
  Gauge* overlay_vertices_;
  Gauge* base_entries_;
  Gauge* rebuild_in_progress_;

  Histogram* plan_us_;
  Histogram* repair_us_;
  Histogram* rebuild_us_;
};

}  // namespace obs
}  // namespace pspc

#endif  // PSPC_SRC_DYNAMIC_STATS_EXPORT_H_
