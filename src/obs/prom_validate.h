#ifndef PSPC_SRC_OBS_PROM_VALIDATE_H_
#define PSPC_SRC_OBS_PROM_VALIDATE_H_

#include <cstdlib>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metric_names.h"

/// Prometheus text-exposition validation, shared by
/// `tools/metrics_schema_check --prom`, the ops-plane tests, and (for
/// the name mapping) `MetricsRegistry::ToPrometheusText` itself.
/// Header-only on purpose: the tools are built without linking the
/// pspc library.
///
/// Checks, in exposition order:
///   - metric-family names match `[a-zA-Z_:][a-zA-Z0-9_:]*`
///   - every family declares `# HELP` then `# TYPE` (paired, in that
///     order, one of counter|gauge|histogram), exactly once
///   - samples belong to the declared family (histograms: `_bucket`
///     with an `le` label, `_sum`, `_count`; others: the bare name)
///   - histogram completeness: at least one bucket, an `le="+Inf"`
///     bucket, cumulative bucket counts non-decreasing, `+Inf`
///     cumulative equal to `_count`, `_sum`/`_count` present
///   - sample values parse as numbers
///   - optionally (`require_catalog`) every family maps back to a name
///     in src/obs/metric_names.h with the matching metric type
namespace pspc {
namespace obs {

/// The registry's name mapping: `pspc_` prefix, dots to underscores.
/// "serve.queries_total" -> "pspc_serve_queries_total".
inline std::string PrometheusMetricName(std::string_view dotted) {
  std::string out = "pspc_";
  out.reserve(out.size() + dotted.size());
  for (const char c : dotted) out += c == '.' ? '_' : c;
  return out;
}

struct PromValidationResult {
  bool ok = true;
  std::string error;    // first violation, with line number
  size_t families = 0;  // metric families successfully validated
};

namespace prom_internal {

inline bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

inline bool ParseNumber(std::string_view token, double* out) {
  if (token.empty()) return false;
  if (token == "+Inf" || token == "-Inf" || token == "NaN") {
    return false;  // our exporter never emits non-finite sample values
  }
  const std::string s(token);
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace prom_internal

inline PromValidationResult ValidatePrometheusText(std::string_view text,
                                                   bool require_catalog) {
  using prom_internal::ParseNumber;
  using prom_internal::ValidMetricName;

  PromValidationResult result;
  auto fail = [&result](size_t line_no, const std::string& what) {
    result.ok = false;
    result.error = "line ";
    result.error += std::to_string(line_no);
    result.error += ": ";
    result.error += what;
    return result;
  };

  enum class Kind { kCounter, kGauge, kHistogram };
  struct Family {
    std::string name;
    Kind kind = Kind::kCounter;
    bool has_type = false;
    size_t samples = 0;
    // histogram state
    size_t buckets = 0;
    double last_cumulative = 0.0;
    bool saw_inf = false;
    double inf_cumulative = 0.0;
    bool saw_sum = false;
    bool saw_count = false;
    double count_value = 0.0;
    size_t declared_line = 0;
  };

  std::vector<std::string> seen_families;
  Family family;
  bool open = false;

  auto finalize = [&](size_t line_no) -> bool {
    if (!open) return true;
    if (!family.has_type) {
      fail(family.declared_line,
           "family '" + family.name + "' has HELP but no TYPE");
      return false;
    }
    if (family.samples == 0) {
      fail(family.declared_line,
           "family '" + family.name + "' declares no samples");
      return false;
    }
    if (family.kind == Kind::kHistogram) {
      if (family.buckets == 0) {
        fail(line_no, "histogram '" + family.name + "' has no _bucket");
        return false;
      }
      if (!family.saw_inf) {
        fail(line_no,
             "histogram '" + family.name + "' missing le=\"+Inf\" bucket");
        return false;
      }
      if (!family.saw_sum || !family.saw_count) {
        fail(line_no, "histogram '" + family.name + "' missing _sum/_count");
        return false;
      }
      if (family.inf_cumulative != family.count_value) {
        fail(line_no, "histogram '" + family.name +
                          "' +Inf bucket disagrees with _count");
        return false;
      }
    }
    ++result.families;
    open = false;
    return true;
  };

  size_t pos = 0, line_no = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, (eol == std::string_view::npos ? text.size() : eol) - pos);
    pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line.substr(0, 7) == "# HELP ") {
      if (!finalize(line_no)) return result;
      std::string_view rest = line.substr(7);
      const size_t sp = rest.find(' ');
      const std::string_view name = rest.substr(0, sp);
      if (!ValidMetricName(name)) {
        return fail(line_no, "bad metric name '" + std::string(name) + "'");
      }
      if (sp == std::string_view::npos || rest.substr(sp + 1).empty()) {
        return fail(line_no,
                    "HELP for '" + std::string(name) + "' has no text");
      }
      for (const std::string& prior : seen_families) {
        if (prior == name) {
          return fail(line_no,
                      "duplicate family '" + std::string(name) + "'");
        }
      }
      family = Family{};
      family.name = std::string(name);
      family.declared_line = line_no;
      seen_families.push_back(family.name);
      open = true;
      continue;
    }

    if (line.substr(0, 7) == "# TYPE ") {
      std::string_view rest = line.substr(7);
      const size_t sp = rest.find(' ');
      const std::string_view name = rest.substr(0, sp);
      if (!open || name != family.name) {
        return fail(line_no, "TYPE for '" + std::string(name) +
                                 "' not immediately preceded by its HELP");
      }
      if (family.has_type) {
        return fail(line_no,
                    "duplicate TYPE for '" + std::string(name) + "'");
      }
      if (family.samples != 0) {
        return fail(line_no, "TYPE for '" + std::string(name) +
                                 "' appears after its samples");
      }
      const std::string_view type =
          sp == std::string_view::npos ? std::string_view() : rest.substr(sp + 1);
      if (type == "counter") {
        family.kind = Kind::kCounter;
      } else if (type == "gauge") {
        family.kind = Kind::kGauge;
      } else if (type == "histogram") {
        family.kind = Kind::kHistogram;
      } else {
        return fail(line_no, "unknown TYPE '" + std::string(type) + "'");
      }
      family.has_type = true;
      if (require_catalog) {
        bool known = false;
        auto match = [&](std::span<const std::string_view> names) {
          for (const std::string_view dotted : names) {
            if (PrometheusMetricName(dotted) == family.name) return true;
          }
          return false;
        };
        switch (family.kind) {
          case Kind::kCounter: known = match(kCounterNames); break;
          case Kind::kGauge: known = match(kGaugeNames); break;
          case Kind::kHistogram: known = match(kHistogramNames); break;
        }
        if (!known) {
          return fail(line_no, "family '" + family.name +
                                   "' is not in the metric catalog (or has "
                                   "the wrong type)");
        }
      }
      continue;
    }

    if (line[0] == '#') continue;  // other comments: tolerated

    // Sample line: name[{labels}] value
    if (!open || !family.has_type) {
      return fail(line_no, "sample before a HELP/TYPE declaration");
    }
    const size_t brace = line.find('{');
    const size_t name_end =
        brace == std::string_view::npos ? line.find(' ') : brace;
    const std::string_view sample_name = line.substr(0, name_end);
    if (!ValidMetricName(sample_name)) {
      return fail(line_no,
                  "bad sample name '" + std::string(sample_name) + "'");
    }
    std::string_view labels;
    std::string_view value_part;
    if (brace != std::string_view::npos) {
      const size_t close = line.find('}', brace);
      if (close == std::string_view::npos) {
        return fail(line_no, "unterminated label set");
      }
      labels = line.substr(brace + 1, close - brace - 1);
      value_part = line.substr(close + 1);
      while (!value_part.empty() && value_part[0] == ' ') {
        value_part.remove_prefix(1);
      }
    } else {
      if (name_end == std::string_view::npos) {
        return fail(line_no, "sample has no value");
      }
      value_part = line.substr(name_end + 1);
    }
    double value = 0.0;
    if (!ParseNumber(value_part, &value)) {
      return fail(line_no,
                  "bad sample value '" + std::string(value_part) + "'");
    }

    if (family.kind == Kind::kHistogram) {
      const std::string& base = family.name;
      if (sample_name == base + "_bucket") {
        const std::string_view le_prefix = "le=\"";
        if (labels.substr(0, le_prefix.size()) != le_prefix ||
            labels.back() != '"') {
          return fail(line_no, "_bucket sample without an le label");
        }
        const std::string_view le =
            labels.substr(le_prefix.size(),
                          labels.size() - le_prefix.size() - 1);
        double bound = 0.0;
        if (le == "+Inf") {
          family.saw_inf = true;
          family.inf_cumulative = value;
        } else if (!ParseNumber(le, &bound)) {
          return fail(line_no, "bad le bound '" + std::string(le) + "'");
        } else if (family.saw_inf) {
          return fail(line_no, "finite bucket after le=\"+Inf\"");
        }
        if (value < family.last_cumulative) {
          return fail(line_no, "histogram '" + base +
                                   "' cumulative bucket counts decrease");
        }
        family.last_cumulative = value;
        ++family.buckets;
      } else if (sample_name == base + "_sum") {
        family.saw_sum = true;
      } else if (sample_name == base + "_count") {
        family.saw_count = true;
        family.count_value = value;
      } else {
        return fail(line_no, "sample '" + std::string(sample_name) +
                                 "' does not belong to histogram '" + base +
                                 "'");
      }
    } else {
      if (sample_name != family.name) {
        return fail(line_no, "sample '" + std::string(sample_name) +
                                 "' does not belong to family '" +
                                 family.name + "'");
      }
      if (family.kind == Kind::kCounter && value < 0) {
        return fail(line_no, "counter '" + family.name + "' is negative");
      }
    }
    ++family.samples;
  }

  if (!finalize(line_no)) return result;
  if (result.ok && result.families == 0) {
    result.ok = false;
    result.error = "no metric families found";
  }
  return result;
}

}  // namespace obs
}  // namespace pspc

#endif  // PSPC_SRC_OBS_PROM_VALIDATE_H_
