#include "src/order/vertex_order.h"

#include <numeric>

#include "src/common/logging.h"

namespace pspc {

VertexOrder::VertexOrder(std::vector<VertexId> order_to_vertex)
    : order_to_vertex_(std::move(order_to_vertex)) {
  const auto n = static_cast<VertexId>(order_to_vertex_.size());
  vertex_to_rank_.assign(n, kInvalidRank);
  for (Rank r = 0; r < n; ++r) {
    const VertexId v = order_to_vertex_[r];
    PSPC_CHECK_MSG(v < n, "order contains out-of-range vertex " << v);
    PSPC_CHECK_MSG(vertex_to_rank_[v] == kInvalidRank,
                   "order assigns vertex " << v << " twice");
    vertex_to_rank_[v] = r;
  }
}

VertexOrder IdentityOrder(VertexId num_vertices) {
  std::vector<VertexId> order(num_vertices);
  std::iota(order.begin(), order.end(), VertexId{0});
  return VertexOrder(std::move(order));
}

}  // namespace pspc
