#ifndef PSPC_SRC_ORDER_VERTEX_ORDER_H_
#define PSPC_SRC_ORDER_VERTEX_ORDER_H_

#include <vector>

#include "src/common/types.h"

/// Total order over vertices ("rank"). The hub-labeling index is built
/// relative to this order (paper §II: "Let <= be a total order over V";
/// `w <= v` means w ranks *higher*). Rank 0 is the highest rank. The
/// order has a decisive effect on index size and build time (paper
/// §III-G, Exp 5), which is why four schemes are provided.
namespace pspc {

class VertexOrder {
 public:
  VertexOrder() = default;

  /// Builds from `order_to_vertex`: `order_to_vertex[r]` is the vertex
  /// with rank `r`. Must be a permutation of `[0, n)` (PSPC_CHECK'd).
  explicit VertexOrder(std::vector<VertexId> order_to_vertex);

  /// Number of vertices covered by the order.
  VertexId Size() const {
    return static_cast<VertexId>(order_to_vertex_.size());
  }

  /// Rank of vertex `v` (0 = highest).
  Rank RankOf(VertexId v) const { return vertex_to_rank_[v]; }

  /// Vertex holding rank `r`.
  VertexId VertexAt(Rank r) const { return order_to_vertex_[r]; }

  /// True iff `u` ranks strictly higher than `v` (paper: u <= v, u != v).
  bool RanksHigher(VertexId u, VertexId v) const {
    return RankOf(u) < RankOf(v);
  }

  const std::vector<VertexId>& OrderToVertex() const {
    return order_to_vertex_;
  }
  const std::vector<Rank>& VertexToRank() const { return vertex_to_rank_; }

  friend bool operator==(const VertexOrder&, const VertexOrder&) = default;

 private:
  std::vector<VertexId> order_to_vertex_;
  std::vector<Rank> vertex_to_rank_;
};

/// Identity order (vertex id == rank); baseline for tests.
VertexOrder IdentityOrder(VertexId num_vertices);

}  // namespace pspc

#endif  // PSPC_SRC_ORDER_VERTEX_ORDER_H_
