#include "src/common/timer.h"

// WallTimer and ScopedTimer are header-only; this translation unit
// exists so the build file mirrors the module layout.
