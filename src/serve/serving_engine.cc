#include "src/serve/serving_engine.h"

#include <sstream>
#include <utility>

#include "src/common/logging.h"
#include "src/common/parallel.h"

namespace pspc {

std::string ServingCounters::ToString() const {
  std::ostringstream oss;
  oss << "queries: " << queries_served << " in " << micro_batches
      << " micro-batches\n"
      << "cache:   " << cache_hits << " hits / " << cache_misses
      << " misses\n"
      << "writes:  " << updates_applied << " updates, "
      << generations_published << " generations published\n"
      << "epochs:  " << snapshots_reclaimed << " snapshots reclaimed, "
      << snapshots_retired_pending << " retired pending\n"
      << "publish: " << publish_copied_vertices_total
      << " label chunks copied total, " << publish_copied_vertices_last
      << " on the last publish";
  return oss.str();
}

ServingEngine::ServingEngine(DynamicSpcIndex* index, ServingOptions options)
    : index_(index),
      options_(options),
      num_vertices_(index->NumVertices()),
      num_workers_(options.num_workers > 0
                       ? static_cast<size_t>(options.num_workers)
                       : static_cast<size_t>(MaxThreads())),
      snapshots_(IndexSnapshot::Capture(*index)),
      queue_(options.queue_capacity),
      cache_(options.cache_shards, options.cache_capacity_per_shard),
      published_generation_(index->Generation()) {
  StartWorkers();
}

ServingEngine::ServingEngine(DynamicDspcIndex* index, ServingOptions options)
    : directed_index_(index),
      options_(options),
      num_vertices_(index->NumVertices()),
      num_workers_(options.num_workers > 0
                       ? static_cast<size_t>(options.num_workers)
                       : static_cast<size_t>(MaxThreads())),
      snapshots_(IndexSnapshot::Capture(*index)),
      queue_(options.queue_capacity),
      // Ordered-pair keys: directed SPC(s -> t) must never be answered
      // from a cached SPC(t -> s).
      cache_(options.cache_shards, options.cache_capacity_per_shard,
             /*symmetric=*/false),
      published_generation_(index->Generation()) {
  StartWorkers();
}

void ServingEngine::StartWorkers() {
  if (num_workers_ == 0) num_workers_ = 1;
  workers_.reserve(num_workers_);
  for (size_t i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServingEngine::~ServingEngine() { Stop(); }

bool ServingEngine::Enqueue(ServeRequest request) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.Push(std::move(request))) {
    FinishRequests(1);
    return false;
  }
  return true;
}

void ServingEngine::FinishRequests(size_t n) {
  if (pending_.fetch_sub(n, std::memory_order_acq_rel) == n) {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

std::future<SpcResult> ServingEngine::Submit(VertexId s, VertexId t) {
  PSPC_CHECK_MSG(s < num_vertices_ && t < num_vertices_,
                 "query (" << s << "," << t << ") out of range");
  auto ticket = std::make_shared<SingleTicket>();
  std::future<SpcResult> future = ticket->promise.get_future();
  ServeRequest request;
  request.s = s;
  request.t = t;
  request.single = std::move(ticket);
  PSPC_CHECK_MSG(Enqueue(std::move(request)), "Submit after Stop");
  return future;
}

std::future<std::vector<SpcResult>> ServingEngine::SubmitBatch(
    const QueryBatch& batch) {
  auto ticket = std::make_shared<BatchTicket>(batch.size());
  std::future<std::vector<SpcResult>> future = ticket->promise.get_future();
  if (batch.empty()) {
    ticket->promise.set_value({});
    return future;
  }
  std::vector<ServeRequest> requests;
  requests.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto [s, t] = batch[i];
    PSPC_CHECK_MSG(s < num_vertices_ && t < num_vertices_,
                   "query (" << s << "," << t << ") out of range");
    ServeRequest request;
    request.s = s;
    request.t = t;
    request.pos = static_cast<uint32_t>(i);
    request.batch = ticket;
    requests.push_back(std::move(request));
  }
  pending_.fetch_add(requests.size(), std::memory_order_relaxed);
  const size_t pushed = queue_.PushAll(&requests);
  if (pushed < requests.size()) {
    FinishRequests(requests.size() - pushed);
    PSPC_CHECK_MSG(false, "SubmitBatch after Stop");
  }
  return future;
}

Status ServingEngine::ApplyUpdates(const EdgeUpdateBatch& batch) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const bool directed = directed_index_ != nullptr;
  const DynamicStats& stats =
      directed ? directed_index_->Stats() : index_->Stats();
  const uint64_t applied_before =
      stats.insertions_applied + stats.deletions_applied;
  const Status status = directed ? directed_index_->ApplyBatch(batch)
                                 : index_->ApplyBatch(batch);
  updates_applied_ +=
      stats.insertions_applied + stats.deletions_applied - applied_before;
  // ApplyBatch is atomic and bumps the generation once per batch, so
  // this publishes exactly one snapshot for a batch that changed
  // anything and none for a rejected or fully coalesced one.
  const uint64_t generation =
      directed ? directed_index_->Generation() : index_->Generation();
  if (generation != published_generation_) {
    snapshots_.Publish(directed ? IndexSnapshot::Capture(*directed_index_)
                                : IndexSnapshot::Capture(*index_));
    published_generation_ = generation;
    ++publishes_;
  }
  return status;
}

Status ServingEngine::ApplyUpdate(const EdgeUpdate& update) {
  EdgeUpdateBatch batch;
  batch.Add(update);
  return ApplyUpdates(batch);
}

void ServingEngine::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void ServingEngine::Stop() {
  if (stopped_.exchange(true)) return;
  Drain();
  queue_.Close();
  for (std::thread& worker : workers_) worker.join();
}

ServingCounters ServingEngine::Counters() const {
  ServingCounters counters;
  counters.queries_served = queries_served_.load(std::memory_order_relaxed);
  counters.micro_batches = micro_batches_.load(std::memory_order_relaxed);
  counters.cache_hits = cache_.Hits();
  counters.cache_misses = cache_.Misses();
  {
    // Retired/reclaimed bookkeeping is writer-side state; snapshot it
    // under the writer mutex so Counters is safe from any thread.
    std::lock_guard<std::mutex> lock(writer_mu_);
    counters.updates_applied = updates_applied_;
    counters.generations_published = publishes_;
    counters.snapshots_reclaimed = snapshots_.ReclaimedCount();
    counters.snapshots_retired_pending = snapshots_.RetiredCount();
    counters.publish_copied_vertices_last =
        snapshots_.LastPublishCopiedVertices();
    counters.publish_copied_vertices_total =
        snapshots_.TotalPublishCopiedVertices();
  }
  return counters;
}

void ServingEngine::WorkerLoop() {
  std::vector<ServeRequest> local;
  local.reserve(options_.max_batch);
  for (;;) {
    local.clear();
    const size_t taken =
        queue_.PopBatch(&local, options_.max_batch, num_workers_);
    if (taken == 0) return;  // closed and drained

    // One epoch pin covers the whole micro-batch: the snapshot (and
    // its generation, for cache tagging) is fixed across it.
    SnapshotRef snapshot = snapshots_.Acquire();
    const uint64_t generation = snapshot->Generation();
    for (ServeRequest& request : local) {
      SpcResult result;
      if (!cache_.Lookup(generation, request.s, request.t, &result)) {
        result = snapshot->Query(request.s, request.t);
        cache_.Insert(generation, request.s, request.t, result);
      }
      if (request.single != nullptr) {
        request.single->promise.set_value(result);
      } else {
        BatchTicket& ticket = *request.batch;
        ticket.results[request.pos] = result;
        if (ticket.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          ticket.promise.set_value(std::move(ticket.results));
        }
      }
    }
    queries_served_.fetch_add(taken, std::memory_order_relaxed);
    micro_batches_.fetch_add(1, std::memory_order_relaxed);
    FinishRequests(taken);
  }
}

}  // namespace pspc
