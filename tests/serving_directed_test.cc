// Directed serving: `IndexSnapshot`/`SnapshotManager`/`ServingEngine`
// over a `DynamicDspcIndex`. Mirrors the undirected serving suite —
// capture isolation across generations and rebuilds, the O(delta)
// publish-cost invariant (pointer-aliasing proof across *both*
// label-side overlays), and an engine round trip quiesce-checked
// against the DiBfsSpcPair oracle.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/digraph/dbfs_spc.h"
#include "src/digraph/digraph.h"
#include "src/dynamic/dynamic_dspc_index.h"
#include "src/dynamic/edge_update.h"
#include "src/graph/generators.h"
#include "src/label/query_engine.h"
#include "src/serve/index_snapshot.h"
#include "src/serve/serving_engine.h"
#include "src/serve/snapshot_manager.h"
#include "tests/test_util.h"

namespace pspc {
namespace {

// Single-threaded OpenMP everywhere so these tests stay signal-only
// under ThreadSanitizer (libgomp worker teams are not TSan
// instrumented; a team of one never spawns).
DiPspcOptions SingleThreadBuild() {
  DiPspcOptions options;
  options.num_threads = 1;
  return options;
}

DynamicDiOptions RepairOnlyOptions() {
  DynamicDiOptions options;
  options.rebuild_threshold = 1e18;
  options.rebuild_options = SingleThreadBuild();
  options.num_threads = 1;
  return options;
}

std::unique_ptr<DynamicDspcIndex> MakeIndex(const DiGraph& graph) {
  return std::make_unique<DynamicDspcIndex>(graph, SingleThreadBuild(),
                                            RepairOnlyOptions());
}

TEST(DirectedSnapshotTest, MatchesLiveIndex) {
  const DiGraph graph = GenerateRandomDiGraph(120, 420, 21);
  auto index = MakeIndex(graph);
  const auto snapshot = IndexSnapshot::Capture(*index);

  EXPECT_TRUE(snapshot->IsDirected());
  EXPECT_EQ(snapshot->NumVertices(), index->NumVertices());
  EXPECT_EQ(snapshot->NumEdges(), index->NumEdges());
  EXPECT_EQ(snapshot->Generation(), index->Generation());
  for (const auto& [s, t] : MakeRandomQueries(120, 200, 5)) {
    EXPECT_EQ(snapshot->Query(s, t), index->Query(s, t));
  }
}

TEST(DirectedSnapshotTest, IsolatesRetiredGenerationsAndSurvivesRebuild) {
  const DiGraph graph = GenerateRandomDiGraph(100, 320, 22);
  auto index = MakeIndex(graph);
  const QueryBatch probes = MakeRandomQueries(100, 200, 6);

  const auto before = IndexSnapshot::Capture(*index);
  std::vector<SpcResult> old_answers;
  for (const auto& [s, t] : probes) old_answers.push_back(before->Query(s, t));

  Rng rng(99);
  size_t applied = 0;
  while (applied < 10) {
    const auto u = static_cast<VertexId>(rng.NextBounded(100));
    const auto v = static_cast<VertexId>(rng.NextBounded(100));
    if (u == v || index->HasEdge(u, v)) continue;
    ASSERT_TRUE(index->InsertEdge(u, v).ok());
    ++applied;
  }

  const auto after = IndexSnapshot::Capture(*index);
  EXPECT_GT(after->Generation(), before->Generation());
  size_t changed = 0;
  for (size_t i = 0; i < probes.size(); ++i) {
    const auto [s, t] = probes[i];
    EXPECT_EQ(before->Query(s, t), old_answers[i]);
    EXPECT_EQ(after->Query(s, t), index->Query(s, t));
    if (after->Query(s, t) != old_answers[i]) ++changed;
  }
  EXPECT_GT(changed, 0u);

  // A rebuild swaps the shared base out from under both captures;
  // their answers must not move.
  index->Rebuild();
  for (size_t i = 0; i < probes.size(); ++i) {
    const auto [s, t] = probes[i];
    EXPECT_EQ(before->Query(s, t), old_answers[i]);
    EXPECT_EQ(IndexSnapshot::Capture(*index)->Query(s, t),
              index->Query(s, t));
  }
}

// The directed analogue of the undirected publish-cost regression: on
// an insert-heavy stream each capture must copy only the vertices
// repaired since the previous capture (the batch delta, summed across
// the out- and in-label overlays), never the whole accumulated
// overlay. Structural sharing is asserted at the pointer level on both
// label sides.
TEST(DirectedSnapshotTest, InsertHeavyPublishCopiesDeltaNotOverlay) {
  constexpr VertexId kN = 600;
  constexpr int kBatches = 24;
  constexpr size_t kPerBatch = 3;
  const DiGraph graph = GenerateRandomDiGraph(kN, 1800, 41);
  auto index = MakeIndex(graph);  // repair-only: the overlays only grow

  Rng rng(4141);
  std::vector<std::unique_ptr<const IndexSnapshot>> snaps;
  snaps.push_back(IndexSnapshot::Capture(*index));
  std::vector<size_t> copied, overlaid;
  DiGraph first_batch_graph;  // graph state snaps[1] was captured at
  for (int b = 0; b < kBatches; ++b) {
    EdgeUpdateBatch batch;
    std::set<std::pair<VertexId, VertexId>> in_batch;
    while (batch.Size() < kPerBatch) {
      const auto u = static_cast<VertexId>(rng.NextBounded(kN));
      const auto v = static_cast<VertexId>(rng.NextBounded(kN));
      if (u == v || index->HasEdge(u, v) || !in_batch.insert({u, v}).second) {
        continue;
      }
      batch.Insert(u, v);
    }
    ASSERT_TRUE(index->ApplyBatch(batch).ok());
    snaps.push_back(IndexSnapshot::Capture(*index));
    if (b == 0) first_batch_graph = index->MaterializeGraph();
    copied.push_back(snaps.back()->CopiedVertices());
    overlaid.push_back(snaps.back()->OverlaidVertices());

    // The copied count must be exactly the per-batch delta: the set of
    // (vertex, side) chunks that no longer alias the previous
    // snapshot's. Both snapshots are alive here, so a cloned chunk can
    // never coincidentally reuse the old chunk's storage.
    const IndexSnapshot& prev = *snaps[snaps.size() - 2];
    const IndexSnapshot& cur = *snaps.back();
    size_t unshared = 0;
    for (VertexId v = 0; v < kN; ++v) {
      if (cur.OutLabels(v).data() != prev.OutLabels(v).data()) ++unshared;
      if (cur.InLabels(v).data() != prev.InLabels(v).data()) ++unshared;
    }
    EXPECT_EQ(unshared, copied.back()) << "batch " << b;
    EXPECT_LE(copied.back(), overlaid.back());
  }

  // The overlays grew across the stream while the per-publish copy
  // cost stayed at the batch delta.
  ASSERT_GE(overlaid.back(), 100u);
  size_t delta_sum = 0, map_copy_sum = 0;
  for (int b = kBatches / 2; b < kBatches; ++b) {
    const auto i = static_cast<size_t>(b);
    EXPECT_LT(copied[i], overlaid[i]) << "batch " << b;
    delta_sum += copied[i];
    map_copy_sum += overlaid[i];
  }
  EXPECT_LT(2 * delta_sum, map_copy_sum);

  // A capture with nothing in between copies nothing and aliases all.
  const auto idle = IndexSnapshot::Capture(*index);
  EXPECT_EQ(idle->CopiedVertices(), 0u);

  // Quiesce oracle: the final snapshot (and the live index) answer
  // exactly for the current graph.
  const DiGraph current = index->MaterializeGraph();
  for (const auto& [s, t] : MakeRandomQueries(kN, 64, 43)) {
    const SpcResult oracle = DiBfsSpcPair(current, s, t);
    EXPECT_EQ(snaps.back()->Query(s, t), oracle);
    EXPECT_EQ(index->Query(s, t), oracle);
  }

  // Old generations still answer for *their* graph.
  EXPECT_EQ(snaps[1]->Generation() + kBatches - 1,
            snaps.back()->Generation());
  for (const auto& [s, t] : MakeRandomQueries(kN, 64, 47)) {
    EXPECT_EQ(snaps[1]->Query(s, t), DiBfsSpcPair(first_batch_graph, s, t));
  }
}

// ------------------------------------------------------- ServingEngine

// Regression: the result cache must key on *ordered* pairs for the
// directed engine. With the undirected canonicalization (min, max) a
// cached SPC(s -> t) would be served for the distinct query
// SPC(t -> s) within the same generation.
TEST(DirectedServingEngineTest, CacheNeverAliasesReversedPairs) {
  DiGraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const DiGraph graph = builder.Build();  // 0 -> 1 -> 2, nothing back
  DynamicDspcIndex index(graph, SingleThreadBuild(), RepairOnlyOptions());

  ServingOptions options;
  options.num_workers = 1;
  ServingEngine engine(&index, options);

  // Same generation, both orders, repeated so the second round is
  // answered from the cache if anything was cached.
  for (int round = 0; round < 2; ++round) {
    EXPECT_EQ(engine.Submit(0, 2).get(), (SpcResult{2, 1}))
        << "round " << round;
    EXPECT_EQ(engine.Submit(2, 0).get(), (SpcResult{kInfSpcDistance, 0}))
        << "round " << round;
  }
  EXPECT_GT(engine.Counters().cache_hits, 0u);
}

TEST(DirectedServingEngineTest, MixedWorkloadStaysExactAndPublishesDeltas) {
  const DiGraph graph = GenerateRandomDiGraph(80, 260, 51);
  DynamicDspcIndex index(graph, SingleThreadBuild(), RepairOnlyOptions());

  ServingOptions options;
  options.num_workers = 2;
  ServingEngine engine(&index, options);

  // Mirror of the evolving directed edge set for sampling updates.
  std::set<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const VertexId v : graph.OutNeighbors(u)) edges.insert({u, v});
  }

  Rng rng(777);
  uint64_t batches_with_effect = 0;
  for (int round = 0; round < 12; ++round) {
    // Interleave query batches with update batches through the engine.
    const QueryBatch queries = MakeRandomQueries(80, 32, rng.Next());
    auto future = engine.SubmitBatch(queries);

    EdgeUpdateBatch updates;
    for (int i = 0; i < 4; ++i) {
      const bool remove = !edges.empty() && rng.NextBool(0.5);
      if (remove) {
        auto it = edges.begin();
        std::advance(it, static_cast<long>(rng.NextBounded(edges.size())));
        updates.Delete(it->first, it->second);
        edges.erase(it);
      } else {
        while (true) {
          const auto u = static_cast<VertexId>(rng.NextBounded(80));
          const auto v = static_cast<VertexId>(rng.NextBounded(80));
          if (u != v && edges.insert({u, v}).second) {
            updates.Insert(u, v);
            break;
          }
        }
      }
    }
    ASSERT_TRUE(engine.ApplyUpdates(updates).ok()) << "round " << round;
    ++batches_with_effect;
    future.get();  // answers come from some recent generation
  }
  engine.Drain();

  // Quiesce: drained engine + idle writer => answers are exact for the
  // current graph.
  const DiGraph current = index.MaterializeGraph();
  const QueryBatch checks = MakeRandomQueries(80, 64, 0x5eed);
  const std::vector<SpcResult> served = engine.SubmitBatch(checks).get();
  for (size_t i = 0; i < checks.size(); ++i) {
    EXPECT_EQ(served[i],
              DiBfsSpcPair(current, checks[i].first, checks[i].second))
        << "pair (" << checks[i].first << "," << checks[i].second << ")";
  }

  const ServingCounters counters = engine.Counters();
  EXPECT_EQ(counters.generations_published, batches_with_effect);
  EXPECT_EQ(counters.updates_applied, 12u * 4u);
  // Directed publication pays the per-batch delta, not the overlay:
  // the counter must be live and bounded by two chunks per (update,
  // side) blast radius only in aggregate terms — here simply nonzero
  // and no larger than the final total overlay would imply per batch.
  EXPECT_GT(counters.publish_copied_vertices_total, 0u);
  EXPECT_GT(engine.PublishedGeneration(), 0u);
}

}  // namespace
}  // namespace pspc
