#ifndef PSPC_SRC_OBS_OBS_SERVER_H_
#define PSPC_SRC_OBS_OBS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "src/common/status.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

/// Minimal embedded HTTP/1.1 introspection endpoint — blocking POSIX
/// sockets, one accept-loop thread, no dependencies. Connections are
/// handled serially and closed after one response (`Connection:
/// close`); scrapers and operators with curl are the audience, not
/// high-fanout clients.
///
/// Routes:
///   GET /metrics         Prometheus text exposition
///   GET /metrics.json    versioned JSON snapshot (same schema as
///                        --metrics-json files)
///   GET /healthz         200 (OK/DEGRADED) or 503 (UNHEALTHY) with
///                        the watchdog's report as the body
///   GET /varz            build info, uptime, generation and
///                        snapshot/epoch state
///   GET /tracez          slow-query traces + recent update-batch
///                        traces
///   GET /flightrecorder  the flight-recorder ring as JSON
namespace pspc {
namespace obs {

/// What the endpoints read. Only `metrics` is required; null optional
/// sources render as absent/empty sections.
struct ObsServerContext {
  MetricsRegistry* metrics = nullptr;  ///< null selects Global()
  HealthWatchdog* health = nullptr;
  FlightRecorder* recorder = nullptr;  ///< null selects Global()
  const TraceCollector* traces = nullptr;
  const UpdateTraceLog* update_traces = nullptr;
  std::string component = "pspc";  ///< reported in /varz
};

class ObsServer {
 public:
  /// `port == 0` binds an ephemeral port (see `Port()` after Start).
  /// Binds 127.0.0.1 — the ops plane is host-local by default.
  ObsServer(uint16_t port, ObsServerContext context);
  ~ObsServer();

  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  /// Binds, listens, and spawns the accept thread.
  Status Start();
  void Stop();

  /// The bound port (valid after a successful Start).
  uint16_t Port() const { return port_; }

  uint64_t RequestsServed() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Routing logic, exposed for tests: maps a request path to
  /// (status code, content type, body).
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  Response Handle(const std::string& path) const;

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  ObsServerContext context_;
  uint16_t port_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
  int64_t start_ns_ = 0;
  std::thread thread_;
};

}  // namespace obs
}  // namespace pspc

#endif  // PSPC_SRC_OBS_OBS_SERVER_H_
