#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/label/label_entry.h"
#include "src/label/label_set.h"
#include "src/label/spc_index.h"
#include "src/order/vertex_order.h"

namespace pspc {
namespace {

// ------------------------------------------------- LevelLabelStore --

TEST(LevelLabelStoreTest, CommitsFormLevels) {
  LevelLabelStore store(2);
  const LabelEntry l0{0, 0, 1};
  store.CommitLevel(0, {&l0, 1});
  std::vector<LabelEntry> level1{{1, 1, 2}, {3, 1, 1}};
  store.CommitLevel(0, level1);

  EXPECT_EQ(store.NumLevels(0), 2u);
  EXPECT_EQ(store.Entries(0).size(), 3u);
  EXPECT_EQ(store.Level(0, 0).size(), 1u);
  EXPECT_EQ(store.Level(0, 1).size(), 2u);
  EXPECT_EQ(store.Level(0, 1)[1].hub_rank, 3u);
  // Uncommitted level reads as empty.
  EXPECT_TRUE(store.Level(0, 2).empty());
  EXPECT_TRUE(store.Level(1, 0).empty());  // vertex 1 never committed
}

TEST(LevelLabelStoreTest, EmptyLevelsKeepAlignment) {
  LevelLabelStore store(1);
  const LabelEntry l0{0, 0, 1};
  store.CommitLevel(0, {&l0, 1});
  store.CommitLevel(0, {});  // distance 1: nothing
  std::vector<LabelEntry> level2{{2, 2, 5}};
  store.CommitLevel(0, level2);
  EXPECT_TRUE(store.Level(0, 1).empty());
  ASSERT_EQ(store.Level(0, 2).size(), 1u);
  EXPECT_EQ(store.Level(0, 2)[0].count, 5u);
}

TEST(LevelLabelStoreTest, TotalEntriesAcrossVertices) {
  LevelLabelStore store(3);
  const LabelEntry a{0, 0, 1};
  const LabelEntry b{1, 0, 1};
  store.CommitLevel(0, {&a, 1});
  store.CommitLevel(1, {&b, 1});
  EXPECT_EQ(store.TotalEntries(), 2u);
}

TEST(LevelLabelStoreDeathTest, RejectsUnsortedBatch) {
  LevelLabelStore store(1);
  std::vector<LabelEntry> bad{{3, 1, 1}, {1, 1, 1}};
  EXPECT_DEATH(store.CommitLevel(0, bad), "sorted");
}

// ---------------------------------------------------------- SpcIndex --

SpcIndex MakeTinyIndex() {
  // Path 0 - 1 - 2 under identity order. Hubs stored as ranks.
  // L(0) = {(0,0,1)}; L(1) = {(0,1,1),(1,0,1)};
  // L(2) = {(0,2,1),(1,1,1),(2,0,1)}.
  std::vector<std::vector<LabelEntry>> labels(3);
  labels[0] = {{0, 0, 1}};
  labels[1] = {{0, 1, 1}, {1, 0, 1}};
  labels[2] = {{0, 2, 1}, {1, 1, 1}, {2, 0, 1}};
  return SpcIndex(IdentityOrder(3), std::move(labels));
}

TEST(SpcIndexTest, QueriesPathDistances) {
  const SpcIndex index = MakeTinyIndex();
  EXPECT_EQ(index.Query(0, 1), (SpcResult{1, 1}));
  EXPECT_EQ(index.Query(0, 2), (SpcResult{2, 1}));
  EXPECT_EQ(index.Query(2, 0), (SpcResult{2, 1}));
}

TEST(SpcIndexTest, SelfQueryIsZeroOne) {
  EXPECT_EQ(MakeTinyIndex().Query(1, 1), (SpcResult{0, 1}));
}

TEST(SpcIndexTest, NoCommonHubMeansDisconnected) {
  std::vector<std::vector<LabelEntry>> labels(2);
  labels[0] = {{0, 0, 1}};
  labels[1] = {{1, 0, 1}};
  const SpcIndex index(IdentityOrder(2), std::move(labels));
  EXPECT_EQ(index.Query(0, 1), (SpcResult{kInfSpcDistance, 0}));
}

TEST(SpcIndexTest, SumsCountsOverMinDistanceHubs) {
  // Two hubs at the same total distance: counts add (Eq. 2).
  std::vector<std::vector<LabelEntry>> labels(4);
  labels[0] = {{0, 0, 1}};
  labels[1] = {{0, 1, 1}, {1, 0, 1}};
  labels[2] = {{0, 1, 1}, {2, 0, 1}};
  labels[3] = {{0, 2, 2}, {1, 1, 1}, {2, 1, 1}, {3, 0, 1}};
  const SpcIndex index(IdentityOrder(4), std::move(labels));
  // 1 -> 3 via hub1 (0+1, count 1) and hub0 (1+2, dist 3 loses).
  EXPECT_EQ(index.Query(1, 3), (SpcResult{1, 1}));
  // 0 -> 3: hub0 gives 0+2 count 2.
  EXPECT_EQ(index.Query(0, 3), (SpcResult{2, 2}));
}

TEST(SpcIndexTest, ConstructorSortsEntriesByRank) {
  std::vector<std::vector<LabelEntry>> labels(2);
  labels[0] = {{1, 1, 1}, {0, 0, 1}};  // deliberately unsorted
  labels[1] = {{1, 0, 1}, {0, 1, 1}};
  const SpcIndex index(IdentityOrder(2), std::move(labels));
  EXPECT_EQ(index.Labels(0)[0].hub_rank, 0u);
  EXPECT_EQ(index.Labels(0)[1].hub_rank, 1u);
}

TEST(SpcIndexTest, SizeAccounting) {
  const SpcIndex index = MakeTinyIndex();
  EXPECT_EQ(index.TotalEntries(), 6u);
  EXPECT_DOUBLE_EQ(index.AverageLabelSize(), 2.0);
  EXPECT_EQ(index.SizeBytes(),
            6 * sizeof(LabelEntry) + 4 * sizeof(uint64_t));
}

TEST(SpcIndexTest, SaveLoadRoundTrip) {
  const SpcIndex index = MakeTinyIndex();
  const std::string path = ::testing::TempDir() + "/index.bin";
  ASSERT_TRUE(index.Save(path).ok());
  const auto loaded = SpcIndex::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), index);
  EXPECT_EQ(loaded.value().Query(0, 2), (SpcResult{2, 1}));
  std::remove(path.c_str());
}

TEST(SpcIndexTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("garbage bytes here, definitely not an index", f);
    fclose(f);
  }
  const auto loaded = SpcIndex::Load(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(SpcIndexTest, LoadMissingFileIsIOError) {
  const auto loaded = SpcIndex::Load("/no/such/file.idx");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kIOError);
}

}  // namespace
}  // namespace pspc
