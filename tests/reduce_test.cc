#include <gtest/gtest.h>

#include <vector>

#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/reduce/equivalence.h"
#include "src/reduce/one_shell.h"
#include "src/reduce/reduced_index.h"
#include "tests/test_util.h"

namespace pspc {
namespace {

using pspc::testing::AllPairs;

ReductionOptions Opts(bool one_shell, bool equivalence) {
  ReductionOptions o;
  o.use_one_shell = one_shell;
  o.use_equivalence = equivalence;
  o.build.num_landmarks = 4;
  return o;
}

// --------------------------------------------------------- 1-shell --

TEST(OneShellTest, LollipopPeelsTail) {
  // Triangle {0,1,2} with tail 2-3-4.
  const Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  const auto shell = OneShellReduction::Build(g);
  EXPECT_EQ(shell.NumCoreVertices(), 3u);
  EXPECT_EQ(shell.NumFringeVertices(), 2u);
  EXPECT_TRUE(shell.IsCore(0));
  EXPECT_FALSE(shell.IsCore(3));
  EXPECT_EQ(shell.Anchor(3), 2u);
  EXPECT_EQ(shell.Anchor(4), 2u);
  EXPECT_EQ(shell.Depth(3), 1u);
  EXPECT_EQ(shell.Depth(4), 2u);
  EXPECT_EQ(shell.Core().NumEdges(), 3u);  // the triangle survives
}

TEST(OneShellTest, PureTreeKeepsOneCoreVertexPerComponent) {
  const Graph g = GenerateTree(15, 2);
  const auto shell = OneShellReduction::Build(g);
  EXPECT_EQ(shell.NumCoreVertices(), 1u);
  EXPECT_EQ(shell.NumFringeVertices(), 14u);
}

TEST(OneShellTest, CycleIsAllCore) {
  const auto shell = OneShellReduction::Build(GenerateCycle(8));
  EXPECT_EQ(shell.NumCoreVertices(), 8u);
  EXPECT_EQ(shell.NumFringeVertices(), 0u);
}

TEST(OneShellTest, TreeQueryViaLca) {
  // Star of paths: anchor 0 (core after peel? no - pure star peels to
  // center); use a lollipop so the anchor is a real core vertex.
  const Graph g = MakeGraph(
      7, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {3, 5}, {5, 6}});
  const auto shell = OneShellReduction::Build(g);
  // Tree: 2 <- 3 <- {4, 5 <- 6}; anchor of all is 2.
  EXPECT_EQ(shell.TreeQuery(4, 6), (SpcResult{3, 1}));  // 4-3-5-6
  EXPECT_EQ(shell.TreeQuery(4, 3), (SpcResult{1, 1}));
  EXPECT_EQ(shell.TreeQuery(6, 2), (SpcResult{3, 1}));  // 6-5-3-2
}

TEST(OneShellTest, IsolatedVertexStaysCore) {
  const Graph g = MakeGraph(3, {{0, 1}});
  const auto shell = OneShellReduction::Build(g);
  EXPECT_TRUE(shell.IsCore(2));
}

// ----------------------------------------------------- Equivalence --

TEST(EquivalenceTest, StarLeavesAreFalseTwins) {
  const Graph g = GenerateStar(6);
  const auto eq = EquivalenceReduction::Build(g);
  EXPECT_EQ(eq.NumClasses(), 2u);  // center + leaf class
  const VertexId leaf_class = eq.ClassOf(1);
  for (VertexId leaf = 2; leaf <= 6; ++leaf) {
    EXPECT_EQ(eq.ClassOf(leaf), leaf_class);
  }
  EXPECT_EQ(eq.Weight(leaf_class), 6u);
  EXPECT_FALSE(eq.ClassAdjacent(leaf_class));
  // Two leaves: distance 2 through the single center.
  EXPECT_EQ(eq.SameClassQuery(leaf_class), (SpcResult{2, 1}));
}

TEST(EquivalenceTest, CliqueCollapsesToOneTrueTwinClass) {
  const Graph g = GenerateComplete(5);
  const auto eq = EquivalenceReduction::Build(g);
  EXPECT_EQ(eq.NumClasses(), 1u);
  EXPECT_TRUE(eq.ClassAdjacent(0));
  EXPECT_EQ(eq.Weight(0), 5u);
  EXPECT_EQ(eq.SameClassQuery(0), (SpcResult{1, 1}));
}

TEST(EquivalenceTest, PathHasNoTwins) {
  const Graph g = GeneratePath(6);
  const auto eq = EquivalenceReduction::Build(g);
  // End vertices 0 and 5 have different neighborhoods ({1} vs {4}).
  EXPECT_EQ(eq.NumClasses(), 6u);
}

TEST(EquivalenceTest, FalseTwinPairCountsCommonNeighbors) {
  // 0 and 1 both adjacent to {2,3}, not to each other: K(2,2).
  const Graph g = MakeGraph(4, {{0, 2}, {0, 3}, {1, 2}, {1, 3}});
  const auto eq = EquivalenceReduction::Build(g);
  EXPECT_EQ(eq.NumClasses(), 2u);  // {0,1} and {2,3}
  const VertexId c01 = eq.ClassOf(0);
  EXPECT_EQ(eq.ClassOf(1), c01);
  EXPECT_EQ(eq.SameClassQuery(c01), (SpcResult{2, 2}));  // via 2 and 3
}

TEST(EquivalenceTest, IsolatedVerticesFormDisconnectedClass) {
  const Graph g = MakeGraph(4, {{0, 1}});
  const auto eq = EquivalenceReduction::Build(g);
  const VertexId iso = eq.ClassOf(2);
  EXPECT_EQ(eq.ClassOf(3), iso);
  EXPECT_EQ(eq.SameClassQuery(iso), (SpcResult{kInfSpcDistance, 0}));
}

TEST(EquivalenceTest, MixedTwinsStayDisjoint) {
  // Triangle {0,1,2} plus pendant 3 on 0: no twins anywhere... actually
  // 1 and 2 are true twins (N[1] = N[2] = {0,1,2}).
  const Graph g = MakeGraph(4, {{0, 1}, {0, 2}, {1, 2}, {0, 3}});
  const auto eq = EquivalenceReduction::Build(g);
  EXPECT_EQ(eq.ClassOf(1), eq.ClassOf(2));
  EXPECT_NE(eq.ClassOf(0), eq.ClassOf(1));
  EXPECT_NE(eq.ClassOf(3), eq.ClassOf(1));
  EXPECT_TRUE(eq.ClassAdjacent(eq.ClassOf(1)));
}

// -------------------------------------------------- ReducedSpcIndex --

TEST(ReducedIndexTest, LollipopAllPairs) {
  const Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  const auto idx = ReducedSpcIndex::Build(g, Opts(true, true));
  for (const auto& [s, t] : AllPairs(5)) {
    EXPECT_EQ(idx.Query(s, t), BfsSpcPair(g, s, t))
        << "pair (" << s << "," << t << ")";
  }
}

TEST(ReducedIndexTest, EveryReductionComboIsExact) {
  const Graph g = GenerateClusteredBa(90, 3, 0.3, 19);
  for (bool shell : {false, true}) {
    for (bool equiv : {false, true}) {
      const auto idx = ReducedSpcIndex::Build(g, Opts(shell, equiv));
      for (const auto& [s, t] : AllPairs(90)) {
        ASSERT_EQ(idx.Query(s, t), BfsSpcPair(g, s, t))
            << "shell=" << shell << " equiv=" << equiv << " pair (" << s
            << "," << t << ")";
      }
    }
  }
}

TEST(ReducedIndexTest, TreeHeavyGraphShrinksALot) {
  // Star of long paths: everything but one vertex peels away.
  GraphBuilder b(41);
  for (VertexId arm = 0; arm < 4; ++arm) {
    VertexId prev = 0;
    for (VertexId i = 0; i < 10; ++i) {
      const VertexId v = 1 + arm * 10 + i;
      b.AddEdge(prev, v);
      prev = v;
    }
  }
  const Graph g = b.Build();
  const auto idx = ReducedSpcIndex::Build(g, Opts(true, false));
  EXPECT_EQ(idx.NumReducedVertices(), 1u);
  for (const auto& [s, t] : AllPairs(41)) {
    ASSERT_EQ(idx.Query(s, t), BfsSpcPair(g, s, t));
  }
}

TEST(ReducedIndexTest, TwinHeavyGraphShrinksALot) {
  // Complete bipartite K(3,12): both sides collapse to one class each.
  GraphBuilder b(15);
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 3; v < 15; ++v) b.AddEdge(u, v);
  }
  const Graph g = b.Build();
  const auto idx = ReducedSpcIndex::Build(g, Opts(false, true));
  EXPECT_EQ(idx.NumReducedVertices(), 2u);
  for (const auto& [s, t] : AllPairs(15)) {
    ASSERT_EQ(idx.Query(s, t), BfsSpcPair(g, s, t));
  }
}

TEST(ReducedIndexTest, ReductionsShrinkIndexOnFringyGraphs) {
  // BA core with pendant trees grafted on.
  GraphBuilder b(140);
  const Graph core = GenerateBarabasiAlbert(60, 3, 23);
  for (VertexId u = 0; u < 60; ++u) {
    for (VertexId v : core.Neighbors(u)) {
      if (u < v) b.AddEdge(u, v);
    }
  }
  for (VertexId v = 60; v < 140; ++v) {
    b.AddEdge(v, (v * 7) % 60);  // pendant leaf
  }
  const Graph g = b.Build();
  const auto plain = ReducedSpcIndex::Build(g, Opts(false, false));
  const auto reduced = ReducedSpcIndex::Build(g, Opts(true, true));
  EXPECT_LT(reduced.IndexSizeBytes(), plain.IndexSizeBytes());
  for (const auto& [s, t] : AllPairs(140)) {
    ASSERT_EQ(reduced.Query(s, t), plain.Query(s, t));
  }
}

TEST(ReducedIndexTest, HpSpcInnerAlgorithmAgrees) {
  const Graph g = GenerateWattsStrogatz(70, 3, 0.15, 29);
  ReductionOptions hp = Opts(true, true);
  hp.build.algorithm = Algorithm::kHpSpc;
  ReductionOptions ps = Opts(true, true);
  ps.build.algorithm = Algorithm::kPspc;
  const auto a = ReducedSpcIndex::Build(g, hp);
  const auto b = ReducedSpcIndex::Build(g, ps);
  for (const auto& [s, t] : AllPairs(70)) {
    ASSERT_EQ(a.Query(s, t), b.Query(s, t));
  }
}

TEST(ReducedIndexTest, DisconnectedGraphs) {
  const Graph g = MakeGraph(8, {{0, 1}, {1, 2}, {0, 2}, {2, 3},  // lollipop
                                {5, 6}, {6, 7}});                // path
  const auto idx = ReducedSpcIndex::Build(g, Opts(true, true));
  EXPECT_EQ(idx.Query(0, 7), (SpcResult{kInfSpcDistance, 0}));
  EXPECT_EQ(idx.Query(4, 4), (SpcResult{0, 1}));
  EXPECT_EQ(idx.Query(5, 7), (SpcResult{2, 1}));
}

}  // namespace
}  // namespace pspc
