#ifndef PSPC_SRC_LABEL_LABEL_ENTRY_H_
#define PSPC_SRC_LABEL_LABEL_ENTRY_H_

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "src/common/types.h"

/// One hub-label entry (paper §II-A): for a vertex `v`, the entry
/// `(w, sd(v,w), theta)` records the distance to hub `w` and the number
/// of *trough* shortest paths from `v` to `w` (paths on which `w` is the
/// strictly highest-ranked vertex). Hubs are stored by **rank**, not by
/// vertex id, so rank comparisons during pruning are plain integer
/// compares and label intersections can merge in rank order.
namespace pspc {

struct LabelEntry {
  Rank hub_rank = kInvalidRank;
  Distance dist = kInfDistance;
  Count count = 0;

  friend bool operator==(const LabelEntry&, const LabelEntry&) = default;
};

/// Orders entries by hub rank (unique per vertex), the layout of the
/// finalized index.
inline bool ByHubRank(const LabelEntry& a, const LabelEntry& b) {
  return a.hub_rank < b.hub_rank;
}

/// Index of the entry with `hub_rank` in a rank-sorted list, or
/// `list.size()` if absent.
inline size_t FindHubEntry(std::span<const LabelEntry> list, Rank hub_rank) {
  const auto it = std::lower_bound(list.begin(), list.end(),
                                   LabelEntry{hub_rank, 0, 0}, ByHubRank);
  if (it != list.end() && it->hub_rank == hub_rank) {
    return static_cast<size_t>(it - list.begin());
  }
  return list.size();
}

/// Non-owning view of an immutable, CSR-flattened base label table —
/// per-vertex entry spans behind `offsets` / `entries`. The undirected
/// `SpcIndex` exposes one (`LabelMap()`), and the directed `DiSpcIndex`
/// exposes one per label side (`OutLabelMap()` / `InLabelMap()`), which
/// is what lets the dynamic layer's `ChunkedOverlay` sit on top of any
/// of them without knowing which index variant it belongs to.
struct BaseLabelMap {
  const uint64_t* offsets = nullptr;
  const LabelEntry* entries = nullptr;
  VertexId num_vertices = 0;

  std::span<const LabelEntry> Labels(VertexId v) const {
    return {entries + offsets[v], entries + offsets[v + 1]};
  }
};

/// One vertex's rank-sorted label list as a shareable unit — the
/// building block of the persistent chunked overlay (see
/// `src/dynamic/chunked_overlay.h`). A chunk is mutable only while its
/// single writer privately owns it; once a snapshot capture aliases it
/// the writer clones before the next write, so every chunk a reader
/// can reach is frozen. `shared_ptr` ownership is what makes snapshot
/// publication O(delta): unchanged vertices alias the previous
/// generation's chunk instead of being re-copied.
struct LabelChunk {
  std::vector<LabelEntry> entries;

  /// Optional packed twin of `entries` (one block in the
  /// `src/label/packed_label.h` format), attached by overlay
  /// compaction so frozen chunks serve queries from the compressed
  /// form. Invariant: when non-empty it decodes to exactly `entries`;
  /// every write path (`ChunkedOverlay::Mutable`) clears it, so a
  /// writable chunk is always raw-only and the packed bytes can never
  /// go stale.
  std::vector<uint8_t> packed;
};

using LabelChunkPtr = std::shared_ptr<LabelChunk>;

/// A fresh chunk holding a copy of `entries` (typically a base-index
/// CSR span being pulled out-of-line on first repair touch).
inline LabelChunkPtr MakeLabelChunk(std::span<const LabelEntry> entries) {
  auto chunk = std::make_shared<LabelChunk>();
  chunk->entries.assign(entries.begin(), entries.end());
  return chunk;
}

/// Read-only view of a chunk's entries, the same shape every other
/// label container exposes.
inline std::span<const LabelEntry> ChunkSpan(const LabelChunk& chunk) {
  return {chunk.entries.data(), chunk.entries.size()};
}

}  // namespace pspc

#endif  // PSPC_SRC_LABEL_LABEL_ENTRY_H_
