// Corpus: hot-path-call — rand()/time()/printf() on the serving hot
// path (the test lints this file as src/serve/hot_path_calls.cc).
#include <cstdio>
#include <cstdlib>
#include <ctime>

long Jitter() { return std::rand() % 7; }
long Now() { return time(nullptr); }
void Announce(long v) { std::printf("v=%ld\n", v); }
