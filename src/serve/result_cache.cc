#include "src/serve/result_cache.h"

#include <algorithm>

namespace pspc {
namespace {

size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

uint64_t Mix(uint64_t key) {
  // splitmix64 finalizer: shard selection must not correlate with the
  // vertex-id structure of the key.
  key ^= key >> 30;
  key *= 0xBF58476D1CE4E5B9ull;
  key ^= key >> 27;
  key *= 0x94D049BB133111EBull;
  key ^= key >> 31;
  return key;
}

}  // namespace

ResultCache::ResultCache(size_t num_shards, size_t capacity_per_shard,
                         bool symmetric)
    : num_shards_(RoundUpPowerOfTwo(std::max<size_t>(1, num_shards))),
      capacity_per_shard_(capacity_per_shard),
      symmetric_(symmetric),
      shards_(new Shard[num_shards_]) {}

ResultCache::Shard& ResultCache::ShardFor(uint64_t key) {
  return shards_[Mix(key) & (num_shards_ - 1)];
}

uint64_t ResultCache::PairKey(VertexId s, VertexId t) const {
  if (symmetric_) {
    // Undirected SPC: (t, s) is the same answer, fold the orders.
    const auto [lo, hi] = std::minmax(s, t);
    return (uint64_t{lo} << 32) | uint64_t{hi};
  }
  // Directed SPC: s -> t and t -> s are distinct answers.
  return (uint64_t{s} << 32) | uint64_t{t};
}

bool ResultCache::Lookup(uint64_t generation, VertexId s, VertexId t,
                         SpcResult* out) {
  if (capacity_per_shard_ == 0) return false;
  const uint64_t key = PairKey(s, t);
  Shard& shard = ShardFor(key);
  spc::MutexLock lock(shard.mu);
  if (shard.generation != generation) {
    if (generation > shard.generation) {
      // First sight of a newer generation: everything cached here was
      // computed against a retired graph.
      shard.entries.clear();
      shard.generation = generation;
    }
    // relaxed: hit/miss tallies are diagnostics, no ordering needed.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    // relaxed: diagnostic tally.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  *out = it->second;
  // relaxed: diagnostic tally.
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResultCache::Insert(uint64_t generation, VertexId s, VertexId t,
                         SpcResult result) {
  if (capacity_per_shard_ == 0) return;
  const uint64_t key = PairKey(s, t);
  Shard& shard = ShardFor(key);
  spc::MutexLock lock(shard.mu);
  if (generation < shard.generation) return;  // stale micro-batch
  if (generation > shard.generation) {
    shard.entries.clear();
    shard.generation = generation;
  }
  if (shard.entries.size() >= capacity_per_shard_) shard.entries.clear();
  shard.entries[key] = result;
}

}  // namespace pspc
