#ifndef PSPC_SRC_DIGRAPH_DPSPC_BUILDER_H_
#define PSPC_SRC_DIGRAPH_DPSPC_BUILDER_H_

#include "src/core/build_stats.h"
#include "src/digraph/digraph.h"
#include "src/digraph/dspc_index.h"
#include "src/order/vertex_order.h"

/// Directed PSPC: distance-iteration ESPC construction for the
/// directed setting of paper §II-A. The undirected arguments carry
/// over with in/out labels in tandem:
///
///  * Propagation — a distance-d trough path `h ->..-> u` (stored in
///    Lin(u)) extends a distance-(d-1) trough path ending at an
///    in-neighbor of `u`; symmetrically Lout pulls from out-neighbors.
///  * Pruning — the in-candidate `(h, d)` on `u` dies iff
///    `dist(h, u) < d`, witnessed by an apex `z` with
///    `(z, d1) in Lout(h)` and `(z, d2) in Lin(u)`, both legs shorter
///    than d and hence committed; symmetrically for out-candidates.
///
/// The result is independent of thread count, exactly as in the
/// undirected builder. (Landmark filtering and schedule variants are
/// undirected-path optimizations and are not replicated here.)
namespace pspc {

struct DiPspcOptions {
  int num_threads = 0;  ///< <= 0: all available cores
};

struct DiPspcBuildResult {
  DiSpcIndex index;
  BuildStats stats;
};

DiPspcBuildResult BuildDirectedPspcIndex(const DiGraph& graph,
                                         const VertexOrder& order,
                                         const DiPspcOptions& options);

/// Degree order for directed graphs: rank by total degree (in + out),
/// descending; ties by id.
VertexOrder DirectedDegreeOrder(const DiGraph& graph);

}  // namespace pspc

#endif  // PSPC_SRC_DIGRAPH_DPSPC_BUILDER_H_
