#include "src/label/spc_index.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "src/common/logging.h"
#include "src/label/label_merge_simd.h"

namespace pspc {
namespace {

constexpr uint64_t kIndexMagic = 0x5053'5043'4944'5801ull;  // "PSPCIDX" v1

// On-disk entry footprint: hub_rank (4) + dist (2) + count (8), written
// field-by-field (no struct padding).
constexpr uint64_t kEntryBytes = sizeof(Rank) + sizeof(Distance) +
                                 sizeof(Count);

}  // namespace

SpcIndex::SpcIndex(VertexOrder order,
                   std::vector<std::vector<LabelEntry>> labels)
    : order_(std::move(order)) {
  PSPC_CHECK(labels.size() == order_.Size());
  offsets_.assign(labels.size() + 1, 0);
  size_t total = 0;
  for (size_t v = 0; v < labels.size(); ++v) {
    total += labels[v].size();
    offsets_[v + 1] = total;
  }
  entries_.reserve(total);
  for (auto& vec : labels) {
    std::sort(vec.begin(), vec.end(), ByHubRank);
    entries_.insert(entries_.end(), vec.begin(), vec.end());
  }
}

SpcResult SpcIndex::Query(VertexId s, VertexId t) const {
  PSPC_CHECK_MSG(s < NumVertices() && t < NumVertices(),
                 "query (" << s << "," << t << ") out of range");
  if (s == t) return {0, 1};

  // Vectorized galloping merge — bit-identical to MergeLabelCounts
  // (differential suite: tests/label_merge_simd_test.cc).
  return MergeLabelCountsFast(Labels(s), Labels(t));
}

double SpcIndex::AverageLabelSize() const {
  const VertexId n = NumVertices();
  if (n == 0) return 0.0;
  return static_cast<double>(entries_.size()) / n;
}

size_t SpcIndex::SizeBytes() const {
  return entries_.size() * sizeof(LabelEntry) +
         offsets_.size() * sizeof(uint64_t);
}

Status SpcIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  auto put = [&out](const void* p, size_t bytes) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(bytes));
  };
  const uint64_t n = NumVertices();
  const uint64_t total = entries_.size();
  put(&kIndexMagic, sizeof(kIndexMagic));
  put(&n, sizeof(n));
  put(&total, sizeof(total));
  put(order_.OrderToVertex().data(), n * sizeof(VertexId));
  put(offsets_.data(), offsets_.size() * sizeof(uint64_t));
  for (const LabelEntry& e : entries_) {
    put(&e.hub_rank, sizeof(e.hub_rank));
    put(&e.dist, sizeof(e.dist));
    put(&e.count, sizeof(e.count));
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<SpcIndex> SpcIndex::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open " + path);
  // Every size read from the file is validated against the physical
  // file length *before* any allocation, so a corrupt header cannot
  // drive a multi-gigabyte resize or a crash — only Status::Corruption.
  const auto file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0);
  auto get = [&in](void* p, size_t bytes) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
    return static_cast<bool>(in);
  };
  uint64_t magic = 0, n = 0, total = 0;
  if (!get(&magic, sizeof(magic)) || magic != kIndexMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!get(&n, sizeof(n)) || !get(&total, sizeof(total))) {
    return Status::Corruption("truncated header in " + path);
  }
  if (n >= kInvalidVertex) {
    return Status::Corruption("implausible vertex count in " + path);
  }
  // Division, not multiplication: `total * kEntryBytes` could wrap for
  // a crafted 2^63-ish entry count and sail past the size check.
  const uint64_t header_bytes = 3 * sizeof(uint64_t);
  const uint64_t fixed_bytes =
      n * sizeof(VertexId) + (n + 1) * sizeof(uint64_t);
  if (file_size < header_bytes || fixed_bytes > file_size - header_bytes ||
      total > (file_size - header_bytes - fixed_bytes) / kEntryBytes) {
    return Status::Corruption("file too short for declared sizes in " + path);
  }
  std::vector<VertexId> order_vec(n);
  if (!get(order_vec.data(), n * sizeof(VertexId))) {
    return Status::Corruption("truncated order in " + path);
  }
  // Validate the permutation here: VertexOrder's constructor treats a
  // malformed order as a programmer error and aborts, which a corrupt
  // file must never be able to trigger.
  {
    std::vector<bool> seen(n, false);
    for (const VertexId v : order_vec) {
      if (v >= n || seen[v]) {
        return Status::Corruption("order is not a permutation in " + path);
      }
      seen[v] = true;
    }
  }
  SpcIndex index;
  index.order_ = VertexOrder(std::move(order_vec));
  index.offsets_.resize(n + 1);
  if (!get(index.offsets_.data(), index.offsets_.size() * sizeof(uint64_t))) {
    return Status::Corruption("truncated offsets in " + path);
  }
  if (index.offsets_.front() != 0 || index.offsets_.back() != total) {
    return Status::Corruption("inconsistent offsets in " + path);
  }
  for (size_t v = 0; v + 1 < index.offsets_.size(); ++v) {
    if (index.offsets_[v] > index.offsets_[v + 1]) {
      return Status::Corruption("non-monotonic offsets in " + path);
    }
  }
  index.entries_.resize(total);
  for (LabelEntry& e : index.entries_) {
    if (!get(&e.hub_rank, sizeof(e.hub_rank)) ||
        !get(&e.dist, sizeof(e.dist)) || !get(&e.count, sizeof(e.count))) {
      return Status::Corruption("truncated entries in " + path);
    }
  }
  // Per-vertex lists must be strictly rank-sorted with in-range hubs —
  // the invariant Query's sorted merge relies on.
  for (uint64_t v = 0; v < n; ++v) {
    for (uint64_t i = index.offsets_[v]; i < index.offsets_[v + 1]; ++i) {
      if (index.entries_[i].hub_rank >= n ||
          (i > index.offsets_[v] &&
           index.entries_[i - 1].hub_rank >= index.entries_[i].hub_rank)) {
        return Status::Corruption("unsorted or out-of-range labels in " +
                                  path);
      }
    }
  }
  return index;
}

}  // namespace pspc
