#ifndef PSPC_SRC_REDUCE_EQUIVALENCE_H_
#define PSPC_SRC_REDUCE_EQUIVALENCE_H_

#include <vector>

#include "src/common/types.h"
#include "src/graph/graph.h"

/// Reduction by neighborhood equivalence (paper §IV-B).
///
/// `u ≡ v` iff `nbr(u) \ {v} == nbr(v) \ {u}`. Each equivalence class
/// is either an independent set of *false twins* (identical open
/// neighborhoods) or a clique of *true twins* (identical closed
/// neighborhoods) — mixed classes are impossible (two twins of
/// different kinds would disagree on one adjacency; see DESIGN.md).
/// One representative per class survives, carrying the class size as a
/// *multiplicity weight*: a shortest path through the representative
/// stands for `|class|` original paths, which is precisely the
/// adjustment the paper warns is needed so counts are not "grossly
/// underestimated". Distances between distinct classes are unchanged
/// by the contraction.
///
/// Query-time rules (applied by ReducedSpcIndex):
///  * distinct classes: weighted 2-hop query — each hub term gains a
///    factor `mu(hub)` unless the hub is one of the two endpoints;
///  * same class, true twins: (1, 1) — the direct edge;
///  * same class, false twins: (2, sum of neighbor multiplicities), or
///    disconnected when the class has no neighbors.
namespace pspc {

class EquivalenceReduction {
 public:
  static EquivalenceReduction Build(const Graph& graph);

  /// The contracted graph over class representatives (dense new ids).
  const Graph& Reduced() const { return reduced_; }

  VertexId NumClasses() const { return reduced_.NumVertices(); }

  /// Class (= reduced vertex) id of original vertex `v`.
  VertexId ClassOf(VertexId v) const { return class_of_[v]; }

  /// Original representative vertex of class `c`.
  VertexId RepOf(VertexId c) const { return rep_of_[c]; }

  /// Members in class `c` (the multiplicity weight mu).
  Count Weight(VertexId c) const { return weight_[c]; }

  /// Weight vector aligned with reduced ids, for the weighted builders.
  const std::vector<Count>& Weights() const { return weight_; }

  /// True iff class `c`'s members are mutually adjacent (true twins).
  bool ClassAdjacent(VertexId c) const { return class_adjacent_[c] != 0; }

  /// Closed-form answer for two *distinct* original vertices of the
  /// same class.
  SpcResult SameClassQuery(VertexId c) const;

 private:
  Graph reduced_;
  std::vector<VertexId> class_of_;
  std::vector<VertexId> rep_of_;
  std::vector<Count> weight_;
  std::vector<uint8_t> class_adjacent_;
};

}  // namespace pspc

#endif  // PSPC_SRC_REDUCE_EQUIVALENCE_H_
