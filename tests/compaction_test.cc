#include "src/dynamic/compaction.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/baseline/bfs_spc.h"
#include "src/common/random.h"
#include "src/core/builder_facade.h"
#include "src/dynamic/chunked_overlay.h"
#include "src/dynamic/dynamic_spc_index.h"
#include "src/dynamic/edge_update.h"
#include "src/graph/generators.h"
#include "src/label/packed_label.h"
#include "tests/test_util.h"

namespace pspc {
namespace {

BuildOptions SmallBuildOptions() {
  BuildOptions options;
  options.num_landmarks = 4;
  return options;
}

DynamicOptions NoRebuildOptions() {
  DynamicOptions options;
  options.rebuild_threshold = 1e18;
  options.rebuild_options = SmallBuildOptions();
  return options;
}

/// Applies a deterministic stream of valid updates (inserts with
/// probability `insert_prob`, deletions of existing edges otherwise).
void Churn(DynamicSpcIndex& index, int steps, double insert_prob,
           uint64_t seed) {
  Rng rng(seed);
  const VertexId n = index.NumVertices();
  for (int step = 0; step < steps;) {
    const auto u = static_cast<VertexId>(rng.NextBounded(n));
    const auto v = static_cast<VertexId>(rng.NextBounded(n));
    if (u == v) continue;
    if (rng.NextBool(insert_prob)) {
      if (index.HasEdge(u, v)) continue;
      ASSERT_TRUE(index.InsertEdge(u, v).ok());
    } else {
      if (!index.HasEdge(u, v)) continue;
      ASSERT_TRUE(index.DeleteEdge(u, v).ok());
    }
    ++step;
  }
}

void ExpectMatchesOracle(const DynamicSpcIndex& index,
                         const std::string& context) {
  const Graph g = index.MaterializeGraph();
  for (const auto& [s, t] : testing::AllPairs(g.NumVertices())) {
    ASSERT_EQ(index.Query(s, t), BfsSpcPair(g, s, t))
        << context << " pair (" << s << "," << t << ")";
  }
}

TEST(CompactionTest, PackStepPacksEveryChunkAndPreservesQueries) {
  DynamicSpcIndex index(GenerateErdosRenyi(40, 90, 11), SmallBuildOptions(),
                        NoRebuildOptions());
  Churn(index, 25, 0.5, 301);
  ASSERT_GT(index.Overlay().OverlaidVertices(), 0u);

  CompactionOptions options;
  options.chunk_budget_per_step = 3;  // force multiple budgeted steps
  OverlayCompactor compactor(&index, options);
  size_t total = 0;
  while (const size_t packed = compactor.PackStep()) {
    EXPECT_LE(packed, options.chunk_budget_per_step);
    total += packed;
    ASSERT_LT(total, 10000u) << "pack loop failed to converge";
  }
  EXPECT_EQ(total, index.Overlay().OverlaidVertices());
  EXPECT_EQ(compactor.Stats().chunks_packed, total);
  EXPECT_GT(compactor.Stats().pack_steps, 1u);
  EXPECT_LT(compactor.Stats().packed_chunk_bytes,
            compactor.Stats().raw_chunk_bytes);

  // Every overlaid chunk now carries a packed twin that decodes to
  // exactly its raw entries.
  index.Overlay().ForEachOverlaid([&](VertexId v, const LabelChunk& chunk) {
    ASSERT_FALSE(chunk.packed.empty()) << "vertex " << v;
    std::vector<LabelEntry> decoded;
    PackedBlockView(chunk.packed.data()).DecodeAll(&decoded);
    EXPECT_EQ(decoded, chunk.entries) << "vertex " << v;
  });
  ExpectMatchesOracle(index, "after pack");
}

TEST(CompactionTest, FoldEmptiesOverlayBumpsGenerationKeepsAnswers) {
  DynamicSpcIndex index(GenerateWattsStrogatz(36, 3, 0.2, 13),
                        SmallBuildOptions(), NoRebuildOptions());
  Churn(index, 30, 0.5, 302);
  ASSERT_GT(index.Overlay().OverlaidEntries(), 0u);
  const uint64_t generation_before = index.Generation();

  OverlayCompactor compactor(&index);
  compactor.Fold();

  EXPECT_EQ(index.Overlay().OverlaidVertices(), 0u);
  EXPECT_EQ(index.StalenessRatio(), 0.0);
  EXPECT_GT(index.Generation(), generation_before);
  EXPECT_EQ(compactor.Stats().folds, 1u);
  EXPECT_GT(compactor.Stats().last_fold_entries_folded, 0u);
  ExpectMatchesOracle(index, "after fold");

  // The fold refreshed the packed mirror to the folded base: it must
  // round-trip the new base labels exactly.
  const auto packed = index.SharedPackedBase();
  ASSERT_NE(packed, nullptr);
  ASSERT_EQ(packed->NumVertices(), index.NumVertices());
  for (VertexId v = 0; v < index.NumVertices(); ++v) {
    std::vector<LabelEntry> decoded;
    packed->Block(v).DecodeAll(&decoded);
    const auto raw = index.BaseIndex().Labels(v);
    ASSERT_EQ(decoded.size(), raw.size()) << "vertex " << v;
    for (size_t i = 0; i < raw.size(); ++i) {
      ASSERT_EQ(decoded[i], raw[i]) << "vertex " << v << " entry " << i;
    }
  }
}

TEST(CompactionTest, FoldPrunesStaleEntriesWithoutChangingAnswers) {
  // Insert-heavy churn: insertions shorten true distances, so repair
  // provably may leave entries whose recorded distance exceeds the new
  // shortest — exactly what the fold's stale sweep removes.
  DynamicSpcIndex index(GenerateErdosRenyi(40, 60, 17), SmallBuildOptions(),
                        NoRebuildOptions());
  Churn(index, 40, 0.9, 303);

  size_t entries_before = 0;
  for (VertexId v = 0; v < index.NumVertices(); ++v) {
    entries_before += index.Labels(v).size();
  }

  OverlayCompactor compactor(&index);
  compactor.Fold();

  EXPECT_EQ(index.BaseIndex().TotalEntries(),
            entries_before - compactor.Stats().entries_pruned);
  EXPECT_GT(compactor.Stats().entries_pruned, 0u);
  ExpectMatchesOracle(index, "after pruning fold");
}

TEST(CompactionTest, FoldIfStaleHonorsThreshold) {
  DynamicSpcIndex index(GenerateErdosRenyi(30, 60, 19), SmallBuildOptions(),
                        NoRebuildOptions());
  Churn(index, 15, 0.5, 304);
  ASSERT_GT(index.StalenessRatio(), 0.0);

  CompactionOptions never;
  never.fold_staleness_ratio = 1e18;
  OverlayCompactor lazy(&index, never);
  EXPECT_FALSE(lazy.FoldIfStale());
  EXPECT_EQ(lazy.Stats().folds, 0u);

  CompactionOptions always;
  always.fold_staleness_ratio = 0.0;
  OverlayCompactor eager(&index, always);
  EXPECT_TRUE(eager.FoldIfStale());
  EXPECT_FALSE(eager.FoldIfStale());  // overlay now empty, ratio 0
  EXPECT_EQ(eager.Stats().folds, 1u);
}

// ------------------------------------------- overlay aliasing details

class OverlayPackedChunkTest : public ::testing::Test {
 protected:
  OverlayPackedChunkTest()
      : index_(BuildIndex(GenerateCycle(12), SmallBuildOptions()).index),
        overlay_(index_.LabelMap()) {}

  /// A frozen packed-only chunk for `v` (entries dropped, packed twin
  /// only) — the most compact frozen form a compaction pass could
  /// produce.
  LabelChunkPtr PackedOnlyChunk(VertexId v) {
    auto chunk = std::make_shared<LabelChunk>();
    AppendPackedBlock(overlay_.Labels(v), &chunk->packed);
    return chunk;
  }

  const LabelChunk* ChunkOf(VertexId v) {
    const LabelChunk* found = nullptr;
    overlay_.ForEachOverlaid([&](VertexId u, const LabelChunk& chunk) {
      if (u == v) found = &chunk;
    });
    return found;
  }

  SpcIndex index_;
  ChunkedOverlay overlay_;
};

TEST_F(OverlayPackedChunkTest, MutableDecodesPackedOnlyChunkExactlyOnce) {
  const VertexId v = 3;
  const std::vector<LabelEntry> original(index_.Labels(v).begin(),
                                         index_.Labels(v).end());
  overlay_.Mutable(v);                      // overlay the vertex
  overlay_.ReplaceChunk(v, PackedOnlyChunk(v));
  const OverlayView view = overlay_.Capture();  // freeze the packed form

  // First write after the capture: the clone must materialize raw
  // entries from the packed twin (not serve an empty list, not keep
  // the about-to-go-stale packed bytes alongside).
  std::vector<LabelEntry>& entries = overlay_.Mutable(v);
  EXPECT_EQ(entries, original);
  const LabelChunk* writable = ChunkOf(v);
  ASSERT_NE(writable, nullptr);
  EXPECT_TRUE(writable->packed.empty());

  // The frozen chunk the capture aliases is untouched: still
  // packed-only, still decoding to the original entries.
  const LabelChunk* frozen = view.Chunk(v);
  ASSERT_NE(frozen, nullptr);
  EXPECT_TRUE(frozen->entries.empty());
  std::vector<LabelEntry> decoded;
  PackedBlockView(frozen->packed.data()).DecodeAll(&decoded);
  EXPECT_EQ(decoded, original);
}

TEST_F(OverlayPackedChunkTest, InPlaceWriteDropsPackedTwin) {
  const VertexId v = 5;
  overlay_.Mutable(v);
  auto dual = std::make_shared<LabelChunk>();
  dual->entries.assign(overlay_.Labels(v).begin(), overlay_.Labels(v).end());
  AppendPackedBlock(ChunkSpan(*dual), &dual->packed);
  overlay_.ReplaceChunk(v, std::move(dual));
  ASSERT_FALSE(ChunkOf(v)->packed.empty());

  // Same capture interval: Mutable writes in place and must invalidate
  // the twin, or the next snapshot would serve stale packed bytes.
  overlay_.Mutable(v).push_back({9999, 1, 1});
  EXPECT_TRUE(ChunkOf(v)->packed.empty());
}

// Mirror of serving_test's InsertHeavyPublishCopiesDeltaNotOverlay for
// the compaction write path: ReplaceChunk must unshare, never mutate
// what a capture aliases.
TEST_F(OverlayPackedChunkTest, ReplaceChunkCopiesDeltaNotOverlay) {
  const VertexId packed_v = 2;
  const VertexId untouched_v = 7;
  overlay_.Mutable(packed_v);
  overlay_.Mutable(untouched_v);
  const OverlayView view = overlay_.Capture();
  const LabelChunk* frozen_packed = view.Chunk(packed_v);
  const LabelChunk* frozen_untouched = view.Chunk(untouched_v);

  overlay_.ReplaceChunk(packed_v, PackedOnlyChunk(packed_v));

  // The replaced vertex got a fresh chunk; the untouched vertex still
  // aliases the captured one (O(delta), not O(overlay)).
  EXPECT_NE(ChunkOf(packed_v), frozen_packed);
  EXPECT_EQ(ChunkOf(untouched_v), frozen_untouched);
  EXPECT_TRUE(frozen_packed->packed.empty());  // frozen bytes untouched
  EXPECT_EQ(overlay_.CopiedSinceCapture(), 1u);

  // A second replace in the same interval re-copies nothing new.
  overlay_.ReplaceChunk(packed_v, PackedOnlyChunk(packed_v));
  EXPECT_EQ(overlay_.CopiedSinceCapture(), 1u);
}

}  // namespace
}  // namespace pspc
