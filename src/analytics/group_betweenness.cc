#include "src/analytics/group_betweenness.h"

#include <vector>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/common/saturating.h"

namespace pspc {
namespace {

/// BFS shortest-path counting from `s` skipping blocked vertices.
/// Returns (distance, count) to `t` within the surviving subgraph.
SpcResult BfsSpcAvoiding(const Graph& graph, VertexId s, VertexId t,
                         const std::vector<uint8_t>& blocked) {
  const VertexId n = graph.NumVertices();
  std::vector<Distance> dist(n, kInfDistance);
  std::vector<Count> count(n, 0);
  dist[s] = 0;
  count[s] = 1;
  std::vector<VertexId> frontier{s}, next;
  Distance d = 0;
  while (!frontier.empty() && dist[t] == kInfDistance) {
    ++d;
    next.clear();
    for (VertexId u : frontier) {
      for (VertexId v : graph.Neighbors(u)) {
        if (blocked[v] != 0) continue;
        if (dist[v] == kInfDistance) {
          dist[v] = d;
          next.push_back(v);
        }
        if (dist[v] == d) count[v] = SatAdd(count[v], count[u]);
      }
    }
    frontier.swap(next);
  }
  // Exiting after the level that discovered t is safe: a level is fully
  // accumulated (all parents scanned) before the loop condition is
  // rechecked, so count[t] is already complete.
  if (dist[t] == kInfDistance) return {kInfSpcDistance, 0};
  return {dist[t], count[t]};
}

}  // namespace

double GroupPathFraction(const Graph& graph, const SpcIndex& index,
                         const std::vector<VertexId>& group, VertexId s,
                         VertexId t) {
  const SpcResult total = index.Query(s, t);
  if (total.distance == kInfSpcDistance || total.count == 0) return 0.0;
  for (VertexId c : group) {
    if (c == s || c == t) return 1.0;  // endpoint meets C
  }
  std::vector<uint8_t> blocked(graph.NumVertices(), 0);
  for (VertexId c : group) blocked[c] = 1;
  const SpcResult avoid = BfsSpcAvoiding(graph, s, t, blocked);
  if (avoid.distance != total.distance) return 1.0;  // every path hits C
  const double frac = 1.0 - static_cast<double>(avoid.count) /
                                static_cast<double>(total.count);
  return frac < 0.0 ? 0.0 : frac;
}

double GroupBetweennessExact(const Graph& graph, const SpcIndex& index,
                             const std::vector<VertexId>& group) {
  const VertexId n = graph.NumVertices();
  double total = 0.0;
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = s + 1; t < n; ++t) {
      total += GroupPathFraction(graph, index, group, s, t);
    }
  }
  return total;
}

double GroupBetweennessSampled(const Graph& graph, const SpcIndex& index,
                               const std::vector<VertexId>& group,
                               size_t num_samples, uint64_t seed) {
  const VertexId n = graph.NumVertices();
  PSPC_CHECK(n >= 2);
  Rng rng(seed);
  double total = 0.0;
  size_t drawn = 0;
  while (drawn < num_samples) {
    const auto s = static_cast<VertexId>(rng.NextBounded(n));
    const auto t = static_cast<VertexId>(rng.NextBounded(n));
    if (s == t) continue;
    total += GroupPathFraction(graph, index, group, s, t);
    ++drawn;
  }
  const double pairs = static_cast<double>(n) * (n - 1) / 2.0;
  return total / static_cast<double>(num_samples) * pairs;
}

}  // namespace pspc
