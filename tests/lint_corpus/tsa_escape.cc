// Corpus: tsa-escape — NO_THREAD_SAFETY_ANALYSIS is banned outside
// the macro's definition in src/common/thread_annotations.h.

void SneakyUnlockedAccess() NO_THREAD_SAFETY_ANALYSIS;
