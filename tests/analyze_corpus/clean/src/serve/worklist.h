#pragma once
#include "src/common/mutex.h"
#include "src/common/status.h"

class Status;

class Worklist {
 public:
  Status Push(int v);
  int Pop();

 private:
  spc::Mutex mu_;
  int depth_ = 0;
};
