// Command-line SPC tool: build an index from an edge-list file (or a
// named synthetic dataset), persist it, and answer queries.
//
//   ./spc_cli build  <graph.txt|dataset:CODE> <index.bin> [--hp-spc]
//                    [--order degree|sig|road|hybrid] [--threads N]
//   ./spc_cli query  <graph-or-dataset> <index.bin> <s> <t> [s t ...]
//   ./spc_cli stats  <graph-or-dataset>
//
// Examples:
//   ./spc_cli build dataset:FB /tmp/fb.idx --order hybrid
//   ./spc_cli query dataset:FB /tmp/fb.idx 0 17 3 99

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/builder_facade.h"
#include "src/graph/algorithms.h"
#include "src/graph/datasets.h"
#include "src/graph/graph_io.h"
#include "src/label/spc_index.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  spc_cli build <graph.txt|dataset:CODE> <index.bin> "
               "[--hp-spc] [--order degree|sig|road|hybrid] [--threads N]\n"
               "  spc_cli query <graph-or-dataset> <index.bin> <s> <t> ...\n"
               "  spc_cli stats <graph-or-dataset>\n");
  return 2;
}

bool LoadGraphArg(const std::string& arg, pspc::Graph* out) {
  if (arg.rfind("dataset:", 0) == 0) {
    *out = pspc::DatasetByCode(arg.substr(8)).build(1);
    return true;
  }
  auto r = pspc::LoadEdgeList(arg);
  if (!r.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", arg.c_str(),
                 r.status().ToString().c_str());
    return false;
  }
  *out = std::move(r).value();
  return true;
}

int CmdBuild(int argc, char** argv) {
  if (argc < 4) return Usage();
  pspc::Graph graph;
  if (!LoadGraphArg(argv[2], &graph)) return 1;

  pspc::BuildOptions options;
  for (int i = 4; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--hp-spc") {
      options.algorithm = pspc::Algorithm::kHpSpc;
    } else if (flag == "--order" && i + 1 < argc) {
      const std::string order = argv[++i];
      if (order == "degree") {
        options.ordering = pspc::OrderingScheme::kDegree;
      } else if (order == "sig") {
        options.ordering = pspc::OrderingScheme::kSignificantPath;
      } else if (order == "road") {
        options.ordering = pspc::OrderingScheme::kRoadNetwork;
      } else if (order == "hybrid") {
        options.ordering = pspc::OrderingScheme::kHybrid;
      } else {
        return Usage();
      }
    } else if (flag == "--threads" && i + 1 < argc) {
      options.num_threads = std::atoi(argv[++i]);
    } else {
      return Usage();
    }
  }

  std::printf("graph: %u vertices, %llu edges\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));
  const pspc::BuildResult result = pspc::BuildIndex(graph, options);
  std::printf("built %s index under %s order: %zu entries in %.3fs "
              "(order %.3fs, landmarks %.3fs, construction %.3fs)\n",
              ToString(options.algorithm).c_str(),
              ToString(options.ordering).c_str(),
              result.index.TotalEntries(), result.stats.TotalSeconds(),
              result.stats.ordering_seconds, result.stats.landmark_seconds,
              result.stats.construction_seconds);
  if (const pspc::Status st = result.index.Save(argv[3]); !st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved to %s (%.1f MB)\n", argv[3],
              static_cast<double>(result.index.SizeBytes()) / 1048576.0);
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 6 || (argc - 4) % 2 != 0) return Usage();
  auto loaded = pspc::SpcIndex::Load(argv[3]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load index %s: %s\n", argv[3],
                 loaded.status().ToString().c_str());
    return 1;
  }
  const pspc::SpcIndex& index = loaded.value();
  for (int i = 4; i + 1 < argc; i += 2) {
    const auto s = static_cast<pspc::VertexId>(std::atoll(argv[i]));
    const auto t = static_cast<pspc::VertexId>(std::atoll(argv[i + 1]));
    if (s >= index.NumVertices() || t >= index.NumVertices()) {
      std::printf("SPC(%u, %u): out of range (n=%u)\n", s, t,
                  index.NumVertices());
      continue;
    }
    const pspc::SpcResult r = index.Query(s, t);
    if (r.distance == pspc::kInfSpcDistance) {
      std::printf("SPC(%u, %u): unreachable\n", s, t);
    } else {
      std::printf("SPC(%u, %u): distance %u, %llu shortest paths\n", s, t,
                  r.distance, static_cast<unsigned long long>(r.count));
    }
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  pspc::Graph graph;
  if (!LoadGraphArg(argv[2], &graph)) return 1;
  pspc::VertexId components = 0;
  pspc::ConnectedComponents(graph, &components);
  std::printf("vertices:   %u\n", graph.NumVertices());
  std::printf("edges:      %llu\n",
              static_cast<unsigned long long>(graph.NumEdges()));
  std::printf("avg degree: %.2f\n", graph.AverageDegree());
  std::printf("max degree: %u\n", graph.MaxDegree());
  std::printf("components: %u\n", components);
  std::printf("diameter:   >= %u (double sweep)\n",
              pspc::EstimateDiameter(graph, 4, 1));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "build") == 0) return CmdBuild(argc, argv);
  if (std::strcmp(argv[1], "query") == 0) return CmdQuery(argc, argv);
  if (std::strcmp(argv[1], "stats") == 0) return CmdStats(argc, argv);
  return Usage();
}
