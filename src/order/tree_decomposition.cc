#include "src/order/tree_decomposition.h"

#include <algorithm>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace pspc {

TreeDecompositionResult MinDegreeElimination(const Graph& graph,
                                             VertexId degree_cap) {
  const VertexId n = graph.NumVertices();
  // Working adjacency as hash sets; fill-in edges are inserted as
  // vertices are eliminated.
  std::vector<std::unordered_set<VertexId>> adj(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = graph.Neighbors(v);
    adj[v].insert(nbrs.begin(), nbrs.end());
  }

  // Lazy min-heap keyed by working degree.
  using HeapItem = std::pair<VertexId /*degree*/, VertexId /*vertex*/>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (VertexId v = 0; v < n; ++v) {
    heap.emplace(static_cast<VertexId>(adj[v].size()), v);
  }

  TreeDecompositionResult result;
  result.elimination.reserve(n);
  std::vector<bool> eliminated(n, false);

  while (!heap.empty()) {
    const auto [deg, v] = heap.top();
    heap.pop();
    if (eliminated[v]) continue;
    if (deg != adj[v].size()) {
      // Stale entry; reinsert with the current degree.
      heap.emplace(static_cast<VertexId>(adj[v].size()), v);
      continue;
    }
    if (degree_cap != 0 && deg > degree_cap) {
      // Dense core reached: stop eliminating; handled below.
      break;
    }
    eliminated[v] = true;
    result.elimination.push_back(v);
    result.max_bag_size =
        std::max(result.max_bag_size, static_cast<VertexId>(deg + 1));

    // Connect v's remaining neighbors into a clique, then detach v.
    std::vector<VertexId> nbrs(adj[v].begin(), adj[v].end());
    for (VertexId u : nbrs) adj[u].erase(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        const VertexId a = nbrs[i], b = nbrs[j];
        if (adj[a].insert(b).second) adj[b].insert(a);
      }
    }
    for (VertexId u : nbrs) {
      heap.emplace(static_cast<VertexId>(adj[u].size()), u);
    }
    adj[v].clear();
  }

  // Any survivors (dense core under the cap) are appended in ascending
  // working-degree order, so that after the global reversal below they
  // rank highest, densest first.
  std::vector<VertexId> core;
  for (VertexId v = 0; v < n; ++v) {
    if (!eliminated[v]) core.push_back(v);
  }
  std::stable_sort(core.begin(), core.end(), [&adj](VertexId a, VertexId b) {
    return adj[a].size() < adj[b].size();
  });
  for (VertexId v : core) result.elimination.push_back(v);

  // Rank: last eliminated = rank 0.
  std::vector<VertexId> order(result.elimination.rbegin(),
                              result.elimination.rend());
  result.order = VertexOrder(std::move(order));
  return result;
}

VertexOrder RoadNetworkOrder(const Graph& graph) {
  // Cap the fill-in at a generous multiple of the average degree; on
  // road-like graphs the cap never triggers, on small-world graphs it
  // prevents quadratic blowup of the elimination cliques.
  const auto cap = static_cast<VertexId>(
      std::max<double>(32.0, graph.AverageDegree() * 8.0));
  return MinDegreeElimination(graph, cap).order;
}

}  // namespace pspc
