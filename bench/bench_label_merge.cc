// Microbenchmark for the memory-bandwidth query path: the vectorized
// label-merge kernels (scalar / SWAR / SSE / AVX2) over raw
// `LabelEntry` spans and packed label blocks, plus the bytes each
// representation streams per merge.
//
// Every timed configuration is also checked for bit-identity against
// the scalar `MergeLabelCounts` reference on every sampled pair — a
// kernel that is fast but wrong exits non-zero, and the `--json`
// summary carries the mismatch counts so tools/bench_compare gates
// them exactly in CI.
//
// Self-contained (WallTimer-based); no google-benchmark dependency:
//
//   ./bench_label_merge [num_vertices] [num_pairs] [--json <path>]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_json.h"
#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/core/builder_facade.h"
#include "src/graph/generators.h"
#include "src/label/label_merge.h"
#include "src/label/label_merge_simd.h"
#include "src/label/packed_label.h"

namespace {

using pspc::LabelSource;
using pspc::MergeKernel;
using pspc::SpcResult;
using pspc::VertexId;

struct Timing {
  double ns_per_merge = 0.0;
  uint64_t mismatches = 0;
  uint64_t checksum = 0;  // defeats dead-code elimination
};

uint64_t Mix(const SpcResult& r) {
  return (static_cast<uint64_t>(r.distance) << 32) ^ r.count;
}

/// Times `merge(s, t)` over every pair, `reps` times, and counts
/// result mismatches against the scalar reference once per pair.
template <typename MergeFn>
Timing TimePairs(const std::vector<std::pair<VertexId, VertexId>>& pairs,
                 const std::vector<SpcResult>& reference, size_t reps,
                 MergeFn&& merge) {
  Timing timing;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (merge(pairs[i].first, pairs[i].second) != reference[i]) {
      ++timing.mismatches;
    }
  }
  pspc::WallTimer timer;
  for (size_t rep = 0; rep < reps; ++rep) {
    for (const auto& [s, t] : pairs) {
      timing.checksum ^= Mix(merge(s, t));
    }
    // Full compiler barrier: without it the fully-inlinable scalar
    // reference gets hoisted out of the rep loop (merges are pure) and
    // times as ~0 ns, while the runtime-dispatched kernels cannot be —
    // an unfair comparison, not a real speedup.
    asm volatile("" : "+r"(timing.checksum) : : "memory");
  }
  const double seconds = timer.ElapsedSeconds();
  timing.ns_per_merge =
      seconds * 1e9 / static_cast<double>(reps * pairs.size());
  return timing;
}

}  // namespace

int main(int argc, char** argv) {
  VertexId n = 4000;
  size_t num_pairs = 4096;
  std::string json_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json expects an output path\n");
        return 2;
      }
      json_path = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() > 0) {
    n = static_cast<VertexId>(std::atoi(positional[0].c_str()));
  }
  if (positional.size() > 1) {
    num_pairs = static_cast<size_t>(std::atoi(positional[1].c_str()));
  }
  if (n < 16) n = 16;
  if (num_pairs == 0) num_pairs = 1;

  const pspc::Graph graph = pspc::GenerateBarabasiAlbert(n, 4, 1);
  std::printf("graph: %u vertices, %llu edges; building index...\n", n,
              static_cast<unsigned long long>(graph.NumEdges()));
  const pspc::SpcIndex index =
      pspc::BuildIndex(graph, pspc::BuildOptions{}).index;
  const pspc::PackedLabelMap packed =
      pspc::PackedLabelMap::Encode(index.LabelMap());

  // Uniform random pairs: the merge mix a cache-miss query stream
  // produces (hot repeated pairs are absorbed by the result cache
  // upstream of this kernel).
  pspc::Rng rng(0x5eed);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(num_pairs);
  for (size_t i = 0; i < num_pairs; ++i) {
    pairs.emplace_back(static_cast<VertexId>(rng.NextBounded(n)),
                       static_cast<VertexId>(rng.NextBounded(n)));
  }
  std::vector<SpcResult> reference;
  reference.reserve(num_pairs);
  size_t raw_bytes = 0, packed_bytes = 0;
  for (const auto& [s, t] : pairs) {
    reference.push_back(pspc::MergeLabelCounts(index.Labels(s), index.Labels(t)));
    raw_bytes += index.Labels(s).size_bytes() + index.Labels(t).size_bytes();
    packed_bytes += packed.Block(s).SizeBytes() + packed.Block(t).SizeBytes();
  }
  const double raw_bytes_per_merge =
      static_cast<double>(raw_bytes) / static_cast<double>(num_pairs);
  const double packed_bytes_per_merge =
      static_cast<double>(packed_bytes) / static_cast<double>(num_pairs);
  const size_t reps =
      std::max<size_t>(1, 2'000'000 / std::max<size_t>(1, num_pairs));

  // Reference timing: the pre-existing scalar merge, untouched.
  const Timing baseline =
      TimePairs(pairs, reference, reps, [&](VertexId s, VertexId t) {
        return pspc::MergeLabelCounts(index.Labels(s), index.Labels(t));
      });

  struct KernelRow {
    MergeKernel kernel;
    bool supported;
    Timing raw;     // MergeLabelCountsFast on raw spans
    Timing packed;  // MergeLabelSources on packed blocks
  };
  std::vector<KernelRow> rows;
  for (const MergeKernel kernel :
       {MergeKernel::kScalar, MergeKernel::kSwar, MergeKernel::kSse,
        MergeKernel::kAvx2}) {
    KernelRow row;
    row.kernel = kernel;
    row.supported = pspc::MergeKernelSupported(kernel);
    if (row.supported) {
      pspc::SetMergeKernel(kernel);
      row.raw = TimePairs(pairs, reference, reps, [&](VertexId s, VertexId t) {
        return pspc::MergeLabelCountsFast(index.Labels(s), index.Labels(t));
      });
      row.packed =
          TimePairs(pairs, reference, reps, [&](VertexId s, VertexId t) {
            return pspc::MergeLabelSources(
                LabelSource::Packed(packed.Block(s)),
                LabelSource::Packed(packed.Block(t)));
          });
    }
    rows.push_back(row);
  }
  pspc::ResetMergeKernel();

  std::printf(
      "\n%zu pairs x %zu reps, raw %.0f B/merge, packed %.0f B/merge "
      "(%.2fx fewer bytes)\n\n",
      num_pairs, reps, raw_bytes_per_merge, packed_bytes_per_merge,
      raw_bytes_per_merge / packed_bytes_per_merge);
  std::printf("%-18s %12s %12s %10s %10s\n", "kernel", "raw ns", "packed ns",
              "speedup", "oracle");
  std::printf("%-18s %12.1f %12s %10s %10s\n", "reference(scalar)",
              baseline.ns_per_merge, "-", "1.00x", "exact");
  uint64_t kernel_mismatches = 0, packed_mismatches = 0;
  for (const KernelRow& row : rows) {
    if (!row.supported) {
      std::printf("%-18s %12s %12s %10s %10s\n",
                  pspc::MergeKernelName(row.kernel), "-", "-", "-",
                  "unsupported");
      continue;
    }
    kernel_mismatches += row.raw.mismatches;
    packed_mismatches += row.packed.mismatches;
    std::printf("%-18s %12.1f %12.1f %9.2fx %10s\n",
                pspc::MergeKernelName(row.kernel), row.raw.ns_per_merge,
                row.packed.ns_per_merge,
                baseline.ns_per_merge / row.raw.ns_per_merge,
                row.raw.mismatches + row.packed.mismatches == 0 ? "exact"
                                                                : "WRONG");
  }
  const double best_raw_ns = [&] {
    double best = baseline.ns_per_merge;
    for (const KernelRow& row : rows) {
      if (row.supported && row.raw.ns_per_merge < best) {
        best = row.raw.ns_per_merge;
      }
    }
    return best;
  }();
  std::printf("\nbest kernel vs scalar reference: %.2fx; mismatches: %llu\n",
              baseline.ns_per_merge / best_raw_ns,
              static_cast<unsigned long long>(kernel_mismatches +
                                              packed_mismatches));

  if (!json_path.empty()) {
    pspc::benchjson::Object root;
    root.Add("bench", "label_merge");
    root.Add("vertices", static_cast<uint64_t>(n));
    root.Add("pairs", static_cast<uint64_t>(num_pairs));
    root.Add("reps", static_cast<uint64_t>(reps));
    root.Add("raw_bytes_per_merge", raw_bytes_per_merge);
    root.Add("packed_bytes_per_merge", packed_bytes_per_merge);
    // "speedup" keys are gated (higher-better) by tools/bench_compare
    // even in --machine-independent mode; the byte ratio genuinely is
    // machine-independent, the kernel ratios are same-host ratios.
    root.Add("packed_bytes_speedup",
             raw_bytes_per_merge / packed_bytes_per_merge);
    root.Add("best_kernel_speedup", baseline.ns_per_merge / best_raw_ns);
    root.Add("scalar_reference_ns", baseline.ns_per_merge);
    pspc::benchjson::Array kernel_array;
    for (const KernelRow& row : rows) {
      pspc::benchjson::Object r;
      r.Add("kernel", pspc::MergeKernelName(row.kernel));
      r.Add("supported", row.supported);
      if (row.supported) {
        r.Add("raw_ns_per_merge", row.raw.ns_per_merge);
        r.Add("packed_ns_per_merge", row.packed.ns_per_merge);
        r.Add("raw_speedup", baseline.ns_per_merge / row.raw.ns_per_merge);
        r.Add("mismatches", row.raw.mismatches + row.packed.mismatches);
      }
      kernel_array.Add(r);
    }
    root.AddRaw("kernels", kernel_array.Serialize());
    root.Add("kernel_mismatches", kernel_mismatches);
    root.Add("packed_mismatches", packed_mismatches);
    if (!pspc::benchjson::WriteFile(json_path, root)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return kernel_mismatches + packed_mismatches == 0 ? 0 : 1;
}
