#include "src/core/scheduler.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"

namespace pspc {

SchedulePlan PlanIteration(ScheduleKind kind, std::span<const VertexId> active,
                           std::span<const uint64_t> costs,
                           const std::vector<Rank>& rank_of) {
  SchedulePlan plan;
  plan.sequence.assign(active.begin(), active.end());
  // Node-order sequence: the paper's schedules walk vertices by rank.
  std::sort(plan.sequence.begin(), plan.sequence.end(),
            [&rank_of](VertexId a, VertexId b) {
              return rank_of[a] < rank_of[b];
            });
  switch (kind) {
    case ScheduleKind::kStatic:
      plan.dynamic = false;
      break;
    case ScheduleKind::kDynamic:
      plan.dynamic = true;
      plan.chunk = 16;
      break;
    case ScheduleKind::kCostAware: {
      PSPC_CHECK(costs.size() == active.size());
      // Sort by estimated cost, largest first (LPT); ties by rank for
      // determinism. `costs` is aligned with `active`, so order the
      // indices first and map through.
      std::vector<size_t> idx(active.size());
      std::iota(idx.begin(), idx.end(), size_t{0});
      std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
        if (costs[a] != costs[b]) return costs[a] > costs[b];
        return rank_of[active[a]] < rank_of[active[b]];
      });
      plan.sequence.resize(active.size());
      for (size_t i = 0; i < idx.size(); ++i) {
        plan.sequence[i] = active[idx[i]];
      }
      plan.dynamic = true;
      plan.chunk = 8;
      break;
    }
  }
  return plan;
}

}  // namespace pspc
