#ifndef PSPC_SRC_REDUCE_ONE_SHELL_H_
#define PSPC_SRC_REDUCE_ONE_SHELL_H_

#include <vector>

#include "src/common/types.h"
#include "src/graph/graph.h"

/// Reduction by 1-shell (paper §IV-A).
///
/// Iteratively peeling degree-1 vertices strips the forest fringe
/// hanging off the graph's 2-core. Each peeled vertex belongs to a tree
/// attached to the core through exactly one *anchor* vertex, so:
///  * between two vertices of the same tree (same anchor) the unique
///    tree path is the unique shortest path — count 1, distance via
///    the tree LCA;
///  * otherwise every shortest path threads anchor-to-anchor through
///    the core: SPC(s,t) = (depth(s) + d_core + depth(t),
///    spc_core(anchor(s), anchor(t))).
/// The core graph therefore needs labels only for core vertices, which
/// is the index-size savings the paper claims; correctness of both
/// branches is proved in DESIGN.md §2 and asserted by property tests.
namespace pspc {

class OneShellReduction {
 public:
  /// Peels `graph` to its (non-trivial) core.
  static OneShellReduction Build(const Graph& graph);

  /// The peeled core over dense new ids `[0, NumCoreVertices())`.
  const Graph& Core() const { return core_; }

  VertexId NumCoreVertices() const { return core_.NumVertices(); }
  VertexId NumFringeVertices() const {
    return static_cast<VertexId>(anchor_.size()) - NumCoreVertices();
  }

  /// True iff original vertex `v` survived into the core.
  bool IsCore(VertexId v) const { return depth_[v] == 0; }

  /// Core id of an original core vertex (kInvalidVertex for fringe).
  VertexId CoreId(VertexId v) const { return orig_to_core_[v]; }

  /// Original id of core vertex `c`.
  VertexId OrigId(VertexId c) const { return core_to_orig_[c]; }

  /// Anchor (original id) of `v`: the core vertex whose tree contains
  /// `v`; `v` itself when `v` is core.
  VertexId Anchor(VertexId v) const { return anchor_[v]; }

  /// Hop distance from `v` to its anchor (0 for core vertices).
  Distance Depth(VertexId v) const { return depth_[v]; }

  /// Distance and count between two same-anchor vertices through their
  /// tree (count is always 1; distance via LCA climbing).
  SpcResult TreeQuery(VertexId s, VertexId t) const;

 private:
  Graph core_;
  std::vector<VertexId> core_to_orig_;
  std::vector<VertexId> orig_to_core_;
  std::vector<VertexId> anchor_;  // original ids
  std::vector<VertexId> parent_;  // original ids; kInvalidVertex for core
  std::vector<Distance> depth_;
};

}  // namespace pspc

#endif  // PSPC_SRC_REDUCE_ONE_SHELL_H_
