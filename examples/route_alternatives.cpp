// Route alternatives: materialize the actual shortest routes the count
// promises. The SPC index says *how many* equally short routes exist;
// EnumerateShortestPaths hands the first k of them to a navigation
// layer, and the bidirectional online counter cross-checks the math
// without any index.
//
//   ./route_alternatives

#include <cstdio>

#include "src/baseline/bidirectional_spc.h"
#include "src/core/builder_facade.h"
#include "src/graph/generators.h"
#include "src/label/path_enumeration.h"

int main() {
  // A downtown grid with some diagonal avenues.
  const pspc::Graph city = pspc::GenerateRoadGrid(24, 24, 0.95, 0.08, 9);
  std::printf("city: %u intersections, %llu segments\n", city.NumVertices(),
              static_cast<unsigned long long>(city.NumEdges()));

  pspc::BuildOptions options;
  options.ordering = pspc::OrderingScheme::kHybrid;
  const pspc::BuildResult built = pspc::BuildIndex(city, options);

  const pspc::VertexId from = 0;              // north-west corner
  const pspc::VertexId to = 24 * 12 + 18;     // mid-east
  const pspc::SpcResult spc = built.index.Query(from, to);
  std::printf("from %u to %u: distance %u, %llu shortest routes\n", from, to,
              spc.distance, static_cast<unsigned long long>(spc.count));

  // Cross-check with the index-free bidirectional counter.
  const pspc::SpcResult online = pspc::BidirectionalSpc(city, from, to);
  std::printf("bidirectional BFS agrees: distance %u, count %llu\n",
              online.distance,
              static_cast<unsigned long long>(online.count));
  if (!(online == spc)) {
    std::printf("MISMATCH between index and online counter!\n");
    return 1;
  }

  // Hand the first few alternatives to the "navigation layer".
  const auto routes =
      pspc::EnumerateShortestPaths(city, built.index, from, to, 4);
  std::printf("\nfirst %zu route alternatives:\n", routes.size());
  for (size_t r = 0; r < routes.size(); ++r) {
    std::printf("  route %zu:", r + 1);
    for (size_t i = 0; i < routes[r].size(); ++i) {
      if (i % 12 == 0 && i > 0) std::printf("\n          ");
      std::printf(" %u", routes[r][i]);
    }
    std::printf("\n");
  }
  return 0;
}
