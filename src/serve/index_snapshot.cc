#include "src/serve/index_snapshot.h"

#include "src/common/logging.h"
#include "src/dynamic/dynamic_dspc_index.h"
#include "src/dynamic/dynamic_spc_index.h"
#include "src/label/label_merge_simd.h"

namespace pspc {

std::unique_ptr<const IndexSnapshot> IndexSnapshot::Capture(
    DynamicSpcIndex& index) {
  auto snapshot = std::unique_ptr<IndexSnapshot>(new IndexSnapshot());
  snapshot->base_ = index.SharedBaseIndex();
  snapshot->packed_base_ = index.SharedPackedBase();
  snapshot->overlay_ = index.CaptureOverlay();
  snapshot->generation_ = index.Generation();
  snapshot->num_vertices_ = index.NumVertices();
  snapshot->num_edges_ = index.NumEdges();
  return snapshot;
}

std::unique_ptr<const IndexSnapshot> IndexSnapshot::Capture(
    DynamicDspcIndex& index) {
  auto snapshot = std::unique_ptr<IndexSnapshot>(new IndexSnapshot());
  snapshot->directed_base_ = index.SharedBaseIndex();
  snapshot->overlay_ = index.CaptureInOverlay();
  snapshot->out_overlay_ = index.CaptureOutOverlay();
  snapshot->generation_ = index.Generation();
  snapshot->num_vertices_ = index.NumVertices();
  snapshot->num_edges_ = index.NumEdges();
  return snapshot;
}

SpcResult IndexSnapshot::Query(VertexId s, VertexId t) const {
  PSPC_CHECK_MSG(s < num_vertices_ && t < num_vertices_,
                 "query (" << s << "," << t << ") out of range");
  if (s == t) return {0, 1};
  // Vectorized galloping merge — bit-identical to MergeLabelCounts
  // (differential suite: tests/label_merge_simd_test.cc).
  if (IsDirected()) return MergeLabelCountsFast(OutLabels(s), InLabels(t));
  return MergeLabelSources(Source(s), Source(t));
}

SpcResult IndexSnapshot::QueryMeasured(VertexId s, VertexId t,
                                       size_t* merged_bytes) const {
  PSPC_CHECK_MSG(s < num_vertices_ && t < num_vertices_,
                 "query (" << s << "," << t << ") out of range");
  if (s == t) {
    *merged_bytes = 0;
    return {0, 1};
  }
  if (IsDirected()) {
    const std::span<const LabelEntry> ls = OutLabels(s);
    const std::span<const LabelEntry> lt = InLabels(t);
    *merged_bytes = ls.size_bytes() + lt.size_bytes();
    return MergeLabelCountsFast(ls, lt);
  }
  const LabelSource a = Source(s);
  const LabelSource b = Source(t);
  *merged_bytes = a.SizeBytes() + b.SizeBytes();
  return MergeLabelSources(a, b);
}

}  // namespace pspc
