#include "src/core/builder_facade.h"

#include "src/common/timer.h"
#include "src/core/hp_spc_builder.h"
#include "src/core/pspc_builder.h"
#include "src/order/degree_order.h"
#include "src/order/hybrid_order.h"
#include "src/order/significant_path_order.h"
#include "src/order/tree_decomposition.h"

namespace pspc {

VertexOrder ComputeOrder(const Graph& graph, OrderingScheme scheme,
                         VertexId hybrid_delta) {
  switch (scheme) {
    case OrderingScheme::kDegree:
      return DegreeOrder(graph);
    case OrderingScheme::kSignificantPath:
      return SignificantPathOrder(graph);
    case OrderingScheme::kRoadNetwork:
      return RoadNetworkOrder(graph);
    case OrderingScheme::kHybrid:
      return HybridOrder(graph, hybrid_delta);
    case OrderingScheme::kIdentity:
      return IdentityOrder(graph.NumVertices());
  }
  return IdentityOrder(graph.NumVertices());
}

BuildResult BuildIndexWithOrder(const Graph& graph, const VertexOrder& order,
                                const BuildOptions& options) {
  BuildResult result;
  if (options.algorithm == Algorithm::kHpSpc) {
    HpSpcBuildResult hp = BuildHpSpcIndex(graph, order);
    result.index = std::move(hp.index);
    result.stats = std::move(hp.stats);
  } else {
    PspcOptions popts;
    popts.paradigm = options.paradigm;
    popts.schedule = options.schedule;
    popts.num_threads = options.num_threads;
    popts.num_landmarks = options.num_landmarks;
    popts.use_landmark_filter = options.use_landmark_filter;
    PspcBuildResult ps = BuildPspcIndex(graph, order, popts);
    result.index = std::move(ps.index);
    result.stats = std::move(ps.stats);
  }
  return result;
}

BuildResult BuildIndex(const Graph& graph, const BuildOptions& options) {
  WallTimer order_timer;
  const VertexOrder order =
      ComputeOrder(graph, options.ordering, options.hybrid_delta);
  const double ordering_seconds = order_timer.ElapsedSeconds();

  BuildResult result = BuildIndexWithOrder(graph, order, options);
  result.stats.ordering_seconds = ordering_seconds;
  return result;
}

}  // namespace pspc
