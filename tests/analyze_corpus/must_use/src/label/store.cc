#include "src/label/store.h"

Status Store::Flush() {
  int pending = 0;
  Write(pending);  // dropped Status from a bare member call
  return Validate(pending);
}

Status Store::Write(int v) {
  return Validate(v);
}

int Store::Size() {
  Store other;
  other.Flush();  // dropped Status from a receiver call
  Status kept = other.Write(1);
  return kept.ok() ? 1 : 0;
}

Status Validate(int v) {
  return Status();
}
