#ifndef PSPC_SRC_OBS_TRACE_H_
#define PSPC_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/common/types.h"

/// Sampled per-request tracing for the serving path.
///
/// A `TraceSampler` deterministically picks 1-in-N submissions (the
/// decision sequence is a pure function of N and the seed, so test
/// runs replay exactly). A sampled query carries a `QueryTrace`
/// through the pipeline, collecting the four timestamps that bound its
/// life — enqueue, dequeue (micro-batch pickup), merge done (label
/// merge / cache consult finished), reply (promise fulfilled) — via
/// `TraceSpan` RAII stamps. Completed traces land in a
/// `TraceCollector`, which keeps a bounded ring of the slowest-class
/// offenders: every trace whose end-to-end latency exceeds the
/// configured threshold is retained (up to capacity, newest win) and
/// dumpable as JSON for slow-query forensics.
///
/// Cost model: untraced queries pay one atomic fetch_add in the
/// sampler and nothing else; traced queries pay a handful of clock
/// reads plus one mutex acquisition at completion. With sampling
/// 1-in-N the aggregate overhead vanishes into the metrics noise.
namespace pspc {
namespace obs {

/// Monotonic nanosecond clock shared by every trace stamp.
int64_t TraceNowNs();

/// Deterministic 1-in-N sampler: the k-th `Sample()` call (counting
/// from 0, across all threads) returns true iff `k % n == seed % n`.
/// `n == 0` disables sampling, `n == 1` samples everything.
class TraceSampler {
 public:
  TraceSampler(uint64_t every_n, uint64_t seed)
      : every_n_(every_n), offset_(every_n == 0 ? 0 : seed % every_n) {}

  bool Enabled() const { return every_n_ != 0; }

  bool Sample() {
    if (every_n_ == 0) return false;
    // relaxed: the decision only needs a unique tick, not ordering.
    const uint64_t tick = ticks_.fetch_add(1, std::memory_order_relaxed);
    return tick % every_n_ == offset_;
  }

  uint64_t Ticks() const {
    return ticks_.load(std::memory_order_relaxed);  // relaxed: diagnostic
  }

 private:
  const uint64_t every_n_;
  const uint64_t offset_;
  std::atomic<uint64_t> ticks_{0};
};

/// The life of one traced query. Timestamps are TraceNowNs() values;
/// a zero timestamp means the stage was never reached.
struct QueryTrace {
  uint64_t trace_id = 0;
  VertexId s = 0;
  VertexId t = 0;
  uint64_t generation = 0;  ///< snapshot generation that answered it
  bool cache_hit = false;
  int64_t enqueue_ns = 0;
  int64_t dequeue_ns = 0;
  int64_t merge_done_ns = 0;
  int64_t reply_ns = 0;

  double QueueWaitMicros() const {
    return static_cast<double>(dequeue_ns - enqueue_ns) * 1e-3;
  }
  double MergeMicros() const {
    return static_cast<double>(merge_done_ns - dequeue_ns) * 1e-3;
  }
  double TotalMicros() const {
    return static_cast<double>(reply_ns - enqueue_ns) * 1e-3;
  }

  /// One-object JSON rendering (stage timings in microseconds).
  std::string ToJson() const;
};

/// RAII stage stamp: writes TraceNowNs() into the given timestamp
/// field of `trace` on destruction. A null trace is a no-op, so
/// untraced requests can share the scoped code path.
class TraceSpan {
 public:
  TraceSpan(QueryTrace* trace, int64_t QueryTrace::* stamp)
      : trace_(trace), stamp_(stamp) {}
  ~TraceSpan() {
    if (trace_ != nullptr) trace_->*stamp_ = TraceNowNs();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  QueryTrace* trace_;
  int64_t QueryTrace::* stamp_;
};

/// Bounded sink for completed traces. Thread-safe; completion-path
/// only (the hot path never touches it for untraced queries).
class TraceCollector {
 public:
  /// Keeps up to `capacity` slow traces (end-to-end latency above
  /// `slow_threshold_us`); older slow traces fall off the front.
  TraceCollector(size_t capacity, double slow_threshold_us)
      : capacity_(capacity == 0 ? 1 : capacity),
        slow_threshold_us_(slow_threshold_us) {}

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Returns true iff the trace crossed the slow threshold (and was
  /// retained).
  bool Record(const QueryTrace& trace);

  // relaxed: monotonic tallies read by pollers.
  uint64_t TracesRecorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t SlowTraces() const {
    return slow_.load(std::memory_order_relaxed);  // relaxed: ditto
  }
  double SlowThresholdMicros() const { return slow_threshold_us_; }

  /// Point-in-time copy of the retained slow traces, oldest first.
  std::vector<QueryTrace> SlowTraceLog() const;

  /// JSON array of the retained slow traces.
  std::string SlowTracesToJson() const;

 private:
  const size_t capacity_;
  const double slow_threshold_us_;
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> slow_{0};
  mutable spc::Mutex mu_;
  std::deque<QueryTrace> slow_log_ GUARDED_BY(mu_);
};

/// The life of one update batch through the write path, batch-id
/// correlated: plan (validation + coalescing), repair (label surgery),
/// publish (snapshot swap), reclaim (retired-generation free). Stage
/// costs are microseconds; zero means the stage did not run (e.g. a
/// rejected batch never publishes).
struct UpdateTrace {
  uint64_t batch_id = 0;
  uint64_t submitted = 0;  ///< updates handed to ApplyBatch
  uint64_t applied = 0;    ///< net insertions + deletions after coalescing
  uint64_t generation = 0; ///< generation published (0 if none)
  bool ok = false;         ///< batch accepted (validation passed)
  int64_t start_ns = 0;    ///< TraceNowNs() at submission
  double plan_us = 0.0;
  double repair_us = 0.0;
  double publish_us = 0.0;
  double reclaim_us = 0.0;
  double total_us = 0.0;

  /// One-object JSON rendering (stage timings in microseconds).
  std::string ToJson() const;
};

/// Bounded log of recent update-batch traces, newest kept. The write
/// path is single-writer (the engine serializes ApplyUpdates), but the
/// log is read by scrape threads, so it locks — one acquisition per
/// batch is noise next to the repair itself.
class UpdateTraceLog {
 public:
  explicit UpdateTraceLog(size_t capacity = 64)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  UpdateTraceLog(const UpdateTraceLog&) = delete;
  UpdateTraceLog& operator=(const UpdateTraceLog&) = delete;

  void Record(const UpdateTrace& trace);

  uint64_t TracesRecorded() const {
    return recorded_.load(std::memory_order_relaxed);  // relaxed: tally
  }

  /// Point-in-time copy of the retained traces, oldest first.
  std::vector<UpdateTrace> Log() const;

  /// JSON array of the retained traces.
  std::string ToJson() const;

 private:
  const size_t capacity_;
  std::atomic<uint64_t> recorded_{0};
  mutable spc::Mutex mu_;
  std::deque<UpdateTrace> log_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace pspc

#endif  // PSPC_SRC_OBS_TRACE_H_
