#include "src/serve/epoch_manager.h"

#include "src/serve/snapshot_manager.h"

void EpochManager::Enter() {
  spc::MutexLock lock(overflow_mu_);
  snapshots_->NoteRelease();  // overflow_mu_ -> mu_: inverts the hierarchy.
}

void EpochManager::Attach(SnapshotManager* snapshots) {
  snapshots_ = snapshots;
}
