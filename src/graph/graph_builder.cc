#include "src/graph/graph_builder.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pspc {

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  PSPC_CHECK_MSG(u < n_ && v < n_,
                 "edge (" << u << "," << v << ") outside [0," << n_ << ")");
  if (u == v) return;  // self-loops contribute no shortest paths
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::Build() const {
  std::vector<std::pair<VertexId, VertexId>> sorted = edges_;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::vector<EdgeId> offsets(static_cast<size_t>(n_) + 1, 0);
  for (const auto& [u, v] : sorted) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> neighbors(sorted.size() * 2);
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : sorted) {
    neighbors[cursor[u]++] = v;
    neighbors[cursor[v]++] = u;
  }
  // Each adjacency list is already ascending: edges were sorted by
  // (min, max), so for a fixed vertex the opposite endpoints arrive in
  // nondecreasing order for the min side, but the max side interleaves;
  // sort each list to be safe and to keep the invariant explicit.
  for (VertexId v = 0; v < n_; ++v) {
    std::sort(neighbors.begin() + static_cast<ptrdiff_t>(offsets[v]),
              neighbors.begin() + static_cast<ptrdiff_t>(offsets[v + 1]));
  }
  return Graph(std::move(offsets), std::move(neighbors));
}

Graph MakeGraph(VertexId num_vertices,
                const std::vector<std::pair<VertexId, VertexId>>& edges) {
  GraphBuilder builder(num_vertices);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return builder.Build();
}

}  // namespace pspc
