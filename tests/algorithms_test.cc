#include <gtest/gtest.h>

#include "src/baseline/bfs_spc.h"
#include "src/baseline/brandes.h"
#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"

namespace pspc {
namespace {

// ------------------------------------------------------------- BFS --

TEST(BfsTest, PathDistances) {
  const Graph g = GeneratePath(5);
  const auto d = BfsDistances(g, 0);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(BfsTest, UnreachableIsInfinite) {
  const Graph g = MakeGraph(4, {{0, 1}, {2, 3}});
  const auto d = BfsDistances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kInfDistance);
  EXPECT_EQ(d[3], kInfDistance);
}

// ---------------------------------------------- Connected components --

TEST(ComponentsTest, CountsComponents) {
  const Graph g = MakeGraph(6, {{0, 1}, {1, 2}, {3, 4}});
  VertexId num = 0;
  const auto comp = ConnectedComponents(g, &num);
  EXPECT_EQ(num, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[3], comp[5]);
}

// ----------------------------------------------------------- k-core --

TEST(CoreTest, TreeIsOneCore) {
  const Graph g = GenerateTree(20, 2);
  const auto core = CoreNumbers(g);
  for (VertexId v = 0; v < 20; ++v) EXPECT_LE(core[v], 1u);
}

TEST(CoreTest, CliqueCoreNumbers) {
  const Graph g = GenerateComplete(5);
  const auto core = CoreNumbers(g);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(core[v], 4u);
}

TEST(CoreTest, LollipopSplitsCore) {
  // Triangle with a tail: triangle is 2-core, tail is 1-shell.
  const Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  const auto core = CoreNumbers(g);
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
  EXPECT_EQ(core[3], 1u);
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(KCoreVertices(g, 2).size(), 3u);
}

// --------------------------------------------------------- Diameter --

TEST(DiameterTest, ExactOnPath) {
  EXPECT_EQ(ExactDiameter(GeneratePath(10)), 9u);
}

TEST(DiameterTest, ExactOnCycle) {
  EXPECT_EQ(ExactDiameter(GenerateCycle(10)), 5u);
}

TEST(DiameterTest, EstimateLowerBoundsExact) {
  const Graph g = GenerateErdosRenyi(200, 500, 3);
  const Distance est = EstimateDiameter(g, 4, 1);
  EXPECT_LE(est, ExactDiameter(g));
  EXPECT_GT(est, 0u);
}

TEST(DiameterTest, DoubleSweepExactOnTrees) {
  const Graph g = GenerateTree(64, 2);
  EXPECT_EQ(EstimateDiameter(g, 2, 5), ExactDiameter(g));
}

// ---------------------------------------------------------- BFS SPC --

TEST(BfsSpcTest, CycleHasTwoWaysAround) {
  const Graph g = GenerateCycle(6);
  // Opposite vertices: two shortest paths of length 3.
  EXPECT_EQ(BfsSpcPair(g, 0, 3), (SpcResult{3, 2}));
  // Adjacent: one path.
  EXPECT_EQ(BfsSpcPair(g, 0, 1), (SpcResult{1, 1}));
}

TEST(BfsSpcTest, CompleteGraphPairs) {
  const Graph g = GenerateComplete(6);
  EXPECT_EQ(BfsSpcPair(g, 2, 4), (SpcResult{1, 1}));
}

TEST(BfsSpcTest, DiamondLadderExponentialCounts) {
  const Graph g = GenerateDiamondLadder(5, 4);  // 3 interior layers
  const VertexId t = g.NumVertices() - 1;
  EXPECT_EQ(BfsSpcPair(g, 0, t), (SpcResult{4, 64}));  // 4^3
}

TEST(BfsSpcTest, SelfPairIsZeroOne) {
  const Graph g = GeneratePath(3);
  EXPECT_EQ(BfsSpcPair(g, 1, 1), (SpcResult{0, 1}));
}

TEST(BfsSpcTest, DisconnectedPair) {
  const Graph g = MakeGraph(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(BfsSpcPair(g, 0, 3), (SpcResult{kInfSpcDistance, 0}));
}

TEST(BfsSpcTest, PaperFigure2Example) {
  // Example 1 corrected by Table II's own label arithmetic: common hubs
  // of L(v10) and L(v7) are v1 (1+2=3, count 1*2) and v7 (3+0=3,
  // count 2*1), so SPC(v10, v7) = (3, 4). (The prose misadds the v1
  // leg as 2+2.) The four paths: v10-v1-v4-v7, v10-v1-v5-v7,
  // v10-v2-v4-v7, v10-v9-v8-v7.
  const Graph g = PaperFigure2Graph();
  EXPECT_EQ(BfsSpcPair(g, 9, 6), (SpcResult{3, 4}));
}

// ---------------------------------------------------------- Brandes --

TEST(BrandesTest, PathCenterDominates) {
  const Graph g = GeneratePath(5);
  const auto bc = BrandesBetweenness(g);
  // Middle vertex lies on all 2x3 cross pairs... exact: pairs through
  // v2: (0,3),(0,4),(1,3),(1,4) = 4, each with a unique shortest path.
  EXPECT_DOUBLE_EQ(bc[2], 4.0);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[4], 0.0);
}

TEST(BrandesTest, StarCenterTakesAllPairs) {
  const Graph g = GenerateStar(5);
  const auto bc = BrandesBetweenness(g);
  EXPECT_DOUBLE_EQ(bc[0], 10.0);  // C(5,2) leaf pairs
  for (VertexId leaf = 1; leaf <= 5; ++leaf) EXPECT_DOUBLE_EQ(bc[leaf], 0.0);
}

TEST(BrandesTest, CycleIsUniform) {
  const auto bc = BrandesBetweenness(GenerateCycle(8));
  for (VertexId v = 1; v < 8; ++v) EXPECT_NEAR(bc[v], bc[0], 1e-9);
}

TEST(BrandesTest, FractionalDependencies) {
  // Square 0-1-2-3-0: opposite corners have two shortest paths, each
  // middle vertex carries half a pair.
  const Graph g = GenerateCycle(4);
  const auto bc = BrandesBetweenness(g);
  for (VertexId v = 0; v < 4; ++v) EXPECT_NEAR(bc[v], 0.5, 1e-9);
}

}  // namespace
}  // namespace pspc
