#ifndef PSPC_TOOLS_ANALYZE_MODEL_H_
#define PSPC_TOOLS_ANALYZE_MODEL_H_

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint_rules.h"

/// spc_analyze's semantic model and cross-file passes.
///
/// Where spc_lint (tools/lint_rules.h) checks token-level invariants
/// one line at a time, this header parses the whole tree into a
/// lightweight semantic model — classes, members, functions, the
/// GUARDED_BY / REQUIRES / EXCLUDES / ACQUIRE annotations from
/// src/common/thread_annotations.h, an approximate call graph, and the
/// #include graph — and runs four *cross-file* passes over it:
///
///   lock-order        derives the lock acquisition-order graph from
///                     nested spc::MutexLock scopes, REQUIRES edges,
///                     and (transitively) resolved calls; any cycle is
///                     a potential deadlock. `lock-hierarchy` checks
///                     observed edges against the declared order in
///                     tools/lock_hierarchy.txt, and `lock-unregistered`
///                     requires every src/ class-member spc::Mutex to
///                     be declared there.
///   pin-escape        an epoch pin (SnapshotRef, or any RAII
///                     capability whose constructor is ACQUIRE /
///                     SCOPED_CAPABILITY-annotated) must not outlive
///                     its acquiring scope: not stored in a class
///                     member or container, not captured by a lambda —
///                     unless the holder explicitly Release()s /
///                     Unlock()s it.
///   must-use          every call to a Status- / Result-returning
///                     function must consume the result (the static
///                     complement of [[nodiscard]] on the classes in
///                     src/common/status.h).
///   layering          the declared layer DAG in tools/layer_dag.txt
///                     (common -> graph/label/order -> core/digraph/
///                     reduce/baseline -> obs -> dynamic ->
///                     serve/analytics -> tools/bench/examples) fails
///                     on any back-edge #include.
///
/// The parser reuses spc_lint's comment/string-aware lexer (Scrub), is
/// dependency-free by design, and is *approximate*: it resolves calls
/// by receiver type where a local/member/parameter type is known and
/// drops what it cannot resolve, so it under-reports rather than
/// drowning real findings in noise. Pass semantics are pinned by the
/// golden corpus in tests/analyze_corpus/ (tests/analyze_corpus_test.cc).
namespace spcanalyze {

using spclint::ReadFile;
using spclint::ScrubbedSource;
using spclint::Violation;

// ---------------------------------------------------------------- tokens

struct Token {
  std::string text;
  size_t line = 0;  // 0-based; Violation reports line + 1
};

inline bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Tokenizes scrubbed code into identifiers/numbers and punctuation
/// (with `::` and `->` fused). Preprocessor lines (and their backslash
/// continuations, taken from the raw content) are dropped — include
/// directives are extracted separately from the string-preserving view.
inline std::vector<Token> Tokenize(const ScrubbedSource& src,
                                   const std::string& raw_content) {
  // Mark preprocessor lines using the raw text (continuations included).
  std::vector<std::string> raw_lines;
  {
    std::string line;
    for (const char c : raw_content) {
      if (c == '\n') {
        raw_lines.push_back(line);
        line.clear();
      } else {
        line += c;
      }
    }
    raw_lines.push_back(line);
  }
  std::vector<bool> is_preproc(src.code.size(), false);
  bool continued = false;
  for (size_t i = 0; i < src.code.size() && i < raw_lines.size(); ++i) {
    const std::string& raw = raw_lines[i];
    const size_t first = raw.find_first_not_of(" \t");
    const bool starts_hash = first != std::string::npos && raw[first] == '#';
    is_preproc[i] = continued || starts_hash;
    continued = is_preproc[i] && !raw.empty() && raw.back() == '\\';
  }

  std::vector<Token> tokens;
  for (size_t li = 0; li < src.code.size(); ++li) {
    if (is_preproc[li]) continue;
    const std::string& line = src.code[li];
    size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (IsIdentChar(c)) {
        size_t j = i;
        while (j < line.size() && IsIdentChar(line[j])) ++j;
        tokens.push_back({line.substr(i, j - i), li});
        i = j;
        continue;
      }
      if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        tokens.push_back({"::", li});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
        tokens.push_back({"->", li});
        i += 2;
        continue;
      }
      tokens.push_back({std::string(1, c), li});
      ++i;
    }
  }
  return tokens;
}

// ----------------------------------------------------------------- model

struct Member {
  std::string type;        // whitespace-joined type tokens
  std::string name;
  std::string guarded_by;  // raw GUARDED_BY argument ("" = none)
  bool is_mutex = false;   // spc::Mutex (not MutexLock)
  size_t line = 0;         // 0-based
};

struct FunctionModel {
  std::string cls;         // enclosing or qualifying class ("" = free)
  std::string name;        // unqualified
  std::string return_type; // leading type identifier ("Status", "Result", ...)
  std::vector<std::string> requires_args;
  std::vector<std::string> acquire_args;   // ACQUIRE(...) annotation
  std::vector<std::string> exclude_args;
  bool scoped_acquire = false;  // ctor of a SCOPED_CAPABILITY class
  size_t body_begin = 0, body_end = 0;  // token range [begin, end)
  size_t line = 0;                      // 0-based declaration line
  size_t file_index = 0;
  // Parameter name -> type identifier (for receiver resolution).
  std::map<std::string, std::string> param_types;
};

struct ClassModel {
  std::string name;
  bool scoped_capability = false;  // SCOPED_CAPABILITY-annotated
  std::vector<Member> members;
  size_t line = 0;
  size_t file_index = 0;
};

struct IncludeEdge {
  std::string target;  // repo-relative quoted include path
  size_t line = 0;     // 0-based
};

struct FileModel {
  std::string path;  // repo-relative, generic separators
  std::vector<Token> tokens;
  std::vector<IncludeEdge> includes;
  std::vector<ClassModel> classes;
  std::vector<FunctionModel> functions;
};

struct Model {
  std::vector<FileModel> files;
  // Global lookups (indices into files/classes/functions).
  std::map<std::string, const ClassModel*> classes_by_name;
  std::multimap<std::string, const FunctionModel*> functions_by_name;
  std::set<std::string> pin_types;  // SnapshotRef + scoped capabilities
};

// ---------------------------------------------------------------- parser

namespace detail {

inline bool IsAnnotationMacro(const std::string& t) {
  return t == "GUARDED_BY" || t == "PT_GUARDED_BY" || t == "REQUIRES" ||
         t == "REQUIRES_SHARED" || t == "ACQUIRE" || t == "RELEASE" ||
         t == "TRY_ACQUIRE" || t == "EXCLUDES" || t == "RETURN_CAPABILITY" ||
         t == "CAPABILITY" || t == "ASSERT_CAPABILITY" ||
         t == "PSPC_THREAD_ANNOTATION";
}

inline bool IsControlKeyword(const std::string& t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" ||
         t == "return" || t == "catch" || t == "sizeof" || t == "decltype" ||
         t == "alignas" || t == "alignof" || t == "noexcept" ||
         t == "static_assert" || t == "new" || t == "delete" ||
         t == "static_cast" || t == "const_cast" || t == "reinterpret_cast" ||
         t == "dynamic_cast" || t == "throw" || t == "do" || t == "else" ||
         t == "co_return" || t == "co_await";
}

/// Skips the group opened by the token at `i` (must be `(`, `{`, `[` or
/// `<`); returns the index one past the matching closer. For `<` this
/// is a heuristic (used only for template heads) that aborts on `;`.
inline size_t SkipGroup(const std::vector<Token>& toks, size_t i) {
  const std::string& open = toks[i].text;
  const std::string close = open == "(" ? ")"
                            : open == "{" ? "}"
                            : open == "[" ? "]"
                                          : ">";
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (open == "<" && t == ";") return i;  // not a template head after all
    if (t == open) {
      ++depth;
    } else if (t == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return toks.size();
}

/// Splits an annotation argument list `(a, b)` starting at the `(` into
/// raw per-argument strings (tokens joined without spaces except around
/// identifiers). Returns index one past `)`.
inline size_t ParseAnnotationArgs(const std::vector<Token>& toks, size_t i,
                                  std::vector<std::string>* out) {
  int depth = 0;
  std::string current;
  for (; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "(") {
      if (++depth == 1) continue;
    } else if (t == ")") {
      if (--depth == 0) {
        if (!current.empty()) out->push_back(current);
        return i + 1;
      }
    } else if (t == "," && depth == 1) {
      if (!current.empty()) out->push_back(current);
      current.clear();
      continue;
    }
    if (depth >= 1) current += t;
    }
  return toks.size();
}

}  // namespace detail

/// Parses one file's token stream into classes and functions. The
/// grammar is deliberately partial: namespaces and classes establish
/// scopes, functions capture their body token range and annotations,
/// class-scope declarations without parameter lists become members.
inline void ParseFile(FileModel* file, size_t file_index) {
  const std::vector<Token>& toks = file->tokens;

  struct Scope {
    enum Kind { kNamespace, kClass, kSkip } kind;
    std::string name;  // class name for kClass
    size_t class_index = 0;
  };
  std::vector<Scope> scopes;
  const auto enclosing_class = [&]() -> ClassModel* {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::kClass) return &file->classes[it->class_index];
      if (it->kind == Scope::kSkip) return nullptr;
    }
    return nullptr;
  };

  size_t i = 0;
  while (i < toks.size()) {
    const std::string& t = toks[i].text;

    if (t == "}") {
      if (!scopes.empty()) scopes.pop_back();
      ++i;
      continue;
    }
    if (t == "namespace") {
      // `namespace X {` or anonymous `namespace {`.
      size_t j = i + 1;
      while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") ++j;
      if (j < toks.size() && toks[j].text == "{") {
        scopes.push_back({Scope::kNamespace, "", 0});
      }
      i = j + 1;
      continue;
    }
    if (t == "template") {
      // Skip the parameter head; the declaration follows normally.
      if (i + 1 < toks.size() && toks[i + 1].text == "<") {
        i = detail::SkipGroup(toks, i + 1);
      } else {
        ++i;
      }
      continue;
    }
    if (t == "enum") {
      // Skip to `;` or over the enumerator block.
      size_t j = i + 1;
      while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") ++j;
      if (j < toks.size() && toks[j].text == "{") j = detail::SkipGroup(toks, j);
      // Trailing `;` (or variable name) consumed by normal scanning.
      i = j;
      continue;
    }
    if (t == "class" || t == "struct" || t == "union") {
      // Find the name; skip annotation macros / alignas groups. A `;`
      // before `{` is a forward declaration.
      size_t j = i + 1;
      std::string name;
      bool scoped_cap = false;
      while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") {
        const std::string& tj = toks[j].text;
        if (tj == "SCOPED_CAPABILITY") {
          scoped_cap = true;
          ++j;
        } else if (detail::IsAnnotationMacro(tj) || tj == "alignas") {
          ++j;
          if (j < toks.size() && toks[j].text == "(") {
            j = detail::SkipGroup(toks, j);
          }
        } else if (tj == ":") {
          break;  // base clause; name already seen
        } else {
          if (IsIdentChar(tj[0]) && !std::isdigit(static_cast<unsigned char>(
                                        tj[0]))) {
            if (tj != "final" && tj != "public" && tj != "private" &&
                tj != "protected") {
              name = tj;
            }
          }
          ++j;
        }
      }
      while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") ++j;
      if (j < toks.size() && toks[j].text == "{") {
        if (name.empty()) name = "<anonymous>";
        ClassModel cls;
        cls.name = name;
        cls.scoped_capability = scoped_cap;
        cls.line = toks[i].line;
        cls.file_index = file_index;
        file->classes.push_back(cls);
        scopes.push_back({Scope::kClass, name, file->classes.size() - 1});
      }
      i = j + 1;
      continue;
    }
    if (t == "public" || t == "private" || t == "protected") {
      i += (i + 1 < toks.size() && toks[i + 1].text == ":") ? 2 : 1;
      continue;
    }
    if (t == "using" || t == "typedef" || t == "friend" ||
        t == "static_assert" || t == "extern") {
      while (i < toks.size() && toks[i].text != ";") {
        if (toks[i].text == "{" || toks[i].text == "(") {
          i = detail::SkipGroup(toks, i);
        } else {
          ++i;
        }
      }
      ++i;
      continue;
    }
    if (t == ";") {
      ++i;
      continue;
    }

    // Generic declaration at namespace/class scope: scan until `;` or a
    // body `{`, collecting structure along the way.
    const size_t decl_begin = i;
    const size_t decl_line = toks[i].line;
    size_t paren_open = 0;     // index of the parameter-list `(`; 0 = none
    size_t paren_close = 0;    // index of its `)`
    std::string fn_name, fn_class;
    std::vector<std::string> requires_args, acquire_args, exclude_args;
    bool body_found = false;
    size_t j = i;
    while (j < toks.size()) {
      const std::string& tj = toks[j].text;
      if (tj == ";") break;
      if (detail::IsAnnotationMacro(tj)) {
        std::vector<std::string>* sink = nullptr;
        if (tj == "REQUIRES" || tj == "REQUIRES_SHARED") sink = &requires_args;
        if (tj == "ACQUIRE") sink = &acquire_args;
        if (tj == "EXCLUDES") sink = &exclude_args;
        ++j;
        if (j < toks.size() && toks[j].text == "(") {
          std::vector<std::string> args;
          j = detail::ParseAnnotationArgs(toks, j, &args);
          if (sink != nullptr) {
            sink->insert(sink->end(), args.begin(), args.end());
          }
        }
        continue;
      }
      if (tj == "(" ) {
        if (paren_open == 0 && j > decl_begin &&
            IsIdentChar(toks[j - 1].text[0]) &&
            !detail::IsControlKeyword(toks[j - 1].text)) {
          // Parameter list of a function named by the previous token.
          paren_open = j;
          fn_name = toks[j - 1].text;
          if (j >= 3 && toks[j - 2].text == "::" &&
              IsIdentChar(toks[j - 3].text[0])) {
            fn_class = toks[j - 3].text;
          }
          j = detail::SkipGroup(toks, j);
          paren_close = j - 1;
          continue;
        }
        j = detail::SkipGroup(toks, j);
        continue;
      }
      if (tj == "{") {
        if (paren_open != 0) {
          body_found = true;  // function body (or begins its init list)
          break;
        }
        // Brace initializer of a variable/member: skip and continue the
        // declaration (`std::atomic<uint64_t> epoch_{1};`).
        j = detail::SkipGroup(toks, j);
        continue;
      }
      if (tj == ":" && paren_open != 0) {
        // Constructor initializer list: `name(...)` / `name{...}`
        // entries, then the body `{`.
        ++j;
        while (j < toks.size()) {
          while (j < toks.size() && toks[j].text != "(" &&
                 toks[j].text != "{" && toks[j].text != ";") {
            ++j;
          }
          if (j >= toks.size() || toks[j].text == ";") break;
          const bool was_paren = toks[j].text == "(";
          const size_t group_begin = j;
          // A `{` directly after `)` or `}` of the previous entry (i.e.
          // not preceded by an identifier) is the body.
          if (!was_paren && group_begin > 0 &&
              !IsIdentChar(toks[group_begin - 1].text[0])) {
            break;
          }
          j = detail::SkipGroup(toks, j);
          if (j < toks.size() && toks[j].text == ",") continue;
          // Next token should be `{` (body) or another initializer.
          if (j < toks.size() && toks[j].text == "{") break;
        }
        if (j < toks.size() && toks[j].text == "{") {
          body_found = true;
        }
        break;
      }
      ++j;
    }

    ClassModel* cls = enclosing_class();

    if (paren_open != 0 && (body_found || (j < toks.size() &&
                                           toks[j].text == ";"))) {
      // Function (declaration or definition).
      FunctionModel fn;
      fn.name = fn_name;
      fn.cls = !fn_class.empty() ? fn_class : (cls != nullptr ? cls->name : "");
      fn.line = decl_line;
      fn.file_index = file_index;
      fn.requires_args = requires_args;
      fn.acquire_args = acquire_args;
      fn.exclude_args = exclude_args;
      // Return type: first identifier token of the declaration that is
      // not a qualifier/keyword (void, Status, Result, ...).
      for (size_t k = decl_begin; k < paren_open - 1; ++k) {
        const std::string& tk = toks[k].text;
        if (!IsIdentChar(tk[0])) continue;
        if (tk == "const" || tk == "constexpr" || tk == "inline" ||
            tk == "static" || tk == "virtual" || tk == "explicit" ||
            tk == "mutable" || tk == "typename" || tk == "std" ||
            tk == "pspc" || tk == "spc") {
          continue;
        }
        fn.return_type = tk;
        break;
      }
      // Ctor of a scoped-capability class (or ACQUIRE-annotated ctor):
      // acquiring RAII type.
      if (cls != nullptr && fn.name == cls->name &&
          (cls->scoped_capability || !acquire_args.empty())) {
        fn.scoped_acquire = true;
      }
      // Parameters: `Type name` pairs split on top-level commas.
      {
        int depth = 0;
        std::vector<std::string> seg;
        const auto flush_param = [&] {
          // Last identifier = name; last type-ish identifier before it
          // = type.
          if (seg.size() < 2) {
            seg.clear();
            return;
          }
          const std::string name = seg.back();
          std::string type;
          for (size_t k = 0; k + 1 < seg.size(); ++k) {
            const std::string& s = seg[k];
            if (s == "const" || s == "std" || s == "spc" || s == "pspc") {
              continue;
            }
            type = s;
          }
          if (!type.empty() && IsIdentChar(name[0]) &&
              !std::isdigit(static_cast<unsigned char>(name[0]))) {
            fn.param_types[name] = type;
          }
          seg.clear();
        };
        for (size_t k = paren_open + 1; k < paren_close; ++k) {
          const std::string& tk = toks[k].text;
          if (tk == "(" || tk == "<" || tk == "[" || tk == "{") ++depth;
          if (tk == ")" || tk == ">" || tk == "]" || tk == "}") --depth;
          if (tk == "," && depth == 0) {
            flush_param();
            continue;
          }
          if (depth == 0 && IsIdentChar(tk[0])) seg.push_back(tk);
        }
        flush_param();
      }
      if (body_found) {
        // j is at the body `{`.
        fn.body_begin = j + 1;
        const size_t after = detail::SkipGroup(toks, j);
        fn.body_end = after > 0 ? after - 1 : after;  // exclude the `}`
        file->functions.push_back(fn);
        i = after;
      } else {
        file->functions.push_back(fn);
        i = j + 1;  // past `;`
      }
      continue;
    }

    if (cls != nullptr && paren_open == 0 && j < toks.size() &&
        toks[j].text == ";") {
      // Member declaration(s). Name = identifier before GUARDED_BY if
      // annotated, else the last identifier before `=`/`;`.
      Member m;
      m.line = decl_line;
      std::vector<std::string> idents;
      size_t name_k = 0;
      int tdepth = 0;
      bool in_template_args = false;
      std::string tmpl_args;
      for (size_t k = decl_begin; k < j; ++k) {
        const std::string& tk = toks[k].text;
        if (tk == "GUARDED_BY" || tk == "PT_GUARDED_BY") {
          std::vector<std::string> args;
          const size_t after = detail::ParseAnnotationArgs(toks, k + 1, &args);
          if (!args.empty()) m.guarded_by = args[0];
          if (name_k == 0 && k > decl_begin) name_k = k - 1;
          k = after - 1;
          continue;
        }
        if (tk == "=") break;
        if (tk == "<") {
          ++tdepth;
          in_template_args = true;
          continue;
        }
        if (tk == ">") {
          --tdepth;
          continue;
        }
        if (IsIdentChar(tk[0])) {
          idents.push_back(tk);
          if (in_template_args && tdepth > 0) tmpl_args += tk + " ";
          if (name_k == 0) m.name = tk;  // provisional: last ident wins
        }
      }
      if (name_k != 0) {
        m.name = toks[name_k].text;
      } else if (!idents.empty()) {
        m.name = idents.back();
      }
      // Type = all identifiers except the final name.
      std::string type;
      for (const std::string& id : idents) {
        if (&id == &idents.back() && id == m.name) break;
        if (!type.empty()) type += " ";
        type += id;
      }
      m.type = type;
      const bool mentions_mutex =
          type.find("Mutex") != std::string::npos &&
          type.find("MutexLock") == std::string::npos;
      m.is_mutex = mentions_mutex;
      // `Type& operator=(...) = delete;` is a function, not a member.
      const bool is_operator_decl =
          std::find(idents.begin(), idents.end(), "operator") != idents.end() ||
          m.name == "operator";
      if (!m.name.empty() && !m.type.empty() && !is_operator_decl &&
          !std::isdigit(static_cast<unsigned char>(m.name[0]))) {
        cls->members.push_back(m);
      }
      i = j + 1;
      continue;
    }

    // Unrecognized declaration (global variable, macro call, ...): skip
    // past its terminator.
    if (j < toks.size() && toks[j].text == "{") {
      i = detail::SkipGroup(toks, j);
    } else {
      i = j + 1;
    }
  }
}

/// Extracts quoted includes from the string-preserving scrub view.
inline std::vector<IncludeEdge> ParseIncludes(const ScrubbedSource& src) {
  std::vector<IncludeEdge> out;
  for (size_t i = 0; i < src.code_with_strings.size(); ++i) {
    const std::string& line = src.code_with_strings[i];
    const size_t hash = line.find_first_not_of(" \t");
    if (hash == std::string::npos || line[hash] != '#') continue;
    if (line.find("include", hash) == std::string::npos) continue;
    const std::vector<std::string> literals = spclint::StringLiterals(line);
    if (!literals.empty()) out.push_back({literals[0], i});
  }
  return out;
}

/// Builds the whole-tree model over the given repo-relative files.
inline Model BuildModel(
    const std::vector<std::pair<std::string, std::string>>& path_contents) {
  Model model;
  model.files.reserve(path_contents.size());
  for (size_t fi = 0; fi < path_contents.size(); ++fi) {
    const auto& [path, content] = path_contents[fi];
    FileModel file;
    file.path = path;
    const ScrubbedSource src = spclint::Scrub(content);
    file.tokens = Tokenize(src, content);
    file.includes = ParseIncludes(src);
    ParseFile(&file, fi);
    model.files.push_back(std::move(file));
  }
  // Annotations live on first declarations (clang TSA convention);
  // inherit them onto out-of-line definitions so body analysis sees
  // REQUIRES/ACQUIRE contracts declared in headers.
  for (FileModel& file : model.files) {
    for (FunctionModel& fn : file.functions) {
      if (fn.body_end <= fn.body_begin) continue;  // not a definition
      if (!fn.requires_args.empty() || !fn.acquire_args.empty() ||
          !fn.exclude_args.empty()) {
        continue;
      }
      for (const FileModel& other : model.files) {
        for (const FunctionModel& decl : other.functions) {
          if (decl.body_end > decl.body_begin) continue;
          if (decl.cls != fn.cls || decl.name != fn.name) continue;
          fn.requires_args = decl.requires_args;
          fn.acquire_args = decl.acquire_args;
          fn.exclude_args = decl.exclude_args;
        }
      }
    }
  }
  model.pin_types.insert("SnapshotRef");
  for (const FileModel& file : model.files) {
    for (const ClassModel& cls : file.classes) {
      if (model.classes_by_name.count(cls.name) == 0) {
        model.classes_by_name[cls.name] = &cls;
      }
      if (cls.scoped_capability) model.pin_types.insert(cls.name);
    }
    for (const FunctionModel& fn : file.functions) {
      model.functions_by_name.emplace(fn.name, &fn);
      if (fn.scoped_acquire && !fn.cls.empty()) {
        model.pin_types.insert(fn.cls);
      }
    }
  }
  return model;
}

}  // namespace spcanalyze

#endif  // PSPC_TOOLS_ANALYZE_MODEL_H_
