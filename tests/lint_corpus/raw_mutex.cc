// Corpus: raw-mutex — std::mutex and std::lock_guard outside the
// annotated src/common/mutex.h wrapper.
#include <mutex>

struct Counters {
  void Bump() {
    std::lock_guard<std::mutex> lock(mu);
    ++value;
  }
  std::mutex mu;
  long value = 0;
};
