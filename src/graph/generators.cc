#include "src/graph/generators.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/graph/graph_builder.h"

namespace pspc {

Graph GenerateErdosRenyi(VertexId num_vertices, EdgeId num_edges,
                         uint64_t seed) {
  PSPC_CHECK(num_vertices >= 2 || num_edges == 0);
  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  // Sample with replacement and over-draw; Build() deduplicates. For the
  // sparse regimes used here the loss to duplicates is tiny, so iterate
  // until the deduplicated target is met.
  EdgeId added = 0;
  const EdgeId max_possible =
      static_cast<EdgeId>(num_vertices) * (num_vertices - 1) / 2;
  const EdgeId target = std::min(num_edges, max_possible);
  std::vector<std::vector<VertexId>> adjacency(num_vertices);
  auto has_edge = [&adjacency](VertexId u, VertexId v) {
    const auto& a = adjacency[u];
    return std::find(a.begin(), a.end(), v) != a.end();
  };
  while (added < target) {
    const auto u = static_cast<VertexId>(rng.NextBounded(num_vertices));
    const auto v = static_cast<VertexId>(rng.NextBounded(num_vertices));
    if (u == v || has_edge(u, v)) continue;
    adjacency[u].push_back(v);
    adjacency[v].push_back(u);
    builder.AddEdge(u, v);
    ++added;
  }
  return builder.Build();
}

Graph GenerateBarabasiAlbert(VertexId num_vertices, VertexId edges_per_vertex,
                             uint64_t seed) {
  PSPC_CHECK(edges_per_vertex >= 1);
  PSPC_CHECK(num_vertices > edges_per_vertex);
  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  // `endpoints` holds every edge endpoint ever created; sampling a
  // uniform element of it is sampling proportional to degree.
  std::vector<VertexId> endpoints;
  endpoints.reserve(static_cast<size_t>(num_vertices) * edges_per_vertex * 2);

  // Seed clique over the first edges_per_vertex + 1 vertices.
  const VertexId seed_size = edges_per_vertex + 1;
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      builder.AddEdge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::vector<VertexId> picks;
  for (VertexId v = seed_size; v < num_vertices; ++v) {
    picks.clear();
    while (picks.size() < edges_per_vertex) {
      const VertexId t = endpoints[rng.NextBounded(endpoints.size())];
      if (t != v &&
          std::find(picks.begin(), picks.end(), t) == picks.end()) {
        picks.push_back(t);
      }
    }
    for (VertexId t : picks) {
      builder.AddEdge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return builder.Build();
}

Graph GenerateClusteredBa(VertexId num_vertices, VertexId edges_per_vertex,
                          double closure_prob, uint64_t seed) {
  Graph base = GenerateBarabasiAlbert(num_vertices, edges_per_vertex, seed);
  Rng rng(seed ^ 0xC105E'D0ull);
  GraphBuilder builder(num_vertices);
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (VertexId v : base.Neighbors(u)) {
      if (u < v) builder.AddEdge(u, v);
    }
  }
  // Close wedges u - v - w (v the center) with probability closure_prob.
  for (VertexId v = 0; v < num_vertices; ++v) {
    const auto nbrs = base.Neighbors(v);
    for (size_t i = 0; i + 1 < nbrs.size(); ++i) {
      if (rng.NextBool(closure_prob)) {
        builder.AddEdge(nbrs[i], nbrs[i + 1]);
      }
    }
  }
  return builder.Build();
}

Graph GenerateWattsStrogatz(VertexId num_vertices, VertexId k,
                            double rewire_prob, uint64_t seed) {
  PSPC_CHECK(num_vertices > 2 * k);
  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (VertexId j = 1; j <= k; ++j) {
      VertexId v = (u + j) % num_vertices;
      if (rng.NextBool(rewire_prob)) {
        // Rewire the far endpoint to a uniform non-self target.
        VertexId w = u;
        while (w == u) w = static_cast<VertexId>(rng.NextBounded(num_vertices));
        v = w;
      }
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

Graph GenerateRmat(int scale, EdgeId num_edges, double a, double b, double c,
                   uint64_t seed) {
  PSPC_CHECK(scale >= 1 && scale < 31);
  PSPC_CHECK(a + b + c <= 1.0 + 1e-9);
  Rng rng(seed);
  const auto n = static_cast<VertexId>(VertexId{1} << scale);
  GraphBuilder builder(n);
  for (EdgeId e = 0; e < num_edges; ++e) {
    VertexId u = 0, v = 0;
    for (int level = 0; level < scale; ++level) {
      const double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    builder.AddEdge(u, v);  // self-loops dropped by the builder
  }
  return builder.Build();
}

Graph GenerateRoadGrid(VertexId rows, VertexId cols, double keep_prob,
                       double diagonal_prob, uint64_t seed) {
  PSPC_CHECK(rows >= 1 && cols >= 1);
  Rng rng(seed);
  const VertexId n = rows * cols;
  GraphBuilder builder(n);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols && rng.NextBool(keep_prob)) {
        builder.AddEdge(id(r, c), id(r, c + 1));
      }
      if (r + 1 < rows && rng.NextBool(keep_prob)) {
        builder.AddEdge(id(r, c), id(r + 1, c));
      }
      if (r + 1 < rows && c + 1 < cols && rng.NextBool(diagonal_prob)) {
        builder.AddEdge(id(r, c), id(r + 1, c + 1));
      }
    }
  }
  return builder.Build();
}

Graph GeneratePath(VertexId num_vertices) {
  GraphBuilder builder(num_vertices);
  for (VertexId v = 0; v + 1 < num_vertices; ++v) builder.AddEdge(v, v + 1);
  return builder.Build();
}

Graph GenerateCycle(VertexId num_vertices) {
  PSPC_CHECK(num_vertices >= 3);
  GraphBuilder builder(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    builder.AddEdge(v, (v + 1) % num_vertices);
  }
  return builder.Build();
}

Graph GenerateComplete(VertexId num_vertices) {
  GraphBuilder builder(num_vertices);
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (VertexId v = u + 1; v < num_vertices; ++v) builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph GenerateStar(VertexId num_leaves) {
  GraphBuilder builder(num_leaves + 1);
  for (VertexId leaf = 1; leaf <= num_leaves; ++leaf) builder.AddEdge(0, leaf);
  return builder.Build();
}

Graph GenerateTree(VertexId num_vertices, VertexId branching) {
  PSPC_CHECK(branching >= 1);
  GraphBuilder builder(num_vertices);
  for (VertexId v = 1; v < num_vertices; ++v) {
    builder.AddEdge(v, (v - 1) / branching);
  }
  return builder.Build();
}

Graph GenerateDiamondLadder(VertexId levels, VertexId width) {
  PSPC_CHECK(levels >= 2 && width >= 1);
  // Layer 0 and layer levels-1 are single vertices s and t; interior
  // layers have `width` vertices; consecutive layers fully connected.
  const VertexId interior = levels >= 2 ? levels - 2 : 0;
  const VertexId n = 2 + interior * width;
  GraphBuilder builder(n);
  auto layer_vertex = [width](VertexId layer, VertexId slot) -> VertexId {
    return 1 + (layer - 1) * width + slot;  // interior layers start at id 1
  };
  if (interior == 0) {
    builder.AddEdge(0, 1);
    return builder.Build();
  }
  for (VertexId slot = 0; slot < width; ++slot) {
    builder.AddEdge(0, layer_vertex(1, slot));
    builder.AddEdge(n - 1, layer_vertex(interior, slot));
  }
  for (VertexId layer = 1; layer + 1 <= interior; ++layer) {
    for (VertexId a = 0; a < width; ++a) {
      for (VertexId b = 0; b < width; ++b) {
        builder.AddEdge(layer_vertex(layer, a), layer_vertex(layer + 1, b));
      }
    }
  }
  return builder.Build();
}

Graph PaperFigure2Graph() {
  // v_i in the paper is id i-1 here. Edge list reconstructed from the
  // Table II labels (see tests/hp_spc_test.cc for the verification).
  return MakeGraph(10, {
                           {0, 2},  // v1 - v3
                           {0, 3},  // v1 - v4
                           {0, 4},  // v1 - v5
                           {0, 9},  // v1 - v10
                           {6, 3},  // v7 - v4
                           {6, 4},  // v7 - v5
                           {6, 5},  // v7 - v6
                           {6, 7},  // v7 - v8
                           {2, 5},  // v3 - v6
                           {1, 3},  // v2 - v4
                           {1, 9},  // v2 - v10
                           {7, 8},  // v8 - v9
                           {8, 9},  // v9 - v10
                       });
}

}  // namespace pspc
