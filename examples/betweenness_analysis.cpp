// Betweenness analysis on a synthetic social network — the paper's
// application (1). The SPC index turns every pair dependency
// sigma(s,v) * sigma(v,t) / sigma(s,t) into three microsecond queries,
// so sampling-based centrality needs no graph traversals at all; the
// exact Brandes algorithm cross-checks the estimates.
//
//   ./betweenness_analysis

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/analytics/betweenness.h"
#include "src/analytics/group_betweenness.h"
#include "src/baseline/brandes.h"
#include "src/core/builder_facade.h"
#include "src/graph/generators.h"

int main() {
  // A small scale-free "social network".
  const pspc::Graph graph = pspc::GenerateBarabasiAlbert(400, 3, 2024);
  std::printf("social network: %u vertices, %llu edges\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  pspc::BuildOptions options;
  options.num_landmarks = 16;
  const pspc::BuildResult built = pspc::BuildIndex(graph, options);
  const pspc::SpcIndex& index = built.index;
  std::printf("index built: %zu entries (%.1f per vertex)\n\n",
              index.TotalEntries(), index.AverageLabelSize());

  // Exact betweenness via Brandes (the classic O(nm) baseline) and the
  // ranking the index-based estimator produces from 20k sampled pairs.
  const std::vector<double> exact = pspc::BrandesBetweenness(graph);
  std::vector<pspc::VertexId> by_exact(graph.NumVertices());
  for (pspc::VertexId v = 0; v < graph.NumVertices(); ++v) by_exact[v] = v;
  std::sort(by_exact.begin(), by_exact.end(),
            [&exact](pspc::VertexId a, pspc::VertexId b) {
              return exact[a] > exact[b];
            });

  std::printf("top-5 vertices by betweenness (Brandes exact vs index-"
              "sampled estimate):\n");
  std::printf("%8s %14s %14s\n", "vertex", "exact", "sampled");
  for (int i = 0; i < 5; ++i) {
    const pspc::VertexId v = by_exact[i];
    const double sampled = pspc::BetweennessSampled(index, v, 20000, 7);
    std::printf("%8u %14.1f %14.1f\n", v, exact[v], sampled);
  }

  // Group betweenness (Puzis et al.): how much of the network's
  // shortest-path traffic does the top-hub *set* cover? Note the
  // diminishing return of adding hubs — they cover overlapping paths.
  std::printf("\ngroup betweenness of growing hub sets (sampled):\n");
  std::vector<pspc::VertexId> group;
  for (int k = 1; k <= 4; ++k) {
    group.push_back(by_exact[k - 1]);
    const double gb =
        pspc::GroupBetweennessSampled(graph, index, group, 4000, 99);
    std::printf("  top-%d hubs: B(C) ~= %.0f\n", k, gb);
  }
  return 0;
}
