#ifndef PSPC_SRC_LABEL_INDEX_STATS_H_
#define PSPC_SRC_LABEL_INDEX_STATS_H_

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/label/spc_index.h"

/// Offline introspection of a built index: label-size and label-
/// distance distributions, hub concentration, and the canonical /
/// non-canonical split (paper Lemma 1). Used by EXPERIMENTS.md analysis
/// and the README's architecture claims; pure read-only.
namespace pspc {

struct IndexProfile {
  size_t total_entries = 0;
  double avg_label_size = 0.0;
  size_t max_label_size = 0;
  size_t min_label_size = 0;
  /// Raw in-memory footprint (16 B/entry) vs the packed-block mirror
  /// (`packed_label.h`: delta ranks + narrow lanes + skip headers) —
  /// the bytes a query streams per label entry under each form.
  size_t raw_bytes = 0;
  size_t packed_bytes = 0;
  double raw_bytes_per_entry = 0.0;
  double packed_bytes_per_entry = 0.0;
  /// histogram[d] = number of entries with label distance d.
  std::vector<size_t> entries_per_distance;
  /// Share of all entries whose hub is among the top-k ranked vertices,
  /// for k in {1, 10, 100} — the concentration that motivates landmark
  /// filtering (paper §III-H).
  double top1_hub_share = 0.0;
  double top10_hub_share = 0.0;
  double top100_hub_share = 0.0;

  std::string ToString() const;
};

/// Profiles `index` in one pass over its entries.
IndexProfile ProfileIndex(const SpcIndex& index);

}  // namespace pspc

#endif  // PSPC_SRC_LABEL_INDEX_STATS_H_
