#include "src/obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <utility>

#include "src/common/json_writer.h"
#include "src/obs/metric_names.h"
#include "src/obs/prom_validate.h"

namespace pspc {
namespace obs {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Relaxed CAS folds for the double-valued shard aggregates. Contention
// is a same-shard rarity, so the loops almost always succeed first
// try.
// relaxed throughout: shard aggregates are merged by polls that
// tolerate trailing values; no cross-field ordering is implied.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double observed = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(observed, observed + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  // relaxed: shard aggregate, merged by tolerance-to-staleness polls.
  double observed = target->load(std::memory_order_relaxed);
  while (value < observed &&
         !target->compare_exchange_weak(observed, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  // relaxed: shard aggregate, merged by tolerance-to-staleness polls.
  double observed = target->load(std::memory_order_relaxed);
  while (value > observed &&
         !target->compare_exchange_weak(observed, value,
                                        std::memory_order_relaxed)) {
  }
}

// Name mapping lives in prom_validate.h so the exporter and the
// validator can never disagree about it.
std::string PrometheusName(const std::string& name) {
  return PrometheusMetricName(name);
}

// HELP text derived from the dotted name and metric kind — enough for
// a human reading the scrape, and it keeps the HELP/TYPE pairing the
// text format expects without a second per-metric table to drift.
std::string HelpLine(const std::string& prom, const std::string& name,
                     const char* kind) {
  return "# HELP " + prom + " pspc " + kind + " " + name + "\n";
}

std::string FormatNumber(double value) { return benchjson::NumberToJson(value); }

}  // namespace

std::vector<double> ExponentialBoundaries(double start, double factor,
                                          size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::span<const double> DefaultLatencyBoundariesUs() {
  static const std::vector<double> bounds =
      ExponentialBoundaries(1.0, 2.0, 27);
  return bounds;
}

Histogram::Histogram(std::string name, std::span<const double> upper_bounds)
    : name_(std::move(name)),
      upper_bounds_(upper_bounds.begin(), upper_bounds.end()) {
  for (Shard& shard : shards_) {
    shard.buckets =
        std::make_unique<std::atomic<uint64_t>[]>(upper_bounds_.size() + 1);
  }
}

void Histogram::Record(double value) {
  Shard& shard = shards_[ThreadShardIndex() & (kShards - 1)];
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  const auto bucket =
      static_cast<size_t>(std::distance(upper_bounds_.begin(), it));
  // relaxed: sharded tally; Snapshot's merge is racy-by-design.
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&shard.sum, value);
  AtomicMin(&shard.min, value);
  AtomicMax(&shard.max, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.upper_bounds = upper_bounds_;
  snapshot.bucket_counts.assign(upper_bounds_.size() + 1, 0);
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (const Shard& shard : shards_) {
    // relaxed: merged view may trail in-flight records (class comment).
    for (size_t b = 0; b < snapshot.bucket_counts.size(); ++b) {
      snapshot.bucket_counts[b] +=
          shard.buckets[b].load(std::memory_order_relaxed);
    }
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
    min = std::min(min, shard.min.load(std::memory_order_relaxed));
    max = std::max(max, shard.max.load(std::memory_order_relaxed));
  }
  for (const uint64_t c : snapshot.bucket_counts) snapshot.count += c;
  snapshot.min = snapshot.count == 0 ? 0.0 : min;
  snapshot.max = snapshot.count == 0 ? 0.0 : max;
  return snapshot;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const global = new MetricsRegistry();
  return *global;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  spc::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  spc::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::span<const double> bounds) {
  spc::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = DefaultLatencyBoundariesUs();
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(std::string(name), bounds)))
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::ToJson() const {
  spc::MutexLock lock(mu_);
  benchjson::Object root;
  root.Add("schema_version", kMetricsSchemaVersion);

  benchjson::Object counters;
  for (const auto& [name, counter] : counters_) {
    counters.Add(name, counter->Value());
  }
  root.AddRaw("counters", counters.Serialize());

  benchjson::Object gauges;
  for (const auto& [name, gauge] : gauges_) {
    gauges.Add(name, gauge->Value());
  }
  root.AddRaw("gauges", gauges.Serialize());

  benchjson::Object histograms;
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snapshot = histogram->Snapshot();
    benchjson::Object entry;
    entry.Add("count", snapshot.count);
    entry.Add("sum", snapshot.sum);
    entry.Add("min", snapshot.min);
    entry.Add("max", snapshot.max);
    entry.Add("mean", snapshot.Mean());
    entry.Add("p50", snapshot.Percentile(0.5));
    entry.Add("p95", snapshot.Percentile(0.95));
    entry.Add("p99", snapshot.Percentile(0.99));
    benchjson::Array buckets;
    for (size_t b = 0; b < snapshot.bucket_counts.size(); ++b) {
      benchjson::Object bucket;
      if (b < snapshot.upper_bounds.size()) {
        bucket.Add("le", snapshot.upper_bounds[b]);
      } else {
        bucket.Add("le", "+Inf");
      }
      bucket.Add("count", snapshot.bucket_counts[b]);
      buckets.Add(bucket);
    }
    entry.AddRaw("buckets", buckets.Serialize());
    histograms.AddRaw(name, entry.Serialize());
  }
  root.AddRaw("histograms", histograms.Serialize());
  return root.Serialize();
}

std::string MetricsRegistry::ToPrometheusText() const {
  spc::MutexLock lock(mu_);
  // Append-only (no operator+ temporaries): the export walks every
  // metric, so each line would otherwise allocate a chain of
  // intermediate strings.
  std::string out;
  const auto line = [&out](std::string_view a, std::string_view b,
                           std::string_view c) {
    out += a;
    out += b;
    out += c;
    out += '\n';
  };
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PrometheusName(name);
    out += HelpLine(prom, name, "counter");
    line("# TYPE ", prom, " counter");
    line(prom, " ", std::to_string(counter->Value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PrometheusName(name);
    out += HelpLine(prom, name, "gauge");
    line("# TYPE ", prom, " gauge");
    line(prom, " ", std::to_string(gauge->Value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snapshot = histogram->Snapshot();
    const std::string prom = PrometheusName(name);
    out += HelpLine(prom, name, "histogram");
    line("# TYPE ", prom, " histogram");
    uint64_t cumulative = 0;
    for (size_t b = 0; b < snapshot.bucket_counts.size(); ++b) {
      cumulative += snapshot.bucket_counts[b];
      out += prom;
      out += "_bucket{le=\"";
      out += b < snapshot.upper_bounds.size()
                 ? FormatNumber(snapshot.upper_bounds[b])
                 : "+Inf";
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    line(prom, "_sum ", FormatNumber(snapshot.sum));
    line(prom, "_count ", std::to_string(snapshot.count));
  }
  return out;
}

ScopedLatencyTimer::ScopedLatencyTimer(Histogram* histogram)
    : histogram_(histogram), start_ns_(histogram == nullptr ? 0 : NowNs()) {}

ScopedLatencyTimer::~ScopedLatencyTimer() {
  if (histogram_ != nullptr) {
    histogram_->Record(static_cast<double>(NowNs() - start_ns_) * 1e-3);
  }
}

}  // namespace obs
}  // namespace pspc
