#ifndef PSPC_SRC_GRAPH_GRAPH_BUILDER_H_
#define PSPC_SRC_GRAPH_GRAPH_BUILDER_H_

#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/graph/graph.h"

/// Mutable edge accumulator that normalizes arbitrary edge input
/// (duplicates, self-loops, either endpoint order) into a simple
/// undirected CSR `Graph`.
namespace pspc {

class GraphBuilder {
 public:
  /// `num_vertices` fixes the vertex universe `[0, n)`; edges touching
  /// ids outside it are rejected by AddEdge (PSPC_CHECK).
  explicit GraphBuilder(VertexId num_vertices) : n_(num_vertices) {}

  /// Records the undirected edge `{u, v}`. Self-loops are dropped
  /// silently (the SPC problem is defined on simple graphs); duplicate
  /// edges are deduplicated at Build time.
  void AddEdge(VertexId u, VertexId v);

  /// Number of edge records added so far (before dedup).
  size_t NumEdgeRecords() const { return edges_.size(); }

  VertexId NumVertices() const { return n_; }

  /// Finalizes into a CSR graph: sorts, deduplicates, symmetrizes.
  /// The builder may be reused afterwards (it keeps its edges).
  Graph Build() const;

 private:
  VertexId n_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

/// Convenience: builds a graph from an explicit edge list.
Graph MakeGraph(VertexId num_vertices,
                const std::vector<std::pair<VertexId, VertexId>>& edges);

}  // namespace pspc

#endif  // PSPC_SRC_GRAPH_GRAPH_BUILDER_H_
