#pragma once
#include "src/common/mutex.h"

class EpochManager;

class SnapshotManager {
 public:
  void Publish();
  void NoteRelease();
  void Attach(EpochManager* epochs);

 private:
  spc::Mutex mu_;
  EpochManager* epochs_ = nullptr;
  int generation_ = 0;
};
