#ifndef PSPC_SRC_DIGRAPH_DIGRAPH_H_
#define PSPC_SRC_DIGRAPH_DIGRAPH_H_

#include <span>
#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/graph/graph.h"

/// Directed simple graph in dual-CSR form (both out- and in-adjacency,
/// each sorted ascending). The paper's §II-A formalizes hub labeling
/// for SPC on directed graphs — each vertex carries an in-label and an
/// out-label — and this module provides that variant; the evaluation
/// (and the optimized undirected path) lives in src/core/.
namespace pspc {

class DiGraph {
 public:
  DiGraph() : out_offsets_(1, 0), in_offsets_(1, 0) {}

  /// Constructs from prebuilt CSR arrays (use DiGraphBuilder).
  DiGraph(std::vector<EdgeId> out_offsets, std::vector<VertexId> out_nbrs,
          std::vector<EdgeId> in_offsets, std::vector<VertexId> in_nbrs);

  VertexId NumVertices() const {
    return static_cast<VertexId>(out_offsets_.size() - 1);
  }

  /// Number of directed edges.
  EdgeId NumEdges() const { return out_neighbors_.size(); }

  VertexId OutDegree(VertexId v) const {
    return static_cast<VertexId>(out_offsets_[v + 1] - out_offsets_[v]);
  }
  VertexId InDegree(VertexId v) const {
    return static_cast<VertexId>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Successors of `v` (targets of edges v -> x), ascending.
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_neighbors_.data() + out_offsets_[v],
            out_neighbors_.data() + out_offsets_[v + 1]};
  }

  /// Predecessors of `v` (sources of edges x -> v), ascending.
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_neighbors_.data() + in_offsets_[v],
            in_neighbors_.data() + in_offsets_[v + 1]};
  }

  bool HasEdge(VertexId u, VertexId v) const;

  friend bool operator==(const DiGraph&, const DiGraph&) = default;

 private:
  std::vector<EdgeId> out_offsets_;
  std::vector<VertexId> out_neighbors_;
  std::vector<EdgeId> in_offsets_;
  std::vector<VertexId> in_neighbors_;
};

/// Accumulates directed edges; deduplicates and drops self-loops.
class DiGraphBuilder {
 public:
  explicit DiGraphBuilder(VertexId num_vertices) : n_(num_vertices) {}

  /// Records the directed edge `u -> v`.
  void AddEdge(VertexId u, VertexId v);

  DiGraph Build() const;

 private:
  VertexId n_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

/// Convenience construction from an explicit directed edge list.
DiGraph MakeDiGraph(VertexId num_vertices,
                    const std::vector<std::pair<VertexId, VertexId>>& edges);

/// The symmetric closure of an undirected graph: each edge in both
/// directions. Directed SPC on it must agree with undirected SPC — a
/// cross-validation hook used by tests.
DiGraph FromUndirected(const Graph& graph);

/// G(n, m) uniform random directed graph, deterministic by seed.
DiGraph GenerateRandomDiGraph(VertexId num_vertices, EdgeId num_edges,
                              uint64_t seed);

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0.
DiGraph GenerateDiCycle(VertexId num_vertices);

}  // namespace pspc

#endif  // PSPC_SRC_DIGRAPH_DIGRAPH_H_
