#include "src/digraph/dbfs_spc.h"

#include <vector>

#include "src/common/logging.h"
#include "src/common/saturating.h"

namespace pspc {

SpcResult DiBfsSpcPair(const DiGraph& graph, VertexId s, VertexId t) {
  PSPC_CHECK(s < graph.NumVertices() && t < graph.NumVertices());
  if (s == t) return {0, 1};
  std::vector<Distance> dist(graph.NumVertices(), kInfDistance);
  std::vector<Count> count(graph.NumVertices(), 0);
  dist[s] = 0;
  count[s] = 1;
  std::vector<VertexId> frontier{s}, next;
  Distance d = 0;
  while (!frontier.empty() && dist[t] == kInfDistance) {
    ++d;
    next.clear();
    for (VertexId u : frontier) {
      for (VertexId v : graph.OutNeighbors(u)) {
        if (dist[v] == kInfDistance) {
          dist[v] = d;
          next.push_back(v);
        }
        if (dist[v] == d) count[v] = SatAdd(count[v], count[u]);
      }
    }
    frontier.swap(next);
  }
  if (dist[t] == kInfDistance) return {kInfSpcDistance, 0};
  return {dist[t], count[t]};
}

}  // namespace pspc
