// Quickstart: build an SPC index on the paper's Figure-2 graph and ask
// it questions. Demonstrates the three core steps — graph construction,
// index construction (PSPC, parallel), and querying — plus persistence.
//
//   ./quickstart

#include <cstdio>

#include "src/core/builder_facade.h"
#include "src/graph/generators.h"
#include "src/label/spc_index.h"

int main() {
  // 1. A graph. PaperFigure2Graph() is the worked example of the PSPC
  //    paper; any pspc::Graph built via pspc::GraphBuilder works.
  const pspc::Graph graph = pspc::PaperFigure2Graph();
  std::printf("graph: %u vertices, %llu edges\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  // 2. An index. BuildIndex picks the vertex order and runs the
  //    parallel PSPC construction (BuildOptions selects HP-SPC, the
  //    ordering scheme, thread count, landmarks, ...).
  pspc::BuildOptions options;
  options.algorithm = pspc::Algorithm::kPspc;
  options.ordering = pspc::OrderingScheme::kDegree;
  const pspc::BuildResult result = pspc::BuildIndex(graph, options);
  std::printf("index: %zu label entries, %.1f per vertex, built in %.3fs\n",
              result.index.TotalEntries(), result.index.AverageLabelSize(),
              result.stats.TotalSeconds());

  // 3. Queries: distance and the exact number of shortest paths.
  //    Vertex v_i of the paper is id i-1 here; this is the paper's
  //    Example 1, SPC(v10, v7).
  const pspc::SpcResult spc = result.index.Query(9, 6);
  std::printf("SPC(v10, v7): distance %u, %llu shortest paths\n",
              spc.distance, static_cast<unsigned long long>(spc.count));

  for (const auto& [s, t] : {std::pair<pspc::VertexId, pspc::VertexId>{0, 8},
                             {1, 7},
                             {4, 5}}) {
    const pspc::SpcResult r = result.index.Query(s, t);
    std::printf("SPC(v%u, v%u): distance %u, count %llu\n", s + 1, t + 1,
                r.distance, static_cast<unsigned long long>(r.count));
  }

  // 4. Persistence: the index round-trips through a binary file.
  const char* path = "/tmp/pspc_quickstart.idx";
  if (const pspc::Status st = result.index.Save(path); !st.ok()) {
    std::printf("save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const auto loaded = pspc::SpcIndex::Load(path);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("round-trip ok: reloaded index answers SPC(v10, v7) = "
              "(%u, %llu)\n",
              loaded.value().Query(9, 6).distance,
              static_cast<unsigned long long>(loaded.value().Query(9, 6).count));
  return 0;
}
