#pragma once
inline int Thing() { return 3; }
