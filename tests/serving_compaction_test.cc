// Concurrent-correctness stress for background overlay compaction,
// written to run clean under ThreadSanitizer (CI runs every serving_*
// test in the tsan lane): reader threads hammer the engine while the
// writer applies a randomized update stream AND the engine's own
// compaction thread packs/folds the overlay between captures. At every
// quiesce point served answers must be oracle-exact — compaction is a
// representation change, never a result change.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "src/baseline/bfs_spc.h"
#include "src/common/mutex.h"
#include "src/common/random.h"
#include "src/core/builder_facade.h"
#include "src/dynamic/dynamic_spc_index.h"
#include "src/dynamic/edge_update.h"
#include "src/graph/generators.h"
#include "src/label/query_engine.h"
#include "src/serve/serving_engine.h"

namespace pspc {
namespace {

constexpr int kReaders = 2;
constexpr int kRounds = 8;
constexpr size_t kUpdatesPerRound = 5;
constexpr size_t kReaderBatch = 8;
constexpr size_t kOracleChecks = 20;
constexpr VertexId kN = 40;

BuildOptions SmallBuild() {
  BuildOptions build;
  build.num_landmarks = 4;
  build.num_threads = 1;
  return build;
}

ServingOptions CompactingServingOptions() {
  ServingOptions serving;
  serving.num_workers = 2;
  serving.max_batch = 16;
  serving.enable_compaction = true;
  serving.compaction_interval_ms = 1;  // fire constantly under churn
  serving.compaction.chunk_budget_per_step = 8;
  serving.compaction.fold_staleness_ratio = 0.01;  // fold eagerly
  return serving;
}

TEST(ServingCompactionTest, ReadersExactWhileCompactionRuns) {
  DynamicOptions dynamic;
  dynamic.rebuild_threshold = 1e18;  // repair-only: compaction owns folds
  dynamic.rebuild_options = SmallBuild();
  dynamic.num_threads = 1;

  const Graph graph = GenerateErdosRenyi(kN, 85, 23);
  DynamicSpcIndex index(graph, SmallBuild(), dynamic);
  ServingEngine engine(&index, CompactingServingOptions());

  std::set<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < kN; ++u) {
    for (const VertexId v : graph.Neighbors(u)) {
      if (u < v) edges.insert({u, v});
    }
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(7000 + static_cast<uint64_t>(r));
      // relaxed: stop/progress flag only; thread join is the sync point.
      while (!stop.load(std::memory_order_relaxed)) {
        const QueryBatch batch = MakeRandomQueries(kN, kReaderBatch, rng.Next());
        const std::vector<SpcResult> results = engine.SubmitBatch(batch).get();
        // Mid-churn, mid-compaction answers are exact for *some* recent
        // generation; the structural invariants hold for all of them.
        for (size_t i = 0; i < batch.size(); ++i) {
          const auto [s, t] = batch[i];
          if (s == t) {
            EXPECT_EQ(results[i], (SpcResult{0, 1}));
          } else if (results[i].distance == kInfSpcDistance) {
            EXPECT_EQ(results[i].count, 0u);
          } else {
            EXPECT_GT(results[i].count, 0u);
          }
        }
      }
    });
  }

  Rng rng(90210);
  uint64_t oracle_mismatches = 0;
  for (int round = 0; round < kRounds; ++round) {
    EdgeUpdateBatch batch;
    for (size_t i = 0; i < kUpdatesPerRound; ++i) {
      const bool remove = !edges.empty() && rng.NextBool(0.5);
      if (remove) {
        auto it = edges.begin();
        std::advance(it, static_cast<long>(rng.NextBounded(edges.size())));
        batch.Delete(it->first, it->second);
        edges.erase(it);
      } else {
        VertexId u, v;
        do {
          u = static_cast<VertexId>(rng.NextBounded(kN));
          v = static_cast<VertexId>(rng.NextBounded(kN));
        } while (u == v || edges.contains(std::minmax(u, v)));
        batch.Insert(u, v);
        edges.insert(std::minmax(u, v));
      }
    }
    ASSERT_TRUE(engine.ApplyUpdates(batch).ok());

    // Quiesce: drain in-flight queries, then demand oracle-exact
    // answers for the now-current graph. The compaction thread keeps
    // running — by construction its packs and folds may only change
    // the representation, never an answer.
    engine.Drain();
    ASSERT_EQ(index.NumEdges(), edges.size());
    const Graph current = index.MaterializeGraph();
    const QueryBatch checks = MakeRandomQueries(kN, kOracleChecks, rng.Next());
    const std::vector<SpcResult> served = engine.SubmitBatch(checks).get();
    for (size_t i = 0; i < checks.size(); ++i) {
      const auto [s, t] = checks[i];
      if (served[i] != BfsSpcPair(current, s, t)) ++oracle_mismatches;
      EXPECT_EQ(served[i], BfsSpcPair(current, s, t))
          << "round " << round << " query (" << s << "," << t << ")";
    }
  }

  // relaxed: stop/progress flag only; thread join is the sync point.
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  // Force one deterministic step before stopping so the totals below
  // never depend on background-thread timing.
  engine.CompactOnce();
  engine.Stop();

  EXPECT_EQ(oracle_mismatches, 0u);
  const CompactionStats totals = engine.CompactionTotals();
  EXPECT_GT(totals.pack_steps + totals.folds, 0u);
}

TEST(ServingCompactionTest, CompactOnceIsDeterministicAndExact) {
  DynamicOptions dynamic;
  dynamic.rebuild_threshold = 1e18;
  dynamic.rebuild_options = SmallBuild();
  dynamic.num_threads = 1;

  const Graph graph = GenerateWattsStrogatz(kN, 3, 0.2, 5);
  DynamicSpcIndex index(graph, SmallBuild(), dynamic);
  ServingOptions serving = CompactingServingOptions();
  serving.compaction_interval_ms = 3600 * 1000;  // thread idles; we drive
  serving.compaction.chunk_budget_per_step = 1024;
  serving.compaction.fold_staleness_ratio = 0.0;  // every step folds
  ServingEngine engine(&index, serving);

  Rng rng(61);
  std::set<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < kN; ++u) {
    for (const VertexId v : graph.Neighbors(u)) {
      if (u < v) edges.insert({u, v});
    }
  }
  for (int round = 0; round < 4; ++round) {
    EdgeUpdateBatch batch;
    VertexId u, v;
    do {
      u = static_cast<VertexId>(rng.NextBounded(kN));
      v = static_cast<VertexId>(rng.NextBounded(kN));
    } while (u == v || edges.contains(std::minmax(u, v)));
    batch.Insert(u, v);
    edges.insert(std::minmax(u, v));
    ASSERT_TRUE(engine.ApplyUpdates(batch).ok());

    // The repaired overlay is non-empty, so a zero-threshold step must
    // fold (and therefore report true).
    EXPECT_TRUE(engine.CompactOnce());
    // Overlay folded away: a second immediate step has nothing to do.
    EXPECT_FALSE(engine.CompactOnce());

    engine.Drain();
    const Graph current = index.MaterializeGraph();
    const QueryBatch checks = MakeRandomQueries(kN, kOracleChecks, rng.Next());
    const std::vector<SpcResult> served = engine.SubmitBatch(checks).get();
    for (size_t i = 0; i < checks.size(); ++i) {
      const auto [s, t] = checks[i];
      ASSERT_EQ(served[i], BfsSpcPair(current, s, t))
          << "round " << round << " query (" << s << "," << t << ")";
    }
  }
  engine.Stop();
  const CompactionStats totals = engine.CompactionTotals();
  EXPECT_EQ(totals.folds, 4u);
  EXPECT_EQ(index.Overlay().OverlaidVertices(), 0u);
}

}  // namespace
}  // namespace pspc
