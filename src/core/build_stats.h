#ifndef PSPC_SRC_CORE_BUILD_STATS_H_
#define PSPC_SRC_CORE_BUILD_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/types.h"

/// Instrumentation collected during index construction. The phase split
/// (ordering / landmark labeling / label construction) reproduces the
/// paper's Fig. 13 breakdown; candidate/prune counters feed tests and
/// the ablation benches.
namespace pspc {

struct BuildStats {
  // Phase timings in seconds (paper Fig. 13: Order / LL / LC).
  double ordering_seconds = 0.0;
  double landmark_seconds = 0.0;
  double construction_seconds = 0.0;
  double TotalSeconds() const {
    return ordering_seconds + landmark_seconds + construction_seconds;
  }

  /// Distance iterations executed by PSPC (== diameter of the largest
  /// component + 1), or hubs processed by HP-SPC.
  size_t num_iterations = 0;

  /// Label entries committed per distance level (PSPC) — the shrinking
  /// tail of this vector is why late iterations are cheap.
  std::vector<size_t> entries_per_level;

  size_t total_entries = 0;

  // Candidate funnel (PSPC): generated -> pruned by rank (Lemma 3,
  // applied inline) is not observable; the counters below split the
  // query-side funnel.
  size_t candidates_after_merge = 0;  ///< distinct (vertex, hub) pairs
  size_t pruned_by_landmark = 0;      ///< cut by the landmark filter
  size_t pruned_by_query = 0;         ///< cut by the 2-hop label query
  size_t labels_inserted = 0;

  /// HP-SPC only: canonical vs non-canonical split (paper Lemma 1).
  size_t canonical_labels = 0;
  size_t non_canonical_labels = 0;

  /// Human-readable multi-line summary.
  std::string ToString() const;
};

}  // namespace pspc

#endif  // PSPC_SRC_CORE_BUILD_STATS_H_
