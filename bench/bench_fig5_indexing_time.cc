// Reproduces Fig. 5 (Exp 1): indexing time of HP-SPC, PSPC (1 thread)
// and PSPC+ (all threads) on every dataset. The paper's expected shape:
// PSPC edges out HP-SPC on most datasets single-threaded (~18% faster
// on average) and PSPC+ scales near-linearly, >= 12x at 20 threads.
// Ordering time is included in the measured time, as in the paper.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/common/timer.h"

namespace {

void IndexingTime(benchmark::State& state, const std::string& code,
                  const pspc::BuildOptions& options) {
  const pspc::Graph& g = pspc::bench::GetGraph(code);
  pspc::BuildIndex(g, options);  // untimed warmup: page-faults the arena
  for (auto _ : state) {
    pspc::WallTimer timer;
    const pspc::BuildResult result = pspc::BuildIndex(g, options);
    state.SetIterationTime(timer.ElapsedSeconds());
    state.counters["entries"] = static_cast<double>(result.stats.total_entries);
    state.counters["iterations"] =
        static_cast<double>(result.stats.num_iterations);
  }
}

int RegisterAll() {
  using pspc::bench::HpSpcOptions;
  using pspc::bench::PspcOptions1Thread;
  using pspc::bench::PspcOptionsAllThreads;
  struct Algo {
    const char* name;
    pspc::BuildOptions options;
  };
  const Algo algos[] = {
      {"HP-SPC", HpSpcOptions()},
      {"PSPC", PspcOptions1Thread()},
      {"PSPC+", PspcOptionsAllThreads()},
  };
  for (const auto& spec : pspc::AllDatasets()) {
    for (const Algo& algo : algos) {
      benchmark::RegisterBenchmark(
          ("fig5/indexing_time/" + spec.code + "/" + algo.name).c_str(),
          [code = spec.code, options = algo.options](benchmark::State& s) {
            IndexingTime(s, code, options);
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kSecond);
    }
  }
  return 0;
}

static const int kRegistered = RegisterAll();

}  // namespace
