#ifndef PSPC_SRC_CORE_HP_SPC_BUILDER_H_
#define PSPC_SRC_CORE_HP_SPC_BUILDER_H_

#include <span>

#include "src/core/build_stats.h"
#include "src/graph/graph.h"
#include "src/label/spc_index.h"
#include "src/order/vertex_order.h"

/// HP-SPC — the sequential state-of-the-art baseline (Zhang & Yu,
/// SIGMOD 2020; paper §III).
///
/// One pruned BFS per vertex, in rank order (highest rank first). The
/// BFS from hub `h` explores only vertices ranked below `h` — a path
/// through a higher-ranked vertex is covered by that vertex's earlier
/// BFS — and accumulates, per reached vertex `u`, the number of
/// *trough* walks from `h`. A reached vertex is pruned when the current
/// 2-hop index already certifies a strictly shorter distance
/// (`Query(h,u) < d`); at equality the label is still inserted (the
/// paper's *non-canonical* labels, Lemma 1) and expansion continues, so
/// counts of trough paths that detour around higher hubs are preserved.
///
/// The defining limitation reproduced here: iteration i+1's pruning
/// depends on the labels iteration i inserted (Lemma 1's order
/// dependency), so the hub loop cannot be parallelized — the motivation
/// for PSPC.
namespace pspc {

struct HpSpcBuildResult {
  SpcIndex index;
  BuildStats stats;
};

/// Builds the full ESPC index for `graph` under `order`.
///
/// `vertex_weights` (optional; empty = all 1) assigns each vertex a
/// multiplicity: a path's count is multiplied by the weights of its
/// *internal* vertices. This is the hook the neighborhood-equivalence
/// reduction (paper §IV-B) uses so that one representative vertex
/// counts the paths of its whole class.
HpSpcBuildResult BuildHpSpcIndex(const Graph& graph, const VertexOrder& order,
                                 std::span<const Count> vertex_weights = {});

}  // namespace pspc

#endif  // PSPC_SRC_CORE_HP_SPC_BUILDER_H_
