#include <gtest/gtest.h>

#include "src/core/pspc_builder.h"
#include "src/graph/generators.h"
#include "src/label/query_engine.h"
#include "src/order/degree_order.h"

namespace pspc {
namespace {

SpcIndex MakeIndex(const Graph& g) {
  PspcOptions o;
  o.num_landmarks = 4;
  return BuildPspcIndex(g, DegreeOrder(g), o).index;
}

TEST(QueryEngineTest, RandomWorkloadIsDeterministic) {
  const auto a = MakeRandomQueries(100, 50, 7);
  const auto b = MakeRandomQueries(100, 50, 7);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, MakeRandomQueries(100, 50, 8));
}

TEST(QueryEngineTest, WorkloadStaysInRange) {
  for (const auto& [s, t] : MakeRandomQueries(13, 500, 3)) {
    EXPECT_LT(s, 13u);
    EXPECT_LT(t, 13u);
  }
}

TEST(QueryEngineTest, SequentialBatchMatchesDirectQueries) {
  const Graph g = GenerateBarabasiAlbert(80, 3, 5);
  const SpcIndex index = MakeIndex(g);
  const QueryBatch batch = MakeRandomQueries(80, 200, 11);
  const auto results = RunQueries(index, batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(results[i], index.Query(batch[i].first, batch[i].second));
  }
}

TEST(QueryEngineTest, ParallelBatchMatchesSequential) {
  const Graph g = GenerateWattsStrogatz(120, 4, 0.1, 9);
  const SpcIndex index = MakeIndex(g);
  const QueryBatch batch = MakeRandomQueries(120, 1000, 13);
  const auto seq = RunQueries(index, batch);
  for (int threads : {1, 2, 4, 8}) {
    EXPECT_EQ(RunQueriesParallel(index, batch, threads), seq)
        << threads << " threads";
  }
}

TEST(QueryEngineTest, EmptyBatch) {
  const Graph g = GeneratePath(4);
  const SpcIndex index = MakeIndex(g);
  EXPECT_TRUE(RunQueries(index, {}).empty());
  EXPECT_TRUE(RunQueriesParallel(index, {}, 4).empty());
}

}  // namespace
}  // namespace pspc
