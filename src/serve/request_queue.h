#ifndef PSPC_SRC_SERVE_REQUEST_QUEUE_H_
#define PSPC_SRC_SERVE_REQUEST_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/common/types.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

/// The serving front-end's MPMC request plumbing: completion tickets
/// and a bounded queue workers drain in adaptive micro-batches.
///
/// The queue couples producers (front-end threads submitting queries)
/// to consumers (the worker pool) only — the write path never touches
/// it, so a blocked producer can slow other producers, never a repair,
/// and a repair never slows a worker.
namespace pspc {

/// Completion state shared by the requests of one submitted batch.
/// Workers write disjoint `results` slots; the worker that decrements
/// `remaining` to zero fulfills the promise (the acq_rel decrement
/// orders every slot write before the move).
struct BatchTicket {
  explicit BatchTicket(size_t n) : results(n), remaining(n) {}
  std::vector<SpcResult> results;
  std::atomic<size_t> remaining;
  std::promise<std::vector<SpcResult>> promise;
};

/// Completion state of a single-query submission.
struct SingleTicket {
  std::promise<SpcResult> promise;
};

/// One queued query. Exactly one of `batch` / `single` is set.
struct ServeRequest {
  VertexId s = 0;
  VertexId t = 0;
  uint32_t pos = 0;  // slot in batch->results
  /// Submission timestamp (obs::TraceNowNs) — the queue-wait histogram
  /// measures dequeue time against it for every query.
  int64_t enqueue_ns = 0;
  std::shared_ptr<BatchTicket> batch;
  std::shared_ptr<SingleTicket> single;
  /// Set on the sampled 1-in-N: the worker stamps the remaining stage
  /// timestamps and hands the completed trace to the collector.
  std::shared_ptr<obs::QueryTrace> trace;
};

/// Bounded MPMC queue with batch dequeue. Producers block while full
/// (back-pressure instead of unbounded memory); consumers block while
/// empty and wake on Close.
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueues one request; blocks while the queue is full. Returns
  /// false (dropping the request) once the queue is closed.
  bool Push(ServeRequest request) EXCLUDES(mu_) {
    spc::MutexLock lock(mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
    if (closed_) return false;
    items_.push_back(std::move(request));
    NoteDepthLocked();
    lock.Unlock();
    not_empty_.NotifyOne();
    return true;
  }

  /// Bulk enqueue: one lock acquisition for the whole batch (the
  /// submission path of SubmitBatch — per-request locking is measurable
  /// at serving rates). Blocks for space in chunks while the queue is
  /// full. Returns the number actually enqueued: `requests.size()`
  /// normally, less once the queue is closed mid-push.
  size_t PushAll(std::vector<ServeRequest>* requests) EXCLUDES(mu_) {
    size_t pushed = 0;
    bool open = true;
    while (open && pushed < requests->size()) {
      size_t added = 0;
      {
        spc::MutexLock lock(mu_);
        while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
        if (closed_) {
          open = false;
        } else {
          while (pushed < requests->size() && items_.size() < capacity_) {
            items_.push_back(std::move((*requests)[pushed]));
            ++pushed;
            ++added;
          }
          NoteDepthLocked();
        }
      }
      // Notify outside the lock (woken workers would otherwise block
      // right back on it); every worker, since a bulk push usually
      // carries work for all.
      if (added > 0) not_empty_.NotifyAll();
    }
    return pushed;
  }

  /// Appends up to an adaptive number of requests to `out`; blocks
  /// while the queue is empty. The take size splits the backlog evenly
  /// across `num_consumers` (so a shallow queue does not all land on
  /// one worker) and caps it at `max_batch` (so one worker's epoch pin
  /// never spans an unbounded run of queries). Returns the number
  /// taken; 0 means closed *and* drained.
  size_t PopBatch(std::vector<ServeRequest>* out, size_t max_batch,
                  size_t num_consumers) EXCLUDES(mu_) {
    if (max_batch == 0) max_batch = 1;
    if (num_consumers == 0) num_consumers = 1;
    spc::MutexLock lock(mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
    if (items_.empty()) return 0;
    const size_t fair =
        (items_.size() + num_consumers - 1) / num_consumers;
    const size_t take = std::min(items_.size(), std::min(max_batch, fair));
    for (size_t i = 0; i < take; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (depth_gauge_ != nullptr) {
      depth_gauge_->Set(static_cast<int64_t>(items_.size()));
    }
    lock.Unlock();
    not_full_.NotifyAll();
    return take;
  }

  /// Wakes every blocked producer (which then fail) and lets consumers
  /// drain the backlog and exit.
  void Close() EXCLUDES(mu_) {
    {
      spc::MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  size_t Size() const EXCLUDES(mu_) {
    spc::MutexLock lock(mu_);
    return items_.size();
  }

  size_t Capacity() const { return capacity_; }

  /// Deepest the backlog has ever been (relaxed; exact once quiesced).
  size_t HighWater() const {
    // relaxed: monotonic watermark, no ordering with queue contents.
    return high_water_.load(std::memory_order_relaxed);
  }

  /// Mirrors the live depth into `gauge` on every push/pop (under the
  /// queue lock the paths already hold; the gauge store itself is one
  /// relaxed atomic). Wire before the first producer/consumer touches
  /// the queue.
  void BindDepthGauge(obs::Gauge* gauge) { depth_gauge_ = gauge; }

 private:
  void NoteDepthLocked() REQUIRES(mu_) {
    const size_t depth = items_.size();
    // relaxed: the watermark is a diagnostic maximum published under
    // mu_; readers only need eventual visibility, not ordering.
    if (depth > high_water_.load(std::memory_order_relaxed)) {
      high_water_.store(depth, std::memory_order_relaxed);
    }
    if (depth_gauge_ != nullptr) {
      depth_gauge_->Set(static_cast<int64_t>(depth));
    }
  }

  mutable spc::Mutex mu_;
  spc::CondVar not_empty_;
  spc::CondVar not_full_;
  std::deque<ServeRequest> items_ GUARDED_BY(mu_);
  const size_t capacity_;
  bool closed_ GUARDED_BY(mu_) = false;
  std::atomic<size_t> high_water_{0};
  obs::Gauge* depth_gauge_ = nullptr;  // wired before threads start
};

}  // namespace pspc

#endif  // PSPC_SRC_SERVE_REQUEST_QUEUE_H_
