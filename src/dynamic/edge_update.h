#ifndef PSPC_SRC_DYNAMIC_EDGE_UPDATE_H_
#define PSPC_SRC_DYNAMIC_EDGE_UPDATE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

/// Edge-update descriptions consumed by `DynamicSpcIndex`.
///
/// A batch is an ordered list of single-edge insertions and deletions
/// over a fixed vertex universe `[0, n)` — graph churn as a serving
/// system sees it (edges appear and disappear; the vertex set is
/// provisioned up front). The text stream format mirrors the SNAP
/// edge-list dialect used by graph_io.h, one update per line:
///
///   # comment
///   i 3 17      <- insert edge {3, 17}
///   d 3 17      <- delete edge {3, 17}
namespace pspc {

enum class EdgeUpdateKind : uint8_t {
  kInsert,
  kDelete,
};

struct EdgeUpdate {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  EdgeUpdateKind kind = EdgeUpdateKind::kInsert;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

/// Ordered sequence of edge updates. Purely a container; checks
/// against a concrete graph happen when the batch is applied —
/// `PlanBatch` (batch_planner.h) simulates the sequence over the
/// current edge set up front, coalescing redundant work and rejecting
/// the whole batch on a delete of a missing edge.
class EdgeUpdateBatch {
 public:
  EdgeUpdateBatch() = default;

  void Insert(VertexId u, VertexId v) {
    updates_.push_back({u, v, EdgeUpdateKind::kInsert});
  }
  void Delete(VertexId u, VertexId v) {
    updates_.push_back({u, v, EdgeUpdateKind::kDelete});
  }
  void Add(const EdgeUpdate& update) { updates_.push_back(update); }

  size_t Size() const { return updates_.size(); }
  bool Empty() const { return updates_.empty(); }

  const std::vector<EdgeUpdate>& Updates() const { return updates_; }
  auto begin() const { return updates_.begin(); }
  auto end() const { return updates_.end(); }

  /// Graph-independent validation: endpoints inside `[0, num_vertices)`
  /// and no self-loops (the SPC problem is defined on simple graphs).
  Status Validate(VertexId num_vertices) const;

 private:
  std::vector<EdgeUpdate> updates_;
};

/// Parses the update-stream text format described above.
Result<EdgeUpdateBatch> ParseUpdateStream(const std::string& text);

/// Loads an update-stream file.
Result<EdgeUpdateBatch> LoadUpdateStream(const std::string& path);

/// Writes `batch` in the update-stream text format (round-trips with
/// LoadUpdateStream).
Status SaveUpdateStream(const EdgeUpdateBatch& batch, const std::string& path);

}  // namespace pspc

#endif  // PSPC_SRC_DYNAMIC_EDGE_UPDATE_H_
