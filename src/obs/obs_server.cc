#include "src/obs/obs_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/json_writer.h"
#include "src/obs/metric_names.h"

namespace pspc {
namespace obs {

namespace {

constexpr size_t kMaxRequestBytes = 8192;
constexpr int kIoTimeoutMs = 2000;

const char* StatusLine(int status) {
  switch (status) {
    case 200: return "200 OK";
    case 400: return "400 Bad Request";
    case 404: return "404 Not Found";
    case 405: return "405 Method Not Allowed";
    case 503: return "503 Service Unavailable";
    default: return "500 Internal Server Error";
  }
}

}  // namespace

ObsServer::ObsServer(uint16_t port, ObsServerContext context)
    : context_(std::move(context)), port_(port) {
  if (context_.metrics == nullptr) context_.metrics = &MetricsRegistry::Global();
  if (context_.recorder == nullptr) context_.recorder = &FlightRecorder::Global();
}

ObsServer::~ObsServer() { Stop(); }

Status ObsServer::Start() {
  // relaxed: Start/Stop are externally serialized; the flag only
  // gates idempotence.
  if (running_.load(std::memory_order_relaxed)) return Status::OK();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind 127.0.0.1:" + std::to_string(port_) + ": " +
                           err);
  }
  if (::listen(listen_fd_, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("listen: " + err);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  start_ns_ = TraceNowNs();
  // relaxed: the std::thread constructor below orders this store
  // before AcceptLoop's first load.
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ObsServer::Stop() {
  // relaxed: only the flag flips here; join() is the synchronization
  // point with the accept thread.
  if (!running_.exchange(false, std::memory_order_relaxed)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ObsServer::AcceptLoop() {
  // relaxed: shutdown poll; the 100ms poll() bound makes staleness
  // harmless.
  while (running_.load(std::memory_order_relaxed)) {
    // Poll with a short timeout so Stop() is prompt without resorting
    // to cross-thread close() races on the listen fd.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    ServeConnection(fd);
    ::close(fd);
  }
}

void ObsServer::ServeConnection(int fd) {
  timeval tv{};
  tv.tv_sec = kIoTimeoutMs / 1000;
  tv.tv_usec = (kIoTimeoutMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
    // A bare "GET /path HTTP/1.x\r\n" followed by EOF is also fine.
    if (request.find('\n') != std::string::npos &&
        request.find("\r\n\r\n") == std::string::npos) {
      // keep reading until blank line or timeout; header-only requests
      // from curl always terminate with the blank line.
      continue;
    }
  }

  Response response;
  const size_t line_end = request.find('\n');
  if (line_end == std::string::npos) return;  // no request line at all
  std::string line = request.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  const std::string method = line.substr(0, sp1);
  std::string path = sp1 == std::string::npos
                         ? std::string()
                         : line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    response.status = 405;
    response.body = "only GET is supported\n";
  } else if (path.empty()) {
    response.status = 400;
    response.body = "malformed request line\n";
  } else {
    response = Handle(path);
  }
  // relaxed: monotonic request tally for /varz.
  requests_.fetch_add(1, std::memory_order_relaxed);

  std::string out = "HTTP/1.1 ";
  out += StatusLine(response.status);
  out += "\r\nContent-Type: " + response.content_type;
  out += "\r\nContent-Length: " + std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

ObsServer::Response ObsServer::Handle(const std::string& path) const {
  Response response;
  if (path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = context_.metrics->ToPrometheusText();
    return response;
  }
  if (path == "/metrics.json") {
    response.content_type = "application/json";
    response.body = context_.metrics->ToJson() + "\n";
    return response;
  }
  if (path == "/healthz") {
    response.content_type = "application/json";
    if (context_.health == nullptr) {
      benchjson::Object object;
      object.Add("status", "OK");
      object.Add("reason", "no health watchdog configured");
      response.body = object.Serialize() + "\n";
      return response;
    }
    const HealthReport report = context_.health->Current();
    if (report.status == HealthStatus::kUnhealthy) response.status = 503;
    response.body = report.ToJson() + "\n";
    return response;
  }
  if (path == "/varz") {
    response.content_type = "application/json";
    benchjson::Object object;
    object.Add("component", context_.component);
    object.Add("schema_version", kMetricsSchemaVersion);
#if defined(NDEBUG)
    object.Add("build_mode", "release");
#else
    object.Add("build_mode", "debug");
#endif
#if defined(__VERSION__)
    object.Add("compiler", __VERSION__);
#endif
    object.Add("uptime_seconds",
               static_cast<double>(TraceNowNs() - start_ns_) * 1e-9);
    // relaxed: point-in-time tally read.
    object.Add("requests_served",
               requests_.load(std::memory_order_relaxed));
    auto gauge = [this](const char* name) {
      return context_.metrics->GetGauge(name)->Value();
    };
    benchjson::Object serve;
    serve.Add("published_generation", gauge(kServePublishedGeneration));
    serve.Add("snapshots_retired_pending",
              gauge(kServeSnapshotsRetiredPending));
    serve.Add("active_readers", gauge(kServeActiveReaders));
    serve.Add("queue_depth", gauge(kServeQueueDepth));
    serve.Add("queue_capacity", gauge(kServeQueueCapacity));
    object.AddRaw("serve", serve.Serialize());
    benchjson::Object dynamic;
    dynamic.Add("generation", gauge(kDynamicGeneration));
    dynamic.Add("overlay_entries", gauge(kDynamicOverlayEntries));
    dynamic.Add("overlay_vertices", gauge(kDynamicOverlayVertices));
    dynamic.Add("base_entries", gauge(kDynamicBaseEntries));
    dynamic.Add("rebuild_in_progress", gauge(kDynamicRebuildInProgress));
    object.AddRaw("dynamic", dynamic.Serialize());
    object.Add("health_status",
               gauge(kObsHealthStatus));
    response.body = object.Serialize() + "\n";
    return response;
  }
  if (path == "/tracez") {
    response.content_type = "application/json";
    benchjson::Object object;
    object.AddRaw("slow_queries", context_.traces != nullptr
                                      ? context_.traces->SlowTracesToJson()
                                      : "[]");
    object.AddRaw("update_batches",
                  context_.update_traces != nullptr
                      ? context_.update_traces->ToJson()
                      : "[]");
    response.body = object.Serialize() + "\n";
    return response;
  }
  if (path == "/flightrecorder") {
    response.content_type = "application/json";
    response.body = context_.recorder->ToJson() + "\n";
    return response;
  }
  if (path == "/") {
    response.body =
        "pspc ops plane\n"
        "  /metrics         Prometheus text exposition\n"
        "  /metrics.json    versioned JSON metrics snapshot\n"
        "  /healthz         health watchdog verdict (200/503)\n"
        "  /varz            build info + process state\n"
        "  /tracez          slow-query + update-batch traces\n"
        "  /flightrecorder  recent control-plane events\n";
    return response;
  }
  response.status = 404;
  response.body = "unknown path: " + path + "\n";
  return response;
}

}  // namespace obs
}  // namespace pspc
