#ifndef PSPC_SRC_BASELINE_BRANDES_H_
#define PSPC_SRC_BASELINE_BRANDES_H_

#include <vector>

#include "src/graph/graph.h"

/// Brandes' exact betweenness centrality [Brandes 2001], the classic
/// consumer of shortest-path counts (paper §I application 1). Serves as
/// the ground truth for the index-based betweenness estimators in
/// src/analytics/.
namespace pspc {

/// Exact betweenness centrality of every vertex. Undirected convention:
/// each unordered pair {s, t} contributes once (pair dependencies are
/// accumulated over ordered sources and halved). O(n * m).
std::vector<double> BrandesBetweenness(const Graph& graph);

}  // namespace pspc

#endif  // PSPC_SRC_BASELINE_BRANDES_H_
