#include "src/reduce/equivalence.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/common/logging.h"
#include "src/common/saturating.h"
#include "src/graph/graph_builder.h"

namespace pspc {
namespace {

/// FNV-1a over a neighbor list (optionally closed with v itself, which
/// is inserted in sorted position to keep the hash order-canonical).
uint64_t HashNeighborhood(std::span<const VertexId> nbrs, VertexId self,
                          bool closed) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](VertexId x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  bool self_done = !closed;
  for (VertexId x : nbrs) {
    if (!self_done && self < x) {
      mix(self);
      self_done = true;
    }
    mix(x);
  }
  if (!self_done) mix(self);
  return h;
}

bool SameOpenNeighborhood(const Graph& g, VertexId a, VertexId b) {
  const auto na = g.Neighbors(a);
  const auto nb = g.Neighbors(b);
  return na.size() == nb.size() && std::equal(na.begin(), na.end(),
                                              nb.begin());
}

bool SameClosedNeighborhood(const Graph& g, VertexId a, VertexId b) {
  // N[a] == N[b] requires a,b adjacent (a is in N[a] = N[b]); checking
  // it explicitly also shields against hash collisions lumping
  // non-adjacent vertices into a closed bucket.
  if (!g.HasEdge(a, b)) return false;
  // With adjacency established, N[a] == N[b] <=> N(a)\{b} == N(b)\{a}.
  const auto na = g.Neighbors(a);
  const auto nb = g.Neighbors(b);
  if (na.size() != nb.size()) return false;
  size_t i = 0, j = 0;
  while (i < na.size() && j < nb.size()) {
    const VertexId x = na[i], y = nb[j];
    if (x == b) {
      ++i;
      continue;
    }
    if (y == a) {
      ++j;
      continue;
    }
    if (x != y) return false;
    ++i;
    ++j;
  }
  while (i < na.size() && na[i] == b) ++i;
  while (j < nb.size() && nb[j] == a) ++j;
  return i == na.size() && j == nb.size();
}

}  // namespace

EquivalenceReduction EquivalenceReduction::Build(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  EquivalenceReduction r;
  r.class_of_.assign(n, kInvalidVertex);

  // Bucket by open- and closed-neighborhood hashes, then verify within
  // buckets (hash collisions are resolved by the exact comparison).
  std::unordered_map<uint64_t, std::vector<VertexId>> open_buckets;
  std::unordered_map<uint64_t, std::vector<VertexId>> closed_buckets;
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = graph.Neighbors(v);
    open_buckets[HashNeighborhood(nbrs, v, false)].push_back(v);
    closed_buckets[HashNeighborhood(nbrs, v, true)].push_back(v);
  }

  // union-find over vertices; classes merge via the two twin relations.
  std::vector<VertexId> parent(n);
  for (VertexId v = 0; v < n; ++v) parent[v] = v;
  auto find = [&parent](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  auto unite = [&](VertexId a, VertexId b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);  // smaller id becomes representative
    parent[b] = a;
  };

  std::vector<uint8_t> adjacent_class(n, 0);  // indexed by root, later
  for (auto& [hash, bucket] : open_buckets) {
    (void)hash;
    if (bucket.size() < 2) continue;
    for (size_t i = 1; i < bucket.size(); ++i) {
      if (SameOpenNeighborhood(graph, bucket[0], bucket[i])) {
        unite(bucket[0], bucket[i]);
      } else {
        // Rare collision path: compare against every earlier member.
        for (size_t j = 1; j < i; ++j) {
          if (SameOpenNeighborhood(graph, bucket[j], bucket[i])) {
            unite(bucket[j], bucket[i]);
            break;
          }
        }
      }
    }
  }
  for (auto& [hash, bucket] : closed_buckets) {
    // Structured-binding field is unused on this path.
    (void)hash;
    if (bucket.size() < 2) continue;
    for (size_t i = 1; i < bucket.size(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        if (SameClosedNeighborhood(graph, bucket[j], bucket[i])) {
          unite(bucket[j], bucket[i]);
          adjacent_class[find(bucket[i])] = 1;
          break;
        }
      }
    }
  }

  // Dense class ids, weights, adjacency flags.
  for (VertexId v = 0; v < n; ++v) {
    const VertexId root = find(v);
    if (r.class_of_[root] == kInvalidVertex) {
      r.class_of_[root] = static_cast<VertexId>(r.rep_of_.size());
      r.rep_of_.push_back(root);
      r.weight_.push_back(0);
      r.class_adjacent_.push_back(adjacent_class[root]);
    }
    r.class_of_[v] = r.class_of_[root];
    r.weight_[r.class_of_[v]] = SatAdd(r.weight_[r.class_of_[v]], 1);
  }

  // Contracted graph: adjacency between classes is uniform across
  // members, so edges of representatives suffice. Intra-class edges
  // (true twins) become self-loops and are dropped by the builder; the
  // class_adjacent_ flag preserves that information for queries.
  GraphBuilder builder(static_cast<VertexId>(r.rep_of_.size()));
  for (VertexId c = 0; c < r.rep_of_.size(); ++c) {
    for (VertexId u : graph.Neighbors(r.rep_of_[c])) {
      const VertexId cu = r.class_of_[u];
      if (cu != c) builder.AddEdge(c, cu);
    }
  }
  r.reduced_ = builder.Build();
  return r;
}

SpcResult EquivalenceReduction::SameClassQuery(VertexId c) const {
  if (ClassAdjacent(c)) return {1, 1};  // true twins: the direct edge
  // False twins: every common neighbor gives one length-2 path; each
  // reduced neighbor stands for `weight` original vertices.
  Count paths = 0;
  for (VertexId x : reduced_.Neighbors(c)) {
    paths = SatAdd(paths, weight_[x]);
  }
  if (paths == 0) return {kInfSpcDistance, 0};  // isolated twins
  return {2, paths};
}

}  // namespace pspc
