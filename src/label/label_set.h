#ifndef PSPC_SRC_LABEL_LABEL_SET_H_
#define PSPC_SRC_LABEL_LABEL_SET_H_

#include <span>
#include <vector>

#include "src/common/types.h"
#include "src/label/label_entry.h"

/// Builder-side label storage.
///
/// PSPC constructs the index in distance iterations (paper Defs. 6/7):
/// iteration `d` appends exactly the entries with `dist == d`, so each
/// vertex's entries form contiguous *level slices*. `LevelLabelStore`
/// exposes the slice `L_d(v)` needed by the propagation step and the
/// full prefix `L_{<=d}(v)` needed by the pruning queries, with appends
/// committed once per iteration (two-phase: the paper's paradigm where
/// an iteration only reads the previous iterations' labels).
namespace pspc {

class LevelLabelStore {
 public:
  explicit LevelLabelStore(VertexId num_vertices)
      : entries_(num_vertices), level_begin_(num_vertices, {0}) {}

  VertexId NumVertices() const {
    return static_cast<VertexId>(entries_.size());
  }

  /// All committed entries of `v` (distances 0 .. current level).
  std::span<const LabelEntry> Entries(VertexId v) const {
    return {entries_[v].data(), entries_[v].size()};
  }

  /// Entries of `v` with distance exactly `d`; empty if `d` is beyond
  /// the committed levels. Entries within a level are sorted by hub
  /// rank (commit sorts them), making the index layout deterministic.
  std::span<const LabelEntry> Level(VertexId v, Distance d) const {
    const auto& begins = level_begin_[v];
    if (static_cast<size_t>(d) + 1 >= begins.size()) return {};
    return {entries_[v].data() + begins[d],
            entries_[v].data() + begins[d + 1]};
  }

  /// Number of levels committed so far (level 0 after the first commit).
  Distance NumLevels(VertexId v) const {
    return static_cast<Distance>(level_begin_[v].size() - 1);
  }

  /// Appends `batch` as the next level of `v`. `batch` must be sorted by
  /// hub rank; called once per vertex per iteration (single writer).
  void CommitLevel(VertexId v, std::span<const LabelEntry> batch);

  /// Total committed entries across all vertices.
  size_t TotalEntries() const;

  /// Moves out per-vertex entry arrays (store unusable afterwards).
  std::vector<std::vector<LabelEntry>> TakeEntries() {
    return std::move(entries_);
  }

 private:
  std::vector<std::vector<LabelEntry>> entries_;
  // level_begin_[v][d] = first index of distance-d entries in entries_[v].
  std::vector<std::vector<uint32_t>> level_begin_;
};

}  // namespace pspc

#endif  // PSPC_SRC_LABEL_LABEL_SET_H_
