#ifndef PSPC_SRC_LABEL_LABEL_ENTRY_H_
#define PSPC_SRC_LABEL_LABEL_ENTRY_H_

#include <algorithm>
#include <span>

#include "src/common/types.h"

/// One hub-label entry (paper §II-A): for a vertex `v`, the entry
/// `(w, sd(v,w), theta)` records the distance to hub `w` and the number
/// of *trough* shortest paths from `v` to `w` (paths on which `w` is the
/// strictly highest-ranked vertex). Hubs are stored by **rank**, not by
/// vertex id, so rank comparisons during pruning are plain integer
/// compares and label intersections can merge in rank order.
namespace pspc {

struct LabelEntry {
  Rank hub_rank = kInvalidRank;
  Distance dist = kInfDistance;
  Count count = 0;

  friend bool operator==(const LabelEntry&, const LabelEntry&) = default;
};

/// Orders entries by hub rank (unique per vertex), the layout of the
/// finalized index.
inline bool ByHubRank(const LabelEntry& a, const LabelEntry& b) {
  return a.hub_rank < b.hub_rank;
}

/// Index of the entry with `hub_rank` in a rank-sorted list, or
/// `list.size()` if absent.
inline size_t FindHubEntry(std::span<const LabelEntry> list, Rank hub_rank) {
  const auto it = std::lower_bound(list.begin(), list.end(),
                                   LabelEntry{hub_rank, 0, 0}, ByHubRank);
  if (it != list.end() && it->hub_rank == hub_rank) {
    return static_cast<size_t>(it - list.begin());
  }
  return list.size();
}

}  // namespace pspc

#endif  // PSPC_SRC_LABEL_LABEL_ENTRY_H_
