// Reproduces Fig. 11 (Exp 6): effect of the hybrid-order threshold
// delta on index size, index time and query time. Expected shape: all
// three metrics dip and then climb as delta grows (small delta ==
// degree order everywhere, huge delta == elimination order everywhere;
// the paper settles on delta = 5).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/common/timer.h"
#include "src/label/query_engine.h"

namespace {

constexpr pspc::VertexId kDeltas[] = {0, 1, 2, 5, 10, 20, 50};

void DeltaEffect(benchmark::State& state, const std::string& code,
                 pspc::VertexId delta) {
  const pspc::Graph& g = pspc::bench::GetGraph(code);
  pspc::BuildOptions options = pspc::bench::PspcOptionsAllThreads();
  options.ordering = pspc::OrderingScheme::kHybrid;
  options.hybrid_delta = delta;
  pspc::BuildIndex(g, options);  // untimed warmup: page-faults the arena
  for (auto _ : state) {
    pspc::WallTimer timer;
    const pspc::BuildResult result = pspc::BuildIndex(g, options);
    const double build_seconds = timer.ElapsedSeconds();
    state.SetIterationTime(build_seconds);

    const pspc::QueryBatch batch = pspc::MakeRandomQueries(
        g.NumVertices(), pspc::bench::QueryWorkloadSize() / 10, 0xF11);
    pspc::WallTimer query_timer;
    benchmark::DoNotOptimize(pspc::RunQueries(result.index, batch));
    state.counters["query_us"] =
        query_timer.ElapsedMicros() / static_cast<double>(batch.size());
    state.counters["index_MB"] =
        static_cast<double>(result.index.SizeBytes()) / (1024.0 * 1024.0);
    state.counters["index_s"] = build_seconds;
    state.counters["delta"] = delta;
  }
}

int RegisterAll() {
  for (const auto& spec : pspc::AllDatasets()) {
    if (!spec.in_sweep_set && spec.code != "RD") continue;
    for (pspc::VertexId delta : kDeltas) {
      benchmark::RegisterBenchmark(
          ("fig11/delta_effect/" + spec.code + "/delta:" +
           std::to_string(delta))
              .c_str(),
          [code = spec.code, delta](benchmark::State& s) {
            DeltaEffect(s, code, delta);
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kSecond);
    }
  }
  return 0;
}

static const int kRegistered = RegisterAll();

}  // namespace
