#include "src/dynamic/dynamic_dspc_index.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/common/parallel.h"
#include "src/common/timer.h"
#include "src/dynamic/batch_planner.h"
#include "src/label/label_merge.h"

namespace pspc {

DynamicDspcIndex::DynamicDspcIndex(DiGraph graph, DiSpcIndex index,
                                   DynamicDiOptions options)
    : base_graph_(std::move(graph)),
      base_(std::make_shared<const DiSpcIndex>(std::move(index))),
      order_(base_->Order()),
      graph_(&base_graph_),
      out_overlay_(base_->OutLabelMap()),
      in_overlay_(base_->InLabelMap()),
      options_(options),
      obs_(options.metrics),
      recorder_(options.flight_recorder != nullptr
                    ? options.flight_recorder
                    : &obs::FlightRecorder::Global()) {
  PSPC_CHECK_MSG(base_->NumVertices() == base_graph_.NumVertices(),
                 "index (" << base_->NumVertices() << " vertices) does not "
                 "match graph (" << base_graph_.NumVertices() << ")");
  scratch_.Init(base_graph_.NumVertices());
}

DynamicDspcIndex::DynamicDspcIndex(DiGraph graph,
                                   const DiPspcOptions& build_options,
                                   DynamicDiOptions options)
    : DynamicDspcIndex(
          graph,
          BuildDirectedPspcIndex(graph, DirectedDegreeOrder(graph),
                                 build_options)
              .index,
          options) {}

int DynamicDspcIndex::SweepThreads() const {
  const int resolved =
      options_.num_threads > 0 ? options_.num_threads : MaxThreads();
  return std::min(resolved, MaxThreads());
}

SpcResult DynamicDspcIndex::Query(VertexId s, VertexId t) const {
  PSPC_CHECK_MSG(s < NumVertices() && t < NumVertices(),
                 "query (" << s << "," << t << ") out of range");
  if (s == t) return {0, 1};
  return MergeLabelCounts(OutLabels(s), InLabels(t));
}

double DynamicDspcIndex::StalenessRatio() const {
  return static_cast<double>(out_overlay_.OverlaidEntries() +
                             in_overlay_.OverlaidEntries()) /
         static_cast<double>(std::max<size_t>(1, base_->TotalEntries()));
}

void DynamicDspcIndex::MaybeRebuild() {
  if (options_.auto_rebuild && StalenessRatio() > options_.rebuild_threshold) {
    Rebuild();
  }
}

void DynamicDspcIndex::PublishMetrics() {
  obs_.ExportDelta(stats_);
  obs_.SetGauges(generation_,
                 out_overlay_.OverlaidEntries() + in_overlay_.OverlaidEntries(),
                 out_overlay_.OverlaidVertices() +
                     in_overlay_.OverlaidVertices(),
                 base_->TotalEntries());
}

void DynamicDspcIndex::Rebuild() {
  WallTimer timer;
  obs_.rebuild_in_progress()->Set(1);
  recorder_->Record(obs::FlightEventKind::kRebuildStart, generation_,
                    out_overlay_.OverlaidEntries() +
                        in_overlay_.OverlaidEntries());
  DiGraph current = graph_.Materialize();
  DiPspcBuildResult result = BuildDirectedPspcIndex(
      current, DirectedDegreeOrder(current), options_.rebuild_options);
  base_graph_ = std::move(current);
  // A fresh shared base: snapshots captured from the old generation
  // keep the retired label arrays alive through their shared_ptr.
  base_ = std::make_shared<const DiSpcIndex>(std::move(result.index));
  order_ = base_->Order();
  graph_.Rebase(&base_graph_);
  out_overlay_.Rebase(base_->OutLabelMap());
  in_overlay_.Rebase(base_->InLabelMap());
  ++generation_;
  ++stats_.rebuilds;
  const double elapsed = timer.ElapsedSeconds();
  stats_.rebuild_seconds += elapsed;
  obs_.rebuild_us()->Record(elapsed * 1e6);
  obs_.rebuild_in_progress()->Set(0);
  recorder_->Record(obs::FlightEventKind::kRebuildEnd, generation_,
                    static_cast<uint64_t>(elapsed * 1e6),
                    base_->TotalEntries());
  PublishMetrics();
}

Status DynamicDspcIndex::InsertEdge(VertexId u, VertexId v) {
  PSPC_RETURN_IF_ERROR(graph_.AddEdge(u, v));
  const double repair_before = stats_.repair_seconds;
  {
    ScopedTimer timer(&stats_.repair_seconds);
    obs::ScopedLatencyTimer latency(obs_.repair_us());
    const std::pair<VertexId, VertexId> edge{u, v};
    RepairInsertions({&edge, 1});
  }
  stats_.last_plan_us = 0.0;
  stats_.last_repair_us = (stats_.repair_seconds - repair_before) * 1e6;
  ++stats_.insertions_applied;
  ++generation_;
  MaybeRebuild();
  PublishMetrics();
  return Status::OK();
}

Status DynamicDspcIndex::DeleteEdge(VertexId u, VertexId v) {
  PSPC_RETURN_IF_ERROR(graph_.ValidateEndpoints(u, v));
  if (!graph_.HasEdge(u, v)) {
    return Status::NotFound("edge (" + std::to_string(u) + " -> " +
                            std::to_string(v) + ") does not exist");
  }
  const double repair_before = stats_.repair_seconds;
  {
    ScopedTimer timer(&stats_.repair_seconds);
    obs::ScopedLatencyTimer latency(obs_.repair_us());
    RepairDeletion(u, v);
  }
  stats_.last_plan_us = 0.0;
  stats_.last_repair_us = (stats_.repair_seconds - repair_before) * 1e6;
  ++stats_.deletions_applied;
  ++generation_;
  MaybeRebuild();
  PublishMetrics();
  return Status::OK();
}

Status DynamicDspcIndex::Apply(const EdgeUpdate& update) {
  return update.kind == EdgeUpdateKind::kInsert
             ? InsertEdge(update.u, update.v)
             : DeleteEdge(update.u, update.v);
}

Status DynamicDspcIndex::ApplyBatch(const EdgeUpdateBatch& batch) {
  PSPC_RETURN_IF_ERROR(batch.Validate(NumVertices()));
  WallTimer plan_timer;
  auto planned = PlanBatch(
      batch,
      [this](VertexId u, VertexId v) { return graph_.HasEdge(u, v); },
      /*directed=*/true);
  PSPC_RETURN_IF_ERROR(planned.status());
  const double plan_us = plan_timer.ElapsedSeconds() * 1e6;
  obs_.plan_us()->Record(plan_us);
  stats_.last_plan_us = plan_us;
  stats_.last_repair_us = 0.0;
  const BatchPlan& plan = planned.value();
  ++stats_.batches_applied;
  stats_.updates_coalesced += plan.coalesced_updates;
  if (plan.Empty()) {
    PublishMetrics();
    return Status::OK();
  }
  if (plan.NetSize() == 1) {
    // One net update: the single-update path.
    const Status status =
        plan.net_deletions.empty()
            ? InsertEdge(plan.net_insertions[0].first,
                         plan.net_insertions[0].second)
            : DeleteEdge(plan.net_deletions[0].first,
                         plan.net_deletions[0].second);
    // The delegated path stamps its own last_* fields with plan cost
    // zero; this batch did plan.
    stats_.last_plan_us = plan_us;
    return status;
  }

  const double repair_before = stats_.repair_seconds;
  {
    ScopedTimer timer(&stats_.repair_seconds);
    obs::ScopedLatencyTimer latency(obs_.repair_us());
    // Deletions first: their detection needs the pre-batch exact
    // index, and insertion seeds need labels exact for the deleted
    // graph. Each single-edge deletion repair leaves the index exact
    // for its own graph, so the replay composes; insertions then
    // coalesce into one multi-source run per (hub, direction).
    for (const auto& [u, v] : plan.net_deletions) {
      RepairDeletion(u, v);
    }
    if (!plan.net_insertions.empty()) {
      for (const auto& [u, v] : plan.net_insertions) {
        PSPC_CHECK(graph_.AddEdge(u, v).ok());
      }
      RepairInsertions(plan.net_insertions);
    }
  }
  stats_.last_repair_us = (stats_.repair_seconds - repair_before) * 1e6;
  stats_.insertions_applied += plan.net_insertions.size();
  stats_.deletions_applied += plan.net_deletions.size();
  ++generation_;  // one published generation per batch
  MaybeRebuild();
  PublishMetrics();
  return Status::OK();
}

void DynamicDspcIndex::RepairInsertions(
    std::span<const std::pair<VertexId, VertexId>> edges) {
  const ForwardView fwd = Forward();
  const BackwardView bwd = Backward();

  // Forward seeds: hubs reaching `u` (recorded in Lin(u)) may start
  // new trough paths h .. u -> v .., repaired by a forward BFS from v.
  // Backward seeds mirror them from Lout(v), seeded at u. Both seed
  // sets snapshot the pre-repair labels across every new edge.
  std::vector<std::pair<Rank, InsertSeed>> fwd_seeds, bwd_seeds;
  for (const auto& [u, v] : edges) {
    repair::GatherInsertSeeds(fwd, u, v, &fwd_seeds);
    repair::GatherInsertSeeds(bwd, v, u, &bwd_seeds);
  }
  repair::SortInsertSeeds(&fwd_seeds);
  repair::SortInsertSeeds(&bwd_seeds);

  // Interleave the two directions in ascending global rank order: a
  // run for hub h prunes against entries of higher-ranked hubs on
  // *both* label sides, so every higher-ranked hub must have repaired
  // both its directions first. Same-rank forward/backward runs touch
  // disjoint label sides and may go in either order.
  std::vector<InsertSeed> group;
  size_t fi = 0, bi = 0;
  while (fi < fwd_seeds.size() || bi < bwd_seeds.size()) {
    const Rank fr = fi < fwd_seeds.size() ? fwd_seeds[fi].first : kInvalidRank;
    const Rank br = bi < bwd_seeds.size() ? bwd_seeds[bi].first : kInvalidRank;
    if (fr <= br) {
      group.clear();
      for (; fi < fwd_seeds.size() && fwd_seeds[fi].first == fr; ++fi) {
        group.push_back(fwd_seeds[fi].second);
      }
      repair::ResumedInsertBfs(fwd, fr, {group.data(), group.size()},
                               scratch_, &stats_);
    } else {
      group.clear();
      for (; bi < bwd_seeds.size() && bwd_seeds[bi].first == br; ++bi) {
        group.push_back(bwd_seeds[bi].second);
      }
      repair::ResumedInsertBfs(bwd, br, {group.data(), group.size()},
                               scratch_, &stats_);
    }
  }
}

void DynamicDspcIndex::RepairDeletion(VertexId u, VertexId v) {
  repair::RepairContext ctx;
  ctx.scratch = &scratch_;
  ctx.stats = &stats_;
  ctx.sweep_threads = SweepThreads();
  repair::RepairEdgeDeletionPair(Forward(), Backward(), u, v, ctx, [&] {
    PSPC_CHECK(graph_.RemoveEdge(u, v).ok());
  });
}

}  // namespace pspc
