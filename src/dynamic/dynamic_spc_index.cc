#include "src/dynamic/dynamic_spc_index.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/common/logging.h"
#include "src/common/parallel.h"
#include "src/common/saturating.h"
#include "src/common/timer.h"
#include "src/core/builder_facade.h"
#include "src/core/scheduler.h"
#include "src/label/label_merge.h"

namespace pspc {
namespace {

/// Index of the entry with `hub_rank` in a rank-sorted list, or
/// `list.size()` if absent.
size_t FindHubEntry(std::span<const LabelEntry> list, Rank hub_rank) {
  const auto it = std::lower_bound(
      list.begin(), list.end(), LabelEntry{hub_rank, 0, 0}, ByHubRank);
  if (it != list.end() && it->hub_rank == hub_rank) {
    return static_cast<size_t>(it - list.begin());
  }
  return list.size();
}

Distance ToLabelDistance(uint32_t d) {
  PSPC_CHECK_MSG(d < kInfDistance, "distance " << d << " overflows Distance");
  return static_cast<Distance>(d);
}

}  // namespace

std::string DynamicStats::ToString() const {
  std::ostringstream oss;
  oss << "updates: " << insertions_applied << " insert / "
      << deletions_applied << " delete\n"
      << "repair:  " << resumed_bfs_runs << " resumed BFS, "
      << affected_hubs << " hubs fully re-run, " << subtract_repairs
      << " hubs count-subtracted\n"
      << "labels:  " << entries_inserted << " inserted, " << entries_renewed
      << " renewed, " << entries_erased << " erased\n"
      << "rebuilds: " << rebuilds << "\n"
      << "time: repair " << repair_seconds << "s, rebuild "
      << rebuild_seconds << "s";
  return oss.str();
}

DynamicSpcIndex::DynamicSpcIndex(Graph graph, SpcIndex index,
                                 DynamicOptions options)
    : base_graph_(std::move(graph)),
      base_(std::make_shared<const SpcIndex>(std::move(index))),
      order_(base_->Order()),
      graph_(&base_graph_),
      overlay_(base_.get()),
      options_(options) {
  PSPC_CHECK_MSG(base_->NumVertices() == base_graph_.NumVertices(),
                 "index (" << base_->NumVertices() << " vertices) does not "
                 "match graph (" << base_graph_.NumVertices() << ")");
  InitScratch();
}

DynamicSpcIndex::DynamicSpcIndex(Graph graph,
                                 const BuildOptions& build_options,
                                 DynamicOptions options)
    : DynamicSpcIndex(graph, BuildIndex(graph, build_options).index,
                      options) {}

void DynamicSpcIndex::InitScratch() {
  const VertexId n = base_graph_.NumVertices();
  hub_dist_.assign(n, kInfSpcDistance);
  bfs_dist_.assign(n, kInfSpcDistance);
  bfs_count_.assign(n, 0);
  updated_.assign(n, 0);
  subtract_side_.assign(n, 0);
  bucket_max_.assign(n, 0);
  bfs_touched_.clear();
  bfs_queue_.clear();
}

SpcResult DynamicSpcIndex::Query(VertexId s, VertexId t) const {
  PSPC_CHECK_MSG(s < NumVertices() && t < NumVertices(),
                 "query (" << s << "," << t << ") out of range");
  if (s == t) return {0, 1};
  return MergeLabelCounts(Labels(s), Labels(t));
}

double DynamicSpcIndex::StalenessRatio() const {
  return static_cast<double>(overlay_.OverlaidEntries()) /
         static_cast<double>(std::max<size_t>(1, base_->TotalEntries()));
}

void DynamicSpcIndex::MaybeRebuild() {
  if (options_.auto_rebuild && StalenessRatio() > options_.rebuild_threshold) {
    Rebuild();
  }
}

void DynamicSpcIndex::Rebuild() {
  WallTimer timer;
  Graph current = graph_.Materialize();
  BuildResult result = BuildIndex(current, options_.rebuild_options);
  base_graph_ = std::move(current);
  // A fresh shared base: snapshots captured from the old generation
  // keep the retired CSR alive through their shared_ptr.
  base_ = std::make_shared<const SpcIndex>(std::move(result.index));
  order_ = base_->Order();
  graph_.Rebase(&base_graph_);
  overlay_.Rebase(base_.get());
  ++generation_;
  ++stats_.rebuilds;
  stats_.rebuild_seconds += timer.ElapsedSeconds();
}

Status DynamicSpcIndex::InsertEdge(VertexId u, VertexId v) {
  PSPC_RETURN_IF_ERROR(graph_.AddEdge(u, v));
  {
    ScopedTimer timer(&stats_.repair_seconds);
    RepairInsertion(u, v);
  }
  ++stats_.insertions_applied;
  ++generation_;
  MaybeRebuild();
  return Status::OK();
}

Status DynamicSpcIndex::DeleteEdge(VertexId u, VertexId v) {
  PSPC_RETURN_IF_ERROR(graph_.ValidateEndpoints(u, v));
  if (!graph_.HasEdge(u, v)) {
    return Status::NotFound("edge (" + std::to_string(u) + ", " +
                            std::to_string(v) + ") does not exist");
  }
  {
    ScopedTimer timer(&stats_.repair_seconds);
    RepairDeletion(u, v);
  }
  ++stats_.deletions_applied;
  ++generation_;
  MaybeRebuild();
  return Status::OK();
}

Status DynamicSpcIndex::Apply(const EdgeUpdate& update) {
  return update.kind == EdgeUpdateKind::kInsert
             ? InsertEdge(update.u, update.v)
             : DeleteEdge(update.u, update.v);
}

Status DynamicSpcIndex::ApplyBatch(const EdgeUpdateBatch& batch) {
  PSPC_RETURN_IF_ERROR(batch.Validate(NumVertices()));
  for (const EdgeUpdate& update : batch) {
    PSPC_RETURN_IF_ERROR(Apply(update));
  }
  return Status::OK();
}

void DynamicSpcIndex::LoadHubDist(VertexId hub) {
  for (const LabelEntry& e : Labels(hub)) hub_dist_[e.hub_rank] = e.dist;
}

void DynamicSpcIndex::ResetHubDist(VertexId hub) {
  for (const LabelEntry& e : Labels(hub)) {
    hub_dist_[e.hub_rank] = kInfSpcDistance;
  }
}

// ------------------------------------------------------------- insertion

void DynamicSpcIndex::RepairInsertion(VertexId a, VertexId b) {
  // Snapshots: every resumed BFS must seed from the *pre-insertion*
  // trough counts, and repairs mutate the live lists as they go.
  const auto la_span = Labels(a);
  const auto lb_span = Labels(b);
  const std::vector<LabelEntry> la(la_span.begin(), la_span.end());
  const std::vector<LabelEntry> lb(lb_span.begin(), lb_span.end());
  const Rank ra = order_.RankOf(a);
  const Rank rb = order_.RankOf(b);

  // Ascending hub rank across both lists, so that each hub's resumed
  // BFS prunes against already-repaired higher-ranked labels (the same
  // order dependency as HP-SPC construction, Lemma 1). On a shared hub
  // the a-side runs first; both seeds still read snapshot counts.
  size_t i = 0, j = 0;
  while (i < la.size() || j < lb.size()) {
    const bool take_a =
        j == lb.size() ||
        (i < la.size() && la[i].hub_rank <= lb[j].hub_rank);
    const bool take_b =
        i == la.size() ||
        (j < lb.size() && lb[j].hub_rank <= la[i].hub_rank);
    if (take_a) {
      // New trough paths h ... a -> b ...: only possible if b may
      // appear below h in the order.
      if (la[i].hub_rank < rb) {
        ResumedInsertBfs(la[i].hub_rank, b,
                         static_cast<uint32_t>(la[i].dist) + 1, la[i].count);
      }
      ++i;
    }
    if (take_b) {
      if (lb[j].hub_rank < ra) {
        ResumedInsertBfs(lb[j].hub_rank, a,
                         static_cast<uint32_t>(lb[j].dist) + 1, lb[j].count);
      }
      ++j;
    }
  }
}

void DynamicSpcIndex::ResumedInsertBfs(Rank hub_rank, VertexId start,
                                       uint32_t seed_dist, Count seed_count) {
  const VertexId hub = order_.VertexAt(hub_rank);
  LoadHubDist(hub);

  bfs_queue_.clear();
  bfs_touched_.clear();
  bfs_dist_[start] = seed_dist;
  bfs_count_[start] = seed_count;
  bfs_queue_.push_back(start);
  bfs_touched_.push_back(start);

  for (size_t head = 0; head < bfs_queue_.size(); ++head) {
    const VertexId v = bfs_queue_[head];
    const uint32_t dv = bfs_dist_[v];

    // One walk over L(v) up to the hub's rank: the 2-hop distance
    // certificate over hubs ranked >= hub_rank (the hub's own old
    // entry participates via hub_dist_[hub_rank] == 0), plus the
    // position of the hub's entry if present.
    const auto lv = Labels(v);
    uint32_t certified = kInfSpcDistance;
    size_t pos = 0;
    bool has_hub = false;
    LabelEntry old_entry{};
    for (; pos < lv.size() && lv[pos].hub_rank <= hub_rank; ++pos) {
      const uint32_t hd = hub_dist_[lv[pos].hub_rank];
      if (hd != kInfSpcDistance) {
        certified = std::min(certified, hd + lv[pos].dist);
      }
      if (lv[pos].hub_rank == hub_rank) {
        has_hub = true;
        old_entry = lv[pos];
        break;
      }
    }
    if (dv > certified) continue;  // covered strictly shorter: prune

    Count total = bfs_count_[v];
    if (has_hub && old_entry.dist == dv) {
      total = SatAdd(total, old_entry.count);  // pre-existing trough paths
    }
    if (has_hub) {
      if (old_entry.dist != dv || old_entry.count != total) {
        overlay_.Mutable(v)[pos] = {hub_rank, ToLabelDistance(dv), total};
        ++stats_.entries_renewed;
      }
    } else {
      std::vector<LabelEntry>& mv = overlay_.Mutable(v);
      mv.insert(mv.begin() + static_cast<ptrdiff_t>(pos),
                {hub_rank, ToLabelDistance(dv), total});
      ++stats_.entries_inserted;
    }

    graph_.ForEachNeighbor(v, [&](VertexId w) {
      if (order_.RankOf(w) <= hub_rank) return;
      if (bfs_dist_[w] == kInfSpcDistance) {
        bfs_dist_[w] = dv + 1;
        bfs_count_[w] = bfs_count_[v];
        bfs_queue_.push_back(w);
        bfs_touched_.push_back(w);
      } else if (bfs_dist_[w] == dv + 1) {
        bfs_count_[w] = SatAdd(bfs_count_[w], bfs_count_[v]);
      }
    });
  }

  ++stats_.resumed_bfs_runs;
  ResetHubDist(hub);
  for (const VertexId v : bfs_touched_) {
    bfs_dist_[v] = kInfSpcDistance;
    bfs_count_[v] = 0;
  }
}

// -------------------------------------------------------------- deletion

std::vector<uint32_t> DynamicSpcIndex::BfsDistances(VertexId source) const {
  std::vector<uint32_t> dist(NumVertices(), kInfSpcDistance);
  std::vector<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    graph_.ForEachNeighbor(u, [&](VertexId w) {
      if (dist[w] == kInfSpcDistance) {
        dist[w] = dist[u] + 1;
        queue.push_back(w);
      }
    });
  }
  return dist;
}

void DynamicSpcIndex::DetectAffectedSide(
    VertexId from, VertexId to, const std::vector<uint8_t>& hub_of_a,
    const std::vector<uint8_t>& hub_of_b, AffectedSide* side) const {
  const VertexId n = base_graph_.NumVertices();
  side->flags.assign(n, 0);
  side->full_ranks.clear();
  side->subtract_ranks.clear();
  side->touched.clear();

  // Pruned partial BFS over the *pre-deletion* graph. A vertex u is in
  // the affected region iff the doomed edge lies on one of its
  // shortest paths to the far endpoint: d(u, from) + 1 == d(u, to),
  // answered by the (still exact) 2-hop index. Only region vertices
  // expand, so the traversal stays proportional to the blast radius.
  std::vector<uint32_t> dist(n, kInfSpcDistance);
  std::vector<Count> count(n, 0);
  std::vector<VertexId> queue;
  dist[from] = 0;
  count[from] = 1;
  queue.push_back(from);
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    const SpcResult to_far = Query(u, to);
    if (dist[u] + 1 != to_far.distance) continue;

    // `count[u]` = shortest `from`-u paths, which is exactly the number
    // of shortest u-`to` paths crossing the edge. If *all* of them
    // cross (count matches), distances from u can grow, so u needs a
    // full hub re-run. A common hub of both endpoint labels that keeps
    // alternative routes can only lose trough counts — repairable by
    // subtraction. Everything else is a mere receiver. Saturated
    // counts cannot be compared (or subtracted), so they
    // conservatively promote to a full re-run.
    const Rank ru = order_.RankOf(u);
    const bool saturated =
        count[u] == kSaturatedCount || to_far.count == kSaturatedCount;
    if (saturated || count[u] >= to_far.count) {
      side->flags[u] = 1;
      side->full_ranks.push_back(ru);
    } else if (hub_of_a[ru] != 0 && hub_of_b[ru] != 0) {
      side->flags[u] = 2;
      side->subtract_ranks.push_back(ru);
    } else {
      side->flags[u] = -1;
    }
    side->touched.push_back(u);

    graph_.ForEachNeighbor(u, [&](VertexId w) {
      if (dist[w] == kInfSpcDistance) {
        dist[w] = dist[u] + 1;
        count[w] = count[u];
        queue.push_back(w);
      } else if (dist[w] == dist[u] + 1) {
        count[w] = SatAdd(count[w], count[u]);
      }
    });
  }
}

void DynamicSpcIndex::RepairDeletion(VertexId a, VertexId b) {
  const VertexId n = base_graph_.NumVertices();

  std::vector<uint8_t> hub_of_a(n, 0), hub_of_b(n, 0);
  for (const LabelEntry& e : Labels(a)) hub_of_a[e.hub_rank] = 1;
  for (const LabelEntry& e : Labels(b)) hub_of_b[e.hub_rank] = 1;

  // Pre-deletion snapshots of the endpoint labels: subtraction seeds
  // must be the through-edge trough counts as they were before any
  // repair of this update touches them.
  const auto la_span = Labels(a);
  const auto lb_span = Labels(b);
  const std::vector<LabelEntry> la(la_span.begin(), la_span.end());
  const std::vector<LabelEntry> lb(lb_span.begin(), lb_span.end());

  // Detection runs against the pre-deletion graph and index; the two
  // sides are disjoint (u cannot satisfy both distance conditions).
  AffectedSide side_a, side_b;
  DetectAffectedSide(a, b, hub_of_a, hub_of_b, &side_a);
  DetectAffectedSide(b, a, hub_of_a, hub_of_b, &side_b);

  // Every changed pair of a sender hub falls in one of two classes,
  // each with a provable certificate that picks the cheapest repair:
  //
  //  * Count-only changes (trough counts drop, distances hold). The
  //    lost trough path routes `x ... far -> near ... h`, and both of
  //    its edge-endpoint suffixes are restricted shortest — so h must
  //    hold a *valid* entry in both endpoint labels. Repairable by the
  //    subtractive pass, seeded from h's entry at its own side's
  //    endpoint (a stale seed means no trough path crosses at all).
  //
  //  * Distance changes (some pair distance grows; the only source of
  //    brand-new entries). Both pair endpoints must then be full
  //    senders, so a plain post-deletion BFS from each opposite-side
  //    full sender detects every such hub exactly — those few re-run
  //    the full pruned restricted BFS. When the opposite full-sender
  //    set is too large to scan, the side falls back to re-running all
  //    of its full senders.
  struct HubTask {
    Rank rank;
    bool subtract;
    VertexId start;       // subtract: far endpoint the BFS seeds from
    uint32_t seed_dist;   // subtract: entry dist + 1 across the edge
    Count seed_count;     // subtract: through-edge trough count
    const AffectedSide* opposite;
  };
  std::vector<HubTask> tasks;
  tasks.reserve(side_a.full_ranks.size() + side_a.subtract_ranks.size() +
                side_b.full_ranks.size() + side_b.subtract_ranks.size());

  // Seed validation must query the still-exact pre-deletion index.
  std::vector<uint8_t> seed_ok(n, 0);
  std::vector<uint32_t> seed_dist(n, 0);
  std::vector<Count> seed_count(n, 0);
  auto validate_seeds = [&](const AffectedSide& side,
                            const std::vector<LabelEntry>& near_labels,
                            VertexId near) {
    auto validate = [&](Rank r) {
      if (hub_of_a[r] == 0 || hub_of_b[r] == 0) return;
      const size_t pos =
          FindHubEntry({near_labels.data(), near_labels.size()}, r);
      if (pos == near_labels.size()) return;
      const LabelEntry& seed = near_labels[pos];
      if (Query(near, order_.VertexAt(r)).distance != seed.dist) return;
      seed_ok[r] = 1;
      seed_dist[r] = static_cast<uint32_t>(seed.dist) + 1;
      seed_count[r] = seed.count;
    };
    for (const Rank r : side.full_ranks) validate(r);
    for (const Rank r : side.subtract_ranks) validate(r);
  };
  validate_seeds(side_a, la, a);
  validate_seeds(side_b, lb, b);

  // The exact distance-change filter costs one plain BFS per opposite
  // full sender; past a few hundred the blanket re-run is cheaper.
  // Pre-deletion endpoint distances feed its through-edge formula and
  // must be captured while the edge still exists — but only when some
  // filtered side actually has full senders to test.
  constexpr size_t kDistanceFilterCap = 256;
  const bool filter_a = side_b.full_ranks.size() <= kDistanceFilterCap;
  const bool filter_b = side_a.full_ranks.size() <= kDistanceFilterCap;
  const bool need_pre_dists = (filter_a && !side_a.full_ranks.empty()) ||
                              (filter_b && !side_b.full_ranks.empty());
  const std::vector<uint32_t> pre_dist_a =
      need_pre_dists ? BfsDistances(a) : std::vector<uint32_t>();
  const std::vector<uint32_t> pre_dist_b =
      need_pre_dists ? BfsDistances(b) : std::vector<uint32_t>();

  PSPC_CHECK(graph_.RemoveEdge(a, b).ok());

  // Exact distance-change detection (post-deletion): hub u's distance
  // to opposite full sender x grew iff every old shortest route used
  // the edge, i.e. the through-edge length beat today's BFS distance.
  // Each BFS also runs a bottleneck-rank DP over its shortest-path
  // DAG: C(u) = the best (numerically largest) over shortest x-u paths
  // of the smallest rank on the path excluding u. A new trough entry
  // for the pair exists iff C(u) > rank(u) — some shortest path stays
  // entirely below u — which decides *exactly* whether a hub whose
  // distance grew without any pre-existing entry must re-run.
  // A hub must fully re-run iff some pair distance to an opposite full
  // sender x grew AND that pair matters: x still has a trough shortest
  // path below the hub (a new or renewed entry is due), or x holds an
  // entry for the hub — possibly a stale leftover of an earlier
  // insertion whose recorded distance the growth just reached, which
  // must be erased or renewed. Pairs that grew with neither leave
  // nothing to store, and a hub with only such pairs can still repair
  // its count-only pairs by subtraction.
  std::vector<uint8_t> needs_full(n, 0);
  auto mark_distance_changes = [&](const std::vector<Rank>& sender_ranks,
                                   const std::vector<uint32_t>& pre_near,
                                   const std::vector<uint32_t>& pre_far,
                                   const AffectedSide& opposite) {
    if (sender_ranks.empty()) return;
    const Rank min_sender =
        *std::min_element(sender_ranks.begin(), sender_ranks.end());
    std::vector<uint32_t> now(n), bottleneck(n);
    std::vector<VertexId> queue;
    const std::vector<Rank>& rank_of = order_.VertexToRank();
    for (const Rank rx : opposite.full_ranks) {
      if (rx <= min_sender) continue;  // no sender can hold an entry at x
      const VertexId x = order_.VertexAt(rx);
      if (pre_far[x] == kInfSpcDistance) continue;
      now.assign(n, kInfSpcDistance);
      bottleneck.assign(n, 0);
      queue.clear();
      now[x] = 0;
      bottleneck[x] = kInfSpcDistance;  // empty prefix: no bottleneck yet
      queue.push_back(x);
      for (size_t head = 0; head < queue.size(); ++head) {
        const VertexId p = queue[head];
        const uint32_t via = std::min(bottleneck[p], uint32_t{rank_of[p]});
        graph_.ForEachNeighbor(p, [&](VertexId w) {
          if (now[w] == kInfSpcDistance) {
            now[w] = now[p] + 1;
            bottleneck[w] = via;
            queue.push_back(w);
          } else if (now[w] == now[p] + 1) {
            bottleneck[w] = std::max(bottleneck[w], via);
          }
        });
      }
      const auto lx = Labels(x);
      for (const Rank r : sender_ranks) {
        if (r >= rx || needs_full[r] != 0) continue;
        const VertexId u = order_.VertexAt(r);
        if (pre_near[u] == kInfSpcDistance) continue;
        const uint64_t through =
            uint64_t{pre_far[x]} + 1 + uint64_t{pre_near[u]};
        if (through < now[u]) {
          if ((now[u] != kInfSpcDistance && bottleneck[u] > r) ||
              FindHubEntry(lx, r) < lx.size()) {
            needs_full[r] = 1;
          }
        }
      }
    }
  };
  if (filter_a) {
    mark_distance_changes(side_a.full_ranks, pre_dist_a, pre_dist_b, side_b);
  }
  if (filter_b) {
    mark_distance_changes(side_b.full_ranks, pre_dist_b, pre_dist_a, side_a);
  }

  auto assemble = [&](const AffectedSide& side, bool filtered, VertexId far,
                      const AffectedSide* opposite) {
    for (const Rank r : side.full_ranks) {
      if (!filtered || needs_full[r] != 0) {
        tasks.push_back({r, false, 0, 0, 0, opposite});
      } else if (seed_ok[r] != 0) {
        tasks.push_back({r, true, far, seed_dist[r], seed_count[r], opposite});
      }
      // else: provably no pair of this hub changed in a way that needs
      // a re-run — no grown pair carries an entry or surviving trough,
      // and count-only pairs need a valid common seed.
    }
    for (const Rank r : side.subtract_ranks) {
      if (seed_ok[r] != 0) {
        tasks.push_back({r, true, far, seed_dist[r], seed_count[r], opposite});
      }
    }
  };
  assemble(side_a, filter_a, b, &side_b);
  assemble(side_b, filter_b, a, &side_a);

  // One pass over the region's labels buckets, per subtractive hub,
  // the farthest entry it may have to fix; the subtraction BFS stops
  // at that depth, and hubs nobody stores an entry for are skipped
  // outright (they provably cannot gain entries).
  for (const HubTask& task : tasks) {
    if (task.subtract) {
      subtract_side_[task.rank] = task.opposite == &side_b ? 1 : 2;
    }
  }
  for (const VertexId v : side_b.touched) {
    for (const LabelEntry& e : Labels(v)) {
      if (subtract_side_[e.hub_rank] == 1) {
        bucket_max_[e.hub_rank] =
            std::max<uint32_t>(bucket_max_[e.hub_rank], e.dist);
      }
    }
  }
  for (const VertexId v : side_a.touched) {
    for (const LabelEntry& e : Labels(v)) {
      if (subtract_side_[e.hub_rank] == 2) {
        bucket_max_[e.hub_rank] =
            std::max<uint32_t>(bucket_max_[e.hub_rank], e.dist);
      }
    }
  }

  // Changed label pairs always straddle the cut, so a hub on the
  // a-side only rewrites entries at b-side vertices and vice versa.
  // Ascending global rank keeps pruning sound (a full re-run consults
  // higher-ranked labels, which are already repaired).
  std::sort(tasks.begin(), tasks.end(),
            [](const HubTask& x, const HubTask& y) { return x.rank < y.rank; });
  for (const HubTask& task : tasks) {
    if (!task.subtract) {
      RepairHubAfterDeletion(task.rank, *task.opposite);
    } else if (bucket_max_[task.rank] >= task.seed_dist) {
      SubtractiveDeleteRepair(task.rank, task.start, task.seed_dist,
                              task.seed_count, bucket_max_[task.rank],
                              *task.opposite);
    }
  }

  for (const HubTask& task : tasks) {
    subtract_side_[task.rank] = 0;
    bucket_max_[task.rank] = 0;
  }
}

void DynamicSpcIndex::SubtractiveDeleteRepair(Rank hub_rank, VertexId start,
                                              uint32_t seed_dist,
                                              Count seed_count,
                                              uint32_t depth_cap,
                                              const AffectedSide& opposite) {
  // Every trough path this hub loses crosses the deleted edge once and
  // continues into the opposite region, so propagating the through-edge
  // count from the far endpoint (restricted below the hub, over the
  // post-deletion graph — the remainder of each lost path avoids the
  // edge) visits only the blast radius instead of the hub's whole
  // coverage. No pruning certificates are needed: a restricted path
  // through a covered vertex is provably longer than the entry distance
  // it would have to match. Saturated counts cannot be subtracted and
  // escalate to the full re-run, which recomputes everything this pass
  // may already have touched.
  bool escalate = seed_count == kSaturatedCount;
  if (!escalate) {
    bfs_queue_.clear();
    bfs_touched_.clear();
    bfs_dist_[start] = seed_dist;
    bfs_count_[start] = seed_count;
    bfs_queue_.push_back(start);
    bfs_touched_.push_back(start);

    for (size_t head = 0; head < bfs_queue_.size(); ++head) {
      const VertexId v = bfs_queue_[head];
      const uint32_t dv = bfs_dist_[v];

      if (opposite.flags[v] != 0) {
        const auto lv = Labels(v);
        const size_t pos = FindHubEntry(lv, hub_rank);
        if (pos < lv.size() && lv[pos].dist == dv) {
          const LabelEntry old_entry = lv[pos];
          if (old_entry.count == kSaturatedCount ||
              bfs_count_[v] >= old_entry.count) {
            // Saturation, or subtracting the last trough paths: the
            // entry must go, but `== 0` with surviving alternatives is
            // the only provable case — anything else escalates.
            if (old_entry.count != kSaturatedCount &&
                bfs_count_[v] == old_entry.count) {
              std::vector<LabelEntry>& mv = overlay_.Mutable(v);
              mv.erase(mv.begin() + static_cast<ptrdiff_t>(pos));
              ++stats_.entries_erased;
            } else {
              escalate = true;
              break;
            }
          } else {
            overlay_.Mutable(v)[pos].count = old_entry.count - bfs_count_[v];
            ++stats_.entries_renewed;
          }
        }
      }

      if (dv < depth_cap) {
        graph_.ForEachNeighbor(v, [&](VertexId w) {
          if (order_.RankOf(w) <= hub_rank) return;
          if (bfs_dist_[w] == kInfSpcDistance) {
            bfs_dist_[w] = dv + 1;
            bfs_count_[w] = bfs_count_[v];
            bfs_queue_.push_back(w);
            bfs_touched_.push_back(w);
          } else if (bfs_dist_[w] == dv + 1) {
            bfs_count_[w] = SatAdd(bfs_count_[w], bfs_count_[v]);
          }
        });
      }
    }

    for (const VertexId v : bfs_touched_) {
      bfs_dist_[v] = kInfSpcDistance;
      bfs_count_[v] = 0;
    }
    if (!escalate) ++stats_.subtract_repairs;
  }

  if (escalate) {
    RepairHubAfterDeletion(hub_rank, opposite);
  }
}

void DynamicSpcIndex::RepairHubAfterDeletion(Rank hub_rank,
                                             const AffectedSide& opposite) {
  const VertexId hub = order_.VertexAt(hub_rank);
  LoadHubDist(hub);

  // Full pruned restricted BFS from the hub over the post-deletion
  // graph — the same discipline as HP-SPC's per-hub iteration, except
  // that entries are only written at opposite-side affected vertices
  // (everything else is provably unchanged and is used for pruning and
  // count propagation only).
  bfs_queue_.clear();
  bfs_touched_.clear();
  bfs_dist_[hub] = 0;
  bfs_count_[hub] = 1;
  bfs_queue_.push_back(hub);
  bfs_touched_.push_back(hub);

  for (size_t head = 0; head < bfs_queue_.size(); ++head) {
    const VertexId v = bfs_queue_[head];
    const uint32_t dv = bfs_dist_[v];

    if (v != hub) {
      const auto lv = Labels(v);
      uint32_t over = kInfSpcDistance;  // certificate via strictly higher hubs
      size_t pos = 0;
      bool has_hub = false;
      LabelEntry old_entry{};
      for (; pos < lv.size() && lv[pos].hub_rank <= hub_rank; ++pos) {
        if (lv[pos].hub_rank == hub_rank) {
          has_hub = true;
          old_entry = lv[pos];
          break;
        }
        const uint32_t hd = hub_dist_[lv[pos].hub_rank];
        if (hd != kInfSpcDistance) {
          over = std::min(over, hd + lv[pos].dist);
        }
      }

      if (opposite.flags[v] == 0) {
        // Unaffected pair: the existing entry (if any) is still exact,
        // so the full certificate may include it.
        uint32_t certified = over;
        if (has_hub) {
          certified = std::min(certified,
                               static_cast<uint32_t>(old_entry.dist));
        }
        if (certified < dv) continue;
      } else {
        // Affected pair: the old entry cannot be trusted; prune only
        // via strictly higher hubs, then renew/insert.
        if (dv > over) continue;
        if (!has_hub) {
          std::vector<LabelEntry>& mv = overlay_.Mutable(v);
          mv.insert(mv.begin() + static_cast<ptrdiff_t>(pos),
                    {hub_rank, ToLabelDistance(dv), bfs_count_[v]});
          ++stats_.entries_inserted;
        } else if (old_entry.dist != dv || old_entry.count != bfs_count_[v]) {
          overlay_.Mutable(v)[pos] = {hub_rank, ToLabelDistance(dv),
                                      bfs_count_[v]};
          ++stats_.entries_renewed;
        }
        updated_[v] = 1;
      }
    }

    graph_.ForEachNeighbor(v, [&](VertexId w) {
      if (order_.RankOf(w) <= hub_rank) return;
      if (bfs_dist_[w] == kInfSpcDistance) {
        bfs_dist_[w] = dv + 1;
        bfs_count_[w] = bfs_count_[v];
        bfs_queue_.push_back(w);
        bfs_touched_.push_back(w);
      } else if (bfs_dist_[w] == dv + 1) {
        bfs_count_[w] = SatAdd(bfs_count_[w], bfs_count_[v]);
      }
    });
  }

  // Erasure sweep: an opposite-side vertex the re-run did not confirm
  // has lost its trough paths to this hub — its entry (when present)
  // is stale and must go. Per-vertex erases are independent, so the
  // sweep is planned cost-aware (label sizes vary wildly) and runs
  // through the shared parallel-for.
  std::vector<VertexId> to_erase;
  for (const VertexId v : opposite.touched) {
    if (order_.RankOf(v) <= hub_rank || updated_[v] != 0) continue;
    const auto lv = Labels(v);
    if (FindHubEntry(lv, hub_rank) < lv.size()) to_erase.push_back(v);
  }
  if (!to_erase.empty()) {
    std::vector<uint64_t> costs;
    costs.reserve(to_erase.size());
    for (const VertexId v : to_erase) costs.push_back(Labels(v).size());
    const SchedulePlan plan = PlanIteration(ScheduleKind::kCostAware, to_erase,
                                            costs, order_.VertexToRank());
    // Copy-on-write materialization touches the overlay map and stays
    // sequential; the erases themselves are per-vertex independent.
    std::vector<std::vector<LabelEntry>*> lists;
    lists.reserve(plan.sequence.size());
    for (const VertexId v : plan.sequence) {
      lists.push_back(&overlay_.Mutable(v));
    }
    ParallelForDynamic(lists.size(), options_.num_threads, plan.chunk,
                       [&](size_t i) {
                         std::vector<LabelEntry>& mv = *lists[i];
                         const size_t pos = FindHubEntry(
                             {mv.data(), mv.size()}, hub_rank);
                         if (pos < mv.size()) {
                           mv.erase(mv.begin() + static_cast<ptrdiff_t>(pos));
                         }
                       });
    stats_.entries_erased += lists.size();
  }

  ++stats_.affected_hubs;
  ResetHubDist(hub);
  for (const VertexId v : bfs_touched_) {
    bfs_dist_[v] = kInfSpcDistance;
    bfs_count_[v] = 0;
    updated_[v] = 0;
  }
}

}  // namespace pspc
