// Reproduces Fig. 6 (Exp 2): index size (MB) of HP-SPC, PSPC and PSPC+.
// Expected shape: all three produce comparable sizes, and PSPC ==
// PSPC+ *exactly* (the construction is thread-count independent); the
// "identical" counter asserts that equality at run time.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

void IndexSize(benchmark::State& state, const std::string& code,
               const pspc::BuildOptions& options) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(pspc::bench::GetIndex(code, options));
  }
  const pspc::BuildResult& result = pspc::bench::GetIndex(code, options);
  state.counters["size_MB"] =
      static_cast<double>(result.index.SizeBytes()) / (1024.0 * 1024.0);
  state.counters["entries"] = static_cast<double>(result.index.TotalEntries());
  state.counters["avg_label"] = result.index.AverageLabelSize();
}

void PspcSizesIdentical(benchmark::State& state, const std::string& code) {
  for (auto _ : state) {
    const auto& single =
        pspc::bench::GetIndex(code, pspc::bench::PspcOptions1Thread());
    const auto& multi =
        pspc::bench::GetIndex(code, pspc::bench::PspcOptionsAllThreads());
    state.counters["identical"] = (single.index == multi.index) ? 1.0 : 0.0;
  }
}

int RegisterAll() {
  struct Algo {
    const char* name;
    pspc::BuildOptions options;
  };
  const Algo algos[] = {
      {"HP-SPC", pspc::bench::HpSpcOptions()},
      {"PSPC", pspc::bench::PspcOptions1Thread()},
      {"PSPC+", pspc::bench::PspcOptionsAllThreads()},
  };
  for (const auto& spec : pspc::AllDatasets()) {
    for (const Algo& algo : algos) {
      benchmark::RegisterBenchmark(
          ("fig6/index_size/" + spec.code + "/" + algo.name).c_str(),
          [code = spec.code, options = algo.options](benchmark::State& s) {
            IndexSize(s, code, options);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        ("fig6/pspc_thread_independence/" + spec.code).c_str(),
        [code = spec.code](benchmark::State& s) {
          PspcSizesIdentical(s, code);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return 0;
}

static const int kRegistered = RegisterAll();

}  // namespace
