#include "src/serve/epoch_manager.h"

#include "src/common/logging.h"
#include "src/common/mutex.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace pspc {

size_t EpochManager::Enter() {
  // Per-thread first-fit hint: after the first Enter, a thread's CAS
  // almost always lands on the slot it used last time.
  static thread_local size_t hint = 0;
  const uint64_t epoch = epoch_.load(std::memory_order_seq_cst);
  for (size_t probe = 0; probe < kMaxSlots; ++probe) {
    const size_t i = (hint + probe) % kMaxSlots;
    uint64_t expected = 0;
    if (slots_[i].value.compare_exchange_strong(expected, epoch,
                                                std::memory_order_seq_cst)) {
      hint = i;
      return i;
    }
  }
  // Every lock-free slot is pinned: take an overflow pin rather than
  // abort. Each overflow reader records its own entry epoch so the
  // reclaimer's minimum keeps advancing as old readers leave, even
  // under sustained oversubscription. Recording `epoch` (loaded before
  // the sweep) is sound even if the global epoch has advanced since —
  // an older pin only makes reclamation more conservative, never less.
  if (overflow_pin_counter_ != nullptr) overflow_pin_counter_->Increment();
  spc::MutexLock lock(overflow_mu_);
  size_t idx = overflow_epochs_.size();
  for (size_t i = 0; i < overflow_epochs_.size(); ++i) {
    if (overflow_epochs_[i] == 0) {
      idx = i;
      break;
    }
  }
  if (idx == overflow_epochs_.size()) overflow_epochs_.push_back(0);
  overflow_epochs_[idx] = epoch;
  // relaxed: diagnostic count; the reclaimer's correctness rests on
  // overflow_min_'s seq_cst publication, not this tally.
  overflow_pins_.fetch_add(1, std::memory_order_relaxed);
  RefreshOverflowMin();
  if (flight_recorder_ != nullptr) {
    flight_recorder_->Record(
        obs::FlightEventKind::kEpochOverflowPin,
        // relaxed: event payload, freshness over ordering.
        overflow_pins_.load(std::memory_order_relaxed), epoch);
  }
  return kMaxSlots + idx;
}

void EpochManager::Exit(size_t slot) {
  if (IsOverflowSlot(slot)) {
    const size_t idx = slot - kMaxSlots;
    spc::MutexLock lock(overflow_mu_);
    PSPC_CHECK(idx < overflow_epochs_.size() &&
               overflow_epochs_[idx] != 0);
    overflow_epochs_[idx] = 0;
    // relaxed: see Enter — the tally is diagnostic only.
    overflow_pins_.fetch_sub(1, std::memory_order_relaxed);
    RefreshOverflowMin();
    return;
  }
  PSPC_CHECK(slot < kMaxSlots);
  // relaxed: sanity check on the caller's own slot (it wrote the pin).
  PSPC_CHECK(slots_[slot].value.load(std::memory_order_relaxed) != 0);
  slots_[slot].value.store(0, std::memory_order_seq_cst);
}

void EpochManager::RefreshOverflowMin() {
  uint64_t min = 0;
  for (const uint64_t e : overflow_epochs_) {
    if (e != 0 && (min == 0 || e < min)) min = e;
  }
  // seq_cst for the writer-scan argument: if the post-swap scan read 0
  // here, every overflow reader's epoch store (this refresh, under the
  // entering reader's lock) came after it, so that reader's snapshot
  // load saw the post-swap pointer.
  overflow_min_.store(min, std::memory_order_seq_cst);
}

uint64_t EpochManager::AdvanceEpoch() {
  return epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min = kNoActiveReader;
  const uint64_t overflow = overflow_min_.load(std::memory_order_seq_cst);
  if (overflow != 0) min = overflow;
  for (const Slot& slot : slots_) {
    const uint64_t value = slot.value.load(std::memory_order_seq_cst);
    if (value != 0 && value < min) min = value;
  }
  return min;
}

size_t EpochManager::ActiveReaders() const {
  size_t active = overflow_pins_.load(std::memory_order_seq_cst);
  for (const Slot& slot : slots_) {
    if (slot.value.load(std::memory_order_seq_cst) != 0) ++active;
  }
  return active;
}

}  // namespace pspc
