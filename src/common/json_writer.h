#ifndef PSPC_SRC_COMMON_JSON_WRITER_H_
#define PSPC_SRC_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

/// Minimal JSON emission shared by the self-contained benches'
/// `--json` summaries (`BENCH_*.json`) and the observability layer's
/// `MetricsRegistry::ToJson` snapshot, so both machine-readable
/// surfaces serialize identically. Build-only helpers — no parsing, no
/// dependency; numbers use shortest-round-trip formatting and strings
/// escape quotes/backslashes/control characters. (The `benchjson`
/// namespace name predates the move out of bench/.)
namespace pspc {
namespace benchjson {

inline std::string EscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string NumberToJson(double value) {
  std::ostringstream oss;
  oss.precision(12);
  oss << value;
  const std::string s = oss.str();
  // JSON has no Infinity/NaN; clamp to null.
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "null";
  }
  return s;
}

/// Key-ordered JSON object under construction. Values are either
/// scalars or pre-serialized JSON (nested objects/arrays via AddRaw).
class Object {
 public:
  Object& Add(const std::string& key, double value) {
    return AddRaw(key, NumberToJson(value));
  }
  Object& Add(const std::string& key, uint64_t value) {
    return AddRaw(key, std::to_string(value));
  }
  Object& Add(const std::string& key, int value) {
    return AddRaw(key, std::to_string(value));
  }
  Object& Add(const std::string& key, int64_t value) {
    return AddRaw(key, std::to_string(value));
  }
  Object& Add(const std::string& key, bool value) {
    return AddRaw(key, value ? "true" : "false");
  }
  Object& Add(const std::string& key, const std::string& value) {
    // Built via append rather than `"\"" + s + "\""`: the char*+rvalue
    // operator+ chain trips GCC 12's -Wrestrict false positive
    // (PR105651) at every inlined call site.
    std::string quoted = "\"";
    quoted += EscapeString(value);
    quoted += '"';
    return AddRaw(key, quoted);
  }
  Object& Add(const std::string& key, const char* value) {
    return Add(key, std::string(value));
  }
  Object& AddRaw(const std::string& key, const std::string& json) {
    fields_.emplace_back(key, json);
    return *this;
  }

  std::string Serialize() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i != 0) out += ",";
      out += '"';
      out += EscapeString(fields_[i].first);
      out += "\":";
      out += fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// JSON array of pre-serialized elements.
class Array {
 public:
  Array& Add(const Object& object) { return AddRaw(object.Serialize()); }
  Array& AddRaw(const std::string& json) {
    elements_.push_back(json);
    return *this;
  }

  std::string Serialize() const {
    std::string out = "[";
    for (size_t i = 0; i < elements_.size(); ++i) {
      if (i != 0) out += ",";
      out += elements_[i];
    }
    out += "]";
    return out;
  }

 private:
  std::vector<std::string> elements_;
};

/// Writes `root` to `path` (trailing newline included). Prints to
/// stderr and returns false on I/O failure.
inline bool WriteFile(const std::string& path, const Object& root) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "--json: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::string json = root.Serialize();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size()
                  && std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "--json: write failed for %s\n", path.c_str());
  return ok;
}

}  // namespace benchjson
}  // namespace pspc

#endif  // PSPC_SRC_COMMON_JSON_WRITER_H_
