#include "src/order/significant_path_order.h"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace pspc {
namespace {

struct DistLabel {
  Rank hub_rank;
  Distance dist;
};

}  // namespace

VertexOrder SignificantPathOrder(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<Rank> rank(n, kInvalidRank);
  std::vector<VertexId> order;
  order.reserve(n);

  std::vector<std::vector<DistLabel>> labels(n);
  // tmp[r] = distance from the current hub to the vertex of rank r's
  // hub entry; kInfDistance when absent.
  std::vector<Distance> tmp(n + 1, kInfDistance);

  // Fallback pool: vertices by descending degree.
  std::vector<VertexId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), VertexId{0});
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&graph](VertexId a, VertexId b) {
                     return graph.Degree(a) > graph.Degree(b);
                   });
  size_t fallback_cursor = 0;
  auto next_fallback = [&]() -> VertexId {
    while (fallback_cursor < by_degree.size() &&
           rank[by_degree[fallback_cursor]] != kInvalidRank) {
      ++fallback_cursor;
    }
    PSPC_CHECK(fallback_cursor < by_degree.size());
    return by_degree[fallback_cursor];
  };

  // Per-BFS scratch.
  std::vector<Distance> bfs_dist(n, kInfDistance);
  std::vector<VertexId> parent(n, kInvalidVertex);
  std::vector<VertexId> visited;          // in visit order
  std::vector<VertexId> frontier, next_frontier;
  std::vector<VertexId> subtree_size(n, 0);
  std::vector<VertexId> best_child(n, kInvalidVertex);

  VertexId next_hub = kInvalidVertex;
  for (Rank i = 0; i < n; ++i) {
    const VertexId h =
        (next_hub != kInvalidVertex && rank[next_hub] == kInvalidRank)
            ? next_hub
            : next_fallback();
    rank[h] = i;
    order.push_back(h);
    next_hub = kInvalidVertex;

    // Preload the hub's labels (and its own rank) for 2-hop queries.
    for (const DistLabel& l : labels[h]) tmp[l.hub_rank] = l.dist;
    tmp[i] = 0;

    // Pruned BFS from h over not-yet-ordered vertices. Mirrors the
    // HP-SPC counting builder: prune strictly (query < d); at equality
    // the label is still created and expansion continues, so the tree
    // matches the tree the SPC builder would produce.
    visited.clear();
    frontier.clear();
    bfs_dist[h] = 0;
    Distance d = 0;
    frontier.push_back(h);
    while (!frontier.empty()) {
      ++d;
      next_frontier.clear();
      for (VertexId u : frontier) {
        for (VertexId v : graph.Neighbors(u)) {
          if (rank[v] != kInvalidRank) continue;  // already ordered
          if (bfs_dist[v] != kInfDistance) continue;
          // 2-hop query against the current index.
          Distance q = kInfDistance;
          for (const DistLabel& l : labels[v]) {
            if (tmp[l.hub_rank] != kInfDistance) {
              q = std::min<Distance>(
                  q, static_cast<Distance>(tmp[l.hub_rank] + l.dist));
            }
          }
          if (q < d) continue;  // pruned: covered by a higher hub
          bfs_dist[v] = d;
          parent[v] = u;
          labels[v].push_back({i, d});
          visited.push_back(v);
          next_frontier.push_back(v);
        }
      }
      frontier.swap(next_frontier);
    }

    // Subtree sizes over the partial SP tree, reverse visit order.
    for (VertexId v : visited) {
      subtree_size[v] = 1;
      best_child[v] = kInvalidVertex;
    }
    subtree_size[h] = 1;
    best_child[h] = kInvalidVertex;
    for (auto it = visited.rbegin(); it != visited.rend(); ++it) {
      const VertexId v = *it;
      const VertexId p = parent[v];
      subtree_size[p] += subtree_size[v];
      if (best_child[p] == kInvalidVertex ||
          subtree_size[v] > subtree_size[best_child[p]]) {
        best_child[p] = v;
      }
    }

    // Walk the significant path and score candidates:
    // deg(v) * (des(parent(v)) - des(v)).
    VertexId best = kInvalidVertex;
    uint64_t best_score = 0;
    for (VertexId v = best_child[h]; v != kInvalidVertex;
         v = best_child[v]) {
      const uint64_t score =
          static_cast<uint64_t>(graph.Degree(v)) *
          (subtree_size[parent[v]] - subtree_size[v]);
      if (best == kInvalidVertex || score > best_score) {
        best = v;
        best_score = score;
      }
    }
    next_hub = best;

    // Reset scratch touched this iteration.
    for (const DistLabel& l : labels[h]) tmp[l.hub_rank] = kInfDistance;
    tmp[i] = kInfDistance;
    bfs_dist[h] = kInfDistance;
    for (VertexId v : visited) {
      bfs_dist[v] = kInfDistance;
      parent[v] = kInvalidVertex;
    }
  }
  return VertexOrder(std::move(order));
}

}  // namespace pspc
