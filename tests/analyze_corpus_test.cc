#include <algorithm>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "tools/analyze_passes.h"

/// The spc_analyze golden corpus: each mini-tree under
/// tests/analyze_corpus/ carries its own tools/lock_hierarchy.txt +
/// tools/layer_dag.txt and must produce exactly the expected
/// (file, rule, line) diagnostics — and the real tree must analyze
/// clean (the same invariant the CI spc_analyze lane enforces by
/// running the binary).
namespace {

namespace fs = std::filesystem;

fs::path SourceRoot() { return fs::path(PSPC_SOURCE_ROOT); }

fs::path CorpusRoot(const std::string& name) {
  return SourceRoot() / "tests" / "analyze_corpus" / name;
}

using Finding = std::tuple<std::string, std::string, size_t>;

/// (file, rule, line) triples, sorted, for golden comparison.
std::vector<Finding> Summarize(
    const std::vector<spclint::Violation>& violations) {
  std::vector<Finding> out;
  out.reserve(violations.size());
  for (const spclint::Violation& v : violations) {
    out.emplace_back(v.file, v.rule, v.line);
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct AnalyzeCase {
  const char* corpus_dir;  // under tests/analyze_corpus/
  std::vector<Finding> expected;
};

class AnalyzeCorpusTest : public ::testing::TestWithParam<AnalyzeCase> {};

TEST_P(AnalyzeCorpusTest, FiresExactlyTheExpectedDiagnostics) {
  const AnalyzeCase& c = GetParam();
  std::string error;
  const spcanalyze::AnalyzeResult result =
      spcanalyze::AnalyzeTree(CorpusRoot(c.corpus_dir), &error);
  ASSERT_TRUE(error.empty()) << error;
  std::vector<Finding> expected = c.expected;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(Summarize(result.violations), expected) << c.corpus_dir;
  for (const spclint::Violation& v : result.violations) {
    EXPECT_FALSE(v.message.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Golden, AnalyzeCorpusTest,
    ::testing::Values(
        // The acceptance case: a lock-order inversion between the
        // SnapshotManager and EpochManager mutexes — Publish holds
        // mu_ and (transitively) takes overflow_mu_, Enter holds
        // overflow_mu_ and (transitively) takes mu_.
        AnalyzeCase{"lock_cycle",
                    {{"src/serve/epoch_manager.cc", "lock-cycle", 7},
                     {"src/serve/epoch_manager.cc", "lock-hierarchy", 7},
                     {"src/serve/snapshot_manager.cc", "lock-cycle", 8}}},
        AnalyzeCase{"lock_self",
                    {{"src/core/worker.cc", "lock-cycle", 7},
                     {"src/core/worker.cc", "lock-cycle", 13}}},
        AnalyzeCase{"pin_escape",
                    {{"src/serve/pin_cache.h", "pin-escape", 11},
                     {"src/serve/pin_cache.h", "pin-escape", 12},
                     {"src/serve/pin_use.cc", "pin-escape", 6},
                     {"src/serve/pin_use.cc", "pin-escape", 8}}},
        AnalyzeCase{"must_use",
                    {{"src/label/store.cc", "must-use", 5},
                     {"src/label/store.cc", "must-use", 15}}},
        AnalyzeCase{"layering",
                    {{"src/common/util.h", "layer-back-edge", 2},
                     {"src/rogue/thing.h", "layer-unknown", 1},
                     {"src/serve/engine.h", "layer-unknown", 3}}},
        AnalyzeCase{"lock_unregistered",
                    {{"src/serve/cachelet.h", "lock-unregistered", 9},
                     {"src/serve/cachelet.h", "lock-unregistered", 18}}},
        AnalyzeCase{"clean", {}}),
    [](const ::testing::TestParamInfo<AnalyzeCase>& info) {
      return std::string(info.param.corpus_dir);
    });

TEST(AnalyzeModelTest, ParsesAnnotationsAndMembers) {
  const std::vector<std::pair<std::string, std::string>> sources = {
      {"src/serve/widget.h",
       "class Widget {\n"
       " public:\n"
       "  void Tick() REQUIRES(mu_);\n"
       "  void Poke() EXCLUDES(mu_);\n"
       "\n"
       " private:\n"
       "  spc::Mutex mu_;\n"
       "  int count_ GUARDED_BY(mu_) = 0;\n"
       "};\n"}};
  const spcanalyze::Model model = spcanalyze::BuildModel(sources);
  ASSERT_EQ(model.classes_by_name.count("Widget"), 1u);
  const spcanalyze::ClassModel& cls = *model.classes_by_name.at("Widget");
  ASSERT_EQ(cls.members.size(), 2u);
  EXPECT_TRUE(cls.members[0].is_mutex);
  EXPECT_EQ(cls.members[1].name, "count_");
  EXPECT_EQ(cls.members[1].guarded_by, "mu_");
  bool saw_requires = false;
  auto [lo, hi] = model.functions_by_name.equal_range("Tick");
  for (auto it = lo; it != hi; ++it) {
    if (!it->second->requires_args.empty()) {
      EXPECT_EQ(it->second->requires_args[0], "mu_");
      saw_requires = true;
    }
  }
  EXPECT_TRUE(saw_requires);
}

TEST(AnalyzeConfigTest, ParsesLockHierarchyAndLayerDag) {
  const std::vector<std::string> locks = spcanalyze::ParseLockHierarchy(
      "# comment\n"
      "A::mu_\n"
      "\n"
      "  B::mu_   # trailing comment\n");
  ASSERT_EQ(locks.size(), 2u);
  EXPECT_EQ(locks[0], "A::mu_");
  EXPECT_EQ(locks[1], "B::mu_");

  const std::vector<std::vector<std::string>> layers =
      spcanalyze::ParseLayerDag(
          "# comment\n"
          "layer src/common\n"
          "layer src/graph src/label\n");
  ASSERT_EQ(layers.size(), 2u);
  EXPECT_EQ(layers[1].size(), 2u);
  EXPECT_EQ(layers[1][1], "src/label");
}

TEST(AnalyzeReportTest, JsonEscapesAndListsEdges) {
  spcanalyze::AnalyzeResult result;
  result.violations.push_back({"a.cc", 3, "must-use", "say \"hi\""});
  result.lock_edges.push_back({"A::mu_", "B::mu_", "a.cc", 2});
  const std::string json = spcanalyze::ReportJson(result);
  EXPECT_NE(json.find("\"rule\":\"must-use\""), std::string::npos);
  EXPECT_NE(json.find("say \\\"hi\\\""), std::string::npos);
  EXPECT_NE(json.find("\"from\":\"A::mu_\""), std::string::npos);
}

/// The whole point: the shipped tree satisfies its own cross-file
/// protocols (and the observed lock graph is non-degenerate — the
/// writer path really does nest the update-trace lock).
TEST(AnalyzeCleanTreeTest, RepositoryAnalyzesClean) {
  std::string error;
  const spcanalyze::AnalyzeResult result =
      spcanalyze::AnalyzeTree(SourceRoot(), &error);
  EXPECT_TRUE(error.empty()) << error;
  for (const spclint::Violation& v : result.violations) {
    ADD_FAILURE() << v.file << ":" << v.line << ": [" << v.rule << "] "
                  << v.message;
  }
  bool saw_writer_edge = false;
  for (const spcanalyze::LockEdge& e : result.lock_edges) {
    if (e.from == "ServingEngine::writer_mu_") saw_writer_edge = true;
  }
  EXPECT_TRUE(saw_writer_edge);
}

}  // namespace
