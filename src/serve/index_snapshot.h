#ifndef PSPC_SRC_SERVE_INDEX_SNAPSHOT_H_
#define PSPC_SRC_SERVE_INDEX_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>

#include "src/common/types.h"
#include "src/digraph/dspc_index.h"
#include "src/dynamic/chunked_overlay.h"
#include "src/label/label_entry.h"
#include "src/label/label_merge_simd.h"
#include "src/label/packed_label.h"
#include "src/label/spc_index.h"

/// An immutable, queryable freeze of a dynamic-index generation —
/// undirected (`DynamicSpcIndex`) or directed (`DynamicDspcIndex`).
///
/// Capture shares the base index (a `shared_ptr`, so a later staleness
/// rebuild cannot free it while an epoch still reads it) and freezes
/// the persistent chunked overlay into an `OverlayView` — for the
/// directed index, one view per label side. A view freeze is one
/// `shared_ptr` copy of the page directory, under which every vertex
/// untouched since the previous capture aliases the prior snapshot's
/// label chunk. Capture cost is therefore O(vertices repaired since
/// the last capture), not O(overlay) — the map-copy design this
/// replaced deep-copied every overlaid vertex on every publish. After
/// construction a snapshot is never written again (the writer unshares
/// chunks before mutating them), so any number of reader threads may
/// query it without synchronization; answers are exact for the graph
/// as of the captured generation. Destroying a snapshot releases its
/// page and chunk references, which is how retired generations give
/// their memory back (see `SnapshotManager::Reclaim`).
namespace pspc {

class DynamicSpcIndex;
class DynamicDspcIndex;

class IndexSnapshot {
 public:
  /// Freezes the current labels of `index` and advances the overlay's
  /// capture boundary. Must be called from the thread that owns the
  /// index's write path (the same thread of control that applies
  /// updates).
  static std::unique_ptr<const IndexSnapshot> Capture(
      DynamicSpcIndex& index);

  /// Directed capture: freezes both label-side overlays (each O(delta
  /// since its previous capture)) plus the shared base.
  static std::unique_ptr<const IndexSnapshot> Capture(
      DynamicDspcIndex& index);

  /// Distance and exact shortest-path count on the captured graph
  /// generation — the same merge semantics as every other label
  /// container, served from the packed representation when the capture
  /// carries one. Directed snapshots answer the directed query s -> t.
  SpcResult Query(VertexId s, VertexId t) const;

  /// `Query` plus an accounting of the label bytes the merge streamed
  /// (both sides, packed when packed-backed) — what the
  /// `serve.label_bytes.*` metrics record per request.
  SpcResult QueryMeasured(VertexId s, VertexId t, size_t* merged_bytes) const;

  /// True iff this snapshot froze a directed index.
  bool IsDirected() const { return directed_base_ != nullptr; }

  /// Labels of `v` as of an *undirected* capture, rank-sorted.
  std::span<const LabelEntry> Labels(VertexId v) const {
    const LabelChunk* chunk = overlay_.Chunk(v);
    return chunk != nullptr ? ChunkSpan(*chunk) : base_->Labels(v);
  }

  /// Out/in labels of `v` as of a *directed* capture, rank-sorted.
  std::span<const LabelEntry> OutLabels(VertexId v) const {
    const LabelChunk* chunk = out_overlay_.Chunk(v);
    return chunk != nullptr ? ChunkSpan(*chunk)
                            : directed_base_->OutLabels(v);
  }
  std::span<const LabelEntry> InLabels(VertexId v) const {
    const LabelChunk* chunk = overlay_.Chunk(v);
    return chunk != nullptr ? ChunkSpan(*chunk) : directed_base_->InLabels(v);
  }

  /// Generation counter of the captured index state.
  uint64_t Generation() const { return generation_; }

  VertexId NumVertices() const { return num_vertices_; }
  EdgeId NumEdges() const { return num_edges_; }

  /// Vertices held out-of-line as of the capture (directed: summed
  /// over both label sides).
  size_t OverlaidVertices() const {
    return overlay_.OverlaidVertices() + out_overlay_.OverlaidVertices();
  }

  /// Vertices whose label chunk was (re)copied since the previous
  /// capture — the publish-cost delta this snapshot actually paid
  /// (directed: summed over both label sides). Everything else aliases
  /// the prior snapshot's chunks.
  size_t CopiedVertices() const {
    return overlay_.CopiedVertices() + out_overlay_.CopiedVertices();
  }

 private:
  IndexSnapshot() = default;

  /// Labels of `v` in merge-ready form, preferring packed
  /// representations: an overlaid chunk's packed twin (attached by
  /// compaction), then the packed base mirror, then the raw spans.
  LabelSource Source(VertexId v) const {
    if (const LabelChunk* chunk = overlay_.Chunk(v)) {
      if (!chunk->packed.empty()) {
        return LabelSource::Packed(PackedBlockView(chunk->packed.data()));
      }
      return LabelSource::Raw(ChunkSpan(*chunk));
    }
    if (packed_base_ != nullptr) {
      return LabelSource::Packed(packed_base_->Block(v));
    }
    return LabelSource::Raw(base_->Labels(v));
  }

  // Undirected capture: `base_` + `packed_base_` + `overlay_`.
  // Directed capture: `directed_base_` + `overlay_` (in side) +
  // `out_overlay_`.
  std::shared_ptr<const SpcIndex> base_;
  std::shared_ptr<const PackedLabelMap> packed_base_;
  std::shared_ptr<const DiSpcIndex> directed_base_;
  OverlayView overlay_;
  OverlayView out_overlay_;
  uint64_t generation_ = 0;
  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
};

}  // namespace pspc

#endif  // PSPC_SRC_SERVE_INDEX_SNAPSHOT_H_
