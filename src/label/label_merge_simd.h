#ifndef PSPC_SRC_LABEL_LABEL_MERGE_SIMD_H_
#define PSPC_SRC_LABEL_LABEL_MERGE_SIMD_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <span>

#include "src/common/saturating.h"
#include "src/common/types.h"
#include "src/label/label_entry.h"
#include "src/label/label_merge.h"
#include "src/label/packed_label.h"

#if defined(__x86_64__) || defined(__i386__)
#define PSPC_MERGE_X86 1
#include <immintrin.h>
#endif

/// Vectorized galloping label merge — the instruction half of the
/// memory-bandwidth query path (packed_label.h is the bytes half).
///
/// The scalar `MergeLabelCounts` advances one entry per iteration even
/// when one side must skip dozens of non-matching hubs. The kernels
/// here keep the *accumulation* arithmetic exactly as written there —
/// equal-rank pairs are visited in the same ascending order with the
/// same `SatMul`/`SatAdd` updates, so results are bit-identical — and
/// vectorize only the *skip*: count how many of the next 8 sorted
/// ranks sit below the other side's current rank with one SIMD
/// compare+movemask (AVX2 / SSE) or a branchless unrolled
/// word-at-a-time pass (the portable SWAR-style fallback).
///
/// Kernel selection is at runtime: `__builtin_cpu_supports` picks the
/// widest available lane, `PSPC_MERGE_KERNEL=scalar|swar|sse|avx2`
/// overrides it, and `SetMergeKernel` forces one programmatically (the
/// differential tests sweep all of them). Merges run against raw
/// `LabelEntry` spans, packed blocks (`PackedBlockView`), or any mix —
/// packed sides additionally gallop over *whole groups* via the skip
/// table without ever decoding them.
namespace pspc {

enum class MergeKernel : int { kScalar = 0, kSwar = 1, kSse = 2, kAvx2 = 3 };

inline const char* MergeKernelName(MergeKernel k) {
  switch (k) {
    case MergeKernel::kScalar:
      return "scalar";
    case MergeKernel::kSwar:
      return "swar";
    case MergeKernel::kSse:
      return "sse";
    case MergeKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

/// Per-kernel primitives. Both operate on exactly 8 sorted ranks and
/// return how many are strictly below `bound` (== the index of the
/// first rank >= `bound`, because the window is sorted).
struct MergeKernelOps {
  int (*count_below8)(const uint32_t* ranks, uint32_t bound);
  int (*count_entry_below8)(const LabelEntry* entries, uint32_t bound);
};

namespace merge_detail {

inline int CountBelow8Scalar(const uint32_t* r, uint32_t bound) {
  int c = 0;
  while (c < 8 && r[c] < bound) ++c;
  return c;
}

inline int CountEntryBelow8Scalar(const LabelEntry* e, uint32_t bound) {
  int c = 0;
  while (c < 8 && e[c].hub_rank < bound) ++c;
  return c;
}

// Portable fallback: word-at-a-time loads, branchless compare
// accumulation — no data-dependent branches inside the window, which
// is what makes skipping through long runs cheap without SIMD.
inline int CountBelow8Swar(const uint32_t* r, uint32_t bound) {
  uint64_t w[4];
  std::memcpy(w, r, sizeof(w));
  int c = 0;
  for (int i = 0; i < 4; ++i) {
    c += static_cast<int>(static_cast<uint32_t>(w[i]) < bound);
    c += static_cast<int>(static_cast<uint32_t>(w[i] >> 32) < bound);
  }
  return c;
}

inline int CountEntryBelow8Swar(const LabelEntry* e, uint32_t bound) {
  int c = 0;
  for (int i = 0; i < 8; ++i) c += static_cast<int>(e[i].hub_rank < bound);
  return c;
}

#if defined(PSPC_MERGE_X86)

// Ranks are unsigned; bias by 0x80000000 so the signed SIMD compare
// preserves unsigned order across the full 32-bit range.
inline int CountBelow8Sse(const uint32_t* r, uint32_t bound) {
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i vb = _mm_xor_si128(_mm_set1_epi32(static_cast<int>(bound)), bias);
  const __m128i lo =
      _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(r)), bias);
  const __m128i hi = _mm_xor_si128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(r + 4)), bias);
  const int m0 = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmplt_epi32(lo, vb)));
  const int m1 = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmplt_epi32(hi, vb)));
  return __builtin_popcount(static_cast<unsigned>(m0 | (m1 << 4)));
}

inline int CountEntryBelow8Sse(const LabelEntry* e, uint32_t bound) {
  // AoS ranks sit 16 bytes apart; pack two xmm lanes by hand.
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i vb = _mm_xor_si128(_mm_set1_epi32(static_cast<int>(bound)), bias);
  const __m128i lo = _mm_xor_si128(
      _mm_set_epi32(static_cast<int>(e[3].hub_rank), static_cast<int>(e[2].hub_rank),
                    static_cast<int>(e[1].hub_rank), static_cast<int>(e[0].hub_rank)),
      bias);
  const __m128i hi = _mm_xor_si128(
      _mm_set_epi32(static_cast<int>(e[7].hub_rank), static_cast<int>(e[6].hub_rank),
                    static_cast<int>(e[5].hub_rank), static_cast<int>(e[4].hub_rank)),
      bias);
  const int m0 = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmplt_epi32(lo, vb)));
  const int m1 = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmplt_epi32(hi, vb)));
  return __builtin_popcount(static_cast<unsigned>(m0 | (m1 << 4)));
}

__attribute__((target("avx2"))) inline int CountBelow8Avx2(const uint32_t* r,
                                                           uint32_t bound) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vb =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(bound)), bias);
  const __m256i vr = _mm256_xor_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r)), bias);
  // x < bound  <=>  bound > x (signed, post-bias).
  const int m = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(vb, vr)));
  return __builtin_popcount(static_cast<unsigned>(m));
}

__attribute__((target("avx2"))) inline int CountEntryBelow8Avx2(
    const LabelEntry* e, uint32_t bound) {
  // Gather the 8 hub ranks out of the 16-byte-strided AoS layout
  // (stride of 4 dwords) in one instruction.
  static_assert(sizeof(LabelEntry) == 16);
  const __m256i idx = _mm256_setr_epi32(0, 4, 8, 12, 16, 20, 24, 28);
  const __m256i vr0 = _mm256_i32gather_epi32(
      reinterpret_cast<const int*>(&e->hub_rank), idx, 4);
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vb =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(bound)), bias);
  const __m256i vr = _mm256_xor_si256(vr0, bias);
  const int m = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(vb, vr)));
  return __builtin_popcount(static_cast<unsigned>(m));
}

#endif  // PSPC_MERGE_X86

inline const MergeKernelOps& OpsFor(MergeKernel k) {
  static constexpr MergeKernelOps kScalarOps{CountBelow8Scalar,
                                             CountEntryBelow8Scalar};
  static constexpr MergeKernelOps kSwarOps{CountBelow8Swar, CountEntryBelow8Swar};
#if defined(PSPC_MERGE_X86)
  static constexpr MergeKernelOps kSseOps{CountBelow8Sse, CountEntryBelow8Sse};
  static constexpr MergeKernelOps kAvx2Ops{CountBelow8Avx2, CountEntryBelow8Avx2};
  switch (k) {
    case MergeKernel::kScalar:
      return kScalarOps;
    case MergeKernel::kSwar:
      return kSwarOps;
    case MergeKernel::kSse:
      return kSseOps;
    case MergeKernel::kAvx2:
      return kAvx2Ops;
  }
  return kScalarOps;
#else
  return k == MergeKernel::kScalar ? kScalarOps : kSwarOps;
#endif
}

// -1 = not yet selected. Kernel choice is a pure performance hint:
// every kernel produces bit-identical results (the differential suite
// proves it), so racing readers may observe either the old or new
// value with no effect on output — relaxed ordering is sufficient.
inline std::atomic<int> g_forced_kernel{-1};

}  // namespace merge_detail

inline bool MergeKernelSupported(MergeKernel k) {
  switch (k) {
    case MergeKernel::kScalar:
    case MergeKernel::kSwar:
      return true;
    case MergeKernel::kSse:
#if defined(PSPC_MERGE_X86)
      return __builtin_cpu_supports("sse2") != 0;
#else
      return false;
#endif
    case MergeKernel::kAvx2:
#if defined(PSPC_MERGE_X86)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

/// Forces a kernel for benches/tests (pass an unsupported one and the
/// selection falls back to the best supported lane).
inline void SetMergeKernel(MergeKernel k) {
  // See g_forced_kernel: any kernel yields identical results, so the
  // cross-thread visibility of this hint does not affect correctness
  // and relaxed ordering suffices.
  merge_detail::g_forced_kernel.store(
      MergeKernelSupported(k) ? static_cast<int>(k) : -1,
      std::memory_order_relaxed);
}

/// Clears any forced kernel; selection returns to auto-detection.
inline void ResetMergeKernel() {
  // See g_forced_kernel for why relaxed ordering is sufficient here.
  merge_detail::g_forced_kernel.store(-1, std::memory_order_relaxed);
}

inline MergeKernel ActiveMergeKernel() {
  // See g_forced_kernel for why relaxed ordering is sufficient here.
  const int forced = merge_detail::g_forced_kernel.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<MergeKernel>(forced);
  static const MergeKernel kDetected = [] {
    if (const char* env = std::getenv("PSPC_MERGE_KERNEL")) {
      for (MergeKernel k : {MergeKernel::kScalar, MergeKernel::kSwar,
                            MergeKernel::kSse, MergeKernel::kAvx2}) {
        if (std::strcmp(env, MergeKernelName(k)) == 0 && MergeKernelSupported(k)) {
          return k;
        }
      }
    }
    if (MergeKernelSupported(MergeKernel::kAvx2)) return MergeKernel::kAvx2;
    if (MergeKernelSupported(MergeKernel::kSse)) return MergeKernel::kSse;
    return MergeKernel::kSwar;
  }();
  return kDetected;
}

namespace merge_detail {

/// Cursor over a raw rank-sorted `LabelEntry` span.
class RawCursor {
 public:
  RawCursor(std::span<const LabelEntry> s, const MergeKernelOps& ops)
      : p_(s.data()), n_(s.size()), ops_(&ops) {}

  bool AtEnd() const { return i_ >= n_; }
  uint32_t CurRank() const { return p_[i_].hub_rank; }
  uint16_t CurDist() const { return p_[i_].dist; }
  Count CurCount() const { return p_[i_].count; }
  void Next() { ++i_; }

  // Advances past every entry with rank < bound.
  void SkipBelow(uint32_t bound) {
    while (n_ - i_ >= 8) {
      const int c = ops_->count_entry_below8(p_ + i_, bound);
      i_ += static_cast<size_t>(c);
      if (c < 8) return;
    }
    while (i_ < n_ && p_[i_].hub_rank < bound) ++i_;
  }

 private:
  const LabelEntry* p_;
  size_t n_;
  size_t i_ = 0;
  const MergeKernelOps* ops_;
};

/// Cursor over a packed block. Groups that the merge skips entirely
/// are never decoded — the skip table alone drives the gallop — which
/// is where the bandwidth saving on disjoint label regions comes from.
class PackedCursor {
 public:
  PackedCursor(PackedBlockView view, const MergeKernelOps& ops)
      : view_(view), ngroups_(view.NumGroups()), ops_(&ops) {
    if (ngroups_ > 0) view_.DecodeGroup(0, &grp_);
  }

  bool AtEnd() const { return g_ >= ngroups_; }
  uint32_t CurRank() const { return grp_.ranks[k_]; }
  uint16_t CurDist() const { return grp_.dists[k_]; }
  Count CurCount() const { return grp_.counts[k_]; }

  void Next() {
    if (++k_ == grp_.n) {
      k_ = 0;
      if (++g_ < ngroups_) view_.DecodeGroup(g_, &grp_);
    }
  }

  void SkipBelow(uint32_t bound) {
    // Gallop over whole groups first: group g's ranks are all below
    // group g+1's first rank, so if first_rank(g+1) <= bound the whole
    // of group g is < bound and can be skipped without decoding.
    if (g_ + 1 < ngroups_ && view_.GroupFirstRank(g_ + 1) <= bound) {
      uint32_t lo = g_ + 1;
      uint32_t hi = ngroups_;
      while (hi - lo > 1) {
        const uint32_t mid = lo + (hi - lo) / 2;
        if (view_.GroupFirstRank(mid) <= bound) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      g_ = lo;
      k_ = 0;
      view_.DecodeGroup(g_, &grp_);
    }
    // In-group: SoA ranks are contiguous, so full groups take the
    // SIMD count directly.
    if (grp_.n == kPackedGroupSize) {
      k_ = static_cast<uint32_t>(ops_->count_below8(grp_.ranks, bound));
    } else {
      while (k_ < grp_.n && grp_.ranks[k_] < bound) ++k_;
    }
    if (k_ >= grp_.n) {
      k_ = 0;
      if (++g_ < ngroups_) view_.DecodeGroup(g_, &grp_);
    }
  }

 private:
  PackedBlockView view_;
  uint32_t ngroups_;
  uint32_t g_ = 0;
  uint32_t k_ = 0;
  PackedGroup grp_;
  const MergeKernelOps* ops_;
};

/// The one merge loop every kernel/layout combination shares. The
/// accumulation is literally `MergeLabelCounts`'s: equal-rank pairs
/// arrive in ascending rank order and go through the same
/// `SatMul`/`SatAdd` updates, so the result is bit-identical no matter
/// which cursors or skip kernels drive it.
template <typename CursorA, typename CursorB>
inline SpcResult MergeCursors(CursorA a, CursorB b) {
  uint32_t best = kInfSpcDistance;
  Count count = 0;
  while (!a.AtEnd() && !b.AtEnd()) {
    const uint32_t ra = a.CurRank();
    const uint32_t rb = b.CurRank();
    if (ra == rb) {
      const uint32_t d =
          static_cast<uint32_t>(a.CurDist()) + static_cast<uint32_t>(b.CurDist());
      if (d < best) {
        best = d;
        count = SatMul(a.CurCount(), b.CurCount());
      } else if (d == best) {
        count = SatAdd(count, SatMul(a.CurCount(), b.CurCount()));
      }
      a.Next();
      b.Next();
    } else if (ra < rb) {
      a.SkipBelow(rb);
    } else {
      b.SkipBelow(ra);
    }
  }
  if (best == kInfSpcDistance) return {kInfSpcDistance, 0};
  return {best, count};
}

}  // namespace merge_detail

/// Drop-in vectorized replacement for `MergeLabelCounts` on raw spans.
inline SpcResult MergeLabelCountsFast(std::span<const LabelEntry> ls,
                                      std::span<const LabelEntry> lt) {
  const MergeKernelOps& ops = merge_detail::OpsFor(ActiveMergeKernel());
  return merge_detail::MergeCursors(merge_detail::RawCursor(ls, ops),
                                    merge_detail::RawCursor(lt, ops));
}

/// One side of a merge: either a raw span or a packed block. The
/// serving layer builds these per vertex (overlay chunk, packed base,
/// or raw base) without caring which representation backs it.
struct LabelSource {
  std::span<const LabelEntry> raw;
  PackedBlockView packed;  // wins over `raw` when valid

  static LabelSource Raw(std::span<const LabelEntry> s) { return {s, {}}; }
  static LabelSource Packed(PackedBlockView v) { return {{}, v}; }

  size_t NumEntries() const {
    return packed.valid() ? packed.NumEntries() : raw.size();
  }

  /// Bytes a merge streams for this side — the quantity the
  /// `serve.label_bytes.*` metrics and bench rows account.
  size_t SizeBytes() const {
    return packed.valid() ? packed.SizeBytes() : raw.size_bytes();
  }
};

/// Merges any two label sources with the active kernel; bit-identical
/// to `MergeLabelCounts` over the decoded entries.
inline SpcResult MergeLabelSources(const LabelSource& a, const LabelSource& b) {
  using merge_detail::MergeCursors;
  using merge_detail::PackedCursor;
  using merge_detail::RawCursor;
  const MergeKernelOps& ops = merge_detail::OpsFor(ActiveMergeKernel());
  if (a.packed.valid()) {
    if (b.packed.valid()) {
      return MergeCursors(PackedCursor(a.packed, ops), PackedCursor(b.packed, ops));
    }
    return MergeCursors(PackedCursor(a.packed, ops), RawCursor(b.raw, ops));
  }
  if (b.packed.valid()) {
    return MergeCursors(RawCursor(a.raw, ops), PackedCursor(b.packed, ops));
  }
  return MergeCursors(RawCursor(a.raw, ops), RawCursor(b.raw, ops));
}

}  // namespace pspc

#endif  // PSPC_SRC_LABEL_LABEL_MERGE_SIMD_H_
