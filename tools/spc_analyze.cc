// spc_analyze: cross-file semantic analysis over the repository.
//
// Where spc_lint checks token-level invariants file by file, spc_analyze
// builds a whole-tree model (classes, annotated members, functions, an
// approximate call graph, the #include graph — see tools/analyze_model.h)
// and checks the cross-file protocols no single translation unit can see:
//
//   lock-cycle / lock-hierarchy / lock-unregistered
//       acquisition-order graph from nested spc::MutexLock scopes and
//       REQUIRES edges; cycles are potential deadlocks; the observed
//       order must match tools/lock_hierarchy.txt
//   pin-escape
//       SnapshotRef and other ACQUIRE-style RAII capabilities must not
//       be stored in members, containers, or lambda captures that
//       outlive the acquiring scope without an explicit Release()
//   must-use
//       Status / Result returns must be consumed (the tree-wide twin of
//       [[nodiscard]] in src/common/status.h)
//   layer-back-edge / layer-unknown
//       #include edges must respect the layer DAG in tools/layer_dag.txt
//
// Usage: spc_analyze [--root <dir>] [--json <path>]
// Exit codes: 0 clean, 1 violations found, 2 usage/config error.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "tools/analyze_passes.h"

int main(int argc, char** argv) {
  std::filesystem::path root = ".";
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: spc_analyze [--root <dir>] [--json <path>]\n");
      return 0;
    } else {
      std::fprintf(stderr, "spc_analyze: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (!std::filesystem::is_directory(root / "src")) {
    std::fprintf(stderr,
                 "spc_analyze: '%s' does not look like the repo root (no "
                 "src/ directory)\n",
                 root.string().c_str());
    return 2;
  }

  std::string error;
  const spcanalyze::AnalyzeResult result =
      spcanalyze::AnalyzeTree(root, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "spc_analyze: %s\n", error.c_str());
    return 2;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "spc_analyze: cannot write '%s'\n",
                   json_path.c_str());
      return 2;
    }
    out << spcanalyze::ReportJson(result);
  }

  for (const spclint::Violation& v : result.violations) {
    std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  }
  if (!result.violations.empty()) {
    std::printf("spc_analyze: %zu violation(s)\n", result.violations.size());
    return 1;
  }
  std::printf("spc_analyze: clean (%zu lock-order edges observed)\n",
              result.lock_edges.size());
  return 0;
}
