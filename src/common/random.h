#ifndef PSPC_SRC_COMMON_RANDOM_H_
#define PSPC_SRC_COMMON_RANDOM_H_

#include <cstdint>

/// Deterministic pseudo-random number generation.
///
/// All stochastic components of the library (graph generators, query
/// workloads, sampling-based analytics) draw from `Rng`, a
/// splitmix64-seeded xoshiro256** generator. Fixed seeds make every
/// dataset, test, and benchmark bit-reproducible across runs and thread
/// counts — a prerequisite for the paper's "index is identical for any
/// number of threads" claim to be checkable.
namespace pspc {

/// xoshiro256** PRNG. Not cryptographic; fast and high-quality for
/// simulation workloads. Copyable; copies evolve independently.
class Rng {
 public:
  /// Seeds the four 64-bit lanes via splitmix64 so that any seed
  /// (including 0) yields a well-mixed initial state.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in `[0, bound)`. `bound` must be non-zero.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform value in `[lo, hi]` (inclusive). Requires `lo <= hi`.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in `[0, 1)`.
  double NextDouble();

  /// Bernoulli draw with probability `p` of returning true.
  bool NextBool(double p);

  /// Returns a new generator seeded from this one; use to hand
  /// independent streams to parallel workers deterministically.
  Rng Split();

 private:
  uint64_t state_[4];
};

}  // namespace pspc

#endif  // PSPC_SRC_COMMON_RANDOM_H_
