#include "src/dynamic/dynamic_graph.h"

#include <string>

#include "src/graph/graph_builder.h"

namespace pspc {
namespace {

bool SortedContains(const std::vector<VertexId>& vec, VertexId v) {
  return std::binary_search(vec.begin(), vec.end(), v);
}

void SortedInsert(std::vector<VertexId>* vec, VertexId v) {
  vec->insert(std::upper_bound(vec->begin(), vec->end(), v), v);
}

void SortedErase(std::vector<VertexId>* vec, VertexId v) {
  const auto it = std::lower_bound(vec->begin(), vec->end(), v);
  if (it != vec->end() && *it == v) vec->erase(it);
}

}  // namespace

Status DynamicGraph::ValidateEndpoints(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices()) {
    return Status::InvalidArgument(
        "edge (" + std::to_string(u) + ", " + std::to_string(v) +
        ") outside vertex universe [0, " + std::to_string(NumVertices()) +
        "); the dynamic index does not grow the vertex set");
  }
  if (u == v) {
    return Status::InvalidArgument("self-loop on vertex " + std::to_string(u));
  }
  return Status::OK();
}

bool DynamicGraph::HasEdge(VertexId u, VertexId v) const {
  const auto it = delta_.find(u);
  if (it == delta_.end()) return base_->HasEdge(u, v);
  if (SortedContains(it->second.added, v)) return true;
  if (SortedContains(it->second.removed, v)) return false;
  return base_->HasEdge(u, v);
}

Status DynamicGraph::AddEdge(VertexId u, VertexId v) {
  PSPC_RETURN_IF_ERROR(ValidateEndpoints(u, v));
  if (HasEdge(u, v)) {
    return Status::InvalidArgument("edge (" + std::to_string(u) + ", " +
                                   std::to_string(v) + ") already exists");
  }
  AddDirected(u, v);
  AddDirected(v, u);
  ++num_edges_;
  ++delta_edges_;
  return Status::OK();
}

Status DynamicGraph::RemoveEdge(VertexId u, VertexId v) {
  PSPC_RETURN_IF_ERROR(ValidateEndpoints(u, v));
  if (!HasEdge(u, v)) {
    return Status::NotFound("edge (" + std::to_string(u) + ", " +
                            std::to_string(v) + ") does not exist");
  }
  RemoveDirected(u, v);
  RemoveDirected(v, u);
  --num_edges_;
  ++delta_edges_;
  return Status::OK();
}

void DynamicGraph::AddDirected(VertexId u, VertexId v) {
  VertexDelta& d = delta_[u];
  if (SortedContains(d.removed, v)) {
    SortedErase(&d.removed, v);  // un-remove a base edge
  } else {
    SortedInsert(&d.added, v);
  }
}

void DynamicGraph::RemoveDirected(VertexId u, VertexId v) {
  VertexDelta& d = delta_[u];
  if (SortedContains(d.added, v)) {
    SortedErase(&d.added, v);  // cancel a delta insertion
  } else {
    SortedInsert(&d.removed, v);
  }
}

VertexId DynamicGraph::Degree(VertexId v) const {
  const auto it = delta_.find(v);
  if (it == delta_.end()) return base_->Degree(v);
  return static_cast<VertexId>(base_->Degree(v) + it->second.added.size() -
                               it->second.removed.size());
}

Graph DynamicGraph::Materialize() const {
  GraphBuilder builder(NumVertices());
  for (VertexId u = 0; u < NumVertices(); ++u) {
    ForEachNeighbor(u, [&](VertexId w) {
      if (u < w) builder.AddEdge(u, w);
    });
  }
  return builder.Build();
}

}  // namespace pspc
