#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/builder_facade.h"
#include "src/graph/generators.h"
#include "src/label/spc_index.h"

namespace pspc {
namespace {

// On-disk layout (see SpcIndex::Save): magic(8) n(8) total(8),
// order n*4, offsets (n+1)*8, entries total*(4+2+8).
constexpr size_t kHeaderBytes = 24;

SpcIndex BuildSmallIndex() {
  BuildOptions options;
  options.num_landmarks = 4;
  return BuildIndex(GenerateErdosRenyi(24, 50, 7), options).index;
}

std::string SavedIndexPath() {
  static const std::string* path = [] {
    auto* p = new std::string(::testing::TempDir() + "/io_test.idx");
    EXPECT_TRUE(BuildSmallIndex().Save(*p).ok());
    return p;
  }();
  return *path;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SpcIndexIoTest, RoundTrip) {
  const SpcIndex index = BuildSmallIndex();
  const auto loaded = SpcIndex::Load(SavedIndexPath());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), index);
}

TEST(SpcIndexIoTest, MissingFileIsIOError) {
  EXPECT_EQ(SpcIndex::Load("/nonexistent/index.bin").status().code(),
            Status::Code::kIOError);
}

TEST(SpcIndexIoTest, BadMagicIsCorruption) {
  auto bytes = ReadAll(SavedIndexPath());
  bytes[0] ^= 0x5A;
  const std::string path = ::testing::TempDir() + "/bad_magic.idx";
  WriteAll(path, bytes);
  EXPECT_EQ(SpcIndex::Load(path).status().code(), Status::Code::kCorruption);
}

// Truncations at every structurally interesting boundary: mid-header,
// mid-order, mid-offsets, mid-entries, and one byte short. All must be
// a clean Corruption, never a crash.
TEST(SpcIndexIoTest, TruncationsAreCorruption) {
  const auto bytes = ReadAll(SavedIndexPath());
  ASSERT_GT(bytes.size(), kHeaderBytes);
  const size_t cuts[] = {4,  12,         20,
                         kHeaderBytes + 5,  bytes.size() / 2,
                         bytes.size() - 1};
  for (const size_t cut : cuts) {
    const std::string path = ::testing::TempDir() + "/truncated.idx";
    WriteAll(path, {bytes.begin(), bytes.begin() + static_cast<long>(cut)});
    EXPECT_EQ(SpcIndex::Load(path).status().code(), Status::Code::kCorruption)
        << "cut at " << cut;
  }
}

// A corrupt header must not drive a huge allocation (the declared
// sizes are validated against the physical file length first).
TEST(SpcIndexIoTest, ImplausibleSizesAreCorruption) {
  auto bytes = ReadAll(SavedIndexPath());
  auto patch_u64 = [&bytes](size_t offset, uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      bytes[offset + static_cast<size_t>(i)] =
          static_cast<char>((value >> (8 * i)) & 0xFF);
    }
  };
  const std::string path = ::testing::TempDir() + "/huge_n.idx";

  patch_u64(8, uint64_t{1} << 60);  // vertex count
  WriteAll(path, bytes);
  EXPECT_EQ(SpcIndex::Load(path).status().code(), Status::Code::kCorruption);

  bytes = ReadAll(SavedIndexPath());
  patch_u64(16, uint64_t{1} << 60);  // entry count
  WriteAll(path, bytes);
  EXPECT_EQ(SpcIndex::Load(path).status().code(), Status::Code::kCorruption);

  // 2^63 * 14 bytes/entry wraps uint64; the size check must use
  // division so the overflow cannot smuggle a huge resize through.
  bytes = ReadAll(SavedIndexPath());
  patch_u64(16, uint64_t{1} << 63);
  WriteAll(path, bytes);
  EXPECT_EQ(SpcIndex::Load(path).status().code(), Status::Code::kCorruption);
}

// A corrupt order region (duplicate vertex) must not abort the
// process via VertexOrder's internal invariant checks.
TEST(SpcIndexIoTest, NonPermutationOrderIsCorruption) {
  auto bytes = ReadAll(SavedIndexPath());
  // order[0] = order[1]: guaranteed duplicate.
  for (int i = 0; i < 4; ++i) {
    bytes[kHeaderBytes + static_cast<size_t>(i)] =
        bytes[kHeaderBytes + 4 + static_cast<size_t>(i)];
  }
  const std::string path = ::testing::TempDir() + "/dup_order.idx";
  WriteAll(path, bytes);
  EXPECT_EQ(SpcIndex::Load(path).status().code(), Status::Code::kCorruption);
}

TEST(SpcIndexIoTest, NonMonotonicOffsetsAreCorruption) {
  auto bytes = ReadAll(SavedIndexPath());
  const SpcIndex index = BuildSmallIndex();
  const size_t n = index.NumVertices();
  const size_t offsets_base = kHeaderBytes + n * sizeof(VertexId);
  // offsets[1] = huge: breaks monotonicity against offsets[2] while
  // keeping front()/back() intact.
  bytes[offsets_base + 8 + 7] = static_cast<char>(0x70);
  const std::string path = ::testing::TempDir() + "/bad_offsets.idx";
  WriteAll(path, bytes);
  EXPECT_EQ(SpcIndex::Load(path).status().code(), Status::Code::kCorruption);
}

TEST(SpcIndexIoTest, UnsortedLabelsAreCorruption) {
  auto bytes = ReadAll(SavedIndexPath());
  const SpcIndex index = BuildSmallIndex();
  const size_t n = index.NumVertices();
  const size_t entries_base =
      kHeaderBytes + n * sizeof(VertexId) + (n + 1) * sizeof(uint64_t);
  // First entry's hub rank -> out of range (rank >= n).
  bytes[entries_base + 3] = static_cast<char>(0x7F);
  const std::string path = ::testing::TempDir() + "/bad_entries.idx";
  WriteAll(path, bytes);
  EXPECT_EQ(SpcIndex::Load(path).status().code(), Status::Code::kCorruption);
}

}  // namespace
}  // namespace pspc
