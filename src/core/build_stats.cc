#include "src/core/build_stats.h"

#include <sstream>

namespace pspc {

std::string BuildStats::ToString() const {
  std::ostringstream oss;
  oss << "ordering=" << ordering_seconds << "s landmarks="
      << landmark_seconds << "s construction=" << construction_seconds
      << "s total=" << TotalSeconds() << "s\n";
  oss << "iterations=" << num_iterations << " entries=" << total_entries
      << " candidates=" << candidates_after_merge
      << " pruned(landmark)=" << pruned_by_landmark
      << " pruned(query)=" << pruned_by_query
      << " inserted=" << labels_inserted;
  if (canonical_labels + non_canonical_labels > 0) {
    oss << " canonical=" << canonical_labels
        << " non_canonical=" << non_canonical_labels;
  }
  return oss.str();
}

}  // namespace pspc
