#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "src/baseline/bfs_spc.h"
#include "src/core/builder_facade.h"
#include "src/core/hp_spc_builder.h"
#include "src/core/pspc_builder.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/label/query_engine.h"
#include "src/order/vertex_order.h"
#include "tests/test_util.h"

namespace pspc {
namespace {

/// Families x orderings x algorithms x paradigms, swept by value-
/// parameterized tests: every combination must answer every sampled
/// query exactly like the BFS oracle, and PSPC must equal HP-SPC
/// structurally (Theorem 2: same ESPC label set).
struct GraphCase {
  std::string name;
  Graph (*make)();
};

Graph MakeEr() { return GenerateErdosRenyi(64, 160, 101); }
Graph MakeBa() { return GenerateBarabasiAlbert(64, 3, 102); }
Graph MakeWs() { return GenerateWattsStrogatz(64, 3, 0.2, 103); }
Graph MakeRmat() { return GenerateRmat(6, 200, 0.57, 0.19, 0.19, 104); }
Graph MakeGrid() { return GenerateRoadGrid(8, 8, 0.9, 0.1, 105); }
Graph MakeClustered() { return GenerateClusteredBa(64, 2, 0.4, 106); }
Graph MakeDisconnected() {
  GraphBuilder b(64);
  const Graph a = GenerateErdosRenyi(32, 70, 107);
  for (VertexId u = 0; u < 32; ++u) {
    for (VertexId v : a.Neighbors(u)) {
      if (u < v) {
        b.AddEdge(u, v);
        b.AddEdge(u + 32, v + 32);
      }
    }
  }
  return b.Build();
}
Graph MakeLadder() { return GenerateDiamondLadder(6, 3); }

const GraphCase kGraphCases[] = {
    {"erdos_renyi", &MakeEr},       {"barabasi_albert", &MakeBa},
    {"watts_strogatz", &MakeWs},    {"rmat", &MakeRmat},
    {"road_grid", &MakeGrid},       {"clustered_ba", &MakeClustered},
    {"two_components", &MakeDisconnected}, {"diamond_ladder", &MakeLadder},
};

const OrderingScheme kOrderings[] = {
    OrderingScheme::kDegree,
    OrderingScheme::kRoadNetwork,
    OrderingScheme::kHybrid,
    OrderingScheme::kIdentity,
};

class SpcPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, OrderingScheme>> {
 protected:
  const GraphCase& Case() const {
    return kGraphCases[std::get<0>(GetParam())];
  }
  OrderingScheme Ordering() const { return std::get<1>(GetParam()); }
};

TEST_P(SpcPropertyTest, PspcMatchesHpSpcStructurally) {
  const Graph g = Case().make();
  const VertexOrder order = ComputeOrder(g, Ordering(), 4);
  PspcOptions opts;
  opts.num_landmarks = 4;
  EXPECT_EQ(BuildPspcIndex(g, order, opts).index,
            BuildHpSpcIndex(g, order).index);
}

TEST_P(SpcPropertyTest, QueriesMatchBfsOracle) {
  const Graph g = Case().make();
  const VertexOrder order = ComputeOrder(g, Ordering(), 4);
  PspcOptions opts;
  opts.num_landmarks = 4;
  const SpcIndex index = BuildPspcIndex(g, order, opts).index;
  const QueryBatch batch = MakeRandomQueries(g.NumVertices(), 300, 999);
  for (const auto& [s, t] : batch) {
    ASSERT_EQ(index.Query(s, t), BfsSpcPair(g, s, t))
        << Case().name << " pair (" << s << "," << t << ")";
  }
}

TEST_P(SpcPropertyTest, PushEqualsPull) {
  const Graph g = Case().make();
  const VertexOrder order = ComputeOrder(g, Ordering(), 4);
  PspcOptions pull;
  pull.paradigm = Paradigm::kPull;
  pull.num_landmarks = 4;
  PspcOptions push = pull;
  push.paradigm = Paradigm::kPush;
  EXPECT_EQ(BuildPspcIndex(g, order, pull).index,
            BuildPspcIndex(g, order, push).index);
}

TEST_P(SpcPropertyTest, ThreadCountInvariance) {
  const Graph g = Case().make();
  const VertexOrder order = ComputeOrder(g, Ordering(), 4);
  PspcOptions one;
  one.num_threads = 1;
  one.num_landmarks = 4;
  PspcOptions many = one;
  many.num_threads = 7;  // deliberately awkward thread count
  EXPECT_EQ(BuildPspcIndex(g, order, one).index,
            BuildPspcIndex(g, order, many).index);
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<int, OrderingScheme>>& info) {
  std::string name = kGraphCases[std::get<0>(info.param)].name + "_" +
                     ToString(std::get<1>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';  // gtest parameter names must be identifiers
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SpcPropertyTest,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::ValuesIn(kOrderings)),
    CaseName);

// ------------------------- facade-level sweep over full BuildOptions --

class FacadeTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(FacadeTest, EndToEndBuildAndQuery) {
  const Graph g = GenerateBarabasiAlbert(96, 3, 201);
  BuildOptions opts;
  opts.algorithm = GetParam();
  opts.ordering = OrderingScheme::kDegree;
  opts.num_landmarks = 8;
  const BuildResult result = BuildIndex(g, opts);
  EXPECT_GT(result.stats.total_entries, g.NumVertices());
  EXPECT_GE(result.stats.ordering_seconds, 0.0);
  const QueryBatch batch = MakeRandomQueries(96, 200, 77);
  for (const auto& [s, t] : batch) {
    ASSERT_EQ(result.index.Query(s, t), BfsSpcPair(g, s, t));
  }
}

INSTANTIATE_TEST_SUITE_P(BothAlgorithms, FacadeTest,
                         ::testing::Values(Algorithm::kHpSpc,
                                           Algorithm::kPspc),
                         [](const ::testing::TestParamInfo<Algorithm>& info) {
                           return info.param == Algorithm::kHpSpc ? "hp_spc"
                                                                  : "pspc";
                         });

// Significant-path ordering is expensive (sequential labeling pass), so
// it gets a single dedicated case instead of the full matrix.
TEST(SignificantPathPropertyTest, ExactOnScaleFreeGraph) {
  const Graph g = GenerateBarabasiAlbert(64, 3, 301);
  const VertexOrder order =
      ComputeOrder(g, OrderingScheme::kSignificantPath, 4);
  PspcOptions opts;
  opts.num_landmarks = 4;
  const SpcIndex index = BuildPspcIndex(g, order, opts).index;
  for (const auto& [s, t] : pspc::testing::AllPairs(64)) {
    ASSERT_EQ(index.Query(s, t), BfsSpcPair(g, s, t));
  }
}

TEST(BruteForceCrossCheck, BfsOracleAgreesWithPathEnumeration) {
  // Validates the validator: BFS counting vs exhaustive enumeration.
  const Graph g = GenerateErdosRenyi(12, 22, 401);
  for (const auto& [s, t] : pspc::testing::AllPairs(12)) {
    ASSERT_EQ(BfsSpcPair(g, s, t), pspc::testing::BruteForceSpc(g, s, t));
  }
}

}  // namespace
}  // namespace pspc
