#ifndef PSPC_SRC_GRAPH_ALGORITHMS_H_
#define PSPC_SRC_GRAPH_ALGORITHMS_H_

#include <vector>

#include "src/common/types.h"
#include "src/graph/graph.h"

/// Classic graph algorithms used as substrates: BFS distance maps feed
/// the landmark filter (paper §III-H), connected components and k-core
/// feed the reductions (paper §IV), and the diameter bound caps the
/// PSPC distance-iteration count (paper Theorem 3: D iterations).
namespace pspc {

/// Single-source BFS distances; unreachable vertices get kInfDistance.
std::vector<Distance> BfsDistances(const Graph& graph, VertexId source);

/// Connected components; returns per-vertex component id (0-based,
/// ordered by smallest contained vertex) and the component count via
/// `num_components`.
std::vector<VertexId> ConnectedComponents(const Graph& graph,
                                          VertexId* num_components);

/// Core number of every vertex (largest k such that the vertex survives
/// in the k-core). Peeling algorithm, O(m).
std::vector<VertexId> CoreNumbers(const Graph& graph);

/// Vertices of the k-core (core number >= k).
std::vector<VertexId> KCoreVertices(const Graph& graph, VertexId k);

/// Exact eccentricity of `source` (max finite BFS distance).
Distance Eccentricity(const Graph& graph, VertexId source);

/// Lower bound on the diameter via `rounds` of the double-sweep
/// heuristic (exact on trees; a tight lower bound in practice).
Distance EstimateDiameter(const Graph& graph, int rounds, uint64_t seed);

/// Exact diameter of the largest component via all-source BFS —
/// O(n * m); test-scale graphs only.
Distance ExactDiameter(const Graph& graph);

}  // namespace pspc

#endif  // PSPC_SRC_GRAPH_ALGORITHMS_H_
