// The live ops plane over a real serving engine: HTTP endpoints
// scraped through actual sockets, concurrent scrapes during a mixed
// read/write workload, write-path traces surfacing in /tracez, and the
// acceptance fault injection — a pinned snapshot stalls reclamation
// until the watchdog flips /healthz to 503 naming reclaim_backlog,
// dumps a bundle containing the triggering events, and recovers to 200
// once the pin is released.
//
// All OpenMP knobs are pinned to one thread — libgomp is not
// TSan-instrumented, and a team of one never spawns — so every thread
// TSan watches is one of ours (the TSan job runs this file).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/builder_facade.h"
#include "src/dynamic/dynamic_spc_index.h"
#include "src/dynamic/edge_update.h"
#include "src/graph/generators.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/health.h"
#include "src/obs/metric_names.h"
#include "src/obs/metrics.h"
#include "src/obs/obs_server.h"
#include "src/obs/prom_validate.h"
#include "src/serve/serving_engine.h"
#include "tests/test_util.h"

namespace pspc {
namespace {

BuildOptions SingleThreadBuild() {
  BuildOptions options;
  options.num_landmarks = 4;
  options.num_threads = 1;
  return options;
}

std::unique_ptr<DynamicSpcIndex> MakeIndex(const Graph& graph,
                                           obs::MetricsRegistry* registry,
                                           obs::FlightRecorder* recorder) {
  DynamicOptions options;
  options.rebuild_threshold = 1e18;
  options.rebuild_options = SingleThreadBuild();
  options.num_threads = 1;
  options.metrics = registry;
  options.flight_recorder = recorder;
  return std::make_unique<DynamicSpcIndex>(graph, SingleThreadBuild(),
                                           options);
}

// Minimal blocking HTTP/1.1 GET against 127.0.0.1:port — the raw-socket
// client side of the ops plane, so the tests exercise the server's real
// request/response path rather than just Handle().
struct HttpResponse {
  int status = 0;
  std::string body;
};

HttpResponse HttpGet(uint16_t port, const std::string& path) {
  HttpResponse out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return out;
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 <code> ..." then headers then blank line then body.
  if (raw.size() > 12 && raw.compare(0, 9, "HTTP/1.1 ") == 0) {
    out.status = std::atoi(raw.c_str() + 9);
  }
  const size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) out.body = raw.substr(split + 4);
  return out;
}

// One fully wired ops plane over one engine: private registry and
// recorder, manual-tick watchdog, ephemeral-port server.
struct OpsPlane {
  explicit OpsPlane(ServingEngine& engine, obs::MetricsRegistry* registry,
                    obs::FlightRecorder* recorder)
      : watchdog([&] {
          obs::HealthOptions options;
          options.metrics = registry;
          options.recorder = recorder;
          options.traces = &engine.Traces();
          options.update_traces = &engine.UpdateTraces();
          options.interval_ms = 0;  // tests tick manually
          return options;
        }()),
        server(0, [&] {
          obs::ObsServerContext context;
          context.metrics = registry;
          context.health = &watchdog;
          context.recorder = recorder;
          context.traces = &engine.Traces();
          context.update_traces = &engine.UpdateTraces();
          return context;
        }()) {}

  obs::HealthWatchdog watchdog;
  obs::ObsServer server;
};

TEST(ServingOpsTest, LiveEndpointsServeOverHttp) {
  const Graph graph = GenerateBarabasiAlbert(60, 3, 11);
  obs::MetricsRegistry registry;
  obs::FlightRecorder recorder(64);
  auto index = MakeIndex(graph, &registry, &recorder);

  ServingOptions options;
  options.num_workers = 1;
  options.metrics = &registry;
  options.flight_recorder = &recorder;
  ServingEngine engine(index.get(), options);
  engine.SubmitBatch(MakeRandomQueries(60, 32, 3)).get();
  ASSERT_TRUE(
      engine.ApplyUpdate({0, graph.Neighbors(0)[0], EdgeUpdateKind::kDelete})
          .ok());
  engine.Drain();

  OpsPlane ops(engine, &registry, &recorder);
  ops.watchdog.Evaluate();
  ASSERT_TRUE(ops.server.Start().ok());
  const uint16_t port = ops.server.Port();
  ASSERT_GT(port, 0);

  // /metrics must be valid catalog-conforming Prometheus text.
  const HttpResponse metrics = HttpGet(port, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  const obs::PromValidationResult prom =
      obs::ValidatePrometheusText(metrics.body, /*require_catalog=*/true);
  EXPECT_TRUE(prom.ok) << prom.error;
  EXPECT_GT(prom.families, 10u);

  const HttpResponse json = HttpGet(port, "/metrics.json");
  EXPECT_EQ(json.status, 200);
  EXPECT_NE(json.body.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.body.find("serve.queries_total"), std::string::npos);

  const HttpResponse healthz = HttpGet(port, "/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find("\"status\":\"OK\""), std::string::npos);

  const HttpResponse varz = HttpGet(port, "/varz");
  EXPECT_EQ(varz.status, 200);
  EXPECT_NE(varz.body.find("\"published_generation\":1"),
            std::string::npos);

  const HttpResponse flight = HttpGet(port, "/flightrecorder");
  EXPECT_EQ(flight.status, 200);
  EXPECT_NE(flight.body.find("\"kind\":\"publish\""), std::string::npos);

  EXPECT_EQ(HttpGet(port, "/nope").status, 404);
  EXPECT_GE(ops.server.RequestsServed(), 6u);
  ops.server.Stop();
}

// The acceptance fault injection: a held snapshot pin stalls reclaim,
// the backlog grows past the floor, /healthz flips to 503 naming
// reclaim_backlog, the bundle carries the triggering publish events,
// and releasing the pin recovers the plane to 200/OK.
TEST(ServingOpsTest, ReclaimStallFlipsHealthzAndRecovers) {
  const Graph graph = GenerateBarabasiAlbert(50, 3, 13);
  obs::MetricsRegistry registry;
  obs::FlightRecorder recorder(128);
  auto index = MakeIndex(graph, &registry, &recorder);

  ServingOptions options;
  options.num_workers = 1;
  options.metrics = &registry;
  options.flight_recorder = &recorder;
  ServingEngine engine(index.get(), options);

  OpsPlane ops(engine, &registry, &recorder);
  ASSERT_TRUE(ops.server.Start().ok());
  const uint16_t port = ops.server.Port();
  ops.watchdog.Evaluate();  // baseline tick (backlog flat at zero)

  // Fault: pin the published snapshot and keep writing. Every publish
  // retires a generation the pin keeps alive, so the backlog grows by
  // one per update — exactly the signature the reclaim_backlog rule
  // watches for.
  std::optional<SnapshotRef> pin(engine.PinSnapshot());
  const VertexId u = 0;
  const VertexId v = graph.Neighbors(0)[0];
  obs::HealthReport report;
  for (int i = 0; i < 8; ++i) {
    const EdgeUpdateKind kind =
        i % 2 == 0 ? EdgeUpdateKind::kDelete : EdgeUpdateKind::kInsert;
    ASSERT_TRUE(engine.ApplyUpdate({u, v, kind}).ok());
    report = ops.watchdog.Evaluate();
  }
  ASSERT_EQ(report.status, obs::HealthStatus::kUnhealthy);
  EXPECT_EQ(report.worst_rule, obs::HealthRuleId::kReclaimBacklog);

  // The live endpoint reports the outage and names the firing rule.
  const HttpResponse sick = HttpGet(port, "/healthz");
  EXPECT_EQ(sick.status, 503);
  EXPECT_NE(sick.body.find("\"status\":\"UNHEALTHY\""), std::string::npos);
  EXPECT_NE(sick.body.find("reclaim_backlog"), std::string::npos);

  // The bundle captured on the UNHEALTHY transition holds the evidence:
  // the publish events whose retirements could not be reclaimed, the
  // metrics snapshot, and the health verdict.
  const std::string bundle = ops.watchdog.LastBundle();
  EXPECT_NE(bundle.find("\"bundle_version\":1"), std::string::npos);
  EXPECT_NE(bundle.find("reclaim_backlog"), std::string::npos);
  EXPECT_NE(bundle.find("\"kind\":\"publish\""), std::string::npos);
  EXPECT_NE(bundle.find("serve.snapshots_retired_pending"),
            std::string::npos);
  EXPECT_GE(registry.GetGauge(obs::kServeSnapshotsRetiredPending)->Value(),
            5);

  // Recovery: release the pin; the next publish reclaims the backlog
  // and the next tick sees it flat (or shrinking), clearing the rule.
  pin.reset();
  ASSERT_TRUE(engine.ApplyUpdate({u, v, EdgeUpdateKind::kDelete}).ok());
  report = ops.watchdog.Evaluate();
  EXPECT_EQ(report.status, obs::HealthStatus::kOk);
  const HttpResponse well = HttpGet(port, "/healthz");
  EXPECT_EQ(well.status, 200);
  EXPECT_NE(well.body.find("\"status\":\"OK\""), std::string::npos);
  EXPECT_LT(registry.GetGauge(obs::kServeSnapshotsRetiredPending)->Value(),
            5);
  ops.server.Stop();
}

// Scrapers hammer every endpoint over real sockets while loaders and a
// writer run — the TSan proof that the ops plane's read paths never
// race the hot paths, plus a liveness check that every scrape stays
// well-formed mid-flight.
TEST(ServingOpsTest, ConcurrentScrapesDuringMixedWorkload) {
  const Graph graph = GenerateBarabasiAlbert(60, 2, 17);
  obs::MetricsRegistry registry;
  obs::FlightRecorder recorder(64);
  auto index = MakeIndex(graph, &registry, &recorder);

  ServingOptions options;
  options.num_workers = 2;
  options.metrics = &registry;
  options.flight_recorder = &recorder;
  options.trace_sample_every_n = 4;
  ServingEngine engine(index.get(), options);

  OpsPlane ops(engine, &registry, &recorder);
  ASSERT_TRUE(ops.server.Start().ok());
  const uint16_t port = ops.server.Port();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scrapes{0};
  std::thread scraper([&] {
    const char* paths[] = {"/metrics", "/metrics.json", "/healthz",
                           "/varz", "/tracez", "/flightrecorder"};
    size_t i = 0;
    // relaxed: stop/progress flag only; thread join is the sync point.
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string path = paths[i++ % 6];
      const HttpResponse response = HttpGet(port, path);
      EXPECT_TRUE(response.status == 200 || response.status == 503) << path;
      if (path == "/metrics" && response.status == 200) {
        const obs::PromValidationResult prom = obs::ValidatePrometheusText(
            response.body, /*require_catalog=*/true);
        EXPECT_TRUE(prom.ok) << prom.error;
      }
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread ticker([&] {
    // relaxed: stop/progress flag only; thread join is the sync point.
    while (!stop.load(std::memory_order_relaxed)) {
      ops.watchdog.Evaluate();
    }
  });

  std::thread loader([&] {
    for (int round = 0; round < 15; ++round) {
      engine.SubmitBatch(MakeRandomQueries(60, 16, round)).get();
    }
  });
  const VertexId u = 0;
  const VertexId v = graph.Neighbors(0)[0];
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine.ApplyUpdate({u, v, EdgeUpdateKind::kDelete}).ok());
    ASSERT_TRUE(engine.ApplyUpdate({u, v, EdgeUpdateKind::kInsert}).ok());
  }

  loader.join();
  engine.Drain();
  // relaxed: stop/progress flag only; thread join is the sync point.
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  ticker.join();

  EXPECT_GT(scrapes.load(), 0u);
  EXPECT_GE(ops.server.RequestsServed(), scrapes.load());
  ops.server.Stop();
}

// Write-path tracing: every ApplyUpdates batch leaves one batch-id
// correlated UpdateTrace with its plan/repair/publish/reclaim stage
// costs, `/tracez` renders them, and the flight recorder carries the
// matching batch_apply events.
TEST(ServingOpsTest, UpdateTracesCorrelateBatchesAcrossThePlane) {
  const Graph graph = GenerateBarabasiAlbert(50, 3, 19);
  obs::MetricsRegistry registry;
  obs::FlightRecorder recorder(64);
  auto index = MakeIndex(graph, &registry, &recorder);

  ServingOptions options;
  options.num_workers = 1;
  options.metrics = &registry;
  options.flight_recorder = &recorder;
  ServingEngine engine(index.get(), options);

  // Batch 1: a two-edge coalesced batch (the planner runs, so the plan
  // stage has nonzero cost). Batch 2: a single update (plan cost zero
  // by design). Batch 3: a rejected batch (validation fails, no
  // publish).
  const VertexId n0 = graph.Neighbors(0)[0];
  VertexId n1 = graph.Neighbors(1)[0];
  for (const VertexId w : graph.Neighbors(1)) {
    // Skip w == 0 when n0 == 1: {1, w} would be the same undirected
    // edge as {0, n0}, and the batch must delete two distinct edges.
    if (!(n0 == 1 && w == 0)) {
      n1 = w;
      break;
    }
  }
  EdgeUpdateBatch coalesced;
  coalesced.Delete(0, n0);
  coalesced.Delete(1, n1);
  ASSERT_TRUE(engine.ApplyUpdates(coalesced).ok());
  ASSERT_TRUE(engine.ApplyUpdate({0, n0, EdgeUpdateKind::kInsert}).ok());
  EdgeUpdateBatch rejected;
  rejected.Insert(0, 10'000);  // out of range
  ASSERT_FALSE(engine.ApplyUpdates(rejected).ok());
  engine.Drain();

  const std::vector<obs::UpdateTrace> log = engine.UpdateTraces().Log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_GT(log[0].batch_id, 0u);
  EXPECT_LT(log[0].batch_id, log[1].batch_id);
  EXPECT_LT(log[1].batch_id, log[2].batch_id);

  EXPECT_TRUE(log[0].ok);
  EXPECT_EQ(log[0].submitted, 2u);
  EXPECT_EQ(log[0].applied, 2u);
  EXPECT_GT(log[0].plan_us, 0.0);
  EXPECT_GT(log[0].repair_us, 0.0);
  EXPECT_GT(log[0].publish_us, 0.0);
  EXPECT_GT(log[0].total_us, 0.0);
  EXPECT_EQ(log[0].generation, 1u);

  EXPECT_TRUE(log[1].ok);
  EXPECT_EQ(log[1].submitted, 1u);
  EXPECT_GE(log[1].plan_us, 0.0);  // still planned (1-element batch)
  EXPECT_GT(log[1].repair_us, 0.0);
  EXPECT_EQ(log[1].generation, 2u);

  EXPECT_FALSE(log[2].ok);
  EXPECT_EQ(log[2].applied, 0u);
  EXPECT_EQ(log[2].generation, 0u);  // nothing published

  // The flight recorder carries one batch_apply event per submission
  // (rejected included), batch-id correlated with the trace log; the
  // rejected batch's event shows zero updates applied.
  size_t batch_events = 0;
  for (const obs::FlightEvent& event : recorder.Events()) {
    if (event.kind != obs::FlightEventKind::kBatchApply) continue;
    EXPECT_TRUE(event.args[0] == log[0].batch_id ||
                event.args[0] == log[1].batch_id ||
                event.args[0] == log[2].batch_id);
    if (event.args[0] == log[2].batch_id) {
      EXPECT_EQ(event.args[2], 0u);
    }
    ++batch_events;
  }
  EXPECT_EQ(batch_events, 3u);

  // And /tracez renders the same correlation for operators.
  OpsPlane ops(engine, &registry, &recorder);
  const obs::ObsServer::Response tracez = ops.server.Handle("/tracez");
  EXPECT_EQ(tracez.status, 200);
  EXPECT_NE(tracez.body.find("\"update_batches\""), std::string::npos);
  EXPECT_NE(tracez.body.find(
                "\"batch_id\":" + std::to_string(log[0].batch_id)),
            std::string::npos);
}

}  // namespace
}  // namespace pspc
