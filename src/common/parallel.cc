#include "src/common/parallel.h"

namespace pspc {

int MaxThreads() { return omp_get_max_threads(); }

}  // namespace pspc
