#pragma once
#include <vector>

#include "src/serve/snapshot_api.h"

class PinCache {
 public:
  void Remember(int hits);

 private:
  SnapshotRef held_;                  // pin stored beyond acquiring scope
  std::vector<SnapshotRef> history_;  // pins held in bulk, never released
  int hits_ = 0;
};

class PinHolder {
 public:
  void Reset();

 private:
  SnapshotRef ref_;  // fine: Reset() releases it explicitly
};
