// Validates a MetricsRegistry::ToJson snapshot against the compiled-in
// metric catalog (src/obs/metric_names.h). CI runs this over the file
// `spc_cli serve --metrics-json` wrote, so a metric renamed (or
// dropped) on only one side of the instrumentation/catalog pair breaks
// the build instead of silently breaking dashboards.
//
//   metrics_schema_check <snapshot.json> [--require serve,dynamic]
//   metrics_schema_check --prom <scrape.txt>
//
// JSON mode checks, all fatal:
//   * the file parses as one JSON object with the three metric
//     sections (counters/gauges/histograms) and a schema_version
//     matching kMetricsSchemaVersion;
//   * every metric name in the snapshot is in the catalog, and in the
//     catalog section matching where the snapshot placed it;
//   * with --require, every name in the named required groups
//     (kRequiredServeMetrics / kRequiredDynamicMetrics) is present.
//
// --prom validates a Prometheus text-format scrape (what the obs
// server's /metrics endpoint returns, or --metrics-prom wrote):
// name charset, HELP/TYPE pairing, histogram _bucket/_sum/_count
// completeness with cumulative buckets — see src/obs/prom_validate.h.
// CI runs it against a live scrape so the text exporter cannot drift
// from what Prometheus actually ingests.
//
// The scanner below is not a general JSON parser — it only walks the
// machine-generated snapshot shape: object keys by brace depth, with
// strings and escapes skipped correctly. That keeps the tool
// dependency-free.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metric_names.h"
#include "src/obs/prom_validate.h"

namespace {

struct Section {
  std::string name;              // "counters", "gauges", "histograms"
  std::set<std::string> keys;    // metric names found in the snapshot
};

// Extracts the keys of the top-level object `section` inside `json`:
// the strings immediately followed by ':' at depth 1 of that object.
// Returns false when the section is missing or unbalanced.
bool ExtractSectionKeys(const std::string& json, const std::string& section,
                        std::set<std::string>* keys) {
  const std::string needle = "\"" + section + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  size_t i = at + needle.size();
  while (i < json.size() && (json[i] == ' ' || json[i] == '\n')) ++i;
  if (i >= json.size() || json[i] != '{') return false;

  int depth = 0;
  std::string pending;  // last string literal seen at depth 1
  for (; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"') {
      std::string literal;
      for (++i; i < json.size() && json[i] != '"'; ++i) {
        if (json[i] == '\\' && i + 1 < json.size()) {
          literal.push_back(json[i + 1]);  // verbatim is fine for names
          ++i;
        } else {
          literal.push_back(json[i]);
        }
      }
      if (i >= json.size()) return false;  // unterminated string
      if (depth == 1) pending = std::move(literal);
      continue;
    }
    if (c == ':' && depth == 1 && !pending.empty()) {
      keys->insert(pending);
      pending.clear();
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth == 0) return true;  // section object closed
    }
  }
  return false;  // ran off the end
}

bool ExtractSchemaVersion(const std::string& json, long* version) {
  const char needle[] = "\"schema_version\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  return std::sscanf(json.c_str() + at + std::strlen(needle), "%ld",
                     version) == 1;
}

template <size_t N>
bool InCatalog(const std::string_view (&catalog)[N], std::string_view name) {
  for (const auto known : catalog) {
    if (name == known) return true;
  }
  return false;
}

int Fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "metrics_schema_check: %s: %s\n", what,
               detail.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string prom_path;
  std::vector<std::string> require;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--prom" && i + 1 < argc) {
      prom_path = argv[++i];
    } else if (arg == "--require" && i + 1 < argc) {
      std::stringstream groups(argv[++i]);
      std::string group;
      while (std::getline(groups, group, ',')) {
        if (group != "serve" && group != "dynamic") {
          return Fail("unknown --require group", group);
        }
        require.push_back(group);
      }
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: metrics_schema_check <snapshot.json> "
                   "[--require serve,dynamic] | --prom <scrape.txt>\n");
      return 2;
    }
  }
  if (path.empty() == prom_path.empty()) {  // exactly one mode
    std::fprintf(stderr,
                 "usage: metrics_schema_check <snapshot.json> "
                 "[--require serve,dynamic] | --prom <scrape.txt>\n");
    return 2;
  }

  if (!prom_path.empty()) {
    std::ifstream in(prom_path, std::ios::binary);
    if (!in) return Fail("cannot open", prom_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    const pspc::obs::PromValidationResult result =
        pspc::obs::ValidatePrometheusText(text, /*require_catalog=*/true);
    if (!result.ok) return Fail("invalid Prometheus text", result.error);
    std::printf("metrics_schema_check: OK (%zu Prometheus families)\n",
                result.families);
    return 0;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail("cannot open", path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  long version = -1;
  if (!ExtractSchemaVersion(json, &version)) {
    return Fail("missing schema_version", path);
  }
  if (version != pspc::obs::kMetricsSchemaVersion) {
    return Fail("schema_version mismatch",
                "snapshot has " + std::to_string(version) + ", tool expects " +
                    std::to_string(pspc::obs::kMetricsSchemaVersion));
  }

  Section sections[] = {{"counters", {}}, {"gauges", {}}, {"histograms", {}}};
  for (Section& s : sections) {
    if (!ExtractSectionKeys(json, s.name, &s.keys)) {
      return Fail("missing or malformed section", s.name);
    }
  }

  // Every snapshot name must be in the catalog — and in the matching
  // catalog section (a counter exported as a gauge is also drift).
  size_t total = 0;
  for (const Section& s : sections) {
    for (const std::string& name : s.keys) {
      if (!pspc::obs::IsKnownMetricName(name)) {
        return Fail("unknown metric name", name + " (in " + s.name + ")");
      }
      const bool placed_right =
          (s.name == "counters" &&
           InCatalog(pspc::obs::kCounterNames, name)) ||
          (s.name == "gauges" && InCatalog(pspc::obs::kGaugeNames, name)) ||
          (s.name == "histograms" &&
           InCatalog(pspc::obs::kHistogramNames, name));
      if (!placed_right) {
        return Fail("metric in wrong section", name + " (in " + s.name + ")");
      }
      ++total;
    }
  }

  std::set<std::string> all;
  for (const Section& s : sections) all.insert(s.keys.begin(), s.keys.end());
  for (const std::string& group : require) {
    const std::span<const std::string_view> names =
        group == "serve" ? std::span<const std::string_view>(
                               pspc::obs::kRequiredServeMetrics)
                         : std::span<const std::string_view>(
                               pspc::obs::kRequiredDynamicMetrics);
    for (const std::string_view name : names) {
      if (all.find(std::string(name)) == all.end()) {
        return Fail(("missing required " + group + " metric").c_str(),
                    std::string(name));
      }
    }
  }

  std::string required;
  for (const std::string& group : require) {
    required += required.empty() ? ", required: " : ",";
    required += group;
  }
  std::printf("metrics_schema_check: OK (%zu metrics, schema v%ld%s)\n",
              total, version, required.c_str());
  return 0;
}
