#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/baseline/bfs_spc.h"
#include "src/core/builder_facade.h"
#include "src/dynamic/dynamic_spc_index.h"
#include "src/graph/generators.h"
#include "src/label/query_engine.h"
#include "src/serve/epoch_manager.h"
#include "src/serve/index_snapshot.h"
#include "src/serve/request_queue.h"
#include "src/serve/result_cache.h"
#include "src/serve/serving_engine.h"
#include "src/serve/snapshot_manager.h"
#include "tests/test_util.h"

namespace pspc {
namespace {

// Single-threaded OpenMP everywhere so these tests stay signal-only
// under ThreadSanitizer (libgomp worker teams are not TSan
// instrumented; a team of one never spawns).
BuildOptions SingleThreadBuild() {
  BuildOptions options;
  options.num_landmarks = 4;
  options.num_threads = 1;
  return options;
}

DynamicOptions RepairOnlyOptions() {
  DynamicOptions options;
  options.rebuild_threshold = 1e18;
  options.rebuild_options = SingleThreadBuild();
  options.num_threads = 1;
  return options;
}

std::unique_ptr<DynamicSpcIndex> MakeIndex(const Graph& graph) {
  return std::make_unique<DynamicSpcIndex>(graph, SingleThreadBuild(),
                                           RepairOnlyOptions());
}

// ------------------------------------------------------------ satellites

TEST(MakeRandomQueriesTest, EmptyUniverseYieldsEmptyBatch) {
  EXPECT_TRUE(MakeRandomQueries(0, 10, 123).empty());
  EXPECT_TRUE(MakeRandomQueries(0, 0, 123).empty());
  EXPECT_EQ(MakeRandomQueries(5, 7, 123).size(), 7u);
}

// --------------------------------------------------------- IndexSnapshot

TEST(IndexSnapshotTest, MatchesLiveIndex) {
  const Graph graph = GenerateBarabasiAlbert(120, 3, 11);
  auto index = MakeIndex(graph);
  const auto snapshot = IndexSnapshot::Capture(*index);

  EXPECT_EQ(snapshot->NumVertices(), index->NumVertices());
  EXPECT_EQ(snapshot->NumEdges(), index->NumEdges());
  EXPECT_EQ(snapshot->Generation(), index->Generation());
  for (const auto& [s, t] : MakeRandomQueries(120, 200, 5)) {
    EXPECT_EQ(snapshot->Query(s, t), index->Query(s, t));
  }
}

TEST(IndexSnapshotTest, IsolatesRetiredGenerations) {
  const Graph graph = GenerateBarabasiAlbert(120, 3, 12);
  auto index = MakeIndex(graph);
  const QueryBatch probes = MakeRandomQueries(120, 200, 6);

  const auto before = IndexSnapshot::Capture(*index);
  std::vector<SpcResult> old_answers;
  for (const auto& [s, t] : probes) old_answers.push_back(before->Query(s, t));

  // Churn the live index; the captured generation must not move.
  Rng rng(99);
  size_t applied = 0;
  while (applied < 10) {
    const auto u = static_cast<VertexId>(rng.NextBounded(120));
    const auto v = static_cast<VertexId>(rng.NextBounded(120));
    if (u == v || index->HasEdge(u, v)) continue;
    ASSERT_TRUE(index->InsertEdge(u, v).ok());
    ++applied;
  }

  const auto after = IndexSnapshot::Capture(*index);
  EXPECT_GT(after->Generation(), before->Generation());
  size_t changed = 0;
  for (size_t i = 0; i < probes.size(); ++i) {
    const auto [s, t] = probes[i];
    EXPECT_EQ(before->Query(s, t), old_answers[i]);
    EXPECT_EQ(after->Query(s, t), index->Query(s, t));
    if (after->Query(s, t) != old_answers[i]) ++changed;
  }
  // 10 random inserts on 120 vertices must move some answers, or the
  // isolation assertion above would be vacuous.
  EXPECT_GT(changed, 0u);
}

TEST(IndexSnapshotTest, SurvivesIndexRebuild) {
  const Graph graph = GenerateBarabasiAlbert(100, 3, 13);
  auto index = MakeIndex(graph);
  const auto snapshot = IndexSnapshot::Capture(*index);
  const SpcResult old_answer = snapshot->Query(3, 77);

  index->Rebuild();  // swaps the shared base out from under the capture
  EXPECT_EQ(snapshot->Query(3, 77), old_answer);
  EXPECT_EQ(IndexSnapshot::Capture(*index)->Query(3, 77),
            index->Query(3, 77));
}

// Publish-cost regression for the persistent chunked overlay: on an
// insert-heavy stream each capture must copy only the vertices
// repaired since the previous capture (the batch delta), never the
// whole accumulated overlay — the O(overlay) map-copy behavior this
// design replaced. Structural sharing is asserted at the pointer
// level: an unchanged vertex's label span must alias the previous
// snapshot's chunk byte-for-byte *and* address-for-address.
TEST(IndexSnapshotTest, InsertHeavyPublishCopiesDeltaNotOverlay) {
  constexpr VertexId kN = 600;
  constexpr int kBatches = 24;
  constexpr size_t kPerBatch = 3;
  const Graph graph = GenerateBarabasiAlbert(kN, 3, 41);
  auto index = MakeIndex(graph);  // repair-only: the overlay only grows

  Rng rng(4141);
  std::vector<std::unique_ptr<const IndexSnapshot>> snaps;
  snaps.push_back(IndexSnapshot::Capture(*index));
  std::vector<size_t> copied, overlaid;
  Graph first_batch_graph;  // graph state snaps[1] was captured at
  for (int b = 0; b < kBatches; ++b) {
    EdgeUpdateBatch batch;
    while (batch.Size() < kPerBatch) {
      const auto u = static_cast<VertexId>(rng.NextBounded(kN));
      const auto v = static_cast<VertexId>(rng.NextBounded(kN));
      if (u == v || index->HasEdge(u, v)) continue;
      batch.Insert(u, v);
    }
    ASSERT_TRUE(index->ApplyBatch(batch).ok());
    snaps.push_back(IndexSnapshot::Capture(*index));
    if (b == 0) first_batch_graph = index->MaterializeGraph();
    copied.push_back(snaps.back()->CopiedVertices());
    overlaid.push_back(snaps.back()->OverlaidVertices());

    // The copied count must be exactly the per-batch delta: the set of
    // vertices whose label chunk no longer aliases the previous
    // snapshot's. Both snapshots are alive here, so a cloned chunk can
    // never coincidentally reuse the old chunk's storage.
    const IndexSnapshot& prev = *snaps[snaps.size() - 2];
    const IndexSnapshot& cur = *snaps.back();
    size_t unshared = 0;
    for (VertexId v = 0; v < kN; ++v) {
      if (cur.Labels(v).data() != prev.Labels(v).data()) ++unshared;
    }
    EXPECT_EQ(unshared, copied.back()) << "batch " << b;
    EXPECT_LE(copied.back(), overlaid.back());
  }

  // The overlay grew across the stream while the per-publish copy cost
  // stayed at the batch delta: in the second half of the stream every
  // publish copies well under the full overlay (the map-copy baseline
  // cost), and in aggregate the delta captures copy less than half of
  // what per-publish overlay copies would have.
  ASSERT_GE(overlaid.back(), 100u);
  size_t delta_sum = 0, map_copy_sum = 0;
  for (int b = kBatches / 2; b < kBatches; ++b) {
    const auto i = static_cast<size_t>(b);
    EXPECT_LT(copied[i], overlaid[i]) << "batch " << b;
    delta_sum += copied[i];
    map_copy_sum += overlaid[i];
  }
  EXPECT_LT(2 * delta_sum, map_copy_sum);

  // A capture with nothing in between copies nothing and aliases all.
  const auto idle = IndexSnapshot::Capture(*index);
  EXPECT_EQ(idle->CopiedVertices(), 0u);

  // Quiesce oracle: the final snapshot (and the live index) answer
  // exactly for the current graph.
  const Graph current = index->MaterializeGraph();
  for (const auto& [s, t] : MakeRandomQueries(kN, 64, 43)) {
    const SpcResult oracle = BfsSpcPair(current, s, t);
    EXPECT_EQ(snaps.back()->Query(s, t), oracle);
    EXPECT_EQ(index->Query(s, t), oracle);
  }

  // Old generations still answer for *their* graph: 23 batches of
  // later repairs mutated chunks the first post-batch snapshot
  // aliases structurally, and none of that may leak into its answers
  // (the write-generation discipline must have cloned first).
  EXPECT_EQ(snaps[1]->Generation() + kBatches - 1,
            snaps.back()->Generation());
  for (const auto& [s, t] : MakeRandomQueries(kN, 64, 47)) {
    EXPECT_EQ(snaps[1]->Query(s, t), BfsSpcPair(first_batch_graph, s, t));
  }
}

// ---------------------------------------------------------- EpochManager

TEST(EpochManagerTest, OverflowPinsAbsorbExhaustion) {
  EpochManager epochs;
  const uint64_t e0 = epochs.CurrentEpoch();

  // Saturate every lock-free slot, then keep pinning: overflow pins
  // must absorb the excess instead of aborting.
  std::vector<size_t> slots;
  for (size_t i = 0; i < EpochManager::kMaxSlots; ++i) {
    slots.push_back(epochs.Enter());
    EXPECT_LT(slots.back(), EpochManager::kMaxSlots);
  }
  const size_t of1 = epochs.Enter();
  EXPECT_TRUE(EpochManager::IsOverflowSlot(of1));
  epochs.AdvanceEpoch();
  const size_t of2 = epochs.Enter();  // later overflow pin, newer epoch
  EXPECT_TRUE(EpochManager::IsOverflowSlot(of2));
  EXPECT_NE(of1, of2);
  EXPECT_EQ(epochs.ActiveReaders(), EpochManager::kMaxSlots + 2);
  EXPECT_EQ(epochs.MinActiveEpoch(), e0);

  // Regular slots drain; the e0 overflow pin holds the minimum...
  for (const size_t slot : slots) epochs.Exit(slot);
  EXPECT_EQ(epochs.ActiveReaders(), 2u);
  EXPECT_EQ(epochs.MinActiveEpoch(), e0);
  // ...and *only* that pin: epochs are tracked per overflow reader, so
  // the minimum advances the moment the older reader leaves even
  // though overflow never empties — sustained oversubscription must
  // not freeze reclamation.
  epochs.Exit(of1);
  EXPECT_EQ(epochs.ActiveReaders(), 1u);
  EXPECT_EQ(epochs.MinActiveEpoch(), e0 + 1);
  epochs.Exit(of2);
  EXPECT_EQ(epochs.ActiveReaders(), 0u);
  EXPECT_EQ(epochs.MinActiveEpoch(), EpochManager::kNoActiveReader);

  // A lock-free slot freed up again: the next Enter goes fast-path.
  const size_t again = epochs.Enter();
  EXPECT_LT(again, EpochManager::kMaxSlots);
  epochs.Exit(again);
}

// Oversubscription through the full serving stack: more simultaneous
// SnapshotRefs than lock-free slots, across threads, while the writer
// keeps publishing. Overflow pins must keep retired generations alive
// exactly like regular pins, and everything must reclaim at the end.
TEST(SnapshotManagerTest, OversubscribedReadersStayExact) {
  const Graph graph = GenerateBarabasiAlbert(80, 2, 23);
  auto index = MakeIndex(graph);
  SnapshotManager manager(IndexSnapshot::Capture(*index));

  constexpr size_t kThreads = 4;
  // Each thread holds enough refs that the total oversubscribes the
  // slot array no matter how the threads interleave.
  constexpr size_t kRefsPerThread = EpochManager::kMaxSlots / kThreads + 8;
  std::vector<std::thread> threads;
  std::atomic<size_t> holding{0};
  std::atomic<bool> release{false};
  for (size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      std::vector<SnapshotRef> refs;
      refs.reserve(kRefsPerThread);
      for (size_t r = 0; r < kRefsPerThread; ++r) {
        refs.push_back(manager.Acquire());
        // Every pinned ref must answer, overflow or not.
        EXPECT_EQ(refs.back()->Query(1, 1), (SpcResult{0, 1}));
      }
      holding.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (holding.load() < kThreads) std::this_thread::yield();
  const size_t pinned = manager.ActiveReaders();
  EXPECT_EQ(pinned, kThreads * kRefsPerThread);
  EXPECT_GT(pinned, EpochManager::kMaxSlots);  // overflow in use

  // Publish under full oversubscription: the retired generation must
  // stay alive while any pin (incl. overflow) predates the swap.
  VertexId u = 0, v = 1;
  while (index->HasEdge(u, v)) ++v;
  ASSERT_TRUE(index->InsertEdge(u, v).ok());
  manager.Publish(IndexSnapshot::Capture(*index));
  EXPECT_EQ(manager.RetiredCount(), 1u);
  EXPECT_EQ(manager.ReclaimedCount(), 0u);

  release.store(true);
  for (std::thread& t : threads) t.join();

  // All pins drained: the next publish reclaims everything retired.
  ASSERT_TRUE(index->DeleteEdge(u, v).ok());
  manager.Publish(IndexSnapshot::Capture(*index));
  EXPECT_EQ(manager.RetiredCount(), 0u);
  EXPECT_EQ(manager.ReclaimedCount(), 2u);
  EXPECT_EQ(manager.ActiveReaders(), 0u);
}

TEST(EpochManagerTest, PinAndRelease) {
  EpochManager epochs;
  EXPECT_EQ(epochs.ActiveReaders(), 0u);
  EXPECT_EQ(epochs.MinActiveEpoch(), EpochManager::kNoActiveReader);

  const uint64_t e0 = epochs.CurrentEpoch();
  const size_t a = epochs.Enter();
  EXPECT_EQ(epochs.ActiveReaders(), 1u);
  EXPECT_EQ(epochs.MinActiveEpoch(), e0);

  EXPECT_EQ(epochs.AdvanceEpoch(), e0 + 1);
  const size_t b = epochs.Enter();
  EXPECT_NE(a, b);
  EXPECT_EQ(epochs.ActiveReaders(), 2u);
  EXPECT_EQ(epochs.MinActiveEpoch(), e0);  // oldest pin wins

  epochs.Exit(a);
  EXPECT_EQ(epochs.MinActiveEpoch(), e0 + 1);
  epochs.Exit(b);
  EXPECT_EQ(epochs.ActiveReaders(), 0u);
}

// ------------------------------------------------------- SnapshotManager

TEST(SnapshotManagerTest, PublishRetiresAndReclaims) {
  const Graph graph = GenerateBarabasiAlbert(80, 2, 21);
  auto index = MakeIndex(graph);
  SnapshotManager manager(IndexSnapshot::Capture(*index));
  const uint64_t gen0 = manager.PublishedGeneration();

  VertexId u = 0, v = 1;
  while (index->HasEdge(u, v)) ++v;  // first absent edge from vertex 0

  // A pinned reader keeps the retired generation alive.
  {
    SnapshotRef pinned = manager.Acquire();
    ASSERT_TRUE(index->InsertEdge(u, v).ok());
    manager.Publish(IndexSnapshot::Capture(*index));
    EXPECT_EQ(manager.RetiredCount(), 1u);
    EXPECT_EQ(manager.ReclaimedCount(), 0u);
    EXPECT_EQ(pinned->Generation(), gen0);  // still readable
    EXPECT_GT(manager.PublishedGeneration(), gen0);
  }

  // Pin released: the next publish drains the limbo list.
  ASSERT_TRUE(index->DeleteEdge(u, v).ok());
  manager.Publish(IndexSnapshot::Capture(*index));
  EXPECT_EQ(manager.RetiredCount(), 0u);
  EXPECT_EQ(manager.ReclaimedCount(), 2u);
  EXPECT_EQ(manager.ActiveReaders(), 0u);
}

TEST(SnapshotManagerTest, AcquireSeesLatestPublish) {
  const Graph graph = GenerateBarabasiAlbert(80, 2, 22);
  auto index = MakeIndex(graph);
  SnapshotManager manager(IndexSnapshot::Capture(*index));
  VertexId u = 0, v = 1;
  while (index->HasEdge(u, v)) ++v;  // first absent edge from vertex 0
  ASSERT_TRUE(index->InsertEdge(u, v).ok());
  manager.Publish(IndexSnapshot::Capture(*index));
  EXPECT_EQ(manager.Acquire()->Generation(), index->Generation());
}

// ----------------------------------------------------------- ResultCache

TEST(ResultCacheTest, HitMissAndSymmetry) {
  ResultCache cache(4, 64);
  SpcResult out;
  EXPECT_FALSE(cache.Lookup(1, 3, 9, &out));
  cache.Insert(1, 3, 9, {2, 5});
  ASSERT_TRUE(cache.Lookup(1, 3, 9, &out));
  EXPECT_EQ(out, (SpcResult{2, 5}));
  // SPC is symmetric; the reversed pair must hit the same entry.
  ASSERT_TRUE(cache.Lookup(1, 9, 3, &out));
  EXPECT_EQ(out, (SpcResult{2, 5}));
  EXPECT_EQ(cache.Hits(), 2u);
  EXPECT_EQ(cache.Misses(), 1u);
}

TEST(ResultCacheTest, GenerationInvalidates) {
  ResultCache cache(1, 64);
  SpcResult out;
  cache.Insert(1, 3, 9, {2, 5});
  EXPECT_FALSE(cache.Lookup(2, 3, 9, &out));  // newer generation: dropped
  // A stale insert from a worker still on generation 1 must not land.
  cache.Insert(1, 3, 9, {2, 5});
  EXPECT_FALSE(cache.Lookup(2, 3, 9, &out));
  // The old generation can no longer hit either (shard moved on).
  EXPECT_FALSE(cache.Lookup(1, 3, 9, &out));
}

// Regression for the stale-micro-batch interleaving: a worker that
// pinned generation G computes an answer while the shard is wholesale-
// dropped for G+1 (by a lookup or an insert from a newer micro-batch);
// its late Insert(G) must be discarded, never stored under the G+1
// tag where Lookup(G+1) would serve a retired graph's answer.
TEST(ResultCacheTest, StaleInsertAfterDropNeverPoisonsNewerGeneration) {
  SpcResult out;
  {
    // Drop triggered by a newer-generation *lookup*.
    ResultCache cache(1, 64);
    EXPECT_FALSE(cache.Lookup(1, 3, 9, &out));  // worker A misses at gen 1
    EXPECT_FALSE(cache.Lookup(2, 3, 9, &out));  // worker B retags to gen 2
    cache.Insert(1, 3, 9, {7, 7});              // A's late stale insert
    EXPECT_FALSE(cache.Lookup(2, 3, 9, &out));  // must not surface at gen 2
    cache.Insert(2, 3, 9, {2, 5});
    ASSERT_TRUE(cache.Lookup(2, 3, 9, &out));
    EXPECT_EQ(out, (SpcResult{2, 5}));  // B's fresh answer, not A's
  }
  {
    // Drop triggered by a newer-generation *insert*, and the stale
    // worker lags several generations behind.
    ResultCache cache(1, 64);
    cache.Insert(1, 3, 9, {1, 1});
    cache.Insert(4, 3, 9, {4, 4});  // retags the shard to gen 4
    cache.Insert(2, 3, 9, {9, 9});  // stale by two generations: dropped
    ASSERT_TRUE(cache.Lookup(4, 3, 9, &out));
    EXPECT_EQ(out, (SpcResult{4, 4}));
    // The stale pair key must not exist under any other entry either.
    EXPECT_FALSE(cache.Lookup(2, 3, 9, &out));
  }
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(4, 0);
  SpcResult out;
  cache.Insert(1, 3, 9, {2, 5});
  EXPECT_FALSE(cache.Lookup(1, 3, 9, &out));
}

// ---------------------------------------------------------- RequestQueue

TEST(RequestQueueTest, AdaptiveBatchSplitsBacklog) {
  RequestQueue queue(64);
  for (int i = 0; i < 10; ++i) {
    ServeRequest request;
    request.s = static_cast<VertexId>(i);
    ASSERT_TRUE(queue.Push(std::move(request)));
  }
  std::vector<ServeRequest> out;
  // 10 queued, 2 consumers -> fair share 5, capped at max_batch 4.
  EXPECT_EQ(queue.PopBatch(&out, 4, 2), 4u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].s, 0u);  // FIFO
  EXPECT_EQ(out[3].s, 3u);
  // 6 left, 2 consumers -> fair share 3 below the cap.
  out.clear();
  EXPECT_EQ(queue.PopBatch(&out, 4, 2), 3u);
  EXPECT_EQ(queue.Size(), 3u);
}

TEST(RequestQueueTest, CloseDrainsThenStops) {
  RequestQueue queue(8);
  ServeRequest request;
  ASSERT_TRUE(queue.Push(std::move(request)));
  queue.Close();
  ServeRequest rejected;
  EXPECT_FALSE(queue.Push(std::move(rejected)));
  std::vector<ServeRequest> out;
  EXPECT_EQ(queue.PopBatch(&out, 4, 1), 1u);  // backlog still served
  EXPECT_EQ(queue.PopBatch(&out, 4, 1), 0u);  // closed and drained
}

// --------------------------------------------------------- ServingEngine

ServingOptions SmallEngineOptions() {
  ServingOptions options;
  options.num_workers = 2;
  options.max_batch = 8;
  return options;
}

TEST(ServingEngineTest, ServesExactAnswers) {
  const Graph graph = GenerateBarabasiAlbert(60, 2, 31);
  auto index = MakeIndex(graph);
  ServingEngine engine(index.get(), SmallEngineOptions());

  QueryBatch batch;
  for (const auto& [s, t] : testing::AllPairs(60)) batch.emplace_back(s, t);
  const std::vector<SpcResult> results = engine.SubmitBatch(batch).get();
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(results[i],
              BfsSpcPair(graph, batch[i].first, batch[i].second));
  }
  EXPECT_EQ(engine.Submit(7, 7).get(), (SpcResult{0, 1}));
  EXPECT_GE(engine.Counters().queries_served, batch.size() + 1);
}

TEST(ServingEngineTest, UpdatesBecomeVisibleAfterPublish) {
  const Graph graph = GeneratePath(40);
  auto index = MakeIndex(graph);
  ServingEngine engine(index.get(), SmallEngineOptions());
  const uint64_t gen0 = engine.PublishedGeneration();

  EXPECT_EQ(engine.Submit(0, 39).get(), (SpcResult{39, 1}));

  // Close the path into a cycle: 0 -> 39 becomes a single hop.
  EdgeUpdateBatch updates;
  updates.Insert(0, 39);
  ASSERT_TRUE(engine.ApplyUpdates(updates).ok());
  EXPECT_GT(engine.PublishedGeneration(), gen0);
  EXPECT_EQ(engine.Submit(0, 39).get(), (SpcResult{1, 1}));

  const ServingCounters counters = engine.Counters();
  EXPECT_EQ(counters.updates_applied, 1u);
  EXPECT_GE(counters.generations_published, 1u);
}

TEST(ServingEngineTest, FailedUpdateDoesNotPublish) {
  const Graph graph = GeneratePath(10);
  auto index = MakeIndex(graph);
  ServingEngine engine(index.get(), SmallEngineOptions());
  const uint64_t gen0 = engine.PublishedGeneration();

  // A redundant insert coalesces to a no-op batch: nothing changes,
  // so nothing publishes.
  EXPECT_TRUE(engine.ApplyUpdate({0, 1, EdgeUpdateKind::kInsert}).ok());
  EXPECT_EQ(engine.PublishedGeneration(), gen0);

  // Batches are atomic: a delete of a missing edge rejects the whole
  // batch up front — the valid insert before it must NOT apply, and
  // no generation publishes.
  EdgeUpdateBatch updates;
  updates.Insert(0, 5);
  updates.Delete(0, 7);  // missing edge: the batch fails up front
  EXPECT_FALSE(engine.ApplyUpdates(updates).ok());
  EXPECT_EQ(engine.PublishedGeneration(), gen0);
  EXPECT_EQ(engine.Submit(0, 5).get(), (SpcResult{5, 1}));

  // The repaired batch applies and publishes exactly one generation.
  EdgeUpdateBatch good;
  good.Insert(0, 5);
  good.Insert(0, 9);
  EXPECT_TRUE(engine.ApplyUpdates(good).ok());
  EXPECT_EQ(engine.PublishedGeneration(), gen0 + 1);
  EXPECT_EQ(engine.Submit(0, 5).get(), (SpcResult{1, 1}));
}

TEST(ServingEngineTest, RepeatedQueriesHitCache) {
  const Graph graph = GenerateBarabasiAlbert(60, 2, 32);
  auto index = MakeIndex(graph);
  ServingEngine engine(index.get(), SmallEngineOptions());

  const SpcResult first = engine.Submit(3, 41).get();
  const SpcResult second = engine.Submit(3, 41).get();
  const SpcResult mirrored = engine.Submit(41, 3).get();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, mirrored);
  EXPECT_GE(engine.Counters().cache_hits, 2u);

  // Publishing a generation invalidates: the next repeat misses again.
  const uint64_t misses_before = engine.Counters().cache_misses;
  VertexId u = 0, v = 1;
  while (index->HasEdge(u, v)) ++v;  // first absent edge from vertex 0
  ASSERT_TRUE(engine.ApplyUpdate({u, v, EdgeUpdateKind::kInsert}).ok());
  engine.Submit(3, 41).get();
  EXPECT_GT(engine.Counters().cache_misses, misses_before);
}

TEST(ServingEngineTest, CacheDisabledStillExact) {
  const Graph graph = GenerateBarabasiAlbert(60, 2, 33);
  auto index = MakeIndex(graph);
  ServingOptions options = SmallEngineOptions();
  options.cache_capacity_per_shard = 0;
  ServingEngine engine(index.get(), options);
  EXPECT_EQ(engine.Submit(5, 17).get(), BfsSpcPair(graph, 5, 17));
  EXPECT_EQ(engine.Submit(5, 17).get(), BfsSpcPair(graph, 5, 17));
  EXPECT_EQ(engine.Counters().cache_hits, 0u);
}

TEST(ServingEngineTest, DrainAndStopAreIdempotent) {
  const Graph graph = GeneratePath(20);
  auto index = MakeIndex(graph);
  ServingEngine engine(index.get(), SmallEngineOptions());
  engine.SubmitBatch(MakeRandomQueries(20, 100, 3)).get();
  engine.Drain();
  engine.Drain();
  engine.Stop();
  engine.Stop();  // destructor will Stop() a third time
}

}  // namespace
}  // namespace pspc
