// Corpus: include-guard — guard name does not match the canonical
// PSPC_<PATH>_H_ form for the path this is linted under.
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

inline int Answer() { return 42; }

#endif  // WRONG_GUARD_H
