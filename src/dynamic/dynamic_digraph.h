#ifndef PSPC_SRC_DYNAMIC_DYNAMIC_DIGRAPH_H_
#define PSPC_SRC_DYNAMIC_DYNAMIC_DIGRAPH_H_

#include <algorithm>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/digraph/digraph.h"

/// Mutable adjacency view over an immutable dual-CSR `DiGraph` — the
/// directed twin of `DynamicGraph`.
///
/// The base CSR stays untouched; per-vertex deltas record directed
/// edges added and removed since the base was materialized, kept for
/// both adjacency directions so the repair kernels can expand either
/// way. Only vertices touched by updates pay any overhead — untouched
/// vertices iterate straight over the base CSR spans. `Materialize()`
/// folds the deltas into a fresh `DiGraph` when the owning index
/// decides to rebuild.
namespace pspc {

class DynamicDiGraph {
 public:
  /// `base` must outlive the view (the owning DynamicDspcIndex keeps
  /// both and rebases after rebuilds).
  explicit DynamicDiGraph(const DiGraph* base)
      : base_(base), num_edges_(base->NumEdges()) {}

  /// Swaps in a new base and drops all deltas.
  void Rebase(const DiGraph* base) {
    base_ = base;
    out_delta_.clear();
    in_delta_.clear();
    num_edges_ = base->NumEdges();
    delta_edges_ = 0;
  }

  VertexId NumVertices() const { return base_->NumVertices(); }

  /// Number of directed edges.
  EdgeId NumEdges() const { return num_edges_; }

  /// Number of structural changes applied since the last Rebase (an
  /// un-remove cancels a removal rather than counting twice).
  size_t DeltaEdges() const { return delta_edges_; }

  /// True iff the directed edge `u -> v` is present.
  bool HasEdge(VertexId u, VertexId v) const;

  /// InvalidArgument for self-loops or endpoints outside `[0, n)` (the
  /// vertex universe is fixed; HasEdge on such input would be UB).
  Status ValidateEndpoints(VertexId u, VertexId v) const;

  /// Adds the directed edge `u -> v`. InvalidArgument on self-loops,
  /// out-of-range endpoints, or an edge that already exists. The
  /// reverse edge `v -> u` is independent.
  Status AddEdge(VertexId u, VertexId v);

  /// Removes the directed edge `u -> v`. NotFound if absent;
  /// InvalidArgument on self-loops or out-of-range endpoints.
  Status RemoveEdge(VertexId u, VertexId v);

  /// Invokes `fn(w)` for every current successor `w` of `v` (targets
  /// of edges v -> w). Order is base-CSR order followed by added edges;
  /// repair BFS results do not depend on it.
  template <typename Fn>
  void ForEachOutNeighbor(VertexId v, Fn&& fn) const {
    ForEachDelta(out_delta_, base_->OutNeighbors(v), v, fn);
  }

  /// Invokes `fn(w)` for every current predecessor `w` of `v` (sources
  /// of edges w -> v).
  template <typename Fn>
  void ForEachInNeighbor(VertexId v, Fn&& fn) const {
    ForEachDelta(in_delta_, base_->InNeighbors(v), v, fn);
  }

  /// Dual-CSR snapshot of the current graph (for rebuilds and oracles).
  DiGraph Materialize() const;

 private:
  struct VertexDelta {
    std::vector<VertexId> added;    // sorted
    std::vector<VertexId> removed;  // sorted; always subset of base edges
  };
  using DeltaMap = std::unordered_map<VertexId, VertexDelta>;

  template <typename Fn>
  static void ForEachDelta(const DeltaMap& delta,
                           std::span<const VertexId> base_nbrs, VertexId v,
                           Fn&& fn) {
    const auto it = delta.find(v);
    if (it == delta.end()) {
      for (const VertexId w : base_nbrs) fn(w);
      return;
    }
    const VertexDelta& d = it->second;
    for (const VertexId w : base_nbrs) {
      if (!std::binary_search(d.removed.begin(), d.removed.end(), w)) fn(w);
    }
    for (const VertexId w : d.added) fn(w);
  }

  static void ApplyAdd(DeltaMap* delta, VertexId key, VertexId value);
  static void ApplyRemove(DeltaMap* delta, VertexId key, VertexId value);

  const DiGraph* base_;
  DeltaMap out_delta_;  // key: source, values: targets
  DeltaMap in_delta_;   // key: target, values: sources
  EdgeId num_edges_ = 0;
  size_t delta_edges_ = 0;
};

}  // namespace pspc

#endif  // PSPC_SRC_DYNAMIC_DYNAMIC_DIGRAPH_H_
