#ifndef PSPC_SRC_DYNAMIC_DYNAMIC_SPC_INDEX_H_
#define PSPC_SRC_DYNAMIC_DYNAMIC_SPC_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/core/build_options.h"
#include "src/dynamic/chunked_overlay.h"
#include "src/dynamic/dynamic_graph.h"
#include "src/dynamic/edge_update.h"
#include "src/dynamic/repair_core.h"
#include "src/graph/graph.h"
#include "src/label/spc_index.h"
#include "src/obs/flight_recorder.h"
#include "src/dynamic/stats_export.h"
#include "src/order/vertex_order.h"

/// Incremental maintenance of the ESPC 2-hop index under edge churn.
///
/// `DynamicSpcIndex` wraps an immutable CSR `SpcIndex` with a
/// persistent chunked label overlay (`chunked_overlay.h`) and repairs
/// labels in place of the full-rebuild the static pipeline would need:
///
///  * **Insertion** `{a, b}` — every changed label pair `(v, h)` gains
///    a new shortest trough path crossing the edge, whose hub-side
///    section is itself a trough-shortest path recorded in `L(a)` (or
///    `L(b)`). It therefore suffices to walk the two endpoint label
///    lists in ascending hub-rank order and run one *resumed pruned
///    BFS* per hub, seeded at the opposite endpoint with the hub's
///    recorded distance + 1 and trough count (the incremental scheme of
///    dynamic hub labeling, adapted to counts).
///
///  * **Deletion** `{a, b}` — affected hubs are detected by a pruned
///    partial BFS from each endpoint over the pre-deletion graph: the
///    BFS only expands vertices with `d(u, a) + 1 == d(u, b)` (the edge
///    lies on one of their shortest paths to the far endpoint, answered
///    by 2-hop queries), and classifies each as a *full sender* (every
///    shortest path to the far endpoint dies with the edge, so
///    distances from it can grow and its pruned restricted BFS is
///    re-run from scratch), a *subtractive sender* (a shared hub of
///    both endpoint labels that keeps alternative routes: provably
///    only its trough *counts* can drop, so a depth-capped BFS from
///    the far endpoint subtracts the through-edge path counts from the
///    existing entries directly — the workhorse that keeps deletions
///    cheap, since shared hubs are the high-ranked ones whose full
///    re-runs would each sweep most of the graph), or a mere
///    *receiver* (only entries stored at it change). Saturated counts
///    cannot be subtracted, so those hubs escalate to a full re-run.
///
///  * **Batches** — `ApplyBatch` is atomic: the batch planner
///    (`batch_planner.h`) validates the whole batch against the
///    pre-batch graph up front (a bad update rejects the batch with
///    nothing applied), coalesces canceling pairs and redundant
///    inserts to no-ops, and reduces the rest to its net effect.
///    Deletion repair then coalesces across the net-deleted edges:
///    affected regions are detected per edge against the still-exact
///    pre-batch index, all edges are removed at once, and each
///    affected hub repairs **once** — a hub shared by several regions
///    escalates to a single full re-run over the union of the opposite
///    regions instead of one run per edge. Insertions coalesce the
///    same way: endpoint-hub seeds are gathered across all net-new
///    edges and each hub runs one *multi-source* resumed BFS instead
///    of one per (edge, endpoint-entry). Hubs repair in ascending rank
///    order (the construction-order dependency); runs whose claimed
///    regions are disjoint execute in parallel on a `std::thread` pool
///    with per-thread BFS scratch, writing through staged label ops
///    that commit in rank order — a task that would read another
///    in-flight task's region aborts and re-runs sequentially, so the
///    result is deterministic and identical to the sequential order.
///
/// Between rebuilds the maintained labels satisfy: every pair with a
/// positive trough count at the true shortest distance has a correct
/// entry, and any extra (stale) entry records a distance strictly
/// longer than the true one — such entries can never reach the minimum
/// in the query merge, so queries stay exact while the index slowly
/// accretes garbage. Deletions are the one place this invariant needs
/// active defense: a grown pair distance can *meet* a stale entry's
/// recorded distance, so any hub whose distance to the opposite region
/// grew re-runs whenever an opposite label still holds an entry for it
/// (see the task assembly in RepairDeletion). The staleness policy
/// watches the overlay size and folds everything into a fresh rebuild
/// (through the standard builder_facade pipeline, re-ordering
/// included) past a threshold.
///
/// Scope: unweighted undirected graphs over a fixed vertex universe
/// `[0, n)`; saturated counts remain saturating (as everywhere in the
/// library).
///
/// Threading: the index itself is externally single-threaded (one
/// thread of control for reads and writes); the parallel phases above
/// are internal. Concurrent serving goes through `src/serve/`: a
/// writer thread applies updates here and publishes immutable
/// `IndexSnapshot` generations (captured via `Generation()`,
/// `SharedBaseIndex()` and `CaptureOverlay()`), which readers query
/// without ever touching this object. Capture is O(delta since the
/// previous capture): it freezes the chunked overlay by structural
/// sharing instead of deep-copying it.
namespace pspc {

struct DynamicOptions {
  /// Rebuild when `overlay entries / base entries` exceeds this.
  double rebuild_threshold = 0.25;
  /// When false, StalenessRatio still grows but nothing auto-rebuilds
  /// (callers drive Rebuild() themselves).
  bool auto_rebuild = true;
  /// Pipeline used for staleness rebuilds (ordering recomputed from
  /// the current graph, construction parallel per these options).
  BuildOptions rebuild_options;
  /// Threads for the parallel repair phases (<= 0: all cores).
  int num_threads = 0;
  /// Run disjoint-region hub repairs of a coalesced batch on a thread
  /// pool (`num_threads` wide). Off = identical plan, sequential run.
  bool parallel_batch_repair = true;
  /// Registry receiving the `dynamic.*` metrics (counters mirrored
  /// from `Stats()`, stage-timing histograms, overlay gauges).
  /// Null selects the process-global registry.
  obs::MetricsRegistry* metrics = nullptr;
  /// Flight recorder receiving rebuild start/end events. Null selects
  /// the process-global one.
  obs::FlightRecorder* flight_recorder = nullptr;
};

// DynamicStats (and the repair scratch/sink/kernel machinery this
// class shares with the directed `DynamicDspcIndex`) live in
// repair_core.h.

class DynamicSpcIndex {
 public:
  /// Wraps a prebuilt index. `graph` must be the exact graph `index`
  /// was built from.
  DynamicSpcIndex(Graph graph, SpcIndex index, DynamicOptions options = {});

  /// Builds the initial index for `graph` through builder_facade.
  DynamicSpcIndex(Graph graph, const BuildOptions& build_options,
                  DynamicOptions options = {});

  // Self-referential (graph/label views point into owned members).
  DynamicSpcIndex(const DynamicSpcIndex&) = delete;
  DynamicSpcIndex& operator=(const DynamicSpcIndex&) = delete;

  /// Distance and exact shortest-path count on the *current* graph.
  SpcResult Query(VertexId s, VertexId t) const;

  /// Single-edge updates; label repair runs before returning. Errors
  /// (self-loop, out-of-range, duplicate insert, missing delete) leave
  /// the index untouched.
  Status InsertEdge(VertexId u, VertexId v);
  Status DeleteEdge(VertexId u, VertexId v);
  Status Apply(const EdgeUpdate& update);

  /// Applies the batch *atomically* with coalesced repair. The whole
  /// batch is validated against the pre-batch graph up front — on any
  /// error (out-of-range endpoint, self-loop, delete of a missing
  /// edge) nothing is applied and the index is untouched. Canceling
  /// pairs (`i u v` then `d u v`), redundant inserts (duplicates, or
  /// an edge the graph already has) and delete+reinsert round trips
  /// coalesce to no-ops; the net updates repair with one run per
  /// affected hub (see the class comment). Publishes one generation
  /// bump for the whole batch.
  Status ApplyBatch(const EdgeUpdateBatch& batch);

  /// Overlay entries relative to base entries — what the staleness
  /// policy compares against `rebuild_threshold`.
  double StalenessRatio() const;

  /// Forces the full rebuild the staleness policy would trigger.
  void Rebuild();

  VertexId NumVertices() const { return graph_.NumVertices(); }
  EdgeId NumEdges() const { return graph_.NumEdges(); }

  /// True iff `{u, v}` is an edge of the current graph.
  bool HasEdge(VertexId u, VertexId v) const { return graph_.HasEdge(u, v); }

  /// Current labels of `v` (base or overlay), rank-sorted.
  std::span<const LabelEntry> Labels(VertexId v) const {
    return overlay_.Labels(v);
  }

  /// CSR snapshot of the current graph.
  Graph MaterializeGraph() const { return graph_.Materialize(); }

  /// Monotone label-state version: bumped by every applied update
  /// (once per coalesced batch) and every rebuild.
  /// `IndexSnapshot::Capture` tags snapshots with it so the serving
  /// layer can tell whether anything changed since the last published
  /// generation.
  uint64_t Generation() const { return generation_; }

  /// Shared ownership of the current immutable base. Snapshots hold
  /// this so a later Rebuild cannot free the CSR arrays out from under
  /// an epoch still reading them.
  std::shared_ptr<const SpcIndex> SharedBaseIndex() const { return base_; }

  /// Shared ownership of the packed (delta-compressed, see
  /// src/label/packed_label.h) mirror of the current base — what
  /// snapshot queries stream instead of the raw CSR. Refreshed
  /// alongside the base on construction, rebuild, and compaction
  /// folds; never null.
  std::shared_ptr<const PackedLabelMap> SharedPackedBase() const {
    return packed_base_;
  }

  /// Freezes the overlay into a structurally shared view and advances
  /// its capture boundary (`ChunkedOverlay::Capture`). Writer thread
  /// only — `IndexSnapshot::Capture` is the one intended caller.
  OverlayView CaptureOverlay() { return overlay_.Capture(); }

  /// The live chunked overlay (diagnostics: overlaid/copied counts).
  const ChunkedOverlay& Overlay() const { return overlay_; }

  const SpcIndex& BaseIndex() const { return *base_; }
  const VertexOrder& Order() const { return order_; }
  const DynamicStats& Stats() const { return stats_; }
  const DynamicOptions& Options() const { return options_; }

 private:
  // The overlay compactor (src/dynamic/compaction.h) is the one
  // component allowed behind the single-writer facade: it rewrites
  // overlay chunks into packed form and folds the overlay into a
  // fresh base, both on the writer's thread of control.
  friend class OverlayCompactor;

  // The repair scratch, staged-write sink, region/seed/side types, and
  // the BFS kernels themselves are the direction-generic machinery of
  // repair_core.h; this class binds them to the symmetric view.

  /// Compressed per-(edge, side) region of a coalesced deletion batch.
  /// `flags` parallels `touched` (values as in AffectedSide): the batch
  /// classifier needs *every* membership — a hub that is merely a
  /// receiver for two different edges can still see entangled distance
  /// growth no single-edge certificate covers, so multi-region
  /// membership of any class escalates to a full re-run. `full_pre`
  /// parallels `full_ranks` with the pre-deletion distance from the
  /// side's endpoint to each full sender — all the distance-change
  /// filter ever reads, so nothing n-sized outlives planning.
  struct SparseSide {
    std::vector<VertexId> touched;
    std::vector<int8_t> flags;
    std::vector<Rank> full_ranks;
    std::vector<Rank> subtract_ranks;
    std::vector<uint32_t> full_pre;
  };

  /// One repair obligation of a coalesced deletion batch: a hub that
  /// re-runs fully or subtracts, writing into the union of the listed
  /// (edge, side) regions.
  struct DeletionTask {
    Rank rank = 0;
    bool subtract = false;
    VertexId start = 0;       // subtract: far endpoint the BFS seeds from
    uint32_t seed_dist = 0;   // subtract: entry dist + 1 across the edge
    Count seed_count = 0;     // subtract: through-edge trough count
    uint32_t depth_cap = 0;   // subtract: farthest entry dist to fix
    // (edge index, side index) write regions; opposite the hub's side.
    std::vector<std::pair<uint32_t, uint8_t>> regions;
  };
  struct DeletedEdgePlan;

  void InitScratch();
  void MaybeRebuild();
  /// Re-encodes the packed mirror from the current `base_`.
  void RefreshPackedBase();
  /// Mirrors `stats_` deltas into the registry and refreshes the
  /// overlay/generation gauges; tail of every public mutation.
  void PublishMetrics();
  int ResolvedThreads() const;
  /// The symmetric kernel view over the live graph/overlay/order.
  SymmetricRepairView RepView() { return {&graph_, &overlay_, &order_}; }

  // ------------------------------------------------------- insertion
  void RepairInsertions(
      std::span<const std::pair<VertexId, VertexId>> edges);

  // -------------------------------------------------------- deletion
  void RepairDeletion(VertexId a, VertexId b);
  void RepairDeletionsBatch(
      const std::vector<std::pair<VertexId, VertexId>>& edges);
  void DetectAffectedSide(VertexId from, VertexId to,
                          const std::vector<uint8_t>& hub_of_a,
                          const std::vector<uint8_t>& hub_of_b,
                          AffectedSide* side);
  // Plain BFS distances from `source` over the current graph view.
  std::vector<uint32_t> BfsDistances(VertexId source);
  // Exact distance-change detection for full-sender downgrades (see
  // repair_core.h); runs on the post-deletion graph. `sender_pre` /
  // `opposite_pre` parallel the rank lists with each vertex's
  // pre-deletion distance from its own side's endpoint.
  void MarkDistanceChanges(const std::vector<Rank>& sender_ranks,
                           std::span<const uint32_t> sender_pre,
                           const std::vector<Rank>& opposite_full_ranks,
                           std::span<const uint32_t> opposite_pre,
                           std::vector<uint8_t>* needs_full);
  // Validates subtraction seeds of one side's sender hubs against the
  // still-exact pre-deletion index; fills the rank-indexed seed arrays.
  void ValidateDeletionSeeds(const std::vector<Rank>& full_ranks,
                             const std::vector<Rank>& subtract_ranks,
                             std::span<const LabelEntry> near_labels,
                             VertexId near, VertexId far,
                             const std::vector<uint8_t>& hub_of_a,
                             const std::vector<uint8_t>& hub_of_b,
                             std::vector<uint8_t>* seed_ok,
                             std::vector<uint32_t>* seed_dist,
                             std::vector<Count>* seed_count,
                             std::vector<VertexId>* seed_far);

  /// Kernel wrappers over the symmetric view (see repair_core.h for
  /// semantics); batch_repair.cc drives them per coalesced task.
  bool RepairHubAfterDeletion(Rank hub_rank, RegionView region,
                              RepairScratch& scratch, LabelWriteSink& sink,
                              DynamicStats* stats,
                              const int32_t* claim_owner = nullptr,
                              int32_t claim_self = -1);
  bool SubtractiveDeleteRepair(Rank hub_rank, VertexId start,
                               uint32_t seed_dist, Count seed_count,
                               uint32_t depth_cap, RegionView region,
                               RepairScratch& scratch, LabelWriteSink& sink,
                               DynamicStats* stats);

  // Coalesced-batch execution: ascending-rank task run with
  // disjoint-region waves on a thread pool (batch_repair.cc).
  void ExecuteDeletionTasks(std::vector<DeletionTask>& tasks,
                            const std::vector<DeletedEdgePlan>& plans);
  // `force_full` skips a subtract task's subtraction attempt (used
  // when a wave run already proved it must escalate).
  void RunDeletionTaskLive(const DeletionTask& task,
                           const std::vector<DeletedEdgePlan>& plans,
                           RepairScratch& scratch, bool force_full = false);
  void MaterializeTaskRegion(const DeletionTask& task,
                             const std::vector<DeletedEdgePlan>& plans,
                             RepairScratch& scratch) const;
  void CommitStagedOps(std::span<const StagedLabelOp> ops);

  Graph base_graph_;
  std::shared_ptr<const SpcIndex> base_;
  std::shared_ptr<const PackedLabelMap> packed_base_;
  VertexOrder order_;
  DynamicGraph graph_;
  ChunkedOverlay overlay_;
  DynamicOptions options_;
  DynamicStats stats_;
  obs::DynamicStatsExporter obs_;
  obs::FlightRecorder* recorder_;
  uint64_t generation_ = 0;

  RepairScratch scratch_;                    // sequential paths
  std::vector<RepairScratch> scratch_pool_;  // parallel waves (lazy)
  std::vector<uint8_t> subtract_side_;  // by rank; 1 = a-side, 2 = b-side
  std::vector<uint32_t> bucket_max_;    // by rank; max target entry dist
};

}  // namespace pspc

#endif  // PSPC_SRC_DYNAMIC_DYNAMIC_SPC_INDEX_H_
