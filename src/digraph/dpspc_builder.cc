#include "src/digraph/dpspc_builder.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include <omp.h>

#include "src/common/logging.h"
#include "src/common/parallel.h"
#include "src/common/saturating.h"
#include "src/common/timer.h"
#include "src/label/label_set.h"

namespace pspc {
namespace {

struct ThreadScratch {
  std::vector<Count> cand_count;
  std::vector<uint32_t> cand_epoch;
  std::vector<Rank> cand_hubs;
  std::vector<Distance> tmp_dist;
  uint32_t epoch = 0;
  std::vector<LabelEntry> pending;
  size_t candidates = 0;
  size_t pruned = 0;

  void Init(VertexId n) {
    cand_count.assign(n, 0);
    cand_epoch.assign(n, 0);
    tmp_dist.assign(n, kInfDistance);
  }
};

/// One side of the tandem construction. For the Lin side, `pull_side`
/// is the in-store, `witness_side` the out-store, and candidates are
/// pulled from in-neighbors; the Lout side mirrors it.
struct SideContext {
  LevelLabelStore* pull_side;           // side being extended
  const LevelLabelStore* witness_side;  // opposite side, for pruning
  bool pull_from_in_neighbors;
};

void ProcessVertex(const DiGraph& graph, const VertexOrder& order,
                   const SideContext& side, ThreadScratch& s, VertexId u,
                   Distance d, std::vector<LabelEntry>* staging) {
  const Rank my_rank = order.RankOf(u);
  ++s.epoch;
  s.cand_hubs.clear();
  const auto neighbors = side.pull_from_in_neighbors
                             ? graph.InNeighbors(u)
                             : graph.OutNeighbors(u);
  for (VertexId v : neighbors) {
    for (const LabelEntry& e : side.pull_side->Level(v, d - 1)) {
      if (e.hub_rank >= my_rank) break;  // level entries rank-sorted
      if (s.cand_epoch[e.hub_rank] != s.epoch) {
        s.cand_epoch[e.hub_rank] = s.epoch;
        s.cand_count[e.hub_rank] = e.count;
        s.cand_hubs.push_back(e.hub_rank);
      } else {
        s.cand_count[e.hub_rank] = SatAdd(s.cand_count[e.hub_rank], e.count);
      }
    }
  }
  if (s.cand_hubs.empty()) return;

  std::sort(s.cand_hubs.begin(), s.cand_hubs.end());
  // tmp maps hub rank -> distance on u's *own* pull side: for an
  // in-candidate, Lin(u) supplies the z -> u legs of potential
  // witnesses; the h -> z legs are scanned from Lout(h) below.
  const auto my_labels = side.pull_side->Entries(u);
  for (const LabelEntry& e : my_labels) s.tmp_dist[e.hub_rank] = e.dist;

  s.pending.clear();
  for (Rank hub_rank : s.cand_hubs) {
    ++s.candidates;
    const VertexId h = order.VertexAt(hub_rank);
    uint32_t q = kInfSpcDistance;
    for (const LabelEntry& e : side.witness_side->Entries(h)) {
      if (e.dist >= d) break;  // committed levels are distance-sorted
      const Distance leg = s.tmp_dist[e.hub_rank];
      if (leg == kInfDistance) continue;
      q = std::min<uint32_t>(q, static_cast<uint32_t>(e.dist) + leg);
      if (q < d) break;
    }
    if (q < d) {
      ++s.pruned;
      continue;
    }
    s.pending.push_back({hub_rank, d, s.cand_count[hub_rank]});
  }
  for (const LabelEntry& e : my_labels) s.tmp_dist[e.hub_rank] = kInfDistance;
  *staging = s.pending;
}

size_t RunSide(const DiGraph& graph, const VertexOrder& order,
               const SideContext& side, std::vector<ThreadScratch>& scratch,
               std::vector<std::vector<LabelEntry>>& staging, Distance d,
               int num_threads) {
  const VertexId n = graph.NumVertices();
  ParallelForDynamic(n, num_threads, 32, [&](size_t ui) {
    const auto u = static_cast<VertexId>(ui);
    ProcessVertex(graph, order, side, scratch[omp_get_thread_num()], u, d,
                  &staging[u]);
  });
  std::atomic<size_t> committed{0};
  ParallelForStatic(n, num_threads, [&](size_t ui) {
    const auto u = static_cast<VertexId>(ui);
    side.pull_side->CommitLevel(u, staging[u]);
    if (!staging[u].empty()) {
      // relaxed: per-thread tally; the parallel-for join orders it
      // before the final load.
      committed.fetch_add(staging[u].size(), std::memory_order_relaxed);
      staging[u].clear();
    }
  });
  return committed.load();
}

}  // namespace

DiPspcBuildResult BuildDirectedPspcIndex(const DiGraph& graph,
                                         const VertexOrder& order,
                                         const DiPspcOptions& options) {
  const VertexId n = graph.NumVertices();
  PSPC_CHECK(order.Size() == n);
  DiPspcBuildResult result;
  int num_threads = options.num_threads;
  if (num_threads <= 0) num_threads = MaxThreads();

  WallTimer timer;
  LevelLabelStore in_store(n), out_store(n);
  for (VertexId v = 0; v < n; ++v) {
    const LabelEntry self{order.RankOf(v), 0, 1};
    in_store.CommitLevel(v, {&self, 1});
    out_store.CommitLevel(v, {&self, 1});
  }
  result.stats.entries_per_level.push_back(2 * static_cast<size_t>(n));
  result.stats.num_iterations = 1;

  std::vector<ThreadScratch> scratch(num_threads);
  for (auto& s : scratch) s.Init(n);
  std::vector<std::vector<LabelEntry>> staging(n);

  const SideContext in_side{&in_store, &out_store,
                            /*pull_from_in_neighbors=*/true};
  const SideContext out_side{&out_store, &in_store,
                             /*pull_from_in_neighbors=*/false};
  for (Distance d = 1; d < kInfDistance; ++d) {
    // Both sides of iteration d read only committed (< d) levels of
    // both stores; the in side's commit happens before the out side's
    // processing, but distance-d entries can only raise query values
    // to >= d, never below, so the strict prune is unaffected — the
    // same argument that makes the undirected commit order benign.
    const size_t in_added =
        RunSide(graph, order, in_side, scratch, staging, d, num_threads);
    const size_t out_added =
        RunSide(graph, order, out_side, scratch, staging, d, num_threads);
    if (in_added + out_added == 0) break;
    result.stats.entries_per_level.push_back(in_added + out_added);
    ++result.stats.num_iterations;
  }

  for (const ThreadScratch& s : scratch) {
    result.stats.candidates_after_merge += s.candidates;
    result.stats.pruned_by_query += s.pruned;
  }
  result.stats.total_entries =
      in_store.TotalEntries() + out_store.TotalEntries();
  result.stats.labels_inserted = result.stats.total_entries;
  result.stats.construction_seconds = timer.ElapsedSeconds();
  result.index =
      DiSpcIndex(order, out_store.TakeEntries(), in_store.TakeEntries());
  return result;
}

VertexOrder DirectedDegreeOrder(const DiGraph& graph) {
  std::vector<VertexId> order(graph.NumVertices());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&graph](VertexId a, VertexId b) {
                     return graph.InDegree(a) + graph.OutDegree(a) >
                            graph.InDegree(b) + graph.OutDegree(b);
                   });
  return VertexOrder(std::move(order));
}

}  // namespace pspc
