#ifndef PSPC_SRC_LABEL_SPC_INDEX_H_
#define PSPC_SRC_LABEL_SPC_INDEX_H_

#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/label/label_entry.h"
#include "src/order/vertex_order.h"

/// The finalized, immutable 2-hop SPC index.
///
/// Per vertex, entries sorted by hub rank are stored in one flat array
/// (CSR layout). A query scans `L(s)` and `L(t)` with a sorted merge,
/// keeps the common hubs minimizing `sd(s,h) + sd(h,t)`, and sums
/// `theta(s,h) * theta(h,t)` over them — Equations (1) and (2) of the
/// paper. Exactness follows from the ESPC property of the stored
/// labels: every shortest path is counted exactly once, at its unique
/// highest-ranked vertex.
namespace pspc {

class SpcIndex {
 public:
  /// Empty index (queries abort); use a builder from src/core/.
  SpcIndex() = default;

  /// Assembles from per-vertex entry lists in any order; entries are
  /// sorted by hub rank and flattened. `labels.size()` must equal
  /// `order.Size()`.
  SpcIndex(VertexOrder order, std::vector<std::vector<LabelEntry>> labels);

  /// Number of indexed vertices.
  VertexId NumVertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Distance and exact number of shortest paths between `s` and `t`.
  /// `(kInfDistance, 0)` if disconnected; `(0, 1)` if `s == t`.
  SpcResult Query(VertexId s, VertexId t) const;

  /// Label entries of `v`, sorted by hub rank.
  std::span<const LabelEntry> Labels(VertexId v) const {
    return {entries_.data() + offsets_[v], entries_.data() + offsets_[v + 1]};
  }

  /// Non-owning CSR view of the label table (the base a dynamic
  /// overlay reads through); valid while the index is alive.
  BaseLabelMap LabelMap() const {
    return {offsets_.data(), entries_.data(), NumVertices()};
  }

  /// The vertex order the index was built under.
  const VertexOrder& Order() const { return order_; }

  /// Total number of label entries.
  size_t TotalEntries() const { return entries_.size(); }

  /// Mean entries per vertex.
  double AverageLabelSize() const;

  /// In-memory footprint of the label arrays + offsets, in bytes — the
  /// "index size" metric of the paper's Fig. 6.
  size_t SizeBytes() const;

  /// Binary persistence (magic-checked; Corruption on mismatch).
  Status Save(const std::string& path) const;
  static Result<SpcIndex> Load(const std::string& path);

  /// Structural equality: same order and identical entry arrays. Used
  /// by tests for the paper's determinism claim (Exp 2: the index is
  /// identical for any thread count).
  friend bool operator==(const SpcIndex&, const SpcIndex&) = default;

 private:
  VertexOrder order_;
  std::vector<uint64_t> offsets_;  // n + 1
  std::vector<LabelEntry> entries_;
};

}  // namespace pspc

#endif  // PSPC_SRC_LABEL_SPC_INDEX_H_
