#include "src/digraph/digraph_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

namespace pspc {
namespace {

Result<DiGraph> ParseDirectedStream(std::istream& in) {
  std::vector<std::pair<uint64_t, uint64_t>> raw;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) {
      return Status::Corruption("bad edge at line " + std::to_string(line_no) +
                                ": '" + line + "'");
    }
    raw.emplace_back(u, v);
  }

  uint64_t max_id = 0;
  for (const auto& [u, v] : raw) max_id = std::max({max_id, u, v});
  if (!raw.empty() && max_id >= kInvalidVertex) {
    return Status::OutOfRange("vertex id " + std::to_string(max_id) +
                              " exceeds the 32-bit id space");
  }
  DiGraphBuilder builder(raw.empty() ? 0
                                     : static_cast<VertexId>(max_id + 1));
  for (const auto& [u, v] : raw) {
    builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return builder.Build();
}

}  // namespace

Result<DiGraph> LoadDirectedEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ParseDirectedStream(in);
}

Result<DiGraph> ParseDirectedEdgeList(const std::string& text) {
  std::istringstream in(text);
  return ParseDirectedStream(in);
}

}  // namespace pspc
