#ifndef PSPC_SRC_CORE_SCHEDULER_H_
#define PSPC_SRC_CORE_SCHEDULER_H_

#include <span>
#include <vector>

#include "src/common/types.h"
#include "src/core/build_options.h"

/// Iteration schedule planning (paper §III-F).
///
/// A PSPC iteration processes a set of active vertices whose per-vertex
/// work varies wildly (a vertex's cost is roughly the number of label
/// entries its neighbors produced last level — Def. 11). The schedule
/// decides both the processing sequence and the chunking discipline:
///
///  * kStatic    — node-order sequence, equal contiguous ranges per
///                 thread (the paper's strawman; imbalanced, Example 3).
///  * kDynamic   — node-order sequence, dynamic chunk self-scheduling.
///  * kCostAware — sequence sorted by estimated cost (largest first, an
///                 LPT-style heuristic) + dynamic chunking.
namespace pspc {

struct SchedulePlan {
  /// Vertices in processing sequence.
  std::vector<VertexId> sequence;
  /// False: split `sequence` into equal static ranges per thread.
  bool dynamic = true;
  /// Chunk size for dynamic self-scheduling.
  size_t chunk = 16;
};

/// Plans one iteration over `active` vertices. `costs[i]` estimates the
/// work of `active[i]` (used by kCostAware only; may be empty
/// otherwise). `rank_of` supplies the node order for the
/// static/dynamic sequences. Deterministic: ties break by rank.
SchedulePlan PlanIteration(ScheduleKind kind, std::span<const VertexId> active,
                           std::span<const uint64_t> costs,
                           const std::vector<Rank>& rank_of);

}  // namespace pspc

#endif  // PSPC_SRC_CORE_SCHEDULER_H_
