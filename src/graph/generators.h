#ifndef PSPC_SRC_GRAPH_GENERATORS_H_
#define PSPC_SRC_GRAPH_GENERATORS_H_

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/graph/graph.h"

/// Synthetic graph generators.
///
/// The paper evaluates on 10 public SNAP/KONECT/LAW graphs that are not
/// redistributable inside this repository, so each dataset is replaced
/// by a seeded generator from the matching family (see DESIGN.md §4):
/// Barabási–Albert for social networks, R-MAT for web graphs,
/// Watts–Strogatz for geo-social small worlds, a perturbed grid for
/// road networks. All generators are deterministic given a seed.
namespace pspc {

/// Erdős–Rényi G(n, m): `num_edges` distinct uniform edges.
Graph GenerateErdosRenyi(VertexId num_vertices, EdgeId num_edges,
                         uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `edges_per_vertex` existing vertices chosen proportionally to degree
/// (classic repeated-endpoint sampling). Produces the heavy-tailed
/// degree skew typical of social networks.
Graph GenerateBarabasiAlbert(VertexId num_vertices,
                             VertexId edges_per_vertex, uint64_t seed);

/// Barabási–Albert followed by one triangle-closure pass: with
/// probability `closure_prob` each wedge centered on a new vertex is
/// closed, raising clustering toward co-authorship-network levels.
Graph GenerateClusteredBa(VertexId num_vertices, VertexId edges_per_vertex,
                          double closure_prob, uint64_t seed);

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors
/// per side, each edge rewired with probability `rewire_prob`.
Graph GenerateWattsStrogatz(VertexId num_vertices, VertexId k,
                            double rewire_prob, uint64_t seed);

/// R-MAT recursive matrix generator (a, b, c quadrant probabilities;
/// d = 1 - a - b - c). Skewed power-law graphs typical of web crawls.
/// `scale` is log2 of the vertex count.
Graph GenerateRmat(int scale, EdgeId num_edges, double a, double b, double c,
                   uint64_t seed);

/// Road-network analogue: `rows x cols` grid where each lattice edge is
/// kept with probability `keep_prob` and a sprinkle of diagonal
/// shortcuts is added; guaranteed-degree >= 1 is NOT enforced (isolated
/// vertices model unreachable parcels and exercise the disconnected
/// query path). Low degree, large diameter, near-planar.
Graph GenerateRoadGrid(VertexId rows, VertexId cols, double keep_prob,
                       double diagonal_prob, uint64_t seed);

/// Deterministic classics used heavily by tests.
Graph GeneratePath(VertexId num_vertices);
Graph GenerateCycle(VertexId num_vertices);
Graph GenerateComplete(VertexId num_vertices);
Graph GenerateStar(VertexId num_leaves);
/// Balanced tree with given branching factor.
Graph GenerateTree(VertexId num_vertices, VertexId branching);
/// `levels`-layer "diamond ladder": consecutive layers of `width`
/// vertices fully connected layer-to-layer. SPC(s, t) across the ladder
/// is width^(levels-1) — a count-explosion stress test.
Graph GenerateDiamondLadder(VertexId levels, VertexId width);

/// The 10-vertex example graph of the paper's Figure 2 (edge list
/// reconstructed from the Table II labels; validated in tests against
/// every label entry of Table II). Vertex `v_i` of the paper is id
/// `i - 1` here.
Graph PaperFigure2Graph();

}  // namespace pspc

#endif  // PSPC_SRC_GRAPH_GENERATORS_H_
