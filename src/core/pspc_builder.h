#ifndef PSPC_SRC_CORE_PSPC_BUILDER_H_
#define PSPC_SRC_CORE_PSPC_BUILDER_H_

#include <span>

#include "src/core/build_options.h"
#include "src/core/build_stats.h"
#include "src/graph/graph.h"
#include "src/label/spc_index.h"
#include "src/order/vertex_order.h"

/// PSPC — parallel shortest-path-counting index construction (the
/// paper's contribution, §III-C..H).
///
/// Where HP-SPC's hub-by-hub loop forces labels of rank i to wait for
/// ranks < i (Lemma 1's order dependency), PSPC reorganizes the same
/// label set by *distance* (Defs. 6/7): iteration `d` constructs every
/// label entry of distance exactly `d`, for all vertices, in parallel.
/// Correctness rests on two observations proved in the paper and
/// re-derived in DESIGN.md §1:
///
///  1. Propagation (Lemma 2): every distance-d trough shortest path
///     `u ~> w` extends a distance-(d-1) trough shortest path of a
///     neighbor of `u`, so the candidate hubs for `L_d(u)` are exactly
///     the hubs in `L_{d-1}(v)` over neighbors `v`, kept only when the
///     hub outranks `u` (Lemma 3) and counts summed across neighbors
///     (Label Merging).
///  2. Pruning (Lemma 4): a candidate `(w, d)` survives iff no 2-hop
///     witness proves `dist(u,w) < d`. Any such witness decomposes at
///     an apex with both legs shorter than `d`, so the committed labels
///     `L_{<=d-1}` suffice — iteration `d` never reads its own output,
///     which is what makes the loop embarrassingly parallel and the
///     result independent of the thread count (asserted in tests, and
///     the paper's Exp 2 observation).
///
/// Both propagation paradigms of §III-E are provided: PULL (each vertex
/// gathers neighbors' last-level labels; duplicates merge in-place) and
/// PUSH (each vertex scatters; a grouping pass merges). They produce
/// bit-identical indexes.
namespace pspc {

struct PspcOptions {
  Paradigm paradigm = Paradigm::kPull;
  ScheduleKind schedule = ScheduleKind::kCostAware;
  int num_threads = 0;  ///< <= 0: all available cores
  uint32_t num_landmarks = 100;
  bool use_landmark_filter = true;
  /// Optional per-vertex multiplicities (empty = all 1): a path's count
  /// is multiplied by the weights of its internal vertices. Used by the
  /// neighborhood-equivalence reduction (paper §IV-B) so a single
  /// representative counts the paths of its merged class. Must outlive
  /// the build call.
  std::span<const Count> vertex_weights = {};
};

struct PspcBuildResult {
  SpcIndex index;
  BuildStats stats;
};

/// Builds the ESPC index for `graph` under `order` in parallel. The
/// resulting index is identical to `BuildHpSpcIndex(graph, order)` up
/// to entry ordering (both are the unique ESPC label set of the order).
PspcBuildResult BuildPspcIndex(const Graph& graph, const VertexOrder& order,
                               const PspcOptions& options);

}  // namespace pspc

#endif  // PSPC_SRC_CORE_PSPC_BUILDER_H_
