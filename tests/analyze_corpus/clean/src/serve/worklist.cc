#include "src/serve/worklist.h"

Status Worklist::Push(int v) {
  spc::MutexLock lock(mu_);
  depth_ = depth_ + v;
  return Status();
}

int Worklist::Pop() {
  Status pushed = Push(0);
  spc::MutexLock lock(mu_);
  depth_ = depth_ - 1;
  return pushed.ok() ? depth_ : 0;
}
