#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/baseline/bfs_spc.h"
#include "src/core/builder_facade.h"
#include "src/dynamic/dynamic_spc_index.h"
#include "src/graph/generators.h"
#include "src/label/query_engine.h"
#include "src/serve/epoch_manager.h"
#include "src/serve/index_snapshot.h"
#include "src/serve/request_queue.h"
#include "src/serve/result_cache.h"
#include "src/serve/serving_engine.h"
#include "src/serve/snapshot_manager.h"
#include "tests/test_util.h"

namespace pspc {
namespace {

// Single-threaded OpenMP everywhere so these tests stay signal-only
// under ThreadSanitizer (libgomp worker teams are not TSan
// instrumented; a team of one never spawns).
BuildOptions SingleThreadBuild() {
  BuildOptions options;
  options.num_landmarks = 4;
  options.num_threads = 1;
  return options;
}

DynamicOptions RepairOnlyOptions() {
  DynamicOptions options;
  options.rebuild_threshold = 1e18;
  options.rebuild_options = SingleThreadBuild();
  options.num_threads = 1;
  return options;
}

std::unique_ptr<DynamicSpcIndex> MakeIndex(const Graph& graph) {
  return std::make_unique<DynamicSpcIndex>(graph, SingleThreadBuild(),
                                           RepairOnlyOptions());
}

// ------------------------------------------------------------ satellites

TEST(MakeRandomQueriesTest, EmptyUniverseYieldsEmptyBatch) {
  EXPECT_TRUE(MakeRandomQueries(0, 10, 123).empty());
  EXPECT_TRUE(MakeRandomQueries(0, 0, 123).empty());
  EXPECT_EQ(MakeRandomQueries(5, 7, 123).size(), 7u);
}

// --------------------------------------------------------- IndexSnapshot

TEST(IndexSnapshotTest, MatchesLiveIndex) {
  const Graph graph = GenerateBarabasiAlbert(120, 3, 11);
  auto index = MakeIndex(graph);
  const auto snapshot = IndexSnapshot::Capture(*index);

  EXPECT_EQ(snapshot->NumVertices(), index->NumVertices());
  EXPECT_EQ(snapshot->NumEdges(), index->NumEdges());
  EXPECT_EQ(snapshot->Generation(), index->Generation());
  for (const auto& [s, t] : MakeRandomQueries(120, 200, 5)) {
    EXPECT_EQ(snapshot->Query(s, t), index->Query(s, t));
  }
}

TEST(IndexSnapshotTest, IsolatesRetiredGenerations) {
  const Graph graph = GenerateBarabasiAlbert(120, 3, 12);
  auto index = MakeIndex(graph);
  const QueryBatch probes = MakeRandomQueries(120, 200, 6);

  const auto before = IndexSnapshot::Capture(*index);
  std::vector<SpcResult> old_answers;
  for (const auto& [s, t] : probes) old_answers.push_back(before->Query(s, t));

  // Churn the live index; the captured generation must not move.
  Rng rng(99);
  size_t applied = 0;
  while (applied < 10) {
    const auto u = static_cast<VertexId>(rng.NextBounded(120));
    const auto v = static_cast<VertexId>(rng.NextBounded(120));
    if (u == v || index->HasEdge(u, v)) continue;
    ASSERT_TRUE(index->InsertEdge(u, v).ok());
    ++applied;
  }

  const auto after = IndexSnapshot::Capture(*index);
  EXPECT_GT(after->Generation(), before->Generation());
  size_t changed = 0;
  for (size_t i = 0; i < probes.size(); ++i) {
    const auto [s, t] = probes[i];
    EXPECT_EQ(before->Query(s, t), old_answers[i]);
    EXPECT_EQ(after->Query(s, t), index->Query(s, t));
    if (after->Query(s, t) != old_answers[i]) ++changed;
  }
  // 10 random inserts on 120 vertices must move some answers, or the
  // isolation assertion above would be vacuous.
  EXPECT_GT(changed, 0u);
}

TEST(IndexSnapshotTest, SurvivesIndexRebuild) {
  const Graph graph = GenerateBarabasiAlbert(100, 3, 13);
  auto index = MakeIndex(graph);
  const auto snapshot = IndexSnapshot::Capture(*index);
  const SpcResult old_answer = snapshot->Query(3, 77);

  index->Rebuild();  // swaps the shared base out from under the capture
  EXPECT_EQ(snapshot->Query(3, 77), old_answer);
  EXPECT_EQ(IndexSnapshot::Capture(*index)->Query(3, 77),
            index->Query(3, 77));
}

// ---------------------------------------------------------- EpochManager

TEST(EpochManagerTest, PinAndRelease) {
  EpochManager epochs;
  EXPECT_EQ(epochs.ActiveReaders(), 0u);
  EXPECT_EQ(epochs.MinActiveEpoch(), EpochManager::kNoActiveReader);

  const uint64_t e0 = epochs.CurrentEpoch();
  const size_t a = epochs.Enter();
  EXPECT_EQ(epochs.ActiveReaders(), 1u);
  EXPECT_EQ(epochs.MinActiveEpoch(), e0);

  EXPECT_EQ(epochs.AdvanceEpoch(), e0 + 1);
  const size_t b = epochs.Enter();
  EXPECT_NE(a, b);
  EXPECT_EQ(epochs.ActiveReaders(), 2u);
  EXPECT_EQ(epochs.MinActiveEpoch(), e0);  // oldest pin wins

  epochs.Exit(a);
  EXPECT_EQ(epochs.MinActiveEpoch(), e0 + 1);
  epochs.Exit(b);
  EXPECT_EQ(epochs.ActiveReaders(), 0u);
}

// ------------------------------------------------------- SnapshotManager

TEST(SnapshotManagerTest, PublishRetiresAndReclaims) {
  const Graph graph = GenerateBarabasiAlbert(80, 2, 21);
  auto index = MakeIndex(graph);
  SnapshotManager manager(IndexSnapshot::Capture(*index));
  const uint64_t gen0 = manager.PublishedGeneration();

  VertexId u = 0, v = 1;
  while (index->HasEdge(u, v)) ++v;  // first absent edge from vertex 0

  // A pinned reader keeps the retired generation alive.
  {
    SnapshotRef pinned = manager.Acquire();
    ASSERT_TRUE(index->InsertEdge(u, v).ok());
    manager.Publish(IndexSnapshot::Capture(*index));
    EXPECT_EQ(manager.RetiredCount(), 1u);
    EXPECT_EQ(manager.ReclaimedCount(), 0u);
    EXPECT_EQ(pinned->Generation(), gen0);  // still readable
    EXPECT_GT(manager.PublishedGeneration(), gen0);
  }

  // Pin released: the next publish drains the limbo list.
  ASSERT_TRUE(index->DeleteEdge(u, v).ok());
  manager.Publish(IndexSnapshot::Capture(*index));
  EXPECT_EQ(manager.RetiredCount(), 0u);
  EXPECT_EQ(manager.ReclaimedCount(), 2u);
  EXPECT_EQ(manager.ActiveReaders(), 0u);
}

TEST(SnapshotManagerTest, AcquireSeesLatestPublish) {
  const Graph graph = GenerateBarabasiAlbert(80, 2, 22);
  auto index = MakeIndex(graph);
  SnapshotManager manager(IndexSnapshot::Capture(*index));
  VertexId u = 0, v = 1;
  while (index->HasEdge(u, v)) ++v;  // first absent edge from vertex 0
  ASSERT_TRUE(index->InsertEdge(u, v).ok());
  manager.Publish(IndexSnapshot::Capture(*index));
  EXPECT_EQ(manager.Acquire()->Generation(), index->Generation());
}

// ----------------------------------------------------------- ResultCache

TEST(ResultCacheTest, HitMissAndSymmetry) {
  ResultCache cache(4, 64);
  SpcResult out;
  EXPECT_FALSE(cache.Lookup(1, 3, 9, &out));
  cache.Insert(1, 3, 9, {2, 5});
  ASSERT_TRUE(cache.Lookup(1, 3, 9, &out));
  EXPECT_EQ(out, (SpcResult{2, 5}));
  // SPC is symmetric; the reversed pair must hit the same entry.
  ASSERT_TRUE(cache.Lookup(1, 9, 3, &out));
  EXPECT_EQ(out, (SpcResult{2, 5}));
  EXPECT_EQ(cache.Hits(), 2u);
  EXPECT_EQ(cache.Misses(), 1u);
}

TEST(ResultCacheTest, GenerationInvalidates) {
  ResultCache cache(1, 64);
  SpcResult out;
  cache.Insert(1, 3, 9, {2, 5});
  EXPECT_FALSE(cache.Lookup(2, 3, 9, &out));  // newer generation: dropped
  // A stale insert from a worker still on generation 1 must not land.
  cache.Insert(1, 3, 9, {2, 5});
  EXPECT_FALSE(cache.Lookup(2, 3, 9, &out));
  // The old generation can no longer hit either (shard moved on).
  EXPECT_FALSE(cache.Lookup(1, 3, 9, &out));
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(4, 0);
  SpcResult out;
  cache.Insert(1, 3, 9, {2, 5});
  EXPECT_FALSE(cache.Lookup(1, 3, 9, &out));
}

// ---------------------------------------------------------- RequestQueue

TEST(RequestQueueTest, AdaptiveBatchSplitsBacklog) {
  RequestQueue queue(64);
  for (int i = 0; i < 10; ++i) {
    ServeRequest request;
    request.s = static_cast<VertexId>(i);
    ASSERT_TRUE(queue.Push(std::move(request)));
  }
  std::vector<ServeRequest> out;
  // 10 queued, 2 consumers -> fair share 5, capped at max_batch 4.
  EXPECT_EQ(queue.PopBatch(&out, 4, 2), 4u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].s, 0u);  // FIFO
  EXPECT_EQ(out[3].s, 3u);
  // 6 left, 2 consumers -> fair share 3 below the cap.
  out.clear();
  EXPECT_EQ(queue.PopBatch(&out, 4, 2), 3u);
  EXPECT_EQ(queue.Size(), 3u);
}

TEST(RequestQueueTest, CloseDrainsThenStops) {
  RequestQueue queue(8);
  ServeRequest request;
  ASSERT_TRUE(queue.Push(std::move(request)));
  queue.Close();
  ServeRequest rejected;
  EXPECT_FALSE(queue.Push(std::move(rejected)));
  std::vector<ServeRequest> out;
  EXPECT_EQ(queue.PopBatch(&out, 4, 1), 1u);  // backlog still served
  EXPECT_EQ(queue.PopBatch(&out, 4, 1), 0u);  // closed and drained
}

// --------------------------------------------------------- ServingEngine

ServingOptions SmallEngineOptions() {
  ServingOptions options;
  options.num_workers = 2;
  options.max_batch = 8;
  return options;
}

TEST(ServingEngineTest, ServesExactAnswers) {
  const Graph graph = GenerateBarabasiAlbert(60, 2, 31);
  auto index = MakeIndex(graph);
  ServingEngine engine(index.get(), SmallEngineOptions());

  QueryBatch batch;
  for (const auto& [s, t] : testing::AllPairs(60)) batch.emplace_back(s, t);
  const std::vector<SpcResult> results = engine.SubmitBatch(batch).get();
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(results[i],
              BfsSpcPair(graph, batch[i].first, batch[i].second));
  }
  EXPECT_EQ(engine.Submit(7, 7).get(), (SpcResult{0, 1}));
  EXPECT_GE(engine.Counters().queries_served, batch.size() + 1);
}

TEST(ServingEngineTest, UpdatesBecomeVisibleAfterPublish) {
  const Graph graph = GeneratePath(40);
  auto index = MakeIndex(graph);
  ServingEngine engine(index.get(), SmallEngineOptions());
  const uint64_t gen0 = engine.PublishedGeneration();

  EXPECT_EQ(engine.Submit(0, 39).get(), (SpcResult{39, 1}));

  // Close the path into a cycle: 0 -> 39 becomes a single hop.
  EdgeUpdateBatch updates;
  updates.Insert(0, 39);
  ASSERT_TRUE(engine.ApplyUpdates(updates).ok());
  EXPECT_GT(engine.PublishedGeneration(), gen0);
  EXPECT_EQ(engine.Submit(0, 39).get(), (SpcResult{1, 1}));

  const ServingCounters counters = engine.Counters();
  EXPECT_EQ(counters.updates_applied, 1u);
  EXPECT_GE(counters.generations_published, 1u);
}

TEST(ServingEngineTest, FailedUpdateDoesNotPublish) {
  const Graph graph = GeneratePath(10);
  auto index = MakeIndex(graph);
  ServingEngine engine(index.get(), SmallEngineOptions());
  const uint64_t gen0 = engine.PublishedGeneration();

  // A redundant insert coalesces to a no-op batch: nothing changes,
  // so nothing publishes.
  EXPECT_TRUE(engine.ApplyUpdate({0, 1, EdgeUpdateKind::kInsert}).ok());
  EXPECT_EQ(engine.PublishedGeneration(), gen0);

  // Batches are atomic: a delete of a missing edge rejects the whole
  // batch up front — the valid insert before it must NOT apply, and
  // no generation publishes.
  EdgeUpdateBatch updates;
  updates.Insert(0, 5);
  updates.Delete(0, 7);  // missing edge: the batch fails up front
  EXPECT_FALSE(engine.ApplyUpdates(updates).ok());
  EXPECT_EQ(engine.PublishedGeneration(), gen0);
  EXPECT_EQ(engine.Submit(0, 5).get(), (SpcResult{5, 1}));

  // The repaired batch applies and publishes exactly one generation.
  EdgeUpdateBatch good;
  good.Insert(0, 5);
  good.Insert(0, 9);
  EXPECT_TRUE(engine.ApplyUpdates(good).ok());
  EXPECT_EQ(engine.PublishedGeneration(), gen0 + 1);
  EXPECT_EQ(engine.Submit(0, 5).get(), (SpcResult{1, 1}));
}

TEST(ServingEngineTest, RepeatedQueriesHitCache) {
  const Graph graph = GenerateBarabasiAlbert(60, 2, 32);
  auto index = MakeIndex(graph);
  ServingEngine engine(index.get(), SmallEngineOptions());

  const SpcResult first = engine.Submit(3, 41).get();
  const SpcResult second = engine.Submit(3, 41).get();
  const SpcResult mirrored = engine.Submit(41, 3).get();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, mirrored);
  EXPECT_GE(engine.Counters().cache_hits, 2u);

  // Publishing a generation invalidates: the next repeat misses again.
  const uint64_t misses_before = engine.Counters().cache_misses;
  VertexId u = 0, v = 1;
  while (index->HasEdge(u, v)) ++v;  // first absent edge from vertex 0
  ASSERT_TRUE(engine.ApplyUpdate({u, v, EdgeUpdateKind::kInsert}).ok());
  engine.Submit(3, 41).get();
  EXPECT_GT(engine.Counters().cache_misses, misses_before);
}

TEST(ServingEngineTest, CacheDisabledStillExact) {
  const Graph graph = GenerateBarabasiAlbert(60, 2, 33);
  auto index = MakeIndex(graph);
  ServingOptions options = SmallEngineOptions();
  options.cache_capacity_per_shard = 0;
  ServingEngine engine(index.get(), options);
  EXPECT_EQ(engine.Submit(5, 17).get(), BfsSpcPair(graph, 5, 17));
  EXPECT_EQ(engine.Submit(5, 17).get(), BfsSpcPair(graph, 5, 17));
  EXPECT_EQ(engine.Counters().cache_hits, 0u);
}

TEST(ServingEngineTest, DrainAndStopAreIdempotent) {
  const Graph graph = GeneratePath(20);
  auto index = MakeIndex(graph);
  ServingEngine engine(index.get(), SmallEngineOptions());
  engine.SubmitBatch(MakeRandomQueries(20, 100, 3)).get();
  engine.Drain();
  engine.Drain();
  engine.Stop();
  engine.Stop();  // destructor will Stop() a third time
}

}  // namespace
}  // namespace pspc
