// Command-line SPC tool: build an index from an edge-list file (or a
// named synthetic dataset), persist it, answer queries, and replay
// edge-update streams against the dynamic index.
//
//   ./spc_cli build  <graph.txt|dataset:CODE> <index.bin> [--hp-spc]
//                    [--order degree|sig|road|hybrid] [--threads N]
//   ./spc_cli query  <graph-or-dataset> <index.bin> <s> <t> [s t ...]
//   ./spc_cli stats  <graph-or-dataset>
//   ./spc_cli update <graph-or-dataset> <index.bin>
//                    --update-stream <updates.txt>
//                    [--rebuild-threshold R] [--save <out.bin>]
//
// Examples:
//   ./spc_cli build dataset:FB /tmp/fb.idx --order hybrid
//   ./spc_cli query dataset:FB /tmp/fb.idx 0 17 3 99
//   ./spc_cli update dataset:FB /tmp/fb.idx --update-stream churn.txt

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/common/timer.h"
#include "src/core/builder_facade.h"
#include "src/dynamic/dynamic_spc_index.h"
#include "src/dynamic/edge_update.h"
#include "src/graph/algorithms.h"
#include "src/graph/datasets.h"
#include "src/graph/graph_io.h"
#include "src/label/spc_index.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  spc_cli build <graph.txt|dataset:CODE> <index.bin> "
               "[--hp-spc] [--order degree|sig|road|hybrid] [--threads N]\n"
               "  spc_cli query <graph-or-dataset> <index.bin> <s> <t> ...\n"
               "  spc_cli stats <graph-or-dataset>\n"
               "  spc_cli update <graph-or-dataset> <index.bin> "
               "--update-stream <updates.txt> [--rebuild-threshold R] "
               "[--save <out.bin>]\n");
  return 2;
}

bool LoadGraphArg(const std::string& arg, pspc::Graph* out) {
  if (arg.rfind("dataset:", 0) == 0) {
    *out = pspc::DatasetByCode(arg.substr(8)).build(1);
    return true;
  }
  auto r = pspc::LoadEdgeList(arg);
  if (!r.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", arg.c_str(),
                 r.status().ToString().c_str());
    return false;
  }
  *out = std::move(r).value();
  return true;
}

int CmdBuild(int argc, char** argv) {
  if (argc < 4) return Usage();
  pspc::Graph graph;
  if (!LoadGraphArg(argv[2], &graph)) return 1;

  pspc::BuildOptions options;
  for (int i = 4; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--hp-spc") {
      options.algorithm = pspc::Algorithm::kHpSpc;
    } else if (flag == "--order" && i + 1 < argc) {
      const std::string order = argv[++i];
      if (order == "degree") {
        options.ordering = pspc::OrderingScheme::kDegree;
      } else if (order == "sig") {
        options.ordering = pspc::OrderingScheme::kSignificantPath;
      } else if (order == "road") {
        options.ordering = pspc::OrderingScheme::kRoadNetwork;
      } else if (order == "hybrid") {
        options.ordering = pspc::OrderingScheme::kHybrid;
      } else {
        return Usage();
      }
    } else if (flag == "--threads" && i + 1 < argc) {
      options.num_threads = std::atoi(argv[++i]);
    } else {
      return Usage();
    }
  }

  std::printf("graph: %u vertices, %llu edges\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));
  const pspc::BuildResult result = pspc::BuildIndex(graph, options);
  std::printf("built %s index under %s order: %zu entries in %.3fs "
              "(order %.3fs, landmarks %.3fs, construction %.3fs)\n",
              ToString(options.algorithm).c_str(),
              ToString(options.ordering).c_str(),
              result.index.TotalEntries(), result.stats.TotalSeconds(),
              result.stats.ordering_seconds, result.stats.landmark_seconds,
              result.stats.construction_seconds);
  if (const pspc::Status st = result.index.Save(argv[3]); !st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved to %s (%.1f MB)\n", argv[3],
              static_cast<double>(result.index.SizeBytes()) / 1048576.0);
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 6 || (argc - 4) % 2 != 0) return Usage();
  auto loaded = pspc::SpcIndex::Load(argv[3]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load index %s: %s\n", argv[3],
                 loaded.status().ToString().c_str());
    return 1;
  }
  const pspc::SpcIndex& index = loaded.value();
  for (int i = 4; i + 1 < argc; i += 2) {
    const auto s = static_cast<pspc::VertexId>(std::atoll(argv[i]));
    const auto t = static_cast<pspc::VertexId>(std::atoll(argv[i + 1]));
    if (s >= index.NumVertices() || t >= index.NumVertices()) {
      std::printf("SPC(%u, %u): out of range (n=%u)\n", s, t,
                  index.NumVertices());
      continue;
    }
    const pspc::SpcResult r = index.Query(s, t);
    if (r.distance == pspc::kInfSpcDistance) {
      std::printf("SPC(%u, %u): unreachable\n", s, t);
    } else {
      std::printf("SPC(%u, %u): distance %u, %llu shortest paths\n", s, t,
                  r.distance, static_cast<unsigned long long>(r.count));
    }
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  pspc::Graph graph;
  if (!LoadGraphArg(argv[2], &graph)) return 1;
  pspc::VertexId components = 0;
  pspc::ConnectedComponents(graph, &components);
  std::printf("vertices:   %u\n", graph.NumVertices());
  std::printf("edges:      %llu\n",
              static_cast<unsigned long long>(graph.NumEdges()));
  std::printf("avg degree: %.2f\n", graph.AverageDegree());
  std::printf("max degree: %u\n", graph.MaxDegree());
  std::printf("components: %u\n", components);
  std::printf("diameter:   >= %u (double sweep)\n",
              pspc::EstimateDiameter(graph, 4, 1));
  return 0;
}

// Replays an update stream against the dynamic index: per-update
// repair latency, staleness growth, and optionally a compacted
// (rebuilt) index written back to disk.
int CmdUpdate(int argc, char** argv) {
  if (argc < 4) return Usage();
  pspc::Graph graph;
  if (!LoadGraphArg(argv[2], &graph)) return 1;
  auto loaded = pspc::SpcIndex::Load(argv[3]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load index %s: %s\n", argv[3],
                 loaded.status().ToString().c_str());
    return 1;
  }

  std::string stream_path, save_path;
  pspc::DynamicOptions options;
  for (int i = 4; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--update-stream" && i + 1 < argc) {
      stream_path = argv[++i];
    } else if (flag == "--rebuild-threshold" && i + 1 < argc) {
      options.rebuild_threshold = std::atof(argv[++i]);
    } else if (flag == "--save" && i + 1 < argc) {
      save_path = argv[++i];
    } else {
      return Usage();
    }
  }
  if (stream_path.empty()) return Usage();

  auto stream = pspc::LoadUpdateStream(stream_path);
  if (!stream.ok()) {
    std::fprintf(stderr, "failed to load updates %s: %s\n",
                 stream_path.c_str(), stream.status().ToString().c_str());
    return 1;
  }

  if (loaded.value().NumVertices() != graph.NumVertices()) {
    std::fprintf(stderr, "index has %u vertices but graph has %u\n",
                 loaded.value().NumVertices(), graph.NumVertices());
    return 1;
  }
  pspc::DynamicSpcIndex index(std::move(graph), std::move(loaded).value(),
                              options);
  std::printf("replaying %zu updates against %u vertices / %llu edges\n",
              stream.value().Size(), index.NumVertices(),
              static_cast<unsigned long long>(index.NumEdges()));

  pspc::WallTimer timer;
  size_t applied = 0;
  for (const pspc::EdgeUpdate& up : stream.value()) {
    const pspc::Status st = index.Apply(up);
    if (!st.ok()) {
      std::fprintf(stderr, "update %zu (%c %u %u) failed: %s\n", applied,
                   up.kind == pspc::EdgeUpdateKind::kInsert ? 'i' : 'd',
                   up.u, up.v, st.ToString().c_str());
      return 1;
    }
    ++applied;
  }
  const double total = timer.ElapsedSeconds();

  std::printf("applied %zu updates in %.3fs (%.3f ms/update)\n%s\n", applied,
              total, applied == 0 ? 0.0 : total * 1e3 / applied,
              index.Stats().ToString().c_str());
  std::printf("staleness: %.4f (threshold %.4f), edges now %llu\n",
              index.StalenessRatio(), options.rebuild_threshold,
              static_cast<unsigned long long>(index.NumEdges()));

  if (!save_path.empty()) {
    index.Rebuild();  // compact: fold the overlay into a fresh base
    if (const pspc::Status st = index.BaseIndex().Save(save_path); !st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("rebuilt + saved to %s (%.1f MB)\n", save_path.c_str(),
                static_cast<double>(index.BaseIndex().SizeBytes()) / 1048576.0);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "build") == 0) return CmdBuild(argc, argv);
  if (std::strcmp(argv[1], "query") == 0) return CmdQuery(argc, argv);
  if (std::strcmp(argv[1], "stats") == 0) return CmdStats(argc, argv);
  if (std::strcmp(argv[1], "update") == 0) return CmdUpdate(argc, argv);
  return Usage();
}
