// Coalesced-batch half of DynamicSpcIndex (see the class comment in
// dynamic_spc_index.h): ApplyBatch planning, batch deletion repair
// with per-hub task coalescing, and the disjoint-region parallel wave
// runner. Split from dynamic_spc_index.cc so the single-update repair
// machinery and the batch orchestration stay readable on their own.

#include <algorithm>
#include <array>
#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/parallel.h"
#include "src/common/saturating.h"
#include "src/common/timer.h"
#include "src/dynamic/batch_planner.h"
#include "src/dynamic/dynamic_spc_index.h"

namespace pspc {
namespace {

/// Folds the counters a hub repair can touch from a wave task's local
/// stats into the index-wide stats.
void MergeRepairStats(DynamicStats* into, const DynamicStats& from) {
  into->affected_hubs += from.affected_hubs;
  into->subtract_repairs += from.subtract_repairs;
  into->entries_inserted += from.entries_inserted;
  into->entries_renewed += from.entries_renewed;
  into->entries_erased += from.entries_erased;
}

}  // namespace

/// Planning artifact of one net-deleted edge: the two compressed
/// affected regions, detected against the pre-batch graph and index.
struct DynamicSpcIndex::DeletedEdgePlan {
  VertexId a = 0;
  VertexId b = 0;
  SparseSide sides[2];  // [0] detected from a, [1] detected from b
};

Status DynamicSpcIndex::ApplyBatch(const EdgeUpdateBatch& batch) {
  PSPC_RETURN_IF_ERROR(batch.Validate(NumVertices()));
  WallTimer plan_timer;
  auto planned = PlanBatch(batch, [this](VertexId u, VertexId v) {
    return graph_.HasEdge(u, v);
  });
  PSPC_RETURN_IF_ERROR(planned.status());
  const double plan_us = plan_timer.ElapsedSeconds() * 1e6;
  obs_.plan_us()->Record(plan_us);
  stats_.last_plan_us = plan_us;
  stats_.last_repair_us = 0.0;
  const BatchPlan& plan = planned.value();
  ++stats_.batches_applied;
  stats_.updates_coalesced += plan.coalesced_updates;
  if (plan.Empty()) {
    PublishMetrics();
    return Status::OK();
  }
  if (plan.NetSize() == 1) {
    // One net update: the tuned single-update path (its deletion
    // classification is strictly sharper than the batch one).
    const Status status =
        plan.net_deletions.empty()
            ? InsertEdge(plan.net_insertions[0].first,
                         plan.net_insertions[0].second)
            : DeleteEdge(plan.net_deletions[0].first,
                         plan.net_deletions[0].second);
    // The delegated path stamps its own last_* fields with plan cost
    // zero; this batch did plan.
    stats_.last_plan_us = plan_us;
    return status;
  }

  const double repair_before = stats_.repair_seconds;
  {
    ScopedTimer timer(&stats_.repair_seconds);
    obs::ScopedLatencyTimer latency(obs_.repair_us());
    // Deletions first: their detection needs the pre-batch exact
    // index, and insertion seeds need labels exact for the deleted
    // graph. Each phase leaves the index exact for its own graph, so
    // the phases compose. A single net deletion has no cross-edge
    // entanglement, so it keeps the sharper single-update classifier
    // (which also removes the edge itself).
    if (plan.net_deletions.size() == 1) {
      RepairDeletion(plan.net_deletions[0].first,
                     plan.net_deletions[0].second);
    } else if (!plan.net_deletions.empty()) {
      RepairDeletionsBatch(plan.net_deletions);
    }
    if (!plan.net_insertions.empty()) {
      for (const auto& [u, v] : plan.net_insertions) {
        PSPC_CHECK(graph_.AddEdge(u, v).ok());
      }
      RepairInsertions(plan.net_insertions);
    }
  }
  stats_.last_repair_us = (stats_.repair_seconds - repair_before) * 1e6;
  stats_.insertions_applied += plan.net_insertions.size();
  stats_.deletions_applied += plan.net_deletions.size();
  ++generation_;  // one published generation per batch
  MaybeRebuild();
  PublishMetrics();
  return Status::OK();
}

void DynamicSpcIndex::RepairDeletionsBatch(
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  const VertexId n = base_graph_.NumVertices();
  const size_t k = edges.size();

  // ---- Planning, against the pre-batch graph and still-exact index.
  std::vector<DeletedEdgePlan> plans(k);
  std::vector<uint8_t> seed_ok(n, 0);
  std::vector<uint32_t> seed_dist(n, 0);
  std::vector<Count> seed_count(n, 0);
  std::vector<VertexId> seed_far(n, 0);
  // Per edge: whether each side's full senders get the exact
  // distance-change filter, and the pre-deletion endpoint distances
  // the filter's through-edge formula needs.
  constexpr size_t kDistanceFilterCap = 256;
  std::vector<std::array<bool, 2>> filter(k);
  {
    AffectedSide side;  // dense detection scratch, reused per side
    std::vector<uint8_t> hub_of_a(n, 0), hub_of_b(n, 0);
    for (size_t i = 0; i < k; ++i) {
      const auto [a, b] = edges[i];
      plans[i].a = a;
      plans[i].b = b;
      for (const LabelEntry& e : Labels(a)) hub_of_a[e.hub_rank] = 1;
      for (const LabelEntry& e : Labels(b)) hub_of_b[e.hub_rank] = 1;

      for (int s = 0; s < 2; ++s) {
        const VertexId near = s == 0 ? a : b;
        const VertexId far = s == 0 ? b : a;
        DetectAffectedSide(near, far, hub_of_a, hub_of_b, &side);
        SparseSide& sparse = plans[i].sides[s];
        sparse.touched = std::move(side.touched);
        sparse.full_ranks = std::move(side.full_ranks);
        sparse.subtract_ranks = std::move(side.subtract_ranks);
        sparse.flags.reserve(sparse.touched.size());
        for (const VertexId v : sparse.touched) {
          sparse.flags.push_back(side.flags[v]);
        }
      }
      filter[i] = {plans[i].sides[1].full_ranks.size() <= kDistanceFilterCap,
                   plans[i].sides[0].full_ranks.size() <= kDistanceFilterCap};

      for (const LabelEntry& e : Labels(a)) hub_of_a[e.hub_rank] = 0;
      for (const LabelEntry& e : Labels(b)) hub_of_b[e.hub_rank] = 0;
    }
  }

  // ---- Per-hub coalescing: every region membership of every edge
  // (full, subtractive, *and* receiver — see SparseSide) grouped by
  // rank. One involvement keeps the sharp single-edge classification;
  // two or more escalate to a single conservative full re-run over the
  // union of the opposite regions — the coalescing win: the hub runs
  // once instead of once per edge, and cross-edge entanglement (count
  // algebra and distance growth no single-edge certificate covers) is
  // recomputed from scratch exactly.
  struct Involvement {
    Rank rank;
    uint32_t edge;
    uint8_t side;
    int8_t cls;  // AffectedSide flag value: 1 full, 2 subtract, -1 receiver
  };
  std::vector<Involvement> involvements;
  for (size_t i = 0; i < k; ++i) {
    for (int s = 0; s < 2; ++s) {
      const SparseSide& side = plans[i].sides[s];
      for (size_t t = 0; t < side.touched.size(); ++t) {
        involvements.push_back({order_.RankOf(side.touched[t]),
                                static_cast<uint32_t>(i),
                                static_cast<uint8_t>(s), side.flags[t]});
      }
    }
  }
  std::sort(involvements.begin(), involvements.end(),
            [](const Involvement& x, const Involvement& y) {
              return x.rank < y.rank;
            });

  // ---- Adaptive cutover. A multi-region hub costs the batch one
  // conservative full re-run; sequential application pays one (often
  // cheaper) run per *sender* involvement — or nothing at all for
  // receiver-only overlap and for full senders its distance filter
  // proves untouched. Coalescing deletions only wins when the shared
  // hubs really concentrate sender work, so proceed only when
  // multi-region hubs average at least two sender involvements;
  // otherwise replay the deletions through the sharp single-edge path
  // (decided before any topology change, so each RepairDeletion still
  // detects against an exact index). Insertion coalescing is
  // unaffected either way.
  {
    size_t multi_hubs = 0, multi_senders = 0;
    for (size_t i = 0; i < involvements.size();) {
      size_t j = i;
      size_t senders = 0;
      while (j < involvements.size() &&
             involvements[j].rank == involvements[i].rank) {
        if (involvements[j].cls != -1) ++senders;
        ++j;
      }
      if (j - i >= 2) {
        ++multi_hubs;
        multi_senders += senders;
      }
      i = j;
    }
    if (2 * multi_hubs > multi_senders) {
      for (const auto& [a, b] : edges) {
        RepairDeletion(a, b);
      }
      return;
    }
  }

  // ---- Subtraction seeds, validated per edge against the still-exact
  // pre-deletion index (batched path only — the fallback re-validates
  // through RepairDeletion itself). A rank's seed is only consumed
  // when its sole involvement is that edge, so the rank-indexed
  // arrays cannot clash across edges.
  {
    std::vector<uint8_t> hub_of_a(n, 0), hub_of_b(n, 0);
    for (size_t i = 0; i < k; ++i) {
      const VertexId a = plans[i].a;
      const VertexId b = plans[i].b;
      for (const LabelEntry& e : Labels(a)) hub_of_a[e.hub_rank] = 1;
      for (const LabelEntry& e : Labels(b)) hub_of_b[e.hub_rank] = 1;
      for (int s = 0; s < 2; ++s) {
        const VertexId near = s == 0 ? a : b;
        const VertexId far = s == 0 ? b : a;
        ValidateDeletionSeeds(plans[i].sides[s].full_ranks,
                              plans[i].sides[s].subtract_ranks, Labels(near),
                              near, far, hub_of_a, hub_of_b, &seed_ok,
                              &seed_dist, &seed_count, &seed_far);
      }
      for (const LabelEntry& e : Labels(a)) hub_of_a[e.hub_rank] = 0;
      for (const LabelEntry& e : Labels(b)) hub_of_b[e.hub_rank] = 0;
    }
  }

  // ---- Pre-deletion endpoint distances for the distance-change
  // filter, captured while the edges still exist (batched path only —
  // the fallback above must not pay for them). Only the full senders'
  // distances are ever read, so each side keeps a compact array
  // parallel to its full_ranks; the n-sized BFS buffer is transient.
  for (size_t i = 0; i < k; ++i) {
    const bool need_pre =
        (filter[i][0] && !plans[i].sides[0].full_ranks.empty()) ||
        (filter[i][1] && !plans[i].sides[1].full_ranks.empty());
    if (!need_pre) continue;
    for (int s = 0; s < 2; ++s) {
      const std::vector<uint32_t> dense =
          BfsDistances(s == 0 ? plans[i].a : plans[i].b);
      SparseSide& side = plans[i].sides[s];
      side.full_pre.reserve(side.full_ranks.size());
      for (const Rank r : side.full_ranks) {
        side.full_pre.push_back(dense[order_.VertexAt(r)]);
      }
    }
  }

  // ---- Topology: the final deletion state every re-run repairs
  // against (the planner guarantees the edges exist).
  for (const auto& [a, b] : edges) {
    PSPC_CHECK(graph_.RemoveEdge(a, b).ok());
  }

  // ---- Exact distance-change filter per edge (post-deletion graph).
  // Sound for single-involvement hubs only: a pair involving a hub of
  // one region changes through that region's edge alone, so the
  // single-edge certificates carry over verbatim (multi-region hubs
  // escalate below and ignore the filter verdict).
  std::vector<uint8_t> needs_full(n, 0);
  for (size_t i = 0; i < k; ++i) {
    if (filter[i][0] && !plans[i].sides[0].full_ranks.empty()) {
      MarkDistanceChanges(plans[i].sides[0].full_ranks,
                          plans[i].sides[0].full_pre,
                          plans[i].sides[1].full_ranks,
                          plans[i].sides[1].full_pre, &needs_full);
    }
    if (filter[i][1] && !plans[i].sides[1].full_ranks.empty()) {
      MarkDistanceChanges(plans[i].sides[1].full_ranks,
                          plans[i].sides[1].full_pre,
                          plans[i].sides[0].full_ranks,
                          plans[i].sides[0].full_pre, &needs_full);
    }
  }

  std::vector<DeletionTask> tasks;
  for (size_t i = 0; i < involvements.size();) {
    size_t j = i;
    while (j < involvements.size() && involvements[j].rank == involvements[i].rank) {
      ++j;
    }
    const Rank rank = involvements[i].rank;
    if (j - i == 1) {
      const Involvement& item = involvements[i];
      const auto opp = static_cast<uint8_t>(1 - item.side);
      if (item.cls == 1 &&
          (!filter[item.edge][item.side] || needs_full[rank] != 0)) {
        DeletionTask task;
        task.rank = rank;
        task.regions.push_back({item.edge, opp});
        tasks.push_back(std::move(task));
      } else if (item.cls != -1 && seed_ok[rank] != 0) {
        // Subtractive sender, or a full sender the filter downgraded.
        DeletionTask task;
        task.rank = rank;
        task.subtract = true;
        task.start = seed_far[rank];
        task.seed_dist = seed_dist[rank];
        task.seed_count = seed_count[rank];
        task.regions.push_back({item.edge, opp});
        tasks.push_back(std::move(task));
      }
      // else: receiver, or a sender with provably nothing to re-run.
    } else {
      DeletionTask task;
      task.rank = rank;
      for (size_t t = i; t < j; ++t) {
        task.regions.push_back(
            {involvements[t].edge,
             static_cast<uint8_t>(1 - involvements[t].side)});
      }
      tasks.push_back(std::move(task));
    }
    i = j;
  }

  // ---- Depth caps for subtractive tasks: per edge, the farthest
  // entry distance any opposite-region vertex stores for the hub
  // (pre-repair labels, as in the single-update path). Tasks whose cap
  // cannot reach the seed depth provably have nothing to fix.
  std::vector<std::vector<size_t>> subtract_by_edge(k);
  for (size_t t = 0; t < tasks.size(); ++t) {
    if (tasks[t].subtract) {
      subtract_by_edge[tasks[t].regions[0].first].push_back(t);
    }
  }
  for (size_t e = 0; e < k; ++e) {
    if (subtract_by_edge[e].empty()) continue;
    for (const size_t t : subtract_by_edge[e]) {
      // 1 = hub on the a-side (targets the b-side), 2 = the reverse.
      subtract_side_[tasks[t].rank] = tasks[t].regions[0].second == 1 ? 1 : 2;
    }
    for (const VertexId v : plans[e].sides[1].touched) {
      for (const LabelEntry& le : Labels(v)) {
        if (subtract_side_[le.hub_rank] == 1) {
          bucket_max_[le.hub_rank] =
              std::max<uint32_t>(bucket_max_[le.hub_rank], le.dist);
        }
      }
    }
    for (const VertexId v : plans[e].sides[0].touched) {
      for (const LabelEntry& le : Labels(v)) {
        if (subtract_side_[le.hub_rank] == 2) {
          bucket_max_[le.hub_rank] =
              std::max<uint32_t>(bucket_max_[le.hub_rank], le.dist);
        }
      }
    }
    for (const size_t t : subtract_by_edge[e]) {
      tasks[t].depth_cap = bucket_max_[tasks[t].rank];
      subtract_side_[tasks[t].rank] = 0;
      bucket_max_[tasks[t].rank] = 0;
    }
  }
  std::erase_if(tasks, [](const DeletionTask& t) {
    return t.subtract && t.depth_cap < t.seed_dist;
  });

  ExecuteDeletionTasks(tasks, plans);
}

void DynamicSpcIndex::MaterializeTaskRegion(
    const DeletionTask& task, const std::vector<DeletedEdgePlan>& plans,
    RepairScratch& s) const {
  for (const VertexId v : s.region_touched) s.region_flags[v] = 0;
  s.region_touched.clear();
  for (const auto& [edge, side] : task.regions) {
    for (const VertexId v : plans[edge].sides[side].touched) {
      if (s.region_flags[v] == 0) {
        s.region_flags[v] = 1;
        s.region_touched.push_back(v);
      }
    }
  }
}

void DynamicSpcIndex::RunDeletionTaskLive(
    const DeletionTask& task, const std::vector<DeletedEdgePlan>& plans,
    RepairScratch& s, bool force_full) {
  MaterializeTaskRegion(task, plans, s);
  const RegionView region{s.region_flags.data(), &s.region_touched};
  LabelWriteSink sink(&overlay_);
  if (task.subtract && !force_full) {
    if (!SubtractiveDeleteRepair(task.rank, task.start, task.seed_dist,
                                 task.seed_count, task.depth_cap, region, s,
                                 sink, &stats_)) {
      RepairHubAfterDeletion(task.rank, region, s, sink, &stats_);
    }
  } else {
    RepairHubAfterDeletion(task.rank, region, s, sink, &stats_);
  }
}

void DynamicSpcIndex::CommitStagedOps(std::span<const StagedLabelOp> ops) {
  for (const StagedLabelOp& op : ops) {
    std::vector<LabelEntry>& mv = overlay_.Mutable(op.v);
    const auto it =
        std::lower_bound(mv.begin(), mv.end(), op.entry, ByHubRank);
    const bool present = it != mv.end() && it->hub_rank == op.entry.hub_rank;
    if (op.erase) {
      if (present) mv.erase(it);
    } else if (present) {
      *it = op.entry;
    } else {
      mv.insert(it, op.entry);
    }
  }
}

void DynamicSpcIndex::ExecuteDeletionTasks(
    std::vector<DeletionTask>& tasks,
    const std::vector<DeletedEdgePlan>& plans) {
  // Ascending global rank keeps pruning sound: a re-run consults
  // higher-ranked labels, which must already be repaired.
  std::sort(tasks.begin(), tasks.end(),
            [](const DeletionTask& x, const DeletionTask& y) {
              return x.rank < y.rank;
            });
  const int threads = ResolvedThreads();
  if (!options_.parallel_batch_repair || threads <= 1 || tasks.size() < 2) {
    for (const DeletionTask& task : tasks) {
      RunDeletionTaskLive(task, plans, scratch_);
    }
    return;
  }

  // One disjoint-region wave over the whole task list. Every task
  // whose claimed footprint (hub + write regions) is free of earlier
  // claims joins the wave; a conflicting task *defers* to the
  // sequential fixup but still claims the unowned part of its region
  // as a barrier. Wave members write through staged ops against frozen
  // labels, so members never race; the two cross-task dependencies
  // left are both handled by the visit-time abort in
  // RepairHubAfterDeletion:
  //
  //  * a member whose BFS traverses a lower-index member's region
  //    could need that member's not-yet-committed entries for its
  //    pruning certificates — it aborts and re-runs sequentially;
  //  * a member whose BFS traverses a lower-index *deferred* task's
  //    barrier would read entries the fixup has yet to write — same
  //    abort.
  //
  // Claims are taken in ascending rank order, so "lower index" is
  // "lower rank": the committed result is exactly the sequential
  // ascending-rank result, independent of thread timing.
  const VertexId n = base_graph_.NumVertices();
  const size_t count = tasks.size();
  std::vector<int32_t> claim(n, -1);
  std::vector<uint8_t> in_wave(count, 0);
  std::vector<VertexId> probe;
  size_t wave_members = 0;
  for (size_t j = 0; j < count; ++j) {
    probe.clear();
    probe.push_back(order_.VertexAt(tasks[j].rank));
    for (const auto& [edge, side] : tasks[j].regions) {
      for (const VertexId v : plans[edge].sides[side].touched) {
        probe.push_back(v);
      }
    }
    const auto self = static_cast<int32_t>(j);
    bool conflict = false;
    for (const VertexId v : probe) {
      if (claim[v] != -1 && claim[v] != self) {
        conflict = true;
        break;
      }
    }
    for (const VertexId v : probe) {
      if (claim[v] == -1) claim[v] = self;
    }
    if (!conflict) {
      in_wave[j] = 1;
      ++wave_members;
    }
  }

  if (wave_members < 2) {
    for (const DeletionTask& task : tasks) {
      RunDeletionTaskLive(task, plans, scratch_);
    }
    return;
  }

  struct WaveSlot {
    std::vector<StagedLabelOp> staged;
    DynamicStats local;
    bool ok = false;
  };
  std::vector<WaveSlot> slots(count);
  const size_t num_workers =
      std::min<size_t>(static_cast<size_t>(threads), wave_members);
  if (scratch_pool_.size() < num_workers) {
    const size_t old = scratch_pool_.size();
    scratch_pool_.resize(num_workers);
    for (size_t w = old; w < num_workers; ++w) {
      scratch_pool_[w].Init(n);
    }
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    pool.emplace_back([&, w] {
      RepairScratch& s = scratch_pool_[w];
      for (;;) {
        // relaxed: work-stealing cursor; only the claimed index
        // matters, slot writes are ordered by the pool join.
        const size_t idx = next.fetch_add(1, std::memory_order_relaxed);
        if (idx >= count) return;
        if (in_wave[idx] == 0) continue;  // deferred: sequential fixup
        const DeletionTask& task = tasks[idx];
        WaveSlot& slot = slots[idx];
        MaterializeTaskRegion(task, plans, s);
        const RegionView region{s.region_flags.data(), &s.region_touched};
        LabelWriteSink sink(&slot.staged);
        if (task.subtract) {
          // Subtraction reads only its own rank's entries, which no
          // other task writes — it cannot depend on in-flight work.
          // Escalation (saturated counts) defers to the fixup, which
          // re-runs the full repair live.
          slot.ok = SubtractiveDeleteRepair(
              task.rank, task.start, task.seed_dist, task.seed_count,
              task.depth_cap, region, s, sink, &slot.local);
        } else {
          slot.ok = RepairHubAfterDeletion(
              task.rank, region, s, sink, &slot.local, claim.data(),
              static_cast<int32_t>(idx));
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  ++stats_.parallel_waves;

  // Commit completed members in rank order, then run everything else
  // (deferred tasks, aborted members, escalated subtractions) live in
  // rank order. A committed member provably never visited any
  // lower-rank uncommitted work's region, so the interleaving is
  // equivalent to the fully sequential order.
  for (size_t idx = 0; idx < count; ++idx) {
    if (in_wave[idx] == 0 || !slots[idx].ok) continue;
    CommitStagedOps(slots[idx].staged);
    MergeRepairStats(&stats_, slots[idx].local);
    ++stats_.parallel_hub_runs;
  }
  for (size_t idx = 0; idx < count; ++idx) {
    if (in_wave[idx] != 0 && slots[idx].ok) continue;
    // A wave attempt that escalated a subtraction already proved it
    // impossible (saturation depends only on inputs no other task
    // writes), so the fixup goes straight to the full repair.
    const bool force_full = in_wave[idx] != 0 && tasks[idx].subtract;
    RunDeletionTaskLive(tasks[idx], plans, scratch_, force_full);
    ++stats_.deferred_hub_runs;
  }
}

}  // namespace pspc
