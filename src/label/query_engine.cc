#include "src/label/query_engine.h"

#include "src/common/parallel.h"
#include "src/common/random.h"

namespace pspc {

QueryBatch MakeRandomQueries(VertexId num_vertices, size_t count,
                             uint64_t seed) {
  // An empty universe has no pairs to draw (NextBounded(0) is UB).
  if (num_vertices == 0) return {};
  Rng rng(seed);
  QueryBatch batch;
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    batch.emplace_back(static_cast<VertexId>(rng.NextBounded(num_vertices)),
                       static_cast<VertexId>(rng.NextBounded(num_vertices)));
  }
  return batch;
}

std::vector<SpcResult> RunQueries(const SpcIndex& index,
                                  const QueryBatch& batch) {
  std::vector<SpcResult> results(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    results[i] = index.Query(batch[i].first, batch[i].second);
  }
  return results;
}

std::vector<SpcResult> RunQueriesParallel(const SpcIndex& index,
                                          const QueryBatch& batch,
                                          int num_threads) {
  std::vector<SpcResult> results(batch.size());
  ParallelForDynamic(batch.size(), num_threads, /*chunk=*/256,
                     [&](size_t i) {
                       results[i] =
                           index.Query(batch[i].first, batch[i].second);
                     });
  return results;
}

}  // namespace pspc
