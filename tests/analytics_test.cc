#include <gtest/gtest.h>

#include <vector>

#include "src/analytics/betweenness.h"
#include "src/analytics/group_betweenness.h"
#include "src/analytics/poi_ranking.h"
#include "src/baseline/brandes.h"
#include "src/core/pspc_builder.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/order/degree_order.h"

namespace pspc {
namespace {

SpcIndex MakeIndex(const Graph& g) {
  PspcOptions o;
  o.num_landmarks = 4;
  return BuildPspcIndex(g, DegreeOrder(g), o).index;
}

// ------------------------------------------------------ Betweenness --

TEST(BetweennessTest, ExactMatchesBrandesOnStar) {
  const Graph g = GenerateStar(6);
  const SpcIndex index = MakeIndex(g);
  const auto brandes = BrandesBetweenness(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_NEAR(BetweennessExact(index, v), brandes[v], 1e-9) << "v=" << v;
  }
}

TEST(BetweennessTest, ExactMatchesBrandesOnRandomGraph) {
  const Graph g = GenerateErdosRenyi(40, 100, 7);
  const SpcIndex index = MakeIndex(g);
  const auto brandes = BrandesBetweenness(g);
  const auto via_index = AllBetweennessExact(index);
  for (VertexId v = 0; v < 40; ++v) {
    EXPECT_NEAR(via_index[v], brandes[v], 1e-6) << "v=" << v;
  }
}

TEST(BetweennessTest, ExactMatchesBrandesWithFractionalSplits) {
  // The 4-cycle has fractional dependencies (two shortest paths per
  // opposite pair) — catches missing count division.
  const Graph g = GenerateCycle(4);
  const SpcIndex index = MakeIndex(g);
  const auto brandes = BrandesBetweenness(g);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_NEAR(BetweennessExact(index, v), brandes[v], 1e-9);
  }
}

TEST(BetweennessTest, SampledConvergesToExact) {
  const Graph g = GenerateBarabasiAlbert(60, 3, 9);
  const SpcIndex index = MakeIndex(g);
  // The hub vertex (rank 0) has substantial betweenness.
  const VertexId hub = index.Order().VertexAt(0);
  const double exact = BetweennessExact(index, hub);
  const double sampled = BetweennessSampled(index, hub, 4000, 123);
  ASSERT_GT(exact, 0.0);
  EXPECT_NEAR(sampled / exact, 1.0, 0.25);
}

TEST(BetweennessTest, LeafHasZeroBetweenness) {
  const Graph g = GenerateStar(5);
  const SpcIndex index = MakeIndex(g);
  EXPECT_DOUBLE_EQ(BetweennessExact(index, 3), 0.0);
}

// ------------------------------------------------ Group betweenness --

TEST(GroupBetweennessTest, FractionIsOneWhenEndpointInGroup) {
  const Graph g = GeneratePath(4);
  const SpcIndex index = MakeIndex(g);
  EXPECT_DOUBLE_EQ(GroupPathFraction(g, index, {0}, 0, 3), 1.0);
}

TEST(GroupBetweennessTest, FractionZeroWhenGroupOffPath) {
  // Path 0-1-2 plus detached-ish vertex 3 hanging off 0.
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {0, 3}});
  const SpcIndex index = MakeIndex(g);
  EXPECT_DOUBLE_EQ(GroupPathFraction(g, index, {3}, 0, 2), 0.0);
}

TEST(GroupBetweennessTest, FractionSplitsAcrossParallelRoutes) {
  // 4-cycle: s=0, t=2 have two shortest paths (via 1 and via 3).
  const Graph g = GenerateCycle(4);
  const SpcIndex index = MakeIndex(g);
  EXPECT_DOUBLE_EQ(GroupPathFraction(g, index, {1}, 0, 2), 0.5);
  EXPECT_DOUBLE_EQ(GroupPathFraction(g, index, {1, 3}, 0, 2), 1.0);
}

TEST(GroupBetweennessTest, SingletonGroupMatchesVertexBetweenness) {
  // For C = {v}, B(C) equals v's betweenness plus its endpoint pairs'
  // fractions (endpoint convention: fraction 1). Compare on a path
  // where the arithmetic is transparent: B({2}) on 0-..-4.
  const Graph g = GeneratePath(5);
  const SpcIndex index = MakeIndex(g);
  const double bc = BetweennessExact(index, 2);        // 4 pairs
  const double endpoint_pairs = 4.0;                   // pairs with v=2
  EXPECT_DOUBLE_EQ(GroupBetweennessExact(g, index, {2}),
                   bc + endpoint_pairs);
}

TEST(GroupBetweennessTest, GroupDominatesItsMembers) {
  const Graph g = GenerateErdosRenyi(30, 80, 11);
  const SpcIndex index = MakeIndex(g);
  const double single = GroupBetweennessExact(g, index, {3});
  const double pair = GroupBetweennessExact(g, index, {3, 7});
  EXPECT_GE(pair, single - 1e-9);  // monotone in the group
}

TEST(GroupBetweennessTest, SampledApproximatesExact) {
  const Graph g = GenerateBarabasiAlbert(40, 2, 13);
  const SpcIndex index = MakeIndex(g);
  const std::vector<VertexId> group{index.Order().VertexAt(0),
                                    index.Order().VertexAt(1)};
  const double exact = GroupBetweennessExact(g, index, group);
  const double sampled =
      GroupBetweennessSampled(g, index, group, 3000, 321);
  ASSERT_GT(exact, 0.0);
  EXPECT_NEAR(sampled / exact, 1.0, 0.25);
}

// ------------------------------------------------------ POI ranking --

TEST(PoiRankingTest, DistanceDominates) {
  const Graph g = GeneratePath(6);
  const SpcIndex index = MakeIndex(g);
  const auto top = TopKPoi(index, 0, {5, 2, 4}, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].poi, 2u);
  EXPECT_EQ(top[1].poi, 4u);
  EXPECT_EQ(top[2].poi, 5u);
}

TEST(PoiRankingTest, CountBreaksDistanceTies) {
  // Diamond: 0-1-3, 0-2-3 and a separate arm 0-4-5: both 3 and 5 are
  // at distance 2 from 0, but 3 has two shortest routes.
  const Graph g = MakeGraph(6, {{0, 1}, {1, 3}, {0, 2}, {2, 3}, {0, 4}, {4, 5}});
  const SpcIndex index = MakeIndex(g);
  const auto top = TopKPoi(index, 0, {5, 3}, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].poi, 3u);  // count 2 beats count 1
  EXPECT_EQ(top[0].route_count, 2u);
  EXPECT_EQ(top[1].poi, 5u);
}

TEST(PoiRankingTest, DropsUnreachableCandidates) {
  const Graph g = MakeGraph(4, {{0, 1}, {2, 3}});
  const SpcIndex index = MakeIndex(g);
  const auto top = TopKPoi(index, 0, {1, 2, 3}, 3);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].poi, 1u);
}

TEST(PoiRankingTest, RespectsK) {
  const Graph g = GenerateComplete(6);
  const SpcIndex index = MakeIndex(g);
  EXPECT_EQ(TopKPoi(index, 0, {1, 2, 3, 4, 5}, 2).size(), 2u);
}

TEST(PoiRankingTest, IdBreaksFullTies) {
  const Graph g = GenerateComplete(5);
  const SpcIndex index = MakeIndex(g);
  const auto top = TopKPoi(index, 0, {4, 2, 3}, 3);
  EXPECT_EQ(top[0].poi, 2u);
  EXPECT_EQ(top[1].poi, 3u);
  EXPECT_EQ(top[2].poi, 4u);
}

}  // namespace
}  // namespace pspc
