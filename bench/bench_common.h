#ifndef PSPC_BENCH_BENCH_COMMON_H_
#define PSPC_BENCH_BENCH_COMMON_H_

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "src/common/timer.h"
#include "src/core/builder_facade.h"
#include "src/graph/datasets.h"
#include "src/graph/graph.h"
#include "src/label/query_engine.h"

/// Shared plumbing for the paper-reproduction benchmarks.
///
/// Each bench binary regenerates one table or figure of the paper
/// (see DESIGN.md §3 for the experiment index). Graphs and indexes are
/// cached process-wide so a binary that reports several metrics of the
/// same configuration builds it once. `PSPC_BENCH_SCALE_DIVISOR`
/// shrinks every dataset for smoke runs.
namespace pspc::bench {

/// Graph for `code`, built once per process at the configured scale.
inline const Graph& GetGraph(const std::string& code) {
  static auto* cache = new std::map<std::string, Graph>();
  auto it = cache->find(code);
  if (it == cache->end()) {
    const DatasetSpec& spec = DatasetByCode(code);
    it = cache->emplace(code, spec.build(BenchScaleDivisor())).first;
  }
  return it->second;
}

/// Cache key for a built index: dataset code + options fingerprint.
inline std::string OptionsKey(const std::string& code,
                              const BuildOptions& o) {
  return code + "/" + ToString(o.algorithm) + "/" + ToString(o.ordering) +
         "/" + ToString(o.paradigm) + "/" + ToString(o.schedule) + "/t" +
         std::to_string(o.num_threads) + "/l" +
         std::to_string(o.num_landmarks) +
         (o.use_landmark_filter ? "/LL" : "/NLL") + "/d" +
         std::to_string(o.hybrid_delta);
}

/// Builds (or fetches) the index for `code` under `options`.
inline const BuildResult& GetIndex(const std::string& code,
                                   const BuildOptions& options) {
  static auto* cache = new std::map<std::string, BuildResult>();
  const std::string key = OptionsKey(code, options);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, BuildIndex(GetGraph(code), options)).first;
  }
  return it->second;
}

/// Default configurations matching the paper's three compared systems.
inline BuildOptions HpSpcOptions() {
  BuildOptions o;
  o.algorithm = Algorithm::kHpSpc;
  o.ordering = OrderingScheme::kDegree;
  return o;
}

inline BuildOptions PspcOptions1Thread() {
  BuildOptions o;
  o.algorithm = Algorithm::kPspc;
  o.ordering = OrderingScheme::kDegree;
  o.num_threads = 1;
  return o;
}

inline BuildOptions PspcOptionsAllThreads() {
  BuildOptions o = PspcOptions1Thread();
  o.num_threads = 0;  // all cores: the paper's PSPC+
  return o;
}

/// Query workload size; the paper uses 1e5, scaled down with the
/// dataset divisor so smoke runs stay fast.
inline size_t QueryWorkloadSize() {
  const size_t base = 100000;
  return base / BenchScaleDivisor();
}

}  // namespace pspc::bench

#endif  // PSPC_BENCH_BENCH_COMMON_H_
