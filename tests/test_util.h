#ifndef PSPC_TESTS_TEST_UTIL_H_
#define PSPC_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "src/baseline/bfs_spc.h"
#include "src/common/types.h"
#include "src/graph/graph.h"
#include "src/label/spc_index.h"

/// Shared helpers for the PSPC test suite.
namespace pspc::testing {

/// Exhaustive shortest-path counting by DFS path enumeration — the
/// independent oracle used to validate the BFS oracle itself. Only for
/// tiny graphs (exponential).
inline void EnumeratePaths(const Graph& g, VertexId current, VertexId target,
                           uint32_t budget, std::vector<bool>& on_path,
                           Count& found) {
  if (current == target) {
    ++found;
    return;
  }
  if (budget == 0) return;
  on_path[current] = true;
  for (VertexId nxt : g.Neighbors(current)) {
    if (!on_path[nxt]) {
      EnumeratePaths(g, nxt, target, budget - 1, on_path, found);
    }
  }
  on_path[current] = false;
}

/// (distance, count) by brute-force enumeration of simple paths of the
/// exact shortest length.
inline SpcResult BruteForceSpc(const Graph& g, VertexId s, VertexId t) {
  if (s == t) return {0, 1};
  const SpcResult bfs = BfsSpcPair(g, s, t);  // distance from BFS only
  if (bfs.distance == kInfSpcDistance) return {kInfSpcDistance, 0};
  std::vector<bool> on_path(g.NumVertices(), false);
  Count found = 0;
  EnumeratePaths(g, s, t, bfs.distance, on_path, found);
  return {bfs.distance, found};
}

/// All (s, t) pairs of a small graph, s < t.
inline std::vector<std::pair<VertexId, VertexId>> AllPairs(VertexId n) {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = s + 1; t < n; ++t) pairs.emplace_back(s, t);
  }
  return pairs;
}

}  // namespace pspc::testing

#endif  // PSPC_TESTS_TEST_UTIL_H_
