#include "src/order/degree_order.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace pspc {

VertexOrder DegreeOrder(const Graph& graph) {
  std::vector<VertexId> order(graph.NumVertices());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&graph](VertexId a, VertexId b) {
                     return graph.Degree(a) > graph.Degree(b);
                   });
  return VertexOrder(std::move(order));
}

}  // namespace pspc
