#ifndef PSPC_SRC_COMMON_SATURATING_H_
#define PSPC_SRC_COMMON_SATURATING_H_

#include "src/common/types.h"

/// Saturating arithmetic for shortest-path counts.
///
/// On graphs with many parallel shortest routes the path count between a
/// single vertex pair can exceed 2^64 (it grows multiplicatively along
/// the levels of a BFS DAG). Rather than silently wrapping, all count
/// arithmetic in the library clamps at `kSaturatedCount`; a saturated
/// count compares equal to any other saturated count, which keeps index
/// equality checks meaningful in tests.
namespace pspc {

/// Returns `a + b`, clamped at `kSaturatedCount`.
inline Count SatAdd(Count a, Count b) {
  Count r = a + b;
  if (r < a) return kSaturatedCount;  // unsigned overflow wrapped
  return r;
}

/// Returns `a * b`, clamped at `kSaturatedCount`.
inline Count SatMul(Count a, Count b) {
  if (a == 0 || b == 0) return 0;
  if (a > kSaturatedCount / b) return kSaturatedCount;
  return a * b;
}

}  // namespace pspc

#endif  // PSPC_SRC_COMMON_SATURATING_H_
