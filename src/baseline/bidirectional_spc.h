#ifndef PSPC_SRC_BASELINE_BIDIRECTIONAL_SPC_H_
#define PSPC_SRC_BASELINE_BIDIRECTIONAL_SPC_H_

#include "src/common/types.h"
#include "src/graph/graph.h"

/// Index-free online SPC baseline: meet-in-the-middle BFS with count
/// accumulation. Expands the smaller frontier until the two search
/// trees certify the meeting distance, then combines counts over one
/// full meeting level — every shortest path crosses exactly one vertex
/// per level, so a fixed split level counts each path exactly once.
///
/// O(sqrt-ish of the single-BFS work) on small-world graphs; the
/// strongest non-indexed competitor a query engine must beat, and a
/// second independent oracle for tests.
namespace pspc {

SpcResult BidirectionalSpc(const Graph& graph, VertexId s, VertexId t);

}  // namespace pspc

#endif  // PSPC_SRC_BASELINE_BIDIRECTIONAL_SPC_H_
