#pragma once
#include "src/common/mutex.h"

class Cachelet {
 public:
  int Get();

 private:
  spc::Mutex mu_;  // not declared in tools/lock_hierarchy.txt
  int value_ = 0;
};

class Journal {
 public:
  void Append();

 private:
  spc::Mutex log_mu_;  // not declared in tools/lock_hierarchy.txt
};
