// Top-k POI recommendation on a road network — the paper's application
// (2). Among restaurants at the same driving distance, the one with
// more shortest routes offers more detour options around congestion,
// so ties break by the shortest-path count. The index is built with the
// hybrid vertex order the paper recommends for road networks, plus the
// 1-shell reduction demo for the dead-end streets.
//
//   ./road_network_poi

#include <cstdio>
#include <vector>

#include "src/analytics/poi_ranking.h"
#include "src/common/random.h"
#include "src/core/builder_facade.h"
#include "src/graph/generators.h"
#include "src/reduce/reduced_index.h"

int main() {
  // A 60x60 city grid with some closed streets and a few diagonal
  // avenues; dead-end side streets make the 1-shell reduction bite.
  const pspc::Graph city = pspc::GenerateRoadGrid(60, 60, 0.88, 0.05, 77);
  std::printf("city: %u intersections, %llu road segments\n",
              city.NumVertices(),
              static_cast<unsigned long long>(city.NumEdges()));

  pspc::BuildOptions options;
  options.ordering = pspc::OrderingScheme::kHybrid;  // road-network order
  options.hybrid_delta = 5;
  const pspc::BuildResult built = pspc::BuildIndex(city, options);
  const pspc::SpcIndex& index = built.index;
  std::printf("index: %zu entries, built in %.3fs\n", index.TotalEntries(),
              built.stats.TotalSeconds());

  // 30 candidate restaurants at random intersections.
  pspc::Rng rng(4);
  std::vector<pspc::VertexId> restaurants;
  for (int i = 0; i < 30; ++i) {
    restaurants.push_back(
        static_cast<pspc::VertexId>(rng.NextBounded(city.NumVertices())));
  }
  const pspc::VertexId me = 60 * 30 + 30;  // downtown

  const auto top = pspc::TopKPoi(index, me, restaurants, 5);
  std::printf("\ntop-5 restaurants from intersection %u\n", me);
  std::printf("%8s %10s %14s\n", "poi", "distance", "route count");
  for (const pspc::RankedPoi& poi : top) {
    std::printf("%8u %10u %14llu\n", poi.poi, poi.distance,
                static_cast<unsigned long long>(poi.route_count));
  }

  // The same queries through the reduced index (1-shell strips the
  // dead ends; equivalence merges interchangeable intersections).
  pspc::ReductionOptions ropts;
  ropts.build = options;
  const auto reduced = pspc::ReducedSpcIndex::Build(city, ropts);
  std::printf("\nwith the paper's SIV reductions: %u of %u vertices "
              "labeled, index %.1f%% of the unreduced size\n",
              reduced.NumReducedVertices(), city.NumVertices(),
              100.0 * static_cast<double>(reduced.IndexSizeBytes()) /
                  static_cast<double>(index.SizeBytes()));
  for (const pspc::RankedPoi& poi : top) {
    const pspc::SpcResult r = reduced.Query(me, poi.poi);
    if (r.distance != poi.distance || r.count != poi.route_count) {
      std::printf("MISMATCH at poi %u!\n", poi.poi);
      return 1;
    }
  }
  std::printf("reduced index reproduces every ranked answer exactly\n");
  return 0;
}
