#ifndef PSPC_SRC_COMMON_THREAD_ANNOTATIONS_H_
#define PSPC_SRC_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros.
///
/// These make the locking contracts of the concurrent subsystems
/// (src/serve/, src/obs/, src/dynamic/) part of the type system:
/// `GUARDED_BY(mu)` on a member means every access must hold `mu`,
/// `REQUIRES(mu)` on a function means every caller must hold `mu`,
/// and the `spc::Mutex` / `spc::MutexLock` wrappers (common/mutex.h)
/// carry the ACQUIRE/RELEASE annotations the analysis tracks. Under
/// `clang++ -Wthread-safety` a missed lock is a compile error on every
/// build and every path — the static complement of the TSan CI lane,
/// which can only sample the interleavings it happens to run. Under
/// compilers without the attribute (g++) everything expands to
/// nothing.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
/// (the macro set below is the one that page documents, and the same
/// shape Abseil ships in absl/base/thread_annotations.h).

#if defined(__clang__) && (!defined(SWIG))
#define PSPC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PSPC_THREAD_ANNOTATION(x)  // no-op
#endif

/// Declares that the data member it is attached to is protected by the
/// given capability: reads require the capability shared or exclusive,
/// writes require it exclusive.
#define GUARDED_BY(x) PSPC_THREAD_ANNOTATION(guarded_by(x))

/// Like GUARDED_BY for pointers: the pointed-to data (not the pointer
/// itself) is protected by the capability.
#define PT_GUARDED_BY(x) PSPC_THREAD_ANNOTATION(pt_guarded_by(x))

/// The calling thread must hold the given capability(ies) exclusively
/// to call this function; the function neither acquires nor releases.
#define REQUIRES(...) \
  PSPC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Shared-hold variant of REQUIRES.
#define REQUIRES_SHARED(...) \
  PSPC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it past return.
#define ACQUIRE(...) \
  PSPC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases a capability the caller held.
#define RELEASE(...) \
  PSPC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function attempts to acquire; the first argument is the return
/// value meaning success.
#define TRY_ACQUIRE(...) \
  PSPC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The calling thread must NOT hold the capability (deadlock guard for
/// functions that acquire it themselves).
#define EXCLUDES(...) PSPC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares that a function returns a reference to the given
/// capability (accessor pattern).
#define RETURN_CAPABILITY(x) PSPC_THREAD_ANNOTATION(lock_returned(x))

/// Marks a class as a capability (something that can be held). The
/// string names the capability kind in diagnostics ("mutex").
#define CAPABILITY(x) PSPC_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define SCOPED_CAPABILITY PSPC_THREAD_ANNOTATION(scoped_lockable)

/// Escape hatch: disables analysis for one function. The repo bans it
/// — the clang CI lane greps for uses and `spc_lint` flags it — so the
/// macro exists only to make the (forbidden) spelling canonical and
/// findable, not to be used.
#define NO_THREAD_SAFETY_ANALYSIS \
  PSPC_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Asserts at analysis level (no runtime effect) that the capability
/// is held — for callbacks whose caller provably holds the lock but
/// whose signature cannot carry REQUIRES.
#define ASSERT_CAPABILITY(x) PSPC_THREAD_ANNOTATION(assert_capability(x))

#endif  // PSPC_SRC_COMMON_THREAD_ANNOTATIONS_H_
