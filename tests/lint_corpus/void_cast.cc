#include "src/common/status.h"

int Probe(void);

void Swallow() {
  pspc::Status dropped = pspc::Status::OK();
  (void)dropped;
  // Best-effort: the fallback path repeats the write and checks it.
  (void)dropped;
}
