#include "src/analytics/betweenness.h"

#include "src/common/logging.h"
#include "src/common/random.h"

namespace pspc {
namespace {

/// Pair dependency of v on (s, t); 0 when v is off every shortest path.
double PairDependency(const SpcIndex& index, VertexId v, VertexId s,
                      VertexId t) {
  const SpcResult st = index.Query(s, t);
  if (st.distance == kInfSpcDistance || st.count == 0) return 0.0;
  const SpcResult sv = index.Query(s, v);
  if (sv.distance == kInfSpcDistance) return 0.0;
  const SpcResult vt = index.Query(v, t);
  if (vt.distance == kInfSpcDistance) return 0.0;
  if (sv.distance + vt.distance != st.distance) return 0.0;
  return static_cast<double>(sv.count) * static_cast<double>(vt.count) /
         static_cast<double>(st.count);
}

}  // namespace

double BetweennessExact(const SpcIndex& index, VertexId v) {
  const VertexId n = index.NumVertices();
  PSPC_CHECK(v < n);
  double total = 0.0;
  for (VertexId s = 0; s < n; ++s) {
    if (s == v) continue;
    for (VertexId t = s + 1; t < n; ++t) {
      if (t == v) continue;
      total += PairDependency(index, v, s, t);
    }
  }
  return total;
}

double BetweennessSampled(const SpcIndex& index, VertexId v,
                          size_t num_samples, uint64_t seed) {
  const VertexId n = index.NumVertices();
  PSPC_CHECK(v < n);
  PSPC_CHECK(n >= 3);
  Rng rng(seed);
  double total = 0.0;
  size_t drawn = 0;
  while (drawn < num_samples) {
    const auto s = static_cast<VertexId>(rng.NextBounded(n));
    const auto t = static_cast<VertexId>(rng.NextBounded(n));
    if (s == t || s == v || t == v) continue;
    total += PairDependency(index, v, s, t);
    ++drawn;
  }
  // Scale the sample mean to the number of unordered valid pairs.
  const double pairs =
      static_cast<double>(n - 1) * static_cast<double>(n - 2) / 2.0;
  return total / static_cast<double>(num_samples) * pairs;
}

std::vector<double> AllBetweennessExact(const SpcIndex& index) {
  const VertexId n = index.NumVertices();
  std::vector<double> result(n, 0.0);
  for (VertexId v = 0; v < n; ++v) result[v] = BetweennessExact(index, v);
  return result;
}

}  // namespace pspc
