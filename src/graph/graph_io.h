#ifndef PSPC_SRC_GRAPH_GRAPH_IO_H_
#define PSPC_SRC_GRAPH_GRAPH_IO_H_

#include <string>

#include "src/common/status.h"
#include "src/graph/graph.h"

/// Text and binary graph persistence.
///
/// The text format is the SNAP edge-list dialect the paper's datasets
/// ship in: one `u v` pair per line, `#`-prefixed comment lines,
/// directed duplicates tolerated (the loader symmetrizes).
namespace pspc {

/// Loads an edge-list text file, preserving numeric vertex ids
/// (`n = max id + 1`; gaps become isolated vertices). Round-trips
/// exactly with SaveEdgeList.
Result<Graph> LoadEdgeList(const std::string& path);

/// Parses edge-list text from a string (same dialect as LoadEdgeList).
Result<Graph> ParseEdgeList(const std::string& text);

/// Variants for sparse id spaces (e.g. raw SNAP crawls): ids are
/// densified to `[0, n)` in first-appearance order.
Result<Graph> LoadEdgeListRemapped(const std::string& path);
Result<Graph> ParseEdgeListRemapped(const std::string& text);

/// Writes `graph` as an edge-list text file (each undirected edge once,
/// smaller endpoint first).
Status SaveEdgeList(const Graph& graph, const std::string& path);

/// Binary snapshot of the CSR arrays; loads are validated against a
/// magic number and structural invariants (Corruption on mismatch).
Status SaveBinary(const Graph& graph, const std::string& path);
Result<Graph> LoadBinary(const std::string& path);

}  // namespace pspc

#endif  // PSPC_SRC_GRAPH_GRAPH_IO_H_
