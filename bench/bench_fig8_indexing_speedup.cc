// Reproduces Fig. 8 (Exp 4): indexing-time speedup of PSPC+ as the
// thread count grows, on the paper's four sweep datasets (FB, GO, GW,
// WI). Expected shape: near-linear scaling (the paper reports 16.7x /
// 11.8x / 11.9x / 15.4x at 20 threads); the attainable ceiling here is
// the container's core count.

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/parallel.h"
#include "src/common/timer.h"

namespace {

// One-thread baselines, built lazily so the speedup counter can be
// derived inside each benchmark.
double BaselineSeconds(const std::string& code) {
  static auto* cache = new std::map<std::string, double>();
  auto it = cache->find(code);
  if (it == cache->end()) {
    // Untimed warmup build first: the process's first large build pays
    // allocator page-fault costs that would inflate every speedup.
    pspc::BuildIndex(pspc::bench::GetGraph(code),
                     pspc::bench::PspcOptions1Thread());
    pspc::WallTimer timer;
    pspc::BuildIndex(pspc::bench::GetGraph(code),
                     pspc::bench::PspcOptions1Thread());
    it = cache->emplace(code, timer.ElapsedSeconds()).first;
  }
  return it->second;
}

void IndexingSpeedup(benchmark::State& state, const std::string& code,
                     int threads) {
  const pspc::Graph& g = pspc::bench::GetGraph(code);
  pspc::BuildOptions options = pspc::bench::PspcOptions1Thread();
  options.num_threads = threads;
  pspc::BuildIndex(g, options);  // untimed warmup
  for (auto _ : state) {
    pspc::WallTimer timer;
    benchmark::DoNotOptimize(pspc::BuildIndex(g, options));
    const double seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
    state.counters["speedup"] = BaselineSeconds(code) / seconds;
    state.counters["threads"] = threads;
  }
}

std::vector<int> ThreadSweep() {
  std::vector<int> sweep{1, 2, 4};
  const int max_threads = pspc::MaxThreads();
  for (int t = 8; t < max_threads; t *= 2) sweep.push_back(t);
  if (sweep.back() != max_threads) sweep.push_back(max_threads);
  return sweep;
}

int RegisterAll() {
  for (const auto& spec : pspc::AllDatasets()) {
    if (!spec.in_sweep_set) continue;
    for (int threads : ThreadSweep()) {
      benchmark::RegisterBenchmark(
          ("fig8/indexing_speedup/" + spec.code + "/threads:" +
           std::to_string(threads))
              .c_str(),
          [code = spec.code, threads](benchmark::State& s) {
            IndexingSpeedup(s, code, threads);
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kSecond);
    }
  }
  return 0;
}

static const int kRegistered = RegisterAll();

}  // namespace
