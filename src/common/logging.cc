#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace pspc {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  // relaxed: the level is an independent config word; no data is
  // published through it.
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line,
               message.c_str());
}

void CheckFailed(const char* file, int line, const char* condition,
                 const std::string& message) {
  std::fprintf(stderr, "[CHECK FAILED %s:%d] %s %s\n", file, line, condition,
               message.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace pspc
