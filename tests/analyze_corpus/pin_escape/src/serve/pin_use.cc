#include <vector>

#include "src/serve/snapshot_api.h"

void BulkPin(SnapshotManager& snapshots, int n) {
  std::vector<SnapshotRef> pins;  // container of pins in one scope
  auto ref = snapshots.Acquire();
  auto drop = [&ref, n]() { return n; };  // capture outlives the scope
  drop();
  pins.clear();
}
