// Reproduces Fig. 9 (Exp 4): query-throughput speedup as the thread
// count grows, on the four sweep datasets. Queries are independent, so
// a dynamic division of the batch scales near-linearly (the paper's
// observation that "a divide and conquer strategy on the query
// workload could achieve a linear speedup").

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/parallel.h"
#include "src/common/timer.h"
#include "src/label/query_engine.h"

namespace {

const pspc::QueryBatch& GetBatch(const std::string& code) {
  static auto* cache = new std::map<std::string, pspc::QueryBatch>();
  auto it = cache->find(code);
  if (it == cache->end()) {
    const pspc::Graph& g = pspc::bench::GetGraph(code);
    it = cache->emplace(code,
                        pspc::MakeRandomQueries(
                            g.NumVertices(),
                            pspc::bench::QueryWorkloadSize(), /*seed=*/0xF19))
             .first;
  }
  return it->second;
}

double BaselineSeconds(const std::string& code) {
  static auto* cache = new std::map<std::string, double>();
  auto it = cache->find(code);
  if (it == cache->end()) {
    const pspc::SpcIndex& index =
        pspc::bench::GetIndex(code, pspc::bench::PspcOptionsAllThreads())
            .index;
    benchmark::DoNotOptimize(pspc::RunQueries(index, GetBatch(code)));
    pspc::WallTimer timer;
    benchmark::DoNotOptimize(pspc::RunQueries(index, GetBatch(code)));
    it = cache->emplace(code, timer.ElapsedSeconds()).first;
  }
  return it->second;
}

void QuerySpeedup(benchmark::State& state, const std::string& code,
                  int threads) {
  const pspc::SpcIndex& index =
      pspc::bench::GetIndex(code, pspc::bench::PspcOptionsAllThreads()).index;
  const pspc::QueryBatch& batch = GetBatch(code);
  for (auto _ : state) {
    pspc::WallTimer timer;
    benchmark::DoNotOptimize(pspc::RunQueriesParallel(index, batch, threads));
    const double seconds = timer.ElapsedSeconds();
    state.SetIterationTime(seconds);
    state.counters["speedup"] = BaselineSeconds(code) / seconds;
    state.counters["threads"] = threads;
  }
}

std::vector<int> ThreadSweep() {
  std::vector<int> sweep{1, 2, 4};
  const int max_threads = pspc::MaxThreads();
  for (int t = 8; t < max_threads; t *= 2) sweep.push_back(t);
  if (sweep.back() != max_threads) sweep.push_back(max_threads);
  return sweep;
}

int RegisterAll() {
  for (const auto& spec : pspc::AllDatasets()) {
    if (!spec.in_sweep_set) continue;
    for (int threads : ThreadSweep()) {
      benchmark::RegisterBenchmark(
          ("fig9/query_speedup/" + spec.code + "/threads:" +
           std::to_string(threads))
              .c_str(),
          [code = spec.code, threads](benchmark::State& s) {
            QuerySpeedup(s, code, threads);
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
  return 0;
}

static const int kRegistered = RegisterAll();

}  // namespace
