#include "src/serve/snapshot_manager.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/timer.h"
#include "src/obs/metric_names.h"

namespace pspc {

SnapshotManager::SnapshotManager(std::unique_ptr<const IndexSnapshot> initial,
                                 obs::MetricsRegistry* registry,
                                 obs::FlightRecorder* recorder)
    : current_(initial.release()),
      recorder_(recorder != nullptr ? recorder
                                    : &obs::FlightRecorder::Global()) {
  // relaxed: single-threaded constructor, no concurrent publisher yet.
  PSPC_CHECK(current_.load(std::memory_order_relaxed) != nullptr);
  if (registry == nullptr) registry = &obs::MetricsRegistry::Global();
  reclaimed_total_counter_ =
      registry->GetCounter(obs::kServeSnapshotsReclaimedTotal);
  copied_total_counter_ =
      registry->GetCounter(obs::kServePublishCopiedVerticesTotal);
  retired_pending_gauge_ =
      registry->GetGauge(obs::kServeSnapshotsRetiredPending);
  copied_last_gauge_ = registry->GetGauge(obs::kServePublishCopiedVerticesLast);
  active_readers_gauge_ = registry->GetGauge(obs::kServeActiveReaders);
  copied_hist_ = registry->GetHistogram(obs::kServePublishCopiedVertices);
  pin_us_ = registry->GetHistogram(obs::kServeReaderPinUs);
  epochs_.BindOverflowPinCounter(
      registry->GetCounter(obs::kServeEpochOverflowPinsTotal));
  epochs_.BindFlightRecorder(recorder_);
}

SnapshotManager::~SnapshotManager() {
  PSPC_CHECK_MSG(epochs_.ActiveReaders() == 0,
                 "SnapshotManager destroyed with pinned readers");
  // relaxed: destructor runs after all readers and writers (checked
  // above), so nothing races this final load.
  delete current_.load(std::memory_order_relaxed);
  for (const Retired& r : retired_) delete r.snapshot;
}

SnapshotRef SnapshotManager::Acquire() const {
  // Pin first, then load: with both operations seq_cst, a writer whose
  // post-swap slot scan misses this pin is guaranteed the load below
  // observed the post-swap pointer (see epoch_manager.h).
  const size_t slot = epochs_.Enter();
  const IndexSnapshot* snapshot = current_.load(std::memory_order_seq_cst);
  return SnapshotRef(&epochs_, slot, snapshot, pin_us_, obs::TraceNowNs());
}

void SnapshotManager::Publish(std::unique_ptr<const IndexSnapshot> next) {
  PSPC_CHECK(next != nullptr);
  const size_t copied = next->CopiedVertices();
  // relaxed: statistics mirrors; Publish is writer-serialized and
  // pollers tolerate trailing values.
  copied_last_.store(copied, std::memory_order_relaxed);
  copied_total_.fetch_add(copied, std::memory_order_relaxed);
  copied_total_counter_->Increment(copied);
  copied_last_gauge_->Set(static_cast<int64_t>(copied));
  copied_hist_->Record(static_cast<double>(copied));
  const IndexSnapshot* old =
      current_.exchange(next.release(), std::memory_order_seq_cst);
  // Swap before advancing: any reader that still holds `old` pinned at
  // an epoch read before this publish, i.e. strictly below the retire
  // epoch recorded here.
  const uint64_t retire_epoch = epochs_.AdvanceEpoch();
  retired_.push_back({old, retire_epoch});
  Reclaim();
  active_readers_gauge_->Set(static_cast<int64_t>(epochs_.ActiveReaders()));
  recorder_->Record(
      obs::FlightEventKind::kPublish,
      // relaxed: reading back the pointer this same thread just
      // published; no cross-thread edge needed.
      current_.load(std::memory_order_relaxed)->Generation(),
      static_cast<uint64_t>(copied), static_cast<uint64_t>(retired_.size()));
}

void SnapshotManager::Reclaim() {
  WallTimer timer;
  // kNoActiveReader compares greater than every retire epoch, so an
  // idle reader side drains the whole list.
  const uint64_t min_active = epochs_.MinActiveEpoch();
  auto dead = std::partition(
      retired_.begin(), retired_.end(),
      [min_active](const Retired& r) { return r.epoch > min_active; });
  size_t freed = 0;
  for (auto it = dead; it != retired_.end(); ++it) {
    delete it->snapshot;
    ++freed;
    // relaxed: reclaim tally for Counters()/watchdog polls.
    reclaimed_.fetch_add(1, std::memory_order_relaxed);
    reclaimed_total_counter_->Increment();
  }
  retired_.erase(dead, retired_.end());
  // relaxed: statistics mirrors of writer-serialized state, read by
  // pollers that tolerate staleness.
  retired_count_.store(retired_.size(), std::memory_order_relaxed);
  retired_pending_gauge_->Set(static_cast<int64_t>(retired_.size()));
  const double micros = timer.ElapsedMicros();
  last_reclaim_us_.store(micros, std::memory_order_relaxed);
  if (freed > 0) {
    recorder_->Record(obs::FlightEventKind::kReclaim, freed, retired_.size(),
                      static_cast<uint64_t>(micros));
  }
}

}  // namespace pspc
