// Compares a freshly produced BENCH_*.json against the committed
// baseline under bench/results/, flagging regressions per metric. CI
// runs it after the bench smokes so a change that silently halves the
// engine's read throughput (or breaks an oracle) fails the build
// instead of landing as a mystery for the next profiling session.
//
//   bench_compare <fresh.json> <baseline.json>
//       [--tolerance f]   relative slack for timing-ish metrics
//                         (default 0.5 = 50%, benches are noisy)
//       [--min-base v]    skip relative checks when |baseline| < v
//                         (default 1e-6; tiny denominators are noise)
//       [--only substr]   restrict checks to keys containing substr
//       [--machine-independent]
//                         gate only metrics that do not depend on the
//                         host's speed: oracle mismatch/failure
//                         counts, boolean bound/ok flags, and
//                         speedup ratios. Timings and throughput are
//                         still *reported*, never fatal. This is the
//                         CI mode: committed baselines come from a
//                         different machine than the runner.
//
// Both files are flattened to `path -> number` (arrays index as
// `rows[3].reads_per_second`); each key present in both sides is
// classified by name into a comparison direction:
//
//   * exact-or-better (mismatches, failures):  fresh <= baseline
//   * boolean must-hold (_met, ok):            baseline true => fresh true
//   * higher-better (speedup, *_per_second):   fresh >= baseline*(1-tol)
//   * lower-better (*_ms/_us/p50/p95/p99...):  fresh <= baseline*(1+tol)
//   * everything else: informational only
//
// Keys present on only one side are reported (schema drift) but not
// fatal — benches grow fields across PRs. Exit 1 on any regression.
//
// Self-contained on purpose: tools build without linking the library,
// and the repo deliberately has no JSON parser dependency, so a
// minimal recursive-descent parser lives here.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ------------------------------------------------------------ JSON

// Flattens a JSON document straight into dotted-path leaves; only
// numbers and booleans (as 0/1) are kept — strings and nulls have no
// comparison semantics here.
class FlattenParser {
 public:
  explicit FlattenParser(const std::string& text) : text_(text) {}

  bool Run(std::map<std::string, double>* out) {
    out_ = out;
    pos_ = 0;
    const bool ok = ParseValue("");
    SkipWs();
    return ok && pos_ == text_.size();
  }

  std::string Error() const {
    return "parse error near offset " + std::to_string(pos_);
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        out->push_back(text_[pos_ + 1]);  // verbatim is fine for keys
        pos_ += 2;
      } else {
        out->push_back(text_[pos_]);
        ++pos_;
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(const std::string& path) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(path);
    if (c == '[') return ParseArray(path);
    if (c == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (c == 't') {
      if (!Literal("true")) return false;
      Emit(path, 1.0);
      return true;
    }
    if (c == 'f') {
      if (!Literal("false")) return false;
      Emit(path, 0.0);
      return true;
    }
    if (c == 'n') return Literal("null");
    // number
    char* end = nullptr;
    const double value = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    pos_ = static_cast<size_t>(end - text_.c_str());
    Emit(path, value);
    return true;
  }

  bool ParseObject(const std::string& path) {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!ParseValue(path.empty() ? key : path + "." + key)) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(const std::string& path) {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (size_t index = 0;; ++index) {
      if (!ParseValue(path + "[" + std::to_string(index) + "]")) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  void Emit(const std::string& path, double value) {
    if (!path.empty()) (*out_)[path] = value;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::map<std::string, double>* out_ = nullptr;
};

// ------------------------------------------------- classification

enum class Direction {
  kExactOrBetter,  // counts of wrongness: fresh <= baseline, no slack
  kMustHold,       // boolean: baseline 1 => fresh 1
  kHigherBetter,   // throughput / speedups, with tolerance
  kLowerBetter,    // latencies / costs, with tolerance
  kInfo,           // everything else
};

bool Contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// Classifies by the leaf name (last dotted component), so
// `rows[3].batch_p99_ms` and `insert.p95_ms` classify the same way.
Direction Classify(const std::string& key) {
  const size_t dot = key.rfind('.');
  const std::string leaf = dot == std::string::npos ? key
                                                    : key.substr(dot + 1);
  if (Contains(leaf, "mismatch") || Contains(leaf, "failure")) {
    return Direction::kExactOrBetter;
  }
  if (EndsWith(leaf, "_met") || leaf == "ok") return Direction::kMustHold;
  if (Contains(leaf, "speedup") || Contains(leaf, "per_second")) {
    return Direction::kHigherBetter;
  }
  if (EndsWith(leaf, "_ms") || EndsWith(leaf, "_us") ||
      EndsWith(leaf, "_seconds") || Contains(leaf, "p50") ||
      Contains(leaf, "p95") || Contains(leaf, "p99") ||
      Contains(leaf, "copied") || Contains(leaf, "mean")) {
    return Direction::kLowerBetter;
  }
  return Direction::kInfo;
}

// In --machine-independent mode, only directions whose values do not
// scale with host speed stay fatal. Speedups are ratios of two runs
// on the *same* host, so they transfer across machines (with slack).
bool MachineIndependent(Direction direction) {
  return direction == Direction::kExactOrBetter ||
         direction == Direction::kMustHold ||
         direction == Direction::kHigherBetter;
}

const char* DirectionName(Direction d) {
  switch (d) {
    case Direction::kExactOrBetter: return "exact";
    case Direction::kMustHold: return "must-hold";
    case Direction::kHigherBetter: return "higher-better";
    case Direction::kLowerBetter: return "lower-better";
    case Direction::kInfo: return "info";
  }
  return "?";
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_compare <fresh.json> <baseline.json> "
               "[--tolerance f] [--min-base v] [--only substr] "
               "[--machine-independent]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string fresh_path, baseline_path, only;
  double tolerance = 0.5;
  double min_base = 1e-6;
  bool machine_independent = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (arg == "--min-base" && i + 1 < argc) {
      min_base = std::atof(argv[++i]);
    } else if (arg == "--only" && i + 1 < argc) {
      only = argv[++i];
    } else if (arg == "--machine-independent") {
      machine_independent = true;
    } else if (!arg.empty() && arg[0] != '-') {
      if (fresh_path.empty()) {
        fresh_path = arg;
      } else if (baseline_path.empty()) {
        baseline_path = arg;
      } else {
        return Usage();
      }
    } else {
      return Usage();
    }
  }
  if (fresh_path.empty() || baseline_path.empty()) return Usage();

  std::string fresh_text, baseline_text;
  if (!ReadFile(fresh_path, &fresh_text)) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n",
                 fresh_path.c_str());
    return 2;
  }
  if (!ReadFile(baseline_path, &baseline_text)) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n",
                 baseline_path.c_str());
    return 2;
  }

  std::map<std::string, double> fresh, baseline;
  {
    FlattenParser parser(fresh_text);
    if (!parser.Run(&fresh)) {
      std::fprintf(stderr, "bench_compare: %s: %s\n", fresh_path.c_str(),
                   parser.Error().c_str());
      return 2;
    }
  }
  {
    FlattenParser parser(baseline_text);
    if (!parser.Run(&baseline)) {
      std::fprintf(stderr, "bench_compare: %s: %s\n", baseline_path.c_str(),
                   parser.Error().c_str());
      return 2;
    }
  }

  size_t compared = 0, gated = 0, missing = 0;
  std::vector<std::string> regressions;
  for (const auto& [key, base] : baseline) {
    if (!only.empty() && !Contains(key, only.c_str())) continue;
    const auto it = fresh.find(key);
    if (it == fresh.end()) {
      std::printf("  MISSING  %-60s (baseline %.6g)\n", key.c_str(), base);
      ++missing;
      continue;
    }
    const double now = it->second;
    const Direction direction = Classify(key);
    ++compared;
    const bool fatal =
        direction != Direction::kInfo &&
        (!machine_independent || MachineIndependent(direction));

    bool bad = false;
    switch (direction) {
      case Direction::kExactOrBetter:
        bad = now > base;
        break;
      case Direction::kMustHold:
        bad = base >= 0.5 && now < 0.5;
        break;
      case Direction::kHigherBetter:
        bad = std::fabs(base) >= min_base && now < base * (1.0 - tolerance);
        break;
      case Direction::kLowerBetter:
        bad = std::fabs(base) >= min_base && now > base * (1.0 + tolerance);
        break;
      case Direction::kInfo:
        break;
    }
    const char* verdict = "ok";
    if (bad && fatal) {
      verdict = "REGRESSION";
      regressions.push_back(key);
    } else if (bad) {
      verdict = "worse (not gated)";
    }
    if (fatal) ++gated;
    if (bad || direction != Direction::kInfo) {
      std::printf("  %-18s %-13s %-54s %.6g -> %.6g\n", verdict,
                  DirectionName(direction), key.c_str(), base, now);
    }
  }

  std::printf(
      "bench_compare: %zu keys compared (%zu gated, tolerance %.0f%%%s), "
      "%zu baseline keys absent from fresh run\n",
      compared, gated, tolerance * 100,
      machine_independent ? ", machine-independent only" : "", missing);
  if (!regressions.empty()) {
    std::fprintf(stderr, "bench_compare: %zu regression(s):\n",
                 regressions.size());
    for (const std::string& key : regressions) {
      std::fprintf(stderr, "  %s\n", key.c_str());
    }
    return 1;
  }
  std::printf("bench_compare: OK\n");
  return 0;
}
