#ifndef PSPC_SRC_SERVE_RESULT_CACHE_H_
#define PSPC_SRC_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/common/types.h"

/// Sharded query-result cache, invalidated per published generation.
///
/// In symmetric mode keys are canonicalized (s, t) pairs — undirected
/// SPC is symmetric, so (t, s) hits the same entry. Directed engines
/// construct with `symmetric = false`, which keys on the ordered pair:
/// SPC(s -> t) and SPC(t -> s) are distinct answers and must never
/// alias. Each shard is independently locked and tagged
/// with the generation its entries were computed against; a lookup or
/// insert carrying a newer generation wholesale-drops the shard (the
/// graph changed, every cached answer is suspect), and an insert from
/// a worker still finishing an older generation's micro-batch is
/// discarded rather than poisoning the newer shard. Eviction is the
/// same wholesale drop when a shard fills — the workload this serves
/// (hot pairs re-queried between publishes) does not reward LRU
/// bookkeeping on the read path.
namespace pspc {

class ResultCache {
 public:
  /// `num_shards` is rounded up to a power of two. A zero
  /// `capacity_per_shard` disables the cache (every Lookup misses,
  /// every Insert drops). `symmetric` controls key canonicalization:
  /// true folds (s, t) and (t, s) together (undirected SPC), false
  /// keeps ordered pairs distinct (directed SPC).
  ResultCache(size_t num_shards, size_t capacity_per_shard,
              bool symmetric = true);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// True and fills `*out` on a hit at exactly `generation`.
  bool Lookup(uint64_t generation, VertexId s, VertexId t, SpcResult* out);

  /// Records `result` for (s, t) at `generation`.
  void Insert(uint64_t generation, VertexId s, VertexId t, SpcResult result);

  // relaxed: monotonic tallies; pollers tolerate trailing reads.
  uint64_t Hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t Misses() const { return misses_.load(std::memory_order_relaxed); }

  size_t NumShards() const { return num_shards_; }

 private:
  struct Shard {
    spc::Mutex mu;
    uint64_t generation GUARDED_BY(mu) = 0;
    std::unordered_map<uint64_t, SpcResult> entries GUARDED_BY(mu);
  };

  Shard& ShardFor(uint64_t key);
  uint64_t PairKey(VertexId s, VertexId t) const;

  const size_t num_shards_;  // power of two
  const size_t capacity_per_shard_;
  const bool symmetric_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace pspc

#endif  // PSPC_SRC_SERVE_RESULT_CACHE_H_
