#include "src/graph/graph.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pspc {

Graph::Graph(std::vector<EdgeId> offsets, std::vector<VertexId> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
  PSPC_CHECK(!offsets_.empty());
  PSPC_CHECK(offsets_.front() == 0);
  PSPC_CHECK(offsets_.back() == neighbors_.size());
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  const auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double Graph::AverageDegree() const {
  const VertexId n = NumVertices();
  if (n == 0) return 0.0;
  return static_cast<double>(neighbors_.size()) / n;
}

VertexId Graph::MaxDegree() const {
  VertexId best = 0;
  for (VertexId v = 0; v < NumVertices(); ++v) best = std::max(best, Degree(v));
  return best;
}

}  // namespace pspc
