#ifndef PSPC_SRC_REDUCE_REDUCED_INDEX_H_
#define PSPC_SRC_REDUCE_REDUCED_INDEX_H_

#include "src/core/build_options.h"
#include "src/core/build_stats.h"
#include "src/graph/graph.h"
#include "src/label/spc_index.h"
#include "src/reduce/equivalence.h"
#include "src/reduce/one_shell.h"

/// Index with the paper's §IV size reductions applied, answering exact
/// SPC queries on *original* vertex ids.
///
/// Pipeline: original graph --[1-shell peel]--> core --[neighborhood
/// equivalence contraction]--> weighted reduced graph --> ESPC index
/// (HP-SPC or PSPC, weighted by class multiplicities). Queries route
/// through up to three layers:
///   1. same-anchor pairs answer from the fringe tree (count 1);
///   2. same-class pairs answer closed-form (true/false twin rules);
///   3. everything else: weighted 2-hop query on the reduced index,
///      with the anchors' tree depths added to the distance.
/// Either reduction can be disabled independently (the ablation hooks).
namespace pspc {

struct ReductionOptions {
  bool use_one_shell = true;
  bool use_equivalence = true;
  /// Construction options for the inner label index.
  BuildOptions build;
};

class ReducedSpcIndex {
 public:
  ReducedSpcIndex() = default;

  static ReducedSpcIndex Build(const Graph& graph,
                               const ReductionOptions& options);

  /// Exact SPC between original vertices.
  SpcResult Query(VertexId s, VertexId t) const;

  /// Vertices surviving into the labeled (fully reduced) graph.
  VertexId NumReducedVertices() const { return index_.NumVertices(); }

  /// Total original vertices.
  VertexId NumOriginalVertices() const { return num_original_; }

  const SpcIndex& InnerIndex() const { return index_; }
  const BuildStats& Stats() const { return stats_; }

  /// Label storage of the inner index (the reductions' size win shows
  /// up here, vs. an unreduced index on the original graph).
  size_t IndexSizeBytes() const { return index_.SizeBytes(); }

 private:
  SpcResult InnerQuery(VertexId core_s, VertexId core_t) const;
  SpcResult WeightedQuery(VertexId rs, VertexId rt) const;

  VertexId num_original_ = 0;
  bool has_one_shell_ = false;
  bool has_equivalence_ = false;
  OneShellReduction shell_;
  EquivalenceReduction equiv_;
  SpcIndex index_;
  BuildStats stats_;
};

}  // namespace pspc

#endif  // PSPC_SRC_REDUCE_REDUCED_INDEX_H_
