#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/order/degree_order.h"
#include "src/order/hybrid_order.h"
#include "src/order/significant_path_order.h"
#include "src/order/tree_decomposition.h"
#include "src/order/vertex_order.h"

namespace pspc {
namespace {

bool IsPermutation(const VertexOrder& order, VertexId n) {
  if (order.Size() != n) return false;
  std::vector<bool> seen(n, false);
  for (Rank r = 0; r < n; ++r) {
    const VertexId v = order.VertexAt(r);
    if (v >= n || seen[v]) return false;
    seen[v] = true;
    if (order.RankOf(v) != r) return false;
  }
  return true;
}

// ------------------------------------------------------ VertexOrder --

TEST(VertexOrderTest, IdentityRoundTrips) {
  const VertexOrder order = IdentityOrder(5);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(order.RankOf(v), v);
    EXPECT_EQ(order.VertexAt(v), v);
  }
}

TEST(VertexOrderTest, PermutationRoundTrips) {
  const VertexOrder order(std::vector<VertexId>{2, 0, 3, 1});
  EXPECT_EQ(order.VertexAt(0), 2u);
  EXPECT_EQ(order.RankOf(2), 0u);
  EXPECT_EQ(order.RankOf(1), 3u);
  EXPECT_TRUE(order.RanksHigher(2, 1));
  EXPECT_FALSE(order.RanksHigher(1, 2));
}

TEST(VertexOrderDeathTest, RejectsDuplicates) {
  EXPECT_DEATH(VertexOrder(std::vector<VertexId>{0, 0, 1}), "twice");
}

TEST(VertexOrderDeathTest, RejectsOutOfRange) {
  EXPECT_DEATH(VertexOrder(std::vector<VertexId>{0, 5, 1}), "out-of-range");
}

// ------------------------------------------------------ DegreeOrder --

TEST(DegreeOrderTest, StarCenterRanksFirst) {
  const VertexOrder order = DegreeOrder(GenerateStar(6));
  EXPECT_EQ(order.VertexAt(0), 0u);
}

TEST(DegreeOrderTest, DegreesNonIncreasingAlongRanks) {
  const Graph g = GenerateBarabasiAlbert(100, 3, 1);
  const VertexOrder order = DegreeOrder(g);
  ASSERT_TRUE(IsPermutation(order, 100));
  for (Rank r = 1; r < 100; ++r) {
    EXPECT_GE(g.Degree(order.VertexAt(r - 1)), g.Degree(order.VertexAt(r)));
  }
}

TEST(DegreeOrderTest, TieBreaksById) {
  const Graph g = GenerateCycle(5);  // all degree 2
  const VertexOrder order = DegreeOrder(g);
  for (Rank r = 0; r < 5; ++r) EXPECT_EQ(order.VertexAt(r), r);
}

// ------------------------------------------- Min-degree elimination --

TEST(TreeDecompositionTest, PathEliminationBagSize) {
  // A path has treewidth 1: every elimination bag has <= 2 vertices.
  const auto result = MinDegreeElimination(GeneratePath(20), 0);
  EXPECT_LE(result.max_bag_size, 2u);
  EXPECT_TRUE(IsPermutation(result.order, 20));
}

TEST(TreeDecompositionTest, TreeBagSizeIsTwo) {
  const auto result = MinDegreeElimination(GenerateTree(63, 2), 0);
  EXPECT_LE(result.max_bag_size, 2u);
}

TEST(TreeDecompositionTest, CycleBagSizeIsThree) {
  // Cycles have treewidth 2: one elimination step sees 2 neighbors.
  const auto result = MinDegreeElimination(GenerateCycle(12), 0);
  EXPECT_EQ(result.max_bag_size, 3u);
}

TEST(TreeDecompositionTest, CliqueBagEqualsCliqueSize) {
  const auto result = MinDegreeElimination(GenerateComplete(6), 0);
  EXPECT_EQ(result.max_bag_size, 6u);
}

TEST(TreeDecompositionTest, LastEliminatedRanksHighest) {
  const auto result = MinDegreeElimination(GeneratePath(10), 0);
  EXPECT_EQ(result.order.VertexAt(0), result.elimination.back());
}

TEST(TreeDecompositionTest, DegreeCapKeepsDenseCore) {
  // Complete graph with cap 3: nothing can be eliminated; survivors
  // are appended and the order is still a valid permutation.
  const auto result = MinDegreeElimination(GenerateComplete(8), 3);
  EXPECT_TRUE(IsPermutation(result.order, 8));
  EXPECT_LE(result.max_bag_size, 4u);
}

TEST(TreeDecompositionTest, RoadNetworkOrderOnGrid) {
  const Graph g = GenerateRoadGrid(12, 12, 1.0, 0.0, 1);
  const VertexOrder order = RoadNetworkOrder(g);
  EXPECT_TRUE(IsPermutation(order, g.NumVertices()));
}

// ------------------------------------------------------ HybridOrder --

TEST(HybridOrderTest, ValidPermutation) {
  const Graph g = GenerateBarabasiAlbert(200, 3, 2);
  EXPECT_TRUE(IsPermutation(HybridOrder(g, 5), 200));
}

TEST(HybridOrderTest, CoreVerticesOutrankFringe) {
  const Graph g = GenerateStar(10);  // center degree 10, leaves 1
  const VertexOrder order = HybridOrder(g, 5);
  // Only the center exceeds delta=5; it must take rank 0.
  EXPECT_EQ(order.VertexAt(0), 0u);
  for (VertexId leaf = 1; leaf <= 10; ++leaf) {
    EXPECT_TRUE(order.RanksHigher(0, leaf));
  }
}

TEST(HybridOrderTest, DeltaZeroMakesEveryoneCore) {
  // Every vertex with degree > 0 is core: hybrid == degree order.
  const Graph g = GenerateBarabasiAlbert(80, 2, 3);
  const VertexOrder hybrid = HybridOrder(g, 0);
  const VertexOrder degree = DegreeOrder(g);
  EXPECT_EQ(hybrid.OrderToVertex(), degree.OrderToVertex());
}

TEST(HybridOrderTest, HugeDeltaMakesEveryoneFringe) {
  const Graph g = GenerateCycle(10);
  const VertexOrder hybrid = HybridOrder(g, 1000);
  EXPECT_TRUE(IsPermutation(hybrid, 10));
}

TEST(HybridOrderTest, HandlesIsolatedVertices) {
  const Graph g = MakeGraph(5, {{0, 1}});
  EXPECT_TRUE(IsPermutation(HybridOrder(g, 0), 5));
  EXPECT_TRUE(IsPermutation(HybridOrder(g, 3), 5));
}

TEST(HybridOrderTest, FillInCapKeepsDenseFringeValid) {
  // Huge delta forces every vertex into the fringe; on a dense graph
  // the elimination cap must kick in and still yield a permutation.
  const Graph g = GenerateErdosRenyi(120, 2500, 31);  // davg ~ 42
  EXPECT_TRUE(IsPermutation(HybridOrder(g, 100000), 120));
}

TEST(HybridOrderTest, CappedOrderStillBuildsExactIndex) {
  // End-to-end: the cap changes ranking quality, never correctness.
  const Graph g = GenerateWattsStrogatz(150, 5, 0.1, 33);
  EXPECT_TRUE(IsPermutation(HybridOrder(g, 1000), 150));
}

// -------------------------------------------- SignificantPathOrder --

TEST(SignificantPathOrderTest, ValidPermutation) {
  const Graph g = GenerateErdosRenyi(80, 200, 4);
  EXPECT_TRUE(IsPermutation(SignificantPathOrder(g), 80));
}

TEST(SignificantPathOrderTest, StartsAtMaxDegree) {
  const Graph g = GenerateBarabasiAlbert(60, 2, 6);
  const VertexOrder order = SignificantPathOrder(g);
  EXPECT_EQ(g.Degree(order.VertexAt(0)), g.MaxDegree());
}

TEST(SignificantPathOrderTest, HandlesDisconnectedGraphs) {
  const Graph g = MakeGraph(6, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_TRUE(IsPermutation(SignificantPathOrder(g), 6));
}

TEST(SignificantPathOrderTest, DeterministicAcrossRuns) {
  const Graph g = GenerateErdosRenyi(50, 120, 9);
  EXPECT_EQ(SignificantPathOrder(g).OrderToVertex(),
            SignificantPathOrder(g).OrderToVertex());
}

}  // namespace
}  // namespace pspc
