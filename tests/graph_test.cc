#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "src/graph/graph.h"
#include "src/graph/graph_builder.h"
#include "src/graph/graph_io.h"

namespace pspc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ------------------------------------------------------------ Graph --

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.AverageDegree(), 0.0);
  EXPECT_EQ(g.MaxDegree(), 0u);
}

TEST(GraphTest, TriangleBasics) {
  const Graph g = MakeGraph(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0);
}

TEST(GraphTest, NeighborsAreSortedAscending) {
  const Graph g = MakeGraph(5, {{4, 0}, {4, 2}, {4, 1}, {4, 3}});
  const auto nbrs = g.Neighbors(4);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(g.MaxDegree(), 4u);
}

TEST(GraphTest, IsolatedVerticesHaveNoNeighbors) {
  const Graph g = MakeGraph(4, {{0, 1}});
  EXPECT_EQ(g.Degree(2), 0u);
  EXPECT_EQ(g.Degree(3), 0u);
  EXPECT_TRUE(g.Neighbors(2).empty());
}

TEST(GraphTest, EqualityComparesStructure) {
  const Graph a = MakeGraph(3, {{0, 1}, {1, 2}});
  const Graph b = MakeGraph(3, {{1, 2}, {0, 1}});
  const Graph c = MakeGraph(3, {{0, 1}, {0, 2}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// ----------------------------------------------------- GraphBuilder --

TEST(GraphBuilderTest, DeduplicatesParallelEdges) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  b.AddEdge(0, 1);
  const Graph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
}

TEST(GraphBuilderTest, DropsSelfLoops) {
  GraphBuilder b(2);
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  const Graph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphBuilderTest, BuildIsRepeatable) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  const Graph g1 = b.Build();
  b.AddEdge(1, 2);
  const Graph g2 = b.Build();
  EXPECT_EQ(g1.NumEdges(), 1u);
  EXPECT_EQ(g2.NumEdges(), 2u);
}

TEST(GraphBuilderTest, RecordsCountPreDedup) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  EXPECT_EQ(b.NumEdgeRecords(), 2u);
}

TEST(GraphBuilderDeathTest, RejectsOutOfRangeVertex) {
  GraphBuilder b(2);
  EXPECT_DEATH(b.AddEdge(0, 2), "outside");
}

// -------------------------------------------------------- Text I/O --

TEST(GraphIoTest, ParseEdgeListBasic) {
  const auto r = ParseEdgeList("# comment\n0 1\n1 2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().NumVertices(), 3u);
  EXPECT_EQ(r.value().NumEdges(), 2u);
}

TEST(GraphIoTest, ParsePreservesNumericIds) {
  // Default loader keeps ids: gaps become isolated vertices.
  const auto r = ParseEdgeList("0 1\n1 5\n");
  ASSERT_TRUE(r.ok());
  const Graph& g = r.value();
  EXPECT_EQ(g.NumVertices(), 6u);
  EXPECT_TRUE(g.HasEdge(1, 5));
  EXPECT_EQ(g.Degree(3), 0u);
}

TEST(GraphIoTest, ParseRemapsSparseIds) {
  // SNAP files have arbitrary ids; the Remapped variant densifies in
  // first-seen order: 100 -> 0, 7 -> 1, 42 -> 2.
  const auto r = ParseEdgeListRemapped("100 7\n7 42\n");
  ASSERT_TRUE(r.ok());
  const Graph& g = r.value();
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphIoTest, RemappedRejectsGarbageToo) {
  EXPECT_FALSE(ParseEdgeListRemapped("0 1\nbad line\n").ok());
}

TEST(GraphIoTest, ParseSymmetrizesDirectedDuplicates) {
  const auto r = ParseEdgeList("0 1\n1 0\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().NumEdges(), 1u);
}

TEST(GraphIoTest, ParseToleratesPercentComments) {
  const auto r = ParseEdgeList("% konect header\n0 1\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().NumEdges(), 1u);
}

TEST(GraphIoTest, ParseRejectsGarbageLine) {
  const auto r = ParseEdgeList("0 1\nnot an edge\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
}

TEST(GraphIoTest, LoadMissingFileFails) {
  const auto r = LoadEdgeList("/nonexistent/never/graph.txt");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kIOError);
}

TEST(GraphIoTest, EdgeListRoundTrip) {
  const Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  const auto r = LoadEdgeList(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), g);
  std::remove(path.c_str());
}

// ------------------------------------------------------ Binary I/O --

TEST(GraphIoTest, BinaryRoundTrip) {
  const Graph g = MakeGraph(6, {{0, 1}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  const std::string path = TempPath("graph.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  const auto r = LoadBinary(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), g);
  std::remove(path.c_str());
}

TEST(GraphIoTest, BinaryRejectsBadMagic) {
  const std::string path = TempPath("bad_magic.bin");
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[32] = "this is not a pspc graph file";
    fwrite(junk, 1, sizeof(junk), f);
    fclose(f);
  }
  const auto r = LoadBinary(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(GraphIoTest, BinaryRejectsTruncation) {
  const Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  const std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  // Truncate the payload.
  {
    FILE* f = fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    fseek(f, 0, SEEK_END);
    const long size = ftell(f);
    ASSERT_EQ(0, ftruncate(fileno(f), size - 8));
    fclose(f);
  }
  const auto r = LoadBinary(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pspc
