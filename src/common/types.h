#ifndef PSPC_SRC_COMMON_TYPES_H_
#define PSPC_SRC_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

/// Fundamental scalar types shared by every PSPC module.
///
/// The library targets unweighted, undirected graphs with up to a few
/// hundred million edges on a single machine, so 32-bit vertex ids and
/// 16-bit hop distances are sufficient and keep the label index compact
/// (index size is one of the paper's reported metrics, Fig. 6).
namespace pspc {

/// Identifier of a vertex; dense in `[0, n)`.
using VertexId = uint32_t;

/// Rank of a vertex under a total order; rank 0 is the *highest* rank
/// (the paper writes `w <= v` for "w ranks higher than v").
using Rank = uint32_t;

/// Hop distance. Unweighted graphs at library scale have diameters far
/// below 2^16 - 1; `kInfDistance` marks "unreachable".
using Distance = uint16_t;

/// Number of shortest paths. Counts grow exponentially with distance on
/// dense graphs, so arithmetic on counts saturates at `kSaturatedCount`
/// instead of wrapping (see saturating.h).
using Count = uint64_t;

/// Number of edges; 64-bit because CSR offsets index `2m` endpoints.
using EdgeId = uint64_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr Rank kInvalidRank = std::numeric_limits<Rank>::max();
inline constexpr Distance kInfDistance =
    std::numeric_limits<Distance>::max();
inline constexpr Count kSaturatedCount = std::numeric_limits<Count>::max();

/// "Unreachable" marker for query results. Query distances are sums of
/// two label distances, which can exceed the 16-bit per-label marker,
/// so results carry a 32-bit sentinel of their own.
inline constexpr uint32_t kInfSpcDistance =
    std::numeric_limits<uint32_t>::max();

/// Result of an SPC query: the shortest distance between the two query
/// vertices and the number of distinct shortest paths between them.
/// `distance == kInfSpcDistance` (and `count == 0`) means disconnected.
struct SpcResult {
  uint32_t distance = kInfSpcDistance;
  Count count = 0;

  friend bool operator==(const SpcResult&, const SpcResult&) = default;
};

}  // namespace pspc

#endif  // PSPC_SRC_COMMON_TYPES_H_
