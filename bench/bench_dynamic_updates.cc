// Incremental repair vs full rebuild (the dynamic subsystem's reason
// to exist): streams single-edge insertions and deletions through a
// DynamicSpcIndex on mid-size synthetic graphs and reports per-update
// repair latency against the cost of rebuilding the index from
// scratch, plus an oracle spot-check that repaired answers match an
// online BFS on the live graph.
//
// Self-contained (WallTimer-based) so it builds without the
// google-benchmark dependency the figure benches use:
//
//   ./bench_dynamic_updates [num_updates] [scale_divisor] [--json f]
//   ./bench_dynamic_updates --batch [batch_size] [scale_divisor] [--json f]
//   ./bench_dynamic_updates --directed [num_updates] [scale_divisor]
//                           [--json f]
//
// `--batch` runs the batched-vs-sequential comparison: the same mixed
// update stream applied update-by-update and through coalesced
// `ApplyBatch` calls, reporting wall time, per-hub repair launches and
// the repairs-per-hub-saved ratio, with both replicas spot-checked
// against the BFS oracle. Exits non-zero on an oracle mismatch or if
// batching launches *more* hub repairs than sequential application —
// the invariant the CI smoke asserts.
//
// `--directed` runs the directed phase: a mixed insert/delete stream
// through `DynamicDspcIndex` on a random digraph, per-update repair
// latency against the directed rebuild baseline (exits non-zero
// unless repair beats rebuild or the DiBfsSpcPair oracle mismatches),
// followed by an insert-heavy batched publish-cost check — per-batch
// snapshot captures must copy the batch delta across both label-side
// overlays, not the accumulated overlay (the PR-4 bound, CI-asserted
// for the directed instantiation too).
//
// `--json <path>` additionally writes the printed metrics as a
// machine-readable BENCH_*.json summary.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_json.h"
#include "src/baseline/bfs_spc.h"
#include "src/common/percentile.h"
#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/core/builder_facade.h"
#include "src/digraph/dbfs_spc.h"
#include "src/digraph/digraph.h"
#include "src/digraph/dpspc_builder.h"
#include "src/dynamic/dynamic_dspc_index.h"
#include "src/dynamic/dynamic_spc_index.h"
#include "src/graph/generators.h"
#include "src/obs/metrics.h"
#include "src/serve/index_snapshot.h"

namespace {

// Two churn models: social graphs see links appear between arbitrary
// vertices and old links vanish (kRandomChurn); road networks see
// existing segments close and reopen (kClosures) — a random long-range
// shortcut through a grid is not an update pattern any incremental
// scheme (or road) survives, it rewrites half the index by design.
enum class Workload { kRandomChurn, kClosures };

struct BenchCase {
  std::string name;
  pspc::Graph graph;
  Workload workload;
  double insert_prob = 0.5;  // kRandomChurn: share of insertions
  // Unweighted lattices have massive shortest-path tie multiplicity, so
  // a single closure legitimately renews counts across a large pair
  // set; with the default 0.25 threshold the overlay growth triggers a
  // rebuild nearly every update. A looser threshold lets the road case
  // measure repair itself (exactness never depends on the threshold).
  double rebuild_threshold = 0.25;
};

/// Latency-vector summary (count/mean/p50/p95) as a JSON object.
pspc::benchjson::Object LatencyJson(const std::vector<double>& ms) {
  pspc::benchjson::Object object;
  double sum = 0.0;
  for (const double x : ms) sum += x;
  object.Add("updates", ms.size());
  object.Add("mean_ms", ms.empty() ? 0.0 : sum / static_cast<double>(ms.size()));
  object.Add("p50_ms", pspc::Percentile(ms, 0.5));
  object.Add("p95_ms", pspc::Percentile(ms, 0.95));
  return object;
}

void RunCase(const BenchCase& bench, size_t num_updates,
             pspc::benchjson::Array* json_cases) {
  const pspc::Graph& graph = bench.graph;
  std::printf("=== %s: %u vertices, %llu edges ===\n", bench.name.c_str(),
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  // Baseline: what every edge change used to cost. The built index is
  // then handed to the dynamic wrapper instead of being built twice.
  pspc::WallTimer build_timer;
  pspc::BuildOptions build_options;
  pspc::BuildResult built = pspc::BuildIndex(graph, build_options);
  const double rebuild_seconds = build_timer.ElapsedSeconds();
  std::printf("full rebuild: %.3fs (%zu entries)\n", rebuild_seconds,
              built.stats.total_entries);

  // The serving configuration: the staleness policy folds accumulated
  // overlay garbage into periodic rebuilds, whose cost lands inside
  // the update that triggers them (visible as p99/max spikes) and is
  // amortized into the per-update means below. Without it, stale
  // entries pile up and deletions degrade toward rebuild cost.
  pspc::DynamicOptions options;
  options.rebuild_threshold = bench.rebuild_threshold;
  pspc::DynamicSpcIndex index(graph, std::move(built.index), options);

  pspc::Rng rng(2024);
  const pspc::VertexId n = graph.NumVertices();
  std::vector<double> insert_ms, delete_ms;
  size_t oracle_checks = 0, oracle_failures = 0;

  // Live edge list so deletions actually occur (random vertex pairs
  // almost never hit an edge on sparse graphs): ~half the stream
  // deletes an existing edge, half inserts a fresh one.
  std::vector<std::pair<pspc::VertexId, pspc::VertexId>> edges;
  edges.reserve(graph.NumEdges());
  for (pspc::VertexId u = 0; u < n; ++u) {
    for (const pspc::VertexId v : graph.Neighbors(u)) {
      if (u < v) edges.push_back({u, v});
    }
  }

  // For kClosures, `closed` holds deleted original segments awaiting
  // reopening; for kRandomChurn it stays empty and inserts draw fresh
  // random pairs.
  std::vector<std::pair<pspc::VertexId, pspc::VertexId>> closed;

  while (insert_ms.size() + delete_ms.size() < num_updates) {
    const bool can_insert =
        bench.workload == Workload::kRandomChurn || !closed.empty();
    const double p_insert =
        bench.workload == Workload::kClosures ? 0.5 : bench.insert_prob;
    const bool remove =
        !edges.empty() && (!can_insert || !rng.NextBool(p_insert));
    pspc::VertexId u, v;
    size_t edge_idx = 0;
    if (remove) {
      edge_idx = rng.NextBounded(edges.size());
      u = edges[edge_idx].first;
      v = edges[edge_idx].second;
    } else if (bench.workload == Workload::kClosures) {
      edge_idx = rng.NextBounded(closed.size());
      u = closed[edge_idx].first;
      v = closed[edge_idx].second;
    } else {
      do {
        u = static_cast<pspc::VertexId>(rng.NextBounded(n));
        v = static_cast<pspc::VertexId>(rng.NextBounded(n));
      } while (u == v || index.HasEdge(u, v));
    }
    pspc::WallTimer timer;
    const pspc::Status st =
        remove ? index.DeleteEdge(u, v) : index.InsertEdge(u, v);
    const double ms = timer.ElapsedMillis();
    if (!st.ok()) continue;
    if (remove) {
      if (bench.workload == Workload::kClosures) {
        closed.push_back(edges[edge_idx]);
      }
      edges[edge_idx] = edges.back();
      edges.pop_back();
      delete_ms.push_back(ms);
    } else {
      edges.push_back({std::min(u, v), std::max(u, v)});
      if (bench.workload == Workload::kClosures) {
        closed[edge_idx] = closed.back();
        closed.pop_back();
      }
      insert_ms.push_back(ms);
    }

    // Periodic exactness spot-check against the online BFS oracle.
    if ((insert_ms.size() + delete_ms.size()) % 64 == 0) {
      const pspc::Graph current = index.MaterializeGraph();
      for (int q = 0; q < 8; ++q) {
        const auto s = static_cast<pspc::VertexId>(rng.NextBounded(n));
        const auto t = static_cast<pspc::VertexId>(rng.NextBounded(n));
        ++oracle_checks;
        if (index.Query(s, t) != pspc::BfsSpcPair(current, s, t)) {
          ++oracle_failures;
        }
      }
    }
  }

  auto report = [&](const char* label, const std::vector<double>& ms) {
    if (ms.empty()) return;
    double sum = 0.0;
    for (const double x : ms) sum += x;
    const double mean = sum / static_cast<double>(ms.size());
    std::printf(
        "%s: %zu updates, mean %.3f ms, p50 %.3f ms, p95 %.3f ms, "
        "max %.0f ms -> %.0fx faster than rebuild\n",
        label, ms.size(), mean, pspc::Percentile(ms, 0.5), pspc::Percentile(ms, 0.95),
        *std::max_element(ms.begin(), ms.end()),
        rebuild_seconds * 1e3 / mean);
  };
  report("insert", insert_ms);
  report("delete", delete_ms);

  std::vector<double> all = insert_ms;
  all.insert(all.end(), delete_ms.begin(), delete_ms.end());
  double sum = 0.0;
  for (const double x : all) sum += x;
  const double mean = sum / static_cast<double>(all.size());
  const double speedup = rebuild_seconds * 1e3 / mean;
  std::printf("overall: mean %.3f ms/update -> %.0fx vs rebuild %s\n", mean,
              speedup, speedup >= 10.0 ? "(target >=10x met)"
                                       : "(BELOW the 10x target!)");
  std::printf("oracle: %zu spot-checks, %zu mismatches%s\n",
              oracle_checks, oracle_failures,
              oracle_failures == 0 ? "" : "  <-- CORRECTNESS BUG");
  std::printf("staleness after stream: %.4f\n%s\n\n", index.StalenessRatio(),
              index.Stats().ToString().c_str());

  if (json_cases != nullptr) {
    pspc::benchjson::Object object;
    object.Add("name", bench.name);
    object.Add("vertices", static_cast<uint64_t>(graph.NumVertices()));
    object.Add("edges", static_cast<uint64_t>(graph.NumEdges()));
    object.Add("rebuild_seconds", rebuild_seconds);
    object.AddRaw("insert", LatencyJson(insert_ms).Serialize());
    object.AddRaw("delete", LatencyJson(delete_ms).Serialize());
    object.Add("overall_mean_ms", mean);
    object.Add("speedup_vs_rebuild", speedup);
    object.Add("oracle_checks", oracle_checks);
    object.Add("oracle_failures", oracle_failures);
    object.Add("staleness", index.StalenessRatio());
    object.Add("rebuilds", index.Stats().rebuilds);
    json_cases->Add(object);
  }
}

// Applies one mixed 50/50 churn stream twice — update-by-update and in
// coalesced batches — and compares hub-repair launches. Returns false
// on an oracle mismatch or when batching repairs more hubs. The
// run-count invariant is enforced by the adaptive cutover only in
// aggregate, not per hub, so it is asserted on this *fixed* seeded
// workload (deterministic in CI), not claimed universally.
bool RunBatchComparison(const std::string& name, const pspc::Graph& graph,
                        size_t num_updates, size_t batch_size,
                        pspc::benchjson::Array* json_cases) {
  std::printf("=== batched vs sequential: %s, %u vertices, %llu edges, "
              "%zu updates in batches of %zu ===\n",
              name.c_str(), graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()), num_updates,
              batch_size);
  pspc::BuildOptions build_options;
  pspc::BuildResult built = pspc::BuildIndex(graph, build_options);

  // Repair-only on both replicas: rebuilds would reset the overlay and
  // blur the hub-run accounting this comparison is about.
  pspc::DynamicOptions options;
  options.rebuild_threshold = 1e18;
  pspc::DynamicSpcIndex sequential(graph, std::move(built.index), options);
  pspc::DynamicSpcIndex batched(graph, pspc::BuildIndex(graph, build_options).index,
                                options);

  // One shared stream, valid against the evolving edge set.
  const pspc::VertexId n = graph.NumVertices();
  std::set<std::pair<pspc::VertexId, pspc::VertexId>> edges;
  for (pspc::VertexId u = 0; u < n; ++u) {
    for (const pspc::VertexId v : graph.Neighbors(u)) {
      if (u < v) edges.insert({u, v});
    }
  }
  pspc::Rng rng(7777);
  std::vector<pspc::EdgeUpdate> stream;
  stream.reserve(num_updates);
  while (stream.size() < num_updates) {
    if (!edges.empty() && rng.NextBool(0.5)) {
      auto it = edges.begin();
      std::advance(it, static_cast<long>(rng.NextBounded(edges.size())));
      stream.push_back({it->first, it->second, pspc::EdgeUpdateKind::kDelete});
      edges.erase(it);
    } else {
      pspc::VertexId u, v;
      do {
        u = static_cast<pspc::VertexId>(rng.NextBounded(n));
        v = static_cast<pspc::VertexId>(rng.NextBounded(n));
      } while (u == v || edges.contains(std::minmax(u, v)));
      stream.push_back({std::min(u, v), std::max(u, v),
                        pspc::EdgeUpdateKind::kInsert});
      edges.insert(std::minmax(u, v));
    }
  }

  pspc::WallTimer seq_timer;
  for (const pspc::EdgeUpdate& up : stream) {
    if (!sequential.Apply(up).ok()) {
      std::printf("sequential apply FAILED\n");
      return false;
    }
  }
  const double seq_seconds = seq_timer.ElapsedSeconds();

  // The batched replica also measures publish cost: one snapshot
  // capture per batch (exactly what the serving writer does), whose
  // copied-vertex count is the O(batch delta) the persistent chunked
  // overlay pays — versus the whole overlay a map-copy design paid.
  // Captures themselves are timed separately; the COW re-clones a
  // capture induces land inside the *next* batch's repair and are
  // charged to the batched side — a conservative bias against the
  // reported batched speedup (the sequential replica never captures).
  std::vector<double> publish_copied;
  double batch_seconds = 0.0, publish_seconds = 0.0;
  for (size_t pos = 0; pos < stream.size(); pos += batch_size) {
    pspc::EdgeUpdateBatch chunk;
    const size_t end = std::min(pos + batch_size, stream.size());
    for (size_t i = pos; i < end; ++i) chunk.Add(stream[i]);
    pspc::WallTimer repair_timer;
    if (!batched.ApplyBatch(chunk).ok()) {
      std::printf("batched apply FAILED\n");
      return false;
    }
    batch_seconds += repair_timer.ElapsedSeconds();
    pspc::WallTimer publish_timer;
    publish_copied.push_back(static_cast<double>(
        pspc::IndexSnapshot::Capture(batched)->CopiedVertices()));
    publish_seconds += publish_timer.ElapsedSeconds();
  }

  // Both replicas must agree with a BFS on the final graph.
  const pspc::Graph final_graph = batched.MaterializeGraph();
  size_t mismatches = 0;
  for (int q = 0; q < 64; ++q) {
    const auto s = static_cast<pspc::VertexId>(rng.NextBounded(n));
    const auto t = static_cast<pspc::VertexId>(rng.NextBounded(n));
    const pspc::SpcResult oracle = pspc::BfsSpcPair(final_graph, s, t);
    if (batched.Query(s, t) != oracle || sequential.Query(s, t) != oracle) {
      ++mismatches;
    }
  }

  const size_t seq_runs = sequential.Stats().TotalHubRuns();
  const size_t batch_runs = batched.Stats().TotalHubRuns();
  std::printf("sequential: %.3fs, %zu hub runs (%zu resumed BFS, %zu full "
              "re-runs, %zu subtractions)\n",
              seq_seconds, seq_runs, sequential.Stats().resumed_bfs_runs,
              sequential.Stats().affected_hubs,
              sequential.Stats().subtract_repairs);
  std::printf("batched:    %.3fs, %zu hub runs (%zu resumed BFS, %zu full "
              "re-runs, %zu subtractions; %zu coalesced updates, "
              "%zu waves, %zu deferred)\n",
              batch_seconds, batch_runs, batched.Stats().resumed_bfs_runs,
              batched.Stats().affected_hubs, batched.Stats().subtract_repairs,
              batched.Stats().updates_coalesced,
              batched.Stats().parallel_waves,
              batched.Stats().deferred_hub_runs);
  const double saved =
      seq_runs == 0 ? 0.0
                    : (static_cast<double>(seq_runs) -
                       static_cast<double>(batch_runs)) /
                          static_cast<double>(seq_runs);
  std::printf("repairs per hub saved: %zu of %zu (%.1f%%), speedup %.2fx\n",
              seq_runs - std::min(batch_runs, seq_runs), seq_runs,
              100.0 * saved, batch_seconds == 0.0
                                 ? 0.0
                                 : seq_seconds / batch_seconds);
  std::printf("publish cost: p50 %.0f / p95 %.0f copied vertices per "
              "publish (%.3fs total capture time), %zu overlaid at "
              "stream end — the map-copy baseline would re-copy all of "
              "them every publish\n",
              pspc::Percentile(publish_copied, 0.5),
              pspc::Percentile(publish_copied, 0.95), publish_seconds,
              batched.Overlay().OverlaidVertices());
  std::printf("oracle: %zu/64 spot-checks mismatched%s\n\n", mismatches,
              mismatches == 0 ? "" : "  <-- CORRECTNESS BUG");

  if (json_cases != nullptr) {
    pspc::benchjson::Object object;
    object.Add("name", name);
    object.Add("vertices", static_cast<uint64_t>(graph.NumVertices()));
    object.Add("edges", static_cast<uint64_t>(graph.NumEdges()));
    object.Add("num_updates", num_updates);
    object.Add("batch_size", batch_size);
    object.Add("sequential_seconds", seq_seconds);
    object.Add("batched_seconds", batch_seconds);
    object.Add("sequential_hub_runs", seq_runs);
    object.Add("batched_hub_runs", batch_runs);
    object.Add("hub_runs_saved_fraction", saved);
    object.Add("publish_copied_p50", pspc::Percentile(publish_copied, 0.5));
    object.Add("publish_copied_p95", pspc::Percentile(publish_copied, 0.95));
    object.Add("publish_capture_seconds", publish_seconds);
    object.Add("final_overlaid_vertices",
               batched.Overlay().OverlaidVertices());
    object.Add("oracle_mismatches", mismatches);
    json_cases->Add(object);
  }
  return mismatches == 0 && batch_runs <= seq_runs;
}

// Directed phase: mixed 50/50 churn through `DynamicDspcIndex` on a
// random digraph, repair latency vs the directed rebuild baseline,
// then an insert-heavy batched publish-cost check on a fresh
// repair-only replica (each per-batch snapshot capture must copy the
// batch delta across both label-side overlays, never the accumulated
// overlay). Returns false on an oracle mismatch, when repair fails to
// beat rebuild, or when the publish bound breaks.
bool RunDirectedCase(size_t num_updates, uint32_t divisor,
                     pspc::benchjson::Array* json_cases) {
  const pspc::VertexId n =
      std::max<pspc::VertexId>(64, 8000 / std::max<uint32_t>(1, divisor));
  const auto target_edges = static_cast<pspc::EdgeId>(n) * 6;
  const pspc::DiGraph graph = pspc::GenerateRandomDiGraph(n, target_edges, 7);
  std::printf("=== directed/random_digraph: %u vertices, %llu directed "
              "edges ===\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  pspc::WallTimer build_timer;
  pspc::DiPspcBuildResult built = pspc::BuildDirectedPspcIndex(
      graph, pspc::DirectedDegreeOrder(graph), pspc::DiPspcOptions{});
  const double rebuild_seconds = build_timer.ElapsedSeconds();
  std::printf("full rebuild: %.3fs (%zu entries)\n", rebuild_seconds,
              built.index.TotalEntries());

  pspc::DynamicDspcIndex index(graph, std::move(built.index),
                               pspc::DynamicDiOptions{});

  // Live directed edge list so deletions actually occur.
  std::vector<std::pair<pspc::VertexId, pspc::VertexId>> edges;
  edges.reserve(graph.NumEdges());
  for (pspc::VertexId u = 0; u < n; ++u) {
    for (const pspc::VertexId v : graph.OutNeighbors(u)) {
      edges.push_back({u, v});
    }
  }

  pspc::Rng rng(2024);
  std::vector<double> insert_ms, delete_ms;
  size_t oracle_checks = 0, oracle_failures = 0;
  while (insert_ms.size() + delete_ms.size() < num_updates) {
    const bool remove = !edges.empty() && rng.NextBool(0.5);
    pspc::VertexId u, v;
    size_t edge_idx = 0;
    if (remove) {
      edge_idx = rng.NextBounded(edges.size());
      u = edges[edge_idx].first;
      v = edges[edge_idx].second;
    } else {
      do {
        u = static_cast<pspc::VertexId>(rng.NextBounded(n));
        v = static_cast<pspc::VertexId>(rng.NextBounded(n));
      } while (u == v || index.HasEdge(u, v));
    }
    pspc::WallTimer timer;
    const pspc::Status st =
        remove ? index.DeleteEdge(u, v) : index.InsertEdge(u, v);
    const double ms = timer.ElapsedMillis();
    if (!st.ok()) continue;
    if (remove) {
      edges[edge_idx] = edges.back();
      edges.pop_back();
      delete_ms.push_back(ms);
    } else {
      edges.push_back({u, v});
      insert_ms.push_back(ms);
    }

    if ((insert_ms.size() + delete_ms.size()) % 64 == 0) {
      const pspc::DiGraph current = index.MaterializeGraph();
      for (int q = 0; q < 8; ++q) {
        const auto s = static_cast<pspc::VertexId>(rng.NextBounded(n));
        const auto t = static_cast<pspc::VertexId>(rng.NextBounded(n));
        ++oracle_checks;
        if (index.Query(s, t) != pspc::DiBfsSpcPair(current, s, t)) {
          ++oracle_failures;
        }
      }
    }
  }

  auto report = [&](const char* label, const std::vector<double>& ms) {
    if (ms.empty()) return;
    double sum = 0.0;
    for (const double x : ms) sum += x;
    const double mean = sum / static_cast<double>(ms.size());
    std::printf("%s: %zu updates, mean %.3f ms, p50 %.3f ms, p95 %.3f ms "
                "-> %.0fx faster than rebuild\n",
                label, ms.size(), mean, pspc::Percentile(ms, 0.5),
                pspc::Percentile(ms, 0.95), rebuild_seconds * 1e3 / mean);
  };
  report("insert", insert_ms);
  report("delete", delete_ms);

  std::vector<double> all = insert_ms;
  all.insert(all.end(), delete_ms.begin(), delete_ms.end());
  double sum = 0.0;
  for (const double x : all) sum += x;
  const double mean = sum / static_cast<double>(all.size());
  const double speedup = rebuild_seconds * 1e3 / mean;
  std::printf("overall: mean %.3f ms/update -> %.1fx vs rebuild %s\n", mean,
              speedup, speedup > 1.0 ? "(repair beats rebuild)"
                                     : "(REBUILD IS FASTER!)");
  std::printf("oracle: %zu spot-checks, %zu mismatches%s\n",
              oracle_checks, oracle_failures,
              oracle_failures == 0 ? "" : "  <-- CORRECTNESS BUG");
  std::printf("staleness after stream: %.4f\n%s\n", index.StalenessRatio(),
              index.Stats().ToString().c_str());

  // Publish-cost sub-phase: insert-heavy batches on a fresh repair-only
  // replica, one snapshot capture per batch through the real directed
  // capture path (both overlay sides freeze).
  constexpr size_t kPublishBatches = 32;
  constexpr size_t kPerBatch = 8;
  pspc::DynamicDiOptions repair_only;
  repair_only.rebuild_threshold = 1e18;
  pspc::DynamicDspcIndex publisher(
      graph,
      pspc::BuildDirectedPspcIndex(graph, pspc::DirectedDegreeOrder(graph),
                                   pspc::DiPspcOptions{})
          .index,
      repair_only);
  (void)pspc::IndexSnapshot::Capture(publisher);  // capture boundary 0
  pspc::Rng publish_rng(0xdeed);
  std::vector<double> copied;
  for (size_t b = 0; b < kPublishBatches; ++b) {
    pspc::EdgeUpdateBatch batch;
    std::set<std::pair<pspc::VertexId, pspc::VertexId>> in_batch;
    while (batch.Size() < kPerBatch) {
      const auto u = static_cast<pspc::VertexId>(publish_rng.NextBounded(n));
      const auto v = static_cast<pspc::VertexId>(publish_rng.NextBounded(n));
      if (u == v || publisher.HasEdge(u, v) ||
          !in_batch.insert({u, v}).second) {
        continue;
      }
      batch.Insert(u, v);
    }
    if (!publisher.ApplyBatch(batch).ok()) {
      std::printf("directed publish phase: ApplyBatch FAILED\n");
      return false;
    }
    copied.push_back(static_cast<double>(
        pspc::IndexSnapshot::Capture(publisher)->CopiedVertices()));
  }
  const size_t final_overlaid = publisher.OutOverlay().OverlaidVertices() +
                                publisher.InOverlay().OverlaidVertices();
  const double p50_copied = pspc::Percentile(copied, 0.5);
  std::printf("directed publish cost (%zu batches x %zu inserts): p50 %.0f "
              "/ p95 %.0f copied chunks per publish, %zu overlaid at end\n",
              kPublishBatches, kPerBatch, p50_copied,
              pspc::Percentile(copied, 0.95), final_overlaid);
  const bool publish_ok =
      final_overlaid < 64 ||
      2.0 * p50_copied <= static_cast<double>(final_overlaid);
  if (!publish_ok) {
    std::printf("  p50 publish copied %.0f of %zu overlaid chunks (NOT "
                "O(batch delta)!)\n",
                p50_copied, final_overlaid);
  } else {
    std::printf("  p50 publish copies the batch delta (bound met)\n");
  }
  std::printf("\n");

  if (json_cases != nullptr) {
    pspc::benchjson::Object object;
    object.Add("name", "directed/random_digraph");
    object.Add("vertices", static_cast<uint64_t>(graph.NumVertices()));
    object.Add("edges", static_cast<uint64_t>(graph.NumEdges()));
    object.Add("rebuild_seconds", rebuild_seconds);
    object.AddRaw("insert", LatencyJson(insert_ms).Serialize());
    object.AddRaw("delete", LatencyJson(delete_ms).Serialize());
    object.Add("overall_mean_ms", mean);
    object.Add("speedup_vs_rebuild", speedup);
    object.Add("oracle_checks", oracle_checks);
    object.Add("oracle_failures", oracle_failures);
    object.Add("staleness", index.StalenessRatio());
    object.Add("rebuilds", index.Stats().rebuilds);
    object.Add("publish_copied_p50", p50_copied);
    object.Add("publish_copied_p95", pspc::Percentile(copied, 0.95));
    object.Add("final_overlaid_vertices", final_overlaid);
    object.Add("publish_bound_met", publish_ok);
    json_cases->Add(object);
  }
  return oracle_failures == 0 && speedup > 1.0 && publish_ok;
}

}  // namespace

int main(int argc, char** argv) {
  // Flags may appear anywhere; the remaining arguments keep their
  // positional meanings.
  std::vector<std::string> positional;
  std::string json_path;
  bool batch_mode = false, directed_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json expects an output path\n");
        return 2;
      }
      json_path = argv[++i];
    } else if (arg == "--batch") {
      batch_mode = true;
    } else if (arg == "--directed") {
      directed_mode = true;
    } else {
      positional.push_back(arg);
    }
  }

  pspc::benchjson::Object root;
  pspc::benchjson::Array json_cases;
  bool ok = true;
  if (batch_mode) {
    size_t batch_size = 64;
    uint32_t divisor = 1;
    if (positional.size() > 0) {
      const long long value = std::atoll(positional[0].c_str());
      batch_size = value < 1 ? 1 : static_cast<size_t>(value);
    }
    if (positional.size() > 1) {
      divisor = static_cast<uint32_t>(std::atoi(positional[1].c_str()));
    }
    const size_t num_updates = std::max<size_t>(batch_size * 3, 192);
    const pspc::VertexId social_n = 20000 / std::max<uint32_t>(1, divisor);
    ok = RunBatchComparison(
        "social/barabasi_albert",
        pspc::GenerateBarabasiAlbert(social_n, 4, 1), num_updates,
        batch_size, &json_cases);
    const pspc::VertexId grid_side =
        std::max<pspc::VertexId>(8, 48 / std::max<uint32_t>(1, divisor));
    ok = RunBatchComparison(
             "road/grid", pspc::GenerateRoadGrid(grid_side, grid_side, 0.92,
                                                 0.05, 2),
             num_updates, batch_size, &json_cases) &&
         ok;
    std::printf("%s\n", ok ? "batched repair: OK (no more hub runs than "
                             "sequential, oracle exact)"
                           : "batched repair: FAILED");
    root.Add("bench", "dynamic_updates_batch");
  } else if (directed_mode) {
    size_t num_updates = 192;
    uint32_t divisor = 1;
    if (positional.size() > 0) {
      num_updates = static_cast<size_t>(std::atoll(positional[0].c_str()));
    }
    if (positional.size() > 1) {
      divisor = static_cast<uint32_t>(std::atoi(positional[1].c_str()));
    }
    ok = RunDirectedCase(num_updates, divisor, &json_cases);
    std::printf("%s\n", ok ? "directed repair: OK (beats rebuild, oracle "
                             "exact, O(delta) publish)"
                           : "directed repair: FAILED");
    root.Add("bench", "dynamic_updates_directed");
  } else {
    size_t num_updates = 192;
    uint32_t divisor = 1;
    if (positional.size() > 0) {
      num_updates = static_cast<size_t>(std::atoll(positional[0].c_str()));
    }
    if (positional.size() > 1) {
      divisor = static_cast<uint32_t>(std::atoi(positional[1].c_str()));
    }
    if (divisor == 0) divisor = 1;

    // The road grid is deliberately smaller: its near-uniform structure
    // gives every vertex ~n/8 label entries, so per-hub re-runs (and the
    // rebuild baseline) are far heavier per vertex than on the
    // heavy-tailed social graph.
    const pspc::VertexId social_n = 20000 / divisor;
    const pspc::VertexId grid_side = std::max<pspc::VertexId>(8, 64 / divisor);
    std::vector<BenchCase> cases;
    const pspc::Graph social = pspc::GenerateBarabasiAlbert(social_n, 4, 1);
    // Growth-dominant churn (new links far outnumber unfriends) is the
    // realistic social workload; the 50/50 variant is the stress case.
    cases.push_back({"social/barabasi_albert+growth_80_20", social,
                     Workload::kRandomChurn, 0.8, 0.25});
    cases.push_back({"social/barabasi_albert+random_churn_50_50", social,
                     Workload::kRandomChurn, 0.5, 0.25});
    cases.push_back({"road/grid+closures",
                     pspc::GenerateRoadGrid(grid_side, grid_side, 0.92, 0.05,
                                            2),
                     Workload::kClosures, 0.5, 2.0});
    for (const BenchCase& bench : cases) {
      RunCase(bench, num_updates, &json_cases);
    }
    root.Add("bench", "dynamic_updates");
  }

  if (!json_path.empty()) {
    root.AddRaw("cases", json_cases.Serialize());
    root.Add("ok", ok);
    // Observability snapshot of the run (the indexes above fed the
    // process-global registry): plan/repair latency histograms and the
    // dynamic.* totals, in the same schema the serve CLI exports.
    root.AddRaw("metrics", pspc::obs::MetricsRegistry::Global().ToJson());
    if (!pspc::benchjson::WriteFile(json_path, root)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}
