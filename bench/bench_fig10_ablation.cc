// Reproduces Fig. 10 (Exp 5): ablation of the three acceleration
// techniques under full parallelism.
//   (a) landmark labeling (LL) vs none (NLL)      — LL slightly faster;
//   (b) static vs dynamic (cost-aware) schedule   — dynamic faster;
//   (c) degree vs significant-path vs hybrid order — hybrid fastest.
// (c) includes the ordering time itself, which is what sinks the
// significant-path scheme in a parallel setting (its ordering pass is
// inherently sequential).

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_common.h"
#include "src/common/timer.h"

namespace {

void BuildVariant(benchmark::State& state, const std::string& code,
                  const pspc::BuildOptions& options) {
  const pspc::Graph& g = pspc::bench::GetGraph(code);
  // Untimed warmup to page-fault the allocator arena. Uses the cheap
  // degree order: the warmup only needs to touch memory, and rerunning
  // the significant-path ordering would double that variant's cost.
  pspc::BuildOptions warmup = options;
  warmup.ordering = pspc::OrderingScheme::kDegree;
  pspc::BuildIndex(g, warmup);
  for (auto _ : state) {
    pspc::WallTimer timer;
    const pspc::BuildResult result = pspc::BuildIndex(g, options);
    state.SetIterationTime(timer.ElapsedSeconds());
    state.counters["order_s"] = result.stats.ordering_seconds;
    state.counters["construct_s"] = result.stats.construction_seconds;
    state.counters["entries"] = static_cast<double>(result.stats.total_entries);
  }
}

void Register(const std::string& name, const std::string& code,
              const pspc::BuildOptions& options) {
  benchmark::RegisterBenchmark(
      name.c_str(), [code, options](benchmark::State& s) {
        BuildVariant(s, code, options);
      })
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kSecond);
}

int RegisterAll() {
  for (const auto& spec : pspc::AllDatasets()) {
    if (!spec.in_sweep_set) continue;
    const std::string& code = spec.code;

    // (a) Landmark labeling on/off.
    pspc::BuildOptions ll = pspc::bench::PspcOptionsAllThreads();
    pspc::BuildOptions nll = ll;
    nll.use_landmark_filter = false;
    Register("fig10a/landmark/" + code + "/LL", code, ll);
    Register("fig10a/landmark/" + code + "/NLL", code, nll);

    // (b) Schedule plan.
    pspc::BuildOptions sched = pspc::bench::PspcOptionsAllThreads();
    sched.schedule = pspc::ScheduleKind::kStatic;
    Register("fig10b/schedule/" + code + "/static", code, sched);
    sched.schedule = pspc::ScheduleKind::kDynamic;
    Register("fig10b/schedule/" + code + "/dynamic", code, sched);
    sched.schedule = pspc::ScheduleKind::kCostAware;
    Register("fig10b/schedule/" + code + "/cost_aware", code, sched);

    // (c) Node order (ordering time included, as in the paper).
    pspc::BuildOptions order = pspc::bench::PspcOptionsAllThreads();
    order.ordering = pspc::OrderingScheme::kDegree;
    Register("fig10c/order/" + code + "/degree", code, order);
    order.ordering = pspc::OrderingScheme::kSignificantPath;
    Register("fig10c/order/" + code + "/sig_path", code, order);
    order.ordering = pspc::OrderingScheme::kHybrid;
    Register("fig10c/order/" + code + "/hybrid", code, order);
  }
  return 0;
}

static const int kRegistered = RegisterAll();

}  // namespace
