#ifndef PSPC_SRC_DIGRAPH_DBFS_SPC_H_
#define PSPC_SRC_DIGRAPH_DBFS_SPC_H_

#include "src/common/types.h"
#include "src/digraph/digraph.h"

/// Index-free directed SPC oracle (forward BFS over out-edges with
/// level-wise count accumulation) — ground truth for the directed
/// builder's tests.
namespace pspc {

SpcResult DiBfsSpcPair(const DiGraph& graph, VertexId s, VertexId t);

}  // namespace pspc

#endif  // PSPC_SRC_DIGRAPH_DBFS_SPC_H_
