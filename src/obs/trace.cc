#include "src/obs/trace.h"

#include <chrono>

#include "src/common/json_writer.h"

namespace pspc {
namespace obs {

int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string QueryTrace::ToJson() const {
  benchjson::Object object;
  object.Add("trace_id", trace_id);
  object.Add("s", static_cast<uint64_t>(s));
  object.Add("t", static_cast<uint64_t>(t));
  object.Add("generation", generation);
  object.Add("cache_hit", cache_hit);
  object.Add("queue_wait_us", QueueWaitMicros());
  object.Add("merge_us", MergeMicros());
  object.Add("total_us", TotalMicros());
  return object.Serialize();
}

bool TraceCollector::Record(const QueryTrace& trace) {
  // relaxed: tallies are diagnostics; the log itself is mutex-guarded.
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (trace.TotalMicros() <= slow_threshold_us_) return false;
  slow_.fetch_add(1, std::memory_order_relaxed);  // relaxed: ditto
  spc::MutexLock lock(mu_);
  if (slow_log_.size() == capacity_) slow_log_.pop_front();
  slow_log_.push_back(trace);
  return true;
}

std::vector<QueryTrace> TraceCollector::SlowTraceLog() const {
  spc::MutexLock lock(mu_);
  return {slow_log_.begin(), slow_log_.end()};
}

std::string TraceCollector::SlowTracesToJson() const {
  benchjson::Array array;
  for (const QueryTrace& trace : SlowTraceLog()) {
    array.AddRaw(trace.ToJson());
  }
  return array.Serialize();
}

std::string UpdateTrace::ToJson() const {
  benchjson::Object object;
  object.Add("batch_id", batch_id);
  object.Add("submitted", submitted);
  object.Add("applied", applied);
  object.Add("generation", generation);
  object.Add("ok", ok);
  object.Add("plan_us", plan_us);
  object.Add("repair_us", repair_us);
  object.Add("publish_us", publish_us);
  object.Add("reclaim_us", reclaim_us);
  object.Add("total_us", total_us);
  return object.Serialize();
}

void UpdateTraceLog::Record(const UpdateTrace& trace) {
  // relaxed: tally is a diagnostic; the log itself is mutex-guarded.
  recorded_.fetch_add(1, std::memory_order_relaxed);
  spc::MutexLock lock(mu_);
  if (log_.size() == capacity_) log_.pop_front();
  log_.push_back(trace);
}

std::vector<UpdateTrace> UpdateTraceLog::Log() const {
  spc::MutexLock lock(mu_);
  return {log_.begin(), log_.end()};
}

std::string UpdateTraceLog::ToJson() const {
  benchjson::Array array;
  for (const UpdateTrace& trace : Log()) {
    array.AddRaw(trace.ToJson());
  }
  return array.Serialize();
}

}  // namespace obs
}  // namespace pspc
