#include "src/digraph/dspc_index.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/label/label_merge_simd.h"

namespace pspc {
namespace {

void Flatten(std::vector<std::vector<LabelEntry>> labels,
             std::vector<uint64_t>* offsets,
             std::vector<LabelEntry>* entries) {
  offsets->assign(labels.size() + 1, 0);
  size_t total = 0;
  for (size_t v = 0; v < labels.size(); ++v) {
    total += labels[v].size();
    (*offsets)[v + 1] = total;
  }
  entries->reserve(total);
  for (auto& vec : labels) {
    std::sort(vec.begin(), vec.end(), ByHubRank);
    entries->insert(entries->end(), vec.begin(), vec.end());
  }
}

}  // namespace

DiSpcIndex::DiSpcIndex(VertexOrder order,
                       std::vector<std::vector<LabelEntry>> out,
                       std::vector<std::vector<LabelEntry>> in)
    : order_(std::move(order)) {
  PSPC_CHECK(out.size() == order_.Size());
  PSPC_CHECK(in.size() == order_.Size());
  Flatten(std::move(out), &out_offsets_, &out_entries_);
  Flatten(std::move(in), &in_offsets_, &in_entries_);
}

SpcResult DiSpcIndex::Query(VertexId s, VertexId t) const {
  PSPC_CHECK_MSG(s < NumVertices() && t < NumVertices(),
                 "query (" << s << "," << t << ") out of range");
  if (s == t) return {0, 1};
  // Vectorized galloping merge — bit-identical to MergeLabelCounts
  // (differential suite: tests/label_merge_simd_test.cc).
  return MergeLabelCountsFast(OutLabels(s), InLabels(t));
}

}  // namespace pspc
