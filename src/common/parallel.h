#ifndef PSPC_SRC_COMMON_PARALLEL_H_
#define PSPC_SRC_COMMON_PARALLEL_H_

#include <cstddef>

#include <omp.h>

/// Thin OpenMP wrappers. Centralizing thread-count control here lets
/// benchmarks sweep the thread count (paper Figs. 8/9) without touching
/// global OpenMP state in multiple places.
namespace pspc {

/// Hardware concurrency as seen by OpenMP.
int MaxThreads();

/// Runs `body(i)` for `i` in `[0, n)` with static chunking over
/// `num_threads` threads (`<=0` means use all available).
template <typename Body>
void ParallelForStatic(size_t n, int num_threads, const Body& body) {
  if (num_threads <= 0) num_threads = MaxThreads();
#pragma omp parallel for schedule(static) num_threads(num_threads)
  for (size_t i = 0; i < n; ++i) {
    body(i);
  }
}

/// Runs `body(i)` for `i` in `[0, n)` with dynamic chunking (work is
/// handed out in chunks of `chunk` as threads become free).
template <typename Body>
void ParallelForDynamic(size_t n, int num_threads, size_t chunk,
                        const Body& body) {
  if (num_threads <= 0) num_threads = MaxThreads();
  if (chunk == 0) chunk = 1;
#pragma omp parallel for schedule(dynamic, chunk) num_threads(num_threads)
  for (size_t i = 0; i < n; ++i) {
    body(i);
  }
}

}  // namespace pspc

#endif  // PSPC_SRC_COMMON_PARALLEL_H_
