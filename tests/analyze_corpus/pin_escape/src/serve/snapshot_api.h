#pragma once
#include "src/common/mutex.h"

class SnapshotRef;

class SnapshotManager {
 public:
  SnapshotRef Acquire();
};
