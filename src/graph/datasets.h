#ifndef PSPC_SRC_GRAPH_DATASETS_H_
#define PSPC_SRC_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/graph/graph.h"

/// Benchmark dataset registry.
///
/// The paper's Table III lists 10 public graphs (FB, GW, WI, GO, DB,
/// BE, YT, PE, FL, IN). Those files are not available offline, so each
/// is mapped to a seeded synthetic generator of the same family and
/// average degree at laptop scale (DESIGN.md §4 documents the mapping
/// and why it preserves the relevant behavior). `RD` adds the road
/// network family that motivates the paper's tree-decomposition order.
namespace pspc {

struct DatasetSpec {
  /// Short code used in the paper's tables ("FB", "GW", ...).
  std::string code;
  /// Paper dataset it substitutes and the generator family used.
  std::string description;
  /// Builds the graph; `scale_divisor >= 1` shrinks the vertex count for
  /// quick runs (used by `PSPC_BENCH_SCALE_DIVISOR`).
  Graph (*build)(VertexId scale_divisor);
  /// True for the four datasets the paper uses in thread sweeps
  /// (FB, GO, GW, WI — Figs. 8-12).
  bool in_sweep_set;
};

/// All registered datasets in the paper's Table III order (+ RD last).
const std::vector<DatasetSpec>& AllDatasets();

/// Finds a dataset by code ("FB"); aborts if unknown (bench-tool use).
const DatasetSpec& DatasetByCode(const std::string& code);

/// Reads `PSPC_BENCH_SCALE_DIVISOR` from the environment (default 1).
/// Benchmarks divide dataset sizes by this, enabling fast smoke runs.
VertexId BenchScaleDivisor();

}  // namespace pspc

#endif  // PSPC_SRC_GRAPH_DATASETS_H_
