#include "src/core/landmark_filter.h"

#include <algorithm>

#include "src/common/parallel.h"
#include "src/graph/algorithms.h"

namespace pspc {

LandmarkFilter::LandmarkFilter(const Graph& graph, const VertexOrder& order,
                               uint32_t num_landmarks, int num_threads) {
  const VertexId n = graph.NumVertices();
  k_ = std::min<uint32_t>(num_landmarks, n);
  dist_.assign(static_cast<size_t>(n) * k_, kInfDistance);
  // One BFS per landmark; landmarks are the k top-ranked vertices.
  ParallelForDynamic(k_, num_threads, /*chunk=*/1, [&](size_t l) {
    const VertexId landmark = order.VertexAt(static_cast<Rank>(l));
    const std::vector<Distance> d = BfsDistances(graph, landmark);
    for (VertexId v = 0; v < n; ++v) {
      dist_[static_cast<size_t>(v) * k_ + l] = d[v];
    }
  });
}

}  // namespace pspc
