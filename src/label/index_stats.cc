#include "src/label/index_stats.h"

#include <algorithm>
#include <sstream>

#include "src/label/packed_label.h"

namespace pspc {

IndexProfile ProfileIndex(const SpcIndex& index) {
  IndexProfile profile;
  const VertexId n = index.NumVertices();
  if (n == 0) return profile;

  profile.min_label_size = index.Labels(0).size();
  size_t top1 = 0, top10 = 0, top100 = 0;
  for (VertexId v = 0; v < n; ++v) {
    const auto labels = index.Labels(v);
    profile.total_entries += labels.size();
    profile.max_label_size = std::max(profile.max_label_size, labels.size());
    profile.min_label_size = std::min(profile.min_label_size, labels.size());
    for (const LabelEntry& e : labels) {
      if (e.dist >= profile.entries_per_distance.size()) {
        profile.entries_per_distance.resize(e.dist + 1, 0);
      }
      ++profile.entries_per_distance[e.dist];
      if (e.hub_rank < 1) ++top1;
      if (e.hub_rank < 10) ++top10;
      if (e.hub_rank < 100) ++top100;
    }
  }
  profile.avg_label_size =
      static_cast<double>(profile.total_entries) / static_cast<double>(n);
  profile.raw_bytes = profile.total_entries * sizeof(LabelEntry);
  profile.packed_bytes = PackedLabelMap::Encode(index.LabelMap()).SizeBytes();
  if (profile.total_entries > 0) {
    profile.raw_bytes_per_entry = static_cast<double>(profile.raw_bytes) /
                                  static_cast<double>(profile.total_entries);
    profile.packed_bytes_per_entry =
        static_cast<double>(profile.packed_bytes) /
        static_cast<double>(profile.total_entries);
  }
  const auto total = static_cast<double>(profile.total_entries);
  profile.top1_hub_share = top1 / total;
  profile.top10_hub_share = top10 / total;
  profile.top100_hub_share = top100 / total;
  return profile;
}

std::string IndexProfile::ToString() const {
  std::ostringstream oss;
  oss << "entries=" << total_entries << " avg=" << avg_label_size
      << " min=" << min_label_size << " max=" << max_label_size
      << " top1=" << top1_hub_share << " top10=" << top10_hub_share
      << " top100=" << top100_hub_share << "\nraw_bytes=" << raw_bytes
      << " (" << raw_bytes_per_entry << " B/entry) packed_bytes="
      << packed_bytes << " (" << packed_bytes_per_entry
      << " B/entry)\nper-distance:";
  for (size_t d = 0; d < entries_per_distance.size(); ++d) {
    oss << " d" << d << ":" << entries_per_distance[d];
  }
  return oss.str();
}

}  // namespace pspc
