#ifndef PSPC_SRC_DIGRAPH_DSPC_INDEX_H_
#define PSPC_SRC_DIGRAPH_DSPC_INDEX_H_

#include <span>
#include <vector>

#include "src/common/types.h"
#include "src/label/label_entry.h"
#include "src/order/vertex_order.h"

/// Directed 2-hop SPC index (paper §II-A): each vertex `v` carries an
/// out-label `Lout(v)` — entries `(h, sd(v,h), #trough paths v->h)` —
/// and an in-label `Lin(v)` — entries `(h, sd(h,v), #trough paths
/// h->v)`. A trough path's hub `h` is the strictly highest-ranked
/// vertex on the (directed) path. `SPC(s, t)` merges `Lout(s)` with
/// `Lin(t)` exactly as Eq. (1)/(2): every shortest s->t path splits
/// uniquely at its apex.
namespace pspc {

class DiSpcIndex {
 public:
  DiSpcIndex() = default;

  /// Assembles from per-vertex out/in entry lists (sorted on entry or
  /// not — they are sorted by hub rank here).
  DiSpcIndex(VertexOrder order, std::vector<std::vector<LabelEntry>> out,
             std::vector<std::vector<LabelEntry>> in);

  VertexId NumVertices() const {
    return out_offsets_.empty()
               ? 0
               : static_cast<VertexId>(out_offsets_.size() - 1);
  }

  /// Distance and exact count of shortest directed paths s -> t.
  SpcResult Query(VertexId s, VertexId t) const;

  std::span<const LabelEntry> OutLabels(VertexId v) const {
    return {out_entries_.data() + out_offsets_[v],
            out_entries_.data() + out_offsets_[v + 1]};
  }
  std::span<const LabelEntry> InLabels(VertexId v) const {
    return {in_entries_.data() + in_offsets_[v],
            in_entries_.data() + in_offsets_[v + 1]};
  }

  /// Non-owning CSR views of the two label tables (what a dynamic
  /// overlay reads through); valid while the index is alive.
  BaseLabelMap OutLabelMap() const {
    return {out_offsets_.data(), out_entries_.data(), NumVertices()};
  }
  BaseLabelMap InLabelMap() const {
    return {in_offsets_.data(), in_entries_.data(), NumVertices()};
  }

  const VertexOrder& Order() const { return order_; }
  size_t TotalEntries() const {
    return out_entries_.size() + in_entries_.size();
  }
  size_t SizeBytes() const {
    return TotalEntries() * sizeof(LabelEntry) +
           (out_offsets_.size() + in_offsets_.size()) * sizeof(uint64_t);
  }

  friend bool operator==(const DiSpcIndex&, const DiSpcIndex&) = default;

 private:
  VertexOrder order_;
  std::vector<uint64_t> out_offsets_, in_offsets_;
  std::vector<LabelEntry> out_entries_, in_entries_;
};

}  // namespace pspc

#endif  // PSPC_SRC_DIGRAPH_DSPC_INDEX_H_
