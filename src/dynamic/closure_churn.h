#ifndef PSPC_SRC_DYNAMIC_CLOSURE_CHURN_H_
#define PSPC_SRC_DYNAMIC_CLOSURE_CHURN_H_

#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/digraph/digraph.h"
#include "src/dynamic/edge_update.h"
#include "src/graph/graph.h"

/// Closure-churn update generator shared by the serving bench and
/// `spc_cli serve`: deletes live edges and reinserts previously
/// deleted ones, so a long run orbits the graph's starting shape
/// instead of densifying or disintegrating — the road-network closure
/// model of bench_dynamic_updates, packaged for mixed workloads.
/// Constructed from an undirected graph the pools hold `{u, v}` pairs;
/// from a directed graph each pool entry is one oriented edge.
namespace pspc {

class ClosureChurn {
 public:
  explicit ClosureChurn(const Graph& graph) {
    for (VertexId u = 0; u < graph.NumVertices(); ++u) {
      for (const VertexId v : graph.Neighbors(u)) {
        if (u < v) live_.push_back({u, v});
      }
    }
  }

  explicit ClosureChurn(const DiGraph& graph) {
    for (VertexId u = 0; u < graph.NumVertices(); ++u) {
      for (const VertexId v : graph.OutNeighbors(u)) live_.push_back({u, v});
    }
  }

  /// True when there is nothing to churn (edgeless graph) — Next would
  /// have no update to draw.
  bool Empty() const { return live_.empty() && closed_.empty(); }

  /// Draws the next update (50/50 reopen-vs-close when both pools are
  /// non-empty) and moves the edge between pools assuming the caller
  /// applies it successfully — which always holds when this generator
  /// is the sole writer. Requires `!Empty()`.
  EdgeUpdate Next(Rng& rng) {
    if (!closed_.empty() && (live_.empty() || rng.NextBool(0.5))) {
      const size_t i = rng.NextBounded(closed_.size());
      const auto edge = closed_[i];
      closed_[i] = closed_.back();
      closed_.pop_back();
      live_.push_back(edge);
      return {edge.first, edge.second, EdgeUpdateKind::kInsert};
    }
    const size_t i = rng.NextBounded(live_.size());
    const auto edge = live_[i];
    live_[i] = live_.back();
    live_.pop_back();
    closed_.push_back(edge);
    return {edge.first, edge.second, EdgeUpdateKind::kDelete};
  }

 private:
  std::vector<std::pair<VertexId, VertexId>> live_, closed_;
};

}  // namespace pspc

#endif  // PSPC_SRC_DYNAMIC_CLOSURE_CHURN_H_
