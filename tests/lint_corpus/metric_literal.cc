// Corpus: metric-literal — uncataloged serve./dynamic. names fire,
// cataloged ones do not.
const char* CatalogedName() { return "serve.queries_total"; }
const char* UncatalogedServe() { return "serve.bogus_total"; }
const char* UncatalogedDynamic() { return "dynamic.bogus_gauge"; }
