#include "src/obs/health.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "src/common/json_writer.h"
#include "src/obs/metric_names.h"

namespace pspc {
namespace obs {

namespace {

std::string Percent(double fill) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", fill * 100.0);
  return buf;
}

}  // namespace

std::string_view HealthStatusName(HealthStatus status) {
  switch (status) {
    case HealthStatus::kOk: return "OK";
    case HealthStatus::kDegraded: return "DEGRADED";
    case HealthStatus::kUnhealthy: return "UNHEALTHY";
  }
  return "UNKNOWN";
}

std::string_view HealthRuleName(HealthRuleId id) {
  switch (id) {
    case HealthRuleId::kNone: return "none";
    case HealthRuleId::kQueueSaturation: return "queue_saturation";
    case HealthRuleId::kReclaimBacklog: return "reclaim_backlog";
    case HealthRuleId::kEpochOverflow: return "epoch_overflow";
    case HealthRuleId::kPublishStall: return "publish_stall";
    case HealthRuleId::kRebuildInProgress: return "rebuild_in_progress";
  }
  return "unknown";
}

std::string HealthReport::ToJson() const {
  benchjson::Object object;
  object.Add("status", std::string(HealthStatusName(status)));
  object.Add("rule", std::string(HealthRuleName(worst_rule)));
  object.Add("reason", reason);
  object.Add("tick", tick);
  benchjson::Array rule_array;
  for (const HealthRuleState& rule : rules) {
    benchjson::Object entry;
    entry.Add("rule", std::string(HealthRuleName(rule.id)));
    entry.Add("status", std::string(HealthStatusName(rule.status)));
    entry.Add("reason", rule.reason);
    entry.Add("firing_ticks", rule.firing_ticks);
    rule_array.Add(entry);
  }
  object.AddRaw("rules", rule_array.Serialize());
  return object.Serialize();
}

HealthWatchdog::HealthWatchdog(const HealthOptions& options)
    : options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &MetricsRegistry::Global()),
      recorder_(options.recorder != nullptr ? options.recorder
                                            : &FlightRecorder::Global()),
      status_gauge_(metrics_->GetGauge(kObsHealthStatus)),
      transitions_counter_(metrics_->GetCounter(kObsHealthTransitionsTotal)) {
  // Locked for the thread-safety analysis, not for contention: the
  // object is not yet shared, but pre-Clang-15 analysis has no
  // constructor exemption for guarded members.
  spc::MutexLock lock(mu_);
  current_.reason = "ok";
}

HealthWatchdog::~HealthWatchdog() { Stop(); }

void HealthWatchdog::Start() {
  if (options_.interval_ms == 0 || thread_.joinable()) return;
  {
    spc::MutexLock lock(thread_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { RunLoop(); });
}

void HealthWatchdog::Stop() {
  {
    spc::MutexLock lock(thread_mu_);
    stop_requested_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

void HealthWatchdog::RunLoop() {
  for (;;) {
    {
      spc::MutexLock lock(thread_mu_);
      if (stop_requested_) return;
      cv_.WaitFor(thread_mu_,
                  std::chrono::milliseconds(options_.interval_ms));
      if (stop_requested_) return;
    }
    // Evaluate outside thread_mu_: it takes mu_ and reads the registry,
    // and Stop() must never wait behind a tick.
    Evaluate();
  }
}

HealthReport HealthWatchdog::Evaluate() {
  // Read the registry outside mu_ — GetCounter/GetGauge take the
  // registry's own mutex and the values are racy-by-design snapshots.
  const int64_t queue_depth = metrics_->GetGauge(kServeQueueDepth)->Value();
  const int64_t queue_capacity =
      metrics_->GetGauge(kServeQueueCapacity)->Value();
  const int64_t retired =
      metrics_->GetGauge(kServeSnapshotsRetiredPending)->Value();
  const uint64_t overflow_total =
      metrics_->GetCounter(kServeEpochOverflowPinsTotal)->Value();
  const uint64_t applied_total =
      metrics_->GetCounter(kServeUpdatesAppliedTotal)->Value();
  const uint64_t published_total =
      metrics_->GetCounter(kServeGenerationsPublishedTotal)->Value();
  const int64_t rebuild_in_progress =
      metrics_->GetGauge(kDynamicRebuildInProgress)->Value();

  HealthReport report;
  bool went_unhealthy = false;
  spc::MutexLock lock(mu_);
  ++tick_;
  const HealthStatus prev_status = current_.status;
  report.tick = tick_;

  // -- queue_saturation ----------------------------------------------
  {
    HealthRuleState rule;
    rule.id = HealthRuleId::kQueueSaturation;
    const double fill =
        queue_capacity > 0
            ? static_cast<double>(queue_depth) /
                  static_cast<double>(queue_capacity)
            : 0.0;
    if (fill >= options_.queue_degraded_fill) {
      ++queue_ticks_;
      const bool hard = fill >= options_.queue_unhealthy_fill &&
                        queue_ticks_ >= options_.queue_unhealthy_ticks;
      rule.status = hard ? HealthStatus::kUnhealthy : HealthStatus::kDegraded;
      rule.reason = "request queue at " + std::to_string(queue_depth) + "/" +
                    std::to_string(queue_capacity) + " (" + Percent(fill) +
                    " full, " + std::to_string(queue_ticks_) + " ticks)";
    } else {
      queue_ticks_ = 0;
    }
    rule.firing_ticks = queue_ticks_;
    report.rules.push_back(std::move(rule));
  }

  // -- reclaim_backlog -----------------------------------------------
  {
    HealthRuleState rule;
    rule.id = HealthRuleId::kReclaimBacklog;
    const bool growing = have_prev_ && retired > prev_retired_;
    if (growing &&
        retired > static_cast<int64_t>(options_.reclaim_backlog_floor)) {
      ++reclaim_ticks_;
      if (reclaim_ticks_ >= options_.reclaim_unhealthy_ticks) {
        rule.status = HealthStatus::kUnhealthy;
      } else if (reclaim_ticks_ >= options_.reclaim_degraded_ticks) {
        rule.status = HealthStatus::kDegraded;
      }
      if (rule.status != HealthStatus::kOk) {
        rule.reason = "retired snapshot backlog growing: " +
                      std::to_string(retired) + " pending after " +
                      std::to_string(reclaim_ticks_) +
                      " consecutive growth ticks (reader pin or reclaim "
                      "stall)";
      }
    } else {
      reclaim_ticks_ = 0;
    }
    rule.firing_ticks = reclaim_ticks_;
    report.rules.push_back(std::move(rule));
  }

  // -- epoch_overflow ------------------------------------------------
  {
    HealthRuleState rule;
    rule.id = HealthRuleId::kEpochOverflow;
    const bool pinning = have_prev_ && overflow_total > prev_overflow_total_;
    if (pinning) {
      ++overflow_ticks_;
      if (overflow_ticks_ >= options_.overflow_unhealthy_ticks) {
        rule.status = HealthStatus::kUnhealthy;
      } else if (overflow_ticks_ >= options_.overflow_degraded_ticks) {
        rule.status = HealthStatus::kDegraded;
      }
      if (rule.status != HealthStatus::kOk) {
        rule.reason = "epoch overflow pins still accumulating (" +
                      std::to_string(overflow_total) + " total, " +
                      std::to_string(overflow_ticks_) +
                      " consecutive ticks): reader slots oversubscribed";
      }
    } else {
      overflow_ticks_ = 0;
    }
    rule.firing_ticks = overflow_ticks_;
    report.rules.push_back(std::move(rule));
  }

  // -- publish_stall -------------------------------------------------
  {
    HealthRuleState rule;
    rule.id = HealthRuleId::kPublishStall;
    const bool stalled = have_prev_ && applied_total > prev_applied_total_ &&
                         published_total == prev_published_total_;
    if (stalled) {
      ++stall_ticks_;
      if (stall_ticks_ >= options_.publish_stall_unhealthy_ticks) {
        rule.status = HealthStatus::kUnhealthy;
      } else if (stall_ticks_ >= options_.publish_stall_degraded_ticks) {
        rule.status = HealthStatus::kDegraded;
      }
      if (rule.status != HealthStatus::kOk) {
        rule.reason =
            "updates applied but no generation published for " +
            std::to_string(stall_ticks_) + " ticks (applied=" +
            std::to_string(applied_total) + ", published=" +
            std::to_string(published_total) + ")";
      }
    } else {
      stall_ticks_ = 0;
    }
    rule.firing_ticks = stall_ticks_;
    report.rules.push_back(std::move(rule));
  }

  // -- rebuild_in_progress -------------------------------------------
  {
    HealthRuleState rule;
    rule.id = HealthRuleId::kRebuildInProgress;
    if (rebuild_in_progress != 0) {
      rule.status = HealthStatus::kDegraded;
      rule.reason = "staleness rebuild in progress";
      rule.firing_ticks = 1;
    }
    report.rules.push_back(std::move(rule));
  }

  prev_retired_ = retired;
  prev_overflow_total_ = overflow_total;
  prev_applied_total_ = applied_total;
  prev_published_total_ = published_total;
  have_prev_ = true;

  report.status = HealthStatus::kOk;
  report.reason = "ok";
  for (const HealthRuleState& rule : report.rules) {
    if (static_cast<uint32_t>(rule.status) >
        static_cast<uint32_t>(report.status)) {
      report.status = rule.status;
      report.worst_rule = rule.id;
      report.reason = std::string(HealthRuleName(rule.id)) + ": " +
                      rule.reason;
    }
  }

  current_ = report;
  status_gauge_->Set(static_cast<int64_t>(report.status));
  const bool transitioned = report.status != prev_status;
  if (transitioned) {
    // relaxed: tally mirrored into the registry counter; pollers only.
    transitions_.fetch_add(1, std::memory_order_relaxed);
    transitions_counter_->Increment();
    recorder_->Record(FlightEventKind::kHealthTransition,
                      static_cast<uint64_t>(prev_status),
                      static_cast<uint64_t>(report.status),
                      static_cast<uint64_t>(report.worst_rule));
  }
  went_unhealthy = transitioned && report.status == HealthStatus::kUnhealthy;
  if (went_unhealthy) {
    // MakeBundle re-enters mu_ through Current(), so drop it first;
    // `current_` already carries this tick's report.
    lock.Unlock();
    const std::string bundle = MakeBundle(report.reason);
    lock.Lock();
    last_bundle_ = bundle;
    if (!options_.bundle_path.empty()) {
      std::FILE* f = std::fopen(options_.bundle_path.c_str(), "w");
      if (f != nullptr) {
        std::fwrite(bundle.data(), 1, bundle.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
      } else {
        std::fprintf(stderr, "health: cannot write bundle to %s\n",
                     options_.bundle_path.c_str());
      }
    }
  }
  return report;
}

HealthReport HealthWatchdog::Current() const {
  spc::MutexLock lock(mu_);
  return current_;
}

std::string HealthWatchdog::LastBundle() const {
  spc::MutexLock lock(mu_);
  return last_bundle_;
}

std::string HealthWatchdog::MakeBundle(const std::string& reason) const {
  benchjson::Object bundle;
  bundle.Add("bundle_version", 1);
  const int64_t unix_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  bundle.Add("generated_unix_ms", unix_ms);
  bundle.Add("reason", reason);
  bundle.AddRaw("health", Current().ToJson());
  bundle.AddRaw("metrics", metrics_->ToJson());
  bundle.AddRaw("flight_recorder", recorder_->ToJson());
  bundle.AddRaw("slow_traces", options_.traces != nullptr
                                   ? options_.traces->SlowTracesToJson()
                                   : "[]");
  bundle.AddRaw("update_traces", options_.update_traces != nullptr
                                     ? options_.update_traces->ToJson()
                                     : "[]");
  return bundle.Serialize();
}

}  // namespace obs
}  // namespace pspc
