#include "src/core/build_options.h"

namespace pspc {

std::string ToString(Algorithm a) {
  switch (a) {
    case Algorithm::kHpSpc:
      return "HP-SPC";
    case Algorithm::kPspc:
      return "PSPC";
  }
  return "?";
}

std::string ToString(OrderingScheme s) {
  switch (s) {
    case OrderingScheme::kDegree:
      return "degree";
    case OrderingScheme::kSignificantPath:
      return "significant-path";
    case OrderingScheme::kRoadNetwork:
      return "road-network";
    case OrderingScheme::kHybrid:
      return "hybrid";
    case OrderingScheme::kIdentity:
      return "identity";
  }
  return "?";
}

std::string ToString(Paradigm p) {
  switch (p) {
    case Paradigm::kPull:
      return "pull";
    case Paradigm::kPush:
      return "push";
  }
  return "?";
}

std::string ToString(ScheduleKind k) {
  switch (k) {
    case ScheduleKind::kStatic:
      return "static";
    case ScheduleKind::kDynamic:
      return "dynamic";
    case ScheduleKind::kCostAware:
      return "cost-aware";
  }
  return "?";
}

}  // namespace pspc
