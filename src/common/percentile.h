#ifndef PSPC_SRC_COMMON_PERCENTILE_H_
#define PSPC_SRC_COMMON_PERCENTILE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

/// Percentile math shared by every latency report in the tree: the
/// benches' sample-vector summaries and the observability layer's
/// fixed-bucket histograms (src/obs/metrics.h) both resolve ranks
/// here, so p50/p99 always mean the same thing regardless of which
/// surface reported them.
namespace pspc {

/// Rank (index into a sorted sample of `count` values) the
/// `p`-quantile resolves to under the nearest-rank convention used
/// everywhere in this codebase: `floor(p * count)`, clamped to the
/// last element.
inline size_t PercentileRank(size_t count, double p) {
  if (count == 0) return 0;
  const auto idx = static_cast<size_t>(p * static_cast<double>(count));
  return std::min(idx, count - 1);
}

/// The `p`-quantile (`p` in [0, 1]) of an already-sorted sample by
/// nearest rank; 0 for an empty sample.
inline double PercentileSorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  return sorted[PercentileRank(sorted.size(), p)];
}

/// The `p`-quantile (`p` in [0, 1]) by nearest rank; 0 for an empty
/// sample. Takes the values by copy — callers keep their raw series.
inline double Percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return PercentileSorted(values, p);
}

/// The `p`-quantile of a fixed-boundary histogram, linearly
/// interpolated inside the bucket that holds the nearest-rank sample
/// (the same rank PercentileSorted would pick on the raw series).
///
/// `counts` has one entry per bucket plus a trailing overflow bucket:
/// `counts.size() == upper_bounds.size() + 1`. Bucket `k` covers
/// `(upper_bounds[k-1], upper_bounds[k]]` with an implicit lower bound
/// of 0 for the first bucket. `min_value` / `max_value` are the
/// extremes actually recorded; they clamp the interpolation so the
/// result never leaves the observed range (and give the unbounded
/// overflow bucket a finite upper edge). Returns 0 when empty.
inline double HistogramPercentile(std::span<const uint64_t> counts,
                                  std::span<const double> upper_bounds,
                                  double p, double min_value,
                                  double max_value) {
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const auto rank =
      static_cast<uint64_t>(PercentileRank(static_cast<size_t>(total), p));
  uint64_t seen = 0;
  for (size_t k = 0; k < counts.size(); ++k) {
    if (counts[k] == 0) continue;
    if (rank < seen + counts[k]) {
      const double lower = k == 0 ? 0.0 : upper_bounds[k - 1];
      const double upper =
          k < upper_bounds.size() ? upper_bounds[k] : max_value;
      const double fraction = (static_cast<double>(rank - seen) + 0.5) /
                              static_cast<double>(counts[k]);
      const double value = lower + (upper - lower) * fraction;
      return std::clamp(value, min_value, max_value);
    }
    seen += counts[k];
  }
  return max_value;  // unreachable for consistent inputs
}

}  // namespace pspc

#endif  // PSPC_SRC_COMMON_PERCENTILE_H_
