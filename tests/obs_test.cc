// The observability layer in isolation: sharded counter exactness
// under contention, histograms checked against a sorted-vector
// percentile oracle, deterministic trace sampling, and golden tests
// for both export formats (the JSON snapshot serializes sorted-name
// state byte-identically, so a golden string is a stable contract).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/common/percentile.h"
#include "src/common/random.h"
#include "src/obs/metric_names.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace pspc {
namespace obs {
namespace {

// ------------------------------------------------------------ counters

TEST(CounterTest, MultiThreadIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.hits_total");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50'000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  // Sharding must lose nothing: the merged value is the exact total.
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(CounterTest, DeltaIncrementsAccumulate) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.bytes_total");
  counter->Increment(10);
  counter->Increment(0);
  counter->Increment(32);
  EXPECT_EQ(counter->Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test.depth");
  gauge->Set(7);
  gauge->Add(-10);
  EXPECT_EQ(gauge->Value(), -3);
  gauge->Set(5);
  EXPECT_EQ(gauge->Value(), 5);
}

TEST(MetricsRegistryTest, LookupIsIdempotent) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("a"), registry.GetCounter("a"));
  EXPECT_EQ(registry.GetGauge("b"), registry.GetGauge("b"));
  EXPECT_EQ(registry.GetHistogram("c"), registry.GetHistogram("c"));
}

// ---------------------------------------------------------- histograms

TEST(HistogramTest, CountSumMinMaxAreExact) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.latency_us");
  hist->Record(3.0);
  hist->Record(100.0);
  hist->Record(0.25);

  const HistogramSnapshot snapshot = hist->Snapshot();
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 103.25);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.25);
  EXPECT_DOUBLE_EQ(snapshot.max, 100.0);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 103.25 / 3.0);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  MetricsRegistry registry;
  const HistogramSnapshot snapshot =
      registry.GetHistogram("test.empty")->Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.Percentile(0.5), 0.0);
}

// The contract against the raw series: a bucketed percentile cannot
// reproduce the oracle exactly, but it must land inside the bucket the
// oracle's nearest-rank sample falls in (clamped to the observed
// range) — that is the whole accuracy claim of a fixed-bucket
// histogram.
TEST(HistogramTest, PercentilesMatchSortedVectorOracleWithinBucket) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.oracle_us");
  const std::span<const double> bounds = hist->UpperBounds();

  Rng rng(20260808);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    // Spread over ~6 decades so many buckets participate.
    const double exponent =
        static_cast<double>(rng.NextBounded(6'000'000)) * 1e-6;
    values.push_back(std::pow(10.0, exponent));
  }
  for (const double v : values) hist->Record(v);
  std::sort(values.begin(), values.end());

  const HistogramSnapshot snapshot = hist->Snapshot();
  for (const double p : {0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const double oracle = PercentileSorted(values, p);
    const double estimate = snapshot.Percentile(p);
    // Bucket k covers (upper_bounds[k-1], upper_bounds[k]].
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), oracle);
    const size_t k = static_cast<size_t>(std::distance(bounds.begin(), it));
    const double lower = k == 0 ? 0.0 : bounds[k - 1];
    const double upper = k < bounds.size() ? bounds[k] : snapshot.max;
    EXPECT_GE(estimate, std::max(lower, snapshot.min)) << "p=" << p;
    EXPECT_LE(estimate, std::min(upper, snapshot.max)) << "p=" << p;
  }
}

TEST(HistogramTest, OverflowBucketClampsToObservedMax) {
  MetricsRegistry registry;
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  Histogram* hist = registry.GetHistogram("test.overflow", bounds);
  hist->Record(100.0);
  hist->Record(150.0);

  const HistogramSnapshot snapshot = hist->Snapshot();
  EXPECT_EQ(snapshot.bucket_counts.back(), 2u);
  // Both samples overflowed; every percentile stays inside [min, max].
  EXPECT_GE(snapshot.Percentile(0.5), 100.0);
  EXPECT_LE(snapshot.Percentile(0.99), 150.0);
}

TEST(HistogramTest, MultiThreadRecordLosesNothing) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("test.mt_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist->Record(static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const HistogramSnapshot snapshot = hist->Snapshot();
  EXPECT_EQ(snapshot.count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snapshot.min, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.max, static_cast<double>(kThreads));
}

TEST(ExponentialBoundariesTest, DefaultLatencyLadderIsPowerOfTwo) {
  const std::span<const double> bounds = DefaultLatencyBoundariesUs();
  ASSERT_EQ(bounds.size(), 27u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], 2.0 * bounds[i - 1]);
  }
}

// ------------------------------------------------------------- sampler

TEST(TraceSamplerTest, DeterministicAcrossInstances) {
  TraceSampler a(5, 7);
  TraceSampler b(5, 7);
  int sampled = 0;
  for (int i = 0; i < 1000; ++i) {
    const bool hit = a.Sample();
    EXPECT_EQ(hit, b.Sample()) << "tick " << i;
    sampled += hit ? 1 : 0;
  }
  EXPECT_EQ(sampled, 200);  // exactly 1 in 5
  EXPECT_EQ(a.Ticks(), 1000u);
}

TEST(TraceSamplerTest, SeedRotatesThePhase) {
  // seed % n selects which residue class is sampled: seed 7, n 5 picks
  // ticks 2, 7, 12, ...
  TraceSampler sampler(5, 7);
  std::vector<int> hits;
  for (int i = 0; i < 15; ++i) {
    if (sampler.Sample()) hits.push_back(i);
  }
  EXPECT_EQ(hits, (std::vector<int>{2, 7, 12}));
}

TEST(TraceSamplerTest, ZeroDisablesAndOneSamplesEverything) {
  TraceSampler off(0, 3);
  EXPECT_FALSE(off.Enabled());
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(off.Sample());

  TraceSampler all(1, 3);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(all.Sample());
}

// ------------------------------------------------------------ tracing

TEST(TraceCollectorTest, KeepsOnlySlowTracesBounded) {
  TraceCollector collector(/*capacity=*/2, /*slow_threshold_us=*/100.0);
  QueryTrace fast;
  fast.enqueue_ns = 0;
  fast.reply_ns = 50'000;  // 50us
  EXPECT_FALSE(collector.Record(fast));

  for (uint64_t id = 1; id <= 3; ++id) {
    QueryTrace slow;
    slow.trace_id = id;
    slow.enqueue_ns = 0;
    slow.reply_ns = 200'000 + static_cast<int64_t>(id);  // >100us
    EXPECT_TRUE(collector.Record(slow));
  }

  EXPECT_EQ(collector.TracesRecorded(), 4u);
  EXPECT_EQ(collector.SlowTraces(), 3u);
  const std::vector<QueryTrace> log = collector.SlowTraceLog();
  ASSERT_EQ(log.size(), 2u);  // capacity bound, newest win
  EXPECT_EQ(log[0].trace_id, 2u);
  EXPECT_EQ(log[1].trace_id, 3u);
}

TEST(TraceSpanTest, StampsOnDestructionAndIgnoresNull) {
  QueryTrace trace;
  {
    TraceSpan span(&trace, &QueryTrace::merge_done_ns);
    EXPECT_EQ(trace.merge_done_ns, 0);
  }
  EXPECT_GT(trace.merge_done_ns, 0);
  {
    TraceSpan noop(nullptr, &QueryTrace::merge_done_ns);  // must not crash
  }
}

TEST(QueryTraceTest, StageMathAndJson) {
  QueryTrace trace;
  trace.trace_id = 9;
  trace.s = 1;
  trace.t = 2;
  trace.generation = 4;
  trace.cache_hit = true;
  trace.enqueue_ns = 1'000;
  trace.dequeue_ns = 3'000;
  trace.merge_done_ns = 6'000;
  trace.reply_ns = 11'000;
  EXPECT_DOUBLE_EQ(trace.QueueWaitMicros(), 2.0);
  EXPECT_DOUBLE_EQ(trace.MergeMicros(), 3.0);
  EXPECT_DOUBLE_EQ(trace.TotalMicros(), 10.0);
  EXPECT_EQ(trace.ToJson(),
            "{\"trace_id\":9,\"s\":1,\"t\":2,\"generation\":4,"
            "\"cache_hit\":true,\"queue_wait_us\":2,\"merge_us\":3,"
            "\"total_us\":10}");
}

// ------------------------------------------------------------- exports

// One registry with one metric of each kind and hand-computable
// values; both exports are compared against full golden strings.
//
// Histogram "t.h" (bounds 1, 10): samples 0.5 and 5 -> counts
// [1, 1, 0]; p50/p95/p99 resolve rank 1, interpolating bucket
// (1, 10] at fraction 0.5 = 5.5, clamped to the observed max 5.
TEST(MetricsExportTest, JsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("t.c_total")->Increment(3);
  registry.GetGauge("t.g")->Set(-2);
  const std::vector<double> bounds = {1.0, 10.0};
  Histogram* hist = registry.GetHistogram("t.h", bounds);
  hist->Record(0.5);
  hist->Record(5.0);

  EXPECT_EQ(registry.ToJson(),
            "{\"schema_version\":1,"
            "\"counters\":{\"t.c_total\":3},"
            "\"gauges\":{\"t.g\":-2},"
            "\"histograms\":{\"t.h\":{"
            "\"count\":2,\"sum\":5.5,\"min\":0.5,\"max\":5,\"mean\":2.75,"
            "\"p50\":5,\"p95\":5,\"p99\":5,"
            "\"buckets\":[{\"le\":1,\"count\":1},{\"le\":10,\"count\":1},"
            "{\"le\":\"+Inf\",\"count\":0}]}}}");
}

TEST(MetricsExportTest, PrometheusGolden) {
  MetricsRegistry registry;
  registry.GetCounter("t.c_total")->Increment(3);
  registry.GetGauge("t.g")->Set(-2);
  const std::vector<double> bounds = {1.0, 10.0};
  Histogram* hist = registry.GetHistogram("t.h", bounds);
  hist->Record(0.5);
  hist->Record(5.0);

  EXPECT_EQ(registry.ToPrometheusText(),
            "# HELP pspc_t_c_total pspc counter t.c_total\n"
            "# TYPE pspc_t_c_total counter\n"
            "pspc_t_c_total 3\n"
            "# HELP pspc_t_g pspc gauge t.g\n"
            "# TYPE pspc_t_g gauge\n"
            "pspc_t_g -2\n"
            "# HELP pspc_t_h pspc histogram t.h\n"
            "# TYPE pspc_t_h histogram\n"
            "pspc_t_h_bucket{le=\"1\"} 1\n"
            "pspc_t_h_bucket{le=\"10\"} 2\n"
            "pspc_t_h_bucket{le=\"+Inf\"} 2\n"
            "pspc_t_h_sum 5.5\n"
            "pspc_t_h_count 2\n");
}

TEST(MetricsExportTest, EverythingInTheCatalogIsKnown) {
  for (const auto name : kCounterNames) EXPECT_TRUE(IsKnownMetricName(name));
  for (const auto name : kGaugeNames) EXPECT_TRUE(IsKnownMetricName(name));
  for (const auto name : kHistogramNames) {
    EXPECT_TRUE(IsKnownMetricName(name));
  }
  for (const auto name : kRequiredServeMetrics) {
    EXPECT_TRUE(IsKnownMetricName(name));
  }
  for (const auto name : kRequiredDynamicMetrics) {
    EXPECT_TRUE(IsKnownMetricName(name));
  }
  // Split literal: a deliberately unknown name must not trip the
  // metric-literal catalog lint.
  EXPECT_FALSE(IsKnownMetricName("serve" ".bogus_total"));
}

TEST(ScopedLatencyTimerTest, RecordsOneSampleAndNullIsNoop) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("t.scoped_us");
  { ScopedLatencyTimer timer(hist); }
  { ScopedLatencyTimer disabled(nullptr); }
  const HistogramSnapshot snapshot = hist->Snapshot();
  EXPECT_EQ(snapshot.count, 1u);
  EXPECT_GE(snapshot.min, 0.0);
}

}  // namespace
}  // namespace obs
}  // namespace pspc
