#include "src/label/label_merge_simd.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/core/builder_facade.h"
#include "src/graph/generators.h"
#include "src/label/label_merge.h"
#include "src/label/packed_label.h"

namespace pspc {
namespace {

constexpr MergeKernel kAllKernels[] = {MergeKernel::kScalar,
                                       MergeKernel::kSwar, MergeKernel::kSse,
                                       MergeKernel::kAvx2};

/// Restores auto-detection when a test that forces kernels exits.
class KernelGuard {
 public:
  ~KernelGuard() { ResetMergeKernel(); }
};

std::vector<LabelEntry> RandomLabel(Rng& rng, size_t max_len) {
  const size_t n = rng.NextBounded(max_len + 1);
  std::vector<LabelEntry> entries;
  Rank rank = static_cast<Rank>(rng.NextBounded(8));
  for (size_t i = 0; i < n; ++i) {
    LabelEntry e;
    e.hub_rank = rank;
    // Small gaps most of the time so the two sides share many hubs
    // (the interesting merge case), big gaps sometimes so the skip
    // paths (SIMD windows, whole-group gallops) actually fire.
    rank += 1 + static_cast<uint32_t>(
                    rng.NextBounded(rng.NextBool(0.15) ? 5000 : 4));
    e.dist = rng.NextBool(0.05)
                 ? kInfDistance
                 : static_cast<Distance>(rng.NextBounded(64));
    e.count = rng.NextBool(0.05) ? kSaturatedCount : 1 + rng.NextBounded(1000);
    entries.push_back(e);
  }
  return entries;
}

LabelSource PackedSource(const std::vector<LabelEntry>& entries,
                         std::vector<uint8_t>* arena) {
  arena->clear();
  AppendPackedBlock(std::span<const LabelEntry>(entries.data(), entries.size()),
                    arena);
  return LabelSource::Packed(PackedBlockView(arena->data()));
}

// The acceptance property of the whole kernel: for every supported
// lane and every raw/packed source combination, the vectorized merge
// is bit-identical to the scalar MergeLabelCounts reference.
TEST(LabelMergeSimdTest, AllKernelsAllSourceCombosMatchReference) {
  KernelGuard guard;
  Rng rng(99173);
  std::vector<uint8_t> arena_a, arena_b;
  for (int trial = 0; trial < 400; ++trial) {
    const std::vector<LabelEntry> a = RandomLabel(rng, 48);
    const std::vector<LabelEntry> b = RandomLabel(rng, 48);
    const std::span<const LabelEntry> sa(a.data(), a.size());
    const std::span<const LabelEntry> sb(b.data(), b.size());
    const SpcResult expected = MergeLabelCounts(sa, sb);

    for (const MergeKernel kernel : kAllKernels) {
      if (!MergeKernelSupported(kernel)) continue;
      SetMergeKernel(kernel);
      ASSERT_EQ(ActiveMergeKernel(), kernel);
      const std::string ctx = std::string("trial ") + std::to_string(trial) +
                              " kernel " + MergeKernelName(kernel);

      ASSERT_EQ(MergeLabelCountsFast(sa, sb), expected) << ctx << " raw/raw";

      const LabelSource raw_a = LabelSource::Raw(sa);
      const LabelSource raw_b = LabelSource::Raw(sb);
      const LabelSource packed_a = PackedSource(a, &arena_a);
      const LabelSource packed_b = PackedSource(b, &arena_b);
      ASSERT_EQ(MergeLabelSources(raw_a, raw_b), expected) << ctx << " rr";
      ASSERT_EQ(MergeLabelSources(raw_a, packed_b), expected) << ctx << " rp";
      ASSERT_EQ(MergeLabelSources(packed_a, raw_b), expected) << ctx << " pr";
      ASSERT_EQ(MergeLabelSources(packed_a, packed_b), expected)
          << ctx << " pp";
    }
  }
}

TEST(LabelMergeSimdTest, DegenerateShapes) {
  KernelGuard guard;
  const std::vector<LabelEntry> empty;
  const std::vector<LabelEntry> one = {{5, 2, 3}};
  std::vector<LabelEntry> disjoint_low, disjoint_high;
  for (uint32_t i = 0; i < 20; ++i) {
    disjoint_low.push_back({i, 1, 1});
    disjoint_high.push_back({1000 + i, 1, 1});
  }
  const std::vector<const std::vector<LabelEntry>*> shapes = {
      &empty, &one, &disjoint_low, &disjoint_high};
  for (const MergeKernel kernel : kAllKernels) {
    if (!MergeKernelSupported(kernel)) continue;
    SetMergeKernel(kernel);
    for (const auto* a : shapes) {
      for (const auto* b : shapes) {
        const std::span<const LabelEntry> sa(a->data(), a->size());
        const std::span<const LabelEntry> sb(b->data(), b->size());
        EXPECT_EQ(MergeLabelCountsFast(sa, sb), MergeLabelCounts(sa, sb))
            << MergeKernelName(kernel);
      }
    }
  }
}

// Same property over a real index's labels: every pair of label lists
// a production query would actually merge.
TEST(LabelMergeSimdTest, RealIndexLabelsMatchReferenceOnEveryKernel) {
  KernelGuard guard;
  const Graph g = GenerateClusteredBa(150, 3, 0.3, 31);
  BuildOptions options;
  options.num_landmarks = 8;
  const SpcIndex index = BuildIndex(g, options).index;
  const PackedLabelMap packed = PackedLabelMap::Encode(index.LabelMap());

  Rng rng(88);
  for (const MergeKernel kernel : kAllKernels) {
    if (!MergeKernelSupported(kernel)) continue;
    SetMergeKernel(kernel);
    for (int trial = 0; trial < 300; ++trial) {
      const auto s = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
      const auto t = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
      const SpcResult expected = MergeLabelCounts(index.Labels(s), index.Labels(t));
      ASSERT_EQ(MergeLabelCountsFast(index.Labels(s), index.Labels(t)),
                expected)
          << MergeKernelName(kernel) << " (" << s << "," << t << ")";
      ASSERT_EQ(MergeLabelSources(LabelSource::Packed(packed.Block(s)),
                                  LabelSource::Packed(packed.Block(t))),
                expected)
          << MergeKernelName(kernel) << " packed (" << s << "," << t << ")";
    }
  }
}

TEST(LabelMergeSimdTest, ForcingUnsupportedKernelFallsBackToAuto) {
  KernelGuard guard;
  // kSse/kAvx2 may be unsupported off-x86; forcing one then must leave
  // selection on a *supported* kernel rather than crashing.
  SetMergeKernel(MergeKernel::kAvx2);
  EXPECT_TRUE(MergeKernelSupported(ActiveMergeKernel()));
  SetMergeKernel(MergeKernel::kScalar);
  EXPECT_EQ(ActiveMergeKernel(), MergeKernel::kScalar);
  ResetMergeKernel();
  EXPECT_TRUE(MergeKernelSupported(ActiveMergeKernel()));
}

}  // namespace
}  // namespace pspc
