// Reproduces Fig. 13 (Exp 8): breakdown of PSPC+ indexing time into
// node ordering (Order), landmark labeling (LL) and label construction
// (LC). Expected shape: LC dominates on every dataset, with Order and
// LL each an order of magnitude (or more) cheaper.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/common/timer.h"

namespace {

void TimeBreakdown(benchmark::State& state, const std::string& code) {
  const pspc::Graph& g = pspc::bench::GetGraph(code);
  const pspc::BuildOptions options = pspc::bench::PspcOptionsAllThreads();
  pspc::BuildIndex(g, options);  // untimed warmup: page-faults the arena
  for (auto _ : state) {
    pspc::WallTimer timer;
    const pspc::BuildResult result = pspc::BuildIndex(g, options);
    state.SetIterationTime(timer.ElapsedSeconds());
    state.counters["order_s"] = result.stats.ordering_seconds;
    state.counters["LL_s"] = result.stats.landmark_seconds;
    state.counters["LC_s"] = result.stats.construction_seconds;
    const double total = result.stats.TotalSeconds();
    state.counters["LC_share"] =
        total > 0 ? result.stats.construction_seconds / total : 0.0;
  }
}

int RegisterAll() {
  for (const auto& spec : pspc::AllDatasets()) {
    benchmark::RegisterBenchmark(
        ("fig13/time_breakdown/" + spec.code).c_str(),
        [code = spec.code](benchmark::State& s) { TimeBreakdown(s, code); })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kSecond);
  }
  return 0;
}

static const int kRegistered = RegisterAll();

}  // namespace
