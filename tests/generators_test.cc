#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/graph/datasets.h"
#include "src/graph/generators.h"

namespace pspc {
namespace {

TEST(GeneratorsTest, ErdosRenyiHasRequestedEdges) {
  const Graph g = GenerateErdosRenyi(100, 300, 1);
  EXPECT_EQ(g.NumVertices(), 100u);
  EXPECT_EQ(g.NumEdges(), 300u);
}

TEST(GeneratorsTest, ErdosRenyiCapsAtCompleteGraph) {
  const Graph g = GenerateErdosRenyi(5, 1000, 2);
  EXPECT_EQ(g.NumEdges(), 10u);  // C(5,2)
}

TEST(GeneratorsTest, ErdosRenyiDeterministicBySeed) {
  EXPECT_EQ(GenerateErdosRenyi(60, 120, 9), GenerateErdosRenyi(60, 120, 9));
  EXPECT_NE(GenerateErdosRenyi(60, 120, 9), GenerateErdosRenyi(60, 120, 10));
}

TEST(GeneratorsTest, BarabasiAlbertSizeAndConnectivity) {
  const Graph g = GenerateBarabasiAlbert(200, 3, 5);
  EXPECT_EQ(g.NumVertices(), 200u);
  // Seed clique C(4,2)=6 edges + 196 new vertices x 3 edges.
  EXPECT_EQ(g.NumEdges(), 6u + 196u * 3u);
  VertexId components = 0;
  ConnectedComponents(g, &components);
  EXPECT_EQ(components, 1u);  // preferential attachment is connected
}

TEST(GeneratorsTest, BarabasiAlbertIsSkewed) {
  const Graph g = GenerateBarabasiAlbert(500, 2, 8);
  // Heavy-tail check: max degree far above the mean.
  EXPECT_GT(g.MaxDegree(), 4 * static_cast<VertexId>(g.AverageDegree()));
}

TEST(GeneratorsTest, WattsStrogatzDegreeConcentration) {
  const Graph g = GenerateWattsStrogatz(300, 4, 0.1, 3);
  EXPECT_EQ(g.NumVertices(), 300u);
  // 2k per vertex before rewiring; duplicates from rewiring can shave a
  // few edges off.
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), 300.0 * 4, 30.0);
}

TEST(GeneratorsTest, RmatRespectsScale) {
  const Graph g = GenerateRmat(8, 1000, 0.57, 0.19, 0.19, 4);
  EXPECT_EQ(g.NumVertices(), 256u);
  EXPECT_LE(g.NumEdges(), 1000u);  // dedup + self-loop drops only shrink
  EXPECT_GT(g.NumEdges(), 500u);
}

TEST(GeneratorsTest, RoadGridShape) {
  const Graph g = GenerateRoadGrid(20, 30, 1.0, 0.0, 7);
  EXPECT_EQ(g.NumVertices(), 600u);
  // Full lattice: 19*30 vertical + 20*29 horizontal.
  EXPECT_EQ(g.NumEdges(), 19u * 30u + 20u * 29u);
  EXPECT_LE(g.MaxDegree(), 4u);
}

TEST(GeneratorsTest, PathCycleCompleteStar) {
  EXPECT_EQ(GeneratePath(5).NumEdges(), 4u);
  EXPECT_EQ(GenerateCycle(6).NumEdges(), 6u);
  EXPECT_EQ(GenerateComplete(7).NumEdges(), 21u);
  const Graph star = GenerateStar(9);
  EXPECT_EQ(star.NumVertices(), 10u);
  EXPECT_EQ(star.Degree(0), 9u);
}

TEST(GeneratorsTest, TreeIsAcyclicAndConnected) {
  const Graph g = GenerateTree(50, 3);
  EXPECT_EQ(g.NumEdges(), 49u);  // n - 1 edges: a tree
  VertexId components = 0;
  ConnectedComponents(g, &components);
  EXPECT_EQ(components, 1u);
}

TEST(GeneratorsTest, DiamondLadderCountExplosion) {
  // s at one end, t at the other; width^interior layers shortest paths.
  const Graph g = GenerateDiamondLadder(4, 3);  // 2 interior layers
  EXPECT_EQ(g.NumVertices(), 2u + 2u * 3u);
  const Distance diam = ExactDiameter(g);
  EXPECT_EQ(diam, 3u);  // s -> layer1 -> layer2 -> t
}

TEST(GeneratorsTest, PaperFigure2GraphShape) {
  const Graph g = PaperFigure2Graph();
  EXPECT_EQ(g.NumVertices(), 10u);
  EXPECT_EQ(g.NumEdges(), 13u);
  // Spot-check the reconstructed adjacency (paper ids are 1-based).
  EXPECT_TRUE(g.HasEdge(0, 9));   // v1 - v10
  EXPECT_TRUE(g.HasEdge(6, 7));   // v7 - v8
  EXPECT_FALSE(g.HasEdge(0, 6));  // v1 and v7 are not adjacent
}

// ---------------------------------------------------------- Datasets --

TEST(DatasetsTest, RegistryHasPaperTablePlusRoad) {
  const auto& all = AllDatasets();
  ASSERT_EQ(all.size(), 11u);
  EXPECT_EQ(all.front().code, "FB");
  EXPECT_EQ(all.back().code, "RD");
}

TEST(DatasetsTest, SweepSetMatchesPaperFigures) {
  // Figs. 8-12 sweep FB, GO, GW, WI.
  int sweep = 0;
  for (const auto& spec : AllDatasets()) sweep += spec.in_sweep_set;
  EXPECT_EQ(sweep, 4);
  EXPECT_TRUE(DatasetByCode("GO").in_sweep_set);
  EXPECT_FALSE(DatasetByCode("IN").in_sweep_set);
}

TEST(DatasetsTest, BuildersAreDeterministic) {
  const auto& fb = DatasetByCode("FB");
  const Graph a = fb.build(64);  // heavy shrink for test speed
  const Graph b = fb.build(64);
  EXPECT_EQ(a, b);
  EXPECT_GE(a.NumVertices(), 64u);
}

TEST(DatasetsTest, ScaleDivisorShrinks) {
  const auto& gw = DatasetByCode("GW");
  EXPECT_GT(gw.build(1).NumVertices(), gw.build(16).NumVertices());
}

}  // namespace
}  // namespace pspc
