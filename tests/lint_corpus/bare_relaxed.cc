// Corpus: bare-relaxed — one justified load, one bare load.
#include <atomic>

std::atomic<int> g_counter{0};

int Justified() {
  // relaxed: corpus example of a justified read.
  return g_counter.load(std::memory_order_relaxed);
}

int Unjustified() {
  int padding = 0;
  padding += 1;
  return g_counter.load(std::memory_order_relaxed) + padding;
}
