#ifndef PSPC_TOOLS_ANALYZE_PASSES_H_
#define PSPC_TOOLS_ANALYZE_PASSES_H_

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "tools/analyze_model.h"

/// The four cross-file passes over spcanalyze::Model (see
/// tools/analyze_model.h for the model and the pass overview) plus the
/// tree driver `AnalyzeTree` that spc_analyze and the corpus tests
/// share. Configuration lives in two checked-in files:
///
///   tools/lock_hierarchy.txt   the declared lock acquisition order,
///                              one canonical `Class::member` name per
///                              line, outermost (acquired first) at the
///                              top; every class-member spc::Mutex under
///                              src/ must be listed
///   tools/layer_dag.txt        the layer DAG, one `layer <dir>...`
///                              line per level, bottom-up; an #include
///                              from a lower layer into a higher one is
///                              a back-edge
namespace spcanalyze {

// ------------------------------------------------------------ resolution

/// Last whitespace-separated word of a type string — the class-name
/// candidate of "obs Histogram" or "std vector".
inline std::string TypeTail(const std::string& type) {
  const size_t pos = type.find_last_of(' ');
  return pos == std::string::npos ? type : type.substr(pos + 1);
}

/// Per-function symbol table: name -> type identifier, built from
/// parameters, enclosing-class members, and local declarations.
class SymbolTable {
 public:
  SymbolTable(const Model& model, const FunctionModel& fn) : model_(model) {
    if (!fn.cls.empty()) {
      const auto it = model.classes_by_name.find(fn.cls);
      if (it != model.classes_by_name.end()) {
        for (const Member& m : it->second->members) {
          types_[m.name] = TypeTail(m.type);
        }
      }
    }
    for (const auto& [name, type] : fn.param_types) types_[name] = type;
  }

  void Declare(const std::string& name, const std::string& type) {
    types_[name] = type;
  }

  /// Type identifier of `name`, or "" if unknown.
  std::string TypeOf(const std::string& name) const {
    const auto it = types_.find(name);
    return it == types_.end() ? std::string() : it->second;
  }

  /// Resolves a member function `cls::name` to its model entry
  /// (declaration or definition; one with a body preferred).
  const FunctionModel* Resolve(const std::string& cls,
                               const std::string& name) const {
    const FunctionModel* found = nullptr;
    auto [lo, hi] = model_.functions_by_name.equal_range(name);
    for (auto it = lo; it != hi; ++it) {
      if (it->second->cls != cls) continue;
      if (found == nullptr || it->second->body_end > it->second->body_begin) {
        found = it->second;
      }
    }
    return found;
  }

  /// Resolves a bare call in the context of `enclosing_cls`: the
  /// enclosing class's member first, then a unique free function.
  const FunctionModel* ResolveBare(const std::string& enclosing_cls,
                                   const std::string& name) const {
    if (!enclosing_cls.empty()) {
      const FunctionModel* member = Resolve(enclosing_cls, name);
      if (member != nullptr) return member;
    }
    return Resolve("", name);
  }

  /// All model functions with this name (overload-conservative checks).
  std::vector<const FunctionModel*> AllNamed(const std::string& name) const {
    std::vector<const FunctionModel*> out;
    auto [lo, hi] = model_.functions_by_name.equal_range(name);
    for (auto it = lo; it != hi; ++it) out.push_back(it->second);
    return out;
  }

 private:
  const Model& model_;
  std::map<std::string, std::string> types_;
};

/// Canonicalizes a mutex expression (annotation argument or MutexLock
/// constructor argument) to `Class::member`. Returns "" if the
/// expression cannot be resolved to a declared mutex member.
inline std::string CanonicalMutex(const Model& model, const SymbolTable& syms,
                                  const std::string& enclosing_cls,
                                  const std::string& expr) {
  // Split `a.b` / `a->b`; annotation args arrive with tokens joined.
  std::string receiver, member = expr;
  for (const std::string_view sep : {"->", "."}) {
    const size_t pos = expr.find(sep);
    if (pos != std::string::npos) {
      receiver = expr.substr(0, pos);
      member = expr.substr(pos + sep.size());
      break;
    }
  }
  const auto is_mutex_member_of = [&](const std::string& cls) -> bool {
    const auto it = model.classes_by_name.find(cls);
    if (it == model.classes_by_name.end()) return false;
    for (const Member& m : it->second->members) {
      if (m.name == member && m.is_mutex) return true;
    }
    return false;
  };
  if (receiver.empty()) {
    if (!enclosing_cls.empty() && is_mutex_member_of(enclosing_cls)) {
      return enclosing_cls + "::" + member;
    }
    return "";
  }
  const std::string receiver_type = syms.TypeOf(receiver);
  if (!receiver_type.empty() && is_mutex_member_of(receiver_type)) {
    return receiver_type + "::" + member;
  }
  return "";
}

// ----------------------------------------------------------- body events

/// One lock-relevant or call event in a function body, in source order.
struct BodyEvent {
  enum Kind {
    kAcquire,       // spc::MutexLock var(mu) or mu.Lock()
    kRelease,       // var.Unlock() / mu.Unlock()
    kReacquire,     // var.Lock() on a MutexLock variable
    kScopeOpen,     // `{`
    kScopeClose,    // `}`
    kCall,          // resolved (or resolvable-by-name) call
    kLambda,        // lambda introducer; captures in `captures`
    kPinLocal,      // declaration of a pin-typed local
    kPinContainer,  // local whose template args mention a pin type
    kStatement,     // statement-initial call chain (must-use)
  };
  Kind kind;
  size_t line = 0;
  std::string mutex_name;  // kAcquire/kRelease/kReacquire: canonical name
  std::string lock_var;    // MutexLock variable ("" for direct .Lock())
  std::string callee;      // kCall/kStatement: function name
  std::string receiver_type;  // kCall/kStatement: "" if bare
  bool receiver_typed = false;  // receiver present and resolved
  bool receiver_present = false;
  std::string var;                     // kPin*: variable name
  std::vector<std::string> captures;   // kLambda
};

/// Walks one function body and emits events. Shared by the lock-order,
/// pin-escape and must-use passes so they agree on what the body says.
inline std::vector<BodyEvent> ScanBody(const Model& model,
                                       const FileModel& file,
                                       const FunctionModel& fn,
                                       SymbolTable* syms) {
  std::vector<BodyEvent> events;
  const std::vector<Token>& toks = file.tokens;
  const auto text = [&](size_t k) -> const std::string& {
    static const std::string empty;
    return k < toks.size() ? toks[k].text : empty;
  };

  for (size_t k = fn.body_begin; k < fn.body_end; ++k) {
    const std::string& t = toks[k].text;

    if (t == "{") {
      events.push_back({BodyEvent::kScopeOpen, toks[k].line, "", "", "", "",
                        false, false, "", {}});
      continue;
    }
    if (t == "}") {
      events.push_back({BodyEvent::kScopeClose, toks[k].line, "", "", "", "",
                        false, false, "", {}});
      continue;
    }

    // Lambda introducer: `[` at expression position.
    if (t == "[") {
      const std::string& prev = k > fn.body_begin ? toks[k - 1].text : "{";
      const bool expr_pos = prev == "=" || prev == "(" || prev == "," ||
                            prev == "{" || prev == ";" || prev == "return";
      if (expr_pos) {
        BodyEvent ev{BodyEvent::kLambda, toks[k].line, "", "", "", "",
                     false,  false,      "", {}};
        size_t j = k + 1;
        int depth = 1;
        for (; j < fn.body_end && depth > 0; ++j) {
          if (toks[j].text == "[") ++depth;
          if (toks[j].text == "]") --depth;
          if (depth == 1 && spcanalyze::IsIdentChar(toks[j].text[0])) {
            ev.captures.push_back(toks[j].text);
          }
        }
        events.push_back(ev);
        k = j - 1;
        continue;
      }
      continue;
    }

    if (!IsIdentChar(t[0]) || std::isdigit(static_cast<unsigned char>(t[0]))) {
      continue;
    }

    // `spc::MutexLock var(expr);` (optionally pspc::-qualified).
    if (t == "MutexLock" && text(k + 1) != "(" && text(k + 1) != ";" &&
        IsIdentChar(text(k + 1).empty() ? '(' : text(k + 1)[0])) {
      const std::string var = text(k + 1);
      if (text(k + 2) == "(") {
        std::string expr;
        size_t j = k + 3;
        int depth = 1;
        for (; j < fn.body_end && depth > 0; ++j) {
          if (toks[j].text == "(") ++depth;
          if (toks[j].text == ")") --depth;
          if (depth > 0) expr += toks[j].text;
        }
        const std::string canonical =
            CanonicalMutex(model, *syms, fn.cls, expr);
        syms->Declare(var, "MutexLock");
        events.push_back({BodyEvent::kAcquire, toks[k].line, canonical, var,
                          "", "", false, false, "", {}});
        k = j - 1;
        continue;
      }
    }

    // Receiver chains: `recv . Name (` / `recv -> Name (` /
    // `Class :: Name (` / bare `Name (`.
    const std::string& next = text(k + 1);
    if ((next == "." || next == "->" || next == "::") &&
        IsIdentChar(text(k + 2).empty() ? '(' : text(k + 2)[0]) &&
        text(k + 3) == "(") {
      const std::string& receiver = t;
      const std::string& callee = text(k + 2);
      const bool statement_initial = [&] {
        const std::string& prev = k > fn.body_begin ? toks[k - 1].text : "{";
        return prev == ";" || prev == "{" || prev == "}" || prev == ")";
      }();

      if (callee == "Lock" || callee == "Unlock") {
        // MutexLock variable or direct mutex member.
        const std::string recv_type = syms->TypeOf(receiver);
        std::string canonical;
        std::string lock_var;
        if (recv_type == "MutexLock") {
          lock_var = receiver;
        } else {
          canonical = CanonicalMutex(model, *syms, fn.cls, receiver);
        }
        if (!lock_var.empty() || !canonical.empty()) {
          const BodyEvent::Kind kind =
              callee == "Unlock"
                  ? BodyEvent::kRelease
                  : (lock_var.empty() ? BodyEvent::kAcquire
                                      : BodyEvent::kReacquire);
          events.push_back({kind, toks[k].line, canonical, lock_var, "", "",
                            false, false, "", {}});
        }
        k += 3;
        continue;
      }

      BodyEvent ev{statement_initial ? BodyEvent::kStatement
                                     : BodyEvent::kCall,
                   toks[k].line, "", "", callee, "", false, true, "", {}};
      if (next == "::") {
        ev.receiver_type = receiver;
        ev.receiver_typed = true;
      } else {
        const std::string recv_type = syms->TypeOf(receiver);
        if (!recv_type.empty()) {
          ev.receiver_type = recv_type;
          ev.receiver_typed = true;
        }
      }
      events.push_back(ev);
      // Also emit a kCall for the statement case so lock summaries see
      // it uniformly.
      if (ev.kind == BodyEvent::kStatement) {
        BodyEvent call = ev;
        call.kind = BodyEvent::kCall;
        events.push_back(call);
      }
      k += 2;  // continue scanning inside the argument list
      continue;
    }

    // Bare call `Name (`.
    if (next == "(" && !detail::IsControlKeyword(t)) {
      const std::string& prev = k > fn.body_begin ? toks[k - 1].text : "{";
      if (prev != "." && prev != "->" && prev != "::") {
        const bool statement_initial =
            prev == ";" || prev == "{" || prev == "}" || prev == ")";
        events.push_back({statement_initial ? BodyEvent::kStatement
                                            : BodyEvent::kCall,
                          toks[k].line, "", "", t, "", false, false, "", {}});
        if (statement_initial) {
          events.push_back({BodyEvent::kCall, toks[k].line, "", "", t, "",
                            false, false, "", {}});
        }
      }
      continue;
    }

    // Local declarations (for receiver typing and pin tracking):
    //   [ns ::]* Type [< args >] [&|*|const]* name ( = | { | ; | : )
    {
      const std::string& prev = k > fn.body_begin ? toks[k - 1].text : "{";
      const bool decl_pos = prev == ";" || prev == "{" || prev == "}" ||
                            prev == "(" || prev == "const";
      if (!decl_pos) continue;
      // Walk the qualified chain to the final type identifier.
      size_t p = k;
      while (text(p + 1) == "::" && !text(p + 2).empty() &&
             IsIdentChar(text(p + 2)[0])) {
        p += 2;
      }
      // Template argument list (abort if this `<` is a comparison).
      std::string tmpl_args;
      size_t after_type = p + 1;
      if (text(p + 1) == "<") {
        size_t j = p + 2;
        int depth = 1;
        bool closed = false;
        for (; j < fn.body_end; ++j) {
          const std::string& tj = toks[j].text;
          if (tj == ";" || tj == "{" || tj == ")") break;
          if (tj == "<") ++depth;
          if (tj == ">") {
            --depth;
            if (depth == 0) {
              closed = true;
              break;
            }
          }
          if (IsIdentChar(tj[0])) tmpl_args += tj + " ";
        }
        if (!closed) continue;
        after_type = j + 1;
      }
      size_t name_idx = after_type;
      while (name_idx < fn.body_end &&
             (toks[name_idx].text == "&" || toks[name_idx].text == "*" ||
              toks[name_idx].text == "const")) {
        ++name_idx;
      }
      if (name_idx < fn.body_end && name_idx != k &&
          IsIdentChar(text(name_idx)[0]) &&
          !std::isdigit(static_cast<unsigned char>(text(name_idx)[0]))) {
        const std::string& after = text(name_idx + 1);
        if (after == "=" || after == ";" || after == "{" || after == ":") {
          const std::string& type = toks[p].text;
          const std::string& var = text(name_idx);
          if (type != "return" && !detail::IsControlKeyword(type)) {
            std::string resolved_type = type;
            if (type == "auto" && after == "=") {
              // `auto x = recv.Acquire()` and friends: adopt the
              // resolved callee's return type.
              const size_t e = name_idx + 2;
              if (IsIdentChar(text(e)[0]) &&
                  (text(e + 1) == "." || text(e + 1) == "->") &&
                  text(e + 3) == "(") {
                const std::string recv_type = syms->TypeOf(text(e));
                const FunctionModel* callee =
                    recv_type.empty()
                        ? nullptr
                        : syms->Resolve(recv_type, text(e + 2));
                if (callee != nullptr) resolved_type = callee->return_type;
              }
            }
            if (resolved_type != "auto") syms->Declare(var, resolved_type);
            if (model.pin_types.count(resolved_type) != 0) {
              events.push_back({BodyEvent::kPinLocal, toks[k].line, "", "",
                                "", "", false, false, var, {}});
            }
            // Container whose template args mention a pin type.
            for (const std::string& pin : model.pin_types) {
              if (tmpl_args.find(pin) != std::string::npos) {
                events.push_back({BodyEvent::kPinContainer, toks[k].line, "",
                                  "", "", "", false, false, var, {}});
                break;
              }
            }
          }
        }
      }
    }
  }
  return events;
}

// --------------------------------------------------------- lock summaries

struct LockEdge {
  std::string from, to;
  std::string file;
  size_t line = 0;  // 0-based
};

/// Fixpoint over the call graph: canonical mutexes each function may
/// acquire, directly or through resolved calls.
inline std::map<const FunctionModel*, std::set<std::string>>
ComputeAcquireSummaries(const Model& model) {
  std::map<const FunctionModel*, std::set<std::string>> summary;
  struct Site {
    const FunctionModel* fn;
    std::vector<BodyEvent> events;
    SymbolTable syms;
  };
  std::vector<Site> sites;
  for (const FileModel& file : model.files) {
    for (const FunctionModel& fn : file.functions) {
      if (fn.body_end <= fn.body_begin) continue;
      SymbolTable syms(model, fn);
      std::vector<BodyEvent> events = ScanBody(model, file, fn, &syms);
      sites.push_back({&fn, std::move(events), std::move(syms)});
    }
  }
  for (const Site& s : sites) {
    std::set<std::string>& acq = summary[s.fn];
    for (const BodyEvent& ev : s.events) {
      if (ev.kind == BodyEvent::kAcquire && !ev.mutex_name.empty()) {
        acq.insert(ev.mutex_name);
      }
    }
    // ACQUIRE annotations resolvable in the function's own class.
    SymbolTable syms(model, *s.fn);
    for (const std::string& arg : s.fn->acquire_args) {
      const std::string canonical =
          CanonicalMutex(model, syms, s.fn->cls, arg);
      if (!canonical.empty()) acq.insert(canonical);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Site& s : sites) {
      std::set<std::string>& acq = summary[s.fn];
      for (const BodyEvent& ev : s.events) {
        if (ev.kind != BodyEvent::kCall) continue;
        const FunctionModel* callee =
            ev.receiver_typed ? s.syms.Resolve(ev.receiver_type, ev.callee)
            : !ev.receiver_present ? s.syms.ResolveBare(s.fn->cls, ev.callee)
                                   : nullptr;
        if (callee == nullptr || callee == s.fn) continue;
        const auto it = summary.find(callee);
        if (it == summary.end()) continue;
        for (const std::string& m : it->second) {
          if (acq.insert(m).second) changed = true;
        }
      }
    }
  }
  return summary;
}

// ---------------------------------------------------------------- passes

struct AnalyzeOptions {
  std::vector<std::string> lock_hierarchy;         // outermost first
  std::vector<std::vector<std::string>> layers;    // bottom-up dir groups
  /// Require every src/ class-member spc::Mutex to appear in the
  /// hierarchy (off for corpus mini-trees that test other passes).
  bool check_lock_registration = true;
};

/// Pass 1: lock-order. Emits the observed acquisition edges through
/// `edges` (for the JSON report) alongside any violations.
inline void LockOrderPass(const Model& model, const AnalyzeOptions& options,
                          std::vector<Violation>* violations,
                          std::vector<LockEdge>* edges) {
  const auto summaries = ComputeAcquireSummaries(model);

  // Observed edges: held -> acquired, with a representative site each.
  std::map<std::string, std::map<std::string, std::pair<std::string, size_t>>>
      graph;
  const auto add_edge = [&](const std::string& from, const std::string& to,
                            const std::string& file, size_t line) {
    if (from.empty() || to.empty() || from == to) {
      if (from == to && !from.empty()) {
        // Self-acquisition: immediate self-deadlock on a
        // non-reentrant mutex.
        violations->push_back(
            {file, line + 1, "lock-cycle",
             "acquires '" + from + "' while already holding it (std::mutex "
             "is non-reentrant: guaranteed self-deadlock)"});
      }
      return;
    }
    graph[from].emplace(to, std::make_pair(file, line));
  };

  for (const FileModel& file : model.files) {
    for (const FunctionModel& fn : file.functions) {
      if (fn.body_end <= fn.body_begin) continue;
      SymbolTable syms(model, fn);
      const std::vector<BodyEvent> events = ScanBody(model, file, fn, &syms);

      // Held set: REQUIRES locks for the whole body + active scopes.
      std::set<std::string> required;
      for (const std::string& arg : fn.requires_args) {
        const std::string canonical = CanonicalMutex(model, syms, fn.cls, arg);
        if (!canonical.empty()) required.insert(canonical);
      }
      struct Held {
        std::string mutex;
        std::string var;  // "" = direct Lock()
        int depth;
        bool active;
      };
      std::vector<Held> held;
      int depth = 0;
      const auto held_now = [&]() {
        std::set<std::string> out = required;
        for (const Held& h : held) {
          if (h.active && !h.mutex.empty()) out.insert(h.mutex);
        }
        return out;
      };

      for (const BodyEvent& ev : events) {
        switch (ev.kind) {
          case BodyEvent::kScopeOpen:
            ++depth;
            break;
          case BodyEvent::kScopeClose:
            while (!held.empty() && held.back().depth >= depth) {
              held.pop_back();
            }
            --depth;
            break;
          case BodyEvent::kAcquire: {
            if (required.count(ev.mutex_name) != 0 && !ev.mutex_name.empty()) {
              // Dedicated diagnostic; skip the generic self-edge.
              violations->push_back(
                  {file.path, ev.line + 1, "lock-cycle",
                   "acquires '" + ev.mutex_name +
                       "' which REQUIRES already declares held (guaranteed "
                       "self-deadlock)"});
            } else {
              for (const std::string& h : held_now()) {
                add_edge(h, ev.mutex_name, file.path, ev.line);
              }
            }
            held.push_back({ev.mutex_name, ev.lock_var, depth, true});
            break;
          }
          case BodyEvent::kRelease:
            for (auto it = held.rbegin(); it != held.rend(); ++it) {
              if ((!ev.lock_var.empty() && it->var == ev.lock_var) ||
                  (ev.lock_var.empty() && it->mutex == ev.mutex_name)) {
                it->active = false;
                break;
              }
            }
            break;
          case BodyEvent::kReacquire:
            for (auto it = held.rbegin(); it != held.rend(); ++it) {
              if (it->var == ev.lock_var) {
                for (const std::string& h : held_now()) {
                  add_edge(h, it->mutex, file.path, ev.line);
                }
                it->active = true;
                break;
              }
            }
            break;
          case BodyEvent::kCall: {
            const FunctionModel* callee =
                ev.receiver_typed ? syms.Resolve(ev.receiver_type, ev.callee)
                : !ev.receiver_present
                    ? syms.ResolveBare(fn.cls, ev.callee)
                    : nullptr;
            if (callee == nullptr) break;
            const auto it = summaries.find(callee);
            if (it == summaries.end() || it->second.empty()) break;
            const std::set<std::string> held_set = held_now();
            if (held_set.empty()) break;
            // Locks the callee REQUIRES are held by contract, not
            // acquired inside it.
            SymbolTable callee_syms(model, *callee);
            std::set<std::string> callee_required;
            for (const std::string& arg : callee->requires_args) {
              const std::string canonical =
                  CanonicalMutex(model, callee_syms, callee->cls, arg);
              if (!canonical.empty()) callee_required.insert(canonical);
            }
            for (const std::string& acquired : it->second) {
              if (callee_required.count(acquired) != 0) continue;
              for (const std::string& h : held_set) {
                add_edge(h, acquired, file.path, ev.line);
              }
            }
            break;
          }
          default:
            break;
        }
      }
    }
  }

  for (const auto& [from, tos] : graph) {
    for (const auto& [to, site] : tos) {
      edges->push_back({from, to, site.first, site.second});
    }
  }

  // Cycle detection: DFS from each node in sorted order; report a cycle
  // only from its lexicographically smallest member so each prints once.
  std::vector<std::string> nodes;
  for (const auto& [from, tos] : graph) {
    nodes.push_back(from);
    for (const auto& [to, site] : tos) nodes.push_back(to);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  std::set<std::vector<std::string>> reported;
  for (const std::string& start : nodes) {
    // Iterative DFS tracking the path; find a cycle back to `start`.
    std::vector<std::pair<std::string, size_t>> stack;  // node, next index
    std::vector<std::string> path;
    std::set<std::string> on_path, done;
    stack.emplace_back(start, 0);
    path.push_back(start);
    on_path.insert(start);
    std::vector<std::string> cycle;
    while (!stack.empty() && cycle.empty()) {
      auto& [node, next] = stack.back();
      const auto git = graph.find(node);
      std::vector<std::string> succs;
      if (git != graph.end()) {
        for (const auto& [to, site] : git->second) succs.push_back(to);
      }
      if (next >= succs.size()) {
        on_path.erase(node);
        done.insert(node);
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const std::string succ = succs[next++];
      if (succ == start) {
        cycle = path;  // path from start back to start
        break;
      }
      if (on_path.count(succ) != 0 || done.count(succ) != 0 || succ < start) {
        continue;  // inner cycles reported from their own smallest node
      }
      stack.emplace_back(succ, 0);
      path.push_back(succ);
      on_path.insert(succ);
    }
    if (cycle.empty()) continue;
    if (!reported.insert(cycle).second) continue;
    std::ostringstream msg;
    msg << "potential deadlock: lock-order cycle ";
    for (const std::string& n : cycle) msg << n << " -> ";
    msg << cycle.front() << " (";
    std::string site_file;
    size_t site_line = 0;
    for (size_t i = 0; i < cycle.size(); ++i) {
      const std::string& from = cycle[i];
      const std::string& to = cycle[(i + 1) % cycle.size()];
      const auto& site = graph.at(from).at(to);
      if (i == 0) {
        site_file = site.first;
        site_line = site.second;
      } else {
        msg << "; ";
      }
      msg << from << "->" << to << " at " << site.first << ":"
          << site.second + 1;
    }
    msg << ")";
    violations->push_back({site_file, site_line + 1, "lock-cycle", msg.str()});
  }

  // Declared hierarchy: an edge from a lower-ranked lock into a
  // higher-ranked one inverts the declared acquisition order.
  std::map<std::string, size_t> rank;
  for (size_t i = 0; i < options.lock_hierarchy.size(); ++i) {
    rank[options.lock_hierarchy[i]] = i;
  }
  for (const auto& [from, tos] : graph) {
    const auto rf = rank.find(from);
    if (rf == rank.end()) continue;
    for (const auto& [to, site] : tos) {
      const auto rt = rank.find(to);
      if (rt == rank.end()) continue;
      if (rt->second < rf->second) {
        violations->push_back(
            {site.first, site.second + 1, "lock-hierarchy",
             "acquires '" + to + "' while holding '" + from +
                 "', inverting the declared order in "
                 "tools/lock_hierarchy.txt ('" +
                 to + "' is outer)"});
      }
    }
  }

  // Registration: every src/ class-member spc::Mutex must be declared.
  if (options.check_lock_registration) {
    for (const FileModel& file : model.files) {
      if (file.path.rfind("src/", 0) != 0) continue;
      for (const ClassModel& cls : file.classes) {
        // RAII capability wrappers (MutexLock and friends) hold a
        // reference to a mutex, they are not a lock of their own.
        if (cls.scoped_capability || model.pin_types.count(cls.name) != 0) {
          continue;
        }
        for (const Member& m : cls.members) {
          if (!m.is_mutex) continue;
          const std::string canonical = cls.name + "::" + m.name;
          if (rank.count(canonical) == 0) {
            violations->push_back(
                {file.path, m.line + 1, "lock-unregistered",
                 "mutex '" + canonical +
                     "' is not declared in tools/lock_hierarchy.txt (add it "
                     "at its acquisition-order position)"});
          }
        }
      }
    }
  }
}

/// Pass 2: epoch-pin escape analysis.
inline void PinEscapePass(const Model& model,
                          std::vector<Violation>* violations) {
  // Member / member-container escapes: a pin stored in a class outlives
  // any acquiring scope unless the class explicitly releases it.
  for (const FileModel& file : model.files) {
    for (const ClassModel& cls : file.classes) {
      if (model.pin_types.count(cls.name) != 0) continue;  // RAII wrappers
      for (const Member& m : cls.members) {
        std::string pin_hit;
        for (const std::string& pin : model.pin_types) {
          // Token-boundary match inside the whitespace-joined type.
          const std::string padded = " " + m.type + " ";
          if (padded.find(" " + pin + " ") != std::string::npos) {
            pin_hit = pin;
            break;
          }
        }
        if (pin_hit.empty()) continue;
        // Explicit release anywhere in the class's functions pardons
        // it; member function bodies may live in another file.
        bool released = false;
        for (const FileModel& defs : model.files) {
          for (const FunctionModel& fn : defs.functions) {
            if (fn.cls != cls.name || fn.body_end <= fn.body_begin) continue;
            for (size_t k = fn.body_begin; k + 2 < fn.body_end; ++k) {
              if (defs.tokens[k].text == m.name &&
                  (defs.tokens[k + 1].text == "." ||
                   defs.tokens[k + 1].text == "->") &&
                  (defs.tokens[k + 2].text == "Release" ||
                   defs.tokens[k + 2].text == "Unlock")) {
                released = true;
                break;
              }
            }
            if (released) break;
          }
          if (released) break;
        }
        if (released) continue;
        const bool container = m.type.find(pin_hit) != std::string::npos &&
                               TypeTail(m.type) != pin_hit;
        violations->push_back(
            {file.path, m.line + 1, "pin-escape",
             std::string("member '") + m.name + "' stores a " + pin_hit +
                 (container ? " in a container" : "") +
                 " beyond its acquiring scope without an explicit Release() "
                 "— a held pin stalls epoch reclamation for every later "
                 "generation"});
      }
    }
  }

  // Local containers of pins and lambda captures of pin locals.
  for (const FileModel& file : model.files) {
    for (const FunctionModel& fn : file.functions) {
      if (fn.body_end <= fn.body_begin) continue;
      SymbolTable syms(model, fn);
      const std::vector<BodyEvent> events = ScanBody(model, file, fn, &syms);
      std::set<std::string> pin_locals;
      for (const BodyEvent& ev : events) {
        if (ev.kind == BodyEvent::kPinLocal) pin_locals.insert(ev.var);
        if (ev.kind == BodyEvent::kPinContainer) {
          violations->push_back(
              {file.path, ev.line + 1, "pin-escape",
               "local '" + ev.var +
                   "' is a container of epoch pins; pins held in bulk "
                   "outlive the micro-batch scope the epoch design assumes "
                   "(hold one SnapshotRef per batch instead)"});
        }
        if (ev.kind == BodyEvent::kLambda) {
          for (const std::string& cap : ev.captures) {
            if (pin_locals.count(cap) != 0) {
              violations->push_back(
                  {file.path, ev.line + 1, "pin-escape",
                   "lambda captures epoch pin '" + cap +
                       "'; the capture can outlive the acquiring scope "
                       "without an explicit Release()"});
              break;
            }
          }
        }
      }
    }
  }
}

/// Pass 3: must-use on Status / Result returns.
inline void MustUsePass(const Model& model,
                        std::vector<Violation>* violations) {
  const auto returns_status = [](const FunctionModel* fn) {
    return fn != nullptr &&
           (fn->return_type == "Status" || fn->return_type == "Result");
  };
  for (const FileModel& file : model.files) {
    for (const FunctionModel& fn : file.functions) {
      if (fn.body_end <= fn.body_begin) continue;
      SymbolTable syms(model, fn);
      const std::vector<BodyEvent> events = ScanBody(model, file, fn, &syms);
      for (const BodyEvent& ev : events) {
        if (ev.kind != BodyEvent::kStatement) continue;
        bool flagged = false;
        std::string callee_desc;
        if (ev.receiver_typed) {
          const FunctionModel* callee =
              syms.Resolve(ev.receiver_type, ev.callee);
          if (returns_status(callee)) {
            flagged = true;
            callee_desc = ev.receiver_type + "::" + ev.callee;
          }
        } else if (!ev.receiver_present) {
          // Bare name: flag only when every known candidate returns
          // Status/Result (overload-conservative).
          const std::vector<const FunctionModel*> candidates =
              syms.AllNamed(ev.callee);
          if (!candidates.empty()) {
            bool all_status = true;
            for (const FunctionModel* c : candidates) {
              if (!returns_status(c)) all_status = false;
            }
            if (all_status) {
              flagged = true;
              callee_desc = ev.callee;
            }
          }
        }
        if (flagged) {
          violations->push_back(
              {file.path, ev.line + 1, "must-use",
               "result of '" + callee_desc +
                   "' (Status/Result) is ignored — check it, propagate it, "
                   "or (void)-cast it with a justification comment"});
        }
      }
    }
  }
}

/// Pass 4: layering over the #include graph.
inline void LayeringPass(const Model& model, const AnalyzeOptions& options,
                         std::vector<Violation>* violations) {
  std::map<std::string, size_t> level;  // dir prefix -> layer index
  for (size_t i = 0; i < options.layers.size(); ++i) {
    for (const std::string& dir : options.layers[i]) level[dir] = i;
  }
  const auto dir_of = [](const std::string& path) -> std::string {
    // "src/common/x.h" -> "src/common"; "tools/x.cc" -> "tools".
    const size_t first = path.find('/');
    if (first == std::string::npos) return path;
    if (path.compare(0, 4, "src/") == 0) {
      const size_t second = path.find('/', first + 1);
      return second == std::string::npos ? path : path.substr(0, second);
    }
    return path.substr(0, first);
  };
  const auto layer_name = [&](size_t idx) {
    std::string out;
    for (const std::string& dir : options.layers[idx]) {
      if (!out.empty()) out += "/";
      out += dir;
    }
    return out;
  };
  for (const FileModel& file : model.files) {
    const std::string from_dir = dir_of(file.path);
    const auto from_it = level.find(from_dir);
    if (from_it == level.end()) {
      violations->push_back(
          {file.path, 1, "layer-unknown",
           "directory '" + from_dir +
               "' is not declared in tools/layer_dag.txt — add it to a "
               "layer before adding code there"});
      continue;
    }
    for (const IncludeEdge& inc : file.includes) {
      // Only repo-internal quoted includes participate.
      if (inc.target.find('/') == std::string::npos) continue;
      const std::string to_dir = dir_of(inc.target);
      const auto to_it = level.find(to_dir);
      if (to_it == level.end()) {
        if (inc.target.rfind("src/", 0) == 0) {
          violations->push_back(
              {file.path, inc.line + 1, "layer-unknown",
               "include of '" + inc.target + "': directory '" + to_dir +
                   "' is not declared in tools/layer_dag.txt"});
        }
        continue;
      }
      if (to_it->second > from_it->second) {
        violations->push_back(
            {file.path, inc.line + 1, "layer-back-edge",
             "'" + from_dir + "' (layer " + layer_name(from_it->second) +
                 ") may not include '" + inc.target + "' (layer " +
                 layer_name(to_it->second) +
                 "): back-edge in the declared layer DAG"});
      }
    }
  }
}

// ---------------------------------------------------------------- driver

struct AnalyzeResult {
  std::vector<Violation> violations;
  std::vector<LockEdge> lock_edges;  // observed acquisition-order graph
};

inline AnalyzeResult Analyze(const Model& model,
                             const AnalyzeOptions& options) {
  AnalyzeResult result;
  LockOrderPass(model, options, &result.violations, &result.lock_edges);
  PinEscapePass(model, &result.violations);
  MustUsePass(model, &result.violations);
  LayeringPass(model, options, &result.violations);
  std::sort(result.violations.begin(), result.violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return result;
}

/// Parses tools/lock_hierarchy.txt: one canonical lock name per line,
/// `#` comments and blank lines ignored, outermost lock first.
inline std::vector<std::string> ParseLockHierarchy(
    const std::string& content) {
  std::vector<std::string> out;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const size_t e = line.find_last_not_of(" \t\r");
    out.push_back(line.substr(b, e - b + 1));
  }
  return out;
}

/// Parses tools/layer_dag.txt: `layer <dir> [<dir>...]` lines, one per
/// level, bottom-up; `#` comments and blank lines ignored.
inline std::vector<std::vector<std::string>> ParseLayerDag(
    const std::string& content) {
  std::vector<std::vector<std::string>> out;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream fields(line);
    std::string word;
    if (!(fields >> word) || word != "layer") continue;
    std::vector<std::string> dirs;
    while (fields >> word) dirs.push_back(word);
    if (!dirs.empty()) out.push_back(dirs);
  }
  return out;
}

/// Collects the analyzable sources under `root` (same sweep as
/// spc_lint: src/, tools/, examples/, bench/), builds the model, loads
/// the two config files, and runs all passes. On config/IO failure
/// `*error` is set and the (empty) result returned.
inline AnalyzeResult AnalyzeTree(const std::filesystem::path& root,
                                 std::string* error) {
  AnalyzeResult empty;
  error->clear();

  AnalyzeOptions options;
  {
    std::string content;
    if (!ReadFile(root / "tools/lock_hierarchy.txt", &content)) {
      *error = "cannot read tools/lock_hierarchy.txt under " + root.string();
      return empty;
    }
    options.lock_hierarchy = ParseLockHierarchy(content);
    if (!ReadFile(root / "tools/layer_dag.txt", &content)) {
      *error = "cannot read tools/layer_dag.txt under " + root.string();
      return empty;
    }
    options.layers = ParseLayerDag(content);
    if (options.layers.empty()) {
      *error = "no `layer` lines parsed from tools/layer_dag.txt";
      return empty;
    }
  }

  static constexpr std::string_view kScannedDirs[] = {"src", "tools",
                                                      "examples", "bench"};
  std::vector<std::filesystem::path> paths;
  for (const std::string_view dir : kScannedDirs) {
    const std::filesystem::path base = root / dir;
    if (!std::filesystem::is_directory(base)) continue;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp") {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<std::pair<std::string, std::string>> path_contents;
  for (const std::filesystem::path& path : paths) {
    std::string content;
    if (!ReadFile(path, &content)) {
      *error = "cannot read " + path.string();
      return empty;
    }
    path_contents.emplace_back(
        std::filesystem::relative(path, root).generic_string(),
        std::move(content));
  }

  const Model model = BuildModel(path_contents);
  return Analyze(model, options);
}

/// Machine-readable report for the CI failure artifact.
inline std::string ReportJson(const AnalyzeResult& result) {
  const auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    return out;
  };
  std::ostringstream out;
  out << "{\"schema_version\":1,\"tool\":\"spc_analyze\",\"violations\":[";
  for (size_t i = 0; i < result.violations.size(); ++i) {
    const Violation& v = result.violations[i];
    if (i != 0) out << ",";
    out << "{\"file\":\"" << escape(v.file) << "\",\"line\":" << v.line
        << ",\"rule\":\"" << escape(v.rule) << "\",\"message\":\""
        << escape(v.message) << "\"}";
  }
  out << "],\"lock_graph\":{\"edges\":[";
  for (size_t i = 0; i < result.lock_edges.size(); ++i) {
    const LockEdge& e = result.lock_edges[i];
    if (i != 0) out << ",";
    out << "{\"from\":\"" << escape(e.from) << "\",\"to\":\"" << escape(e.to)
        << "\",\"file\":\"" << escape(e.file) << "\",\"line\":" << e.line + 1
        << "}";
  }
  out << "]}}\n";
  return out.str();
}

}  // namespace spcanalyze

#endif  // PSPC_TOOLS_ANALYZE_PASSES_H_
