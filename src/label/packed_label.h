#ifndef PSPC_SRC_LABEL_PACKED_LABEL_H_
#define PSPC_SRC_LABEL_PACKED_LABEL_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "src/common/types.h"
#include "src/label/label_entry.h"

/// Compressed, read-optimized per-vertex label blocks — the
/// memory-bandwidth half of the serving query path.
///
/// At serving rates the 2-hop query kernel is limited by bytes moved,
/// not instructions: every query streams two whole label lists through
/// the sorted merge, and a raw `LabelEntry` costs 16 bytes (4 rank +
/// 2 dist + padding + 8 count) of which the common case needs three or
/// four. A packed block stores the same list in ~4-6 bytes/entry:
///
///   block := u32 num_entries
///            u32 block_bytes                  (whole block, header incl.)
///            skip[ceil(n/8)] of { u32 first_rank, u32 payload_offset }
///            payload: one group per 8 entries
///   group := u8 descriptor
///              bits 0-1: rank-delta lane  (0,1,2 -> 1,2,4 bytes)
///              bit  2:   dist lane        (0,1   -> 1,2 bytes)
///              bits 3-4: count lane       (0..3  -> 1,2,4,8 bytes)
///            (k-1) rank deltas   (rank[i] - rank[i-1]; ranks are
///                                 strictly increasing, the first rank
///                                 of the group lives in the skip slot)
///            k dists, k counts   (little-endian, lane-wide)
///
/// Lanes are sized to the widest value in the group, so a rank gap
/// wider than a byte promotes only its own group to the 2- or 4-byte
/// delta lane, and the 8-byte count lane is the escape hatch that
/// keeps saturated counts (`kSaturatedCount`) exact — encode/decode
/// round-trips every legal label bit-for-bit. The per-group skip
/// header keeps `FindHubEntry`-style point lookups sublinear (binary
/// search the skip slots, decode one group) and lets the merge kernel
/// (label_merge_simd.h) gallop over whole groups without decoding
/// them.
namespace pspc {

inline constexpr uint32_t kPackedGroupSize = 8;

/// One decoded group in SoA form — the unit the vectorized merge
/// kernel consumes (adjacent ranks SIMD-compare directly).
struct PackedGroup {
  uint32_t n = 0;
  uint32_t ranks[kPackedGroupSize];
  uint16_t dists[kPackedGroupSize];
  Count counts[kPackedGroupSize];
};

/// Encodes `entries` (rank-sorted) as one packed block appended to
/// `out`. Returns the encoded size in bytes.
size_t AppendPackedBlock(std::span<const LabelEntry> entries,
                         std::vector<uint8_t>* out);

/// Non-owning view of one packed block. Default-constructed views are
/// invalid (`data() == nullptr`) and read as empty.
class PackedBlockView {
 public:
  PackedBlockView() = default;
  explicit PackedBlockView(const uint8_t* data) : data_(data) {}

  const uint8_t* data() const { return data_; }
  bool valid() const { return data_ != nullptr; }

  uint32_t NumEntries() const { return data_ == nullptr ? 0 : LoadU32(0); }

  /// Whole-block footprint in bytes (header + skip table + payload) —
  /// what a query actually streams for this side of the merge.
  size_t SizeBytes() const { return data_ == nullptr ? 0 : LoadU32(4); }

  uint32_t NumGroups() const {
    return (NumEntries() + kPackedGroupSize - 1) / kPackedGroupSize;
  }

  /// Hub rank of group `g`'s first entry, straight from the skip slot
  /// — no payload decode.
  uint32_t GroupFirstRank(uint32_t g) const { return LoadU32(8 + 8 * g); }

  /// Decodes group `g` into SoA form.
  void DecodeGroup(uint32_t g, PackedGroup* out) const;

  /// `(dist, count)` of `hub_rank`, or `found == false`. Binary search
  /// over the skip table plus one group decode — sublinear in the
  /// label size, mirroring `FindHubEntry`.
  bool FindHub(Rank hub_rank, Distance* dist, Count* count) const;

  /// Appends the decoded entries (rank-sorted) to `out`.
  void DecodeAll(std::vector<LabelEntry>* out) const;

 private:
  uint32_t LoadU32(size_t at) const {
    uint32_t v;
    std::memcpy(&v, data_ + at, sizeof(v));
    return v;
  }

  const uint8_t* data_ = nullptr;
};

/// Immutable packed mirror of a whole label table — the read-optimized
/// twin of `BaseLabelMap`. One contiguous byte arena plus per-vertex
/// offsets; `Block(v)` is O(1). Built from a raw CSR view (`Encode`)
/// or assembled vertex-by-vertex (`Builder`, the compaction fold
/// path).
class PackedLabelMap {
 public:
  PackedLabelMap() = default;

  /// Packs every label list of `base`. Round-trip exact.
  static PackedLabelMap Encode(const BaseLabelMap& base);

  /// Incremental assembly in vertex order (0, 1, ..., n-1); defined
  /// after the class (it holds a map by value).
  class Builder;

  VertexId NumVertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  PackedBlockView Block(VertexId v) const {
    return PackedBlockView(bytes_.data() + offsets_[v]);
  }

  /// Arena + offsets footprint — the packed counterpart of
  /// `SpcIndex::SizeBytes`.
  size_t SizeBytes() const {
    return bytes_.size() + offsets_.size() * sizeof(uint64_t);
  }

  size_t TotalEntries() const { return total_entries_; }

 private:
  std::vector<uint64_t> offsets_;  // n + 1
  std::vector<uint8_t> bytes_;
  size_t total_entries_ = 0;
};

class PackedLabelMap::Builder {
 public:
  explicit Builder(VertexId num_vertices);
  void Add(std::span<const LabelEntry> entries);
  PackedLabelMap Finish();

 private:
  PackedLabelMap map_;
};

}  // namespace pspc

#endif  // PSPC_SRC_LABEL_PACKED_LABEL_H_
