#ifndef PSPC_SRC_OBS_METRIC_NAMES_H_
#define PSPC_SRC_OBS_METRIC_NAMES_H_

#include <cstddef>
#include <span>
#include <string_view>

/// The process metric catalog: every name the instrumented subsystems
/// register, in one place, so the instrumentation sites, the schema
/// checker (tools/metrics_schema_check.cc), the tests, and the README
/// catalog can never drift apart. A metrics snapshot that contains a
/// name absent from this header — or a serving/dynamic run whose
/// snapshot is missing one of the required names below — fails the CI
/// schema check.
///
/// Naming: `<subsystem>.<what>[_total|_us|...]`. `_total` = monotonic
/// counter; `_us` = microsecond latency histogram; bare gauges carry a
/// point-in-time value. The Prometheus rendering prefixes `pspc_` and
/// rewrites `.` to `_`.
namespace pspc {
namespace obs {

/// Version stamped into every `MetricsRegistry::ToJson` snapshot; bump
/// when the snapshot layout (not the metric set) changes shape.
inline constexpr int kMetricsSchemaVersion = 1;

// ------------------------------------------------------ serving layer
inline constexpr char kServeQueriesTotal[] = "serve.queries_total";
inline constexpr char kServeMicroBatchesTotal[] = "serve.micro_batches_total";
inline constexpr char kServeCacheHitsTotal[] = "serve.cache_hits_total";
inline constexpr char kServeCacheMissesTotal[] = "serve.cache_misses_total";
inline constexpr char kServeUpdatesAppliedTotal[] =
    "serve.updates_applied_total";
inline constexpr char kServeGenerationsPublishedTotal[] =
    "serve.generations_published_total";
inline constexpr char kServeSnapshotsReclaimedTotal[] =
    "serve.snapshots_reclaimed_total";
inline constexpr char kServePublishCopiedVerticesTotal[] =
    "serve.publish_copied_vertices_total";
inline constexpr char kServeEpochOverflowPinsTotal[] =
    "serve.epoch_overflow_pins_total";
inline constexpr char kServeTracesSampledTotal[] =
    "serve.traces_sampled_total";
inline constexpr char kServeTracesSlowTotal[] = "serve.traces_slow_total";
inline constexpr char kServeLabelBytesMergedTotal[] =
    "serve.label_bytes.merged_total";
inline constexpr char kServeCompactionStepsTotal[] =
    "serve.compaction.steps_total";
inline constexpr char kServeCompactionChunksPackedTotal[] =
    "serve.compaction.chunks_packed_total";
inline constexpr char kServeCompactionFoldsTotal[] =
    "serve.compaction.folds_total";
inline constexpr char kServeCompactionEntriesPrunedTotal[] =
    "serve.compaction.entries_pruned_total";

inline constexpr char kServePublishedGeneration[] =
    "serve.published_generation";
inline constexpr char kServeSnapshotsRetiredPending[] =
    "serve.snapshots_retired_pending";
inline constexpr char kServePublishCopiedVerticesLast[] =
    "serve.publish_copied_vertices_last";
inline constexpr char kServeActiveReaders[] = "serve.active_readers";
inline constexpr char kServeQueueDepth[] = "serve.queue_depth";
inline constexpr char kServeQueueCapacity[] = "serve.queue_capacity";

inline constexpr char kServeQueryLatencyUs[] = "serve.query_latency_us";
inline constexpr char kServeQueryLatencyCacheHitUs[] =
    "serve.query_latency_cache_hit_us";
inline constexpr char kServeQueryLatencyMergeUs[] =
    "serve.query_latency_merge_us";
inline constexpr char kServeQueueWaitUs[] = "serve.queue_wait_us";
inline constexpr char kServeMicroBatchSize[] = "serve.micro_batch_size";
inline constexpr char kServeUpdateLatencyUs[] = "serve.update_latency_us";
inline constexpr char kServePublishUs[] = "serve.publish_us";
inline constexpr char kServePublishCopiedVertices[] =
    "serve.publish_copied_vertices";
inline constexpr char kServeReaderPinUs[] = "serve.reader_pin_us";
inline constexpr char kServeLabelBytesPerQuery[] =
    "serve.label_bytes.per_query";
inline constexpr char kServeCompactionStepUs[] = "serve.compaction.step_us";

// ------------------------------------------------------ dynamic layer
inline constexpr char kDynamicInsertionsAppliedTotal[] =
    "dynamic.insertions_applied_total";
inline constexpr char kDynamicDeletionsAppliedTotal[] =
    "dynamic.deletions_applied_total";
inline constexpr char kDynamicBatchesAppliedTotal[] =
    "dynamic.batches_applied_total";
inline constexpr char kDynamicUpdatesCoalescedTotal[] =
    "dynamic.updates_coalesced_total";
inline constexpr char kDynamicResumedBfsRunsTotal[] =
    "dynamic.resumed_bfs_runs_total";
inline constexpr char kDynamicFullHubRepairsTotal[] =
    "dynamic.full_hub_repairs_total";
inline constexpr char kDynamicSubtractRepairsTotal[] =
    "dynamic.subtract_repairs_total";
inline constexpr char kDynamicEntriesInsertedTotal[] =
    "dynamic.entries_inserted_total";
inline constexpr char kDynamicEntriesRenewedTotal[] =
    "dynamic.entries_renewed_total";
inline constexpr char kDynamicEntriesErasedTotal[] =
    "dynamic.entries_erased_total";
inline constexpr char kDynamicParallelWavesTotal[] =
    "dynamic.parallel_waves_total";
inline constexpr char kDynamicParallelHubRunsTotal[] =
    "dynamic.parallel_hub_runs_total";
inline constexpr char kDynamicDeferredHubRunsTotal[] =
    "dynamic.deferred_hub_runs_total";
inline constexpr char kDynamicRebuildsTotal[] = "dynamic.rebuilds_total";

inline constexpr char kDynamicGeneration[] = "dynamic.generation";
inline constexpr char kDynamicOverlayEntries[] = "dynamic.overlay_entries";
inline constexpr char kDynamicOverlayVertices[] = "dynamic.overlay_vertices";
inline constexpr char kDynamicBaseEntries[] = "dynamic.base_entries";
inline constexpr char kDynamicRebuildInProgress[] =
    "dynamic.rebuild_in_progress";

// --------------------------------------------------------- ops plane
inline constexpr char kObsHealthStatus[] = "obs.health_status";
inline constexpr char kObsHealthTransitionsTotal[] =
    "obs.health_transitions_total";

inline constexpr char kDynamicPlanUs[] = "dynamic.plan_us";
inline constexpr char kDynamicRepairUs[] = "dynamic.repair_us";
inline constexpr char kDynamicRebuildUs[] = "dynamic.rebuild_us";

// ----------------------------------------------------------- catalogs
inline constexpr std::string_view kCounterNames[] = {
    kServeQueriesTotal,
    kServeMicroBatchesTotal,
    kServeCacheHitsTotal,
    kServeCacheMissesTotal,
    kServeUpdatesAppliedTotal,
    kServeGenerationsPublishedTotal,
    kServeSnapshotsReclaimedTotal,
    kServePublishCopiedVerticesTotal,
    kServeEpochOverflowPinsTotal,
    kServeTracesSampledTotal,
    kServeTracesSlowTotal,
    kServeLabelBytesMergedTotal,
    kServeCompactionStepsTotal,
    kServeCompactionChunksPackedTotal,
    kServeCompactionFoldsTotal,
    kServeCompactionEntriesPrunedTotal,
    kDynamicInsertionsAppliedTotal,
    kDynamicDeletionsAppliedTotal,
    kDynamicBatchesAppliedTotal,
    kDynamicUpdatesCoalescedTotal,
    kDynamicResumedBfsRunsTotal,
    kDynamicFullHubRepairsTotal,
    kDynamicSubtractRepairsTotal,
    kDynamicEntriesInsertedTotal,
    kDynamicEntriesRenewedTotal,
    kDynamicEntriesErasedTotal,
    kDynamicParallelWavesTotal,
    kDynamicParallelHubRunsTotal,
    kDynamicDeferredHubRunsTotal,
    kDynamicRebuildsTotal,
    kObsHealthTransitionsTotal,
};

inline constexpr std::string_view kGaugeNames[] = {
    kServePublishedGeneration,
    kServeSnapshotsRetiredPending,
    kServePublishCopiedVerticesLast,
    kServeActiveReaders,
    kServeQueueDepth,
    kServeQueueCapacity,
    kDynamicGeneration,
    kDynamicOverlayEntries,
    kDynamicOverlayVertices,
    kDynamicBaseEntries,
    kDynamicRebuildInProgress,
    kObsHealthStatus,
};

inline constexpr std::string_view kHistogramNames[] = {
    kServeQueryLatencyUs,
    kServeQueryLatencyCacheHitUs,
    kServeQueryLatencyMergeUs,
    kServeQueueWaitUs,
    kServeMicroBatchSize,
    kServeUpdateLatencyUs,
    kServePublishUs,
    kServePublishCopiedVertices,
    kServeReaderPinUs,
    kServeLabelBytesPerQuery,
    kServeCompactionStepUs,
    kDynamicPlanUs,
    kDynamicRepairUs,
    kDynamicRebuildUs,
};

/// Names a `spc_cli serve --metrics-json` snapshot must contain (the
/// acceptance bar: query latency, queue wait, publish cost, cache hit
/// rate, plus the counters the engine's own ServingCounters report).
inline constexpr std::string_view kRequiredServeMetrics[] = {
    kServeQueriesTotal,
    kServeMicroBatchesTotal,
    kServeCacheHitsTotal,
    kServeCacheMissesTotal,
    kServeUpdatesAppliedTotal,
    kServeGenerationsPublishedTotal,
    kServePublishCopiedVerticesTotal,
    kServePublishedGeneration,
    kServeQueryLatencyUs,
    kServeQueueWaitUs,
    kServeMicroBatchSize,
    kServePublishUs,
    kServePublishCopiedVertices,
    kServeReaderPinUs,
    kServeLabelBytesMergedTotal,
    kServeLabelBytesPerQuery,
    kServeCompactionStepsTotal,
};

/// Names any run that applied updates through a dynamic index must
/// contain.
inline constexpr std::string_view kRequiredDynamicMetrics[] = {
    kDynamicInsertionsAppliedTotal,
    kDynamicDeletionsAppliedTotal,
    kDynamicBatchesAppliedTotal,
    kDynamicGeneration,
    kDynamicOverlayEntries,
    kDynamicRepairUs,
};

/// True iff `name` appears in any of the three catalogs above.
inline bool IsKnownMetricName(std::string_view name) {
  for (const auto known : kCounterNames) {
    if (name == known) return true;
  }
  for (const auto known : kGaugeNames) {
    if (name == known) return true;
  }
  for (const auto known : kHistogramNames) {
    if (name == known) return true;
  }
  return false;
}

}  // namespace obs
}  // namespace pspc

#endif  // PSPC_SRC_OBS_METRIC_NAMES_H_
