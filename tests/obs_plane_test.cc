// Ops-plane units: the flight recorder's seqlock ring against an
// unbounded oracle (wraparound keeps exactly the newest events, in
// order), the health watchdog's rule engine driven by synthetic
// registry states (fire, escalate, recover), the Prometheus
// text-exposition validator, and the introspection server's routing
// goldens via Handle() — no sockets here; the live-HTTP and
// fault-injection coverage lives in serving_ops_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/health.h"
#include "src/obs/metric_names.h"
#include "src/obs/metrics.h"
#include "src/obs/obs_server.h"
#include "src/obs/prom_validate.h"
#include "src/obs/trace.h"

namespace pspc {
namespace obs {
namespace {

// ------------------------------------------------------ flight recorder

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(0).Capacity(), 8u);
  EXPECT_EQ(FlightRecorder(8).Capacity(), 8u);
  EXPECT_EQ(FlightRecorder(9).Capacity(), 16u);
  EXPECT_EQ(FlightRecorder(100).Capacity(), 128u);
}

TEST(FlightRecorderTest, WraparoundKeepsNewestEventsAgainstOracle) {
  FlightRecorder recorder(8);
  ASSERT_EQ(recorder.Capacity(), 8u);

  // Oracle: an unbounded log of everything emitted. The ring must hold
  // exactly the newest `capacity` entries of it, oldest first.
  struct OracleEvent {
    FlightEventKind kind;
    uint64_t a0, a1;
  };
  std::vector<OracleEvent> oracle;
  const FlightEventKind kinds[] = {
      FlightEventKind::kPublish, FlightEventKind::kReclaim,
      FlightEventKind::kBatchApply, FlightEventKind::kQueueHighWater};
  for (uint64_t i = 0; i < 100; ++i) {
    const FlightEventKind kind = kinds[i % 4];
    recorder.Record(kind, i, i * 7);
    oracle.push_back({kind, i, i * 7});
  }

  EXPECT_EQ(recorder.EventsRecorded(), 100u);
  const std::vector<FlightEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    const uint64_t seq = 100 - 8 + i;  // newest 8, oldest first
    EXPECT_EQ(events[i].seq, seq);
    EXPECT_EQ(events[i].kind, oracle[seq].kind);
    EXPECT_EQ(events[i].args[0], oracle[seq].a0);
    EXPECT_EQ(events[i].args[1], oracle[seq].a1);
    EXPECT_GT(events[i].ns, 0);
    if (i > 0) {
      EXPECT_GT(events[i].seq, events[i - 1].seq);
    }
  }
}

TEST(FlightRecorderTest, ReaderBelowCapacitySeesEverything) {
  FlightRecorder recorder(64);
  recorder.Record(FlightEventKind::kRebuildStart, 1, 2);
  recorder.Record(FlightEventKind::kRebuildEnd, 3, 4, 5);
  const std::vector<FlightEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kRebuildStart);
  EXPECT_EQ(events[1].kind, FlightEventKind::kRebuildEnd);
  EXPECT_EQ(events[1].args[2], 5u);
}

// Writers on several threads plus a reader polling mid-write: the
// seqlock must never surface a torn slot (every event the reader sees
// is internally consistent with the writer that committed it), and the
// final drain must reproduce the newest-capacity window exactly. The
// TSan job runs this file.
TEST(FlightRecorderTest, ConcurrentWritersAndReaderStayConsistent) {
  FlightRecorder recorder(32);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 2000;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    // relaxed: stop/progress flag only; thread join is the sync point.
    while (!stop.load(std::memory_order_relaxed)) {
      for (const FlightEvent& event : recorder.Events()) {
        // Writers encode thread (args[0]) and iteration (args[1]);
        // a torn slot would break the args[1] == 3 * args[2] invariant.
        EXPECT_EQ(event.kind, FlightEventKind::kBatchApply);
        EXPECT_LT(event.args[0], static_cast<uint64_t>(kThreads));
        EXPECT_EQ(event.args[1], 3 * event.args[2]);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        recorder.Record(FlightEventKind::kBatchApply,
                        static_cast<uint64_t>(t), 3 * i, i);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  // relaxed: stop/progress flag only; thread join is the sync point.
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(recorder.EventsRecorded(), kThreads * kPerThread);
  const std::vector<FlightEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), recorder.Capacity());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
  // Quiesced: the ring holds exactly the final capacity-sized window.
  EXPECT_EQ(events.front().seq,
            kThreads * kPerThread - recorder.Capacity());
  EXPECT_EQ(events.back().seq, kThreads * kPerThread - 1);
}

TEST(FlightRecorderTest, JsonCarriesNamedKindsAndArgs) {
  FlightRecorder recorder(8);
  recorder.Record(FlightEventKind::kEpochOverflowPin, 2, 9);
  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"capacity\":8"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("epoch_overflow_pin"), std::string::npos);
}

// ------------------------------------------------------ health watchdog

// All watchdog tests run with interval_ms = 0 (no thread) and drive
// Evaluate() manually against a private registry, so every rule input
// is a synthetic state the test fully controls.
HealthOptions ManualOptions(MetricsRegistry* registry,
                            FlightRecorder* recorder) {
  HealthOptions options;
  options.metrics = registry;
  options.recorder = recorder;
  options.interval_ms = 0;
  return options;
}

TEST(HealthWatchdogTest, AllQuietReportsOk) {
  MetricsRegistry registry;
  FlightRecorder recorder(16);
  HealthWatchdog watchdog(ManualOptions(&registry, &recorder));

  const HealthReport report = watchdog.Evaluate();
  EXPECT_EQ(report.status, HealthStatus::kOk);
  EXPECT_EQ(report.worst_rule, HealthRuleId::kNone);
  EXPECT_EQ(report.reason, "ok");
  EXPECT_EQ(report.tick, 1u);
  EXPECT_EQ(report.rules.size(), 5u);
  EXPECT_EQ(watchdog.Transitions(), 0u);
  EXPECT_EQ(registry.GetGauge(kObsHealthStatus)->Value(), 0);
}

TEST(HealthWatchdogTest, QueueSaturationEscalatesThenRecovers) {
  MetricsRegistry registry;
  FlightRecorder recorder(16);
  HealthWatchdog watchdog(ManualOptions(&registry, &recorder));
  Gauge* depth = registry.GetGauge(kServeQueueDepth);
  Gauge* capacity = registry.GetGauge(kServeQueueCapacity);
  capacity->Set(100);

  // Above the degraded bar (0.75) but below unhealthy (0.95).
  depth->Set(80);
  HealthReport report = watchdog.Evaluate();
  EXPECT_EQ(report.status, HealthStatus::kDegraded);
  EXPECT_EQ(report.worst_rule, HealthRuleId::kQueueSaturation);
  EXPECT_NE(report.reason.find("queue_saturation"), std::string::npos);

  // Above the unhealthy bar, but only persistence (3 ticks) makes it
  // UNHEALTHY.
  depth->Set(96);
  EXPECT_EQ(watchdog.Evaluate().status, HealthStatus::kDegraded);
  report = watchdog.Evaluate();  // queue_ticks_ reaches 3
  EXPECT_EQ(report.status, HealthStatus::kUnhealthy);
  EXPECT_EQ(report.worst_rule, HealthRuleId::kQueueSaturation);
  EXPECT_EQ(registry.GetGauge(kObsHealthStatus)->Value(), 2);

  // Recovery resets the consecutive-tick counter.
  depth->Set(0);
  report = watchdog.Evaluate();
  EXPECT_EQ(report.status, HealthStatus::kOk);
  EXPECT_EQ(report.rules[0].firing_ticks, 0u);
  // OK -> DEGRADED -> UNHEALTHY -> OK: three transitions, mirrored in
  // the registry counter and announced to the flight recorder.
  EXPECT_EQ(watchdog.Transitions(), 3u);
  EXPECT_EQ(registry.GetCounter(kObsHealthTransitionsTotal)->Value(), 3u);
  size_t transitions_seen = 0;
  for (const FlightEvent& event : recorder.Events()) {
    if (event.kind == FlightEventKind::kHealthTransition) {
      ++transitions_seen;
    }
  }
  EXPECT_EQ(transitions_seen, 3u);
}

TEST(HealthWatchdogTest, ReclaimBacklogNeedsGrowthAboveFloor) {
  MetricsRegistry registry;
  FlightRecorder recorder(16);
  HealthWatchdog watchdog(ManualOptions(&registry, &recorder));
  Gauge* retired = registry.GetGauge(kServeSnapshotsRetiredPending);

  // Growth below the floor (4) never fires.
  retired->Set(1);
  watchdog.Evaluate();
  retired->Set(2);
  EXPECT_EQ(watchdog.Evaluate().status, HealthStatus::kOk);

  // Sustained growth above the floor: DEGRADED at 2 consecutive growth
  // ticks, UNHEALTHY at 4.
  retired->Set(5);
  EXPECT_EQ(watchdog.Evaluate().status, HealthStatus::kOk);
  retired->Set(6);
  HealthReport report = watchdog.Evaluate();
  EXPECT_EQ(report.status, HealthStatus::kDegraded);
  EXPECT_EQ(report.worst_rule, HealthRuleId::kReclaimBacklog);
  retired->Set(7);
  watchdog.Evaluate();
  retired->Set(8);
  report = watchdog.Evaluate();
  EXPECT_EQ(report.status, HealthStatus::kUnhealthy);
  EXPECT_NE(report.reason.find("reclaim_backlog"), std::string::npos);

  // The UNHEALTHY transition produced a diagnostic bundle.
  const std::string bundle = watchdog.LastBundle();
  EXPECT_NE(bundle.find("\"bundle_version\":1"), std::string::npos);
  EXPECT_NE(bundle.find("reclaim_backlog"), std::string::npos);
  EXPECT_NE(bundle.find("\"flight_recorder\""), std::string::npos);

  // A flat backlog (reclaim caught up or pin released) recovers.
  report = watchdog.Evaluate();
  EXPECT_EQ(report.status, HealthStatus::kOk);
  EXPECT_EQ(report.rules[1].firing_ticks, 0u);
}

TEST(HealthWatchdogTest, EpochOverflowFiresOnSustainedPinning) {
  MetricsRegistry registry;
  FlightRecorder recorder(16);
  HealthWatchdog watchdog(ManualOptions(&registry, &recorder));
  Counter* overflow = registry.GetCounter(kServeEpochOverflowPinsTotal);

  watchdog.Evaluate();  // baseline
  overflow->Increment();
  EXPECT_EQ(watchdog.Evaluate().status, HealthStatus::kOk);  // tick 1
  overflow->Increment();
  HealthReport report = watchdog.Evaluate();  // tick 2: degraded bar
  EXPECT_EQ(report.status, HealthStatus::kDegraded);
  EXPECT_EQ(report.worst_rule, HealthRuleId::kEpochOverflow);
  for (int i = 0; i < 3; ++i) {
    overflow->Increment();
    report = watchdog.Evaluate();
  }
  EXPECT_EQ(report.status, HealthStatus::kUnhealthy);  // tick 5
  // Total flat again: recovered.
  EXPECT_EQ(watchdog.Evaluate().status, HealthStatus::kOk);
}

TEST(HealthWatchdogTest, PublishStallFiresWhenUpdatesOutrunPublishes) {
  MetricsRegistry registry;
  FlightRecorder recorder(16);
  HealthWatchdog watchdog(ManualOptions(&registry, &recorder));
  Counter* applied = registry.GetCounter(kServeUpdatesAppliedTotal);
  Counter* published = registry.GetCounter(kServeGenerationsPublishedTotal);

  watchdog.Evaluate();  // baseline
  HealthReport report;
  for (int tick = 1; tick <= 6; ++tick) {
    applied->Increment();  // accepted, but nothing publishes
    report = watchdog.Evaluate();
    if (tick < 3) {
      EXPECT_EQ(report.status, HealthStatus::kOk) << "tick " << tick;
    } else if (tick < 6) {
      EXPECT_EQ(report.status, HealthStatus::kDegraded) << "tick " << tick;
      EXPECT_EQ(report.worst_rule, HealthRuleId::kPublishStall);
    }
  }
  EXPECT_EQ(report.status, HealthStatus::kUnhealthy);
  EXPECT_NE(report.reason.find("publish_stall"), std::string::npos);

  // A publish breaking through clears the stall immediately.
  applied->Increment();
  published->Increment();
  EXPECT_EQ(watchdog.Evaluate().status, HealthStatus::kOk);
}

TEST(HealthWatchdogTest, RebuildInProgressIsDegradedOnly) {
  MetricsRegistry registry;
  FlightRecorder recorder(16);
  HealthWatchdog watchdog(ManualOptions(&registry, &recorder));
  Gauge* rebuilding = registry.GetGauge(kDynamicRebuildInProgress);

  rebuilding->Set(1);
  for (int tick = 0; tick < 10; ++tick) {
    const HealthReport report = watchdog.Evaluate();
    EXPECT_EQ(report.status, HealthStatus::kDegraded);
    EXPECT_EQ(report.worst_rule, HealthRuleId::kRebuildInProgress);
  }
  rebuilding->Set(0);
  EXPECT_EQ(watchdog.Evaluate().status, HealthStatus::kOk);
}

TEST(HealthWatchdogTest, UnhealthyTransitionWritesBundleFile) {
  MetricsRegistry registry;
  FlightRecorder recorder(16);
  HealthOptions options = ManualOptions(&registry, &recorder);
  options.bundle_path = ::testing::TempDir() + "/pspc_bundle_test.json";
  HealthWatchdog watchdog(options);

  Gauge* depth = registry.GetGauge(kServeQueueDepth);
  registry.GetGauge(kServeQueueCapacity)->Set(10);
  depth->Set(10);  // 100% full
  for (int tick = 0; tick < 3; ++tick) watchdog.Evaluate();
  ASSERT_EQ(watchdog.Current().status, HealthStatus::kUnhealthy);

  std::ifstream in(options.bundle_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string bundle = buffer.str();
  EXPECT_NE(bundle.find("\"bundle_version\":1"), std::string::npos);
  EXPECT_NE(bundle.find("queue_saturation"), std::string::npos);
  EXPECT_NE(bundle.find("\"metrics\""), std::string::npos);
  EXPECT_EQ(bundle, watchdog.LastBundle() + "\n");
  std::remove(options.bundle_path.c_str());
}

TEST(HealthWatchdogTest, ReportJsonNamesEveryRule) {
  MetricsRegistry registry;
  FlightRecorder recorder(16);
  HealthWatchdog watchdog(ManualOptions(&registry, &recorder));
  const std::string json = watchdog.Evaluate().ToJson();
  for (const char* rule :
       {"queue_saturation", "reclaim_backlog", "epoch_overflow",
        "publish_stall", "rebuild_in_progress"}) {
    EXPECT_NE(json.find(rule), std::string::npos) << rule;
  }
  EXPECT_NE(json.find("\"status\":\"OK\""), std::string::npos);
}

// ------------------------------------------------- Prometheus validator

TEST(PromValidateTest, RegistryExportPassesWithCatalogEnforced) {
  // Populate one metric of each kind using real catalog names, render,
  // validate with the catalog check on — the round trip the live
  // /metrics CI scrape exercises.
  MetricsRegistry registry;
  registry.GetCounter(kServeQueriesTotal)->Increment(5);
  registry.GetGauge(kServeQueueDepth)->Set(3);
  registry.GetHistogram(kServeQueryLatencyUs)->Record(12.0);
  const PromValidationResult result =
      ValidatePrometheusText(registry.ToPrometheusText(),
                             /*require_catalog=*/true);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.families, 3u);
}

TEST(PromValidateTest, CatalogRejectsForeignFamily) {
  const std::string text =
      "# HELP pspc_not_in_catalog whatever\n"
      "# TYPE pspc_not_in_catalog counter\n"
      "pspc_not_in_catalog 1\n";
  EXPECT_TRUE(ValidatePrometheusText(text, false).ok);
  const PromValidationResult result = ValidatePrometheusText(text, true);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("not in the metric catalog"),
            std::string::npos);
}

TEST(PromValidateTest, RejectsStructuralViolations) {
  // HELP without TYPE.
  EXPECT_FALSE(
      ValidatePrometheusText("# HELP pspc_x x\npspc_x 1\n", false).ok);
  // Sample before any declaration.
  EXPECT_FALSE(ValidatePrometheusText("pspc_x 1\n", false).ok);
  // Non-numeric sample value.
  EXPECT_FALSE(ValidatePrometheusText("# HELP pspc_x x\n"
                                      "# TYPE pspc_x gauge\n"
                                      "pspc_x banana\n",
                                      false)
                   .ok);
  // Negative counter.
  EXPECT_FALSE(ValidatePrometheusText("# HELP pspc_x x\n"
                                      "# TYPE pspc_x counter\n"
                                      "pspc_x -1\n",
                                      false)
                   .ok);
  // Duplicate family.
  EXPECT_FALSE(ValidatePrometheusText("# HELP pspc_x x\n"
                                      "# TYPE pspc_x gauge\npspc_x 1\n"
                                      "# HELP pspc_x x\n"
                                      "# TYPE pspc_x gauge\npspc_x 2\n",
                                      false)
                   .ok);
  // Empty exposition.
  EXPECT_FALSE(ValidatePrometheusText("", false).ok);
}

TEST(PromValidateTest, EnforcesHistogramCompleteness) {
  const std::string head =
      "# HELP pspc_h h\n"
      "# TYPE pspc_h histogram\n";
  // Missing +Inf bucket.
  EXPECT_FALSE(ValidatePrometheusText(head +
                                          "pspc_h_bucket{le=\"1\"} 1\n"
                                          "pspc_h_sum 1\npspc_h_count 1\n",
                                      false)
                   .ok);
  // Cumulative counts decreasing.
  EXPECT_FALSE(ValidatePrometheusText(head +
                                          "pspc_h_bucket{le=\"1\"} 2\n"
                                          "pspc_h_bucket{le=\"2\"} 1\n"
                                          "pspc_h_bucket{le=\"+Inf\"} 2\n"
                                          "pspc_h_sum 1\npspc_h_count 2\n",
                                      false)
                   .ok);
  // +Inf disagrees with _count.
  EXPECT_FALSE(ValidatePrometheusText(head +
                                          "pspc_h_bucket{le=\"+Inf\"} 3\n"
                                          "pspc_h_sum 1\npspc_h_count 2\n",
                                      false)
                   .ok);
  // Complete histogram passes.
  const PromValidationResult ok =
      ValidatePrometheusText(head +
                                 "pspc_h_bucket{le=\"1\"} 1\n"
                                 "pspc_h_bucket{le=\"+Inf\"} 2\n"
                                 "pspc_h_sum 3.5\npspc_h_count 2\n",
                             false);
  EXPECT_TRUE(ok.ok) << ok.error;
}

TEST(PromValidateTest, NameMappingPrefixesAndRewritesDots) {
  EXPECT_EQ(PrometheusMetricName("serve.queries_total"),
            "pspc_serve_queries_total");
  EXPECT_EQ(PrometheusMetricName("obs.health_status"),
            "pspc_obs_health_status");
}

// ------------------------------------------------- server route goldens

// Handle() is the routing logic minus the socket; these goldens pin
// status codes, content types, and body shape per route.
class ObsServerRoutesTest : public ::testing::Test {
 protected:
  ObsServerRoutesTest()
      : recorder_(16),
        traces_(8, /*slow_threshold_us=*/0.0),
        watchdog_([this] {
          HealthOptions options;
          options.metrics = &registry_;
          options.recorder = &recorder_;
          options.traces = &traces_;
          options.update_traces = &update_traces_;
          options.interval_ms = 0;
          return options;
        }()),
        server_(0, [this] {
          ObsServerContext context;
          context.metrics = &registry_;
          context.health = &watchdog_;
          context.recorder = &recorder_;
          context.traces = &traces_;
          context.update_traces = &update_traces_;
          context.component = "pspc-test";
          return context;
        }()) {}

  MetricsRegistry registry_;
  FlightRecorder recorder_;
  TraceCollector traces_;
  UpdateTraceLog update_traces_;
  HealthWatchdog watchdog_;
  ObsServer server_;
};

TEST_F(ObsServerRoutesTest, MetricsRouteIsValidPrometheusText) {
  registry_.GetCounter(kServeQueriesTotal)->Increment(2);
  registry_.GetHistogram(kServeQueryLatencyUs)->Record(5.0);
  const ObsServer::Response response = server_.Handle("/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "text/plain; version=0.0.4; charset=utf-8");
  const PromValidationResult result =
      ValidatePrometheusText(response.body, /*require_catalog=*/true);
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_F(ObsServerRoutesTest, MetricsJsonRouteCarriesSchemaVersion) {
  const ObsServer::Response response = server_.Handle("/metrics.json");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  EXPECT_NE(response.body.find("\"schema_version\":1"), std::string::npos);
}

TEST_F(ObsServerRoutesTest, HealthzFollowsTheWatchdog) {
  watchdog_.Evaluate();
  ObsServer::Response response = server_.Handle("/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"status\":\"OK\""), std::string::npos);

  // Saturate the queue until the watchdog flips UNHEALTHY: the route
  // must turn 503 and name the firing rule.
  registry_.GetGauge(kServeQueueCapacity)->Set(10);
  registry_.GetGauge(kServeQueueDepth)->Set(10);
  for (int tick = 0; tick < 3; ++tick) watchdog_.Evaluate();
  response = server_.Handle("/healthz");
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("\"status\":\"UNHEALTHY\""),
            std::string::npos);
  EXPECT_NE(response.body.find("queue_saturation"), std::string::npos);

  // Recovery flips it back to 200.
  registry_.GetGauge(kServeQueueDepth)->Set(0);
  watchdog_.Evaluate();
  response = server_.Handle("/healthz");
  EXPECT_EQ(response.status, 200);
}

TEST_F(ObsServerRoutesTest, HealthzWithoutWatchdogIsOk) {
  ObsServerContext context;
  context.metrics = &registry_;
  const ObsServer server(0, context);
  const ObsServer::Response response = server.Handle("/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("no health watchdog configured"),
            std::string::npos);
}

TEST_F(ObsServerRoutesTest, VarzReportsComponentAndGauges) {
  registry_.GetGauge(kServePublishedGeneration)->Set(7);
  const ObsServer::Response response = server_.Handle("/varz");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"component\":\"pspc-test\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"published_generation\":7"),
            std::string::npos);
  EXPECT_NE(response.body.find("\"schema_version\":1"), std::string::npos);
}

TEST_F(ObsServerRoutesTest, TracezRendersBothTraceLogs) {
  UpdateTrace trace;
  trace.batch_id = 42;
  trace.submitted = 3;
  trace.applied = 2;
  trace.ok = true;
  update_traces_.Record(trace);
  const ObsServer::Response response = server_.Handle("/tracez");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"slow_queries\""), std::string::npos);
  EXPECT_NE(response.body.find("\"update_batches\""), std::string::npos);
  EXPECT_NE(response.body.find("\"batch_id\":42"), std::string::npos);
}

TEST_F(ObsServerRoutesTest, FlightRecorderRouteDumpsTheRing) {
  recorder_.Record(FlightEventKind::kPublish, 1, 2, 3);
  const ObsServer::Response response = server_.Handle("/flightrecorder");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"events\""), std::string::npos);
  EXPECT_NE(response.body.find("publish"), std::string::npos);
}

TEST_F(ObsServerRoutesTest, IndexListsRoutesAndUnknownPathIs404) {
  const ObsServer::Response index = server_.Handle("/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/flightrecorder"), std::string::npos);

  const ObsServer::Response missing = server_.Handle("/nope");
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("unknown path"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace pspc
