#include "src/core/hp_spc_builder.h"

#include <vector>

#include "src/common/logging.h"
#include "src/common/saturating.h"
#include "src/common/timer.h"
#include "src/label/label_entry.h"

namespace pspc {

HpSpcBuildResult BuildHpSpcIndex(const Graph& graph, const VertexOrder& order,
                                 std::span<const Count> vertex_weights) {
  const VertexId n = graph.NumVertices();
  PSPC_CHECK(order.Size() == n);
  PSPC_CHECK(vertex_weights.empty() || vertex_weights.size() == n);
  // Multiplicity of a vertex when it appears as an *internal* vertex of
  // a counted path; 1 in the unweighted case.
  auto mu = [&vertex_weights](VertexId v) -> Count {
    return vertex_weights.empty() ? Count{1} : vertex_weights[v];
  };
  HpSpcBuildResult result;
  WallTimer timer;

  // labels[v] accumulates entries in ascending hub-rank order (hubs are
  // processed by rank), so each list stays sorted by construction.
  std::vector<std::vector<LabelEntry>> labels(n);

  // Scratch reused across hubs; reset via the visited list.
  std::vector<Distance> tmp_dist(n, kInfDistance);  // hub's label, by rank
  std::vector<Distance> bfs_dist(n, kInfDistance);
  std::vector<Count> bfs_count(n, 0);
  std::vector<VertexId> frontier, next_frontier, touched;

  const std::vector<Rank>& rank_of = order.VertexToRank();

  for (Rank r = 0; r < n; ++r) {
    const VertexId h = order.VertexAt(r);
    // Self label: one trough path of length 0.
    labels[h].push_back({r, 0, 1});
    ++result.stats.labels_inserted;

    // Preload the hub's existing labels for 2-hop pruning queries.
    for (const LabelEntry& e : labels[h]) tmp_dist[e.hub_rank] = e.dist;

    bfs_dist[h] = 0;
    bfs_count[h] = 1;
    frontier.assign(1, h);
    touched.assign(1, h);
    Distance d = 0;

    while (!frontier.empty()) {
      ++d;
      next_frontier.clear();
      // Phase 1: expand, accumulating trough-walk counts at level d.
      // When u becomes an internal vertex of the extended path its
      // multiplicity applies; the hub endpoint h itself (d == 1) does
      // not (endpoints are never multiplied).
      for (VertexId u : frontier) {
        const Count factor = (u == h) ? Count{1} : mu(u);
        for (VertexId v : graph.Neighbors(u)) {
          if (rank_of[v] <= r) continue;  // only strictly lower-ranked
          if (bfs_dist[v] == kInfDistance) {
            bfs_dist[v] = d;
            bfs_count[v] = 0;
            next_frontier.push_back(v);
            touched.push_back(v);
          }
          if (bfs_dist[v] == d) {
            bfs_count[v] = SatAdd(bfs_count[v], SatMul(bfs_count[u], factor));
          }
        }
      }
      // Phase 2: prune/label each level-d vertex. Pruning uses only
      // labels of hubs ranked above r, all finalized — Lemma 1's order
      // dependency in action.
      size_t keep = 0;
      for (VertexId v : next_frontier) {
        uint32_t q = kInfDistance;
        for (const LabelEntry& e : labels[v]) {
          const Distance hd = tmp_dist[e.hub_rank];
          if (hd == kInfDistance) continue;
          q = std::min<uint32_t>(q, static_cast<uint32_t>(hd) + e.dist);
          if (q < d) break;
        }
        ++result.stats.candidates_after_merge;
        if (q < d) {
          // Covered strictly shorter: not on any shortest path from h.
          // v stays marked visited (bfs_dist == d) so later levels do
          // not rediscover it, but it is dropped from the frontier.
          ++result.stats.pruned_by_query;
          continue;
        }
        if (q == d) {
          ++result.stats.non_canonical_labels;  // higher apex exists
        } else {
          ++result.stats.canonical_labels;  // h is the unique apex
        }
        labels[v].push_back({r, d, bfs_count[v]});
        ++result.stats.labels_inserted;
        next_frontier[keep++] = v;
      }
      next_frontier.resize(keep);
      frontier.swap(next_frontier);
    }

    // Reset scratch.
    for (const LabelEntry& e : labels[h]) tmp_dist[e.hub_rank] = kInfDistance;
    for (VertexId v : touched) {
      bfs_dist[v] = kInfDistance;
      bfs_count[v] = 0;
    }
    ++result.stats.num_iterations;
  }

  result.stats.construction_seconds = timer.ElapsedSeconds();
  result.stats.total_entries = result.stats.labels_inserted;
  result.index = SpcIndex(order, std::move(labels));
  return result;
}

}  // namespace pspc
