#ifndef PSPC_SRC_ORDER_DEGREE_ORDER_H_
#define PSPC_SRC_ORDER_DEGREE_ORDER_H_

#include "src/graph/graph.h"
#include "src/order/vertex_order.h"

/// Degree-based ordering (paper §III-G, "Degree-Based Scheme"): vertices
/// with larger degree are ranked higher because many shortest paths pass
/// through them. Ties break toward the smaller vertex id so the order is
/// deterministic. O(n log n), embarrassingly cheap — the scheme of
/// choice for social networks.
namespace pspc {

VertexOrder DegreeOrder(const Graph& graph);

}  // namespace pspc

#endif  // PSPC_SRC_ORDER_DEGREE_ORDER_H_
