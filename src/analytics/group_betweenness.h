#ifndef PSPC_SRC_ANALYTICS_GROUP_BETWEENNESS_H_
#define PSPC_SRC_ANALYTICS_GROUP_BETWEENNESS_H_

#include <vector>

#include "src/common/types.h"
#include "src/graph/graph.h"
#include "src/label/spc_index.h"

/// Group betweenness (paper §I, application 1, after Puzis et al.):
/// B(C) = sum over pairs {s,t} of spc_C(s,t) / spc(s,t), where
/// spc_C counts the shortest s-t paths meeting the vertex set C.
///
/// The index supplies d(s,t) and spc(s,t) in microseconds; the paths
/// *avoiding* C are counted by one BFS on G with C's vertices removed
/// (a path avoids C iff it survives in that subgraph at unchanged
/// length), so spc_C = spc - spc_avoid. Exact per pair; the group-level
/// estimate samples pairs exactly like the single-vertex estimator.
namespace pspc {

/// Fraction of shortest s-t paths meeting C, in [0, 1]; 0 when s and t
/// are disconnected. Endpoints inside C count as meeting C.
double GroupPathFraction(const Graph& graph, const SpcIndex& index,
                         const std::vector<VertexId>& group, VertexId s,
                         VertexId t);

/// Exact B(C) over all unordered pairs (O(n^2) BFS-bounded; small
/// graphs / tests).
double GroupBetweennessExact(const Graph& graph, const SpcIndex& index,
                             const std::vector<VertexId>& group);

/// Estimated B(C) from `num_samples` uniform pairs.
double GroupBetweennessSampled(const Graph& graph, const SpcIndex& index,
                               const std::vector<VertexId>& group,
                               size_t num_samples, uint64_t seed);

}  // namespace pspc

#endif  // PSPC_SRC_ANALYTICS_GROUP_BETWEENNESS_H_
