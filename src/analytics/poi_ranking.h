#ifndef PSPC_SRC_ANALYTICS_POI_RANKING_H_
#define PSPC_SRC_ANALYTICS_POI_RANKING_H_

#include <vector>

#include "src/common/types.h"
#include "src/label/spc_index.h"

/// Top-k nearest-neighbor ranking with shortest-path-count tie-breaking
/// (paper §I, application 2): among candidate POIs at the same distance
/// from the query vertex, the one reachable by more shortest routes
/// offers more alternatives around congestion and ranks higher.
namespace pspc {

struct RankedPoi {
  VertexId poi = kInvalidVertex;
  uint32_t distance = kInfSpcDistance;
  Count route_count = 0;

  friend bool operator==(const RankedPoi&, const RankedPoi&) = default;
};

/// Ranks `candidates` from `query`: ascending distance, then descending
/// route count, then ascending id; returns the best `k` (fewer if not
/// enough reachable candidates). Unreachable candidates are dropped.
std::vector<RankedPoi> TopKPoi(const SpcIndex& index, VertexId query,
                               const std::vector<VertexId>& candidates,
                               size_t k);

}  // namespace pspc

#endif  // PSPC_SRC_ANALYTICS_POI_RANKING_H_
