#include "src/serve/index_snapshot.h"

#include "src/common/logging.h"
#include "src/dynamic/dynamic_dspc_index.h"
#include "src/dynamic/dynamic_spc_index.h"
#include "src/label/label_merge.h"

namespace pspc {

std::unique_ptr<const IndexSnapshot> IndexSnapshot::Capture(
    DynamicSpcIndex& index) {
  auto snapshot = std::unique_ptr<IndexSnapshot>(new IndexSnapshot());
  snapshot->base_ = index.SharedBaseIndex();
  snapshot->overlay_ = index.CaptureOverlay();
  snapshot->generation_ = index.Generation();
  snapshot->num_vertices_ = index.NumVertices();
  snapshot->num_edges_ = index.NumEdges();
  return snapshot;
}

std::unique_ptr<const IndexSnapshot> IndexSnapshot::Capture(
    DynamicDspcIndex& index) {
  auto snapshot = std::unique_ptr<IndexSnapshot>(new IndexSnapshot());
  snapshot->directed_base_ = index.SharedBaseIndex();
  snapshot->overlay_ = index.CaptureInOverlay();
  snapshot->out_overlay_ = index.CaptureOutOverlay();
  snapshot->generation_ = index.Generation();
  snapshot->num_vertices_ = index.NumVertices();
  snapshot->num_edges_ = index.NumEdges();
  return snapshot;
}

SpcResult IndexSnapshot::Query(VertexId s, VertexId t) const {
  PSPC_CHECK_MSG(s < num_vertices_ && t < num_vertices_,
                 "query (" << s << "," << t << ") out of range");
  if (s == t) return {0, 1};
  if (IsDirected()) return MergeLabelCounts(OutLabels(s), InLabels(t));
  return MergeLabelCounts(Labels(s), Labels(t));
}

}  // namespace pspc
