#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/random.h"
#include "src/common/saturating.h"
#include "src/common/status.h"
#include "src/common/timer.h"
#include "src/common/types.h"

namespace pspc {
namespace {

// ---------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad vertex");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad vertex");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad vertex");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), Status::Code::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), Status::Code::kCorruption);
  EXPECT_EQ(Status::OutOfRange("x").code(), Status::Code::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), Status::Code::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ------------------------------------------------------ Saturating --

TEST(SaturatingTest, AddWithinRange) {
  EXPECT_EQ(SatAdd(2, 3), 5u);
  EXPECT_EQ(SatAdd(0, 0), 0u);
}

TEST(SaturatingTest, AddSaturates) {
  EXPECT_EQ(SatAdd(kSaturatedCount, 1), kSaturatedCount);
  EXPECT_EQ(SatAdd(kSaturatedCount - 1, 2), kSaturatedCount);
  EXPECT_EQ(SatAdd(kSaturatedCount - 1, 1), kSaturatedCount);
}

TEST(SaturatingTest, MulWithinRange) {
  EXPECT_EQ(SatMul(6, 7), 42u);
  EXPECT_EQ(SatMul(kSaturatedCount, 0), 0u);
  EXPECT_EQ(SatMul(0, kSaturatedCount), 0u);
  EXPECT_EQ(SatMul(kSaturatedCount, 1), kSaturatedCount);
}

TEST(SaturatingTest, MulSaturates) {
  EXPECT_EQ(SatMul(uint64_t{1} << 33, uint64_t{1} << 33), kSaturatedCount);
  EXPECT_EQ(SatMul(kSaturatedCount, 2), kSaturatedCount);
}

TEST(SaturatingTest, AddIsAssociativeUnderClamping) {
  // min(true_sum, MAX) semantics: grouping cannot change the result.
  // This property is what makes parallel count merging order-safe.
  const Count big = kSaturatedCount / 2 + 7;
  EXPECT_EQ(SatAdd(SatAdd(big, big), 5), SatAdd(big, SatAdd(big, 5)));
  EXPECT_EQ(SatAdd(SatAdd(5, big), big), SatAdd(big, SatAdd(big, 5)));
}

// ------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // rough uniformity
}

TEST(RngTest, BernoulliRate) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(42);
  Rng child = parent.Split();
  // Child continues deterministically but differs from the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.Next() == child.Next());
  EXPECT_LT(same, 2);
}

// ------------------------------------------------------------ Timer --

TEST(TimerTest, ElapsedIsMonotone) {
  WallTimer t;
  const double a = t.ElapsedSeconds();
  const double b = t.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(TimerTest, ScopedTimerAccumulates) {
  double sink = 0.0;
  {
    ScopedTimer st(&sink);
  }
  EXPECT_GE(sink, 0.0);
  const double first = sink;
  {
    ScopedTimer st(&sink);
  }
  EXPECT_GE(sink, first);
}

// ------------------------------------------------------------ Types --

TEST(TypesTest, SpcResultDefaultsToUnreachable) {
  SpcResult r;
  EXPECT_EQ(r.distance, kInfSpcDistance);
  EXPECT_EQ(r.count, 0u);
}

TEST(TypesTest, SpcResultEquality) {
  EXPECT_EQ((SpcResult{3, 7}), (SpcResult{3, 7}));
  EXPECT_NE((SpcResult{3, 7}), (SpcResult{3, 8}));
  EXPECT_NE((SpcResult{2, 7}), (SpcResult{3, 7}));
}

}  // namespace
}  // namespace pspc
