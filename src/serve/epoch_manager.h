#ifndef PSPC_SRC_SERVE_EPOCH_MANAGER_H_
#define PSPC_SRC_SERVE_EPOCH_MANAGER_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

/// Epoch-based reclamation for the serving subsystem.
///
/// Readers *pin* the current epoch into a private slot before touching
/// a published pointer and clear the slot when done; the (single)
/// writer advances the global epoch each time it retires a pointer and
/// frees a retired pointer only once every active slot has moved past
/// its retire epoch. The invariant the reclaimer relies on: a reader
/// that still holds a pointer retired at epoch `e` pinned *before* the
/// swap that retired it, so its slot records an epoch `< e` — once
/// `min(active slots) >= e`, nobody can be reading the pointee.
///
/// Readers take no locks and never wait: Enter is one load plus a CAS
/// on a free slot (first-fit from a per-thread hint, so steady-state
/// re-entry is a single CAS), Exit is one store. All cross-thread
/// operations are seq_cst — the slot-scan soundness argument ("if the
/// writer's scan saw the slot empty, the reader's snapshot load
/// happened after the writer's swap") needs a total order, and the
/// cost is irrelevant next to the micro-batch of queries each pin
/// amortizes over.
namespace pspc {

class EpochManager {
 public:
  /// Upper bound on simultaneously pinned readers, not threads: a
  /// thread occupies a slot only between Enter and Exit.
  static constexpr size_t kMaxSlots = 512;

  /// MinActiveEpoch() when no reader is pinned.
  static constexpr uint64_t kNoActiveReader = UINT64_MAX;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  uint64_t CurrentEpoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Pins the calling thread at the current epoch; returns the slot to
  /// pass to Exit. Aborts if kMaxSlots readers are already pinned.
  size_t Enter();

  /// Releases a slot returned by Enter.
  void Exit(size_t slot);

  /// Writer-side: bumps the global epoch; returns the new value (the
  /// retire epoch for a pointer unpublished just before the bump).
  uint64_t AdvanceEpoch();

  /// Smallest epoch any pinned reader entered at, or kNoActiveReader.
  uint64_t MinActiveEpoch() const;

  /// Number of currently pinned slots (diagnostics / shutdown checks).
  size_t ActiveReaders() const;

 private:
  // One cache line per slot so reader pins do not false-share.
  struct alignas(64) Slot {
    std::atomic<uint64_t> value{0};  // 0 = free, else pinned epoch
  };

  std::atomic<uint64_t> epoch_{1};
  std::array<Slot, kMaxSlots> slots_{};
};

}  // namespace pspc

#endif  // PSPC_SRC_SERVE_EPOCH_MANAGER_H_
