#ifndef PSPC_SRC_DYNAMIC_BATCH_PLANNER_H_
#define PSPC_SRC_DYNAMIC_BATCH_PLANNER_H_

#include <functional>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/dynamic/edge_update.h"

/// Batch-coalescing front half of `DynamicSpcIndex::ApplyBatch`.
///
/// A batch is an *atomic* state transition: the planner simulates the
/// update sequence over the current edge membership, validates every
/// update against the simulated pre-state up front (so a bad update
/// rejects the whole batch before any topology or label mutation), and
/// reduces the sequence to its net effect — the set of edges that are
/// present at the end but absent at the start (net insertions) and
/// vice versa (net deletions). Everything else is churn the repair
/// machinery never needs to see:
///
///  * `i u v` followed by `d u v` cancels to a no-op;
///  * a duplicate `i u v` (or an insert of an edge the graph already
///    has) is redundant, coalesced away instead of rejected;
///  * `d u v` followed by `i u v` restores the edge — no label pair
///    can have changed between the pre- and post-batch graphs, so no
///    repair runs.
///
/// The one hard error is a delete whose edge is absent in the
/// simulated state (`Status::NotFound`, naming the offending update
/// index): the caller's view of the graph has diverged, and silently
/// skipping the delete would hide that. Structural validation
/// (self-loops, out-of-range endpoints) stays in
/// `EdgeUpdateBatch::Validate`, which callers run first.
namespace pspc {

/// Net effect of a validated batch. Undirected edge pairs are
/// normalized to `u < v`; in directed mode pairs keep their
/// orientation (`u -> v` and `v -> u` are distinct edges). The two
/// lists are disjoint by construction.
struct BatchPlan {
  std::vector<std::pair<VertexId, VertexId>> net_insertions;
  std::vector<std::pair<VertexId, VertexId>> net_deletions;
  /// Updates the coalescing dropped (cancelled pairs, redundant
  /// inserts, delete+reinsert round trips).
  size_t coalesced_updates = 0;

  size_t NetSize() const { return net_insertions.size() + net_deletions.size(); }
  bool Empty() const { return net_insertions.empty() && net_deletions.empty(); }
};

/// Simulates `batch` over the membership oracle `has_edge` (queried
/// once per distinct edge; with `u < v` unless `directed`). Returns
/// the net plan, or the first pre-state violation with *nothing*
/// considered applied. Directed mode keys the simulation on ordered
/// pairs, so the coalescing never conflates an edge with its reverse.
Result<BatchPlan> PlanBatch(
    const EdgeUpdateBatch& batch,
    const std::function<bool(VertexId, VertexId)>& has_edge,
    bool directed = false);

}  // namespace pspc

#endif  // PSPC_SRC_DYNAMIC_BATCH_PLANNER_H_
