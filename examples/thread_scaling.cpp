// Thread-scaling demo: the paper's headline claim is near-linear
// indexing speedup because the distance-iteration construction has no
// cross-thread label dependencies. This program builds the same index
// with 1, 2, 4, ... threads and prints the speedup curve, then does
// the same for a query batch.
//
//   ./thread_scaling [num_vertices]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/common/parallel.h"
#include "src/common/timer.h"
#include "src/core/builder_facade.h"
#include "src/graph/generators.h"
#include "src/label/query_engine.h"

int main(int argc, char** argv) {
  const pspc::VertexId n =
      argc > 1 ? static_cast<pspc::VertexId>(std::atoi(argv[1])) : 6000;
  const pspc::Graph graph = pspc::GenerateBarabasiAlbert(n, 8, 11);
  std::printf("graph: %u vertices, %llu edges, %d hardware threads\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()),
              pspc::MaxThreads());

  pspc::BuildOptions options;
  pspc::BuildIndex(graph, options);  // warm up the allocator

  std::vector<int> sweep{1, 2, 4};
  for (int t = 8; t <= pspc::MaxThreads(); t *= 2) sweep.push_back(t);

  std::printf("\nindex construction:\n%8s %10s %8s\n", "threads", "time",
              "speedup");
  double base_build = 0.0;
  pspc::SpcIndex index;
  for (int threads : sweep) {
    options.num_threads = threads;
    pspc::WallTimer timer;
    pspc::BuildResult result = pspc::BuildIndex(graph, options);
    const double seconds = timer.ElapsedSeconds();
    if (threads == 1) {
      base_build = seconds;
      index = std::move(result.index);
    }
    std::printf("%8d %9.3fs %7.1fx\n", threads, seconds,
                base_build / seconds);
  }

  const pspc::QueryBatch batch =
      pspc::MakeRandomQueries(graph.NumVertices(), 200000, 5);
  pspc::RunQueries(index, batch);  // warm up
  std::printf("\nbatch of %zu queries:\n%8s %10s %8s\n", batch.size(),
              "threads", "time", "speedup");
  double base_query = 0.0;
  for (int threads : sweep) {
    pspc::WallTimer timer;
    const auto results = pspc::RunQueriesParallel(index, batch, threads);
    const double seconds = timer.ElapsedSeconds();
    if (threads == 1) base_query = seconds;
    std::printf("%8d %9.3fs %7.1fx\n", threads, seconds,
                base_query / seconds);
  }
  return 0;
}
