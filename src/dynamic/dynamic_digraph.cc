#include "src/dynamic/dynamic_digraph.h"

#include <string>

namespace pspc {
namespace {

bool SortedContains(const std::vector<VertexId>& vec, VertexId v) {
  return std::binary_search(vec.begin(), vec.end(), v);
}

void SortedInsert(std::vector<VertexId>* vec, VertexId v) {
  vec->insert(std::upper_bound(vec->begin(), vec->end(), v), v);
}

void SortedErase(std::vector<VertexId>* vec, VertexId v) {
  const auto it = std::lower_bound(vec->begin(), vec->end(), v);
  if (it != vec->end() && *it == v) vec->erase(it);
}

}  // namespace

Status DynamicDiGraph::ValidateEndpoints(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices()) {
    return Status::InvalidArgument(
        "edge (" + std::to_string(u) + " -> " + std::to_string(v) +
        ") outside vertex universe [0, " + std::to_string(NumVertices()) +
        "); the dynamic index does not grow the vertex set");
  }
  if (u == v) {
    return Status::InvalidArgument("self-loop on vertex " + std::to_string(u));
  }
  return Status::OK();
}

bool DynamicDiGraph::HasEdge(VertexId u, VertexId v) const {
  const auto it = out_delta_.find(u);
  if (it == out_delta_.end()) return base_->HasEdge(u, v);
  if (SortedContains(it->second.added, v)) return true;
  if (SortedContains(it->second.removed, v)) return false;
  return base_->HasEdge(u, v);
}

Status DynamicDiGraph::AddEdge(VertexId u, VertexId v) {
  PSPC_RETURN_IF_ERROR(ValidateEndpoints(u, v));
  if (HasEdge(u, v)) {
    return Status::InvalidArgument("edge (" + std::to_string(u) + " -> " +
                                   std::to_string(v) + ") already exists");
  }
  ApplyAdd(&out_delta_, u, v);
  ApplyAdd(&in_delta_, v, u);
  ++num_edges_;
  ++delta_edges_;
  return Status::OK();
}

Status DynamicDiGraph::RemoveEdge(VertexId u, VertexId v) {
  PSPC_RETURN_IF_ERROR(ValidateEndpoints(u, v));
  if (!HasEdge(u, v)) {
    return Status::NotFound("edge (" + std::to_string(u) + " -> " +
                            std::to_string(v) + ") does not exist");
  }
  ApplyRemove(&out_delta_, u, v);
  ApplyRemove(&in_delta_, v, u);
  --num_edges_;
  ++delta_edges_;
  return Status::OK();
}

void DynamicDiGraph::ApplyAdd(DeltaMap* delta, VertexId key, VertexId value) {
  VertexDelta& d = (*delta)[key];
  if (SortedContains(d.removed, value)) {
    SortedErase(&d.removed, value);  // un-remove a base edge
  } else {
    SortedInsert(&d.added, value);
  }
}

void DynamicDiGraph::ApplyRemove(DeltaMap* delta, VertexId key,
                                 VertexId value) {
  VertexDelta& d = (*delta)[key];
  if (SortedContains(d.added, value)) {
    SortedErase(&d.added, value);  // cancel a delta insertion
  } else {
    SortedInsert(&d.removed, value);
  }
}

DiGraph DynamicDiGraph::Materialize() const {
  DiGraphBuilder builder(NumVertices());
  for (VertexId u = 0; u < NumVertices(); ++u) {
    ForEachOutNeighbor(u, [&](VertexId w) { builder.AddEdge(u, w); });
  }
  return builder.Build();
}

}  // namespace pspc
