#ifndef PSPC_SRC_DYNAMIC_DYNAMIC_GRAPH_H_
#define PSPC_SRC_DYNAMIC_DYNAMIC_GRAPH_H_

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/graph/graph.h"

/// Mutable adjacency view over an immutable CSR `Graph`.
///
/// The base CSR stays untouched; per-vertex deltas record edges added
/// and removed since the base was materialized. Only vertices touched
/// by updates pay any overhead — untouched vertices iterate straight
/// over the base CSR span, which keeps BFS-heavy repair passes close to
/// static-graph speed between rebuilds. `Materialize()` folds the
/// deltas into a fresh CSR when the owning index decides to rebuild.
namespace pspc {

class DynamicGraph {
 public:
  /// `base` must outlive the view (the owning DynamicSpcIndex keeps
  /// both and rebases after rebuilds).
  explicit DynamicGraph(const Graph* base)
      : base_(base), num_edges_(base->NumEdges()) {}

  /// Swaps in a new base and drops all deltas.
  void Rebase(const Graph* base) {
    base_ = base;
    delta_.clear();
    num_edges_ = base->NumEdges();
    delta_edges_ = 0;
  }

  VertexId NumVertices() const { return base_->NumVertices(); }
  EdgeId NumEdges() const { return num_edges_; }

  /// Number of structural changes applied since the last Rebase (an
  /// un-remove cancels a removal rather than counting twice).
  size_t DeltaEdges() const { return delta_edges_; }

  bool HasEdge(VertexId u, VertexId v) const;

  /// InvalidArgument for self-loops or endpoints outside `[0, n)` (the
  /// vertex universe is fixed; HasEdge on such input would be UB).
  Status ValidateEndpoints(VertexId u, VertexId v) const;

  /// Adds the undirected edge `{u, v}`. InvalidArgument on self-loops,
  /// out-of-range endpoints, or an edge that already exists.
  Status AddEdge(VertexId u, VertexId v);

  /// Removes the undirected edge `{u, v}`. NotFound if absent;
  /// InvalidArgument on self-loops or out-of-range endpoints.
  Status RemoveEdge(VertexId u, VertexId v);

  /// Current degree of `v`.
  VertexId Degree(VertexId v) const;

  /// Invokes `fn(w)` for every current neighbor `w` of `v`. Order is
  /// base-CSR order followed by added edges (insertion order); repair
  /// BFS results do not depend on it.
  template <typename Fn>
  void ForEachNeighbor(VertexId v, Fn&& fn) const {
    const auto it = delta_.find(v);
    if (it == delta_.end()) {
      for (const VertexId w : base_->Neighbors(v)) fn(w);
      return;
    }
    const VertexDelta& d = it->second;
    for (const VertexId w : base_->Neighbors(v)) {
      if (!std::binary_search(d.removed.begin(), d.removed.end(), w)) fn(w);
    }
    for (const VertexId w : d.added) fn(w);
  }

  /// CSR snapshot of the current graph (for rebuilds and oracles).
  Graph Materialize() const;

 private:
  struct VertexDelta {
    std::vector<VertexId> added;    // sorted
    std::vector<VertexId> removed;  // sorted; always subset of base edges
  };

  void AddDirected(VertexId u, VertexId v);
  void RemoveDirected(VertexId u, VertexId v);

  const Graph* base_;
  std::unordered_map<VertexId, VertexDelta> delta_;
  EdgeId num_edges_ = 0;
  size_t delta_edges_ = 0;
};

}  // namespace pspc

#endif  // PSPC_SRC_DYNAMIC_DYNAMIC_GRAPH_H_
