#include "src/serve/snapshot_manager.h"

#include "src/serve/epoch_manager.h"

void SnapshotManager::Publish() {
  spc::MutexLock lock(mu_);
  generation_ = generation_ + 1;
  epochs_->Enter();  // Enter re-locks mu_ via NoteRelease: self-deadlock.
}

void SnapshotManager::NoteRelease() {
  spc::MutexLock lock(mu_);
  generation_ = generation_ - 1;
}

void SnapshotManager::Attach(EpochManager* epochs) { epochs_ = epochs; }
