#ifndef PSPC_SRC_COMMON_TIMER_H_
#define PSPC_SRC_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

/// Wall-clock timing used by benchmarks and the builder's phase
/// breakdown (paper Fig. 13 separates ordering, landmark labeling, and
/// label construction time).
namespace pspc {

/// Monotonic wall-clock stopwatch; starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's elapsed seconds to `*sink` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace pspc

#endif  // PSPC_SRC_COMMON_TIMER_H_
