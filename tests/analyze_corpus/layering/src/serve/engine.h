#pragma once
#include "src/common/util.h"
#include "src/analytics/centrality.h"

inline int Engine() { return 2; }
