#include "src/label/spc_index.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "src/common/logging.h"
#include "src/common/saturating.h"

namespace pspc {
namespace {

constexpr uint64_t kIndexMagic = 0x5053'5043'4944'5801ull;  // "PSPCIDX" v1

}  // namespace

SpcIndex::SpcIndex(VertexOrder order,
                   std::vector<std::vector<LabelEntry>> labels)
    : order_(std::move(order)) {
  PSPC_CHECK(labels.size() == order_.Size());
  offsets_.assign(labels.size() + 1, 0);
  size_t total = 0;
  for (size_t v = 0; v < labels.size(); ++v) {
    total += labels[v].size();
    offsets_[v + 1] = total;
  }
  entries_.reserve(total);
  for (auto& vec : labels) {
    std::sort(vec.begin(), vec.end(), ByHubRank);
    entries_.insert(entries_.end(), vec.begin(), vec.end());
  }
}

SpcResult SpcIndex::Query(VertexId s, VertexId t) const {
  PSPC_CHECK_MSG(s < NumVertices() && t < NumVertices(),
                 "query (" << s << "," << t << ") out of range");
  if (s == t) return {0, 1};

  const auto ls = Labels(s);
  const auto lt = Labels(t);
  uint32_t best = kInfSpcDistance;
  Count count = 0;
  size_t i = 0, j = 0;
  while (i < ls.size() && j < lt.size()) {
    if (ls[i].hub_rank < lt[j].hub_rank) {
      ++i;
    } else if (ls[i].hub_rank > lt[j].hub_rank) {
      ++j;
    } else {
      const uint32_t d =
          static_cast<uint32_t>(ls[i].dist) + static_cast<uint32_t>(lt[j].dist);
      if (d < best) {
        best = d;
        count = SatMul(ls[i].count, lt[j].count);
      } else if (d == best) {
        count = SatAdd(count, SatMul(ls[i].count, lt[j].count));
      }
      ++i;
      ++j;
    }
  }
  if (best == kInfSpcDistance) return {kInfSpcDistance, 0};
  return {best, count};
}

double SpcIndex::AverageLabelSize() const {
  const VertexId n = NumVertices();
  if (n == 0) return 0.0;
  return static_cast<double>(entries_.size()) / n;
}

size_t SpcIndex::SizeBytes() const {
  return entries_.size() * sizeof(LabelEntry) +
         offsets_.size() * sizeof(uint64_t);
}

Status SpcIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  auto put = [&out](const void* p, size_t bytes) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(bytes));
  };
  const uint64_t n = NumVertices();
  const uint64_t total = entries_.size();
  put(&kIndexMagic, sizeof(kIndexMagic));
  put(&n, sizeof(n));
  put(&total, sizeof(total));
  put(order_.OrderToVertex().data(), n * sizeof(VertexId));
  put(offsets_.data(), offsets_.size() * sizeof(uint64_t));
  for (const LabelEntry& e : entries_) {
    put(&e.hub_rank, sizeof(e.hub_rank));
    put(&e.dist, sizeof(e.dist));
    put(&e.count, sizeof(e.count));
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<SpcIndex> SpcIndex::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  auto get = [&in](void* p, size_t bytes) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
    return static_cast<bool>(in);
  };
  uint64_t magic = 0, n = 0, total = 0;
  if (!get(&magic, sizeof(magic)) || magic != kIndexMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!get(&n, sizeof(n)) || !get(&total, sizeof(total))) {
    return Status::Corruption("truncated header in " + path);
  }
  std::vector<VertexId> order_vec(n);
  if (!get(order_vec.data(), n * sizeof(VertexId))) {
    return Status::Corruption("truncated order in " + path);
  }
  SpcIndex index;
  index.order_ = VertexOrder(std::move(order_vec));
  index.offsets_.resize(n + 1);
  if (!get(index.offsets_.data(), index.offsets_.size() * sizeof(uint64_t))) {
    return Status::Corruption("truncated offsets in " + path);
  }
  if (index.offsets_.front() != 0 || index.offsets_.back() != total) {
    return Status::Corruption("inconsistent offsets in " + path);
  }
  index.entries_.resize(total);
  for (LabelEntry& e : index.entries_) {
    if (!get(&e.hub_rank, sizeof(e.hub_rank)) ||
        !get(&e.dist, sizeof(e.dist)) || !get(&e.count, sizeof(e.count))) {
      return Status::Corruption("truncated entries in " + path);
    }
  }
  return index;
}

}  // namespace pspc
