#include <gtest/gtest.h>

#include <vector>

#include "src/core/pspc_builder.h"
#include "src/digraph/dbfs_spc.h"
#include "src/digraph/digraph.h"
#include "src/digraph/dpspc_builder.h"
#include "src/digraph/dspc_index.h"
#include "src/graph/generators.h"
#include "src/order/degree_order.h"
#include "tests/test_util.h"

namespace pspc {
namespace {

using pspc::testing::AllPairs;

DiPspcOptions Defaults() { return DiPspcOptions{}; }

// ----------------------------------------------------------- DiGraph --

TEST(DiGraphTest, DualCsrConsistency) {
  const DiGraph g = MakeDiGraph(4, {{0, 1}, {0, 2}, {2, 1}, {3, 0}});
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 1u);
  EXPECT_EQ(g.InDegree(1), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));  // direction matters
}

TEST(DiGraphTest, BuilderDedupsAndDropsSelfLoops) {
  DiGraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  b.AddEdge(1, 1);
  b.AddEdge(1, 0);  // reverse is a distinct edge
  const DiGraph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(DiGraphTest, FromUndirectedSymmetrizes) {
  const Graph u = GeneratePath(4);
  const DiGraph d = FromUndirected(u);
  EXPECT_EQ(d.NumEdges(), 2 * u.NumEdges());
  EXPECT_TRUE(d.HasEdge(1, 2));
  EXPECT_TRUE(d.HasEdge(2, 1));
}

TEST(DiGraphTest, RandomGeneratorDeterministic) {
  EXPECT_EQ(GenerateRandomDiGraph(30, 80, 5), GenerateRandomDiGraph(30, 80, 5));
  EXPECT_EQ(GenerateRandomDiGraph(30, 80, 5).NumEdges(), 80u);
}

// ---------------------------------------------------------- DiBfsSpc --

TEST(DiBfsSpcTest, DirectedCycleGoesOneWay) {
  const DiGraph g = GenerateDiCycle(6);
  // 0 -> 3 takes 3 hops; 3 -> 0 must go around: 3 hops too (6-cycle),
  // but 0 -> 5 is 5 hops while 5 -> 0 is 1.
  EXPECT_EQ(DiBfsSpcPair(g, 0, 3), (SpcResult{3, 1}));
  EXPECT_EQ(DiBfsSpcPair(g, 0, 5), (SpcResult{5, 1}));
  EXPECT_EQ(DiBfsSpcPair(g, 5, 0), (SpcResult{1, 1}));
}

TEST(DiBfsSpcTest, UnreachableDirection) {
  const DiGraph g = MakeDiGraph(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(DiBfsSpcPair(g, 0, 2), (SpcResult{2, 1}));
  EXPECT_EQ(DiBfsSpcPair(g, 2, 0), (SpcResult{kInfSpcDistance, 0}));
}

TEST(DiBfsSpcTest, ParallelBranchesMultiply) {
  // 0 -> {1,2} -> 3 -> {4,5} -> 6: 2 * 2 paths of length 4.
  const DiGraph g = MakeDiGraph(
      7, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {3, 5}, {4, 6}, {5, 6}});
  EXPECT_EQ(DiBfsSpcPair(g, 0, 6), (SpcResult{4, 4}));
}

// ------------------------------------------------------ DiSpcIndex --

TEST(DirectedPspcTest, DagAllPairs) {
  const DiGraph g = MakeDiGraph(
      7, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {3, 5}, {4, 6}, {5, 6}});
  const auto built =
      BuildDirectedPspcIndex(g, DirectedDegreeOrder(g), Defaults());
  for (VertexId s = 0; s < 7; ++s) {
    for (VertexId t = 0; t < 7; ++t) {
      EXPECT_EQ(built.index.Query(s, t), DiBfsSpcPair(g, s, t))
          << "pair (" << s << "," << t << ")";
    }
  }
}

TEST(DirectedPspcTest, AsymmetricReachability) {
  const DiGraph g = MakeDiGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto built =
      BuildDirectedPspcIndex(g, DirectedDegreeOrder(g), Defaults());
  EXPECT_EQ(built.index.Query(0, 3), (SpcResult{3, 1}));
  EXPECT_EQ(built.index.Query(3, 0), (SpcResult{kInfSpcDistance, 0}));
}

TEST(DirectedPspcTest, RandomDigraphsMatchOracle) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const DiGraph g = GenerateRandomDiGraph(50, 220, seed);
    const auto built =
        BuildDirectedPspcIndex(g, DirectedDegreeOrder(g), Defaults());
    for (VertexId s = 0; s < 50; ++s) {
      for (VertexId t = 0; t < 50; ++t) {
        ASSERT_EQ(built.index.Query(s, t), DiBfsSpcPair(g, s, t))
            << "seed " << seed << " pair (" << s << "," << t << ")";
      }
    }
  }
}

TEST(DirectedPspcTest, SymmetricClosureMatchesUndirectedIndex) {
  // Directed SPC on the symmetric closure must agree with the
  // undirected PSPC index on the original graph.
  const Graph u = GenerateErdosRenyi(60, 150, 9);
  const DiGraph d = FromUndirected(u);
  PspcOptions uopts;
  uopts.num_landmarks = 4;
  const SpcIndex undirected = BuildPspcIndex(u, DegreeOrder(u), uopts).index;
  const auto directed =
      BuildDirectedPspcIndex(d, DirectedDegreeOrder(d), Defaults());
  for (const auto& [s, t] : AllPairs(60)) {
    ASSERT_EQ(directed.index.Query(s, t), undirected.Query(s, t))
        << "pair (" << s << "," << t << ")";
  }
}

TEST(DirectedPspcTest, ThreadCountInvariance) {
  const DiGraph g = GenerateRandomDiGraph(80, 400, 13);
  const VertexOrder order = DirectedDegreeOrder(g);
  DiPspcOptions one;
  one.num_threads = 1;
  DiPspcOptions many;
  many.num_threads = 7;
  EXPECT_EQ(BuildDirectedPspcIndex(g, order, one).index,
            BuildDirectedPspcIndex(g, order, many).index);
}

TEST(DirectedPspcTest, DirectedCycleCounts) {
  const DiGraph g = GenerateDiCycle(9);
  const auto built =
      BuildDirectedPspcIndex(g, DirectedDegreeOrder(g), Defaults());
  EXPECT_EQ(built.index.Query(0, 8), (SpcResult{8, 1}));
  EXPECT_EQ(built.index.Query(8, 0), (SpcResult{1, 1}));
}

TEST(DirectedPspcTest, DirectedPathLabelStructure) {
  // 0 -> 1 -> 2 under identity order: Lin(v) holds every ancestor as a
  // hub; Lout(v) holds only v (no higher-ranked vertex is reachable
  // forward from v except through lower ranks... ranks equal ids, and
  // all reachable-forward vertices have larger ids = lower ranks, so
  // out-labels stay singleton).
  const DiGraph g = MakeDiGraph(3, {{0, 1}, {1, 2}});
  const auto built =
      BuildDirectedPspcIndex(g, IdentityOrder(3), DiPspcOptions{});
  EXPECT_EQ(built.index.InLabels(2).size(), 3u);   // hubs 0, 1, 2
  EXPECT_EQ(built.index.OutLabels(2).size(), 1u);  // self only
  EXPECT_EQ(built.index.OutLabels(0).size(), 1u);  // self only
  EXPECT_EQ(built.index.InLabels(0).size(), 1u);
}

TEST(DirectedPspcTest, CountsMultiplyThroughDirectedFunnels) {
  // Two disjoint 2-wide funnels in series: 2 * 2 directed paths.
  const DiGraph g = MakeDiGraph(
      7, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {3, 5}, {4, 6}, {5, 6}});
  const auto built =
      BuildDirectedPspcIndex(g, DirectedDegreeOrder(g), DiPspcOptions{});
  EXPECT_EQ(built.index.Query(0, 6), (SpcResult{4, 4}));
  // Against the arrow: nothing.
  EXPECT_EQ(built.index.Query(6, 0), (SpcResult{kInfSpcDistance, 0}));
}

TEST(DirectedPspcTest, StatsAreConsistent) {
  const DiGraph g = GenerateRandomDiGraph(60, 300, 21);
  const auto built =
      BuildDirectedPspcIndex(g, DirectedDegreeOrder(g), Defaults());
  EXPECT_EQ(built.stats.total_entries, built.index.TotalEntries());
  EXPECT_GE(built.stats.num_iterations, 2u);
  EXPECT_EQ(built.stats.candidates_after_merge,
            built.stats.pruned_by_query +
                (built.stats.total_entries - 2u * g.NumVertices()));
}

// Parameterized sweep: density x seed, every pair checked against the
// directed oracle.
class DirectedSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DirectedSweepTest, AllPairsMatchOracle) {
  const auto [density, seed] = GetParam();
  const VertexId n = 40;
  const DiGraph g = GenerateRandomDiGraph(
      n, static_cast<EdgeId>(n) * density, 1000 + seed);
  const auto built =
      BuildDirectedPspcIndex(g, DirectedDegreeOrder(g), Defaults());
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) {
      ASSERT_EQ(built.index.Query(s, t), DiBfsSpcPair(g, s, t))
          << "density " << density << " seed " << seed << " pair (" << s
          << "," << t << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DensityBySeed, DirectedSweepTest,
    ::testing::Combine(::testing::Values(1, 3, 6),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      // Built via append: the char*+rvalue operator+ chain trips GCC
      // 12's -Wrestrict false positive (PR105651).
      std::string name = "m";
      name += std::to_string(std::get<0>(info.param));
      name += "n_seed";
      name += std::to_string(std::get<1>(info.param));
      return name;
    });

}  // namespace
}  // namespace pspc
