// Reproduces Fig. 12 (Exp 7): effect of the number of landmarks on
// indexing time. Expected shape: a U-curve — a few landmarks prune a
// large share of candidates cheaply, but each additional landmark adds
// a per-candidate probe cost, so past the sweet spot the filter costs
// more than it saves (the paper's "extra cost if landmark-based
// filtering returns a false result").

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/common/timer.h"

namespace {

constexpr uint32_t kLandmarkCounts[] = {0, 8, 16, 32, 64, 100, 150, 250};

void LandmarkCount(benchmark::State& state, const std::string& code,
                   uint32_t landmarks) {
  const pspc::Graph& g = pspc::bench::GetGraph(code);
  pspc::BuildOptions options = pspc::bench::PspcOptionsAllThreads();
  options.num_landmarks = landmarks;
  options.use_landmark_filter = landmarks > 0;
  pspc::BuildIndex(g, options);  // untimed warmup: page-faults the arena
  for (auto _ : state) {
    pspc::WallTimer timer;
    const pspc::BuildResult result = pspc::BuildIndex(g, options);
    state.SetIterationTime(timer.ElapsedSeconds());
    state.counters["landmarks"] = landmarks;
    state.counters["landmark_s"] = result.stats.landmark_seconds;
    state.counters["construct_s"] = result.stats.construction_seconds;
    state.counters["pruned_by_lm"] =
        static_cast<double>(result.stats.pruned_by_landmark);
  }
}

int RegisterAll() {
  for (const auto& spec : pspc::AllDatasets()) {
    if (!spec.in_sweep_set) continue;
    for (uint32_t landmarks : kLandmarkCounts) {
      benchmark::RegisterBenchmark(
          ("fig12/landmark_count/" + spec.code + "/k:" +
           std::to_string(landmarks))
              .c_str(),
          [code = spec.code, landmarks](benchmark::State& s) {
            LandmarkCount(s, code, landmarks);
          })
          ->Iterations(1)
          ->UseManualTime()
          ->Unit(benchmark::kSecond);
    }
  }
  return 0;
}

static const int kRegistered = RegisterAll();

}  // namespace
