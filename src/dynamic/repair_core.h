#ifndef PSPC_SRC_DYNAMIC_REPAIR_CORE_H_
#define PSPC_SRC_DYNAMIC_REPAIR_CORE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/parallel.h"
#include "src/common/saturating.h"
#include "src/common/types.h"
#include "src/core/scheduler.h"
#include "src/dynamic/chunked_overlay.h"
#include "src/dynamic/dynamic_graph.h"
#include "src/label/label_entry.h"
#include "src/label/label_merge.h"
#include "src/order/vertex_order.h"

/// Direction-generic dynamic-repair kernels.
///
/// Every repair primitive of the dynamic layer — the resumed pruned
/// insertion BFS, deletion affected-region detection, the per-hub full
/// re-run with stale-entry erasure, the depth-capped count subtraction,
/// and the exact distance-change filter — is the same algorithm whether
/// the index is undirected (one label list per vertex, symmetric
/// adjacency) or directed (per-vertex out/in labels, dual adjacency).
/// What differs is only *which label side a hub writes* and *which way
/// the BFS expands*. The kernels here are therefore parameterized over
/// a **repair view** binding those choices, and instantiated twice:
///
///  * `SymmetricRepairView` — `DynamicSpcIndex`. Both label sides are
///    the single undirected list; forward and reverse neighbors
///    coincide.
///  * `DirectedRepairView<kForward>` (dynamic_dspc_index.h) — the
///    forward view covers hubs' *out-reach*: the BFS expands out-edges
///    away from the hub, entries land in the in-labels of reached
///    vertices, and pruning certificates read the hub's out-labels;
///    the backward view is the mirror image.
///
/// A view must provide:
///
///   span<const LabelEntry> Labels(v)     // write side: entries a hub
///                                        // stores at v, walked for
///                                        // certificates and positions
///   span<const LabelEntry> HubLabels(v)  // hub side: distances from a
///                                        // hub to higher-ranked hubs
///   vector<LabelEntry>& Mutable(v)       // overlay COW list, write side
///   ChunkedOverlay* WriteOverlay()       // the write-side overlay
///   ForEachNeighbor(v, fn)               // expansion away from the hub
///   ForEachReverseNeighbor(v, fn)        // toward the hub (detection)
///   RankOf(v) / VertexAt(r) / VertexToRank()
///   NumVertices()
///   Query(s, t)   // view-oriented 2-hop query: s on the hub side
///                 // (merges HubLabels(s) with Labels(t))
///
/// The orientation invariant: for the forward directed view,
/// `Query(s, t)` is the real directed query `s -> t`; for the backward
/// view it is `t -> s`; for the symmetric view both coincide.
namespace pspc {

struct DynamicStats {
  size_t insertions_applied = 0;
  size_t deletions_applied = 0;
  size_t resumed_bfs_runs = 0;   ///< insertion repair BFS launches
  size_t affected_hubs = 0;      ///< deletion hubs fully re-run
  size_t subtract_repairs = 0;   ///< deletion hubs repaired by subtraction
  size_t entries_inserted = 0;
  size_t entries_renewed = 0;
  size_t entries_erased = 0;
  size_t rebuilds = 0;
  size_t batches_applied = 0;    ///< ApplyBatch calls that validated
  size_t updates_coalesced = 0;  ///< batch updates dropped as no-ops
  size_t parallel_waves = 0;     ///< thread-pool waves launched
  size_t parallel_hub_runs = 0;  ///< hub repairs committed off a wave
  size_t deferred_hub_runs = 0;  ///< wave aborts re-run sequentially
  double repair_seconds = 0.0;
  double rebuild_seconds = 0.0;
  /// Per-batch stage costs of the most recent public mutation
  /// (microseconds), stamped at the ApplyBatch / InsertEdge /
  /// DeleteEdge tails — the write-path trace reads them right after
  /// the call, on the same thread.
  double last_plan_us = 0.0;
  double last_repair_us = 0.0;

  /// Every per-hub repair launch, the unit `ApplyBatch` coalescing
  /// amortizes (bench_dynamic_updates reports the batched-vs-
  /// sequential difference as "hub runs saved").
  size_t TotalHubRuns() const {
    return resumed_bfs_runs + affected_hubs + subtract_repairs;
  }

  std::string ToString() const;
};

/// Reusable n-sized BFS scratch. One instance backs the sequential
/// paths; parallel waves draw from a per-thread pool (repair BFS
/// state must never be shared across concurrently running hubs).
struct RepairScratch {
  std::vector<uint32_t> hub_dist;   // by rank; kInfSpcDistance = unset
  std::vector<uint32_t> bfs_dist;   // by vertex; kInfSpcDistance = unset
  std::vector<Count> bfs_count;     // by vertex
  std::vector<VertexId> bfs_touched;
  std::vector<VertexId> bfs_queue;
  std::vector<VertexId> frontier;       // insertion level-sync BFS
  std::vector<VertexId> next_frontier;
  std::vector<uint8_t> updated;     // by vertex; deletion repair marks
  std::vector<int8_t> region_flags;     // materialized task region
  std::vector<VertexId> region_touched;

  void Init(VertexId n) {
    hub_dist.assign(n, kInfSpcDistance);
    bfs_dist.assign(n, kInfSpcDistance);
    bfs_count.assign(n, 0);
    updated.assign(n, 0);
    region_flags.assign(n, 0);
    bfs_touched.clear();
    bfs_queue.clear();
    frontier.clear();
    next_frontier.clear();
    region_touched.clear();
  }
};

/// Write destination for one hub repair: the live overlay (sequential
/// paths), or a staged op list a parallel wave commits in rank order
/// after every task of the wave finished. A hub task touches each
/// vertex's own-rank entry at most once, so one staged op per (task,
/// vertex) suffices and commit can re-find positions.
struct StagedLabelOp {
  VertexId v = 0;
  LabelEntry entry{};  // carries the hub rank; payload unused on erase
  bool erase = false;
};

class LabelWriteSink {
 public:
  explicit LabelWriteSink(ChunkedOverlay* live) : live_(live) {}
  explicit LabelWriteSink(std::vector<StagedLabelOp>* staged)
      : staged_(staged) {}

  bool staged() const { return staged_ != nullptr; }

  /// Replaces the entry at `pos` (present) of v's list.
  void Renew(VertexId v, size_t pos, const LabelEntry& e) {
    if (staged_ != nullptr) {
      staged_->push_back({v, e, false});
    } else {
      live_->Mutable(v)[pos] = e;
    }
  }
  /// Inserts `e` at rank position `pos` of v's list.
  void Insert(VertexId v, size_t pos, const LabelEntry& e) {
    if (staged_ != nullptr) {
      staged_->push_back({v, e, false});
    } else {
      std::vector<LabelEntry>& mv = live_->Mutable(v);
      mv.insert(mv.begin() + static_cast<ptrdiff_t>(pos), e);
    }
  }
  /// Erases the entry for `hub_rank` sitting at `pos` of v's list.
  void Erase(VertexId v, size_t pos, Rank hub_rank) {
    if (staged_ != nullptr) {
      staged_->push_back({v, LabelEntry{hub_rank, 0, 0}, true});
    } else {
      std::vector<LabelEntry>& mv = live_->Mutable(v);
      mv.erase(mv.begin() + static_cast<ptrdiff_t>(pos));
    }
  }

 private:
  ChunkedOverlay* live_ = nullptr;
  std::vector<StagedLabelOp>* staged_ = nullptr;
};

/// A hub repair's write region: non-zero `flags[v]` marks membership,
/// `touched` enumerates it.
struct RegionView {
  const int8_t* flags = nullptr;
  const std::vector<VertexId>* touched = nullptr;
};

/// One multi-source seed of an insertion repair BFS.
struct InsertSeed {
  VertexId start = 0;
  uint32_t dist = 0;
  Count count = 0;
};

// Deletion detection result for one side of a deleted edge. Flags hold
// 0 (untouched), 1 (full sender), 2 (subtractive sender) or -1
// (receiver); any non-zero value marks the affected region.
struct AffectedSide {
  std::vector<int8_t> flags;         // indexed by vertex id
  std::vector<Rank> full_ranks;      // hubs needing a full re-run
  std::vector<Rank> subtract_ranks;  // hubs repairable by subtraction
  std::vector<VertexId> touched;     // everything in the region
};

/// Symmetric (undirected) view: one label side, one adjacency.
struct SymmetricRepairView {
  const DynamicGraph* graph = nullptr;
  ChunkedOverlay* overlay = nullptr;
  const VertexOrder* order = nullptr;

  std::span<const LabelEntry> Labels(VertexId v) const {
    return overlay->Labels(v);
  }
  std::span<const LabelEntry> HubLabels(VertexId v) const {
    return overlay->Labels(v);
  }
  std::vector<LabelEntry>& Mutable(VertexId v) const {
    return overlay->Mutable(v);
  }
  ChunkedOverlay* WriteOverlay() const { return overlay; }
  template <typename Fn>
  void ForEachNeighbor(VertexId v, Fn&& fn) const {
    graph->ForEachNeighbor(v, fn);
  }
  template <typename Fn>
  void ForEachReverseNeighbor(VertexId v, Fn&& fn) const {
    graph->ForEachNeighbor(v, fn);
  }
  Rank RankOf(VertexId v) const { return order->RankOf(v); }
  VertexId VertexAt(Rank r) const { return order->VertexAt(r); }
  const std::vector<Rank>& VertexToRank() const {
    return order->VertexToRank();
  }
  VertexId NumVertices() const { return graph->NumVertices(); }
  SpcResult Query(VertexId s, VertexId t) const {
    if (s == t) return {0, 1};
    return MergeLabelCounts(HubLabels(s), Labels(t));
  }
};

namespace repair {

inline Distance ToLabelDistance(uint32_t d) {
  PSPC_CHECK_MSG(d < kInfDistance, "distance " << d << " overflows Distance");
  return static_cast<Distance>(d);
}

// Scratch: loads `hub_dist[rank] = dist` for the hub's current labels
// on the hub side (view-direction distances from the hub to every hub
// it stores an entry for); ResetHubDist undoes exactly those writes.
template <class View>
void LoadHubDist(const View& view, VertexId hub, RepairScratch& s) {
  for (const LabelEntry& e : view.HubLabels(hub)) {
    s.hub_dist[e.hub_rank] = e.dist;
  }
}

template <class View>
void ResetHubDist(const View& view, VertexId hub, RepairScratch& s) {
  for (const LabelEntry& e : view.HubLabels(hub)) {
    s.hub_dist[e.hub_rank] = kInfSpcDistance;
  }
}

// ------------------------------------------------------------- insertion

/// Seeds the repair of a new edge `from -> to` (view orientation): each
/// hub recorded at `from` on the write side may start new trough paths
/// crossing the edge, seeded at `to` with the recorded distance + 1 and
/// trough count. Seeds must snapshot the *pre-repair* labels across
/// every new edge of an update (repairs only ever rewrite a hub's own
/// entries, so a later hub's seeds are never invalidated by an earlier
/// hub's run).
template <class View>
void GatherInsertSeeds(const View& view, VertexId from, VertexId to,
                       std::vector<std::pair<Rank, InsertSeed>>* seeds) {
  const Rank rt = view.RankOf(to);
  for (const LabelEntry& e : view.Labels(from)) {
    // New trough paths h .. from -> to ..: only possible if `to` may
    // appear below h in the order.
    if (e.hub_rank < rt) {
      seeds->push_back(
          {e.hub_rank, {to, static_cast<uint32_t>(e.dist) + 1, e.count}});
    }
  }
}

/// Ascending (rank, seed depth): the run order the resumed BFS needs.
inline void SortInsertSeeds(std::vector<std::pair<Rank, InsertSeed>>* seeds) {
  std::sort(seeds->begin(), seeds->end(),
            [](const auto& x, const auto& y) {
              return x.first != y.first ? x.first < y.first
                                        : x.second.dist < y.second.dist;
            });
}

/// One multi-source level-synchronous resumed pruned BFS for `hub_rank`
/// (the incremental scheme of dynamic hub labeling, adapted to counts):
/// seeds are injected when the wavefront reaches their depth, so a seed
/// made obsolete by a shorter route through another inserted edge
/// (discovered earlier) is dropped, and seeds tying the wavefront merge
/// counts. Each new shortest trough path crosses a unique *first*
/// inserted edge whose seed accounts for it, so no path is double
/// counted. Seeds must be sorted by depth.
template <class View>
void ResumedInsertBfs(const View& view, Rank hub_rank,
                      std::span<const InsertSeed> seeds, RepairScratch& s,
                      DynamicStats* stats) {
  if (seeds.empty()) return;
  const VertexId hub = view.VertexAt(hub_rank);
  LoadHubDist(view, hub, s);

  s.bfs_touched.clear();
  s.frontier.clear();
  size_t si = 0;  // seeds consumed so far (sorted by dist)
  auto inject = [&](uint32_t level) {
    for (; si < seeds.size() && seeds[si].dist == level; ++si) {
      const InsertSeed& seed = seeds[si];
      if (s.bfs_dist[seed.start] == kInfSpcDistance) {
        s.bfs_dist[seed.start] = level;
        s.bfs_count[seed.start] = seed.count;
        s.bfs_touched.push_back(seed.start);
        s.frontier.push_back(seed.start);
      } else if (s.bfs_dist[seed.start] == level) {
        s.bfs_count[seed.start] = SatAdd(s.bfs_count[seed.start], seed.count);
      }
      // else: discovered strictly shorter through another inserted
      // edge; the seed's paths are not shortest.
    }
  };
  uint32_t d = seeds.front().dist;
  inject(d);

  while (!s.frontier.empty() || si < seeds.size()) {
    if (s.frontier.empty()) {
      // Gap between seed depths with an exhausted wavefront.
      d = seeds[si].dist;
      inject(d);
      continue;
    }

    // Label phase: one walk over the write-side labels of `v` up to the
    // hub's rank gives the 2-hop distance certificate over hubs ranked
    // >= hub_rank (the hub's own old entry participates via
    // hub_dist[hub_rank] == 0), plus the position of the hub's entry if
    // present. Pruned vertices leave the frontier and do not expand.
    size_t keep = 0;
    for (const VertexId v : s.frontier) {
      const uint32_t dv = d;
      const auto lv = view.Labels(v);
      uint32_t certified = kInfSpcDistance;
      size_t pos = 0;
      bool has_hub = false;
      LabelEntry old_entry{};
      for (; pos < lv.size() && lv[pos].hub_rank <= hub_rank; ++pos) {
        const uint32_t hd = s.hub_dist[lv[pos].hub_rank];
        if (hd != kInfSpcDistance) {
          certified = std::min(certified, hd + lv[pos].dist);
        }
        if (lv[pos].hub_rank == hub_rank) {
          has_hub = true;
          old_entry = lv[pos];
          break;
        }
      }
      if (dv > certified) continue;  // covered strictly shorter: prune

      Count total = s.bfs_count[v];
      if (has_hub && old_entry.dist == dv) {
        total = SatAdd(total, old_entry.count);  // pre-existing troughs
      }
      if (has_hub) {
        if (old_entry.dist != dv || old_entry.count != total) {
          view.Mutable(v)[pos] = {hub_rank, ToLabelDistance(dv), total};
          ++stats->entries_renewed;
        }
      } else {
        std::vector<LabelEntry>& mv = view.Mutable(v);
        mv.insert(mv.begin() + static_cast<ptrdiff_t>(pos),
                  {hub_rank, ToLabelDistance(dv), total});
        ++stats->entries_inserted;
      }
      s.frontier[keep++] = v;
    }
    s.frontier.resize(keep);

    // Expansion phase into level d + 1.
    s.next_frontier.clear();
    for (const VertexId v : s.frontier) {
      view.ForEachNeighbor(v, [&](VertexId w) {
        if (view.RankOf(w) <= hub_rank) return;
        if (s.bfs_dist[w] == kInfSpcDistance) {
          s.bfs_dist[w] = d + 1;
          s.bfs_count[w] = s.bfs_count[v];
          s.next_frontier.push_back(w);
          s.bfs_touched.push_back(w);
        } else if (s.bfs_dist[w] == d + 1) {
          s.bfs_count[w] = SatAdd(s.bfs_count[w], s.bfs_count[v]);
        }
      });
    }
    s.frontier.swap(s.next_frontier);
    ++d;
    inject(d);
  }

  ++stats->resumed_bfs_runs;
  ResetHubDist(view, hub, s);
  for (const VertexId v : s.bfs_touched) {
    s.bfs_dist[v] = kInfSpcDistance;
    s.bfs_count[v] = 0;
  }
}

/// Runs sorted `(rank, seed)` pairs as one resumed BFS per distinct
/// hub, in ascending rank order so each run prunes against already-
/// repaired higher-ranked labels (the HP-SPC order dependency).
template <class View>
void RunInsertRepairs(const View& view,
                      const std::vector<std::pair<Rank, InsertSeed>>& seeds,
                      RepairScratch& s, DynamicStats* stats) {
  std::vector<InsertSeed> hub_seeds;
  for (size_t i = 0; i < seeds.size();) {
    const Rank rank = seeds[i].first;
    hub_seeds.clear();
    for (; i < seeds.size() && seeds[i].first == rank; ++i) {
      hub_seeds.push_back(seeds[i].second);
    }
    ResumedInsertBfs(view, rank, {hub_seeds.data(), hub_seeds.size()}, s,
                     stats);
  }
}

// -------------------------------------------------------------- deletion

/// View-oriented BFS distances *toward* `source`: `dist[x]` is the
/// distance from `x` to `source` in coverage direction (plain BFS over
/// reverse neighbors; symmetric for the undirected view).
template <class View>
std::vector<uint32_t> ViewBfsDistances(const View& view, VertexId source) {
  std::vector<uint32_t> dist(view.NumVertices(), kInfSpcDistance);
  std::vector<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    view.ForEachReverseNeighbor(u, [&](VertexId w) {
      if (dist[w] == kInfSpcDistance) {
        dist[w] = dist[u] + 1;
        queue.push_back(w);
      }
    });
  }
  return dist;
}

/// Affected-region detection for the side of deleted edge
/// `from -> to` (view orientation) whose hubs cover *through* the
/// edge. Pruned partial BFS over the *pre-deletion* graph, expanding
/// toward `from` over reverse neighbors: a vertex u is in the region
/// iff the doomed edge lies on one of its view-shortest paths to the
/// far endpoint — d(u, from) + 1 == d(u, to), answered by the (still
/// exact) 2-hop index. Only region vertices expand, so the traversal
/// stays proportional to the blast radius.
///
/// `hub_near[r]` / `hub_far[r]` flag hubs holding a write-side entry at
/// `from` / `to` — the subtraction certificate needs both.
template <class View>
void DetectAffectedSide(const View& view, VertexId from, VertexId to,
                        const std::vector<uint8_t>& hub_near,
                        const std::vector<uint8_t>& hub_far,
                        AffectedSide* side) {
  const VertexId n = view.NumVertices();
  side->flags.assign(n, 0);
  side->full_ranks.clear();
  side->subtract_ranks.clear();
  side->touched.clear();

  std::vector<uint32_t> dist(n, kInfSpcDistance);
  std::vector<Count> count(n, 0);
  std::vector<VertexId> queue;
  dist[from] = 0;
  count[from] = 1;
  queue.push_back(from);
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    const SpcResult to_far = view.Query(u, to);
    if (dist[u] + 1 != to_far.distance) continue;

    // `count[u]` = shortest u-`from` paths, which is exactly the number
    // of shortest u-`to` paths crossing the edge. If *all* of them
    // cross (count matches), distances from u can grow, so u needs a
    // full hub re-run. A common hub of both endpoint labels that keeps
    // alternative routes can only lose trough counts — repairable by
    // subtraction. Everything else is a mere receiver. Saturated
    // counts cannot be compared (or subtracted), so they
    // conservatively promote to a full re-run.
    const Rank ru = view.RankOf(u);
    const bool saturated =
        count[u] == kSaturatedCount || to_far.count == kSaturatedCount;
    if (saturated || count[u] >= to_far.count) {
      side->flags[u] = 1;
      side->full_ranks.push_back(ru);
    } else if (hub_near[ru] != 0 && hub_far[ru] != 0) {
      side->flags[u] = 2;
      side->subtract_ranks.push_back(ru);
    } else {
      side->flags[u] = -1;
    }
    side->touched.push_back(u);

    view.ForEachReverseNeighbor(u, [&](VertexId w) {
      if (dist[w] == kInfSpcDistance) {
        dist[w] = dist[u] + 1;
        count[w] = count[u];
        queue.push_back(w);
      } else if (dist[w] == dist[u] + 1) {
        count[w] = SatAdd(count[w], count[u]);
      }
    });
  }
}

/// Validates subtraction seeds of one side's sender hubs against the
/// still-exact pre-deletion index; fills the rank-indexed seed arrays.
/// Seed validation must query the pre-deletion index: a stale entry of
/// the hub at its own endpoint means no trough path crosses the edge
/// at all.
template <class View>
void ValidateDeletionSeeds(const View& view,
                           const std::vector<Rank>& full_ranks,
                           const std::vector<Rank>& subtract_ranks,
                           std::span<const LabelEntry> near_labels,
                           VertexId near, VertexId far,
                           const std::vector<uint8_t>& hub_near,
                           const std::vector<uint8_t>& hub_far,
                           std::vector<uint8_t>* seed_ok,
                           std::vector<uint32_t>* seed_dist,
                           std::vector<Count>* seed_count,
                           std::vector<VertexId>* seed_far) {
  auto validate = [&](Rank r) {
    if (hub_near[r] == 0 || hub_far[r] == 0) return;
    const size_t pos = FindHubEntry(near_labels, r);
    if (pos == near_labels.size()) return;
    const LabelEntry& seed = near_labels[pos];
    if (view.Query(view.VertexAt(r), near).distance != seed.dist) return;
    (*seed_ok)[r] = 1;
    (*seed_dist)[r] = static_cast<uint32_t>(seed.dist) + 1;
    (*seed_count)[r] = seed.count;
    if (seed_far != nullptr) (*seed_far)[r] = far;
  };
  for (const Rank r : full_ranks) validate(r);
  for (const Rank r : subtract_ranks) validate(r);
}

/// Exact distance-change detection (post-deletion): hub u's distance
/// to opposite full sender x grew iff every old shortest route used
/// the edge, i.e. the through-edge length beat today's BFS distance.
/// Each BFS also runs a bottleneck-rank DP over its shortest-path
/// DAG: C(u) = the best (numerically largest) over shortest x-u paths
/// of the smallest rank on the path excluding u. A new trough entry
/// for the pair exists iff C(u) > rank(u) — some shortest path stays
/// entirely below u — which decides *exactly* whether a hub whose
/// distance grew without any pre-existing entry must re-run.
/// A hub must fully re-run iff some pair distance to an opposite full
/// sender x grew AND that pair matters: x still has a trough shortest
/// path below the hub (a new or renewed entry is due), or x holds an
/// entry for the hub — possibly a stale leftover of an earlier
/// insertion whose recorded distance the growth just reached, which
/// must be erased or renewed. Pairs that grew with neither leave
/// nothing to store, and a hub with only such pairs can still repair
/// its count-only pairs by subtraction.
template <class View>
void MarkDistanceChanges(const View& view,
                         const std::vector<Rank>& sender_ranks,
                         std::span<const uint32_t> sender_pre,
                         const std::vector<Rank>& opposite_full_ranks,
                         std::span<const uint32_t> opposite_pre,
                         std::vector<uint8_t>* needs_full) {
  if (sender_ranks.empty()) return;
  const VertexId n = view.NumVertices();
  const Rank min_sender =
      *std::min_element(sender_ranks.begin(), sender_ranks.end());
  std::vector<uint32_t> now(n), bottleneck(n);
  std::vector<VertexId> queue;
  const std::vector<Rank>& rank_of = view.VertexToRank();
  for (size_t xi = 0; xi < opposite_full_ranks.size(); ++xi) {
    const Rank rx = opposite_full_ranks[xi];
    if (rx <= min_sender) continue;  // no sender can hold an entry at x
    const VertexId x = view.VertexAt(rx);
    const uint32_t x_pre = opposite_pre[xi];
    if (x_pre == kInfSpcDistance) continue;
    now.assign(n, kInfSpcDistance);
    bottleneck.assign(n, 0);
    queue.clear();
    now[x] = 0;
    bottleneck[x] = kInfSpcDistance;  // empty prefix: no bottleneck yet
    queue.push_back(x);
    for (size_t head = 0; head < queue.size(); ++head) {
      const VertexId p = queue[head];
      const uint32_t via = std::min(bottleneck[p], uint32_t{rank_of[p]});
      view.ForEachReverseNeighbor(p, [&](VertexId w) {
        if (now[w] == kInfSpcDistance) {
          now[w] = now[p] + 1;
          bottleneck[w] = via;
          queue.push_back(w);
        } else if (now[w] == now[p] + 1) {
          bottleneck[w] = std::max(bottleneck[w], via);
        }
      });
    }
    const auto lx = view.Labels(x);
    for (size_t ui = 0; ui < sender_ranks.size(); ++ui) {
      const Rank r = sender_ranks[ui];
      if (r >= rx || (*needs_full)[r] != 0) continue;
      const VertexId u = view.VertexAt(r);
      if (sender_pre[ui] == kInfSpcDistance) continue;
      const uint64_t through = uint64_t{x_pre} + 1 + uint64_t{sender_pre[ui]};
      if (through < now[u]) {
        if ((now[u] != kInfSpcDistance && bottleneck[u] > r) ||
            FindHubEntry(lx, r) < lx.size()) {
          (*needs_full)[r] = 1;
        }
      }
    }
  }
}

/// Depth-capped count subtraction for a shared hub. Every trough path
/// this hub loses crosses the deleted edge once and continues into the
/// opposite region, so propagating the through-edge count from the far
/// endpoint (restricted below the hub, over the post-deletion graph —
/// the remainder of each lost path avoids the edge) visits only the
/// blast radius instead of the hub's whole coverage. No pruning
/// certificates are needed: a restricted path through a covered vertex
/// is provably longer than the entry distance it would have to match.
/// Returns false when saturation blocks subtraction — the caller
/// escalates to RepairHubAfterDeletion (which recomputes anything this
/// pass may already have written in live mode).
template <class View>
bool SubtractiveDeleteRepair(const View& view, Rank hub_rank, VertexId start,
                             uint32_t seed_dist, Count seed_count,
                             uint32_t depth_cap, RegionView region,
                             RepairScratch& s, LabelWriteSink& sink,
                             DynamicStats* stats) {
  bool escalate = seed_count == kSaturatedCount;
  if (!escalate) {
    s.bfs_queue.clear();
    s.bfs_touched.clear();
    s.bfs_dist[start] = seed_dist;
    s.bfs_count[start] = seed_count;
    s.bfs_queue.push_back(start);
    s.bfs_touched.push_back(start);

    for (size_t head = 0; head < s.bfs_queue.size(); ++head) {
      const VertexId v = s.bfs_queue[head];
      const uint32_t dv = s.bfs_dist[v];

      if (region.flags[v] != 0) {
        const auto lv = view.Labels(v);
        const size_t pos = FindHubEntry(lv, hub_rank);
        if (pos < lv.size() && lv[pos].dist == dv) {
          const LabelEntry old_entry = lv[pos];
          if (old_entry.count == kSaturatedCount ||
              s.bfs_count[v] >= old_entry.count) {
            // Saturation, or subtracting the last trough paths: the
            // entry must go, but `== 0` with surviving alternatives is
            // the only provable case — anything else escalates.
            if (old_entry.count != kSaturatedCount &&
                s.bfs_count[v] == old_entry.count) {
              sink.Erase(v, pos, hub_rank);
              ++stats->entries_erased;
            } else {
              escalate = true;
              break;
            }
          } else {
            sink.Renew(v, pos,
                       {hub_rank, old_entry.dist,
                        old_entry.count - s.bfs_count[v]});
            ++stats->entries_renewed;
          }
        }
      }

      if (dv < depth_cap) {
        view.ForEachNeighbor(v, [&](VertexId w) {
          if (view.RankOf(w) <= hub_rank) return;
          if (s.bfs_dist[w] == kInfSpcDistance) {
            s.bfs_dist[w] = dv + 1;
            s.bfs_count[w] = s.bfs_count[v];
            s.bfs_queue.push_back(w);
            s.bfs_touched.push_back(w);
          } else if (s.bfs_dist[w] == dv + 1) {
            s.bfs_count[w] = SatAdd(s.bfs_count[w], s.bfs_count[v]);
          }
        });
      }
    }

    for (const VertexId v : s.bfs_touched) {
      s.bfs_dist[v] = kInfSpcDistance;
      s.bfs_count[v] = 0;
    }
    if (!escalate) ++stats->subtract_repairs;
  }

  return !escalate;
}

/// Full pruned restricted BFS re-run of one hub over the post-deletion
/// graph — the same discipline as HP-SPC's per-hub iteration, except
/// that entries are only written at affected region vertices
/// (everything else is provably unchanged and is used for pruning and
/// count propagation only), followed by an erasure sweep: a region
/// vertex the re-run did not confirm has lost its trough paths to this
/// hub, so its entry (when present) is stale and must go.
/// `sweep_threads` bounds the live-mode erasure sweep's parallel-for.
/// Returns false iff the task aborted because it visited a vertex
/// claimed by a lower-rank in-flight task (`claim_owner`, parallel
/// waves only) — the caller re-runs it sequentially after the wave
/// commits.
template <class View>
bool RepairHubAfterDeletion(const View& view, Rank hub_rank,
                            RegionView region, RepairScratch& s,
                            LabelWriteSink& sink, DynamicStats* stats,
                            int sweep_threads,
                            const int32_t* claim_owner = nullptr,
                            int32_t claim_self = -1) {
  const VertexId hub = view.VertexAt(hub_rank);
  LoadHubDist(view, hub, s);

  s.bfs_queue.clear();
  s.bfs_touched.clear();
  s.bfs_dist[hub] = 0;
  s.bfs_count[hub] = 1;
  s.bfs_queue.push_back(hub);
  s.bfs_touched.push_back(hub);
  bool aborted = false;

  for (size_t head = 0; head < s.bfs_queue.size(); ++head) {
    const VertexId v = s.bfs_queue[head];
    const uint32_t dv = s.bfs_dist[v];

    // Wave-mode dependency check: visiting a vertex claimed by a
    // lower-rank in-flight task means this run could read that task's
    // not-yet-committed entries — bail out, the caller re-runs this
    // hub sequentially after the wave commits.
    if (claim_owner != nullptr) {
      const int32_t owner = claim_owner[v];
      if (owner >= 0 && owner < claim_self) {
        aborted = true;
        break;
      }
    }

    if (v != hub) {
      const auto lv = view.Labels(v);
      uint32_t over = kInfSpcDistance;  // certificate via strictly higher
      size_t pos = 0;
      bool has_hub = false;
      LabelEntry old_entry{};
      for (; pos < lv.size() && lv[pos].hub_rank <= hub_rank; ++pos) {
        if (lv[pos].hub_rank == hub_rank) {
          has_hub = true;
          old_entry = lv[pos];
          break;
        }
        const uint32_t hd = s.hub_dist[lv[pos].hub_rank];
        if (hd != kInfSpcDistance) {
          over = std::min(over, hd + lv[pos].dist);
        }
      }

      if (region.flags[v] == 0) {
        // Unaffected pair: the existing entry (if any) is still exact,
        // so the full certificate may include it.
        uint32_t certified = over;
        if (has_hub) {
          certified = std::min(certified,
                               static_cast<uint32_t>(old_entry.dist));
        }
        if (certified < dv) continue;
      } else {
        // Affected pair: the old entry cannot be trusted; prune only
        // via strictly higher hubs, then renew/insert.
        if (dv > over) continue;
        if (!has_hub) {
          sink.Insert(v, pos, {hub_rank, ToLabelDistance(dv), s.bfs_count[v]});
          ++stats->entries_inserted;
        } else if (old_entry.dist != dv || old_entry.count != s.bfs_count[v]) {
          sink.Renew(v, pos, {hub_rank, ToLabelDistance(dv), s.bfs_count[v]});
          ++stats->entries_renewed;
        }
        s.updated[v] = 1;
      }
    }

    view.ForEachNeighbor(v, [&](VertexId w) {
      if (view.RankOf(w) <= hub_rank) return;
      if (s.bfs_dist[w] == kInfSpcDistance) {
        s.bfs_dist[w] = dv + 1;
        s.bfs_count[w] = s.bfs_count[v];
        s.bfs_queue.push_back(w);
        s.bfs_touched.push_back(w);
      } else if (s.bfs_dist[w] == dv + 1) {
        s.bfs_count[w] = SatAdd(s.bfs_count[w], s.bfs_count[v]);
      }
    });
  }

  if (!aborted) {
    if (sink.staged()) {
      for (const VertexId v : *region.touched) {
        if (view.RankOf(v) <= hub_rank || s.updated[v] != 0) continue;
        const auto lv = view.Labels(v);
        const size_t pos = FindHubEntry(lv, hub_rank);
        if (pos < lv.size()) {
          sink.Erase(v, pos, hub_rank);
          ++stats->entries_erased;
        }
      }
    } else {
      // Per-vertex erases are independent, so the sweep is planned
      // cost-aware (label sizes vary wildly) and runs through the
      // shared parallel-for.
      std::vector<VertexId> to_erase;
      for (const VertexId v : *region.touched) {
        if (view.RankOf(v) <= hub_rank || s.updated[v] != 0) continue;
        const auto lv = view.Labels(v);
        if (FindHubEntry(lv, hub_rank) < lv.size()) to_erase.push_back(v);
      }
      if (!to_erase.empty()) {
        std::vector<uint64_t> costs;
        costs.reserve(to_erase.size());
        for (const VertexId v : to_erase) {
          costs.push_back(view.Labels(v).size());
        }
        const SchedulePlan plan = PlanIteration(
            ScheduleKind::kCostAware, to_erase, costs, view.VertexToRank());
        // Copy-on-write materialization touches the overlay's shared
        // spine (root/page/chunk unsharing) and stays sequential; the
        // erases themselves hit disjoint private chunks.
        std::vector<std::vector<LabelEntry>*> lists;
        lists.reserve(plan.sequence.size());
        for (const VertexId v : plan.sequence) {
          lists.push_back(&view.Mutable(v));
        }
        // Capped by the OpenMP environment (OMP_NUM_THREADS): the TSan
        // job pins teams to one thread because libgomp is not
        // instrumented, and an explicit num_threads must not undo that.
        ParallelForDynamic(lists.size(), sweep_threads, plan.chunk,
                           [&](size_t i) {
                             std::vector<LabelEntry>& mv = *lists[i];
                             const size_t pos = FindHubEntry(
                                 {mv.data(), mv.size()}, hub_rank);
                             if (pos < mv.size()) {
                               mv.erase(mv.begin() +
                                        static_cast<ptrdiff_t>(pos));
                             }
                           });
        stats->entries_erased += lists.size();
      }
    }
    ++stats->affected_hubs;
  }

  ResetHubDist(view, hub, s);
  for (const VertexId v : s.bfs_touched) {
    s.bfs_dist[v] = kInfSpcDistance;
    s.bfs_count[v] = 0;
    s.updated[v] = 0;
  }
  return !aborted;
}

/// Shared state the deletion driver threads through the kernels.
struct RepairContext {
  RepairScratch* scratch = nullptr;
  DynamicStats* stats = nullptr;
  int sweep_threads = 1;
};

/// Single-edge deletion repair of the edge `a -> b`, generic over the
/// two side views: `va` covers hubs on the a side (their coverage
/// crosses the edge forward into the b region), `vb` the mirror image.
/// For the undirected index both views are the same symmetric view;
/// for the directed index `va` is the forward view and `vb` the
/// backward one. `remove_edge` must delete the edge from the live
/// graph when invoked (detection and seed validation run before it,
/// repair after).
///
/// Every changed pair of a sender hub falls in one of two classes,
/// each with a provable certificate that picks the cheapest repair:
///
///  * Count-only changes (trough counts drop, distances hold). The
///    lost trough path routes `h .. a -> b .. x` (view orientation),
///    and both of its edge-endpoint prefixes are restricted shortest —
///    so h must hold a *valid* entry in both endpoint labels on its
///    write side. Repairable by the subtractive pass, seeded from h's
///    entry at its own side's endpoint (a stale seed means no trough
///    path crosses at all).
///
///  * Distance changes (some pair distance grows; the only source of
///    brand-new entries). Both pair endpoints must then be full
///    senders, so a plain post-deletion BFS from each opposite-side
///    full sender detects every such hub exactly — those few re-run
///    the full pruned restricted BFS. When the opposite full-sender
///    set is too large to scan, the side falls back to re-running all
///    of its full senders.
template <class ViewA, class ViewB, class RemoveFn>
void RepairEdgeDeletionPair(const ViewA& va, const ViewB& vb, VertexId a,
                            VertexId b, const RepairContext& ctx,
                            RemoveFn&& remove_edge) {
  const VertexId n = va.NumVertices();

  // The symmetric instantiation passes the same view twice; its two
  // sides then share one label table, the two rank sets are provably
  // disjoint (a vertex cannot satisfy both distance conditions), and
  // every per-side rank-indexed buffer below can alias its `a`
  // counterpart — keeping the undirected path at its pre-refactor
  // allocation count. Directed views get genuinely separate buffers
  // (one rank can sit on both sides of a cycle through the edge).
  const bool two_sided = va.WriteOverlay() != vb.WriteOverlay();

  // Hub presence at the endpoints, per view and on its write side (for
  // the symmetric view `vb`'s near/far pair is `va`'s far/near pair;
  // for the directed views they are the in-label sides for `va` and
  // the out-label sides for `vb`).
  std::vector<uint8_t> hub_a_near(n, 0), hub_a_far(n, 0);
  std::vector<uint8_t> hub_b_near_store, hub_b_far_store;
  for (const LabelEntry& e : va.Labels(a)) hub_a_near[e.hub_rank] = 1;
  for (const LabelEntry& e : va.Labels(b)) hub_a_far[e.hub_rank] = 1;
  if (two_sided) {
    hub_b_near_store.assign(n, 0);
    hub_b_far_store.assign(n, 0);
    for (const LabelEntry& e : vb.Labels(b)) hub_b_near_store[e.hub_rank] = 1;
    for (const LabelEntry& e : vb.Labels(a)) hub_b_far_store[e.hub_rank] = 1;
  }
  const std::vector<uint8_t>& hub_b_near =
      two_sided ? hub_b_near_store : hub_a_far;
  const std::vector<uint8_t>& hub_b_far =
      two_sided ? hub_b_far_store : hub_a_near;

  // Pre-deletion snapshots of the endpoint labels: subtraction seeds
  // must be the through-edge trough counts as they were before any
  // repair of this update touches them.
  const auto la_span = va.Labels(a);
  const auto lb_span = vb.Labels(b);
  const std::vector<LabelEntry> la(la_span.begin(), la_span.end());
  const std::vector<LabelEntry> lb(lb_span.begin(), lb_span.end());

  // Detection runs against the pre-deletion graph and index. For the
  // symmetric view the two sides are disjoint (u cannot satisfy both
  // distance conditions); a directed vertex can sit on both sides (a
  // cycle through the edge), in which case it owes one task per side —
  // they write different label sides and never conflict.
  AffectedSide side_a, side_b;
  DetectAffectedSide(va, a, b, hub_a_near, hub_a_far, &side_a);
  DetectAffectedSide(vb, b, a, hub_b_near, hub_b_far, &side_b);

  struct HubTask {
    Rank rank;
    bool subtract;
    bool on_b_side;       // hub detected on the b side (repairs via vb)
    VertexId start;       // subtract: far endpoint the BFS seeds from
    uint32_t seed_dist;   // subtract: entry dist + 1 across the edge
    Count seed_count;     // subtract: through-edge trough count
  };
  std::vector<HubTask> tasks;
  tasks.reserve(side_a.full_ranks.size() + side_a.subtract_ranks.size() +
                side_b.full_ranks.size() + side_b.subtract_ranks.size());

  // Rank-indexed seed arrays: a directed rank can appear on both sides
  // with distinct seeds, so two-sided runs keep separate sets; the
  // symmetric run shares one (disjoint rank sets).
  std::vector<uint8_t> seed_ok_a(n, 0);
  std::vector<uint32_t> seed_dist_a(n, 0);
  std::vector<Count> seed_count_a(n, 0);
  std::vector<uint8_t> seed_ok_b_store;
  std::vector<uint32_t> seed_dist_b_store;
  std::vector<Count> seed_count_b_store;
  if (two_sided) {
    seed_ok_b_store.assign(n, 0);
    seed_dist_b_store.assign(n, 0);
    seed_count_b_store.assign(n, 0);
  }
  std::vector<uint8_t>& seed_ok_b = two_sided ? seed_ok_b_store : seed_ok_a;
  std::vector<uint32_t>& seed_dist_b =
      two_sided ? seed_dist_b_store : seed_dist_a;
  std::vector<Count>& seed_count_b =
      two_sided ? seed_count_b_store : seed_count_a;
  ValidateDeletionSeeds(va, side_a.full_ranks, side_a.subtract_ranks,
                        {la.data(), la.size()}, a, b, hub_a_near, hub_a_far,
                        &seed_ok_a, &seed_dist_a, &seed_count_a, nullptr);
  ValidateDeletionSeeds(vb, side_b.full_ranks, side_b.subtract_ranks,
                        {lb.data(), lb.size()}, b, a, hub_b_near, hub_b_far,
                        &seed_ok_b, &seed_dist_b, &seed_count_b, nullptr);

  // The exact distance-change filter costs one plain BFS per opposite
  // full sender; past a few hundred the blanket re-run is cheaper.
  // Pre-deletion endpoint distances feed its through-edge formula and
  // must be captured while the edge still exists — but only when some
  // filtered side actually has full senders to test.
  constexpr size_t kDistanceFilterCap = 256;
  const bool filter_a = side_b.full_ranks.size() <= kDistanceFilterCap;
  const bool filter_b = side_a.full_ranks.size() <= kDistanceFilterCap;
  const bool need_pre_dists = (filter_a && !side_a.full_ranks.empty()) ||
                              (filter_b && !side_b.full_ranks.empty());
  const std::vector<uint32_t> pre_dist_a =
      need_pre_dists ? ViewBfsDistances(va, a) : std::vector<uint32_t>();
  const std::vector<uint32_t> pre_dist_b =
      need_pre_dists ? ViewBfsDistances(vb, b) : std::vector<uint32_t>();

  remove_edge();

  // The filter reads pre-deletion distances only at full senders;
  // extract them parallel to the rank lists (empty dense arrays mean
  // the corresponding call never fires, but guard anyway).
  auto extract_pre = [&](const std::vector<Rank>& ranks,
                         const std::vector<uint32_t>& dense,
                         const auto& view) {
    std::vector<uint32_t> pre;
    pre.reserve(ranks.size());
    for (const Rank r : ranks) {
      pre.push_back(dense.empty() ? kInfSpcDistance
                                  : dense[view.VertexAt(r)]);
    }
    return pre;
  };
  const std::vector<uint32_t> full_pre_a =
      extract_pre(side_a.full_ranks, pre_dist_a, va);
  const std::vector<uint32_t> full_pre_b =
      extract_pre(side_b.full_ranks, pre_dist_b, vb);

  std::vector<uint8_t> needs_full_a(n, 0);
  std::vector<uint8_t> needs_full_b_store;
  if (two_sided) needs_full_b_store.assign(n, 0);
  std::vector<uint8_t>& needs_full_b =
      two_sided ? needs_full_b_store : needs_full_a;
  if (filter_a) {
    MarkDistanceChanges(va, side_a.full_ranks,
                        {full_pre_a.data(), full_pre_a.size()},
                        side_b.full_ranks,
                        {full_pre_b.data(), full_pre_b.size()},
                        &needs_full_a);
  }
  if (filter_b) {
    MarkDistanceChanges(vb, side_b.full_ranks,
                        {full_pre_b.data(), full_pre_b.size()},
                        side_a.full_ranks,
                        {full_pre_a.data(), full_pre_a.size()},
                        &needs_full_b);
  }

  auto assemble = [&](const AffectedSide& side, bool filtered, bool on_b,
                      VertexId far, const std::vector<uint8_t>& needs_full,
                      const std::vector<uint8_t>& seed_ok,
                      const std::vector<uint32_t>& seed_dist,
                      const std::vector<Count>& seed_count) {
    for (const Rank r : side.full_ranks) {
      if (!filtered || needs_full[r] != 0) {
        tasks.push_back({r, false, on_b, 0, 0, 0});
      } else if (seed_ok[r] != 0) {
        tasks.push_back({r, true, on_b, far, seed_dist[r], seed_count[r]});
      }
      // else: provably no pair of this hub changed in a way that needs
      // a re-run — no grown pair carries an entry or surviving trough,
      // and count-only pairs need a valid common seed.
    }
    for (const Rank r : side.subtract_ranks) {
      if (seed_ok[r] != 0) {
        tasks.push_back({r, true, on_b, far, seed_dist[r], seed_count[r]});
      }
    }
  };
  assemble(side_a, filter_a, false, b, needs_full_a, seed_ok_a, seed_dist_a,
           seed_count_a);
  assemble(side_b, filter_b, true, a, needs_full_b, seed_ok_b, seed_dist_b,
           seed_count_b);

  // One pass over the region's labels buckets, per subtractive hub, the
  // farthest entry it may have to fix; the subtraction BFS stops at
  // that depth, and hubs nobody stores an entry for are skipped
  // outright (they provably cannot gain entries). An a-side hub's
  // entries at b-side vertices live on `va`'s write side, and vice
  // versa.
  std::vector<uint8_t> sub_mask(n, 0);  // bit 0: a-side, bit 1: b-side
  std::vector<uint32_t> bucket_a(n, 0);
  std::vector<uint32_t> bucket_b_store;
  if (two_sided) bucket_b_store.assign(n, 0);
  std::vector<uint32_t>& bucket_b = two_sided ? bucket_b_store : bucket_a;
  for (const HubTask& task : tasks) {
    if (task.subtract) {
      sub_mask[task.rank] |= task.on_b_side ? 2 : 1;
    }
  }
  for (const VertexId v : side_b.touched) {
    for (const LabelEntry& e : va.Labels(v)) {
      if ((sub_mask[e.hub_rank] & 1) != 0) {
        bucket_a[e.hub_rank] =
            std::max<uint32_t>(bucket_a[e.hub_rank], e.dist);
      }
    }
  }
  for (const VertexId v : side_a.touched) {
    for (const LabelEntry& e : vb.Labels(v)) {
      if ((sub_mask[e.hub_rank] & 2) != 0) {
        bucket_b[e.hub_rank] =
            std::max<uint32_t>(bucket_b[e.hub_rank], e.dist);
      }
    }
  }

  // Changed label pairs always straddle the cut, so a hub on the
  // a-side only rewrites entries at b-side vertices and vice versa.
  // Ascending global rank keeps pruning sound (a full re-run consults
  // higher-ranked labels — on both sides — which are already
  // repaired; same-rank cross-side tasks touch disjoint label sides).
  std::sort(tasks.begin(), tasks.end(),
            [](const HubTask& x, const HubTask& y) { return x.rank < y.rank; });
  LabelWriteSink sink_a(va.WriteOverlay());
  LabelWriteSink sink_b(vb.WriteOverlay());
  RepairScratch& s = *ctx.scratch;
  auto run_task = [&](const auto& view, const HubTask& task,
                      const AffectedSide& opposite, LabelWriteSink& sink,
                      const std::vector<uint32_t>& bucket) {
    const RegionView region{opposite.flags.data(), &opposite.touched};
    if (!task.subtract) {
      RepairHubAfterDeletion(view, task.rank, region, s, sink, ctx.stats,
                             ctx.sweep_threads);
    } else if (bucket[task.rank] >= task.seed_dist) {
      if (!SubtractiveDeleteRepair(view, task.rank, task.start,
                                   task.seed_dist, task.seed_count,
                                   bucket[task.rank], region, s, sink,
                                   ctx.stats)) {
        RepairHubAfterDeletion(view, task.rank, region, s, sink, ctx.stats,
                               ctx.sweep_threads);
      }
    }
  };
  for (const HubTask& task : tasks) {
    if (task.on_b_side) {
      run_task(vb, task, side_a, sink_b, bucket_b);
    } else {
      run_task(va, task, side_b, sink_a, bucket_a);
    }
  }
}

}  // namespace repair
}  // namespace pspc

#endif  // PSPC_SRC_DYNAMIC_REPAIR_CORE_H_
