#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint_rules.h"

/// The spc_lint golden corpus: each deliberately-bad snippet in
/// tests/lint_corpus/ must fail with exactly the expected rule at the
/// expected line, the clean snippets must pass, and the real tree must
/// lint clean (the same invariant the CI lint lane enforces by running
/// the spc_lint binary).
namespace {

namespace fs = std::filesystem;

fs::path SourceRoot() { return fs::path(PSPC_SOURCE_ROOT); }

std::string ReadCorpusFile(const std::string& name) {
  std::string content;
  const fs::path path = SourceRoot() / "tests" / "lint_corpus" / name;
  EXPECT_TRUE(spclint::ReadFile(path, &content)) << path;
  return content;
}

spclint::LintOptions CorpusOptions() {
  spclint::LintOptions options;
  options.metric_catalog = {"serve.queries_total"};
  return options;
}

/// (rule, line) pairs, sorted, for golden comparison.
std::vector<std::pair<std::string, size_t>> Summarize(
    const std::vector<spclint::Violation>& violations) {
  std::vector<std::pair<std::string, size_t>> out;
  out.reserve(violations.size());
  for (const spclint::Violation& v : violations) {
    out.emplace_back(v.rule, v.line);
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct CorpusCase {
  const char* corpus_file;  // under tests/lint_corpus/
  const char* lint_as;      // path driving classification
  std::vector<std::pair<std::string, size_t>> expected;
};

class LintCorpusTest : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(LintCorpusTest, FiresExactlyTheExpectedDiagnostics) {
  const CorpusCase& c = GetParam();
  const std::string content = ReadCorpusFile(c.corpus_file);
  ASSERT_FALSE(content.empty()) << c.corpus_file;
  const std::vector<spclint::Violation> violations =
      spclint::LintFile(c.lint_as, content, CorpusOptions());
  std::vector<std::pair<std::string, size_t>> expected = c.expected;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(Summarize(violations), expected) << c.corpus_file;
  for (const spclint::Violation& v : violations) {
    EXPECT_EQ(v.file, c.lint_as);
    EXPECT_FALSE(v.message.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Golden, LintCorpusTest,
    ::testing::Values(
        CorpusCase{"metric_literal.cc",
                   "src/common/metric_literal.cc",
                   {{"metric-literal", 4}, {"metric-literal", 5}}},
        CorpusCase{"raw_mutex.cc",
                   "src/common/raw_mutex.cc",
                   {{"raw-mutex", 7}, {"raw-mutex", 10}}},
        CorpusCase{"bare_relaxed.cc",
                   "src/common/bare_relaxed.cc",
                   {{"bare-relaxed", 14}}},
        CorpusCase{"hot_path_calls.cc",
                   "src/serve/hot_path_calls.cc",
                   {{"hot-path-call", 7},
                    {"hot-path-call", 8},
                    {"hot-path-call", 9}}},
        CorpusCase{"bad_guard.h",
                   "src/serve/bad_guard.h",
                   {{"include-guard", 3}}},
        CorpusCase{"tsa_escape.cc",
                   "src/serve/tsa_escape.cc",
                   {{"tsa-escape", 4}}},
        CorpusCase{"void_cast.cc",
                   "src/common/void_cast.cc",
                   {{"void-cast", 7}}},
        CorpusCase{"clean.cc", "src/serve/clean.cc", {}},
        CorpusCase{"clean_header.h", "src/serve/clean_header.h", {}}),
    [](const ::testing::TestParamInfo<CorpusCase>& info) {
      std::string name = info.param.corpus_file;
      std::replace(name.begin(), name.end(), '.', '_');
      return name;
    });

TEST(LintRulesTest, HotPathRulesOnlyApplyToServeAndDynamic) {
  // The identical content is fine under src/common/ (not a hot path).
  const std::string content = ReadCorpusFile("hot_path_calls.cc");
  const std::vector<spclint::Violation> violations =
      spclint::LintFile("src/common/hot_path_calls.cc", content,
                        CorpusOptions());
  EXPECT_TRUE(violations.empty());
}

TEST(LintRulesTest, PragmaOnceSatisfiesTheGuardRule) {
  const std::vector<spclint::Violation> violations = spclint::LintFile(
      "src/common/example.h", "#pragma once\nint x;\n", CorpusOptions());
  EXPECT_TRUE(violations.empty());
}

TEST(LintRulesTest, CanonicalGuard) {
  EXPECT_EQ(spclint::CanonicalGuard("src/serve/request_queue.h"),
            "PSPC_SRC_SERVE_REQUEST_QUEUE_H_");
}

TEST(LintRulesTest, ScrubBlanksCommentsAndStrings) {
  const spclint::ScrubbedSource src = spclint::Scrub(
      "int a; // std::mutex in a comment\n"
      "const char* s = \"std::mutex in a string\";\n"
      "std::mutex real;\n");
  ASSERT_EQ(src.code.size(), 4u);  // trailing newline yields an empty line
  EXPECT_EQ(src.code[0].find("mutex"), std::string::npos);
  EXPECT_EQ(src.code[1].find("mutex"), std::string::npos);
  EXPECT_NE(src.code[2].find("std::mutex"), std::string::npos);
  EXPECT_TRUE(src.has_comment[0]);
  EXPECT_FALSE(src.has_comment[1]);
}

TEST(LintRulesTest, StringLiteralsSurviveScrubbing) {
  const spclint::ScrubbedSource src =
      spclint::Scrub("auto* n = \"serve.queries_total\";  // catalog\n");
  const std::vector<std::string> literals =
      spclint::StringLiterals(src.code_with_strings[0]);
  ASSERT_EQ(literals.size(), 1u);
  EXPECT_EQ(literals[0], "serve.queries_total");
}

TEST(LintRulesTest, MetricCatalogParsesFromTheRealHeader) {
  std::string content;
  ASSERT_TRUE(spclint::ReadFile(SourceRoot() / "src/obs/metric_names.h",
                                &content));
  const std::set<std::string> catalog =
      spclint::ParseMetricCatalog(content);
  EXPECT_GT(catalog.size(), 10u);
  EXPECT_EQ(catalog.count("serve.queries_total"), 1u);
}

/// The whole point: the shipped tree satisfies its own invariants.
TEST(LintCleanTreeTest, RepositoryLintsClean) {
  std::string error;
  const std::vector<spclint::Violation> violations =
      spclint::LintTree(SourceRoot(), &error);
  EXPECT_TRUE(error.empty()) << error;
  for (const spclint::Violation& v : violations) {
    ADD_FAILURE() << v.file << ":" << v.line << ": [" << v.rule << "] "
                  << v.message;
  }
}

}  // namespace
