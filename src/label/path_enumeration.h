#ifndef PSPC_SRC_LABEL_PATH_ENUMERATION_H_
#define PSPC_SRC_LABEL_PATH_ENUMERATION_H_

#include <vector>

#include "src/common/types.h"
#include "src/graph/graph.h"
#include "src/label/spc_index.h"

/// Materializing shortest paths from the counting index — the route-
/// planning facet of the paper's application (2): knowing there are 14
/// equally short routes is half the feature; handing the first k of
/// them to the navigation layer is the other half.
///
/// The index answers "is neighbor v on a shortest path to t?" in one
/// query (`dist(v,t) == remaining - 1`), so a depth-first walk guided
/// by those queries enumerates shortest paths lazily with no
/// precomputed parents. Paths come out in lexicographic vertex order
/// (adjacency lists are sorted), deterministically.
namespace pspc {

/// Up to `limit` distinct shortest s->t paths, each a vertex sequence
/// starting with `s` and ending with `t`. Empty if unreachable.
/// `graph` must be the graph the index was built from.
std::vector<std::vector<VertexId>> EnumerateShortestPaths(
    const Graph& graph, const SpcIndex& index, VertexId s, VertexId t,
    size_t limit);

}  // namespace pspc

#endif  // PSPC_SRC_LABEL_PATH_ENUMERATION_H_
