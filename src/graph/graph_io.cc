#include "src/graph/graph_io.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/graph/graph_builder.h"

namespace pspc {
namespace {

constexpr uint64_t kBinaryMagic = 0x5053'5043'4752'4601ull;  // "PSPCGRF" v1

Result<std::vector<std::pair<uint64_t, uint64_t>>> ParseRawEdges(
    std::istream& in) {
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) {
      return Status::Corruption("bad edge at line " + std::to_string(line_no) +
                                ": '" + line + "'");
    }
    edges.emplace_back(u, v);
  }
  return edges;
}

Result<Graph> ParseEdgeStream(std::istream& in) {
  auto raw = ParseRawEdges(in);
  if (!raw.ok()) return raw.status();
  uint64_t max_id = 0;
  for (const auto& [u, v] : raw.value()) {
    max_id = std::max({max_id, u, v});
  }
  if (!raw.value().empty() && max_id >= kInvalidVertex) {
    return Status::OutOfRange("vertex id " + std::to_string(max_id) +
                              " exceeds the 32-bit id space; use the "
                              "Remapped loader");
  }
  GraphBuilder builder(
      raw.value().empty() ? 0 : static_cast<VertexId>(max_id + 1));
  for (const auto& [u, v] : raw.value()) {
    builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return builder.Build();
}

Result<Graph> ParseEdgeStreamRemapped(std::istream& in) {
  auto raw = ParseRawEdges(in);
  if (!raw.ok()) return raw.status();
  std::unordered_map<uint64_t, VertexId> remap;
  auto intern = [&remap](uint64_t id) {
    auto [it, inserted] =
        remap.emplace(id, static_cast<VertexId>(remap.size()));
    // Structured-binding field is unused on this path.
    (void)inserted;
    return it->second;
  };
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(raw.value().size());
  for (const auto& [u, v] : raw.value()) {
    // Sequence the interning explicitly: first-appearance order must
    // not depend on the compiler's argument evaluation order.
    const VertexId iu = intern(u);
    const VertexId iv = intern(v);
    edges.emplace_back(iu, iv);
  }
  GraphBuilder builder(static_cast<VertexId>(remap.size()));
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return builder.Build();
}

}  // namespace

Result<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ParseEdgeStream(in);
}

Result<Graph> ParseEdgeList(const std::string& text) {
  std::istringstream in(text);
  return ParseEdgeStream(in);
}

Result<Graph> LoadEdgeListRemapped(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ParseEdgeStreamRemapped(in);
}

Result<Graph> ParseEdgeListRemapped(const std::string& text) {
  std::istringstream in(text);
  return ParseEdgeStreamRemapped(in);
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# pspc edge list: " << graph.NumVertices() << " vertices, "
      << graph.NumEdges() << " edges\n";
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (VertexId v : graph.Neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Status SaveBinary(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  auto put = [&out](const void* p, size_t bytes) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(bytes));
  };
  const uint64_t n = graph.NumVertices();
  const uint64_t deg_sum = graph.NeighborArray().size();
  put(&kBinaryMagic, sizeof(kBinaryMagic));
  put(&n, sizeof(n));
  put(&deg_sum, sizeof(deg_sum));
  put(graph.Offsets().data(), graph.Offsets().size() * sizeof(EdgeId));
  put(graph.NeighborArray().data(), deg_sum * sizeof(VertexId));
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<Graph> LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  auto get = [&in](void* p, size_t bytes) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
    return static_cast<bool>(in);
  };
  uint64_t magic = 0, n = 0, deg_sum = 0;
  if (!get(&magic, sizeof(magic)) || magic != kBinaryMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!get(&n, sizeof(n)) || !get(&deg_sum, sizeof(deg_sum))) {
    return Status::Corruption("truncated header in " + path);
  }
  std::vector<EdgeId> offsets(n + 1);
  std::vector<VertexId> neighbors(deg_sum);
  if (!get(offsets.data(), offsets.size() * sizeof(EdgeId)) ||
      !get(neighbors.data(), neighbors.size() * sizeof(VertexId))) {
    return Status::Corruption("truncated payload in " + path);
  }
  if (offsets.front() != 0 || offsets.back() != deg_sum) {
    return Status::Corruption("inconsistent CSR offsets in " + path);
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::Corruption("non-monotone CSR offsets in " + path);
    }
  }
  for (VertexId v : neighbors) {
    if (v >= n) return Status::Corruption("neighbor id out of range in " + path);
  }
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace pspc
