#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/baseline/bfs_spc.h"
#include "src/core/hp_spc_builder.h"
#include "src/core/pspc_builder.h"
#include "src/graph/generators.h"
#include "src/graph/graph_builder.h"
#include "src/label/query_engine.h"
#include "src/order/degree_order.h"
#include "src/reduce/reduced_index.h"

namespace pspc {
namespace {

PspcOptions Defaults() {
  PspcOptions o;
  o.num_landmarks = 8;
  return o;
}

// ------------------------------------------------------- Saturation --

TEST(SaturationStressTest, CountsSaturateIdenticallyEverywhere) {
  // 22 interior layers of width 8: 8^22 = 2^66 shortest paths — beyond
  // uint64. The BFS oracle, HP-SPC and PSPC must all clamp to the same
  // saturated value rather than wrap.
  const Graph g = GenerateDiamondLadder(24, 8);
  const VertexId t = g.NumVertices() - 1;
  const SpcResult oracle = BfsSpcPair(g, 0, t);
  EXPECT_EQ(oracle.distance, 23u);
  EXPECT_EQ(oracle.count, kSaturatedCount);

  const VertexOrder order = DegreeOrder(g);
  EXPECT_EQ(BuildPspcIndex(g, order, Defaults()).index.Query(0, t), oracle);
  EXPECT_EQ(BuildHpSpcIndex(g, order).index.Query(0, t), oracle);
}

TEST(SaturationStressTest, JustBelowSaturationStaysExact) {
  // 21 interior layers of width 8: 8^21 = 2^63 fits in uint64.
  const Graph g = GenerateDiamondLadder(23, 8);
  const VertexId t = g.NumVertices() - 1;
  const SpcResult r = BuildPspcIndex(g, DegreeOrder(g), Defaults())
                          .index.Query(0, t);
  EXPECT_EQ(r.distance, 22u);
  EXPECT_EQ(r.count, uint64_t{1} << 63);
}

// ------------------------------------------------------- Mini-fuzz --

TEST(FuzzStressTest, TwentySeedsPspcEqualsHpSpc) {
  for (uint64_t seed = 100; seed < 120; ++seed) {
    const Graph g =
        GenerateErdosRenyi(40 + seed % 23, 90 + (seed * 7) % 61, seed);
    const VertexOrder order = DegreeOrder(g);
    ASSERT_EQ(BuildPspcIndex(g, order, Defaults()).index,
              BuildHpSpcIndex(g, order).index)
        << "seed " << seed;
  }
}

TEST(FuzzStressTest, ReducedIndexAcrossSeeds) {
  ReductionOptions opts;
  opts.build.num_landmarks = 4;
  for (uint64_t seed = 200; seed < 208; ++seed) {
    const Graph g = GenerateClusteredBa(60, 2, 0.5, seed);
    const auto idx = ReducedSpcIndex::Build(g, opts);
    const QueryBatch batch = MakeRandomQueries(60, 150, seed);
    for (const auto& [s, t] : batch) {
      ASSERT_EQ(idx.Query(s, t), BfsSpcPair(g, s, t))
          << "seed " << seed << " pair (" << s << "," << t << ")";
    }
  }
}

TEST(FuzzStressTest, MidSizeGraphRandomQueries) {
  const Graph g = GenerateBarabasiAlbert(2500, 5, 0xCAFE);
  const SpcIndex index = BuildPspcIndex(g, DegreeOrder(g), Defaults()).index;
  const QueryBatch batch = MakeRandomQueries(2500, 400, 0xF00D);
  for (const auto& [s, t] : batch) {
    ASSERT_EQ(index.Query(s, t), BfsSpcPair(g, s, t))
        << "pair (" << s << "," << t << ")";
  }
}

// ------------------------------------------- Serialization fuzzing --

TEST(SerializationFuzzTest, TruncationAtEveryStrideNeverCrashes) {
  const Graph g = GenerateErdosRenyi(30, 70, 0xBEEF);
  const SpcIndex index = BuildPspcIndex(g, DegreeOrder(g), Defaults()).index;
  const std::string path = ::testing::TempDir() + "/fuzz.idx";
  ASSERT_TRUE(index.Save(path).ok());

  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);

  for (size_t cut = 0; cut < bytes.size(); cut += 13) {
    const std::string cut_path = ::testing::TempDir() + "/fuzz_cut.idx";
    std::ofstream out(cut_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    const auto loaded = SpcIndex::Load(cut_path);
    EXPECT_FALSE(loaded.ok()) << "truncation at " << cut << " loaded";
    std::remove(cut_path.c_str());
  }
  std::remove(path.c_str());
}

TEST(SerializationFuzzTest, HeaderBitFlipsAreRejected) {
  const Graph g = GeneratePath(10);
  const SpcIndex index = BuildPspcIndex(g, DegreeOrder(g), Defaults()).index;
  const std::string path = ::testing::TempDir() + "/flip.idx";
  ASSERT_TRUE(index.Save(path).ok());

  for (size_t byte = 0; byte < 8; ++byte) {  // every magic byte
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(byte));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x40);
    f.seekp(static_cast<std::streamoff>(byte));
    f.write(&c, 1);
    f.close();
    EXPECT_FALSE(SpcIndex::Load(path).ok()) << "magic byte " << byte;
    // Flip back for the next round.
    std::fstream g2(path, std::ios::binary | std::ios::in | std::ios::out);
    g2.seekp(static_cast<std::streamoff>(byte));
    c = static_cast<char>(c ^ 0x40);
    g2.write(&c, 1);
  }
  std::remove(path.c_str());
}

// ----------------------------------------------------- Degenerates --

TEST(DegenerateStressTest, ZeroVertexGraph) {
  const Graph g = MakeGraph(0, {});
  const auto built = BuildPspcIndex(g, IdentityOrder(0), Defaults());
  EXPECT_EQ(built.index.TotalEntries(), 0u);
  EXPECT_EQ(built.index.NumVertices(), 0u);
}

TEST(DegenerateStressTest, TwoVertexGraph) {
  const Graph g = MakeGraph(2, {{0, 1}});
  const auto built = BuildPspcIndex(g, DegreeOrder(g), Defaults());
  EXPECT_EQ(built.index.Query(0, 1), (SpcResult{1, 1}));
}

TEST(DegenerateStressTest, RepeatedBuildsAreIdentical) {
  const Graph g = GenerateWattsStrogatz(300, 4, 0.3, 0xAAA);
  const VertexOrder order = DegreeOrder(g);
  const SpcIndex first = BuildPspcIndex(g, order, Defaults()).index;
  for (int run = 0; run < 5; ++run) {
    ASSERT_EQ(BuildPspcIndex(g, order, Defaults()).index, first)
        << "run " << run;
  }
}

TEST(DegenerateStressTest, SelfLoopHeavyInputIsClean) {
  GraphBuilder b(5);
  for (VertexId v = 0; v < 5; ++v) b.AddEdge(v, v);  // all dropped
  b.AddEdge(0, 1);
  const Graph g = b.Build();
  const auto built = BuildPspcIndex(g, DegreeOrder(g), Defaults());
  EXPECT_EQ(built.index.Query(0, 1), (SpcResult{1, 1}));
  EXPECT_EQ(built.index.Query(2, 3), (SpcResult{kInfSpcDistance, 0}));
}

}  // namespace
}  // namespace pspc
