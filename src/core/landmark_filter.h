#ifndef PSPC_SRC_CORE_LANDMARK_FILTER_H_
#define PSPC_SRC_CORE_LANDMARK_FILTER_H_

#include <cstddef>
#include <vector>

#include "src/common/types.h"
#include "src/graph/graph.h"
#include "src/order/vertex_order.h"

/// Landmark-based filtering (paper §III-H).
///
/// Exact BFS distance tables are precomputed from the `k` *top-ranked*
/// vertices (which, under the degree order, are the highest-degree
/// vertices — the paper's landmark definition). During construction a
/// candidate label `(w, d)` on vertex `u` can be discarded without
/// scanning any label set if some landmark `l` witnesses
/// `dist(l,u) + dist(l,w) < d` (triangle inequality gives
/// `dist(u,w) < d`, i.e., the candidate is not a shortest path). When
/// the candidate's hub *is* a landmark the test is exact, which is the
/// common case because high-ranked hubs dominate every iteration's
/// candidates — the paper's stated motivation.
///
/// The filter is a pure accelerator: it never changes the constructed
/// index (asserted by tests), only how fast candidates die.
namespace pspc {

class LandmarkFilter {
 public:
  /// Empty filter that prunes nothing.
  LandmarkFilter() = default;

  /// BFS tables from the `num_landmarks` top-ranked vertices, computed
  /// with `num_threads` parallel BFS runs. Capped at n.
  LandmarkFilter(const Graph& graph, const VertexOrder& order,
                 uint32_t num_landmarks, int num_threads);

  /// Outcome of a landmark probe: the candidate is provably not
  /// shortest (kPrune), provably shortest at distance d (kKeep — only
  /// decidable when the hub is a landmark, whose distance table is
  /// exact), or unknown (fall back to the label-scan query).
  enum class Verdict { kPrune, kKeep, kUnknown };

  /// Tests the candidate label (hub of rank `hub_rank`, distance `d`)
  /// on vertex `u`. Only the decisive landmark-hub fast path is used
  /// here (the paper's §III-H observation: landmark labels are the
  /// majority of every iteration's candidates, and for them the stored
  /// distance answers the prune test exactly — both ways). Candidates
  /// of non-landmark hubs return kUnknown immediately: a generic
  /// k-probe triangle scan costs more than the label query's early
  /// exit, which is also why the paper's Fig. 12 curve turns upward as
  /// landmarks grow.
  Verdict Probe(VertexId u, Rank hub_rank, Distance d) const {
    if (hub_rank >= k_) return Verdict::kUnknown;
    const Distance exact = dist_[static_cast<size_t>(u) * k_ + hub_rank];
    return exact < d ? Verdict::kPrune : Verdict::kKeep;
  }

  /// True iff some landmark proves dist(u, w) < d (triangle
  /// inequality); never claims a prune for a valid candidate.
  bool Prunes(VertexId u, VertexId w, Distance d) const {
    const Distance* du = &dist_[static_cast<size_t>(u) * k_];
    const Distance* dw = &dist_[static_cast<size_t>(w) * k_];
    for (uint32_t l = 0; l < k_; ++l) {
      if (du[l] == kInfDistance || dw[l] == kInfDistance) continue;
      if (static_cast<uint32_t>(du[l]) + static_cast<uint32_t>(dw[l]) <
          static_cast<uint32_t>(d)) {
        return true;
      }
    }
    return false;
  }

  uint32_t NumLandmarks() const { return k_; }
  size_t SizeBytes() const { return dist_.size() * sizeof(Distance); }

 private:
  uint32_t k_ = 0;
  std::vector<Distance> dist_;  // n rows of k landmark distances
};

}  // namespace pspc

#endif  // PSPC_SRC_CORE_LANDMARK_FILTER_H_
