#ifndef PSPC_SRC_SERVE_EPOCH_MANAGER_H_
#define PSPC_SRC_SERVE_EPOCH_MANAGER_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

/// Epoch-based reclamation for the serving subsystem.
///
/// Readers *pin* the current epoch into a private slot before touching
/// a published pointer and clear the slot when done; the (single)
/// writer advances the global epoch each time it retires a pointer and
/// frees a retired pointer only once every active slot has moved past
/// its retire epoch. The invariant the reclaimer relies on: a reader
/// that still holds a pointer retired at epoch `e` pinned *before* the
/// swap that retired it, so its slot records an epoch `< e` — once
/// `min(active slots) >= e`, nobody can be reading the pointee.
///
/// Readers take no locks and never wait on the fast path: Enter is one
/// load plus a CAS on a free slot (first-fit from a per-thread hint,
/// so steady-state re-entry is a single CAS), Exit is one store. All
/// cross-thread operations are seq_cst — the slot-scan soundness
/// argument ("if the writer's scan saw the slot empty, the reader's
/// snapshot load happened after the writer's swap") needs a total
/// order, and the cost is irrelevant next to the micro-batch of
/// queries each pin amortizes over.
///
/// When every lock-free slot is simultaneously pinned (pins, not
/// threads — one thread holding many refs occupies many slots), Enter
/// falls back to mutex-guarded *overflow pins* instead of aborting:
/// each excess reader records its own entry epoch in an overflow
/// table, and the cached minimum over the table is what the reclaimer
/// sees. Tracking epochs per overflow reader (rather than one shared
/// pin) keeps reclamation live under sustained oversubscription — the
/// minimum advances as old overflow readers leave, even if the table
/// never empties. The seq_cst publication of that minimum gives the
/// writer's post-swap scan the same guarantee as a regular slot. The
/// overflow path serializes on its mutex, so it is a graceful-
/// degradation valve, not extra capacity; kMaxSlots is sized so real
/// workloads never reach it.
namespace pspc {

namespace obs {
class Counter;
class FlightRecorder;
}  // namespace obs

class EpochManager {
 public:
  /// Lock-free reader slots; pins beyond this go to the overflow
  /// table and get slot tokens >= kMaxSlots.
  static constexpr size_t kMaxSlots = 512;

  /// True iff `slot` (a token Enter returned) is an overflow pin.
  static constexpr bool IsOverflowSlot(size_t slot) {
    return slot >= kMaxSlots;
  }

  /// MinActiveEpoch() when no reader is pinned.
  static constexpr uint64_t kNoActiveReader = UINT64_MAX;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  uint64_t CurrentEpoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Pins the calling thread at the current epoch; returns the slot to
  /// pass to Exit. Never fails: with all kMaxSlots lock-free slots
  /// pinned it degrades to a mutex-guarded overflow pin (see above).
  size_t Enter() EXCLUDES(overflow_mu_);

  /// Releases a slot returned by Enter.
  void Exit(size_t slot) EXCLUDES(overflow_mu_);

  /// Writer-side: bumps the global epoch; returns the new value (the
  /// retire epoch for a pointer unpublished just before the bump).
  uint64_t AdvanceEpoch();

  /// Smallest epoch any pinned reader entered at, or kNoActiveReader.
  uint64_t MinActiveEpoch() const;

  /// Number of currently pinned slots (diagnostics / shutdown checks).
  size_t ActiveReaders() const;

  /// Counts overflow pins (the graceful-degradation valve firing) into
  /// `counter`; null disables. Call before readers start — the pointer
  /// itself is unsynchronized.
  void BindOverflowPinCounter(obs::Counter* counter) {
    overflow_pin_counter_ = counter;
  }

  /// Emits a flight-recorder event per overflow pin (slot-exhaustion
  /// forensics); null disables. Same wiring-time contract as
  /// BindOverflowPinCounter.
  void BindFlightRecorder(obs::FlightRecorder* recorder) {
    flight_recorder_ = recorder;
  }

 private:
  // One cache line per slot so reader pins do not false-share.
  struct alignas(64) Slot {
    std::atomic<uint64_t> value{0};  // 0 = free, else pinned epoch
  };

  // Recomputes overflow_min_ from the table.
  void RefreshOverflowMin() REQUIRES(overflow_mu_);

  std::atomic<uint64_t> epoch_{1};
  std::array<Slot, kMaxSlots> slots_{};

  // Overflow pins: entry i of the table holds overflow reader
  // (kMaxSlots + i)'s entry epoch, 0 = free. `overflow_min_` caches
  // the minimum non-zero entry (0 = table empty) so MinActiveEpoch
  // can read it from the writer without the lock; the mutex
  // serializes table updates against that cache refresh.
  spc::Mutex overflow_mu_;
  std::vector<uint64_t> overflow_epochs_ GUARDED_BY(overflow_mu_);
  // Atomics, not GUARDED_BY: mutated only under overflow_mu_ but read
  // lock-free by the writer (MinActiveEpoch / ActiveReaders).
  std::atomic<size_t> overflow_pins_{0};
  std::atomic<uint64_t> overflow_min_{0};
  obs::Counter* overflow_pin_counter_ = nullptr;  // set before readers
  obs::FlightRecorder* flight_recorder_ = nullptr;  // set before readers
};

}  // namespace pspc

#endif  // PSPC_SRC_SERVE_EPOCH_MANAGER_H_
