// Extension bench (paper §IV describes the reductions but reports no
// dedicated experiment): index-size and query-time effect of the
// 1-shell and neighborhood-equivalence reductions, on the datasets
// where they bite (tree-fringed and twin-rich graphs). Expected shape:
// both reductions shrink the index on fringy/twin-rich inputs at a
// small query-time cost for the extra adapter hops.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_common.h"
#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/graph/graph_builder.h"
#include "src/label/query_engine.h"
#include "src/reduce/reduced_index.h"

namespace {

/// The registry's BA/R-MAT/grid generators produce almost no degree-1
/// fringe or twin vertices, so on them the reductions are size-neutral
/// (see EXPERIMENTS.md). Real social graphs are pendant-heavy — YT's
/// original has huge one-video-user fringes — so the "+f" variants
/// graft deterministic pendant chains (1-shell food) and leaf twins
/// (equivalence food) onto the base dataset: +50% vertices as chains
/// of length 1-3, plus 5 duplicate leaves on each of the 32 hubs.
const pspc::Graph& GetFringedGraph(const std::string& code) {
  static auto* cache = new std::map<std::string, pspc::Graph>();
  auto it = cache->find(code);
  if (it != cache->end()) return it->second;

  const pspc::Graph& base = pspc::bench::GetGraph(code);
  const pspc::VertexId n = base.NumVertices();
  const pspc::VertexId extra = n / 2;
  const pspc::VertexId twins = 32 * 5;
  pspc::GraphBuilder b(n + extra + twins);
  for (pspc::VertexId u = 0; u < n; ++u) {
    for (pspc::VertexId v : base.Neighbors(u)) {
      if (u < v) b.AddEdge(u, v);
    }
  }
  pspc::Rng rng(0xF41);
  pspc::VertexId next = n;
  while (next < n + extra) {
    pspc::VertexId anchor = static_cast<pspc::VertexId>(rng.NextBounded(n));
    const int chain = 1 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < chain && next < n + extra; ++i) {
      b.AddEdge(anchor, next);
      anchor = next++;
    }
  }
  for (pspc::VertexId hub = 0; hub < 32; ++hub) {
    for (int i = 0; i < 5; ++i) b.AddEdge(hub, next++);
  }
  return cache->emplace(code, b.Build()).first->second;
}

void ReductionVariant(benchmark::State& state, const std::string& code,
                      bool one_shell, bool equivalence) {
  const bool fringed = code.back() == 'f';
  const pspc::Graph& g =
      fringed ? GetFringedGraph(code.substr(0, code.size() - 1))
              : pspc::bench::GetGraph(code);
  pspc::ReductionOptions options;
  options.use_one_shell = one_shell;
  options.use_equivalence = equivalence;
  options.build = pspc::bench::PspcOptionsAllThreads();
  pspc::ReducedSpcIndex::Build(g, options);  // untimed warmup
  for (auto _ : state) {
    pspc::WallTimer timer;
    const auto index = pspc::ReducedSpcIndex::Build(g, options);
    state.SetIterationTime(timer.ElapsedSeconds());

    const pspc::QueryBatch batch = pspc::MakeRandomQueries(
        g.NumVertices(), pspc::bench::QueryWorkloadSize() / 10, 0xABA);
    pspc::WallTimer query_timer;
    for (const auto& [s, t] : batch) {
      benchmark::DoNotOptimize(index.Query(s, t));
    }
    state.counters["query_us"] =
        query_timer.ElapsedMicros() / static_cast<double>(batch.size());
    state.counters["index_MB"] =
        static_cast<double>(index.IndexSizeBytes()) / (1024.0 * 1024.0);
    state.counters["reduced_V"] =
        static_cast<double>(index.NumReducedVertices());
  }
}

void Register(const std::string& code, const char* tag, bool shell,
              bool equiv) {
  benchmark::RegisterBenchmark(
      ("reductions/" + code + "/" + tag).c_str(),
      [code, shell, equiv](benchmark::State& s) {
        ReductionVariant(s, code, shell, equiv);
      })
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kSecond);
}

int RegisterAll() {
  // Base datasets plus their pendant/twin-grafted variants ("+f"),
  // which model the fringe-heavy shape of the paper's real graphs.
  for (const std::string code : {"YT", "RD", "FB", "YTf", "FBf"}) {
    Register(code, "none", false, false);
    Register(code, "one_shell", true, false);
    Register(code, "equivalence", false, true);
    Register(code, "both", true, true);
  }
  return 0;
}

static const int kRegistered = RegisterAll();

}  // namespace
