#ifndef PSPC_SRC_OBS_METRICS_H_
#define PSPC_SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/percentile.h"
#include "src/common/thread_annotations.h"

/// Process-wide observability: named counters, gauges, and
/// fixed-boundary latency histograms behind a `MetricsRegistry`.
///
/// The design splits cold registration from hot recording. Looking a
/// metric up (`GetCounter` / `GetGauge` / `GetHistogram`) takes the
/// registry mutex once and returns a pointer that stays valid for the
/// registry's lifetime — instrumentation sites resolve their handles
/// at wiring time and never touch the registry again. Recording is
/// lock-free and sharded: each counter/histogram owns a small array of
/// cache-line-aligned shards, a thread picks its shard by a
/// thread-local round-robin index, and a write is one (or a few)
/// relaxed atomic RMWs on a line no other steady-state thread
/// contends. Reads merge the shards, so `Value()` is exact once the
/// writers have quiesced and monotonically fresh while they run
/// (relaxed loads may trail in-flight increments — fine for a metrics
/// poll, and the reason polling can never data-race the hot path).
///
/// Histograms bucket into fixed upper boundaries (power-of-two-ish by
/// default; see `ExponentialBoundaries`) plus an overflow bucket, and
/// track sum/min/max, so a snapshot can interpolate p50/p95/p99
/// through the shared rank convention in common/percentile.h.
///
/// Export: `ToJson()` is the versioned machine-readable snapshot
/// (schema_version + counters/gauges/histograms; serialized with the
/// same json_writer.h the benches use) and `ToPrometheusText()` the
/// text-exposition rendering of the same state.
namespace pspc {
namespace obs {

/// Round-robin shard index of the calling thread. Stable per thread,
/// assigned on first use; every sharded metric folds it modulo its
/// shard count.
inline size_t ThreadShardIndex() {
  static std::atomic<size_t> next{0};
  // relaxed: the counter only hands out distinct indices; no other
  // state is published through it.
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

/// Monotonic counter. Increment is one relaxed fetch_add on the
/// calling thread's shard.
class Counter {
 public:
  static constexpr size_t kShards = 16;  // power of two

  void Increment(uint64_t delta = 1) {
    // relaxed: metrics tolerate reordering; a poll merging the shards
    // may trail in-flight increments (see the class comment).
    shards_[ThreadShardIndex() & (kShards - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      // relaxed: monotonically fresh merge; exact once writers quiesce.
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string& Name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  std::string name_;
  std::array<Shard, kShards> shards_{};
};

/// Point-in-time value. Set/Add are single relaxed atomics — gauges
/// are written from one owner (or rarely) so they are not sharded.
class Gauge {
 public:
  // relaxed: a gauge is a free-standing point-in-time value; no reader
  // infers other state from it.
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);  // relaxed: ditto
  }
  int64_t Value() const {
    return value_.load(std::memory_order_relaxed);  // relaxed: ditto
  }

  const std::string& Name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// `count` strictly increasing upper bucket boundaries starting at
/// `start` and multiplying by `factor` — the power-of-two-ish ladders
/// the default histograms use.
std::vector<double> ExponentialBoundaries(double start, double factor,
                                          size_t count);

/// Default microsecond-latency ladder: 1us, 2us, 4us, ... ~67s
/// (27 finite buckets + overflow).
std::span<const double> DefaultLatencyBoundariesUs();

/// Merged point-in-time view of a histogram (see
/// `Histogram::Snapshot`). `bucket_counts` has one trailing overflow
/// entry beyond `upper_bounds`.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;
  std::vector<uint64_t> bucket_counts;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when empty
  double max = 0.0;

  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Interpolated `p`-quantile through the shared nearest-rank
  /// convention (common/percentile.h).
  double Percentile(double p) const {
    return HistogramPercentile(bucket_counts, upper_bounds, p, min, max);
  }
};

/// Fixed-boundary histogram. Record is a branch-free boundary search
/// plus four relaxed atomics on the calling thread's shard.
class Histogram {
 public:
  static constexpr size_t kShards = 16;  // power of two

  void Record(double value);

  /// Merges the shards into one consistent-enough view (see the class
  /// comment on relaxed reads under concurrent writers).
  HistogramSnapshot Snapshot() const;

  uint64_t Count() const { return Snapshot().count; }

  const std::string& Name() const { return name_; }
  std::span<const double> UpperBounds() const { return upper_bounds_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::span<const double> upper_bounds);

  struct alignas(64) Shard {
    // buckets[upper_bounds_.size()] is the overflow bucket.
    // (unique_ptr array: std::atomic is not movable, so vector's
    // growth requirements rule it out.)
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };

  std::string name_;
  std::vector<double> upper_bounds_;
  std::array<Shard, kShards> shards_;
};

/// Named-metric registry. One process-wide instance (`Global()`)
/// backs the always-on instrumentation; tests construct private
/// registries for exactness assertions. Lookup registers on first use;
/// returned pointers live as long as the registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every instrumented subsystem defaults
  /// to (never destroyed — instrumented objects may outlive statics).
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// Empty `upper_bounds` selects DefaultLatencyBoundariesUs(). A
  /// second lookup of an existing histogram returns it unchanged
  /// (boundaries are fixed at first registration).
  Histogram* GetHistogram(std::string_view name,
                          std::span<const double> upper_bounds = {});

  /// Versioned JSON snapshot:
  ///   {"schema_version":N,
  ///    "counters":{name:value,...},
  ///    "gauges":{name:value,...},
  ///    "histograms":{name:{count,sum,min,max,mean,p50,p95,p99,
  ///                        buckets:[{le,count},...]},...}}
  /// Metric names are emitted in sorted order, so equal state
  /// serializes byte-identically (golden-testable).
  std::string ToJson() const;

  /// Prometheus text exposition of the same state: names prefixed
  /// `pspc_`, dots rewritten to underscores, histograms rendered as
  /// cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
  std::string ToPrometheusText() const;

 private:
  mutable spc::Mutex mu_;
  // std::map: stable iteration order for deterministic export, and
  // node-based so metric pointers never move.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
};

/// Records the scope's elapsed wall time, in microseconds, into a
/// histogram on destruction (the metrics twin of common/timer.h's
/// ScopedTimer). A null histogram disables the timer.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* histogram);
  ~ScopedLatencyTimer();

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* histogram_;
  int64_t start_ns_;
};

}  // namespace obs
}  // namespace pspc

#endif  // PSPC_SRC_OBS_METRICS_H_
