// Command-line SPC tool: build an index from an edge-list file (or a
// named synthetic dataset), persist it, answer queries, and replay
// edge-update streams against the dynamic index.
//
//   ./spc_cli build  <graph.txt|dataset:CODE> <index.bin> [--hp-spc]
//                    [--order degree|sig|road|hybrid] [--threads N]
//   ./spc_cli query  <graph-or-dataset> <index.bin> <s> <t> [s t ...]
//   ./spc_cli stats  <graph-or-dataset>
//   ./spc_cli index-stats <graph-or-dataset> <index.bin>
//                    [--update-stream <updates.txt>]
//
// `index-stats` profiles a built index: label-size / distance / hub
// distributions plus the memory-bandwidth view — raw label bytes vs
// the packed-block mirror, bytes per entry. With `--update-stream` it
// additionally replays the stream repair-only and reports the overlay
// before and after a compaction pass (pack steps + fold): overlay
// width, stale entries pruned, packed vs raw chunk bytes.
//   ./spc_cli update <graph-or-dataset> <index.bin>
//                    --update-stream <updates.txt>
//                    [--batch-size N] [--rebuild-threshold R]
//                    [--save <out.bin>] [--metrics-json <path>]
//   ./spc_cli serve  <graph-or-dataset> <index.bin>
//                    [--duration-seconds S] [--workers N] [--loaders N]
//                    [--batch B] [--batch-size N] [--write-share P]
//                    [--update-stream <updates.txt>] [--seed X] [--no-cache]
//                    [--metrics-json <path>] [--metrics-prom <path>]
//                    [--metrics-interval-ms N] [--obs-port N]
//                    [--bundle <path>]
//                    [--trace-sample N] [--slow-trace-ms X]
//
// Observability: `--metrics-json` writes the versioned metrics
// snapshot (counters / gauges / latency histograms with p50/p95/p99)
// to the given path — once at exit for `update`, and additionally
// every `--metrics-interval-ms` while `serve` runs (atomic
// rename-free overwrite; scrape by re-reading the file).
// `--metrics-prom` does the same in Prometheus text format.
// `--trace-sample N` traces one in N queries; traced queries slower
// than `--slow-trace-ms` end-to-end are dumped as JSON at exit.
//
// Live ops plane (`serve` only): `--obs-port N` starts the embedded
// HTTP introspection endpoint on 127.0.0.1:N (0 = ephemeral; the
// bound port is printed) serving /metrics, /metrics.json, /healthz,
// /varz, /tracez and /flightrecorder, with the health watchdog
// ticking in the background. `--bundle <path>` is where a transition
// to UNHEALTHY dumps the diagnostic bundle (flight-recorder ring +
// metrics + traces).
//
// SIGINT/SIGTERM stop `serve` and `update` cleanly: the workload
// winds down, the final metrics snapshots still flush, and the
// process exits through the normal reporting path.
//
// Directed variants (paper §II-A; the index is built in-process from
// the graph, each edge-list line read as one directed edge u -> v; a
// dataset: code loads the symmetric closure of the undirected graph):
//
//   ./spc_cli query  --directed <graph-or-dataset> <s> <t> [s t ...]
//   ./spc_cli update --directed <graph-or-dataset>
//                    --update-stream <updates.txt>
//                    [--batch-size N] [--rebuild-threshold R]
//   ./spc_cli serve  --directed <graph-or-dataset> [the serve flags]
//
// `--batch-size N` groups writes: `update` replays the stream N
// updates per atomic ApplyBatch (coalesced repair, one snapshot
// generation per batch in `serve`); 1 = update-by-update.
//
// Examples:
//   ./spc_cli build dataset:FB /tmp/fb.idx --order hybrid
//   ./spc_cli query dataset:FB /tmp/fb.idx 0 17 3 99
//   ./spc_cli update dataset:FB /tmp/fb.idx --update-stream churn.txt
//   ./spc_cli serve dataset:FB /tmp/fb.idx --write-share 0.05

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/baseline/bfs_spc.h"
#include "src/common/mutex.h"
#include "src/common/percentile.h"
#include "src/common/random.h"
#include "src/common/thread_annotations.h"
#include "src/common/timer.h"
#include "src/core/builder_facade.h"
#include "src/digraph/dbfs_spc.h"
#include "src/digraph/digraph.h"
#include "src/digraph/digraph_io.h"
#include "src/digraph/dpspc_builder.h"
#include "src/dynamic/closure_churn.h"
#include "src/dynamic/dynamic_dspc_index.h"
#include "src/dynamic/dynamic_spc_index.h"
#include "src/dynamic/edge_update.h"
#include "src/dynamic/compaction.h"
#include "src/graph/algorithms.h"
#include "src/graph/datasets.h"
#include "src/graph/graph_io.h"
#include "src/label/index_stats.h"
#include "src/label/query_engine.h"
#include "src/label/spc_index.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/obs_server.h"
#include "src/serve/serving_engine.h"

namespace {

// SIGINT/SIGTERM request a clean wind-down: the long-running loops
// poll this and exit through the normal path, so the final metrics
// flush (and bundle dump) still runs.
volatile std::sig_atomic_t g_interrupted = 0;

void HandleStopSignal(int) { g_interrupted = 1; }

void InstallStopHandlers() {
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
}

// Writes `content` (already-serialized JSON) plus a trailing newline.
bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size() &&
      std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "write failed for %s\n", path.c_str());
  return ok;
}

// Periodic metrics exporter: rewrites `json_path` (JSON snapshot) and
// `prom_path` (Prometheus text) every `interval_ms` until stopped,
// plus one final write from the destructor — which also runs on a
// signal-driven wind-down, so an interrupted run still leaves a
// current snapshot behind. Interval 0 = no thread, final write only.
class MetricsReporter {
 public:
  MetricsReporter(pspc::obs::MetricsRegistry* registry, std::string json_path,
                  std::string prom_path, long long interval_ms)
      : registry_(registry),
        json_path_(std::move(json_path)),
        prom_path_(std::move(prom_path)) {
    if ((json_path_.empty() && prom_path_.empty()) || interval_ms <= 0) {
      return;
    }
    thread_ = std::thread([this, interval_ms] {
      for (;;) {
        {
          pspc::spc::MutexLock lock(mu_);
          if (stop_) return;
          cv_.WaitFor(mu_, std::chrono::milliseconds(interval_ms));
          if (stop_) return;
        }
        // Outside mu_: snapshot serialization has no business blocking
        // the destructor's stop handshake.
        WriteSnapshots();
      }
    });
  }

  ~MetricsReporter() {
    if (thread_.joinable()) {
      {
        pspc::spc::MutexLock lock(mu_);
        stop_ = true;
      }
      cv_.NotifyAll();
      thread_.join();
    }
    WriteSnapshots();
  }

 private:
  void WriteSnapshots() {
    if (!json_path_.empty()) WriteTextFile(json_path_, registry_->ToJson());
    if (!prom_path_.empty()) {
      WriteTextFile(prom_path_, registry_->ToPrometheusText());
    }
  }

  pspc::obs::MetricsRegistry* registry_;
  std::string json_path_;
  std::string prom_path_;
  pspc::spc::Mutex mu_;
  pspc::spc::CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread thread_;
};

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  spc_cli build <graph.txt|dataset:CODE> <index.bin> "
               "[--hp-spc] [--order degree|sig|road|hybrid] [--threads N]\n"
               "  spc_cli query <graph-or-dataset> <index.bin> <s> <t> ...\n"
               "  spc_cli stats <graph-or-dataset>\n"
               "  spc_cli index-stats <graph-or-dataset> <index.bin> "
               "[--update-stream <updates.txt>]\n"
               "  spc_cli update <graph-or-dataset> <index.bin> "
               "--update-stream <updates.txt> [--batch-size N] "
               "[--rebuild-threshold R] [--save <out.bin>] "
               "[--metrics-json <path>] [--metrics-prom <path>]\n"
               "  spc_cli serve <graph-or-dataset> <index.bin> "
               "[--duration-seconds S] [--workers N] [--loaders N] "
               "[--batch B] [--batch-size N] [--write-share P] "
               "[--update-stream <updates.txt>] [--seed X] [--no-cache] "
               "[--metrics-json <path>] [--metrics-prom <path>] "
               "[--metrics-interval-ms N] [--obs-port N] [--bundle <path>] "
               "[--trace-sample N] [--slow-trace-ms X]\n"
               "  spc_cli query --directed <graph-or-dataset> <s> <t> ...\n"
               "  spc_cli update --directed <graph-or-dataset> "
               "--update-stream <updates.txt> [--batch-size N] "
               "[--rebuild-threshold R] [--metrics-json <path>] "
               "[--metrics-prom <path>]\n"
               "  spc_cli serve --directed <graph-or-dataset> "
               "[the serve flags]\n");
  return 2;
}

bool DirectedMode(int argc, char** argv) {
  return argc > 2 && std::strcmp(argv[2], "--directed") == 0;
}

// Strict numeric flag parsing: `--batch-size 0`, `--workers x`, or a
// trailing-garbage value like `--loaders 2q` is a usage error, not a
// silently clamped (or zero) configuration.
bool ParseIntFlag(const char* flag, const char* text, long long min_value,
                  long long* out) {
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || value < min_value) {
    std::fprintf(stderr, "%s expects an integer >= %lld (got '%s')\n", flag,
                 min_value, text);
    return false;
  }
  *out = value;
  return true;
}

bool ParseDoubleFlag(const char* flag, const char* text, double min_value,
                     double* out) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0' || !(value >= min_value)) {
    std::fprintf(stderr, "%s expects a number >= %g (got '%s')\n", flag,
                 min_value, text);
    return false;
  }
  *out = value;
  return true;
}

bool LoadGraphArg(const std::string& arg, pspc::Graph* out) {
  if (arg.rfind("dataset:", 0) == 0) {
    *out = pspc::DatasetByCode(arg.substr(8)).build(1);
    return true;
  }
  auto r = pspc::LoadEdgeList(arg);
  if (!r.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", arg.c_str(),
                 r.status().ToString().c_str());
    return false;
  }
  *out = std::move(r).value();
  return true;
}

bool LoadDiGraphArg(const std::string& arg, pspc::DiGraph* out) {
  if (arg.rfind("dataset:", 0) == 0) {
    // Datasets are undirected; the directed path serves their
    // symmetric closure (directed SPC on it agrees with undirected).
    *out = pspc::FromUndirected(pspc::DatasetByCode(arg.substr(8)).build(1));
    return true;
  }
  auto r = pspc::LoadDirectedEdgeList(arg);
  if (!r.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", arg.c_str(),
                 r.status().ToString().c_str());
    return false;
  }
  *out = std::move(r).value();
  return true;
}

// Validates the id arguments `argv[first..argc)` against `n` vertices
// of the named container ("graph" / "index"); malformed or
// out-of-range ids are usage errors (exit 2) on every front-end.
bool ValidateVertexIds(int argc, char** argv, int first, pspc::VertexId n,
                       const char* noun) {
  for (int i = first; i < argc; ++i) {
    char* end = nullptr;
    const long long id = std::strtoll(argv[i], &end, 10);
    if (end == argv[i] || *end != '\0') {
      std::fprintf(stderr, "vertex id '%s' is not a number\n", argv[i]);
      return false;
    }
    if (id < 0 || static_cast<unsigned long long>(id) >= n) {
      if (n == 0) {
        std::fprintf(stderr, "vertex id %s out of range: %s is empty\n",
                     argv[i], noun);
      } else {
        std::fprintf(stderr,
                     "vertex id %s out of range: %s has %u vertices "
                     "(valid ids are 0..%u)\n",
                     argv[i], noun, n, n - 1);
      }
      return false;
    }
  }
  return true;
}

// Directed queries: builds the in/out-label index from the graph
// in-process (DiSpcIndex has no on-disk format) and answers each
// ordered pair s -> t.
int CmdQueryDirected(int argc, char** argv) {
  if (argc < 6 || (argc - 4) % 2 != 0) return Usage();
  pspc::DiGraph graph;
  if (!LoadDiGraphArg(argv[3], &graph)) return 1;
  if (!ValidateVertexIds(argc, argv, 4, graph.NumVertices(), "graph")) {
    return 2;
  }

  pspc::WallTimer timer;
  const pspc::DiPspcBuildResult built =
      pspc::BuildDirectedPspcIndex(graph, pspc::DirectedDegreeOrder(graph),
                                   pspc::DiPspcOptions{});
  std::printf("directed index: %u vertices, %llu edges, %zu entries "
              "(built in %.3fs)\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()),
              built.index.TotalEntries(), timer.ElapsedSeconds());
  for (int i = 4; i + 1 < argc; i += 2) {
    const auto s = static_cast<pspc::VertexId>(std::atoll(argv[i]));
    const auto t = static_cast<pspc::VertexId>(std::atoll(argv[i + 1]));
    const pspc::SpcResult r = built.index.Query(s, t);
    if (r.distance == pspc::kInfSpcDistance) {
      std::printf("SPC(%u -> %u): unreachable\n", s, t);
    } else {
      std::printf("SPC(%u -> %u): distance %u, %llu shortest paths\n", s, t,
                  r.distance, static_cast<unsigned long long>(r.count));
    }
  }
  return 0;
}

// Directed update replay: the dynamic directed index repairs in/out
// labels in place instead of rebuilding per change.
int CmdUpdateDirected(int argc, char** argv) {
  if (argc < 4) return Usage();
  pspc::DiGraph graph;
  if (!LoadDiGraphArg(argv[3], &graph)) return 1;

  std::string stream_path, metrics_json, metrics_prom;
  pspc::DynamicDiOptions options;
  size_t batch_size = 1;
  for (int i = 4; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--update-stream" && i + 1 < argc) {
      stream_path = argv[++i];
    } else if (flag == "--rebuild-threshold" && i + 1 < argc) {
      if (!ParseDoubleFlag("--rebuild-threshold", argv[++i], 0.0,
                           &options.rebuild_threshold)) {
        return Usage();
      }
    } else if (flag == "--batch-size" && i + 1 < argc) {
      long long value = 0;
      if (!ParseIntFlag("--batch-size", argv[++i], 1, &value)) return Usage();
      batch_size = static_cast<size_t>(value);
    } else if (flag == "--metrics-json" && i + 1 < argc) {
      metrics_json = argv[++i];
    } else if (flag == "--metrics-prom" && i + 1 < argc) {
      metrics_prom = argv[++i];
    } else {
      return Usage();
    }
  }
  if (stream_path.empty()) return Usage();

  auto stream = pspc::LoadUpdateStream(stream_path);
  if (!stream.ok()) {
    std::fprintf(stderr, "failed to load updates %s: %s\n",
                 stream_path.c_str(), stream.status().ToString().c_str());
    return 1;
  }

  pspc::WallTimer build_timer;
  pspc::DynamicDspcIndex index(std::move(graph), pspc::DiPspcOptions{},
                               options);
  std::printf("directed index built in %.3fs; replaying %zu updates "
              "against %u vertices / %llu edges (batch size %zu)\n",
              build_timer.ElapsedSeconds(), stream.value().Size(),
              index.NumVertices(),
              static_cast<unsigned long long>(index.NumEdges()), batch_size);

  InstallStopHandlers();
  pspc::WallTimer timer;
  size_t applied = 0;
  if (batch_size <= 1) {
    for (const pspc::EdgeUpdate& up : stream.value()) {
      if (g_interrupted != 0) break;
      const pspc::Status st = index.Apply(up);
      if (!st.ok()) {
        std::fprintf(stderr, "update %zu (%c %u %u) failed: %s\n", applied,
                     up.kind == pspc::EdgeUpdateKind::kInsert ? 'i' : 'd',
                     up.u, up.v, st.ToString().c_str());
        return 1;
      }
      ++applied;
    }
  } else {
    const auto& updates = stream.value().Updates();
    for (size_t pos = 0; pos < updates.size() && g_interrupted == 0;
         pos += batch_size) {
      pspc::EdgeUpdateBatch chunk;
      const size_t end = std::min(pos + batch_size, updates.size());
      for (size_t i = pos; i < end; ++i) chunk.Add(updates[i]);
      if (const pspc::Status st = index.ApplyBatch(chunk); !st.ok()) {
        std::fprintf(stderr, "batch at update %zu failed: %s\n", pos,
                     st.ToString().c_str());
        return 1;
      }
      applied = end;
    }
  }
  const double total = timer.ElapsedSeconds();
  if (g_interrupted != 0) {
    std::printf("interrupted after %zu updates; flushing metrics\n", applied);
  }

  std::printf("applied %zu updates in %.3fs (%.3f ms/update)\n%s\n", applied,
              total, applied == 0 ? 0.0 : total * 1e3 / applied,
              index.Stats().ToString().c_str());
  std::printf("staleness: %.4f (threshold %.4f), edges now %llu\n",
              index.StalenessRatio(), options.rebuild_threshold,
              static_cast<unsigned long long>(index.NumEdges()));
  if (!metrics_json.empty() &&
      !WriteTextFile(metrics_json,
                     pspc::obs::MetricsRegistry::Global().ToJson())) {
    return 1;
  }
  if (!metrics_prom.empty() &&
      !WriteTextFile(metrics_prom,
                     pspc::obs::MetricsRegistry::Global().ToPrometheusText())) {
    return 1;
  }
  return 0;
}

// Shared configuration of the serve front-ends (undirected and
// directed take the identical flag set).
struct ServeParams {
  double duration_seconds = 5.0;
  double write_share = 0.05;
  int workers = 0;
  int loaders = 2;
  size_t batch = 16;
  size_t write_batch = 1;
  uint64_t seed = 42;
  bool no_cache = false;
  std::string stream_path;
  std::string metrics_json;
  std::string metrics_prom;
  long long metrics_interval_ms = 0;
  long long trace_sample = 0;
  double slow_trace_ms = 10.0;
  // Ops plane: -1 = no endpoint; 0 = ephemeral port (printed).
  long long obs_port = -1;
  std::string bundle_path;
};

bool ParseServeFlags(int argc, char** argv, int first, ServeParams* params) {
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--duration-seconds" && i + 1 < argc) {
      if (!ParseDoubleFlag("--duration-seconds", argv[++i], 0.0,
                           &params->duration_seconds)) {
        return false;
      }
    } else if (flag == "--write-share" && i + 1 < argc) {
      if (!ParseDoubleFlag("--write-share", argv[++i], 0.0,
                           &params->write_share)) {
        return false;
      }
    } else if (flag == "--workers" && i + 1 < argc) {
      // 0 = one worker per core (the ServingOptions default).
      long long value = 0;
      if (!ParseIntFlag("--workers", argv[++i], 0, &value)) return false;
      params->workers = static_cast<int>(value);
    } else if (flag == "--loaders" && i + 1 < argc) {
      long long value = 0;
      if (!ParseIntFlag("--loaders", argv[++i], 1, &value)) return false;
      params->loaders = static_cast<int>(value);
    } else if (flag == "--batch" && i + 1 < argc) {
      long long value = 0;
      if (!ParseIntFlag("--batch", argv[++i], 1, &value)) return false;
      params->batch = static_cast<size_t>(value);
    } else if (flag == "--batch-size" && i + 1 < argc) {
      long long value = 0;
      if (!ParseIntFlag("--batch-size", argv[++i], 1, &value)) return false;
      params->write_batch = static_cast<size_t>(value);
    } else if (flag == "--seed" && i + 1 < argc) {
      long long value = 0;
      if (!ParseIntFlag("--seed", argv[++i], 0, &value)) return false;
      params->seed = static_cast<uint64_t>(value);
    } else if (flag == "--update-stream" && i + 1 < argc) {
      params->stream_path = argv[++i];
    } else if (flag == "--no-cache") {
      params->no_cache = true;
    } else if (flag == "--metrics-json" && i + 1 < argc) {
      params->metrics_json = argv[++i];
    } else if (flag == "--metrics-prom" && i + 1 < argc) {
      params->metrics_prom = argv[++i];
    } else if (flag == "--obs-port" && i + 1 < argc) {
      if (!ParseIntFlag("--obs-port", argv[++i], 0, &params->obs_port) ||
          params->obs_port > 65535) {
        std::fprintf(stderr, "--obs-port expects a port in [0, 65535]\n");
        return false;
      }
    } else if (flag == "--bundle" && i + 1 < argc) {
      params->bundle_path = argv[++i];
    } else if (flag == "--metrics-interval-ms" && i + 1 < argc) {
      if (!ParseIntFlag("--metrics-interval-ms", argv[++i], 1,
                        &params->metrics_interval_ms)) {
        return false;
      }
    } else if (flag == "--trace-sample" && i + 1 < argc) {
      // 0 = tracing off.
      if (!ParseIntFlag("--trace-sample", argv[++i], 0,
                        &params->trace_sample)) {
        return false;
      }
    } else if (flag == "--slow-trace-ms" && i + 1 < argc) {
      if (!ParseDoubleFlag("--slow-trace-ms", argv[++i], 0.0,
                           &params->slow_trace_ms)) {
        return false;
      }
    } else {
      return false;
    }
  }
  if (params->write_share > 0.95) params->write_share = 0.95;
  return true;
}

// Loads the update stream named by `params` (empty batch when none).
bool LoadServeStream(const ServeParams& params,
                     pspc::EdgeUpdateBatch* stream) {
  if (params.stream_path.empty()) return true;
  auto r = pspc::LoadUpdateStream(params.stream_path);
  if (!r.ok()) {
    std::fprintf(stderr, "failed to load updates %s: %s\n",
                 params.stream_path.c_str(), r.status().ToString().c_str());
    return false;
  }
  *stream = std::move(r).value();
  return true;
}

// Drives the mixed read/write workload shared by `serve` and
// `serve --directed`: loader threads submit random query batches
// (closed loop) while this thread applies edge updates — from the
// replayed stream when given, otherwise closure churn — self-paced
// toward `write_share` of total operations. After the drain,
// `quiesce_check` runs the oracle spot-check and returns its mismatch
// count (the drained engine + idle writer make it a quiesce point).
// Returns the process exit code.
int RunServeWorkload(pspc::ServingEngine& engine, pspc::VertexId n,
                     const ServeParams& params, pspc::EdgeUpdateBatch stream,
                     pspc::ClosureChurn& churn,
                     const std::function<size_t()>& quiesce_check) {
  InstallStopHandlers();
  // Periodic metrics exporter (and final snapshot on scope exit).
  MetricsReporter reporter(&engine.Metrics(), params.metrics_json,
                           params.metrics_prom, params.metrics_interval_ms);

  // Live ops plane: health watchdog over the engine's registry, and
  // (with --obs-port) the HTTP introspection endpoint in front of it.
  pspc::obs::HealthOptions health_options;
  health_options.metrics = &engine.Metrics();
  health_options.traces = &engine.Traces();
  health_options.update_traces = &engine.UpdateTraces();
  health_options.bundle_path = params.bundle_path;
  pspc::obs::HealthWatchdog watchdog(health_options);
  std::unique_ptr<pspc::obs::ObsServer> obs_server;
  if (params.obs_port >= 0) {
    watchdog.Start();
    pspc::obs::ObsServerContext context;
    context.metrics = &engine.Metrics();
    context.health = &watchdog;
    context.traces = &engine.Traces();
    context.update_traces = &engine.UpdateTraces();
    obs_server = std::make_unique<pspc::obs::ObsServer>(
        static_cast<uint16_t>(params.obs_port), context);
    if (const pspc::Status st = obs_server->Start(); !st.ok()) {
      std::fprintf(stderr, "ops endpoint failed to start: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("ops plane listening on http://127.0.0.1:%u "
                "(/metrics /metrics.json /healthz /varz /tracez "
                "/flightrecorder)\n",
                obs_server->Port());
  }
  std::atomic<uint64_t> reads{0};
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> batch_ms(
      static_cast<size_t>(params.loaders));
  std::vector<std::thread> loader_threads;
  pspc::Rng seeder(params.seed);
  for (int i = 0; i < params.loaders; ++i) {
    pspc::Rng rng = seeder.Split();
    auto* out = &batch_ms[static_cast<size_t>(i)];
    loader_threads.emplace_back([&, rng, out]() mutable {
      // relaxed: stop flag and read tally are poll-only statistics;
      // join() is the synchronization point.
      while (!stop.load(std::memory_order_relaxed)) {
        pspc::QueryBatch queries =
            pspc::MakeRandomQueries(n, params.batch, rng.Next());
        pspc::WallTimer timer;
        engine.SubmitBatch(queries).get();
        out->push_back(timer.ElapsedMillis());
        // relaxed: throughput tally, read approximately by the pacer.
        reads.fetch_add(queries.size(), std::memory_order_relaxed);
      }
    });
  }

  // Writer loop: paced toward `write_share` of total operations,
  // consuming whole batches of up to `--batch-size` updates per atomic
  // ApplyUpdates call (one published generation each).
  pspc::Rng write_rng = seeder.Split();
  std::vector<double> update_ms;
  uint64_t writes = 0, write_errors = 0;
  size_t stream_pos = 0;
  pspc::WallTimer wall;
  while (wall.ElapsedSeconds() < params.duration_seconds &&
         g_interrupted == 0) {
    const double quota =
        params.write_share >= 0.95
            ? 1e18
            : params.write_share / (1.0 - params.write_share) *
                  // relaxed: pacing estimate; staleness only skews mix.
                  static_cast<double>(reads.load(std::memory_order_relaxed));
    if (params.write_share == 0.0 ||
        static_cast<double>(writes) >= quota) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    pspc::EdgeUpdateBatch write_chunk;
    while (write_chunk.Size() < params.write_batch) {
      if (!stream.Empty()) {
        if (stream_pos >= stream.Size()) break;  // stream exhausted
        write_chunk.Add(stream.Updates()[stream_pos++]);
      } else if (!churn.Empty()) {
        write_chunk.Add(churn.Next(write_rng));
      } else {
        break;  // nothing to churn (edgeless graph)
      }
    }
    if (write_chunk.Empty()) {
      // Keep serving reads until the deadline.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    pspc::WallTimer timer;
    const pspc::Status st = engine.ApplyUpdates(write_chunk);
    update_ms.push_back(timer.ElapsedMillis());
    if (st.ok()) {
      writes += write_chunk.Size();
    } else {
      write_errors += write_chunk.Size();
    }
  }
  const double elapsed = wall.ElapsedSeconds();
  // relaxed: join() below is the synchronization point.
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : loader_threads) t.join();
  engine.Drain();
  if (g_interrupted != 0) {
    std::printf("interrupted after %.2fs; winding down cleanly\n", elapsed);
  }

  std::vector<double> all_batch_ms;
  for (const auto& v : batch_ms) {
    all_batch_ms.insert(all_batch_ms.end(), v.begin(), v.end());
  }
  const uint64_t total_reads = reads.load();
  const double total_ops = static_cast<double>(total_reads + writes);
  std::printf("reads:  %llu queries in %.2fs -> %.0f queries/s\n",
              static_cast<unsigned long long>(total_reads), elapsed,
              static_cast<double>(total_reads) / elapsed);
  std::printf("        batch latency p50 %.3f ms, p99 %.3f ms (batch=%zu)\n",
              pspc::Percentile(all_batch_ms, 0.5),
              pspc::Percentile(all_batch_ms, 0.99), params.batch);
  std::printf("writes: %llu updates (%llu rejected), batch p50 %.3f ms, "
              "p99 %.3f ms -> achieved write share %.4f\n",
              static_cast<unsigned long long>(writes),
              static_cast<unsigned long long>(write_errors),
              pspc::Percentile(update_ms, 0.5),
              pspc::Percentile(update_ms, 0.99),
              total_ops == 0.0 ? 0.0
                               : static_cast<double>(writes) / total_ops);
  std::printf("%s\n", engine.Counters().ToString().c_str());

  if (params.trace_sample > 0) {
    const pspc::obs::TraceCollector& traces = engine.Traces();
    std::printf("traces: %llu sampled (1 in %lld), %llu above %.1f ms\n",
                static_cast<unsigned long long>(traces.TracesRecorded()),
                params.trace_sample,
                static_cast<unsigned long long>(traces.SlowTraces()),
                traces.SlowThresholdMicros() * 1e-3);
    if (traces.SlowTraces() > 0) {
      std::printf("slow traces: %s\n", traces.SlowTracesToJson().c_str());
    }
  }

  const size_t mismatches = quiesce_check();
  return mismatches == 0 ? 0 : 1;
}

// Directed mixed-workload serving: loader threads query the published
// directed snapshots while the writer repairs in/out labels.
int CmdServeDirected(int argc, char** argv) {
  if (argc < 4) return Usage();
  pspc::DiGraph graph;
  if (!LoadDiGraphArg(argv[3], &graph)) return 1;
  ServeParams params;
  if (!ParseServeFlags(argc, argv, 4, &params)) return Usage();
  pspc::EdgeUpdateBatch stream;
  if (!LoadServeStream(params, &stream)) return 1;

  const pspc::VertexId n = graph.NumVertices();
  if (n == 0) {
    std::fprintf(stderr, "cannot serve an empty graph\n");
    return 1;
  }
  pspc::ClosureChurn churn(graph);

  pspc::WallTimer build_timer;
  pspc::DynamicDspcIndex index(std::move(graph), pspc::DiPspcOptions{});
  pspc::ServingOptions serving_options;
  serving_options.num_workers = params.workers;
  if (params.no_cache) serving_options.cache_capacity_per_shard = 0;
  serving_options.trace_sample_every_n =
      static_cast<uint64_t>(params.trace_sample);
  serving_options.trace_seed = params.seed;
  serving_options.slow_trace_us = params.slow_trace_ms * 1000.0;
  pspc::ServingEngine engine(&index, serving_options);

  std::printf("serving directed %u vertices / %llu edges (index built in "
              "%.3fs): %d loaders x batch %zu, write share %.2f (batch size "
              "%zu), %.1fs\n",
              n, static_cast<unsigned long long>(index.NumEdges()),
              build_timer.ElapsedSeconds(), params.loaders, params.batch,
              params.write_share, params.write_batch,
              params.duration_seconds);

  return RunServeWorkload(engine, n, params, std::move(stream), churn, [&] {
    // Quiesce exactness spot-check against the directed BFS oracle.
    const pspc::DiGraph current = index.MaterializeGraph();
    pspc::QueryBatch checks =
        pspc::MakeRandomQueries(n, 16, params.seed ^ 0x5eed);
    const std::vector<pspc::SpcResult> served =
        engine.SubmitBatch(checks).get();
    size_t mismatches = 0;
    for (size_t i = 0; i < checks.size(); ++i) {
      if (served[i] != pspc::DiBfsSpcPair(current, checks[i].first,
                                          checks[i].second)) {
        ++mismatches;
      }
    }
    std::printf("quiesce oracle: %zu/%zu exact%s\n",
                checks.size() - mismatches, checks.size(),
                mismatches == 0 ? "" : "  <-- CORRECTNESS BUG");
    return mismatches;
  });
}

int CmdBuild(int argc, char** argv) {
  if (argc < 4) return Usage();
  pspc::Graph graph;
  if (!LoadGraphArg(argv[2], &graph)) return 1;

  pspc::BuildOptions options;
  for (int i = 4; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--hp-spc") {
      options.algorithm = pspc::Algorithm::kHpSpc;
    } else if (flag == "--order" && i + 1 < argc) {
      const std::string order = argv[++i];
      if (order == "degree") {
        options.ordering = pspc::OrderingScheme::kDegree;
      } else if (order == "sig") {
        options.ordering = pspc::OrderingScheme::kSignificantPath;
      } else if (order == "road") {
        options.ordering = pspc::OrderingScheme::kRoadNetwork;
      } else if (order == "hybrid") {
        options.ordering = pspc::OrderingScheme::kHybrid;
      } else {
        return Usage();
      }
    } else if (flag == "--threads" && i + 1 < argc) {
      // 0 = all cores (the BuildOptions default).
      long long threads = 0;
      if (!ParseIntFlag("--threads", argv[++i], 0, &threads)) return Usage();
      options.num_threads = static_cast<int>(threads);
    } else {
      return Usage();
    }
  }

  std::printf("graph: %u vertices, %llu edges\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));
  const pspc::BuildResult result = pspc::BuildIndex(graph, options);
  std::printf("built %s index under %s order: %zu entries in %.3fs "
              "(order %.3fs, landmarks %.3fs, construction %.3fs)\n",
              ToString(options.algorithm).c_str(),
              ToString(options.ordering).c_str(),
              result.index.TotalEntries(), result.stats.TotalSeconds(),
              result.stats.ordering_seconds, result.stats.landmark_seconds,
              result.stats.construction_seconds);
  if (const pspc::Status st = result.index.Save(argv[3]); !st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved to %s (%.1f MB)\n", argv[3],
              static_cast<double>(result.index.SizeBytes()) / 1048576.0);
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (DirectedMode(argc, argv)) return CmdQueryDirected(argc, argv);
  if (argc < 6 || (argc - 4) % 2 != 0) return Usage();
  auto loaded = pspc::SpcIndex::Load(argv[3]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load index %s: %s\n", argv[3],
                 loaded.status().ToString().c_str());
    return 1;
  }
  const pspc::SpcIndex& index = loaded.value();
  // Validate every id up front: a malformed or out-of-range vertex id
  // is a usage error, not a per-pair answer.
  if (!ValidateVertexIds(argc, argv, 4, index.NumVertices(), "index")) {
    return 2;
  }
  for (int i = 4; i + 1 < argc; i += 2) {
    const auto s = static_cast<pspc::VertexId>(std::atoll(argv[i]));
    const auto t = static_cast<pspc::VertexId>(std::atoll(argv[i + 1]));
    const pspc::SpcResult r = index.Query(s, t);
    if (r.distance == pspc::kInfSpcDistance) {
      std::printf("SPC(%u, %u): unreachable\n", s, t);
    } else {
      std::printf("SPC(%u, %u): distance %u, %llu shortest paths\n", s, t,
                  r.distance, static_cast<unsigned long long>(r.count));
    }
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  pspc::Graph graph;
  if (!LoadGraphArg(argv[2], &graph)) return 1;
  pspc::VertexId components = 0;
  pspc::ConnectedComponents(graph, &components);
  std::printf("vertices:   %u\n", graph.NumVertices());
  std::printf("edges:      %llu\n",
              static_cast<unsigned long long>(graph.NumEdges()));
  std::printf("avg degree: %.2f\n", graph.AverageDegree());
  std::printf("max degree: %u\n", graph.MaxDegree());
  std::printf("components: %u\n", components);
  std::printf("diameter:   >= %u (double sweep)\n",
              pspc::EstimateDiameter(graph, 4, 1));
  return 0;
}

// Profiles a built index: the classic label distributions plus the
// memory-bandwidth view (raw vs packed bytes, bytes/entry). With
// --update-stream, additionally replays the stream repair-only and
// reports the overlay before/after a full compaction pass.
int CmdIndexStats(int argc, char** argv) {
  if (argc < 4) return Usage();
  pspc::Graph graph;
  if (!LoadGraphArg(argv[2], &graph)) return 1;
  auto loaded = pspc::SpcIndex::Load(argv[3]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load index %s: %s\n", argv[3],
                 loaded.status().ToString().c_str());
    return 1;
  }

  std::string stream_path;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-stream") == 0 && i + 1 < argc) {
      stream_path = argv[++i];
    } else {
      return Usage();
    }
  }

  const pspc::IndexProfile profile = pspc::ProfileIndex(loaded.value());
  std::printf("%s\n", profile.ToString().c_str());
  std::printf("label bytes: raw %zu (%.2f B/entry), packed %zu "
              "(%.2f B/entry), %.2fx smaller\n",
              profile.raw_bytes, profile.raw_bytes_per_entry,
              profile.packed_bytes, profile.packed_bytes_per_entry,
              profile.packed_bytes == 0
                  ? 0.0
                  : static_cast<double>(profile.raw_bytes) /
                        static_cast<double>(profile.packed_bytes));
  if (stream_path.empty()) return 0;

  auto stream = pspc::LoadUpdateStream(stream_path);
  if (!stream.ok()) {
    std::fprintf(stderr, "failed to load updates %s: %s\n",
                 stream_path.c_str(), stream.status().ToString().c_str());
    return 1;
  }
  if (loaded.value().NumVertices() != graph.NumVertices()) {
    std::fprintf(stderr, "index (%u vertices) does not match graph (%u)\n",
                 loaded.value().NumVertices(), graph.NumVertices());
    return 1;
  }
  pspc::DynamicOptions options;
  options.rebuild_threshold = 1e18;  // repair-only: compaction owns the fold
  pspc::DynamicSpcIndex index(std::move(graph), std::move(loaded).value(),
                              options);
  size_t applied = 0;
  for (const pspc::EdgeUpdate& up : stream.value()) {
    if (const pspc::Status st = index.Apply(up); !st.ok()) {
      std::fprintf(stderr, "update %zu failed: %s\n", applied,
                   st.ToString().c_str());
      return 1;
    }
    ++applied;
  }
  std::printf("\nreplayed %zu updates repair-only: overlay %zu vertices / "
              "%zu entries (staleness %.4f)\n",
              applied, index.Overlay().OverlaidVertices(),
              index.Overlay().OverlaidEntries(), index.StalenessRatio());

  pspc::OverlayCompactor compactor(&index);
  while (compactor.PackStep() > 0) {
  }
  const pspc::CompactionStats packed = compactor.Stats();
  std::printf("pack: %llu chunks, %llu raw B -> %llu packed B (%.2fx)\n",
              static_cast<unsigned long long>(packed.chunks_packed),
              static_cast<unsigned long long>(packed.raw_chunk_bytes),
              static_cast<unsigned long long>(packed.packed_chunk_bytes),
              packed.packed_chunk_bytes == 0
                  ? 0.0
                  : static_cast<double>(packed.raw_chunk_bytes) /
                        static_cast<double>(packed.packed_chunk_bytes));
  compactor.Fold();
  std::printf("fold: overlay now %zu vertices / %zu entries, %llu stale "
              "entries pruned, base %zu entries\n",
              index.Overlay().OverlaidVertices(),
              index.Overlay().OverlaidEntries(),
              static_cast<unsigned long long>(compactor.Stats().entries_pruned),
              index.BaseIndex().TotalEntries());
  const pspc::IndexProfile after = pspc::ProfileIndex(index.BaseIndex());
  std::printf("post-compaction label bytes: raw %zu, packed %zu "
              "(%.2f B/entry)\n",
              after.raw_bytes, after.packed_bytes,
              after.packed_bytes_per_entry);
  return 0;
}

// Replays an update stream against the dynamic index: per-update
// repair latency, staleness growth, and optionally a compacted
// (rebuilt) index written back to disk.
int CmdUpdate(int argc, char** argv) {
  if (DirectedMode(argc, argv)) return CmdUpdateDirected(argc, argv);
  if (argc < 4) return Usage();
  pspc::Graph graph;
  if (!LoadGraphArg(argv[2], &graph)) return 1;
  auto loaded = pspc::SpcIndex::Load(argv[3]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load index %s: %s\n", argv[3],
                 loaded.status().ToString().c_str());
    return 1;
  }

  std::string stream_path, save_path, metrics_json, metrics_prom;
  pspc::DynamicOptions options;
  size_t batch_size = 1;
  for (int i = 4; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--update-stream" && i + 1 < argc) {
      stream_path = argv[++i];
    } else if (flag == "--rebuild-threshold" && i + 1 < argc) {
      if (!ParseDoubleFlag("--rebuild-threshold", argv[++i], 0.0,
                           &options.rebuild_threshold)) {
        return Usage();
      }
    } else if (flag == "--batch-size" && i + 1 < argc) {
      long long value = 0;
      if (!ParseIntFlag("--batch-size", argv[++i], 1, &value)) return Usage();
      batch_size = static_cast<size_t>(value);
    } else if (flag == "--save" && i + 1 < argc) {
      save_path = argv[++i];
    } else if (flag == "--metrics-json" && i + 1 < argc) {
      metrics_json = argv[++i];
    } else if (flag == "--metrics-prom" && i + 1 < argc) {
      metrics_prom = argv[++i];
    } else {
      return Usage();
    }
  }
  if (stream_path.empty()) return Usage();

  auto stream = pspc::LoadUpdateStream(stream_path);
  if (!stream.ok()) {
    std::fprintf(stderr, "failed to load updates %s: %s\n",
                 stream_path.c_str(), stream.status().ToString().c_str());
    return 1;
  }

  if (loaded.value().NumVertices() != graph.NumVertices()) {
    std::fprintf(stderr, "index has %u vertices but graph has %u\n",
                 loaded.value().NumVertices(), graph.NumVertices());
    return 1;
  }
  pspc::DynamicSpcIndex index(std::move(graph), std::move(loaded).value(),
                              options);
  std::printf("replaying %zu updates against %u vertices / %llu edges "
              "(batch size %zu)\n",
              stream.value().Size(), index.NumVertices(),
              static_cast<unsigned long long>(index.NumEdges()), batch_size);

  InstallStopHandlers();
  pspc::WallTimer timer;
  size_t applied = 0;
  if (batch_size <= 1) {
    for (const pspc::EdgeUpdate& up : stream.value()) {
      if (g_interrupted != 0) break;
      const pspc::Status st = index.Apply(up);
      if (!st.ok()) {
        std::fprintf(stderr, "update %zu (%c %u %u) failed: %s\n", applied,
                     up.kind == pspc::EdgeUpdateKind::kInsert ? 'i' : 'd',
                     up.u, up.v, st.ToString().c_str());
        return 1;
      }
      ++applied;
    }
  } else {
    // Atomic coalesced batches: a failure rejects its whole batch (and
    // stops the replay) with the prior batches applied.
    const auto& updates = stream.value().Updates();
    for (size_t pos = 0; pos < updates.size() && g_interrupted == 0;
         pos += batch_size) {
      pspc::EdgeUpdateBatch chunk;
      const size_t end = std::min(pos + batch_size, updates.size());
      for (size_t i = pos; i < end; ++i) chunk.Add(updates[i]);
      if (const pspc::Status st = index.ApplyBatch(chunk); !st.ok()) {
        std::fprintf(stderr, "batch at update %zu failed: %s\n", pos,
                     st.ToString().c_str());
        return 1;
      }
      applied = end;
    }
  }
  const double total = timer.ElapsedSeconds();
  if (g_interrupted != 0) {
    std::printf("interrupted after %zu updates; flushing metrics\n", applied);
  }

  std::printf("applied %zu updates in %.3fs (%.3f ms/update)\n%s\n", applied,
              total, applied == 0 ? 0.0 : total * 1e3 / applied,
              index.Stats().ToString().c_str());
  std::printf("staleness: %.4f (threshold %.4f), edges now %llu\n",
              index.StalenessRatio(), options.rebuild_threshold,
              static_cast<unsigned long long>(index.NumEdges()));

  if (!save_path.empty()) {
    index.Rebuild();  // compact: fold the overlay into a fresh base
    if (const pspc::Status st = index.BaseIndex().Save(save_path); !st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("rebuilt + saved to %s (%.1f MB)\n", save_path.c_str(),
                static_cast<double>(index.BaseIndex().SizeBytes()) / 1048576.0);
  }
  if (!metrics_json.empty() &&
      !WriteTextFile(metrics_json,
                     pspc::obs::MetricsRegistry::Global().ToJson())) {
    return 1;
  }
  if (!metrics_prom.empty() &&
      !WriteTextFile(metrics_prom,
                     pspc::obs::MetricsRegistry::Global().ToPrometheusText())) {
    return 1;
  }
  return 0;
}

// Drives a mixed read/write workload through the concurrent serving
// engine: loader threads submit random query batches (closed loop)
// while the main thread applies edge updates — from a replayed stream
// when given, otherwise synthetic closure churn (close a live edge /
// reopen a closed one, which keeps the graph near its initial shape).
// The writer self-paces toward `--write-share` of total operations;
// since one repair costs thousands of query times, shares beyond a few
// percent leave the writer saturated and merely measure how well reads
// survive a continuously writing index — which is the point.
int CmdServe(int argc, char** argv) {
  if (DirectedMode(argc, argv)) return CmdServeDirected(argc, argv);
  if (argc < 4) return Usage();
  pspc::Graph graph;
  if (!LoadGraphArg(argv[2], &graph)) return 1;
  auto loaded = pspc::SpcIndex::Load(argv[3]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load index %s: %s\n", argv[3],
                 loaded.status().ToString().c_str());
    return 1;
  }
  if (loaded.value().NumVertices() != graph.NumVertices()) {
    std::fprintf(stderr, "index has %u vertices but graph has %u\n",
                 loaded.value().NumVertices(), graph.NumVertices());
    return 1;
  }

  ServeParams params;
  if (!ParseServeFlags(argc, argv, 4, &params)) return Usage();
  pspc::EdgeUpdateBatch stream;
  if (!LoadServeStream(params, &stream)) return 1;

  const pspc::VertexId n = graph.NumVertices();
  if (n == 0) {
    std::fprintf(stderr, "cannot serve an empty graph\n");
    return 1;
  }
  // Synthetic churn pools (shared with bench_serving).
  pspc::ClosureChurn churn(graph);

  pspc::DynamicSpcIndex index(std::move(graph), std::move(loaded).value());
  pspc::ServingOptions serving_options;
  serving_options.num_workers = params.workers;
  if (params.no_cache) serving_options.cache_capacity_per_shard = 0;
  serving_options.trace_sample_every_n =
      static_cast<uint64_t>(params.trace_sample);
  serving_options.trace_seed = params.seed;
  serving_options.slow_trace_us = params.slow_trace_ms * 1000.0;
  pspc::ServingEngine engine(&index, serving_options);

  std::printf("serving %u vertices / %llu edges: %d loaders x batch %zu, "
              "write share %.2f (batch size %zu), %.1fs\n",
              n, static_cast<unsigned long long>(index.NumEdges()),
              params.loaders, params.batch, params.write_share,
              params.write_batch, params.duration_seconds);

  return RunServeWorkload(engine, n, params, std::move(stream), churn, [&] {
    // Quiesce exactness spot-check: drained engine + idle writer means
    // served answers must now match a fresh BFS on the live graph.
    const pspc::Graph current = index.MaterializeGraph();
    pspc::QueryBatch checks =
        pspc::MakeRandomQueries(n, 16, params.seed ^ 0x5eed);
    const std::vector<pspc::SpcResult> served =
        engine.SubmitBatch(checks).get();
    size_t mismatches = 0;
    for (size_t i = 0; i < checks.size(); ++i) {
      if (served[i] != pspc::BfsSpcPair(current, checks[i].first,
                                        checks[i].second)) {
        ++mismatches;
      }
    }
    std::printf("quiesce oracle: %zu/%zu exact%s\n",
                checks.size() - mismatches, checks.size(),
                mismatches == 0 ? "" : "  <-- CORRECTNESS BUG");
    return mismatches;
  });
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "build") == 0) return CmdBuild(argc, argv);
  if (std::strcmp(argv[1], "query") == 0) return CmdQuery(argc, argv);
  if (std::strcmp(argv[1], "stats") == 0) return CmdStats(argc, argv);
  if (std::strcmp(argv[1], "index-stats") == 0) {
    return CmdIndexStats(argc, argv);
  }
  if (std::strcmp(argv[1], "update") == 0) return CmdUpdate(argc, argv);
  if (std::strcmp(argv[1], "serve") == 0) return CmdServe(argc, argv);
  return Usage();
}
